// Tests for the functional physical-memory backing store.

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dram/physmem.hh"

namespace mealib::dram {
namespace {

TEST(PhysMem, ZeroInitialized)
{
    PhysMem m(4096);
    const std::uint8_t *p = m.raw(0, 4096);
    for (int i = 0; i < 4096; ++i)
        ASSERT_EQ(p[i], 0);
}

TEST(PhysMem, ReadBackWrites)
{
    PhysMem m(4096);
    float *f = m.ptr<float>(128, 4);
    f[0] = 1.5f;
    f[3] = -2.0f;
    EXPECT_FLOAT_EQ(*m.ptr<float>(128, 1), 1.5f);
    EXPECT_FLOAT_EQ(*m.ptr<float>(128 + 12, 1), -2.0f);
}

TEST(PhysMem, OutOfRangeIsFatal)
{
    PhysMem m(1024);
    EXPECT_NO_THROW(m.raw(0, 1024));
    EXPECT_THROW(m.raw(0, 1025), FatalError);
    EXPECT_THROW(m.raw(1024, 1), FatalError);
    EXPECT_THROW(m.ptr<float>(1022, 1), FatalError);
}

TEST(PhysMem, OverflowingRangeIsFatal)
{
    PhysMem m(1024);
    EXPECT_THROW(m.raw(~0ull - 2, 8), FatalError);
}

TEST(PhysMem, MisalignedTypedAccessIsFatal)
{
    PhysMem m(1024);
    EXPECT_THROW(m.ptr<float>(2, 1), FatalError);
    EXPECT_THROW(m.ptr<std::int64_t>(4, 1), FatalError);
    EXPECT_NO_THROW(m.ptr<std::int64_t>(8, 1));
}

TEST(PhysMem, ZeroBackingIsFatal)
{
    EXPECT_THROW(PhysMem{0}, FatalError);
}

TEST(PhysMem, ConstAccess)
{
    PhysMem m(256);
    m.ptr<float>(0, 1)[0] = 7.0f;
    const PhysMem &cm = m;
    EXPECT_FLOAT_EQ(cm.ptr<float>(0, 1)[0], 7.0f);
}

} // namespace
} // namespace mealib::dram
