// Tests for the 3D-DRAM simulator: timing invariants, row-buffer
// behaviour, scheduling, energy accounting and trace sampling.

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "dram/params.hh"
#include "dram/stack.hh"
#include "dram/tracegen.hh"
#include "dram/vault.hh"

namespace mealib::dram {
namespace {

Trace
linearTrace(const DramParams &p, std::uint64_t bytes, bool write = false)
{
    TraceBuilder tb(p, 64_MiB);
    tb.addLinear(0, bytes, write);
    return tb.build();
}

TEST(Params, HmcBandwidthMatchesTable3)
{
    DramParams p = hmcStack();
    // Table 3 quotes 510 GB/s for the MEALib stack; our organization
    // gives 512 GB/s peak (32 vaults x 16 GB/s).
    EXPECT_NEAR(p.peakInternalBandwidth(), 510.0e9, 15.0e9);
}

TEST(Params, Ddr3BandwidthScalesWithChannels)
{
    EXPECT_NEAR(ddr3(2).peakInternalBandwidth(), 25.6e9, 1e6);
    EXPECT_NEAR(ddr3(8).peakInternalBandwidth(), 102.4e9, 1e6);
}

TEST(Vault, SequentialStreamMostlyRowHits)
{
    DramParams p = hmcStack();
    Vault v(p.timing, p.org);
    std::vector<Request> q;
    for (Addr a = 0; a < 8 * p.org.rowBytes; a += p.timing.burstBytes)
        q.push_back({a, static_cast<std::uint32_t>(p.timing.burstBytes),
                     false});
    VaultStats s = v.service(q, 0);
    // One activate per row touched, hits for the rest.
    EXPECT_EQ(s.rowMisses, 8u);
    EXPECT_EQ(s.rowHits, q.size() - 8);
}

TEST(Vault, RandomStreamMostlyRowMisses)
{
    DramParams p = hmcStack();
    Vault v(p.timing, p.org);
    Rng rng(3);
    std::vector<Request> q;
    for (int i = 0; i < 512; ++i) {
        Addr a = rng.below(1_MiB / p.timing.burstBytes) *
                 p.timing.burstBytes;
        q.push_back({a, static_cast<std::uint32_t>(p.timing.burstBytes),
                     false});
    }
    VaultStats s = v.service(q, 0);
    EXPECT_GT(s.rowMisses, s.rowHits);
}

TEST(Vault, RowMissesSlowerThanHits)
{
    DramParams p = hmcStack();
    // All requests to the same row (hits after the first)...
    Vault v1(p.timing, p.org);
    std::vector<Request> hits;
    for (int i = 0; i < 64; ++i)
        hits.push_back({static_cast<Addr>((i % 8) * 32), 32, false});
    Cycles t_hits = v1.service(hits, 0).busyUntil;

    // ...versus ping-ponging between two rows of the same bank.
    Vault v2(p.timing, p.org, 1); // FCFS so the scheduler can't help
    std::vector<Request> misses;
    const Addr other =
        static_cast<Addr>(p.org.rowBytes * p.org.banksPerVault);
    for (int i = 0; i < 64; ++i)
        misses.push_back({i % 2 ? other : 0, 32, false});
    Cycles t_misses = v2.service(misses, 0).busyUntil;

    // Row ping-pong pays tRAS+tRP+tRCD per access vs tBURST per hit.
    EXPECT_LT(t_hits * 10, t_misses);
}

TEST(Vault, SchedulerWindowReordersForHits)
{
    DramParams p = hmcStack();
    // Interleave two row streams of the same bank: FCFS thrashes, a
    // window of 8 can batch same-row requests.
    std::vector<Request> q;
    const Addr rowB = static_cast<Addr>(p.org.rowBytes *
                                        p.org.banksPerVault);
    for (int i = 0; i < 32; ++i) {
        q.push_back({static_cast<Addr>((i % 8) * 32), 32, false});
        q.push_back({rowB + static_cast<Addr>((i % 8) * 32), 32, false});
    }
    Vault fcfs(p.timing, p.org, 1);
    Vault frfcfs(p.timing, p.org, 8);
    VaultStats s1 = fcfs.service(q, 0);
    VaultStats s2 = frfcfs.service(q, 0);
    EXPECT_LT(s2.rowMisses, s1.rowMisses);
    EXPECT_LE(s2.busyUntil, s1.busyUntil);
}

TEST(Vault, WritesPayWriteRecovery)
{
    DramParams p = hmcStack();
    std::vector<Request> reads, writes;
    // Alternate banks are irrelevant: hammer one bank's row boundary so
    // tWR lands on the critical path of the following activate.
    const Addr rowB = static_cast<Addr>(p.org.rowBytes *
                                        p.org.banksPerVault);
    for (int i = 0; i < 32; ++i) {
        Addr a = i % 2 ? rowB : 0;
        reads.push_back({a, 32, false});
        writes.push_back({a, 32, true});
    }
    Vault v1(p.timing, p.org, 1), v2(p.timing, p.org, 1);
    EXPECT_LT(v1.service(reads, 0).busyUntil,
              v2.service(writes, 0).busyUntil);
}

TEST(Vault, RejectsOversizedRequest)
{
    DramParams p = hmcStack();
    Vault v(p.timing, p.org);
    std::vector<Request> q{{0, 4096, false}};
    EXPECT_THROW(v.service(q, 0), PanicError);
}

TEST(Stack, BandwidthBelowPeak)
{
    DramParams p = hmcStack();
    Stack s(p);
    RunStats r = s.run(linearTrace(p, 32_MiB));
    EXPECT_LE(r.bandwidth(), p.peakInternalBandwidth() * 1.001);
    EXPECT_GT(r.bandwidth(), 0.0);
}

TEST(Stack, SequentialStreamNearPeak)
{
    DramParams p = hmcStack();
    Stack s(p);
    RunStats r = s.run(linearTrace(p, 32_MiB));
    // A pure sequential read stream should exceed 60% of peak on an
    // open-page stack.
    EXPECT_GT(r.bandwidth(), 0.6 * p.peakInternalBandwidth());
    EXPECT_GT(r.rowHitRate(), 0.8);
}

TEST(Stack, RandomStreamMuchSlowerThanSequential)
{
    DramParams p = hmcStack();
    Stack s(p);
    RunStats seq = s.run(linearTrace(p, 8_MiB));

    TraceBuilder tb(p, 64_MiB);
    Rng rng(17);
    tb.addGather(0, 1_GiB, 8_MiB / 4, 4, false, rng);
    RunStats rnd = s.run(tb.build());
    EXPECT_LT(rnd.bandwidth(), seq.bandwidth() / 4.0);
}

TEST(Stack, TimeScalesLinearlyWithTraffic)
{
    DramParams p = hmcStack();
    Stack s(p);
    RunStats a = s.run(linearTrace(p, 4_MiB));
    RunStats b = s.run(linearTrace(p, 16_MiB));
    EXPECT_NEAR(b.seconds / a.seconds, 4.0, 0.4);
}

TEST(Stack, SampledRunMatchesFullRun)
{
    DramParams p = hmcStack();
    Stack s(p);

    // Full simulation of 8 MiB...
    TraceBuilder full(p, 64_MiB);
    full.addLinear(0, 8_MiB, false);
    RunStats rf = s.run(full.build());

    // ...versus a 1 MiB sampled window extrapolated 8x.
    TraceBuilder sampled(p, 1_MiB);
    sampled.addLinear(0, 8_MiB, false);
    Trace t = sampled.build();
    EXPECT_LT(t.requests.size() * 4, 8_MiB / p.timing.burstBytes * 4);
    RunStats rs = s.run(t);

    EXPECT_NEAR(rs.seconds / rf.seconds, 1.0, 0.05);
    EXPECT_NEAR(rs.energyJ / rf.energyJ, 1.0, 0.05);
}

TEST(Stack, EnergyIncreasesWithRandomness)
{
    DramParams p = hmcStack();
    Stack s(p);
    RunStats seq = s.run(linearTrace(p, 8_MiB));

    TraceBuilder tb(p, 64_MiB);
    Rng rng(23);
    tb.addGather(0, 1_GiB, 8_MiB / 32, 32, false, rng);
    RunStats rnd = s.run(tb.build());
    // Same traffic, far more activates -> more energy.
    EXPECT_GT(rnd.energyJ, seq.energyJ);
    EXPECT_GT(rnd.activates, seq.activates * 2);
}

TEST(Stack, OwnershipExcludesSimultaneousUse)
{
    Stack s(hmcStack());
    s.acquire(Owner::Accelerator);
    EXPECT_THROW(s.acquire(Owner::Cpu), FatalError);
    s.release(Owner::Accelerator);
    EXPECT_NO_THROW(s.acquire(Owner::Cpu));
    s.release(Owner::Cpu);
}

TEST(Stack, ReleaseWithoutAcquireIsFatal)
{
    Stack s(hmcStack());
    EXPECT_THROW(s.release(Owner::Cpu), FatalError);
}

TEST(TraceBuilder, InterleavesStreamsProportionally)
{
    DramParams p = hmcStack();
    TraceBuilder tb(p, 64_MiB);
    tb.addLinear(0, 64_KiB, false);
    tb.addLinear(1_MiB, 64_KiB, true);
    Trace t = tb.build();

    // Within any prefix, the two streams should stay near 50/50.
    std::uint64_t reads = 0, writes = 0;
    std::size_t half = t.requests.size() / 2;
    for (std::size_t i = 0; i < half; ++i)
        (t.requests[i].isWrite ? writes : reads)++;
    EXPECT_NEAR(static_cast<double>(reads) / static_cast<double>(half),
                0.5, 0.05);
}

TEST(TraceBuilder, ScaleReflectsSampling)
{
    DramParams p = hmcStack();
    TraceBuilder tb(p, 1_MiB);
    tb.addLinear(0, 16_MiB, false);
    Trace t = tb.build();
    EXPECT_NEAR(t.scale(), 16.0, 0.2);
    EXPECT_EQ(t.totalBytes, 16_MiB);
}

TEST(TraceBuilder, StridedCoversRequestedChunks)
{
    DramParams p = hmcStack();
    TraceBuilder tb(p, 64_MiB);
    tb.addStrided(0, 64, 4096, 100, false);
    Trace t = tb.build();
    EXPECT_EQ(t.totalBytes, 6400u);
    std::uint64_t bytes = 0;
    for (const Request &r : t.requests)
        bytes += r.bytes;
    EXPECT_EQ(bytes, 6400u);
}

TEST(TraceBuilder, GatherStaysInRegion)
{
    DramParams p = hmcStack();
    TraceBuilder tb(p, 64_MiB);
    Rng rng(9);
    tb.addGather(4096, 8192, 1000, 4, false, rng);
    Trace t = tb.build();
    for (const Request &r : t.requests) {
        EXPECT_GE(r.addr, 4096u);
        EXPECT_LT(r.addr + r.bytes, 4096u + 8192u + p.timing.burstBytes);
    }
}

TEST(TraceIo, RoundTripsExactly)
{
    DramParams p = hmcStack();
    TraceBuilder tb(p, 1_MiB);
    tb.addLinear(0, 256_KiB, false);
    tb.addLinear(1_MiB, 128_KiB, true);
    Trace t = tb.build();
    Trace back = readTrace(writeTrace(t));
    ASSERT_EQ(back.requests.size(), t.requests.size());
    EXPECT_EQ(back.sampledBytes, t.sampledBytes);
    EXPECT_EQ(back.totalBytes, t.totalBytes);
    for (std::size_t i = 0; i < t.requests.size(); ++i) {
        EXPECT_EQ(back.requests[i].addr, t.requests[i].addr);
        EXPECT_EQ(back.requests[i].bytes, t.requests[i].bytes);
        EXPECT_EQ(back.requests[i].isWrite, t.requests[i].isWrite);
    }
}

TEST(TraceIo, ReplayedTraceSimulatesIdentically)
{
    DramParams p = hmcStack();
    Stack s(p);
    TraceBuilder tb(p, 1_MiB);
    tb.addLinear(0, 512_KiB, false);
    Trace t = tb.build();
    RunStats direct = s.run(t);
    RunStats replay = s.run(readTrace(writeTrace(t)));
    EXPECT_DOUBLE_EQ(replay.seconds, direct.seconds);
    EXPECT_DOUBLE_EQ(replay.energyJ, direct.energyJ);
}

TEST(TraceIo, MalformedInputIsFatal)
{
    EXPECT_THROW(readTrace(""), FatalError);
    EXPECT_THROW(readTrace("R 0 32\n"), FatalError); // no header
    EXPECT_THROW(readTrace("# mealib-trace sampled=1 total=1\n"
                           "X 0 32\n"),
                 FatalError);
    EXPECT_THROW(readTrace("# mealib-trace sampled=1 total=1\n"
                           "R 0 0\n"),
                 FatalError);
}

} // namespace
} // namespace mealib::dram
