// Tests for cross-command operand residency, flush/verify elision, and
// descriptor-program fusion (docs/RUNTIME.md, docs/DISPATCH.md).
//
// CI runs this binary under MEALIB_NUM_THREADS=1, 2 and 8: every
// assertion here — in particular the fused-vs-unfused memcmp — must
// hold for any thread count.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "apps/sar.hh"
#include "apps/stap.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "dispatch/backend.hh"
#include "dispatch/dispatcher.hh"
#include "dispatch/opdesc.hh"
#include "dispatch/policy.hh"
#include "minimkl/blas1.hh"
#include "runtime/residency.hh"
#include "runtime/runtime.hh"

namespace mealib::runtime {
namespace {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;
using mkl::cfloat;

// --- IntervalSet ------------------------------------------------------

TEST(IntervalSet, InsertCoalescesAdjacentAndOverlapping)
{
    IntervalSet s;
    s.insert(0, 100);
    s.insert(100, 200); // adjacent
    s.insert(150, 300); // overlapping
    EXPECT_EQ(s.rangeCount(), 1u);
    EXPECT_EQ(s.coveredBytes(0, 300), 300u);
    s.insert(400, 500); // disjoint
    EXPECT_EQ(s.rangeCount(), 2u);
    EXPECT_EQ(s.coveredBytes(0, 1000), 400u);
}

TEST(IntervalSet, EraseSplitsPartiallyCoveredRanges)
{
    IntervalSet s;
    s.insert(0, 1000);
    s.erase(400, 600);
    EXPECT_EQ(s.rangeCount(), 2u);
    EXPECT_EQ(s.coveredBytes(0, 1000), 800u);
    EXPECT_EQ(s.coveredBytes(400, 600), 0u);
    EXPECT_EQ(s.coveredBytes(300, 700), 200u);
    s.erase(0, 1000);
    EXPECT_TRUE(s.empty());
}

// --- ResidencyTracker -------------------------------------------------

TEST(Residency, CommitMakesFootprintFlushClean)
{
    ResidencyTracker t;
    std::vector<AccessInterval> iv = {{0, 1024, false},
                                      {2048, 3072, true}};
    EXPECT_EQ(t.flushCleanReadBytes(iv), 0u);
    t.commit(iv, /*verified=*/false);
    EXPECT_EQ(t.flushCleanReadBytes(iv), 1024u);
    EXPECT_EQ(ResidencyTracker::readBytes(iv), 1024u);
    // Unverified: the written range must not be verify-clean.
    EXPECT_EQ(t.verifyClean().coveredBytes(2048, 3072), 0u);
}

TEST(Residency, VerifiedCommitCachesChecksums)
{
    ResidencyTracker t;
    std::vector<AccessInterval> iv = {{0, 1024, false},
                                      {2048, 3072, true}};
    t.commit(iv, /*verified=*/true);
    EXPECT_EQ(t.verifyCleanBytes(iv), 2048u);
}

TEST(Residency, HostWriteDropsBothStates)
{
    ResidencyTracker t;
    std::vector<AccessInterval> iv = {{0, 4096, false}};
    t.commit(iv, true);
    t.hostWrite(1024, 2048);
    EXPECT_EQ(t.flushCleanReadBytes(iv), 3072u);
    EXPECT_EQ(t.verifyCleanBytes(iv), 3072u);
}

TEST(Residency, DropRangeForgetsAStackSpan)
{
    ResidencyTracker t;
    t.commit({{0, 4096, false}, {8192, 12288, false}}, true);
    t.dropRange(0, 8192); // e.g. stack 0 died
    EXPECT_EQ(t.flushClean().coveredBytes(0, 8192), 0u);
    EXPECT_EQ(t.flushClean().coveredBytes(8192, 12288), 4096u);
}

// --- runtime-level elision --------------------------------------------

RuntimeConfig
smallCfg(bool residency)
{
    RuntimeConfig cfg;
    cfg.backingBytes = 16_MiB;
    cfg.residency.enabled = residency;
    return cfg;
}

/** One 1D complex FFT program over freshly planned descriptors. */
OpCall
fftCall(Addr in, Addr out, std::uint64_t n)
{
    OpCall fft;
    fft.kind = AccelKind::FFT;
    fft.n = n;
    fft.m = 1;
    fft.complexData = true;
    fft.fftDir = -1;
    fft.in0 = {in, {0, 0, 0, 0}};
    fft.out = {out, {0, 0, 0, 0}};
    return fft;
}

TEST(Residency, ChainedCommandsHaveNonIncreasingInvocationCost)
{
    MealibRuntime rt(smallCfg(true));
    const std::uint64_t n = 1024;
    auto *in = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *out = static_cast<cfloat *>(rt.memAlloc(n * 8));
    Rng rng(3);
    for (std::uint64_t i = 0; i < n; ++i)
        in[i] = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    rt.noteHostWrite(in, n * 8);

    DescriptorProgram d;
    d.addComp(fftCall(rt.physOf(in), rt.physOf(out), n));
    d.addPassEnd();

    std::vector<double> deltas;
    for (int k = 0; k < 5; ++k) {
        const double before = rt.accounting().invocation.seconds;
        auto h = rt.accPlan(d);
        rt.accExecute(h);
        rt.accDestroy(h);
        deltas.push_back(rt.accounting().invocation.seconds - before);
    }
    // Warm invocations elide the flush entirely: strictly cheaper than
    // the cold one, then flat.
    EXPECT_LT(deltas[1], deltas[0]);
    for (std::size_t k = 1; k + 1 < deltas.size(); ++k)
        EXPECT_LE(deltas[k + 1], deltas[k]);
    EXPECT_GT(rt.accounting().flushBytesElided, 0u);
    // The identical program was served from the descriptor-image memo.
    EXPECT_EQ(rt.accounting().planImageReuses, 4u);

    rt.memFree(in);
    rt.memFree(out);
}

TEST(Residency, HostWriteHazardRestoresColdFlushCost)
{
    MealibRuntime rt(smallCfg(true));
    const std::uint64_t n = 1024;
    auto *in = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *out = static_cast<cfloat *>(rt.memAlloc(n * 8));
    for (std::uint64_t i = 0; i < n; ++i)
        in[i] = {1.0f, 0.0f};
    rt.noteHostWrite(in, n * 8);

    DescriptorProgram d;
    d.addComp(fftCall(rt.physOf(in), rt.physOf(out), n));
    d.addPassEnd();

    auto step = [&] {
        const double before = rt.accounting().invocation.seconds;
        auto h = rt.accPlan(d);
        rt.accExecute(h);
        rt.accDestroy(h);
        return rt.accounting().invocation.seconds - before;
    };
    const double cold = step();
    const double warm = step();
    EXPECT_LT(warm, cold);

    // The host rewrites the input: the next invocation pays the full
    // flush again, exactly the cold cost.
    for (std::uint64_t i = 0; i < n; ++i)
        in[i] = {2.0f, 0.0f};
    rt.noteHostWrite(in, n * 8);
    EXPECT_DOUBLE_EQ(step(), cold);

    rt.memFree(in);
    rt.memFree(out);
}

TEST(Residency, StackDeathDropsResidency)
{
    RuntimeConfig cfg;
    cfg.backingBytes = 32_MiB;
    cfg.numStacks = 2;
    cfg.residency.enabled = true;
    MealibRuntime rt(cfg);

    const std::uint64_t n = 1024;
    auto *in = static_cast<cfloat *>(rt.memAllocOn(1, n * 8));
    auto *out = static_cast<cfloat *>(rt.memAllocOn(1, n * 8));
    for (std::uint64_t i = 0; i < n; ++i)
        in[i] = {1.0f, 1.0f};
    rt.noteHostWrite(in, n * 8);

    DescriptorProgram d;
    d.addComp(fftCall(rt.physOf(in), rt.physOf(out), n));
    d.addPassEnd();
    auto h = rt.accPlan(d);
    rt.accExecute(h);
    rt.accDestroy(h);

    const Addr lo = rt.physOf(in);
    EXPECT_GT(rt.residency().flushClean().coveredBytes(lo, lo + n * 8),
              0u);
    rt.failStack(1);
    EXPECT_EQ(rt.residency().flushClean().coveredBytes(lo, lo + n * 8),
              0u);
}

TEST(Residency, MemFreeDropsResidency)
{
    MealibRuntime rt(smallCfg(true));
    const std::uint64_t n = 1024;
    auto *in = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *out = static_cast<cfloat *>(rt.memAlloc(n * 8));
    for (std::uint64_t i = 0; i < n; ++i)
        in[i] = {1.0f, 1.0f};

    DescriptorProgram d;
    d.addComp(fftCall(rt.physOf(in), rt.physOf(out), n));
    d.addPassEnd();
    auto h = rt.accPlan(d);
    rt.accExecute(h);
    rt.accDestroy(h);

    const Addr lo = rt.physOf(in);
    EXPECT_GT(rt.residency().flushClean().coveredBytes(lo, lo + n * 8),
              0u);
    rt.memFree(in);
    EXPECT_EQ(rt.residency().flushClean().coveredBytes(lo, lo + n * 8),
              0u);
    rt.memFree(out);
}

TEST(Residency, VerifyElisionSkipsCachedChecksums)
{
    RuntimeConfig cfg = smallCfg(true);
    cfg.integrity.verifyTransfers = true;
    cfg.integrity.checksumSecondsPerByte = 1.0e-10;
    cfg.integrity.checksumJPerByte = 1.0e-12;
    MealibRuntime rt(cfg);

    const std::uint64_t n = 1024;
    auto *in = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *out = static_cast<cfloat *>(rt.memAlloc(n * 8));
    for (std::uint64_t i = 0; i < n; ++i)
        in[i] = {1.0f, 0.0f};
    rt.noteHostWrite(in, n * 8);

    DescriptorProgram d;
    d.addComp(fftCall(rt.physOf(in), rt.physOf(out), n));
    d.addPassEnd();
    for (int k = 0; k < 3; ++k) {
        auto h = rt.accPlan(d);
        rt.accExecute(h);
        rt.accDestroy(h);
    }
    EXPECT_GT(rt.accounting().verifyBytesElided, 0u);

    rt.memFree(in);
    rt.memFree(out);
}

// --- app-level chains -------------------------------------------------

TEST(Residency, SarChainElidesFlushesWithIdenticalImage)
{
    MealibRuntime off(smallCfg(false));
    apps::SarResult roff = apps::runSarChain(64, false, off, 11);

    MealibRuntime on(smallCfg(true));
    apps::SarResult ron = apps::runSarChain(64, false, on, 11);

    // Functional output is byte-identical; only modeled cost moves.
    ASSERT_EQ(ron.image.size(), roff.image.size());
    EXPECT_EQ(std::memcmp(ron.image.data(), roff.image.data(),
                          roff.image.size() * sizeof(cfloat)),
              0);
    EXPECT_GT(on.accounting().flushBytesElided, 0u);
    EXPECT_LT(on.accounting().invocation.seconds,
              off.accounting().invocation.seconds);
    // Off-path neutrality: no reuse counter may move.
    EXPECT_EQ(off.accounting().flushBytesElided, 0u);
    EXPECT_EQ(off.accounting().verifyBytesElided, 0u);
    EXPECT_EQ(off.accounting().planImageReuses, 0u);
}

TEST(Residency, StapChainElidesFlushesWithIdenticalProducts)
{
    apps::StapParams p = apps::StapParams::smallSet();

    RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    MealibRuntime off(cfg);
    apps::StapResult roff = apps::runStapMealib(p, off);

    cfg.residency.enabled = true;
    MealibRuntime on(cfg);
    apps::StapResult ron = apps::runStapMealib(p, on);

    ASSERT_EQ(ron.prods.size(), roff.prods.size());
    EXPECT_EQ(std::memcmp(ron.prods.data(), roff.prods.data(),
                          roff.prods.size() * sizeof(cfloat)),
              0);
    EXPECT_GT(on.accounting().flushBytesElided, 0u);
    EXPECT_LE(ron.invocation.seconds, roff.invocation.seconds);
}

TEST(Residency, DisabledLayersAreBitForBitDeterministic)
{
    // The neutrality pin: with every reuse layer off, two identical
    // runs produce identical ledgers and identical outputs, and the
    // ledger/accounting invariant holds exactly.
    auto run = [](apps::SarResult *res) {
        MealibRuntime rt(smallCfg(false));
        *res = apps::runSarChain(64, false, rt, 5);
        const RuntimeAccounting &a = rt.accounting();
        EXPECT_EQ(a.flushBytesElided, 0u);
        EXPECT_EQ(a.verifyBytesElided, 0u);
        EXPECT_EQ(a.handshakesElided, 0u);
        EXPECT_EQ(a.fusedPrograms, 0u);
        EXPECT_DOUBLE_EQ(rt.ledger().total().seconds,
                         a.total().seconds);
        EXPECT_DOUBLE_EQ(rt.ledger().total().joules, a.total().joules);
        return a.total();
    };
    apps::SarResult r1, r2;
    const Cost t1 = run(&r1);
    const Cost t2 = run(&r2);
    EXPECT_DOUBLE_EQ(t1.seconds, t2.seconds);
    EXPECT_DOUBLE_EQ(t1.joules, t2.joules);
    EXPECT_EQ(std::memcmp(r1.image.data(), r2.image.data(),
                          r1.image.size() * sizeof(cfloat)),
              0);
}

TEST(Residency, ResetAccountingForgetsResidency)
{
    MealibRuntime rt(smallCfg(true));
    const std::uint64_t n = 1024;
    auto *in = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *out = static_cast<cfloat *>(rt.memAlloc(n * 8));
    for (std::uint64_t i = 0; i < n; ++i)
        in[i] = {1.0f, 1.0f};

    DescriptorProgram d;
    d.addComp(fftCall(rt.physOf(in), rt.physOf(out), n));
    d.addPassEnd();
    auto h = rt.accPlan(d);
    rt.accExecute(h);
    rt.accDestroy(h);
    EXPECT_FALSE(rt.residency().flushClean().empty());
    rt.resetAccounting();
    EXPECT_TRUE(rt.residency().flushClean().empty());
    rt.memFree(in);
    rt.memFree(out);
}

} // namespace
} // namespace mealib::runtime

// --- descriptor-program fusion ----------------------------------------

namespace mealib::dispatch {
namespace {

/** Run a chain of AXPYs through the dispatcher with the given fusion
 * window; returns the final y vector and leaves counters in @p rt. */
std::vector<float>
runAxpyChain(runtime::MealibRuntime &rt, unsigned window)
{
    const std::int64_t n = 4096;
    auto *x = static_cast<float *>(rt.memAlloc(n * 4));
    auto *y = static_cast<float *>(rt.memAlloc(n * 4));
    Rng rng(17);
    for (std::int64_t i = 0; i < n; ++i) {
        x[i] = rng.uniform(-1.0f, 1.0f);
        y[i] = rng.uniform(-1.0f, 1.0f);
    }

    Dispatcher disp(makePolicy("accel"));
    RuntimeBackend backend(rt, window);
    disp.attachBackend(&backend);
    for (int k = 0; k < 8; ++k) {
        const float a = 0.25f + 0.125f * static_cast<float>(k);
        OpDesc d = lowerSaxpy(n, a, x, 1, y, 1);
        disp.run(d, [&] { mkl::saxpy(n, a, x, 1, y, 1); });
    }
    disp.detachBackend(); // syncs any still-buffered calls

    std::vector<float> result(y, y + n);
    rt.memFree(x);
    rt.memFree(y);
    return result;
}

TEST(Fusion, FusedChainIsNumericallyIdenticalAndCheaper)
{
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 16_MiB;

    runtime::MealibRuntime unfused(cfg);
    std::vector<float> y1 = runAxpyChain(unfused, 1);
    EXPECT_EQ(unfused.accounting().fusedPrograms, 0u);
    EXPECT_EQ(unfused.accounting().handshakesElided, 0u);

    runtime::MealibRuntime fused(cfg);
    std::vector<float> y4 = runAxpyChain(fused, 4);
    // 8 calls, window 4: two fused programs, six handshakes saved.
    EXPECT_EQ(fused.accounting().fusedPrograms, 2u);
    EXPECT_EQ(fused.accounting().handshakesElided, 6u);

    // Bit-for-bit identical results for every MEALIB_NUM_THREADS.
    EXPECT_EQ(std::memcmp(y1.data(), y4.data(), y1.size() * 4), 0);

    // Fewer invocations: the fused run's flush+handshake cost is
    // strictly below the unfused run's.
    EXPECT_LT(fused.accounting().invocation.seconds,
              unfused.accounting().invocation.seconds);
}

TEST(Fusion, WindowFlushesOnSyncBeforeHostReadback)
{
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 16_MiB;
    runtime::MealibRuntime rt(cfg);

    const std::int64_t n = 256;
    auto *x = static_cast<float *>(rt.memAlloc(n * 4));
    auto *y = static_cast<float *>(rt.memAlloc(n * 4));
    for (std::int64_t i = 0; i < n; ++i) {
        x[i] = 1.0f;
        y[i] = 0.0f;
    }

    Dispatcher disp(makePolicy("accel"));
    RuntimeBackend backend(rt, 8); // window never fills on its own
    disp.attachBackend(&backend);
    OpDesc d = lowerSaxpy(n, 3.0f, x, 1, y, 1);
    disp.run(d, [&] { mkl::saxpy(n, 3.0f, x, 1, y, 1); });
    EXPECT_EQ(backend.pendingCount(), 1u);
    backend.sync();
    EXPECT_EQ(backend.pendingCount(), 0u);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    disp.detachBackend();

    rt.memFree(x);
    rt.memFree(y);
}

} // namespace
} // namespace mealib::dispatch
