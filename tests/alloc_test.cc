// Tests for the contiguous allocator underneath mealib_mem_alloc.

#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "runtime/alloc.hh"

namespace mealib::runtime {
namespace {

TEST(Alloc, BasicAllocFree)
{
    ContigAllocator a(0, 1 << 20);
    Addr p = a.alloc(1000);
    EXPECT_EQ(a.allocationCount(), 1u);
    EXPECT_GE(a.bytesInUse(), 1000u);
    a.free(p);
    EXPECT_EQ(a.allocationCount(), 0u);
    EXPECT_EQ(a.bytesInUse(), 0u);
}

TEST(Alloc, ReturnsAlignedAddresses)
{
    ContigAllocator a(3, 1 << 20, 64); // deliberately unaligned base
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.alloc(100) % 64, 0u);
}

TEST(Alloc, AllocationsDoNotOverlap)
{
    ContigAllocator a(0, 1 << 20);
    std::vector<std::pair<Addr, std::uint64_t>> blocks;
    for (int i = 1; i <= 50; ++i) {
        std::uint64_t sz = static_cast<std::uint64_t>(i) * 37;
        Addr p = a.alloc(sz);
        for (const auto &[q, qs] : blocks)
            EXPECT_TRUE(p + sz <= q || q + qs <= p)
                << "overlap between " << p << " and " << q;
        blocks.emplace_back(p, sz);
    }
}

TEST(Alloc, CoalescingRestoresFullRegion)
{
    ContigAllocator a(0, 4096);
    Addr p1 = a.alloc(1024);
    Addr p2 = a.alloc(1024);
    Addr p3 = a.alloc(1024);
    // Free out of order: middle, last, first.
    a.free(p2);
    a.free(p3);
    a.free(p1);
    EXPECT_EQ(a.largestFreeBlock(), 4096u);
    // The whole region is again allocatable in one block.
    EXPECT_NO_THROW(a.alloc(4096));
}

TEST(Alloc, OutOfMemoryIsRecoverable)
{
    ContigAllocator a(0, 4096);
    a.alloc(4096);
    // Exhaustion is a condition an embedding system must survive: a
    // recoverable MealibError from the throwing wrapper, a non-ok
    // Status with code Exhausted from tryAlloc.
    EXPECT_THROW(a.alloc(1), MealibError);
    Addr out = 0;
    Status s = a.tryAlloc(1, &out);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Exhausted);
}

TEST(Alloc, FragmentationPreventsLargeAlloc)
{
    ContigAllocator a(0, 4096, 1);
    Addr p1 = a.alloc(1024);
    Addr p2 = a.alloc(1024);
    Addr p3 = a.alloc(1024);
    Addr p4 = a.alloc(1024);
    (void)p1;
    (void)p3;
    a.free(p2);
    a.free(p4);
    // 2048 bytes free but not contiguous.
    EXPECT_EQ(a.largestFreeBlock(), 1024u);
    EXPECT_THROW(a.alloc(2048), MealibError);
}

TEST(Alloc, DoubleFreeIsRecoverable)
{
    ContigAllocator a(0, 4096);
    Addr p = a.alloc(64);
    a.free(p);
    EXPECT_THROW(a.free(p), MealibError);
    EXPECT_EQ(a.tryFree(p).code(), ErrorCode::InvalidArgument);
}

TEST(Alloc, FreeOfBogusAddressIsRecoverable)
{
    ContigAllocator a(0, 4096);
    EXPECT_THROW(a.free(12345), MealibError);
    EXPECT_EQ(a.tryFree(12345).code(), ErrorCode::InvalidArgument);
}

TEST(Alloc, TryAllocTryFreeRoundTrip)
{
    ContigAllocator a(0, 4096, 64);
    Addr p = 0;
    ASSERT_TRUE(a.tryAlloc(100, &p).ok());
    EXPECT_EQ(a.allocationCount(), 1u);
    std::uint64_t freed = 0;
    ASSERT_TRUE(a.tryFree(p, &freed).ok());
    EXPECT_EQ(freed, 128u); // rounded to alignment
    EXPECT_EQ(a.bytesInUse(), 0u);
}

TEST(Alloc, TryAllocExhaustionLeavesStateUsable)
{
    // After a failed allocation the allocator still serves requests
    // that fit — no partial state was consumed by the failure.
    ContigAllocator a(0, 4096, 1);
    Addr p = 0;
    ASSERT_TRUE(a.tryAlloc(3000, &p).ok());
    Addr q = 0;
    EXPECT_EQ(a.tryAlloc(2000, &q).code(), ErrorCode::Exhausted);
    EXPECT_TRUE(a.tryAlloc(1000, &q).ok());
    EXPECT_EQ(a.allocationCount(), 2u);
}

TEST(Alloc, SizeOfTracksRoundedSize)
{
    ContigAllocator a(0, 4096, 64);
    Addr p = a.alloc(100);
    EXPECT_EQ(a.sizeOf(p), 128u); // rounded to alignment
}

TEST(Alloc, ZeroByteAllocIsRejected)
{
    ContigAllocator a(0, 4096);
    EXPECT_THROW(a.alloc(0), MealibError);
    Addr out = 0;
    EXPECT_EQ(a.tryAlloc(0, &out).code(), ErrorCode::InvalidArgument);
}

TEST(Alloc, StressRandomAllocFree)
{
    // Property test: after any interleaving of allocs and frees, freeing
    // everything restores one maximal hole.
    ContigAllocator a(0, 1 << 22);
    Rng rng(99);
    std::vector<Addr> live;
    for (int step = 0; step < 2000; ++step) {
        bool do_alloc = live.empty() || rng.uniform() < 0.6;
        if (do_alloc) {
            std::uint64_t sz = 1 + rng.below(2000);
            live.push_back(a.alloc(sz));
        } else {
            std::size_t i = static_cast<std::size_t>(
                rng.below(live.size()));
            a.free(live[i]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        }
    }
    for (Addr p : live)
        a.free(p);
    EXPECT_EQ(a.bytesInUse(), 0u);
    EXPECT_EQ(a.largestFreeBlock(), 1u << 22);
}

} // namespace
} // namespace mealib::runtime
