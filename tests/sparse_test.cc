// Tests for CSR storage, SpMV and the matrix generators.

#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "minimkl/naive.hh"
#include "minimkl/sparse.hh"

namespace mealib::mkl {
namespace {

TEST(CsrFromTriplets, BuildsSortedRows)
{
    std::vector<Triplet> t{{1, 2, 3.0f}, {0, 1, 1.0f}, {1, 0, 2.0f}};
    CsrMatrix m = csrFromTriplets(2, 3, t);
    m.validate();
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_EQ(m.rowPtr[0], 0);
    EXPECT_EQ(m.rowPtr[1], 1);
    EXPECT_EQ(m.rowPtr[2], 3);
    EXPECT_EQ(m.colIdx[0], 1);
    EXPECT_EQ(m.colIdx[1], 0);
    EXPECT_EQ(m.colIdx[2], 2);
}

TEST(CsrFromTriplets, SumsDuplicates)
{
    std::vector<Triplet> t{{0, 0, 1.0f}, {0, 0, 2.5f}};
    CsrMatrix m = csrFromTriplets(1, 1, t);
    EXPECT_EQ(m.nnz(), 1);
    EXPECT_FLOAT_EQ(m.vals[0], 3.5f);
}

TEST(CsrFromTriplets, OutOfRangeIsFatal)
{
    std::vector<Triplet> t{{0, 5, 1.0f}};
    EXPECT_THROW(csrFromTriplets(2, 2, t), FatalError);
}

TEST(CsrValidate, CatchesBadStructure)
{
    CsrMatrix m;
    m.rows = 1;
    m.cols = 2;
    m.rowPtr = {0, 1};
    m.colIdx = {5}; // out of range
    m.vals = {1.0f};
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(Scsrmv, MatchesNaive)
{
    Rng rng(1);
    CsrMatrix m = bandMatrix(100, 3);
    std::vector<float> x(100), y(100), y_ref(100);
    for (auto &v : x)
        v = rng.uniform(-1.0f, 1.0f);
    scsrmv(m, x.data(), y.data());
    naive::spmv(m, x.data(), y_ref.data());
    // scsrmv accumulates in double, the naive oracle in float; allow
    // one-ulp-scale rounding differences.
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], y_ref[i], 1e-5f);
}

TEST(Scsrmv, IdentityActsAsIdentity)
{
    std::vector<Triplet> t;
    for (std::int64_t i = 0; i < 10; ++i)
        t.push_back({i, i, 1.0f});
    CsrMatrix eye = csrFromTriplets(10, 10, t);
    Rng rng(2);
    std::vector<float> x(10), y(10);
    for (auto &v : x)
        v = rng.uniform(-5.0f, 5.0f);
    scsrmv(eye, x.data(), y.data());
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Scsrmv, EmptyRowsProduceZero)
{
    std::vector<Triplet> t{{0, 0, 4.0f}};
    CsrMatrix m = csrFromTriplets(3, 3, t);
    std::vector<float> x{1, 1, 1}, y{9, 9, 9};
    scsrmv(m, x.data(), y.data());
    EXPECT_FLOAT_EQ(y[0], 4.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 0.0f);
}

TEST(ScsrmvTrans, MatchesExplicitTranspose)
{
    Rng rng(3);
    CsrMatrix m = bandMatrix(50, 2);
    std::vector<float> x(50), yt(50, 0.0f);
    for (auto &v : x)
        v = rng.uniform(-1.0f, 1.0f);
    scsrmvTrans(m, x.data(), yt.data());

    // Dense oracle for A^T x.
    std::vector<float> ref(50, 0.0f);
    for (std::int64_t r = 0; r < m.rows; ++r)
        for (std::int64_t k = m.rowPtr[r]; k < m.rowPtr[r + 1]; ++k)
            ref[static_cast<std::size_t>(m.colIdx[k])] +=
                m.vals[static_cast<std::size_t>(k)] *
                x[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(yt[i], ref[i], 1e-5f);
}

TEST(Rgg, StructureIsValidAndSymmetric)
{
    Rng rng(7);
    CsrMatrix g = randomGeometricGraph(2000, 12.0, rng);
    g.validate();
    EXPECT_EQ(g.rows, 2000);
    EXPECT_EQ(g.cols, 2000);

    // Symmetry: every (i,j) has a matching (j,i) with the same weight.
    for (std::int64_t r = 0; r < g.rows; ++r) {
        for (std::int64_t k = g.rowPtr[r]; k < g.rowPtr[r + 1]; ++k) {
            std::int64_t c = g.colIdx[k];
            bool found = false;
            for (std::int64_t k2 = g.rowPtr[c]; k2 < g.rowPtr[c + 1];
                 ++k2) {
                if (g.colIdx[k2] == r) {
                    EXPECT_FLOAT_EQ(
                        g.vals[static_cast<std::size_t>(k2)],
                        g.vals[static_cast<std::size_t>(k)]);
                    found = true;
                    break;
                }
            }
            EXPECT_TRUE(found) << "missing mirror of (" << r << "," << c
                               << ")";
        }
    }
}

TEST(Rgg, AverageDegreeNearTarget)
{
    Rng rng(11);
    CsrMatrix g = randomGeometricGraph(20000, 14.0, rng);
    // Boundary effects pull the mean below the interior expectation;
    // allow a generous band.
    EXPECT_GT(g.avgDegree(), 9.0);
    EXPECT_LT(g.avgDegree(), 16.0);
}

TEST(Rgg, NoSelfLoops)
{
    Rng rng(13);
    CsrMatrix g = randomGeometricGraph(3000, 10.0, rng);
    for (std::int64_t r = 0; r < g.rows; ++r)
        for (std::int64_t k = g.rowPtr[r]; k < g.rowPtr[r + 1]; ++k)
            EXPECT_NE(g.colIdx[k], r);
}

TEST(Rgg, DeterministicForSeed)
{
    Rng r1(17), r2(17);
    CsrMatrix a = randomGeometricGraph(1000, 8.0, r1);
    CsrMatrix b = randomGeometricGraph(1000, 8.0, r2);
    EXPECT_EQ(a.nnz(), b.nnz());
    EXPECT_EQ(a.colIdx, b.colIdx);
}

TEST(BandMatrix, BandStructure)
{
    CsrMatrix m = bandMatrix(10, 2);
    m.validate();
    for (std::int64_t r = 0; r < m.rows; ++r)
        for (std::int64_t k = m.rowPtr[r]; k < m.rowPtr[r + 1]; ++k)
            EXPECT_LE(std::abs(static_cast<long>(m.colIdx[k]) - r), 2);
}

TEST(Scsrmv, LinearityProperty)
{
    Rng rng(19);
    CsrMatrix m = randomGeometricGraph(500, 6.0, rng);
    std::vector<float> x1(500), x2(500), xs(500);
    for (std::size_t i = 0; i < 500; ++i) {
        x1[i] = rng.uniform(-1.0f, 1.0f);
        x2[i] = rng.uniform(-1.0f, 1.0f);
        xs[i] = x1[i] + x2[i];
    }
    std::vector<float> y1(500), y2(500), ys(500);
    scsrmv(m, x1.data(), y1.data());
    scsrmv(m, x2.data(), y2.data());
    scsrmv(m, xs.data(), ys.data());
    for (std::size_t i = 0; i < 500; ++i)
        EXPECT_NEAR(ys[i], y1[i] + y2[i], 1e-4f);
}

TEST(MatrixMarket, ParsesGeneralRealMatrix)
{
    const char *mtx =
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "2 3 3\n"
        "1 1 2.5\n"
        "2 3 -1.0\n"
        "1 2 4\n";
    CsrMatrix m = readMatrixMarket(mtx);
    m.validate();
    EXPECT_EQ(m.rows, 2);
    EXPECT_EQ(m.cols, 3);
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_FLOAT_EQ(m.vals[0], 2.5f);
    EXPECT_EQ(m.colIdx[1], 1);
    EXPECT_FLOAT_EQ(m.vals[2], -1.0f);
}

TEST(MatrixMarket, SymmetricExpandsMirrorEntries)
{
    const char *mtx =
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 5.0\n"
        "3 3 1.0\n";
    CsrMatrix m = readMatrixMarket(mtx);
    m.validate();
    EXPECT_EQ(m.nnz(), 3); // (2,1), (1,2) mirror, (3,3) diagonal once
}

TEST(MatrixMarket, PatternFieldDefaultsToOne)
{
    const char *mtx =
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 1\n"
        "2 2\n";
    CsrMatrix m = readMatrixMarket(mtx);
    EXPECT_FLOAT_EQ(m.vals[0], 1.0f);
    EXPECT_FLOAT_EQ(m.vals[1], 1.0f);
}

TEST(MatrixMarket, RoundTripsThroughWriter)
{
    Rng rng(31);
    CsrMatrix a = randomGeometricGraph(300, 6.0, rng);
    CsrMatrix b = readMatrixMarket(writeMatrixMarket(a));
    ASSERT_EQ(b.nnz(), a.nnz());
    EXPECT_EQ(b.rowPtr, a.rowPtr);
    EXPECT_EQ(b.colIdx, a.colIdx);
    for (std::size_t i = 0; i < a.vals.size(); ++i)
        EXPECT_NEAR(b.vals[i], a.vals[i], 1e-5f);
}

TEST(MatrixMarket, MalformedInputIsFatal)
{
    EXPECT_THROW(readMatrixMarket(""), FatalError);
    EXPECT_THROW(readMatrixMarket("%%MatrixMarket matrix array real "
                                  "general\n2 2\n"),
                 FatalError);
    EXPECT_THROW(readMatrixMarket("%%MatrixMarket matrix coordinate "
                                  "real general\n2 2 1\n5 5 1.0\n"),
                 FatalError);
    EXPECT_THROW(readMatrixMarket("%%MatrixMarket matrix coordinate "
                                  "real general\n2 2 2\n1 1 1.0\n"),
                 FatalError);
}

TEST(MatrixMarket, SpmvOnParsedMatrixMatchesGenerator)
{
    Rng rng(37);
    CsrMatrix a = randomGeometricGraph(200, 5.0, rng);
    CsrMatrix b = readMatrixMarket(writeMatrixMarket(a));
    std::vector<float> x(200), ya(200), yb(200);
    for (auto &v : x)
        v = rng.uniform(-1.0f, 1.0f);
    scsrmv(a, x.data(), ya.data());
    scsrmv(b, x.data(), yb.data());
    for (std::size_t i = 0; i < 200; ++i)
        EXPECT_NEAR(ya[i], yb[i], 1e-4f);
}

} // namespace
} // namespace mealib::mkl
