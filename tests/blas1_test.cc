// Unit and property tests for Level-1 BLAS.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "minimkl/blas1.hh"
#include "minimkl/naive.hh"

namespace mealib::mkl {
namespace {

std::vector<float>
randomVec(std::int64_t n, Rng &rng)
{
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

std::vector<cfloat>
randomCVec(std::int64_t n, Rng &rng)
{
    std::vector<cfloat> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    return v;
}

TEST(Saxpy, MatchesNaive)
{
    Rng rng(1);
    auto x = randomVec(257, rng);
    auto y = randomVec(257, rng);
    auto y2 = y;
    saxpy(257, 0.5f, x.data(), 1, y.data(), 1);
    naive::saxpy(257, 0.5f, x.data(), y2.data());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_FLOAT_EQ(y[i], y2[i]);
}

TEST(Saxpy, ZeroAlphaIsNoop)
{
    Rng rng(2);
    auto x = randomVec(64, rng);
    auto y = randomVec(64, rng);
    auto y0 = y;
    saxpy(64, 0.0f, x.data(), 1, y.data(), 1);
    EXPECT_EQ(y, y0);
}

TEST(Saxpy, StridedAccess)
{
    std::vector<float> x{1, 99, 2, 99, 3, 99};
    std::vector<float> y{10, 20, 30};
    saxpy(3, 2.0f, x.data(), 2, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 12.0f);
    EXPECT_FLOAT_EQ(y[1], 24.0f);
    EXPECT_FLOAT_EQ(y[2], 36.0f);
}

TEST(Saxpy, NegativeStrideReversesVector)
{
    std::vector<float> x{1, 2, 3};
    std::vector<float> y{0, 0, 0};
    // BLAS semantics: incx = -1 pairs x[n-1] with y[0].
    saxpy(3, 1.0f, x.data(), -1, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    EXPECT_FLOAT_EQ(y[1], 2.0f);
    EXPECT_FLOAT_EQ(y[2], 1.0f);
}

TEST(Saxpy, ZeroStrideIsFatal)
{
    std::vector<float> x{1}, y{1};
    EXPECT_THROW(saxpy(1, 1.0f, x.data(), 0, y.data(), 1), FatalError);
}

TEST(Sdot, MatchesNaiveWithinTolerance)
{
    Rng rng(3);
    auto x = randomVec(4096, rng);
    auto y = randomVec(4096, rng);
    float a = sdot(4096, x.data(), 1, y.data(), 1);
    float b = naive::sdot(4096, x.data(), y.data());
    EXPECT_NEAR(a, b, 1e-2f);
}

TEST(Sdot, EmptyIsZero)
{
    EXPECT_FLOAT_EQ(sdot(0, nullptr, 1, nullptr, 1), 0.0f);
}

TEST(Sdot, OrthogonalVectors)
{
    std::vector<float> x{1, 0, 1, 0};
    std::vector<float> y{0, 1, 0, 1};
    EXPECT_FLOAT_EQ(sdot(4, x.data(), 1, y.data(), 1), 0.0f);
}

TEST(Sdot, SelfDotIsNormSquared)
{
    Rng rng(4);
    auto x = randomVec(512, rng);
    float d = sdot(512, x.data(), 1, x.data(), 1);
    float n = snrm2(512, x.data(), 1);
    EXPECT_NEAR(d, n * n, 1e-3f * std::max(1.0f, d));
}

TEST(Snrm2, OverflowSafe)
{
    std::vector<float> x{3e19f, 4e19f};
    // Naive sum of squares would overflow float; slassq-style must not.
    EXPECT_NEAR(snrm2(2, x.data(), 1), 5e19f, 1e15f);
}

TEST(Saxpby, GeneralizesSaxpy)
{
    Rng rng(77);
    auto x = randomVec(100, rng);
    auto y1 = randomVec(100, rng);
    auto y2 = y1;
    saxpby(100, 0.7f, x.data(), 1, 1.0f, y1.data(), 1);
    saxpy(100, 0.7f, x.data(), 1, y2.data(), 1);
    EXPECT_EQ(y1, y2); // beta == 1 is exactly saxpy
}

TEST(Saxpby, ScalesBothTerms)
{
    std::vector<float> x{1, 2};
    std::vector<float> y{10, 20};
    saxpby(2, 2.0f, x.data(), 1, 3.0f, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 32.0f);
    EXPECT_FLOAT_EQ(y[1], 64.0f);
}

TEST(Saxpby, BetaZeroOverwrites)
{
    std::vector<float> x{5};
    std::vector<float> y{std::nanf("")};
    // beta = 0 must overwrite, even over NaN... note IEEE: 0*NaN = NaN,
    // so the implementation must special-case or the caller must not
    // rely on it; we document BLAS-like semantics: multiply-through.
    saxpby(1, 1.0f, x.data(), 1, 0.0f, y.data(), 1);
    EXPECT_TRUE(std::isnan(y[0]) || y[0] == 5.0f);
}

TEST(Sscal, ScalesInPlace)
{
    std::vector<float> x{1, 2, 3};
    sscal(3, 3.0f, x.data(), 1);
    EXPECT_FLOAT_EQ(x[2], 9.0f);
}

TEST(Scopy, CopiesWithStride)
{
    std::vector<float> x{1, 2, 3, 4};
    std::vector<float> y(2, 0.0f);
    scopy(2, x.data(), 2, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 1.0f);
    EXPECT_FLOAT_EQ(y[1], 3.0f);
}

TEST(Sasum, SumsAbsoluteValues)
{
    std::vector<float> x{-1, 2, -3};
    EXPECT_FLOAT_EQ(sasum(3, x.data(), 1), 6.0f);
}

TEST(Isamax, FindsLargestMagnitude)
{
    std::vector<float> x{1, -7, 3};
    EXPECT_EQ(isamax(3, x.data(), 1), 1);
    EXPECT_EQ(isamax(0, x.data(), 1), -1);
}

TEST(Caxpy, ComplexArithmetic)
{
    std::vector<cfloat> x{{1, 1}};
    std::vector<cfloat> y{{0, 0}};
    caxpy(1, {0, 1}, x.data(), 1, y.data(), 1); // i * (1+i) = -1+i
    EXPECT_FLOAT_EQ(y[0].real(), -1.0f);
    EXPECT_FLOAT_EQ(y[0].imag(), 1.0f);
}

TEST(Cdotc, ConjugatesFirstArgument)
{
    std::vector<cfloat> x{{0, 1}};
    std::vector<cfloat> y{{0, 1}};
    cfloat d = cdotc(1, x.data(), 1, y.data(), 1); // conj(i)*i = 1
    EXPECT_FLOAT_EQ(d.real(), 1.0f);
    EXPECT_FLOAT_EQ(d.imag(), 0.0f);
}

TEST(Cdotu, DoesNotConjugate)
{
    std::vector<cfloat> x{{0, 1}};
    std::vector<cfloat> y{{0, 1}};
    cfloat d = cdotu(1, x.data(), 1, y.data(), 1); // i*i = -1
    EXPECT_FLOAT_EQ(d.real(), -1.0f);
    EXPECT_FLOAT_EQ(d.imag(), 0.0f);
}

TEST(Cdotc, SelfDotIsRealNonNegative)
{
    Rng rng(5);
    auto x = randomCVec(333, rng);
    cfloat d = cdotc(333, x.data(), 1, x.data(), 1);
    EXPECT_GE(d.real(), 0.0f);
    EXPECT_NEAR(d.imag(), 0.0f, 1e-4f);
}

// Property sweep: saxpy linearity across sizes and strides.
class SaxpyProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(SaxpyProperty, Linearity)
{
    auto [n, inc] = GetParam();
    Rng rng(static_cast<std::uint64_t>(n * 31 + inc));
    auto x = randomVec(n * inc, rng);
    auto y = randomVec(n * inc, rng);

    // saxpy(a, x) then saxpy(b, x) == saxpy(a+b, x)
    auto y1 = y;
    saxpy(n, 0.3f, x.data(), inc, y1.data(), inc);
    saxpy(n, 0.7f, x.data(), inc, y1.data(), inc);
    auto y2 = y;
    saxpy(n, 1.0f, x.data(), inc, y2.data(), inc);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y1[i], y2[i], 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndStrides, SaxpyProperty,
    ::testing::Combine(::testing::Values(1, 2, 7, 64, 1000),
                       ::testing::Values(1, 2, 3)));

// Property sweep: dot symmetry and Cauchy-Schwarz.
class DotProperty : public ::testing::TestWithParam<int>
{};

TEST_P(DotProperty, SymmetricAndCauchySchwarz)
{
    int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n));
    auto x = randomVec(n, rng);
    auto y = randomVec(n, rng);
    float xy = sdot(n, x.data(), 1, y.data(), 1);
    float yx = sdot(n, y.data(), 1, x.data(), 1);
    EXPECT_FLOAT_EQ(xy, yx);
    float nx = snrm2(n, x.data(), 1);
    float ny = snrm2(n, y.data(), 1);
    EXPECT_LE(std::fabs(xy), nx * ny * (1.0f + 1e-5f) + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DotProperty,
                         ::testing::Values(1, 3, 17, 128, 1024, 9999));

} // namespace
} // namespace mealib::mkl
