// Tests for the OpCall traffic/flops accounting that feeds both the
// performance models and the host profiles.

#include <gtest/gtest.h>

#include "accel/ops.hh"
#include "common/logging.hh"

namespace mealib::accel {
namespace {

TEST(OperandIterations, ZeroStridesDoNotMultiply)
{
    LoopSpec loop;
    loop.dims = {4, 8, 2, 16};
    OperandRef all_moving{0, {1, 1, 1, 1}};
    OperandRef partial{0, {1, 0, 1, 0}};
    OperandRef fixed{0, {0, 0, 0, 0}};
    EXPECT_DOUBLE_EQ(operandIterations(all_moving, loop), 4.0 * 8 * 2 * 16);
    EXPECT_DOUBLE_EQ(operandIterations(partial, loop), 4.0 * 2);
    EXPECT_DOUBLE_EQ(operandIterations(fixed, loop), 1.0);
}

TEST(LoopedTraffic, EqualsUnloopedTimesItersWhenAllStride)
{
    OpCall c;
    c.kind = AccelKind::DOT;
    c.n = 1000;
    c.in0.stride = {8000, 0, 0, 0};
    c.in1.stride = {8000, 0, 0, 0};
    c.out.stride = {4, 0, 0, 0};
    LoopSpec loop;
    loop.dims = {32, 1, 1, 1};
    // in0 + in1 move fully; out contributes 4 B per iteration.
    double expect = 32.0 * (1000 * 4 * 2 + 4);
    EXPECT_DOUBLE_EQ(loopedTrafficBytes(c, loop), expect);
}

TEST(LoopedTraffic, ReuseShrinksTraffic)
{
    OpCall moving;
    moving.kind = AccelKind::DOT;
    moving.n = 512;
    moving.in0.stride = {2048, 0, 0, 0};
    moving.in1.stride = {2048, 0, 0, 0};
    OpCall reused = moving;
    reused.in1.stride = {0, 0, 0, 0}; // second operand pinned

    LoopSpec loop;
    loop.dims = {64, 1, 1, 1};
    EXPECT_LT(loopedTrafficBytes(reused, loop),
              loopedTrafficBytes(moving, loop));
}

TEST(OperandTraffic, TermsSumToLoopedTotal)
{
    const AccelKind kinds[] = {
        AccelKind::AXPY, AccelKind::DOT,   AccelKind::GEMV,
        AccelKind::SPMV, AccelKind::RESMP, AccelKind::FFT,
        AccelKind::RESHP,
    };
    for (AccelKind k : kinds) {
        OpCall c;
        c.kind = k;
        c.n = 256;
        c.m = k == AccelKind::FFT ? 4 : 128;
        c.k = k == AccelKind::SPMV ? 999 : 0;
        c.complexData = k == AccelKind::FFT;
        c.in0.stride = {64, 0, 0, 0};
        c.out.stride = {64, 0, 0, 0};
        LoopSpec loop;
        loop.dims = {8, 1, 1, 1};
        double sum = 0.0;
        for (const OperandTraffic &t : operandTraffic(c, loop))
            sum += t.bytes;
        EXPECT_DOUBLE_EQ(sum, loopedTrafficBytes(c, loop))
            << name(k);
    }
}

TEST(OperandTraffic, PointersReferenceTheQueriedCall)
{
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = 16;
    auto terms = operandTraffic(c, {});
    ASSERT_EQ(terms.size(), 2u);
    EXPECT_EQ(terms[0].op, &c.in0);
    EXPECT_EQ(terms[1].op, &c.out);
}

TEST(InputBytes, CoversReadOperandsOnly)
{
    OpCall axpy;
    axpy.kind = AccelKind::AXPY;
    axpy.n = 100;
    // x plus the pre-existing y: 2 * n * 4.
    EXPECT_DOUBLE_EQ(axpy.inputBytes(), 800.0);

    OpCall fft;
    fft.kind = AccelKind::FFT;
    fft.n = 1024;
    fft.complexData = true;
    EXPECT_DOUBLE_EQ(fft.inputBytes(), 1024.0 * 8);
    EXPECT_LT(fft.inputBytes(), fft.trafficBytes());
}

TEST(Flops, ComplexOpsCostMore)
{
    OpCall real;
    real.kind = AccelKind::DOT;
    real.n = 1000;
    OpCall cplx = real;
    cplx.complexData = true;
    EXPECT_GT(cplx.flops(), real.flops());
}

TEST(Flops, ReshpIsPureDataMotion)
{
    OpCall c;
    c.kind = AccelKind::RESHP;
    c.m = 64;
    c.n = 64;
    EXPECT_DOUBLE_EQ(c.flops(), 0.0);
    EXPECT_GT(c.trafficBytes(), 0.0);
}

TEST(Names, AllKindsNamed)
{
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(AccelKind::kCount); ++k) {
        const char *n = name(static_cast<AccelKind>(k));
        EXPECT_NE(n, nullptr);
        EXPECT_GT(std::string(n).size(), 2u);
    }
}

} // namespace
} // namespace mealib::accel
