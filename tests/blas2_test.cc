// Tests for Level-2 BLAS against naive oracles across layout/trans
// combinations.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "minimkl/blas2.hh"
#include "minimkl/naive.hh"

namespace mealib::mkl {
namespace {

std::vector<float>
randomVec(std::int64_t n, Rng &rng)
{
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

std::vector<cfloat>
randomCVec(std::int64_t n, Rng &rng)
{
    std::vector<cfloat> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    return v;
}

/** Dense oracle: y := alpha*op(A)*x + beta*y with explicit indexing. */
void
gemvOracle(Order order, Transpose trans, std::int64_t m, std::int64_t n,
           float alpha, const std::vector<float> &a, std::int64_t lda,
           const std::vector<float> &x, float beta, std::vector<float> &y)
{
    auto elem = [&](std::int64_t i, std::int64_t j) {
        return order == Order::RowMajor ? a[static_cast<std::size_t>(
                                              i * lda + j)]
                                        : a[static_cast<std::size_t>(
                                              j * lda + i)];
    };
    bool t = trans != Transpose::NoTrans;
    std::int64_t ylen = t ? n : m;
    std::int64_t xlen = t ? m : n;
    for (std::int64_t i = 0; i < ylen; ++i) {
        double acc = 0.0;
        for (std::int64_t j = 0; j < xlen; ++j) {
            float v = t ? elem(j, i) : elem(i, j);
            acc += static_cast<double>(v) *
                   static_cast<double>(x[static_cast<std::size_t>(j)]);
        }
        y[static_cast<std::size_t>(i)] =
            alpha * static_cast<float>(acc) +
            beta * y[static_cast<std::size_t>(i)];
    }
}

class GemvCombos
    : public ::testing::TestWithParam<std::tuple<Order, Transpose>>
{};

TEST_P(GemvCombos, MatchesOracle)
{
    auto [order, trans] = GetParam();
    const std::int64_t m = 13, n = 29;
    Rng rng(42);
    std::int64_t lda = order == Order::RowMajor ? n : m;
    auto a = randomVec(m * n, rng);
    bool t = trans != Transpose::NoTrans;
    auto x = randomVec(t ? m : n, rng);
    auto y = randomVec(t ? n : m, rng);
    auto y_ref = y;

    sgemv(order, trans, m, n, 0.7f, a.data(), lda, x.data(), 1, 0.3f,
          y.data(), 1);
    gemvOracle(order, trans, m, n, 0.7f, a, lda, x, 0.3f, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], y_ref[i], 1e-4f) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, GemvCombos,
    ::testing::Combine(::testing::Values(Order::RowMajor,
                                         Order::ColMajor),
                       ::testing::Values(Transpose::NoTrans,
                                         Transpose::Trans)));

TEST(Sgemv, MatchesNaiveRowMajor)
{
    Rng rng(7);
    const std::int64_t m = 50, n = 40;
    auto a = randomVec(m * n, rng);
    auto x = randomVec(n, rng);
    std::vector<float> y(m, 0.0f), y_ref(m, 0.0f);
    sgemv(Order::RowMajor, Transpose::NoTrans, m, n, 1.0f, a.data(), n,
          x.data(), 1, 0.0f, y.data(), 1);
    naive::sgemv(m, n, a.data(), n, x.data(), y_ref.data());
    for (std::int64_t i = 0; i < m; ++i)
        EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                    y_ref[static_cast<std::size_t>(i)], 1e-4f);
}

TEST(Sgemv, BetaZeroOverwritesNaNs)
{
    // beta == 0 must not propagate garbage from y (BLAS requirement).
    std::vector<float> a{1, 0, 0, 1};
    std::vector<float> x{2, 3};
    std::vector<float> y{std::nanf(""), std::nanf("")};
    sgemv(Order::RowMajor, Transpose::NoTrans, 2, 2, 1.0f, a.data(), 2,
          x.data(), 1, 0.0f, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 2.0f);
    EXPECT_FLOAT_EQ(y[1], 3.0f);
}

TEST(Sgemv, BetaZeroOverwritesNaNsTransposed)
{
    // The column-wise walk must not read y under beta == 0 either.
    std::vector<float> a{1, 2, 3, 4}; // [[1,2],[3,4]]
    std::vector<float> x{1, 1};
    std::vector<float> y{std::nanf(""), std::nanf("")};
    sgemv(Order::RowMajor, Transpose::Trans, 2, 2, 1.0f, a.data(), 2,
          x.data(), 1, 0.0f, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 4.0f);
    EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(Sgemv, AlphaZeroToleratesNullMatrixAndX)
{
    // alpha == 0 never touches A or x: null pointers, zero incx and a
    // bogus lda must all be accepted (mirrors the saxpby leniency).
    std::vector<float> y{2.0f, 4.0f};
    sgemv(Order::RowMajor, Transpose::NoTrans, 2, 2, 0.0f, nullptr, 0,
          nullptr, 0, 0.5f, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 1.0f);
    EXPECT_FLOAT_EQ(y[1], 2.0f);
}

TEST(Sgemv, AlphaZeroBetaZeroWritesZeros)
{
    std::vector<float> y{std::nanf(""), std::nanf("")};
    sgemv(Order::RowMajor, Transpose::NoTrans, 2, 2, 0.0f, nullptr, 0,
          nullptr, 0, 0.0f, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
}

TEST(Cgemv, BetaZeroOverwritesNaNs)
{
    std::vector<cfloat> a{{1, 0}};
    std::vector<cfloat> x{{3, -2}};
    std::vector<cfloat> y{{std::nanf(""), std::nanf("")}};
    cgemv(Order::RowMajor, Transpose::NoTrans, 1, 1, {1, 0}, a.data(),
          1, x.data(), 1, {0, 0}, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0].real(), 3.0f);
    EXPECT_FLOAT_EQ(y[0].imag(), -2.0f);
}

TEST(Cgemv, AlphaZeroToleratesNullMatrixAndX)
{
    std::vector<cfloat> y{{2, 2}};
    cgemv(Order::RowMajor, Transpose::NoTrans, 1, 1, {0, 0}, nullptr, 0,
          nullptr, 0, {0.5f, 0}, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0].real(), 1.0f);
    EXPECT_FLOAT_EQ(y[0].imag(), 1.0f);
}

TEST(Sgemv, StridedVectors)
{
    std::vector<float> a{1, 2, 3, 4}; // [[1,2],[3,4]]
    std::vector<float> x{1, 99, 1};   // stride 2 -> [1, 1]
    std::vector<float> y{0, 99, 0};
    sgemv(Order::RowMajor, Transpose::NoTrans, 2, 2, 1.0f, a.data(), 2,
          x.data(), 2, 0.0f, y.data(), 2);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    EXPECT_FLOAT_EQ(y[2], 7.0f);
    EXPECT_FLOAT_EQ(y[1], 99.0f); // untouched gap
}

TEST(Sgemv, LdaLargerThanCols)
{
    // 2x2 logical matrix embedded in lda=4 storage.
    std::vector<float> a{1, 2, -1, -1, 3, 4, -1, -1};
    std::vector<float> x{1, 1};
    std::vector<float> y(2, 0.0f);
    sgemv(Order::RowMajor, Transpose::NoTrans, 2, 2, 1.0f, a.data(), 4,
          x.data(), 1, 0.0f, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(Cgemv, ConjTransConjugates)
{
    // A = [[i]]; A^H = [[-i]]; A^H * [1] = [-i].
    std::vector<cfloat> a{{0, 1}};
    std::vector<cfloat> x{{1, 0}};
    std::vector<cfloat> y{{0, 0}};
    cgemv(Order::RowMajor, Transpose::ConjTrans, 1, 1, {1, 0}, a.data(),
          1, x.data(), 1, {0, 0}, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0].real(), 0.0f);
    EXPECT_FLOAT_EQ(y[0].imag(), -1.0f);
}

TEST(Cgemv, LinearityInX)
{
    Rng rng(9);
    const std::int64_t m = 11, n = 17;
    auto a = randomCVec(m * n, rng);
    auto x1 = randomCVec(n, rng);
    auto x2 = randomCVec(n, rng);
    std::vector<cfloat> xs(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        xs[static_cast<std::size_t>(i)] =
            x1[static_cast<std::size_t>(i)] +
            x2[static_cast<std::size_t>(i)];

    std::vector<cfloat> y1(m), y2(m), ys(m);
    cgemv(Order::RowMajor, Transpose::NoTrans, m, n, {1, 0}, a.data(), n,
          x1.data(), 1, {0, 0}, y1.data(), 1);
    cgemv(Order::RowMajor, Transpose::NoTrans, m, n, {1, 0}, a.data(), n,
          x2.data(), 1, {0, 0}, y2.data(), 1);
    cgemv(Order::RowMajor, Transpose::NoTrans, m, n, {1, 0}, a.data(), n,
          xs.data(), 1, {0, 0}, ys.data(), 1);
    for (std::int64_t i = 0; i < m; ++i) {
        auto idx = static_cast<std::size_t>(i);
        EXPECT_NEAR(std::abs(ys[idx] - (y1[idx] + y2[idx])), 0.0f, 1e-4f);
    }
}

TEST(Sger, RankOneUpdate)
{
    std::vector<float> a(4, 0.0f);
    std::vector<float> x{1, 2};
    std::vector<float> y{3, 4};
    sger(Order::RowMajor, 2, 2, 1.0f, x.data(), 1, y.data(), 1, a.data(),
         2);
    EXPECT_FLOAT_EQ(a[0], 3.0f);
    EXPECT_FLOAT_EQ(a[1], 4.0f);
    EXPECT_FLOAT_EQ(a[2], 6.0f);
    EXPECT_FLOAT_EQ(a[3], 8.0f);
}

TEST(Sger, ColMajorMatchesTransposedRowMajor)
{
    Rng rng(13);
    const std::int64_t m = 5, n = 7;
    auto x = randomVec(m, rng);
    auto y = randomVec(n, rng);
    std::vector<float> arm(m * n, 0.0f), acm(m * n, 0.0f);
    sger(Order::RowMajor, m, n, 1.0f, x.data(), 1, y.data(), 1,
         arm.data(), n);
    sger(Order::ColMajor, m, n, 1.0f, x.data(), 1, y.data(), 1,
         acm.data(), m);
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            EXPECT_FLOAT_EQ(arm[static_cast<std::size_t>(i * n + j)],
                            acm[static_cast<std::size_t>(j * m + i)]);
}

} // namespace
} // namespace mealib::mkl
