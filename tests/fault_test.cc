// Tests for the seeded fault-injection and graceful-degradation layer:
// bit-for-bit determinism (disabled faults, same-seed replay, reset
// replay), fallback numerics, retry/watchdog accounting, scheduler
// avoidance of failed stacks, and mid-flight queue drains.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "runtime/runtime.hh"

namespace mealib::runtime {
namespace {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;

// Large loops keep the accelerator span well above the host-side submit
// cost, so a mid-flight failStack() catches the backlog still queued.
constexpr std::int64_t kSliceN = 1 << 13; // floats per iteration
constexpr std::uint32_t kIters = 256;     // loop trip count
constexpr std::int64_t kN = kSliceN * kIters;

RuntimeConfig
baseConfig(unsigned stacks = 2)
{
    RuntimeConfig cfg;
    cfg.backingBytes = 128_MiB;
    cfg.numStacks = stacks;
    return cfg;
}

AccPlanHandle
planLoopedAxpy(MealibRuntime &rt, const float *x, float *y,
               float alpha = 2.0f, float beta = 1.0f)
{
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = static_cast<std::uint64_t>(kSliceN);
    c.alpha = alpha;
    c.beta = beta;
    c.in0.base = rt.physOf(x);
    c.out.base = rt.physOf(y);
    c.in0.stride = {kSliceN * 4, 0, 0, 0};
    c.out.stride = {kSliceN * 4, 0, 0, 0};
    accel::LoopSpec loop;
    loop.dims = {kIters, 1, 1, 1};
    DescriptorProgram prog;
    prog.addLoop(loop, 2);
    prog.addComp(c);
    prog.addPassEnd();
    return rt.accPlan(prog);
}

/** beta = 0 writes a disjoint interval it never reads: rerun-safe, so
 * the checkpoint layer may snapshot and resume it (runtime.hh). */
AccPlanHandle
planRerunSafeAxpy(MealibRuntime &rt, const float *x, float *y)
{
    return planLoopedAxpy(rt, x, y, 2.0f, 0.0f);
}

/** Per-stack operand arrays of one workload instance. */
struct Operands
{
    std::vector<float *> x, y;
};

Operands
fillOperands(MealibRuntime &rt)
{
    Operands ops;
    for (unsigned s = 0; s < rt.numStacks(); ++s) {
        auto *x = static_cast<float *>(rt.memAllocOn(s, kN * 4));
        auto *y = static_cast<float *>(rt.memAllocOn(s, kN * 4));
        for (std::int64_t i = 0; i < kN; ++i) {
            x[i] = 0.25f * static_cast<float>(i % 37) + s;
            y[i] = 1.0f + 0.5f * static_cast<float>(i % 11);
        }
        ops.x.push_back(x);
        ops.y.push_back(y);
    }
    return ops;
}

/** Submit a few chained commands per stack and wait for all of them. */
std::vector<Event>
runWorkload(MealibRuntime &rt, const Operands &ops,
            unsigned perStack = 3)
{
    std::vector<Event> events;
    for (unsigned round = 0; round < perStack; ++round)
        for (unsigned s = 0; s < rt.numStacks(); ++s) {
            AccPlanHandle h = planLoopedAxpy(rt, ops.x[s], ops.y[s]);
            events.push_back(rt.accSubmit(h));
        }
    rt.waitAll();
    return events;
}

void
expectSameLedger(const RuntimeAccounting &a, const RuntimeAccounting &b)
{
    EXPECT_EQ(a.host.seconds, b.host.seconds);
    EXPECT_EQ(a.host.joules, b.host.joules);
    EXPECT_EQ(a.accel.seconds, b.accel.seconds);
    EXPECT_EQ(a.accel.joules, b.accel.joules);
    EXPECT_EQ(a.invocation.seconds, b.invocation.seconds);
    EXPECT_EQ(a.invocation.joules, b.invocation.joules);
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.hostBusySeconds, b.hostBusySeconds);
    EXPECT_EQ(a.fallbackSeconds, b.fallbackSeconds);
    EXPECT_EQ(a.retryCount, b.retryCount);
    EXPECT_EQ(a.fallbackCount, b.fallbackCount);
    EXPECT_EQ(a.watchdogFires, b.watchdogFires);
    EXPECT_EQ(a.eccCorrected, b.eccCorrected);
    EXPECT_EQ(a.integrity.seconds, b.integrity.seconds);
    EXPECT_EQ(a.integrity.joules, b.integrity.joules);
    EXPECT_EQ(a.silentDetected, b.silentDetected);
    EXPECT_EQ(a.silentUndetected, b.silentUndetected);
    EXPECT_EQ(a.checkpointsTaken, b.checkpointsTaken);
    EXPECT_EQ(a.resumedFromCheckpoint, b.resumedFromCheckpoint);
    EXPECT_EQ(a.quarantines, b.quarantines);
    EXPECT_EQ(a.readmissions, b.readmissions);
    EXPECT_EQ(a.busyByStack.parts(), b.busyByStack.parts());
    EXPECT_EQ(a.timeByAccel.parts(), b.timeByAccel.parts());
    EXPECT_EQ(a.energyByAccel.parts(), b.energyByAccel.parts());
}

// --- configuration ----------------------------------------------------

TEST(FaultConfig, RejectsRatesOutsideUnitInterval)
{
    RuntimeConfig cfg = baseConfig();
    cfg.fault.hangRate = 1.5;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::InvalidArgument);
    cfg.fault.hangRate = -0.1;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::InvalidArgument);
    // The runtime constructor converts the report into a recoverable
    // MealibError (not a process-level FatalError).
    EXPECT_THROW(MealibRuntime{cfg}, MealibError);
    cfg.fault.hangRate = 0.0;
    cfg.fault.silentCorruptionRate = 2.0;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::InvalidArgument);
}

TEST(FaultConfig, RejectsScriptedFailureOutOfRange)
{
    RuntimeConfig cfg = baseConfig(2);
    cfg.fault.failStack = 2;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::InvalidArgument);
    EXPECT_THROW(MealibRuntime{cfg}, MealibError);
}

TEST(FaultConfig, RejectsBadRetryAndWatchdog)
{
    RuntimeConfig cfg = baseConfig();
    cfg.watchdogSeconds = 0.0;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::InvalidArgument);
    cfg = baseConfig();
    cfg.retry.backoffMultiplier = 0.5;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::InvalidArgument);
}

TEST(FaultConfig, DisabledByDefault)
{
    RuntimeConfig cfg;
    EXPECT_FALSE(cfg.fault.enabled());
    // A non-zero seed alone does not arm the injector.
    cfg.fault.seed = 12345;
    EXPECT_FALSE(cfg.fault.enabled());
}

// --- determinism ------------------------------------------------------

TEST(FaultDeterminism, DisabledFaultsLeaveLedgerBitForBit)
{
    // A default config and one carrying a (disarmed) fault seed must
    // produce byte-identical ledgers: the whole fault path is gated on
    // enabled(), so shipping the feature cannot perturb clean runs.
    MealibRuntime rtA(baseConfig());
    Operands opsA = fillOperands(rtA);
    runWorkload(rtA, opsA);

    RuntimeConfig seeded = baseConfig();
    seeded.fault.seed = 98765;
    MealibRuntime rtB(seeded);
    Operands opsB = fillOperands(rtB);
    runWorkload(rtB, opsB);

    expectSameLedger(rtA.accounting(), rtB.accounting());
    EXPECT_EQ(rtA.accounting().retryCount, 0u);
    EXPECT_EQ(rtA.accounting().fallbackCount, 0u);
    EXPECT_TRUE(rtA.faultModel().history().empty());
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_EQ(0, std::memcmp(opsA.y[s], opsB.y[s], kN * 4));
}

TEST(FaultDeterminism, SameSeedSameLedgerAcrossRuns)
{
    RuntimeConfig cfg = baseConfig();
    cfg.fault.seed = 424242;
    cfg.fault.computeTransientRate = 0.3;
    cfg.fault.eccCorrectableRate = 0.3;
    cfg.fault.linkCrcRate = 0.1;

    MealibRuntime rtA(cfg);
    Operands opsA = fillOperands(rtA);
    runWorkload(rtA, opsA);

    MealibRuntime rtB(cfg);
    Operands opsB = fillOperands(rtB);
    runWorkload(rtB, opsB);

    expectSameLedger(rtA.accounting(), rtB.accounting());
    ASSERT_EQ(rtA.faultModel().history().size(),
              rtB.faultModel().history().size());
    EXPECT_FALSE(rtA.faultModel().history().empty());
    for (std::size_t i = 0; i < rtA.faultModel().history().size(); ++i) {
        const fault::FaultEvent &a = rtA.faultModel().history()[i];
        const fault::FaultEvent &b = rtB.faultModel().history()[i];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.stack, b.stack);
        EXPECT_EQ(a.command, b.command);
        EXPECT_EQ(a.attempt, b.attempt);
    }
}

TEST(FaultDeterminism, ResetAccountingReplaysIdentically)
{
    RuntimeConfig cfg = baseConfig();
    cfg.fault.seed = 7;
    cfg.fault.computeTransientRate = 0.4;
    cfg.fault.hangRate = 0.1;

    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);
    runWorkload(rt, ops);
    RuntimeAccounting first = rt.accounting();
    std::size_t faults = rt.faultModel().history().size();

    rt.resetAccounting();
    runWorkload(rt, ops);
    expectSameLedger(first, rt.accounting());
    EXPECT_EQ(faults, rt.faultModel().history().size());
}

TEST(FaultDeterminism, DifferentSeedsDiverge)
{
    RuntimeConfig cfg = baseConfig();
    cfg.fault.computeTransientRate = 0.5;
    cfg.fault.seed = 1;
    MealibRuntime rtA(cfg);
    Operands opsA = fillOperands(rtA);
    runWorkload(rtA, opsA);

    cfg.fault.seed = 2;
    MealibRuntime rtB(cfg);
    Operands opsB = fillOperands(rtB);
    runWorkload(rtB, opsB);

    // With a 50% per-attempt rate over dozens of attempts, identical
    // histories under different seeds would mean the seed is ignored.
    EXPECT_NE(rtA.faultModel().history().size() +
                  rtA.accounting().retryCount,
              rtB.faultModel().history().size() +
                  rtB.accounting().retryCount);
}

// --- recovery paths ---------------------------------------------------

TEST(FaultRecovery, FallbackNumericsMatchFaultFree)
{
    // Every command hangs and the budget is zero: everything completes
    // through the host-fallback path. Results must be bit-identical to
    // a fault-free run (the functional engine is shared).
    MealibRuntime clean(baseConfig());
    Operands opsClean = fillOperands(clean);
    runWorkload(clean, opsClean);

    RuntimeConfig cfg = baseConfig();
    cfg.fault.seed = 11;
    cfg.fault.hangRate = 1.0;
    cfg.retry.maxRetries = 0;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);
    std::vector<Event> events = runWorkload(rt, ops);

    for (Event &ev : events) {
        EXPECT_EQ(ev.state(), EventState::FellBack);
        EXPECT_TRUE(ev.status().ok());
        EXPECT_TRUE(ev.stats().fellBack);
        EXPECT_TRUE(completed(ev.state()));
    }
    const RuntimeAccounting &acct = rt.accounting();
    EXPECT_GT(acct.fallbackSeconds, 0.0);
    EXPECT_EQ(acct.fallbackCount, events.size());
    EXPECT_EQ(acct.watchdogFires, events.size());
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_EQ(0, std::memcmp(opsClean.y[s], ops.y[s], kN * 4));
}

TEST(FaultRecovery, WatchdogFiresOncePerHungAttempt)
{
    RuntimeConfig cfg = baseConfig(1);
    cfg.fault.seed = 3;
    cfg.fault.hangRate = 1.0;
    cfg.retry.maxRetries = 2;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);

    AccPlanHandle h = planLoopedAxpy(rt, ops.x[0], ops.y[0]);
    Event ev = rt.accSubmit(h);
    EXPECT_EQ(ev.state(), EventState::FellBack);
    EXPECT_EQ(ev.retries(), 2u);
    EXPECT_EQ(rt.accounting().watchdogFires, 3u); // initial try + 2
    EXPECT_EQ(rt.accounting().retryCount, 2u);
    EXPECT_EQ(rt.accounting().fallbackCount, 1u);
}

TEST(FaultRecovery, ExhaustionWithoutFallbackTimesOut)
{
    RuntimeConfig cfg = baseConfig(1);
    cfg.fault.seed = 3;
    cfg.fault.hangRate = 1.0;
    cfg.retry.maxRetries = 1;
    cfg.retry.hostFallback = false;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);

    Event ev = rt.accSubmit(planLoopedAxpy(rt, ops.x[0], ops.y[0]));
    EXPECT_EQ(ev.state(), EventState::TimedOut);
    EXPECT_FALSE(ev.status().ok());
    EXPECT_EQ(ev.status().code(), ErrorCode::Timeout);
    EXPECT_FALSE(completed(ev.state()));
    EXPECT_EQ(rt.accounting().fallbackCount, 0u);
    rt.waitAll();
}

TEST(FaultRecovery, TransientRetrySucceedsOnAccelerator)
{
    RuntimeConfig cfg = baseConfig();
    cfg.fault.seed = 99;
    cfg.fault.computeTransientRate = 0.5;
    cfg.retry.maxRetries = 8; // enough to outlast a 50% coin
    MealibRuntime clean(baseConfig());
    Operands opsClean = fillOperands(clean);
    runWorkload(clean, opsClean);

    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);
    std::vector<Event> events = runWorkload(rt, ops);

    unsigned retried = 0;
    for (Event &ev : events) {
        EXPECT_TRUE(completed(ev.state()));
        if (ev.state() == EventState::Retried) {
            ++retried;
            EXPECT_GT(ev.retries(), 0u);
            EXPECT_GT(ev.stats().faultPenalty.seconds, 0.0);
        }
    }
    EXPECT_GT(retried, 0u);
    EXPECT_EQ(rt.accounting().fallbackCount, 0u);
    EXPECT_GT(rt.accounting().retryCount, 0u);
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_EQ(0, std::memcmp(opsClean.y[s], ops.y[s], kN * 4));
}

TEST(FaultRecovery, CorrectedEccIsLatencyOnly)
{
    RuntimeConfig cfg = baseConfig(1);
    cfg.fault.seed = 5;
    cfg.fault.eccCorrectableRate = 1.0;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);

    Event ev = rt.accSubmit(planLoopedAxpy(rt, ops.x[0], ops.y[0]));
    EXPECT_EQ(ev.state(), EventState::Done); // corrected != failed
    EXPECT_EQ(ev.retries(), 0u);
    EXPECT_EQ(rt.accounting().eccCorrected, 1u);
    EXPECT_GT(ev.stats().faultPenalty.seconds, 0.0);
    EXPECT_EQ(rt.accounting().retryCount, 0u);
}

// --- end-to-end integrity ---------------------------------------------

TEST(Integrity, SilentCorruptionCaughtAndRetried)
{
    // Every attempt silently corrupts; end-to-end verification turns
    // each into a *detected* failure, the ladder exhausts its retries,
    // and the command completes through the host. The functional
    // results were computed once on the shared engine, so they still
    // match a fault-free run bit-for-bit.
    MealibRuntime clean(baseConfig(1));
    Operands opsClean = fillOperands(clean);
    clean.accSubmit(planLoopedAxpy(clean, opsClean.x[0], opsClean.y[0]));
    clean.waitAll();

    RuntimeConfig cfg = baseConfig(1);
    cfg.fault.seed = 21;
    cfg.fault.silentCorruptionRate = 1.0;
    cfg.integrity.verifyTransfers = true;
    cfg.retry.maxRetries = 2;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);

    Event ev = rt.accSubmit(planLoopedAxpy(rt, ops.x[0], ops.y[0]));
    EXPECT_EQ(ev.state(), EventState::FellBack);
    EXPECT_EQ(rt.accounting().silentDetected, 3u); // initial try + 2
    EXPECT_EQ(rt.accounting().silentUndetected, 0u);
    EXPECT_EQ(rt.accounting().fallbackCount, 1u);
    EXPECT_GT(rt.accounting().integrity.seconds, 0.0);
    EXPECT_GT(ev.stats().integrity.seconds, 0.0);
    bool sawSilent = false;
    for (const fault::FaultEvent &fe : rt.faultModel().history())
        sawSilent |= fe.kind == fault::FaultKind::SilentCorruption;
    EXPECT_TRUE(sawSilent);
    EXPECT_EQ(0, std::memcmp(opsClean.y[0], ops.y[0], kN * 4));
}

TEST(Integrity, SilentCorruptionMissedWithoutVerification)
{
    // With verification off the corruption sails through: the command
    // reports Done and only the (test-visible) undetected counter knows.
    RuntimeConfig cfg = baseConfig(1);
    cfg.fault.seed = 21;
    cfg.fault.silentCorruptionRate = 1.0;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);

    Event ev = rt.accSubmit(planLoopedAxpy(rt, ops.x[0], ops.y[0]));
    EXPECT_EQ(ev.state(), EventState::Done);
    EXPECT_EQ(rt.accounting().silentDetected, 0u);
    EXPECT_EQ(rt.accounting().silentUndetected, 1u);
    EXPECT_EQ(rt.accounting().retryCount, 0u);
    EXPECT_EQ(rt.accounting().integrity.seconds, 0.0);
}

TEST(Integrity, VerificationPricedOnIntegrityTrack)
{
    // Verification with no faults injected: a pure tax, priced from
    // the machine profile, posted to the ledger's `integrity` track,
    // and mirrored into the accounting so the two totals stay equal.
    RuntimeConfig cfg = baseConfig();
    cfg.integrity.verifyTransfers = true;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);
    runWorkload(rt, ops);

    const RuntimeAccounting &acct = rt.accounting();
    EXPECT_GT(acct.integrity.seconds, 0.0);
    EXPECT_GT(acct.integrity.joules, 0.0);
    EXPECT_EQ(rt.ledger().track("integrity").seconds,
              acct.integrity.seconds);
    EXPECT_EQ(rt.ledger().track("integrity").joules,
              acct.integrity.joules);
    EXPECT_DOUBLE_EQ(rt.ledger().total().seconds, acct.total().seconds);
    EXPECT_DOUBLE_EQ(rt.ledger().total().joules, acct.total().joules);

    // Verification only reads: numerics match an unverified run.
    MealibRuntime plain(baseConfig());
    Operands opsPlain = fillOperands(plain);
    runWorkload(plain, opsPlain);
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_EQ(0, std::memcmp(opsPlain.y[s], ops.y[s], kN * 4));
}

// --- checkpoint/replay ------------------------------------------------

TEST(Checkpoint, SnapshotsCommitAtConfiguredInterval)
{
    // 256 expanded COMPs at interval 64 commit snapshots at 25/50/75%
    // of the span (never at 100% — the command is finished there).
    RuntimeConfig cfg = baseConfig(1);
    cfg.checkpoint.intervalComps = 64;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);

    Event ev = rt.accSubmit(planRerunSafeAxpy(rt, ops.x[0], ops.y[0]));
    EXPECT_EQ(rt.journal().taken(), 3u);
    EXPECT_EQ(rt.accounting().checkpointsTaken, 3u);
    EXPECT_EQ(ev.stats().checkpoints, 3u);
    EXPECT_GT(rt.accounting().integrity.joules, 0.0); // journal energy
    const std::vector<CheckpointRecord> &log = rt.journal().log();
    ASSERT_EQ(log.size(), 3u);
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(log[i].comps, 64u * (i + 1));
        EXPECT_EQ(log[i].fraction, 0.25 * static_cast<double>(i + 1));
        EXPECT_GT(log[i].bytes, 0u);
    }

    // A beta != 0 AXPY reads what it writes, so replaying a suffix
    // would double-apply it: never checkpointed.
    rt.accSubmit(planLoopedAxpy(rt, ops.x[0], ops.y[0]));
    EXPECT_EQ(rt.journal().taken(), 3u);
    rt.waitAll();
}

TEST(Checkpoint, ResumeRebatesReexecutedSpan)
{
    // Same seed, same rates, with and without checkpointing: the fault
    // sequence is identical (checkpointing consumes no RNG draws), so
    // the only delta is the resume rebate — every retry that restarts
    // from a committed snapshot repays the span it no longer re-runs.
    RuntimeConfig cfg = baseConfig();
    cfg.fault.seed = 31;
    cfg.fault.computeTransientRate = 0.5;
    cfg.retry.maxRetries = 8;

    auto penalty = [](std::vector<Event> &events) {
        double s = 0.0;
        for (Event &ev : events)
            s += ev.stats().faultPenalty.seconds;
        return s;
    };
    auto submitAll = [](MealibRuntime &rt, Operands &ops) {
        std::vector<Event> events;
        for (unsigned round = 0; round < 3; ++round)
            for (unsigned s = 0; s < rt.numStacks(); ++s)
                events.push_back(rt.accSubmit(
                    planRerunSafeAxpy(rt, ops.x[s], ops.y[s])));
        rt.waitAll();
        return events;
    };

    MealibRuntime plain(cfg);
    Operands opsPlain = fillOperands(plain);
    std::vector<Event> evPlain = submitAll(plain, opsPlain);
    ASSERT_GT(plain.accounting().retryCount, 0u);
    EXPECT_EQ(plain.accounting().resumedFromCheckpoint, 0u);

    cfg.checkpoint.intervalComps = 32;
    MealibRuntime ckpt(cfg);
    Operands opsCkpt = fillOperands(ckpt);
    std::vector<Event> evCkpt = submitAll(ckpt, opsCkpt);

    EXPECT_EQ(ckpt.accounting().retryCount,
              plain.accounting().retryCount);
    EXPECT_GT(ckpt.accounting().resumedFromCheckpoint, 0u);
    EXPECT_LT(penalty(evCkpt), penalty(evPlain));
    bool sawResumed = false;
    for (Event &ev : evCkpt)
        sawResumed |= ev.state() == EventState::Resumed;
    EXPECT_TRUE(sawResumed);
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_EQ(0, std::memcmp(opsPlain.y[s], opsCkpt.y[s], kN * 4));
}

// --- degradation-aware scheduling -------------------------------------

TEST(Degradation, SchedulerSteersAwayFromFailedStack)
{
    MealibRuntime rt(baseConfig(4));
    Operands ops = fillOperands(rt);
    rt.failStack(2);
    EXPECT_TRUE(rt.stackFailed(2));
    EXPECT_EQ(rt.healthyStackCount(), 3u);

    std::vector<Event> events = runWorkload(rt, ops, 4);
    for (Event &ev : events)
        EXPECT_NE(ev.stack(), 2u);
    EXPECT_EQ(rt.queue(2).submitted(), 0u);
}

TEST(Degradation, ExplicitSubmitToFailedStackReroutes)
{
    MealibRuntime rt(baseConfig(2));
    Operands ops = fillOperands(rt);
    rt.failStack(0);

    Event ev = rt.accSubmitOn(planLoopedAxpy(rt, ops.x[0], ops.y[0]), 0);
    EXPECT_EQ(ev.stack(), 1u);
    EXPECT_TRUE(completed(ev.state()));
    EXPECT_EQ(rt.queue(0).submitted(), 0u);
    rt.waitAll();
}

TEST(Degradation, ScriptedFailureFiresAtCommandBoundary)
{
    RuntimeConfig cfg = baseConfig(2);
    cfg.fault.failStack = 0;
    cfg.fault.failStackAfter = 2;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);

    std::vector<Event> events;
    for (unsigned i = 0; i < 6; ++i)
        events.push_back(
            rt.accSubmitOn(planLoopedAxpy(rt, ops.x[0], ops.y[0]), 0));
    rt.waitAll();

    EXPECT_TRUE(rt.stackFailed(0));
    // Commands 0 and 1 land on stack 0; from command 2 on, the scripted
    // failure has fired and everything reroutes (or is drained) to 1.
    for (unsigned i = 2; i < 6; ++i)
        EXPECT_EQ(events[i].stack(), 1u);
    EXPECT_EQ(rt.queue(0).submitted(), 2u);
}

TEST(Degradation, FailStackDrainsQueuedCommandsToSurvivor)
{
    MealibRuntime rt(baseConfig(2));
    Operands ops = fillOperands(rt);

    // Build a deep backlog on stack 0, then kill it mid-flight.
    std::vector<Event> events;
    for (unsigned i = 0; i < 5; ++i)
        events.push_back(
            rt.accSubmitOn(planLoopedAxpy(rt, ops.x[0], ops.y[0]), 0));
    double before = rt.nowSeconds();
    rt.failStack(0);
    rt.waitAll();

    // The whole backlog was still outstanding (the host track only paid
    // submit costs), so every command re-homed to the survivor.
    EXPECT_GT(rt.accounting().retryCount, 0u);
    for (Event &ev : events) {
        EXPECT_EQ(ev.state(), EventState::Retried);
        EXPECT_EQ(ev.stack(), 1u);
        EXPECT_GT(ev.retries(), 0u);
    }
    // The dead stack's queue never runs past the failure point.
    EXPECT_LE(rt.queue(0).busyUntilSeconds(), before);
    EXPECT_GT(rt.queue(1).busySeconds(), 0.0);
}

TEST(Degradation, LastStackFailureFallsBackToHost)
{
    MealibRuntime rt(baseConfig(1));
    Operands ops = fillOperands(rt);
    rt.failStack(0);
    EXPECT_EQ(rt.healthyStackCount(), 0u);

    Event ev = rt.accSubmit(planLoopedAxpy(rt, ops.x[0], ops.y[0]));
    EXPECT_EQ(ev.state(), EventState::FellBack);
    EXPECT_TRUE(ev.stats().fellBack);
    EXPECT_GT(rt.accounting().fallbackSeconds, 0.0);
    EXPECT_EQ(rt.accounting().fallbackCount, 1u);
}

TEST(Degradation, LastStackFailureWithoutFallbackFails)
{
    RuntimeConfig cfg = baseConfig(1);
    cfg.retry.hostFallback = false;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);
    rt.failStack(0);

    Event ev = rt.accSubmit(planLoopedAxpy(rt, ops.x[0], ops.y[0]));
    EXPECT_EQ(ev.state(), EventState::Failed);
    EXPECT_EQ(ev.status().code(), ErrorCode::DeviceFailed);
}

TEST(Degradation, DegradeStackStretchesTimelineOnly)
{
    MealibRuntime fast(baseConfig(1));
    Operands opsFast = fillOperands(fast);
    runWorkload(fast, opsFast);

    MealibRuntime slow(baseConfig(1));
    Operands opsSlow = fillOperands(slow);
    slow.degradeStack(0, 4.0);
    EXPECT_EQ(slow.stackSlowdown(0), 4.0);
    runWorkload(slow, opsSlow);

    // The serial cost ledger is identical; only occupancy stretched.
    EXPECT_EQ(fast.accounting().accel.seconds,
              slow.accounting().accel.seconds);
    EXPECT_GT(slow.accounting().makespanSeconds,
              fast.accounting().makespanSeconds);
    EXPECT_GT(slow.accounting().busyByStack.get("stack0"),
              fast.accounting().busyByStack.get("stack0"));
}

// --- recoverable submission errors ------------------------------------

TEST(SubmitErrors, OutOfRangeStackReportsInsteadOfAborting)
{
    MealibRuntime rt(baseConfig(2));
    Operands ops = fillOperands(rt);
    AccPlanHandle h = planLoopedAxpy(rt, ops.x[0], ops.y[0]);

    Event ev = rt.accSubmitOn(h, 99);
    ASSERT_TRUE(ev.valid());
    EXPECT_EQ(ev.state(), EventState::Failed);
    EXPECT_EQ(ev.status().code(), ErrorCode::InvalidArgument);
    EXPECT_FALSE(completed(ev.state()));
    // Nothing was charged and nothing was enqueued.
    EXPECT_EQ(rt.accounting().total().seconds, 0.0);
    EXPECT_EQ(rt.queue(0).submitted() + rt.queue(1).submitted(), 0u);
    EXPECT_EQ(rt.inflightCount(), 0u);

    // The plan is still usable on a valid stack afterwards.
    Event ok = rt.accSubmitOn(h, 0);
    EXPECT_TRUE(completed(ok.state()));
    rt.waitAll();
}

TEST(SubmitErrors, StatusRoundTripsThroughOrThrow)
{
    Status s = Status::error(ErrorCode::Timeout, "watchdog fired");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.toString(), "timeout: watchdog fired");
    try {
        s.orThrow();
        FAIL() << "orThrow did not throw";
    } catch (const MealibError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Timeout);
    }
    EXPECT_EQ(Status().toString(), "ok");
}

} // namespace
} // namespace mealib::runtime
