// Tests for the MKL/CBLAS/FFTW-named compatibility shims — the exact
// entry points the paper's legacy applications call (Table 1, Listing 1).

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "minimkl/compat.hh"

namespace {

using cfloat = std::complex<float>;

TEST(CblasShims, SaxpyAndSdot)
{
    std::vector<float> x{1, 2, 3};
    std::vector<float> y{4, 5, 6};
    cblas_saxpy(3, 2.0f, x.data(), 1, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 6.0f);
    EXPECT_FLOAT_EQ(y[2], 12.0f);
    EXPECT_FLOAT_EQ(cblas_sdot(3, x.data(), 1, x.data(), 1), 14.0f);
}

TEST(CblasShims, SgemvRowMajor)
{
    std::vector<float> a{1, 2, 3, 4};
    std::vector<float> x{1, 1};
    std::vector<float> y(2, 0.0f);
    cblas_sgemv(CblasRowMajor, CblasNoTrans, 2, 2, 1.0f, a.data(), 2,
                x.data(), 1, 0.0f, y.data(), 1);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(CblasShims, CdotcSubWritesResult)
{
    std::vector<cfloat> x{{0, 1}, {1, 0}};
    std::vector<cfloat> y{{0, 1}, {1, 0}};
    cfloat d{99, 99};
    cblas_cdotc_sub(2, x.data(), 1, y.data(), 1, &d);
    EXPECT_FLOAT_EQ(d.real(), 2.0f);
    EXPECT_FLOAT_EQ(d.imag(), 0.0f);
}

TEST(CblasShims, CherkUpperTriangleOnly)
{
    // A = [[1, i]]^T-ish: use 2x1 so C = A*A^H is 2x2.
    std::vector<cfloat> a{{1, 0}, {0, 1}};
    std::vector<cfloat> c(4, cfloat{9, 9});
    cblas_cherk(CblasRowMajor, CblasUpper, CblasNoTrans, 2, 1, 1.0f,
                a.data(), 1, 0.0f, c.data(), 2);
    EXPECT_FLOAT_EQ(c[0].real(), 1.0f);
    EXPECT_FLOAT_EQ(c[1].imag(), -1.0f); // 1 * conj(i)
    EXPECT_FLOAT_EQ(c[3].real(), 1.0f);
    EXPECT_FLOAT_EQ(c[2].real(), 9.0f); // lower triangle untouched
}

TEST(CblasShims, CtrsmSolvesDiagonalSystem)
{
    std::vector<cfloat> a{{2, 0}, {0, 0}, {0, 0}, {4, 0}};
    std::vector<cfloat> b{{2, 0}, {4, 0}, {8, 0}, {16, 0}};
    cfloat alpha{1, 0};
    cblas_ctrsm(CblasRowMajor, CblasLeft, CblasLower, CblasNoTrans,
                CblasNonUnit, 2, 2, &alpha, a.data(), 2, b.data(), 2);
    EXPECT_FLOAT_EQ(b[0].real(), 1.0f);
    EXPECT_FLOAT_EQ(b[1].real(), 2.0f);
    EXPECT_FLOAT_EQ(b[2].real(), 2.0f);
    EXPECT_FLOAT_EQ(b[3].real(), 4.0f);
}

TEST(MklShims, ScsrgemvOneBasedIndexing)
{
    // [[2, 0], [1, 3]] in classic 1-based CSR.
    std::vector<float> vals{2.0f, 1.0f, 3.0f};
    std::vector<int> ia{1, 2, 4};
    std::vector<int> ja{1, 1, 2};
    std::vector<float> x{10.0f, 100.0f};
    std::vector<float> y(2, 0.0f);
    int m = 2;
    mkl_scsrgemv("N", &m, vals.data(), ia.data(), ja.data(), x.data(),
                 y.data());
    EXPECT_FLOAT_EQ(y[0], 20.0f);
    EXPECT_FLOAT_EQ(y[1], 310.0f);
}

TEST(MklShims, ScsrgemvTranspose)
{
    std::vector<float> vals{2.0f, 1.0f, 3.0f};
    std::vector<int> ia{1, 2, 4};
    std::vector<int> ja{1, 1, 2};
    std::vector<float> x{1.0f, 1.0f};
    std::vector<float> y(2, 0.0f);
    int m = 2;
    mkl_scsrgemv("T", &m, vals.data(), ia.data(), ja.data(), x.data(),
                 y.data());
    EXPECT_FLOAT_EQ(y[0], 3.0f); // column 0: 2 + 1
    EXPECT_FLOAT_EQ(y[1], 3.0f); // column 1: 3
}

TEST(MklShims, ScsrgemvOverwritesPoisonedOutput)
{
    // Implicit beta == 0: y must be a pure write, never read, in both
    // the direct and the transposed walk.
    std::vector<float> vals{2.0f, 1.0f, 3.0f};
    std::vector<int> ia{1, 2, 4};
    std::vector<int> ja{1, 1, 2};
    std::vector<float> x{10.0f, 100.0f};
    std::vector<float> y{std::nanf(""), std::nanf("")};
    int m = 2;
    mkl_scsrgemv("N", &m, vals.data(), ia.data(), ja.data(), x.data(),
                 y.data());
    EXPECT_FLOAT_EQ(y[0], 20.0f);
    EXPECT_FLOAT_EQ(y[1], 310.0f);

    y.assign({std::nanf(""), std::nanf("")});
    mkl_scsrgemv("T", &m, vals.data(), ia.data(), ja.data(), x.data(),
                 y.data());
    EXPECT_FLOAT_EQ(y[0], 2.0f * 10.0f + 1.0f * 100.0f);
    EXPECT_FLOAT_EQ(y[1], 3.0f * 100.0f);
}

TEST(MklShims, SimatcopyTransposesInPlace)
{
    std::vector<float> a{1, 2, 3, 4};
    mkl_simatcopy('R', 'T', 2, 2, 1.0f, a.data(), 2, 2);
    EXPECT_FLOAT_EQ(a[1], 3.0f);
    EXPECT_FLOAT_EQ(a[2], 2.0f);
}

TEST(MklShims, DfsInterpolate1D)
{
    std::vector<float> x{0.0f, 2.0f, 4.0f};
    std::vector<float> site(5);
    EXPECT_EQ(dfsInterpolate1D(x.data(), 3, site.data(), 5), 0);
    EXPECT_FLOAT_EQ(site[1], 1.0f);
    EXPECT_FLOAT_EQ(site[3], 3.0f);
    EXPECT_EQ(dfsInterpolate1D(nullptr, 3, site.data(), 5), -1);
}

TEST(FftwShims, PlanExecuteDestroyRoundTrip)
{
    const int n = 64;
    std::vector<cfloat> in(n), freq(n), back(n);
    mealib::Rng rng(5);
    for (auto &v : in)
        v = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};

    fftwf_iodim dim{n, 1, 1};
    fftwf_plan fwd = fftwf_plan_guru_dft(
        1, &dim, 0, nullptr, reinterpret_cast<fftwf_complex *>(in.data()),
        reinterpret_cast<fftwf_complex *>(freq.data()), FFTW_FORWARD,
        FFTW_WISDOM_ONLY);
    fftwf_plan bwd = fftwf_plan_guru_dft(
        1, &dim, 0, nullptr,
        reinterpret_cast<fftwf_complex *>(freq.data()),
        reinterpret_cast<fftwf_complex *>(back.data()), FFTW_BACKWARD,
        FFTW_WISDOM_ONLY);
    fftwf_execute(fwd);
    fftwf_execute(bwd);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(back[static_cast<std::size_t>(i)] /
                                 static_cast<float>(n) -
                             in[static_cast<std::size_t>(i)]),
                    0.0f, 1e-4f);
    fftwf_destroy_plan(fwd);
    fftwf_destroy_plan(bwd);
}

TEST(FftwShims, Rank0GuruPlanCopiesStrided)
{
    // The Listing-1 pattern: rank 0 + 2 loop dims = strided reshape.
    const int r = 3, c = 5;
    std::vector<cfloat> in(r * c), out(r * c);
    for (int i = 0; i < r * c; ++i)
        in[static_cast<std::size_t>(i)] = {static_cast<float>(i), 0.0f};
    fftwf_iodim hm[2] = {{r, c, 1}, {c, 1, r}};
    fftwf_plan p = fftwf_plan_guru_dft(
        0, nullptr, 2, hm, reinterpret_cast<fftwf_complex *>(in.data()),
        reinterpret_cast<fftwf_complex *>(out.data()), FFTW_FORWARD,
        FFTW_WISDOM_ONLY);
    fftwf_execute(p);
    fftwf_destroy_plan(p);
    for (int i = 0; i < r; ++i)
        for (int j = 0; j < c; ++j)
            EXPECT_EQ(out[static_cast<std::size_t>(j * r + i)],
                      in[static_cast<std::size_t>(i * c + j)]);
}

TEST(FftwShims, BatchedGuruPlan)
{
    const int n = 32, batch = 4;
    std::vector<cfloat> in(n * batch), out(n * batch);
    mealib::Rng rng(6);
    for (auto &v : in)
        v = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    fftwf_iodim dim{n, 1, 1};
    fftwf_iodim hm{batch, n, n};
    fftwf_plan p = fftwf_plan_guru_dft(
        1, &dim, 1, &hm, reinterpret_cast<fftwf_complex *>(in.data()),
        reinterpret_cast<fftwf_complex *>(out.data()), FFTW_FORWARD,
        FFTW_WISDOM_ONLY);
    fftwf_execute(p);
    fftwf_destroy_plan(p);

    // Each batch independently transformed: DC bin equals the sum.
    for (int b = 0; b < batch; ++b) {
        cfloat sum{};
        for (int i = 0; i < n; ++i)
            sum += in[static_cast<std::size_t>(b * n + i)];
        EXPECT_NEAR(std::abs(out[static_cast<std::size_t>(b * n)] - sum),
                    0.0f, 1e-4f);
    }
}

} // namespace
