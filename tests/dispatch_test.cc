// Tests for the unified op-IR dispatch core (docs/DISPATCH.md): the
// lowering layer, the pluggable offload policies, the telemetry, the
// runtime-backed accelerator backend, and the bit-for-bit guarantee of
// host-side execution through the dispatcher.

#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/status.hh"
#include "dispatch/backend.hh"
#include "dispatch/dispatcher.hh"
#include "dispatch/models.hh"
#include "dispatch/opdesc.hh"
#include "dispatch/ops.hh"
#include "dispatch/policy.hh"
#include "dispatch/telemetry.hh"
#include "mealib/platform.hh"
#include "minimkl/blas1.hh"
#include "minimkl/blas2.hh"
#include "minimkl/blas3.hh"
#include "minimkl/compat.hh"
#include "minimkl/transpose.hh"
#include "runtime/runtime.hh"

namespace mealib::dispatch {
namespace {

// --- op-IR lowering ----------------------------------------------------

TEST(OpIr, KindEnumMirrorsAccelKinds)
{
    for (std::uint8_t k = 0;
         k < static_cast<std::uint8_t>(accel::AccelKind::kCount); ++k) {
        OpKind op = opKindOf(static_cast<accel::AccelKind>(k));
        EXPECT_TRUE(accelerable(op));
        EXPECT_EQ(static_cast<std::uint8_t>(accelKindOf(op)), k);
    }
    EXPECT_FALSE(accelerable(OpKind::Gemm));
    EXPECT_FALSE(accelerable(OpKind::Herk));
    EXPECT_FALSE(accelerable(OpKind::Trsm));
    EXPECT_STREQ(name(OpKind::Axpy), "axpy");
    EXPECT_STREQ(name(OpKind::Trsm), "trsm");
}

TEST(OpIr, SaxpyLoweringRecordsProvenanceAndWork)
{
    std::vector<float> x(1024), y(1024);
    OpDesc d = lowerSaxpy(1024, 2.0f, x.data(), 1, y.data(), 1);
    EXPECT_EQ(d.kind, OpKind::Axpy);
    EXPECT_STREQ(d.entry, "cblas_saxpy");
    EXPECT_TRUE(d.accelSupported);
    EXPECT_DOUBLE_EQ(d.flops(), 2.0 * 1024);
    EXPECT_GT(d.bytes(), 0.0);
    EXPECT_EQ(d.operands[0].host, x.data());
    EXPECT_EQ(d.operands[0].bytes, 1024u * 4);
    EXPECT_FALSE(d.operands[0].written);
    EXPECT_TRUE(d.operands[4].written);
}

TEST(OpIr, RerunSafetyTracksOutputReads)
{
    std::vector<float> x(16), y(16);
    // saxpy accumulates (y := ax + y): re-running after a partial
    // offload would double-apply.
    EXPECT_FALSE(
        lowerSaxpy(16, 1.0f, x.data(), 1, y.data(), 1).rerunSafe);
    // saxpby with b == 0 is a pure write.
    EXPECT_TRUE(
        lowerSaxpby(16, 1.0f, x.data(), 1, 0.0f, y.data(), 1).rerunSafe);
    std::vector<float> a(16);
    EXPECT_TRUE(lowerSgemv(mkl::Order::RowMajor, mkl::Transpose::NoTrans,
                           4, 4, 1.0f, a.data(), 4, x.data(), 1, 0.0f,
                           y.data(), 1)
                    .rerunSafe);
    EXPECT_FALSE(lowerSgemv(mkl::Order::RowMajor,
                            mkl::Transpose::NoTrans, 4, 4, 1.0f, a.data(),
                            4, x.data(), 1, 0.5f, y.data(), 1)
                     .rerunSafe);
}

TEST(OpIr, ColumnMajorGemvStaysHostSide)
{
    std::vector<float> a(64), x(8), y(8);
    OpDesc rm = lowerSgemv(mkl::Order::RowMajor, mkl::Transpose::NoTrans,
                           8, 8, 1.0f, a.data(), 8, x.data(), 1, 0.0f,
                           y.data(), 1);
    OpDesc cm = lowerSgemv(mkl::Order::ColMajor, mkl::Transpose::NoTrans,
                           8, 8, 1.0f, a.data(), 8, x.data(), 1, 0.0f,
                           y.data(), 1);
    EXPECT_TRUE(rm.accelSupported);
    EXPECT_FALSE(cm.accelSupported);
}

TEST(OpIr, LegacyCsrIndexingIsNotBackendMappable)
{
    // 1-based int32 row pointers: the policy may price an offload, but
    // the backend must decline the mapping (int64 0-based hardware).
    std::vector<float> vals{2.0f, 1.0f, 3.0f};
    std::vector<std::int32_t> ia{1, 2, 4};
    std::vector<std::int32_t> ja{1, 1, 2};
    std::vector<float> x(2), y(2);
    OpDesc d = lowerScsrgemv1(2, vals.data(), ia.data(), ja.data(),
                              x.data(), y.data(), false);
    EXPECT_TRUE(d.accelSupported);
    EXPECT_FALSE(d.backendMappable);
    EXPECT_EQ(d.call.k, 3u); // nnz from the 1-based row pointer
}

// --- policies ----------------------------------------------------------

TEST(Policy, MakePolicyParsesNames)
{
    ASSERT_NE(makePolicy("host"), nullptr);
    ASSERT_NE(makePolicy("accel"), nullptr);
    ASSERT_NE(makePolicy("crossover"), nullptr);
    ASSERT_NE(makePolicy("calibrated"), nullptr);
    EXPECT_STREQ(makePolicy("host")->name(), "host");
    EXPECT_STREQ(makePolicy("crossover")->name(), "crossover");
    EXPECT_EQ(makePolicy("gpu"), nullptr);
    EXPECT_EQ(makePolicy(""), nullptr);
}

/**
 * The acceptance criterion of the dispatch PR: at the paper's Table-2
 * sizes the crossover policy offloads every memory-bounded library call
 * and keeps the compute-bounded ones (gemm, cherk, ctrsm) on the host.
 */
TEST(Policy, CrossoverReproducesTable2SplitAtPaperScale)
{
    RooflineCostModel costs;
    CrossoverModel policy;
    for (std::uint8_t k = 0;
         k < static_cast<std::uint8_t>(accel::AccelKind::kCount); ++k) {
        auto kind = static_cast<accel::AccelKind>(k);
        eval::Workload w = eval::table2Workload(kind);
        OpDesc d = opDescFromCall(w.call, w.loop);
        EXPECT_EQ(policy.decide(d, &costs), Backend::Accel)
            << accel::name(kind) << " should offload at paper scale";
    }

    // Compute-bounded calls at STAP scale: no accelerator exists, and
    // the cost model prices them host-side (+inf accelerator seconds).
    OpDesc gemm = lowerSgemm(512, 512, 512, nullptr, nullptr, 0.0f,
                             nullptr);
    OpDesc herk = lowerCherk(256, 1024, nullptr, 0.0f, nullptr);
    OpDesc trsm = lowerCtrsm(256, 256, nullptr, nullptr);
    EXPECT_EQ(policy.decide(gemm, &costs), Backend::Host);
    EXPECT_EQ(policy.decide(herk, &costs), Backend::Host);
    EXPECT_EQ(policy.decide(trsm, &costs), Backend::Host);
}

TEST(Policy, CrossoverKeepsSmallCallsOnHost)
{
    // A 256-element axpy is dominated by the flush + handshake
    // overhead: the crossover must keep it host-side (paper Sec. 5).
    RooflineCostModel costs;
    CrossoverModel policy;
    std::vector<float> x(256), y(256);
    OpDesc d = lowerSaxpy(256, 2.0f, x.data(), 1, y.data(), 1);
    EXPECT_EQ(policy.decide(d, &costs), Backend::Host);
}

TEST(Policy, CalibratedSticksAfterWindow)
{
    RooflineCostModel costs;
    Calibrated policy(4);
    eval::Workload w = eval::table2Workload(accel::AccelKind::AXPY);
    OpDesc d = opDescFromCall(w.call, w.loop);
    EXPECT_FALSE(policy.sticky(OpKind::Axpy));
    for (int i = 0; i < 4; ++i)
        policy.decide(d, &costs);
    EXPECT_TRUE(policy.sticky(OpKind::Axpy));
    // The accumulated tallies favour the accelerator at paper scale,
    // and the choice no longer changes.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(policy.decide(d, &costs), Backend::Accel);
}

TEST(CostModel, FusionWindowMemoSurvivesToggle)
{
    // The accel memo is keyed by (shape, window): re-pricing under a
    // window seen before must return the cached value bitwise, and a
    // toggle away and back must not re-derive (or drift) the estimate.
    RooflineCostModel costs;
    eval::Workload w = eval::table2Workload(accel::AccelKind::AXPY);
    OpDesc d = opDescFromCall(w.call, w.loop);

    const double w1 = costs.accelSeconds(d);
    costs.setFusionWindow(4);
    const double w4 = costs.accelSeconds(d);
    EXPECT_LT(w4, w1); // amortized overhead must shrink the estimate
    costs.setFusionWindow(1);
    const double w1Again = costs.accelSeconds(d);
    EXPECT_EQ(std::memcmp(&w1Again, &w1, sizeof w1), 0);
    costs.setFusionWindow(4);
    const double w4Again = costs.accelSeconds(d);
    EXPECT_EQ(std::memcmp(&w4Again, &w4, sizeof w4), 0);

    // The host side is window-independent by construction.
    costs.setFusionWindow(1);
    const double h1 = costs.hostSeconds(d);
    costs.setFusionWindow(4);
    const double h4 = costs.hostSeconds(d);
    EXPECT_EQ(std::memcmp(&h4, &h1, sizeof h1), 0);
}

TEST(CostModel, HostCalibrationOffByDefault)
{
    // Without MEALIB_HOST_CALIBRATE the modeled host baseline is the
    // pinned pricing: scale exactly 1.
    ASSERT_EQ(unsetenv("MEALIB_HOST_CALIBRATE"), 0);
    RooflineCostModel costs;
    EXPECT_EQ(costs.hostCalibrationScale(), 1.0);
}

TEST(CostModel, HostCalibrationScalesHostSeconds)
{
    eval::Workload w = eval::table2Workload(accel::AccelKind::AXPY);
    OpDesc d = opDescFromCall(w.call, w.loop);

    ASSERT_EQ(unsetenv("MEALIB_HOST_CALIBRATE"), 0);
    RooflineCostModel pinned;
    const double base = pinned.hostSeconds(d);

    ASSERT_EQ(setenv("MEALIB_HOST_CALIBRATE", "1", 1), 0);
    RooflineCostModel calibrated;
    ASSERT_EQ(unsetenv("MEALIB_HOST_CALIBRATE"), 0);

    const double scale = calibrated.hostCalibrationScale();
    EXPECT_GE(scale, 0.05);
    EXPECT_LE(scale, 20.0);
    EXPECT_NEAR(calibrated.hostSeconds(d), base / scale,
                1e-12 * base / scale);
}

TEST(Policy, ModelDrivenPoliciesDefaultHostWithoutOracle)
{
    CrossoverModel crossover;
    Calibrated calibrated;
    std::vector<float> x(1 << 20), y(1 << 20);
    OpDesc d = lowerSaxpy(1 << 20, 2.0f, x.data(), 1, y.data(), 1);
    EXPECT_EQ(crossover.decide(d, nullptr), Backend::Host);
    EXPECT_EQ(calibrated.decide(d, nullptr), Backend::Host);
}

// --- dispatcher execution & telemetry ----------------------------------

/** Scripted backend: fails or succeeds on demand, counts invocations. */
class FakeBackend final : public AccelBackend
{
  public:
    const char *name() const override { return "fake"; }
    Status
    execute(const OpDesc &) override
    {
        executes++;
        return fail ? Status::error(ErrorCode::DeviceFailed,
                                    "scripted failure")
                    : Status();
    }

    unsigned executes = 0;
    bool fail = false;
};

TEST(Dispatcher, NoBackendFallbackExecutesHostFn)
{
    Dispatcher disp(makePolicy("accel"));
    std::vector<float> x{1, 2, 3}, y{4, 5, 6};
    OpDesc d =
        lowerSaxpby(3, 2.0f, x.data(), 1, 0.0f, y.data(), 1);
    disp.run(d, [&] { mkl::saxpby(3, 2.0f, x.data(), 1, 0.0f,
                                  y.data(), 1); });
    EXPECT_FLOAT_EQ(y[0], 2.0f);
    EXPECT_FLOAT_EQ(y[2], 6.0f);

    DispatchStats s = disp.snapshot();
    const OpStats &axpy = s.of(OpKind::Axpy);
    EXPECT_EQ(axpy.calls, 1u);
    EXPECT_EQ(axpy.accelDecisions, 1u);
    EXPECT_EQ(axpy.offloaded, 0u);
    EXPECT_EQ(axpy.fallbacks, 1u);
    EXPECT_EQ(axpy.fallbackBy[static_cast<std::size_t>(
                  FallbackReason::NoBackend)],
              1u);
}

TEST(Dispatcher, UnmappableDeclinesBeforeTouchingBackend)
{
    Dispatcher disp(makePolicy("accel"));
    FakeBackend backend;
    disp.attachBackend(&backend);

    std::vector<float> vals{2.0f, 1.0f, 3.0f};
    std::vector<std::int32_t> ia{1, 2, 4};
    std::vector<std::int32_t> ja{1, 1, 2};
    std::vector<float> x{10.0f, 100.0f}, y{0.0f, 0.0f};
    OpDesc d = lowerScsrgemv1(2, vals.data(), ia.data(), ja.data(),
                              x.data(), y.data(), false);
    bool ranHost = false;
    disp.run(d, [&] { ranHost = true; });
    disp.detachBackend();

    EXPECT_TRUE(ranHost);
    EXPECT_EQ(backend.executes, 0u);
    DispatchStats s = disp.snapshot();
    EXPECT_EQ(s.of(OpKind::Spmv).fallbackBy[static_cast<std::size_t>(
                  FallbackReason::Unmappable)],
              1u);
}

TEST(Dispatcher, BackendErrorRerunsHostWhenSafe)
{
    Dispatcher disp(makePolicy("accel"));
    FakeBackend backend;
    backend.fail = true;
    disp.attachBackend(&backend);

    std::vector<float> x{1, 1}, y{9, 9};
    OpDesc safe = lowerSaxpby(2, 3.0f, x.data(), 1, 0.0f, y.data(), 1);
    disp.run(safe, [&] { mkl::saxpby(2, 3.0f, x.data(), 1, 0.0f,
                                     y.data(), 1); });
    EXPECT_EQ(backend.executes, 1u);
    EXPECT_FLOAT_EQ(y[0], 3.0f); // host rerun produced the result

    // A non-rerun-safe op (accumulating saxpy) must surface the error
    // instead of double-applying.
    OpDesc unsafe = lowerSaxpy(2, 3.0f, x.data(), 1, y.data(), 1);
    EXPECT_THROW(disp.run(unsafe, [&] {}), MealibError);
    disp.detachBackend();

    DispatchStats s = disp.snapshot();
    EXPECT_EQ(s.of(OpKind::Axpy).fallbackBy[static_cast<std::size_t>(
                  FallbackReason::BackendError)],
              2u);
}

TEST(Dispatcher, TelemetryJsonCarriesSchema)
{
    Dispatcher disp(makePolicy("accel"));
    std::vector<float> x(64), y(64);
    OpDesc d = lowerSaxpby(64, 1.0f, x.data(), 1, 0.0f, y.data(), 1);
    disp.run(d, [&] {});
    std::string json = disp.snapshot().toJson("accel");
    EXPECT_NE(json.find("\"policy\": \"accel\""), std::string::npos);
    EXPECT_NE(json.find("\"calls\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"offload_ratio\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"axpy\""), std::string::npos);
    // Kinds with zero calls are skipped.
    EXPECT_EQ(json.find("\"kind\": \"gemm\""), std::string::npos);
}

// --- bit-for-bit host execution (satellite 3) --------------------------

/**
 * The HostOnly guarantee on a STAP-like pipeline: the covariance /
 * solve / beamform sequence computed through the dispatched compat
 * entry points is byte-identical to direct mkl:: kernel calls. The
 * global dispatcher runs here exactly as in the rewritten apps; with
 * any policy but no backend every call must still execute the host
 * kernels bit-for-bit.
 */
TEST(Dispatcher, StapPipelineBitForBitThroughDispatch)
{
    const std::int64_t ch = 8, snap = 32;
    Rng rngA(11), rngB(11);
    auto fill = [](std::vector<mkl::cfloat> &v, Rng &rng) {
        for (auto &c : v)
            c = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    };

    // Two identical input sets, one per path.
    std::vector<mkl::cfloat> a1(ch * snap), a2(ch * snap);
    fill(a1, rngA);
    fill(a2, rngB);
    std::vector<mkl::cfloat> cov1(ch * ch, mkl::cfloat{0, 0});
    std::vector<mkl::cfloat> cov2 = cov1;
    std::vector<mkl::cfloat> steer1(ch, mkl::cfloat{1, 0});
    std::vector<mkl::cfloat> steer2 = steer1;
    std::vector<mkl::cfloat> out1(ch, mkl::cfloat{0, 0});
    std::vector<mkl::cfloat> out2 = out1;

    // Path 1: dispatched entry points (what the apps now call).
    ops::cherk(mkl::Order::RowMajor, mkl::Uplo::Upper,
               mkl::Transpose::NoTrans, ch, snap, 1.0f, a1.data(), snap,
               0.0f, cov1.data(), ch);
    mkl::cfloat alpha{1, 0};
    ops::ctrsm(mkl::Order::RowMajor, mkl::Side::Left, mkl::Uplo::Upper,
               mkl::Transpose::ConjTrans, mkl::Diag::NonUnit, ch, 1,
               alpha, cov1.data(), ch, steer1.data(), 1);
    mkl::cfloat g1 = ops::cdotc(ch, steer1.data(), 1, steer1.data(), 1);
    ops::caxpy(ch, g1, steer1.data(), 1, out1.data(), 1);

    // Path 2: the un-dispatched kernels.
    mkl::cherk(mkl::Order::RowMajor, mkl::Uplo::Upper,
               mkl::Transpose::NoTrans, ch, snap, 1.0f, a2.data(), snap,
               0.0f, cov2.data(), ch);
    mkl::ctrsm(mkl::Order::RowMajor, mkl::Side::Left, mkl::Uplo::Upper,
               mkl::Transpose::ConjTrans, mkl::Diag::NonUnit, ch, 1,
               alpha, cov2.data(), ch, steer2.data(), 1);
    mkl::cfloat g2 = mkl::cdotc(ch, steer2.data(), 1, steer2.data(), 1);
    mkl::caxpy(ch, g2, steer2.data(), 1, out2.data(), 1);

    EXPECT_EQ(std::memcmp(cov1.data(), cov2.data(),
                          cov1.size() * sizeof(mkl::cfloat)),
              0);
    EXPECT_EQ(std::memcmp(steer1.data(), steer2.data(),
                          steer1.size() * sizeof(mkl::cfloat)),
              0);
    EXPECT_EQ(std::memcmp(out1.data(), out2.data(),
                          out1.size() * sizeof(mkl::cfloat)),
              0);
    EXPECT_EQ(std::memcmp(&g1, &g2, sizeof g1), 0);
}

TEST(Dispatcher, CompatShimsBitForBitThroughDispatch)
{
    // The C-named shims (compat.cc) also lower + dispatch now; pure
    // BLAS-1/2 legs must stay bit-identical to the mkl:: kernels.
    std::vector<float> x{1, 2, 3, 4}, y1{5, 6, 7, 8};
    std::vector<float> y2 = y1;
    cblas_saxpy(4, 1.5f, x.data(), 1, y1.data(), 1);
    mkl::saxpy(4, 1.5f, x.data(), 1, y2.data(), 1);
    EXPECT_EQ(std::memcmp(y1.data(), y2.data(), 4 * sizeof(float)), 0);
    EXPECT_EQ(cblas_sdot(4, x.data(), 1, y1.data(), 1),
              mkl::sdot(4, x.data(), 1, y2.data(), 1));
}

// --- runtime backend ---------------------------------------------------

TEST(RuntimeBackend, OffloadedAxpyMatchesHostKernel)
{
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 8ull << 20;
    runtime::MealibRuntime rt(cfg);

    const std::int64_t n = 4096;
    auto *x = static_cast<float *>(rt.memAlloc(n * 4));
    auto *y = static_cast<float *>(rt.memAlloc(n * 4));
    std::vector<float> xh(n), yh(n);
    Rng rng(21);
    for (std::int64_t i = 0; i < n; ++i) {
        x[i] = xh[i] = rng.uniform(-1.0f, 1.0f);
        y[i] = yh[i] = rng.uniform(-1.0f, 1.0f);
    }

    Dispatcher disp(makePolicy("accel"));
    RuntimeBackend backend(rt);
    disp.attachBackend(&backend);
    OpDesc d = lowerSaxpy(n, 2.0f, x, 1, y, 1);
    bool ranHost = false;
    disp.run(d, [&] { ranHost = true; });
    disp.detachBackend();

    EXPECT_FALSE(ranHost);
    DispatchStats s = disp.snapshot();
    EXPECT_EQ(s.of(OpKind::Axpy).offloaded, 1u);
    EXPECT_GT(s.of(OpKind::Axpy).bytesOffloaded, 0.0);

    // The functional accelerator engine computes the same numbers the
    // host kernel would.
    mkl::saxpy(n, 2.0f, xh.data(), 1, yh.data(), 1);
    EXPECT_EQ(std::memcmp(y, yh.data(),
                          static_cast<std::size_t>(n) * 4),
              0);
    rt.memFree(x);
    rt.memFree(y);
}

TEST(RuntimeBackend, DeclinesOperandsOutsideAcceleratorMemory)
{
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 8ull << 20;
    runtime::MealibRuntime rt(cfg);

    Dispatcher disp(makePolicy("accel"));
    RuntimeBackend backend(rt);
    disp.attachBackend(&backend);

    // Plain heap buffers: tryPhysOf fails, the backend declines, and
    // the rerun-safe host path produces the result.
    std::vector<float> x{1, 1, 1, 1}, y{9, 9, 9, 9};
    OpDesc d = lowerSaxpby(4, 2.0f, x.data(), 1, 0.0f, y.data(), 1);
    disp.run(d, [&] { mkl::saxpby(4, 2.0f, x.data(), 1, 0.0f,
                                  y.data(), 1); });
    disp.detachBackend();

    EXPECT_FLOAT_EQ(y[0], 2.0f);
    DispatchStats s = disp.snapshot();
    EXPECT_EQ(s.of(OpKind::Axpy).offloaded, 0u);
    EXPECT_EQ(s.of(OpKind::Axpy).fallbacks, 1u);
}

} // namespace
} // namespace mealib::dispatch
