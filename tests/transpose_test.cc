// Tests for the transpose/copy kernels (RESHP).

#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "minimkl/naive.hh"
#include "minimkl/transpose.hh"

namespace mealib::mkl {
namespace {

std::vector<float>
randomVec(std::int64_t n, Rng &rng)
{
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

TEST(Somatcopy, TransposeMatchesNaive)
{
    Rng rng(1);
    const std::int64_t r = 37, c = 53; // straddles the 32-wide blocks
    auto a = randomVec(r * c, rng);
    std::vector<float> b(a.size()), ref(a.size());
    somatcopy(Order::RowMajor, Transpose::Trans, r, c, 1.0f, a.data(), c,
              b.data(), r);
    naive::transpose(r, c, a.data(), ref.data());
    EXPECT_EQ(b, ref);
}

TEST(Somatcopy, NoTransScalesAndCopies)
{
    Rng rng(2);
    auto a = randomVec(6 * 4, rng);
    std::vector<float> b(a.size());
    somatcopy(Order::RowMajor, Transpose::NoTrans, 6, 4, 2.0f, a.data(),
              4, b.data(), 4);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(b[i], 2.0f * a[i]);
}

TEST(Somatcopy, RespectsLeadingDimensions)
{
    // 2x3 logical matrix in lda=5 storage transposed into ldb=4 storage.
    std::vector<float> a(10, -1.0f);
    a[0] = 1;
    a[1] = 2;
    a[2] = 3;
    a[5] = 4;
    a[6] = 5;
    a[7] = 6;
    std::vector<float> b(12, -7.0f);
    somatcopy(Order::RowMajor, Transpose::Trans, 2, 3, 1.0f, a.data(), 5,
              b.data(), 4);
    EXPECT_FLOAT_EQ(b[0], 1);
    EXPECT_FLOAT_EQ(b[1], 4);
    EXPECT_FLOAT_EQ(b[4], 2);
    EXPECT_FLOAT_EQ(b[5], 5);
    EXPECT_FLOAT_EQ(b[8], 3);
    EXPECT_FLOAT_EQ(b[9], 6);
    EXPECT_FLOAT_EQ(b[2], -7.0f); // padding untouched
}

TEST(Simatcopy, SquareInPlaceTransposeIsInvolution)
{
    Rng rng(3);
    const std::int64_t n = 65;
    auto a = randomVec(n * n, rng);
    auto a0 = a;
    simatcopy(Order::RowMajor, Transpose::Trans, n, n, 1.0f, a.data(), n,
              n);
    simatcopy(Order::RowMajor, Transpose::Trans, n, n, 1.0f, a.data(), n,
              n);
    EXPECT_EQ(a, a0);
}

TEST(Simatcopy, SquareTransposeCorrect)
{
    const std::int64_t n = 4;
    std::vector<float> a(n * n);
    for (std::int64_t i = 0; i < n * n; ++i)
        a[static_cast<std::size_t>(i)] = static_cast<float>(i);
    simatcopy(Order::RowMajor, Transpose::Trans, n, n, 1.0f, a.data(), n,
              n);
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            EXPECT_FLOAT_EQ(a[static_cast<std::size_t>(i * n + j)],
                            static_cast<float>(j * n + i));
}

TEST(Simatcopy, RectangularInPlaceTranspose)
{
    Rng rng(4);
    const std::int64_t r = 5, c = 9;
    auto a = randomVec(r * c, rng);
    auto a0 = a;
    simatcopy(Order::RowMajor, Transpose::Trans, r, c, 1.0f, a.data(), c,
              r);
    for (std::int64_t i = 0; i < r; ++i)
        for (std::int64_t j = 0; j < c; ++j)
            EXPECT_FLOAT_EQ(a[static_cast<std::size_t>(j * r + i)],
                            a0[static_cast<std::size_t>(i * c + j)]);
}

TEST(Simatcopy, AlphaScalesDuringTranspose)
{
    std::vector<float> a{1, 2, 3, 4};
    simatcopy(Order::RowMajor, Transpose::Trans, 2, 2, 10.0f, a.data(), 2,
              2);
    EXPECT_FLOAT_EQ(a[0], 10.0f);
    EXPECT_FLOAT_EQ(a[1], 30.0f);
    EXPECT_FLOAT_EQ(a[2], 20.0f);
    EXPECT_FLOAT_EQ(a[3], 40.0f);
}

TEST(Simatcopy, NoTransLdaMismatchIsFatal)
{
    std::vector<float> a(16);
    EXPECT_THROW(simatcopy(Order::RowMajor, Transpose::NoTrans, 4, 4,
                           1.0f, a.data(), 4, 5),
                 FatalError);
}

TEST(Comatcopy, ConjTransConjugates)
{
    std::vector<cfloat> a{{1, 2}, {3, 4}, {5, 6}, {7, 8}};
    std::vector<cfloat> b(4);
    comatcopy(Order::RowMajor, Transpose::ConjTrans, 2, 2, {1, 0},
              a.data(), 2, b.data(), 2);
    EXPECT_EQ(b[0], (cfloat{1, -2}));
    EXPECT_EQ(b[1], (cfloat{5, -6}));
    EXPECT_EQ(b[2], (cfloat{3, -4}));
    EXPECT_EQ(b[3], (cfloat{7, -8}));
}

TEST(Somatcopy, ColMajorTransposeAgreesWithRowMajor)
{
    Rng rng(5);
    const std::int64_t r = 7, c = 11;
    auto a_rm = randomVec(r * c, rng); // row-major r x c

    std::vector<float> b_rm(a_rm.size());
    somatcopy(Order::RowMajor, Transpose::Trans, r, c, 1.0f, a_rm.data(),
              c, b_rm.data(), r);

    // Reinterpreting the same buffer as column-major makes it the c x r
    // logical transpose (with lda still c); transposing THAT writes a
    // column-major c-by-r transpose whose storage bytes coincide with
    // b_rm.
    std::vector<float> b_cm(a_rm.size());
    somatcopy(Order::ColMajor, Transpose::Trans, c, r, 1.0f, a_rm.data(),
              c, b_cm.data(), r);
    EXPECT_EQ(b_rm, b_cm);
}

// Property sweep: out-of-place transpose round-trips across shapes.
class TransposeShapes
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(TransposeShapes, DoubleTransposeIsIdentity)
{
    auto [r, c] = GetParam();
    Rng rng(static_cast<std::uint64_t>(r * 131 + c));
    auto a = randomVec(r * c, rng);
    std::vector<float> t(a.size()), back(a.size());
    somatcopy(Order::RowMajor, Transpose::Trans, r, c, 1.0f, a.data(), c,
              t.data(), r);
    somatcopy(Order::RowMajor, Transpose::Trans, c, r, 1.0f, t.data(), r,
              back.data(), c);
    EXPECT_EQ(a, back);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposeShapes,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 17),
                      std::make_tuple(17, 1), std::make_tuple(31, 33),
                      std::make_tuple(32, 32), std::make_tuple(33, 31),
                      std::make_tuple(128, 64)));

} // namespace
} // namespace mealib::mkl
