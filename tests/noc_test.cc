// Tests for the accelerator-layer mesh NoC model.

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "noc/mesh.hh"

namespace mealib::noc {
namespace {

TEST(Mesh, HopCountsXy)
{
    Mesh m(mealibMesh()); // 8x4
    EXPECT_EQ(m.hops(0, 0), 0u);
    EXPECT_EQ(m.hops(0, 7), 7u);   // across one row
    EXPECT_EQ(m.hops(0, 24), 3u);  // down one column
    EXPECT_EQ(m.hops(0, 31), 10u); // opposite corner: 7 + 3
    EXPECT_EQ(m.hops(31, 0), 10u); // symmetric
}

TEST(Mesh, HopsOutOfRangeIsFatal)
{
    Mesh m(mealibMesh());
    EXPECT_THROW(m.hops(0, 32), FatalError);
}

TEST(Mesh, TransferTimeGrowsWithBytesAndHops)
{
    Mesh m(mealibMesh());
    double near_small = m.transferSeconds(0, 1, 64);
    double near_big = m.transferSeconds(0, 1, 64_KiB);
    double far_small = m.transferSeconds(0, 31, 64);
    EXPECT_LT(near_small, near_big);
    EXPECT_LT(near_small, far_small);
}

TEST(Mesh, ZeroBytesIsFree)
{
    Mesh m(mealibMesh());
    EXPECT_DOUBLE_EQ(m.transferSeconds(0, 31, 0), 0.0);
}

TEST(Mesh, EnergyProportionalToBytesTimesHops)
{
    Mesh m(mealibMesh());
    double e1 = m.transferJoules(1, 1024);
    double e2 = m.transferJoules(2, 1024);
    double e3 = m.transferJoules(1, 2048);
    EXPECT_DOUBLE_EQ(e2, 2.0 * e1);
    EXPECT_DOUBLE_EQ(e3, 2.0 * e1);
}

TEST(Mesh, Table5PowerAndArea)
{
    Mesh m(mealibMesh());
    // Table 5: NoC (router + link) 0.095 W and 1.44 mm^2.
    EXPECT_NEAR(m.leakageW(), 0.095, 0.001);
    EXPECT_NEAR(m.areaMm2(), 1.44, 0.01);
}

TEST(Mesh, ReductionCostPositiveAndBounded)
{
    Mesh m(mealibMesh());
    Cost c = m.reduceToTile0(64);
    EXPECT_GT(c.seconds, 0.0);
    EXPECT_GT(c.joules, 0.0);
    // A 64-byte-per-tile reduction should be far under a microsecond.
    EXPECT_LT(c.seconds, 1e-6);
}

TEST(Mesh, BadConfigIsFatal)
{
    MeshParams p = mealibMesh();
    p.width = 0;
    EXPECT_THROW(Mesh{p}, FatalError);
}

} // namespace
} // namespace mealib::noc
