// Tests for the source-to-source compiler: tokenization, the Listing-1
// translation patterns, placeholder binding, and an end-to-end
// translate -> bind -> TDL-compile -> execute integration.

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "runtime/runtime.hh"
#include "s2s/clex.hh"
#include "s2s/compiler.hh"
#include "tdl/codegen.hh"

namespace mealib::s2s {
namespace {

TEST(Clex, BasicTokens)
{
    auto t = clex("int x = foo(3, \"s\"); /* c */ // line\n#pragma omp");
    ASSERT_GE(t.size(), 10u);
    EXPECT_EQ(t[0].text, "int");
    EXPECT_EQ(t[1].text, "x");
    EXPECT_EQ(t[2].text, "=");
    EXPECT_EQ(t[3].text, "foo");
    EXPECT_EQ(t[5].kind, CTokKind::Number);
    EXPECT_EQ(t[7].kind, CTokKind::String);
    EXPECT_EQ(t.rbegin()[1].kind, CTokKind::Pragma);
}

TEST(Clex, MultiCharPunctuators)
{
    auto t = clex("a += b++; c <= d;");
    EXPECT_EQ(t[1].text, "+=");
    EXPECT_EQ(t[3].text, "++");
    EXPECT_EQ(t[6].text, "<=");
}

TEST(Clex, SpansIndexOriginalSource)
{
    std::string src = "abc def";
    auto t = clex(src);
    EXPECT_EQ(src.substr(t[1].begin, t[1].end - t[1].begin), "def");
}

TEST(Translate, MallocFreeRewritten)
{
    TranslationResult r = translate(
        "float *x = malloc(1024);\nfree(x);\n");
    EXPECT_EQ(r.allocRewrites, 2u);
    EXPECT_NE(r.source.find("mealib_mem_alloc(1024)"),
              std::string::npos);
    EXPECT_NE(r.source.find("mealib_mem_free(x)"), std::string::npos);
    EXPECT_EQ(r.source.find("malloc("), std::string::npos);
}

TEST(Translate, BareSaxpyBecomesPlan)
{
    TranslationResult r =
        translate("cblas_saxpy(1024, 2.0, x, 1, y, 1);\n");
    EXPECT_EQ(r.plansEmitted, 1u);
    EXPECT_NE(r.tdl.find("COMP(acc=AXPY"), std::string::npos);
    EXPECT_NE(r.source.find("mealib_acc_plan"), std::string::npos);
    EXPECT_NE(r.source.find("mealib_dispatch_execute"), std::string::npos);
    EXPECT_NE(r.source.find("mealib_acc_destroy"), std::string::npos);
    EXPECT_EQ(r.source.find("cblas_saxpy"), std::string::npos);
    // Parameter file carries the literal n and symbolic buffers.
    ASSERT_EQ(r.paramFiles.size(), 1u);
    const std::string &pf = r.paramFiles.begin()->second;
    EXPECT_NE(pf.find("n = 1024"), std::string::npos);
    EXPECT_NE(pf.find("in0 = $x"), std::string::npos);
    EXPECT_NE(pf.find("out = $y"), std::string::npos);
}

TEST(Translate, ChainedGuruPlansBecomeOnePass)
{
    const char *src = R"(
plan_ct = fftwf_plan_guru_dft(0, NULL, 3, howmany_dims_ct,
    datacube, datacube_pulse_major_padded, FFTW_FORWARD,
    FFTW_WISDOM_ONLY);
plan_fft = fftwf_plan_guru_dft(1, dims, 2, howmany_dims,
    datacube_pulse_major_padded, datacube_doppler_major,
    FFTW_FORWARD, FFTW_WISDOM_ONLY);
fftwf_execute(plan_ct);
fftwf_execute(plan_fft);
)";
    TranslationResult r = translate(src);
    EXPECT_EQ(r.plansEmitted, 1u); // both executes in ONE pass
    EXPECT_EQ(r.callsAbsorbed, 2u);
    // RESHP (rank 0) chained before FFT (rank 1), as in Sec. 3.4.
    auto reshp = r.tdl.find("COMP(acc=RESHP");
    auto fft = r.tdl.find("COMP(acc=FFT");
    ASSERT_NE(reshp, std::string::npos);
    ASSERT_NE(fft, std::string::npos);
    EXPECT_LT(reshp, fft);
    // Plan statements are commented out, one runtime block inserted.
    EXPECT_NE(r.source.find("MEALib (plan absorbed"), std::string::npos);
    EXPECT_NE(r.source.find("mealib_acc_plan"), std::string::npos);
    EXPECT_NE(r.source.find("MEALib (chained into plan"),
              std::string::npos);
}

TEST(Translate, UnrelatedExecutesStaySeparate)
{
    const char *src = R"(
p1 = fftwf_plan_guru_dft(1, dims, 1, hm, a, b, FFTW_FORWARD, 0);
p2 = fftwf_plan_guru_dft(1, dims, 1, hm, c, d, FFTW_FORWARD, 0);
fftwf_execute(p1);
fftwf_execute(p2);
)";
    TranslationResult r = translate(src);
    EXPECT_EQ(r.plansEmitted, 2u); // b != c, so no chaining
}

TEST(Translate, OmpNestBecomesLoopBlock)
{
    const char *src = R"(
#pragma omp parallel for num_threads(4)
for (dop = 0; dop < 256; ++dop)
  for (block = 0; block < N_BLOCKS; ++block)
    for (sv = 0; sv < 64; ++sv)
      for (cell = 0; cell < TBS; ++cell)
        cblas_cdotc_sub(36,
            &adaptive_weights[dop][block][sv][0], 1,
            &snapshots[dop][block][cell], TBS,
            &prods[dop][block][sv][cell]);
)";
    TranslationResult r = translate(src);
    EXPECT_EQ(r.plansEmitted, 1u);
    EXPECT_NE(r.tdl.find("LOOP(dims=\"256x$N_BLOCKSx64x$TBS\")"),
              std::string::npos);
    EXPECT_NE(r.tdl.find("COMP(acc=DOT"), std::string::npos);
    EXPECT_EQ(r.source.find("#pragma omp"), std::string::npos);
    EXPECT_EQ(r.source.find("cblas_cdotc_sub"), std::string::npos);
    // Known loop extents fold into the absorbed-call count.
    EXPECT_EQ(r.callsAbsorbed, 256u * 64u);
    // Buffer identifiers feed the parameter file.
    const std::string &pf = r.paramFiles.begin()->second;
    EXPECT_NE(pf.find("in0 = $adaptive_weights"), std::string::npos);
    EXPECT_NE(pf.find("in1 = $snapshots"), std::string::npos);
    EXPECT_NE(pf.find("out = $prods"), std::string::npos);
    EXPECT_NE(pf.find("inc1 = $TBS"), std::string::npos);
}

TEST(Translate, SimatcopyAndInterpolate)
{
    TranslationResult r = translate(
        "mkl_simatcopy('R', 'T', 512, 512, 1.0, buf, 512, 512);\n"
        "dfsInterpolate1D(sig, 1024, sites, 2048);\n");
    EXPECT_EQ(r.plansEmitted, 2u);
    EXPECT_NE(r.tdl.find("COMP(acc=RESHP"), std::string::npos);
    EXPECT_NE(r.tdl.find("COMP(acc=RESMP"), std::string::npos);
}

TEST(Translate, UnknownCodeLeftUntouched)
{
    const char *src = "int main() { return compute(a, b) + 1; }\n";
    TranslationResult r = translate(src);
    EXPECT_EQ(r.plansEmitted, 0u);
    EXPECT_EQ(r.source, src);
}

TEST(BindParams, SubstitutesPlaceholders)
{
    std::string text = "n = $len\nin0 = $x\nout = $y\n";
    std::string bound = bindParams(
        text, {{"len", 128}, {"x", 0x1000}, {"y", 0x2000}});
    EXPECT_NE(bound.find("n = 128"), std::string::npos);
    EXPECT_NE(bound.find("in0 = 4096"), std::string::npos);
    EXPECT_EQ(bound.find('$'), std::string::npos);
}

TEST(BindParams, MissingBindingIsFatal)
{
    EXPECT_THROW(bindParams("n = $oops\n", {}), FatalError);
}

TEST(EndToEnd, TranslatedSaxpyExecutesOnAccelerators)
{
    // Legacy source -> s2s -> bind -> TDL -> descriptor -> accelerator.
    TranslationResult r = translate(
        "float *x = malloc(4096);\nfloat *y = malloc(4096);\n"
        "cblas_saxpy(1000, 2.0, x, 1, y, 1);\n");
    ASSERT_EQ(r.plansEmitted, 1u);

    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 16_MiB;
    runtime::MealibRuntime rt(cfg);
    auto *x = static_cast<float *>(rt.memAlloc(4096));
    auto *y = static_cast<float *>(rt.memAlloc(4096));
    for (int i = 0; i < 1000; ++i) {
        x[i] = static_cast<float>(i);
        y[i] = 1.0f;
    }

    std::map<std::string, std::uint64_t> syms{
        {"x", rt.physOf(x)}, {"y", rt.physOf(y)}};
    auto resolve = [&](const std::string &name) {
        auto it = r.paramFiles.find(name);
        fatalIf(it == r.paramFiles.end(), "missing param file ", name);
        return bindParams(it->second, syms);
    };
    accel::DescriptorProgram prog = tdl::compileTdl(
        bindParams(r.tdl, syms), resolve);
    auto h = rt.accPlan(prog);
    rt.accExecute(h);
    rt.accDestroy(h);

    for (int i = 0; i < 1000; ++i)
        ASSERT_FLOAT_EQ(y[i], 2.0f * static_cast<float>(i) + 1.0f);
}

TEST(Translate, BareSgemvBecomesPlan)
{
    TranslationResult r = translate(
        "cblas_sgemv(CblasRowMajor, CblasNoTrans, 512, 256, 1.0, A, "
        "256, x, 1, 0.0, y, 1);\n");
    EXPECT_EQ(r.plansEmitted, 1u);
    EXPECT_NE(r.tdl.find("COMP(acc=GEMV"), std::string::npos);
    const std::string &pf = r.paramFiles.begin()->second;
    EXPECT_NE(pf.find("m = 512"), std::string::npos);
    EXPECT_NE(pf.find("n = 256"), std::string::npos);
    EXPECT_NE(pf.find("in0 = $A"), std::string::npos);
    EXPECT_NE(pf.find("in1 = $x"), std::string::npos);
    EXPECT_NE(pf.find("out = $y"), std::string::npos);
}

TEST(Translate, ScsrgemvBecomesSpmvPlan)
{
    TranslationResult r = translate(
        "mkl_scsrgemv(\"N\", &nrows, vals, ia, ja, xvec, yvec);\n");
    EXPECT_EQ(r.plansEmitted, 1u);
    EXPECT_NE(r.tdl.find("COMP(acc=SPMV"), std::string::npos);
    const std::string &pf = r.paramFiles.begin()->second;
    EXPECT_NE(pf.find("in0 = $ia"), std::string::npos);
    EXPECT_NE(pf.find("in2 = $vals"), std::string::npos);
    EXPECT_NE(pf.find("in3 = $xvec"), std::string::npos);
    // Dimensions are runtime-bound placeholders with diagnostics.
    EXPECT_NE(pf.find("$spmv_nnz"), std::string::npos);
    EXPECT_FALSE(r.notes.empty());
}

TEST(Translate, SaxpyEmitsBetaOne)
{
    // cblas_saxpy accumulates into y; the AXPY accelerator computes the
    // axpby superset, so the compiler must pin beta = 1.
    TranslationResult r =
        translate("cblas_saxpy(64, 2.0, x, 1, y, 1);\n");
    const std::string &pf = r.paramFiles.begin()->second;
    EXPECT_NE(pf.find("beta = 1"), std::string::npos);
}

TEST(Translate, DestroyPlanIsCommentedOut)
{
    TranslationResult r = translate(
        "p = fftwf_plan_guru_dft(1, d, 1, h, a, b, FFTW_FORWARD, 0);\n"
        "fftwf_execute(p);\n"
        "fftwf_destroy_plan(p);\n");
    EXPECT_NE(r.source.find("MEALib (plan destroyed"),
              std::string::npos);
    // No live fftwf_destroy_plan call remains.
    auto pos = r.source.find("fftwf_destroy_plan");
    ASSERT_NE(pos, std::string::npos);
    EXPECT_NE(r.source.rfind("/*", pos), std::string::npos);
}

TEST(Translate, TwoDeepOmpNest)
{
    const char *src = R"(
#pragma omp parallel for
for (i = 0; i < 32; ++i)
  for (j = 0; j < 8; ++j)
    cblas_saxpy(128, 0.5, &a[i][j], 1, &b[i][j], 1);
)";
    TranslationResult r = translate(src);
    EXPECT_EQ(r.plansEmitted, 1u);
    EXPECT_NE(r.tdl.find("LOOP(dims=\"32x8\")"), std::string::npos);
    EXPECT_EQ(r.callsAbsorbed, 32u * 8u);
}

TEST(Translate, NonAccelCallInsideLoopLeftAlone)
{
    const char *src = R"(
#pragma omp parallel for
for (i = 0; i < 32; ++i)
    my_custom_kernel(a, b, i);
)";
    TranslationResult r = translate(src);
    EXPECT_EQ(r.plansEmitted, 0u);
    EXPECT_NE(r.source.find("my_custom_kernel"), std::string::npos);
}

TEST(Translate, MultipleSitesKeepSourceOrder)
{
    TranslationResult r = translate(
        "cblas_sdot(64, a, 1, b, 1);\n"
        "mkl_simatcopy('R', 'T', 32, 32, 1.0, m, 32, 32);\n");
    auto dot = r.tdl.find("acc=DOT");
    auto reshp = r.tdl.find("acc=RESHP");
    ASSERT_NE(dot, std::string::npos);
    ASSERT_NE(reshp, std::string::npos);
    EXPECT_LT(dot, reshp);
    EXPECT_EQ(r.plansEmitted, 2u);
}

TEST(Translate, StapPipelineExecutesViaDispatcher)
{
    // Every rewritten call site in a STAP-like pipeline (corner turn +
    // Doppler FFT chain, beamform dot products, residual AXPY) must
    // execute through the dispatcher seam, never the raw runtime entry.
    const char *src = R"(
plan_ct = fftwf_plan_guru_dft(0, NULL, 3, howmany_dims_ct,
    datacube, datacube_pulse_major, FFTW_FORWARD, FFTW_WISDOM_ONLY);
plan_fft = fftwf_plan_guru_dft(1, dims, 2, howmany_dims,
    datacube_pulse_major, datacube_doppler_major, FFTW_FORWARD,
    FFTW_WISDOM_ONLY);
fftwf_execute(plan_ct);
fftwf_execute(plan_fft);
cblas_cdotc_sub(256, steer, 1, snap, 1, &gamma);
cblas_caxpy(256, &alpha, weights, 1, out, 1);
)";
    TranslationResult r = translate(src);
    EXPECT_EQ(r.plansEmitted, 3u); // chained FFT pass + cdotc + caxpy

    // Each emitted plan pairs with exactly one dispatcher execute, and
    // the pre-dispatch runtime symbol is gone from the rewritten source.
    std::size_t execs = 0;
    for (std::size_t at = r.source.find("mealib_dispatch_execute");
         at != std::string::npos;
         at = r.source.find("mealib_dispatch_execute", at + 1))
        ++execs;
    EXPECT_EQ(execs, 3u);
    EXPECT_EQ(r.source.find("mealib_acc_execute"), std::string::npos);
}

} // namespace
} // namespace mealib::s2s
