// Integration tests for the STAP and SAR applications: functional
// equivalence between host and accelerated execution, and the Fig. 12/13
// relationships.

#include <complex>

#include <gtest/gtest.h>

#include "apps/sar.hh"
#include "apps/stap.hh"
#include "common/logging.hh"

namespace mealib::apps {
namespace {

runtime::MealibRuntime &
functionalRt()
{
    static runtime::RuntimeConfig cfg = [] {
        runtime::RuntimeConfig c;
        c.backingBytes = 128_MiB;
        return c;
    }();
    static runtime::MealibRuntime rt(cfg);
    return rt;
}

TEST(Stap, HostAndMealibProduceIdenticalOutput)
{
    StapParams p = StapParams::smallSet();
    StapResult host = runStapHost(p);
    StapResult mea = runStapMealib(p, functionalRt());
    ASSERT_EQ(host.prods.size(), mea.prods.size());
    for (std::size_t i = 0; i < host.prods.size(); ++i)
        ASSERT_EQ(host.prods[i], mea.prods[i]) << "i=" << i;
}

TEST(Stap, OutputIsNonTrivial)
{
    StapResult r = runStapHost(StapParams::smallSet());
    double energy = 0.0;
    for (auto v : r.prods)
        energy += std::norm(v);
    EXPECT_GT(energy, 0.0);
    EXPECT_TRUE(std::isfinite(energy));
}

TEST(Stap, MealibFasterAndMoreEfficient)
{
    // Fig. 13: >1x performance and larger EDP gains on every set.
    StapParams p = StapParams::smallSet();
    StapResult host = runStapHost(p);
    StapResult mea = runStapMealib(p, functionalRt());
    double perf = host.total().seconds / mea.total().seconds;
    double edp = host.total().edp() / mea.total().edp();
    EXPECT_GT(perf, 1.3);
    EXPECT_LT(perf, 6.0);
    EXPECT_GT(edp, perf); // EDP gain exceeds the speedup
}

TEST(Stap, GainGrowsWithDataSetSize)
{
    // Fig. 13: small 2.0x -> medium 2.3x -> large 3.2x.
    StapResult hs = runStapHost(StapParams::smallSet());
    StapResult ms = runStapMealib(StapParams::smallSet(),
                                  functionalRt());
    StapResult hm = runStapHost(StapParams::mediumSet());
    StapResult mm = runStapMealib(StapParams::mediumSet(),
                                  functionalRt());
    double g_small = hs.total().seconds / ms.total().seconds;
    double g_medium = hm.total().seconds / mm.total().seconds;
    EXPECT_GT(g_medium, g_small);
}

TEST(Stap, ThreeDescriptorsCompactMillionsOfCalls)
{
    // Sec. 5.5: ~17M library calls -> 3 accelerator descriptors.
    StapParams p = StapParams::smallSet();
    StapResult mea = runStapMealib(p, functionalRt());
    EXPECT_EQ(mea.descriptors, 3u);
    EXPECT_GT(mea.libraryCalls, p.dotCalls());
}

TEST(Stap, BreakdownShapeMatchesFig14)
{
    StapParams p = StapParams::mediumSet();
    StapResult mea = runStapMealib(p, functionalRt());

    // Fig. 14a: the host dominates both time and energy.
    double t_host = mea.host.seconds / mea.total().seconds;
    double e_host = mea.host.joules / mea.total().joules;
    EXPECT_GT(t_host, 0.5);
    EXPECT_GT(e_host, t_host); // energy share exceeds time share

    // Fig. 14b: DOT dominates the accelerator portion; AXPY is least
    // among the heavy hitters.
    double t_dot = mea.timeByAccel.fraction("DOT");
    EXPECT_GT(t_dot, 0.5);
    EXPECT_GT(mea.timeByAccel.get("DOT"),
              mea.timeByAccel.get("AXPY"));
    EXPECT_GT(mea.energyByAccel.fraction("DOT"), 0.5);

    // Invocation cost stays a small share of the accelerator total.
    double inv_share =
        mea.invocation.seconds /
        (mea.invocation.seconds + mea.accel.seconds);
    EXPECT_LT(inv_share, 0.5);
}

TEST(Stap, ParamsDeriveConsistentShapes)
{
    StapParams p = StapParams::largeSet();
    EXPECT_EQ(p.dotCalls(), 256u * 16 * 64 * 64); // ~16.7M (Sec. 3.1)
    EXPECT_EQ(p.nRange(), p.nBlocks * p.tbs);
    EXPECT_EQ(p.dofLen(), p.nChan * p.tdof);
}

TEST(Sar, HardwareAndSoftwareChainingProduceSameImage)
{
    SarResult hw = runSarChain(64, true, functionalRt());
    SarResult sw = runSarChain(64, false, functionalRt());
    ASSERT_EQ(hw.image.size(), sw.image.size());
    for (std::size_t i = 0; i < hw.image.size(); ++i)
        ASSERT_EQ(hw.image[i], sw.image[i]);
    EXPECT_EQ(hw.descriptors, 1u);
    EXPECT_EQ(sw.descriptors, 2u);
}

TEST(Sar, HardwareChainingIsFaster)
{
    SarResult hw = runSarChain(128, true, functionalRt());
    SarResult sw = runSarChain(128, false, functionalRt());
    EXPECT_GT(sw.total.seconds, hw.total.seconds);
}

TEST(Sar, ChainingAdvantageShrinksWithSize)
{
    // Fig. 12a: the gap narrows as the problem grows.
    runtime::RuntimeConfig cfg;
    cfg.functional = false;
    cfg.backingBytes = 8_MiB;
    runtime::MealibRuntime rt(cfg);
    double r_small = runSarChain(256, false, rt).total.seconds /
                     runSarChain(256, true, rt).total.seconds;
    double r_large = runSarChain(4096, false, rt).total.seconds /
                     runSarChain(4096, true, rt).total.seconds;
    EXPECT_GT(r_small, r_large);
    EXPECT_GT(r_small, 1.2);
    EXPECT_GT(r_large, 1.0);
}

TEST(Sar, NonPowerOfTwoIsFatal)
{
    EXPECT_THROW(runSarChain(100, true, functionalRt()), FatalError);
}

TEST(FftLoop, HardwareLoopBeatsSoftwareLoop)
{
    // Fig. 12b: 9.5x at 256^2, decaying with size.
    runtime::RuntimeConfig cfg;
    cfg.functional = false;
    cfg.backingBytes = 8_MiB;
    runtime::MealibRuntime rt(cfg);
    FftLoopResult hw = runFftLoop(256, 128, true, rt);
    FftLoopResult sw = runFftLoop(256, 128, false, rt);
    EXPECT_EQ(hw.descriptors, 1u);
    EXPECT_EQ(sw.descriptors, 128u);
    double ratio = sw.total.seconds / hw.total.seconds;
    EXPECT_GT(ratio, 4.0);
    EXPECT_LT(ratio, 20.0);

    double big = runFftLoop(4096, 128, false, rt).total.seconds /
                 runFftLoop(4096, 128, true, rt).total.seconds;
    EXPECT_LT(big, ratio);
    EXPECT_GT(big, 1.0);
}

TEST(FftLoop, FunctionalModeComputesRealFfts)
{
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 32_MiB;
    runtime::MealibRuntime rt(cfg);
    // Just exercises the functional path end to end (small sizes).
    FftLoopResult r = runFftLoop(32, 4, true, rt);
    EXPECT_GT(r.total.seconds, 0.0);
}

TEST(Stap, LedgerTotalsMatchResultAccounting)
{
    // Acceptance pin of the energy-ledger refactor: on the full STAP
    // pipeline the ledger's cross-layer totals equal the per-layer
    // accounting sum within 1e-12 (relative), and its component
    // attribution partitions the same joules.
    StapParams p = StapParams::smallSet();
    StapResult mea = runStapMealib(p, functionalRt());

    const Cost total = mea.total();
    const Cost ledger = mea.ledger.total();
    ASSERT_GT(total.joules, 0.0);
    EXPECT_NEAR(ledger.seconds, total.seconds, 1e-12 * total.seconds);
    EXPECT_NEAR(ledger.joules, total.joules, 1e-12 * total.joules);

    double attributed = 0.0;
    for (const auto &[name, j] : mea.ledger.energyByComponent().parts())
        attributed += j;
    EXPECT_NEAR(attributed, ledger.joules, 1e-12 * ledger.joules);

    // The three pipeline descriptors ran near memory: the DRAM share
    // dominates the accelerator side, and GFLOPS/W is finite.
    EXPECT_GT(mea.ledger.energyByComponent().get("dram"), 0.0);
    EXPECT_GT(mea.ledger.gflopsPerWatt(), 0.0);

    // The host baseline builds its ledger locally; same identity.
    StapResult host = runStapHost(p);
    EXPECT_NEAR(host.ledger.total().joules, host.total().joules,
                1e-12 * host.total().joules);
    EXPECT_NEAR(host.ledger.total().seconds, host.total().seconds,
                1e-12 * host.total().seconds);
}

} // namespace
} // namespace mealib::apps
