// Multi-tenant session contexts (docs/SESSIONS.md): thread binding,
// machine pinning, per-session ledger attribution, and concurrency
// torture — N threads in one session and N sessions side by side must
// reproduce the solo numbers bit for bit.

#include <cmath>
#include <complex>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/cg.hh"
#include "apps/sar.hh"
#include "apps/stap.hh"
#include "common/logging.hh"
#include "dispatch/dispatcher.hh"
#include "dispatch/ops.hh"
#include "hwmodel/profile.hh"
#include "minimkl/compat.hh"
#include "runtime/runtime.hh"
#include "session/session.hh"

namespace mealib {
namespace {

runtime::RuntimeConfig
testConfig()
{
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 256_MiB;
    cfg.numStacks = 2;
    return cfg;
}

// --- binding & routing -------------------------------------------------

TEST(SessionBinding, RoutesDispatchAndRestores)
{
    runtime::MealibRuntime rt(testConfig());
    Session s(rt);
    EXPECT_FALSE(dispatch::hasBoundDispatcher());
    {
        SessionBinding bound = s.bind();
        EXPECT_TRUE(dispatch::hasBoundDispatcher());
        EXPECT_EQ(&dispatch::currentDispatcher(), &s.dispatcher());
        EXPECT_EQ(runtime::boundSessionLedger(), &s.ledger());
    }
    EXPECT_FALSE(dispatch::hasBoundDispatcher());
    EXPECT_EQ(runtime::boundSessionLedger(), nullptr);
    EXPECT_EQ(&dispatch::currentDispatcher(),
              &dispatch::Dispatcher::global());
}

TEST(SessionBinding, BindingsNest)
{
    runtime::MealibRuntime rt(testConfig());
    Session outer(rt);
    Session inner(rt);
    SessionBinding b1 = outer.bind();
    {
        SessionBinding b2 = inner.bind();
        EXPECT_EQ(&dispatch::currentDispatcher(), &inner.dispatcher());
    }
    EXPECT_EQ(&dispatch::currentDispatcher(), &outer.dispatcher());
}

TEST(SessionBinding, CompatCallsUseTheBoundDispatcher)
{
    runtime::MealibRuntime rt(testConfig());
    Session s(rt);
    std::vector<float> x(1024, 1.0f), y(1024, 2.0f);
    {
        SessionBinding bound = s.bind();
        cblas_saxpy(1024, 0.5f, x.data(), 1, y.data(), 1);
    }
    // The MKL-signature call above went through the session's private
    // dispatcher, not the process-global one.
    EXPECT_EQ(s.dispatcher().snapshot().totalCalls(), 1u);
    EXPECT_FLOAT_EQ(y[0], 2.5f);
}

// --- machine pinning ---------------------------------------------------

TEST(SessionMachine, SetActiveMachineRefusesWhileLive)
{
    const std::string before = hwmodel::activeMachineName();
    runtime::MealibRuntime rt(testConfig());
    {
        Session s(rt);
        Status st = hwmodel::setActiveMachine("xeonphi5110p");
        EXPECT_FALSE(st.ok());
        EXPECT_EQ(st.code(), ErrorCode::InvalidArgument);
        EXPECT_EQ(&s.machine(), &hwmodel::activeProfile());
    }
    // The last session is gone: switching works again.
    EXPECT_TRUE(hwmodel::setActiveMachine("xeonphi5110p").ok());
    EXPECT_TRUE(hwmodel::setActiveMachine(before).ok());
}

// --- dispatcher global() -----------------------------------------------

TEST(SessionDispatch, GlobalIsStableAcrossSessions)
{
    dispatch::Dispatcher *before = &dispatch::Dispatcher::global();
    runtime::MealibRuntime rt(testConfig());
    Session s(rt);
    SessionBinding bound = s.bind();
    EXPECT_EQ(&dispatch::Dispatcher::global(), before);
}

// --- ledger attribution ------------------------------------------------

TEST(SessionLedger, SingleSessionMirrorsAccountingExactly)
{
    runtime::MealibRuntime rt(testConfig());
    Session s(rt);
    {
        SessionBinding bound = s.bind();
        apps::CgOptions opts;
        opts.exclusive = false;
        mkl::CsrMatrix a = apps::cgTestMatrix(400, 9);
        std::vector<float> b(400, 1.0f);
        apps::solveCgMealib(a, b, rt, opts);
    }
    const Cost led = s.ledger().total();
    const Cost agg = rt.accounting().total();
    // One session did everything: its ledger IS the aggregate.
    EXPECT_EQ(led.seconds, agg.seconds);
    EXPECT_EQ(led.joules, agg.joules);
    EXPECT_GT(led.seconds, 0.0);
}

TEST(SessionLedger, NSessionLedgersSumToAggregate)
{
    constexpr unsigned kClients = 4;
    runtime::MealibRuntime rt(testConfig());
    std::vector<std::unique_ptr<Session>> sessions;
    for (unsigned i = 0; i < kClients; ++i)
        sessions.push_back(std::make_unique<Session>(rt));
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            SessionBinding bound = sessions[i]->bind();
            apps::CgOptions opts;
            opts.exclusive = false;
            mkl::CsrMatrix a = apps::cgTestMatrix(300, i + 1);
            std::vector<float> b(300, 1.0f);
            apps::solveCgMealib(a, b, rt, opts);
        });
    for (auto &t : threads)
        t.join();
    rt.waitAll();
    Cost sum;
    for (auto &s : sessions)
        sum += s->ledger().total();
    const Cost agg = rt.accounting().total();
    EXPECT_GT(agg.seconds, 0.0);
    EXPECT_NEAR(sum.seconds, agg.seconds,
                1e-9 * std::abs(agg.seconds));
    EXPECT_NEAR(sum.joules, agg.joules, 1e-9 * std::abs(agg.joules));
}

// --- concurrency torture -----------------------------------------------

std::vector<std::complex<float>>
soloStap()
{
    runtime::MealibRuntime rt(testConfig());
    Session s(rt);
    SessionBinding bound = s.bind();
    return apps::runStapMealib(apps::StapParams::smallSet(), rt,
                               /*exclusive=*/false)
        .prods;
}

TEST(SessionTorture, NSessionsMatchSoloBitForBit)
{
    constexpr unsigned kClients = 4;
    const std::vector<std::complex<float>> solo = soloStap();
    runtime::MealibRuntime rt(testConfig());
    std::vector<std::unique_ptr<Session>> sessions;
    for (unsigned i = 0; i < kClients; ++i)
        sessions.push_back(std::make_unique<Session>(rt));
    std::vector<std::vector<std::complex<float>>> out(kClients);
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            SessionBinding bound = sessions[i]->bind();
            out[i] = apps::runStapMealib(apps::StapParams::smallSet(),
                                         rt, /*exclusive=*/false)
                         .prods;
        });
    for (auto &t : threads)
        t.join();
    for (unsigned i = 0; i < kClients; ++i) {
        ASSERT_EQ(out[i].size(), solo.size()) << "client " << i;
        EXPECT_EQ(std::memcmp(out[i].data(), solo.data(),
                              solo.size() * sizeof(solo[0])),
                  0)
            << "client " << i;
    }
}

TEST(SessionTorture, NThreadsOneSessionMatchSolo)
{
    constexpr unsigned kThreads = 4;
    const std::vector<std::complex<float>> solo = soloStap();
    runtime::MealibRuntime rt(testConfig());
    Session s(rt);
    std::vector<std::vector<std::complex<float>>> out(kThreads);
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kThreads; ++i)
        threads.emplace_back([&, i] {
            // One session bound on several threads at once: its
            // dispatcher, window and ledger are internally locked.
            SessionBinding bound = s.bind();
            out[i] = apps::runStapMealib(apps::StapParams::smallSet(),
                                         rt, /*exclusive=*/false)
                         .prods;
        });
    for (auto &t : threads)
        t.join();
    for (unsigned i = 0; i < kThreads; ++i)
        EXPECT_EQ(std::memcmp(out[i].data(), solo.data(),
                              solo.size() * sizeof(solo[0])),
                  0)
            << "thread " << i;
    // Everything landed in the one session: exact mirror still holds.
    const Cost led = s.ledger().total();
    const Cost agg = rt.accounting().total();
    EXPECT_NEAR(led.seconds, agg.seconds,
                1e-9 * std::abs(agg.seconds));
}

TEST(SessionTorture, DeterministicReductionsUnderContention)
{
    // sdot reduces through the fixed-chunk deterministic tree; its
    // result must be bit-identical no matter how many other client
    // threads hammer the kernel engine at the same time.
    constexpr int kN = 1 << 16;
    std::vector<float> x(kN), y(kN);
    for (int i = 0; i < kN; ++i) {
        x[static_cast<std::size_t>(i)] =
            std::sin(0.01 * static_cast<double>(i));
        y[static_cast<std::size_t>(i)] =
            std::cos(0.013 * static_cast<double>(i));
    }
    const float solo = cblas_sdot(kN, x.data(), 1, y.data(), 1);
    constexpr unsigned kThreads = 8;
    std::vector<float> got(kThreads, 0.0f);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            float acc = solo;
            for (int rep = 0; rep < 16; ++rep) {
                const float v =
                    cblas_sdot(kN, x.data(), 1, y.data(), 1);
                acc = (v == acc) ? v : std::nanf("");
            }
            got[t] = acc;
        });
    for (auto &th : threads)
        th.join();
    for (unsigned t = 0; t < kThreads; ++t) {
        ASSERT_FALSE(std::isnan(got[t])) << "thread " << t;
        EXPECT_EQ(std::memcmp(&got[t], &solo, sizeof(float)), 0)
            << "thread " << t;
    }
}

TEST(SessionTorture, MixedAppsAcrossSessions)
{
    // STAP, SAR and CG side by side on one runtime: every client's
    // output matches its solo oracle.
    runtime::RuntimeConfig cfg = testConfig();
    std::vector<std::complex<float>> stap_solo = soloStap();
    std::vector<mkl::cfloat> sar_solo;
    std::vector<float> cg_solo;
    {
        runtime::MealibRuntime solo(cfg);
        Session s(solo);
        SessionBinding bound = s.bind();
        sar_solo = apps::runSarChain(64, true, solo, 7).image;
        apps::CgOptions opts;
        opts.exclusive = false;
        mkl::CsrMatrix a = apps::cgTestMatrix(500, 2);
        std::vector<float> b(500, 1.0f);
        cg_solo = apps::solveCgMealib(a, b, solo, opts).x;
    }
    runtime::MealibRuntime rt(cfg);
    Session s0(rt), s1(rt), s2(rt);
    std::vector<std::complex<float>> stap_out;
    std::vector<mkl::cfloat> sar_out;
    std::vector<float> cg_out;
    std::thread t0([&] {
        SessionBinding bound = s0.bind();
        stap_out = apps::runStapMealib(apps::StapParams::smallSet(),
                                       rt, /*exclusive=*/false)
                       .prods;
    });
    std::thread t1([&] {
        SessionBinding bound = s1.bind();
        sar_out = apps::runSarChain(64, true, rt, 7).image;
    });
    std::thread t2([&] {
        SessionBinding bound = s2.bind();
        apps::CgOptions opts;
        opts.exclusive = false;
        mkl::CsrMatrix a = apps::cgTestMatrix(500, 2);
        std::vector<float> b(500, 1.0f);
        cg_out = apps::solveCgMealib(a, b, rt, opts).x;
    });
    t0.join();
    t1.join();
    t2.join();
    EXPECT_EQ(std::memcmp(stap_out.data(), stap_solo.data(),
                          stap_solo.size() * sizeof(stap_solo[0])),
              0);
    EXPECT_EQ(std::memcmp(sar_out.data(), sar_solo.data(),
                          sar_solo.size() * sizeof(sar_solo[0])),
              0);
    EXPECT_EQ(std::memcmp(cg_out.data(), cg_solo.data(),
                          cg_solo.size() * sizeof(float)),
              0);
}

} // namespace
} // namespace mealib
