// Tests for the platform-comparison layer: Table 2 workloads, Fig. 9
// performance ordering and Fig. 10 energy-efficiency ordering.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hwmodel/profile.hh"
#include "mealib/platform.hh"
#include "runtime/runtime.hh"

namespace mealib::eval {
namespace {

using accel::AccelKind;

constexpr AccelKind kAllKinds[] = {
    AccelKind::AXPY, AccelKind::DOT,   AccelKind::GEMV, AccelKind::SPMV,
    AccelKind::RESMP, AccelKind::FFT, AccelKind::RESHP,
};

// The paper's Table 2 sizes are ~1 GiB; the models are analytic in
// size, so a 1/16 scale keeps ratios stable and tests fast.
constexpr double kScale = 1.0 / 16.0;

double
speedup(Platform p, AccelKind k)
{
    Workload w = table2Workload(k, kScale);
    OpResult base = evaluateOp(Platform::HaswellMkl, w);
    OpResult r = evaluateOp(p, w);
    return r.perf() / base.perf();
}

double
eeGain(Platform p, AccelKind k)
{
    Workload w = table2Workload(k, kScale);
    OpResult base = evaluateOp(Platform::HaswellMkl, w);
    OpResult r = evaluateOp(p, w);
    return r.perfPerWatt() / base.perfPerWatt();
}

TEST(Workloads, Table2SizesAtFullScale)
{
    EXPECT_EQ(table2Workload(AccelKind::AXPY, 1.0).call.n,
              256u << 20); // 256M elements
    Workload fft = table2Workload(AccelKind::FFT, 1.0);
    EXPECT_EQ(fft.call.n, 8192u);
    EXPECT_EQ(fft.call.k, 8192u);
    Workload spmv = table2Workload(AccelKind::SPMV, 1.0);
    EXPECT_EQ(spmv.call.m, 1u << 20);
    EXPECT_NEAR(static_cast<double>(spmv.call.k), 13.8e6, 0.3e6);
    Workload rh = table2Workload(AccelKind::RESHP, 1.0);
    EXPECT_EQ(rh.call.m, 16384u);
}

TEST(Workloads, BadScaleIsFatal)
{
    EXPECT_THROW(table2Workload(AccelKind::AXPY, 0.0), FatalError);
    EXPECT_THROW(table2Workload(AccelKind::AXPY, 2.0), FatalError);
}

TEST(Fig9, MealibBeatsHaswellOnEveryOp)
{
    for (AccelKind k : kAllKinds)
        EXPECT_GT(speedup(Platform::MeaLib, k), 5.0)
            << accel::name(k);
}

TEST(Fig9, PlatformOrderingHoldsPerOp)
{
    // Fig. 9: MEALib > MSAS > PSAS on every operation.
    for (AccelKind k : kAllKinds) {
        double psas = speedup(Platform::Psas, k);
        double msas = speedup(Platform::Msas, k);
        double mea = speedup(Platform::MeaLib, k);
        EXPECT_GT(msas, psas) << accel::name(k);
        EXPECT_GT(mea, msas) << accel::name(k);
    }
}

TEST(Fig9, AverageGainsMatchPaperBands)
{
    // Paper Sec. 5.1: MEALib 38x, PSAS 2.51x, MSAS 10.32x on average.
    double mea = 0, psas = 0, msas = 0;
    for (AccelKind k : kAllKinds) {
        mea += speedup(Platform::MeaLib, k);
        psas += speedup(Platform::Psas, k);
        msas += speedup(Platform::Msas, k);
    }
    mea /= 7;
    psas /= 7;
    msas /= 7;
    EXPECT_GT(mea, 25.0);
    EXPECT_LT(mea, 55.0);
    EXPECT_GT(psas, 1.5);
    EXPECT_LT(psas, 4.5);
    EXPECT_GT(msas, 6.0);
    EXPECT_LT(msas, 16.0);
}

TEST(Fig9, ExtremesMatchPaper)
{
    // Fig. 9: RESHP shows the largest MEALib gain (88x), SPMV the
    // smallest (11x).
    double worst = 1e9, best = 0;
    AccelKind worst_k{}, best_k{};
    for (AccelKind k : kAllKinds) {
        double s = speedup(Platform::MeaLib, k);
        if (s < worst) {
            worst = s;
            worst_k = k;
        }
        if (s > best) {
            best = s;
            best_k = k;
        }
    }
    EXPECT_EQ(best_k, AccelKind::RESHP);
    EXPECT_EQ(worst_k, AccelKind::SPMV);
    EXPECT_GT(best, 60.0);
    EXPECT_LT(worst, 16.0);
}

TEST(Fig9, XeonPhiBarelyBeatsHaswell)
{
    // Sec. 5.1: Phi's best is AXPY at 2.23x; RESHP collapses to 2.4%.
    double axpy = speedup(Platform::XeonPhiMkl, AccelKind::AXPY);
    EXPECT_GT(axpy, 1.5);
    EXPECT_LT(axpy, 3.0);
    double reshp = speedup(Platform::XeonPhiMkl, AccelKind::RESHP);
    EXPECT_LT(reshp, 0.1);
    for (AccelKind k : kAllKinds)
        EXPECT_LT(speedup(Platform::XeonPhiMkl, k), 3.0)
            << accel::name(k);
}

TEST(Fig10, EnergyGainsExceedPerformanceGains)
{
    // Sec. 5.1: MEALib's EE gains (75x avg) are larger than its
    // performance gains (38x avg) because it draws far less power.
    double perf = 0, ee = 0;
    for (AccelKind k : kAllKinds) {
        perf += speedup(Platform::MeaLib, k);
        ee += eeGain(Platform::MeaLib, k);
    }
    EXPECT_GT(ee, perf);
    EXPECT_GT(ee / 7, 45.0);
    EXPECT_LT(ee / 7, 110.0);
}

TEST(Fig10, XeonPhiLessEfficientThanHaswell)
{
    for (AccelKind k : kAllKinds)
        EXPECT_LT(eeGain(Platform::XeonPhiMkl, k), 1.0)
            << accel::name(k);
}

TEST(Fig10, MealibPowerFarBelowHaswell)
{
    // Sec. 5.1: FFT draws 19 W on MEALib vs 48 W on Haswell and 130 W
    // on the Phi.
    Workload w = table2Workload(AccelKind::FFT, kScale);
    double mea_w = evaluateOp(Platform::MeaLib, w).cost.watts();
    double hw_w = evaluateOp(Platform::HaswellMkl, w).cost.watts();
    double phi_w = evaluateOp(Platform::XeonPhiMkl, w).cost.watts();
    EXPECT_GT(mea_w, 12.0);
    EXPECT_LT(mea_w, 26.0);
    EXPECT_GT(hw_w, 30.0);
    EXPECT_LT(hw_w, 60.0);
    EXPECT_GT(phi_w, 95.0);
    EXPECT_LT(phi_w, 140.0);
}

TEST(Eval, ScaleInvarianceOfRatios)
{
    // The MEALib/Haswell ratio should be stable across problem scales
    // (this is what justifies the scaled-down default bench sizes).
    for (AccelKind k : {AccelKind::AXPY, AccelKind::FFT}) {
        Workload w1 = table2Workload(k, 1.0 / 32.0);
        Workload w2 = table2Workload(k, 1.0 / 8.0);
        double s1 = evaluateOp(Platform::MeaLib, w1).perf() /
                    evaluateOp(Platform::HaswellMkl, w1).perf();
        double s2 = evaluateOp(Platform::MeaLib, w2).perf() /
                    evaluateOp(Platform::HaswellMkl, w2).perf();
        EXPECT_NEAR(s1 / s2, 1.0, 0.25) << accel::name(k);
    }
}

TEST(Eval, HostProfileRejectsAccelPlatforms)
{
    Workload w = table2Workload(AccelKind::AXPY, kScale);
    EXPECT_THROW(hostProfile(Platform::MeaLib, w.call, w.loop),
                 FatalError);
}

TEST(Eval, ShardedEvaluationOverlapsAcrossStacks)
{
    // Fanning one looped workload out over 4 stacks must beat the
    // single-stack makespan, while energy (which does not overlap
    // away) stays in the same ballpark. Sharding splits the outermost
    // LOOP dimension, so express the Table-2 AXPY as fine loop slices:
    // each shard pays one flush over a single slice's footprint, which
    // keeps the serialized host-track submit cost below the per-shard
    // accelerator span (coarse slices make sharding counterproductive).
    Workload w = table2Workload(AccelKind::AXPY, kScale);
    w.call.n /= 1024;
    w.loop.dims[0] = 1024;

    runtime::RuntimeConfig one;
    one.functional = false;
    runtime::MealibRuntime rt1(one);
    OpResult r1;
    ASSERT_TRUE(evaluateOpSharded(w, rt1, &r1).ok());

    runtime::RuntimeConfig four = one;
    four.numStacks = 4;
    runtime::MealibRuntime rt4(four);
    OpResult r4;
    ASSERT_TRUE(evaluateOpSharded(w, rt4, &r4).ok());

    EXPECT_GT(r1.cost.seconds, 0.0);
    EXPECT_LT(r4.cost.seconds, r1.cost.seconds);
    EXPECT_GT(r4.cost.joules, 0.5 * r1.cost.joules);
    EXPECT_LT(r4.cost.joules, 2.0 * r1.cost.joules);
}

TEST(Eval, ShardedEvaluationRequiresCostOnlyRuntime)
{
    // A functional runtime must be rejected with a recoverable error,
    // not a fatal: callers probing configurations can fall back.
    Workload w = table2Workload(AccelKind::AXPY, kScale);
    runtime::MealibRuntime rt{runtime::RuntimeConfig{}}; // functional
    OpResult r;
    r.flops = -1.0;
    Status st = evaluateOpSharded(w, rt, &r);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(r.flops, -1.0) << "result must be untouched on error";
}

TEST(MachineSwitch, RuntimeDefaultsFollowActiveProfile)
{
    runtime::RuntimeConfig hw_cfg;
    EXPECT_EQ(hw_cfg.hostCpu.name,
              hwmodel::profile("haswell4770k").cpu.name);
    hwmodel::setActiveMachine("phi").orThrow();
    runtime::RuntimeConfig phi_cfg;
    hwmodel::setActiveMachine("haswell4770k").orThrow();
    EXPECT_EQ(phi_cfg.hostCpu.name,
              hwmodel::profile("xeonphi5110p").cpu.name);
    EXPECT_NE(hw_cfg.hostCpu.idleW, phi_cfg.hostCpu.idleW);
    // The 3D stack and mesh are machine-independent.
    EXPECT_EQ(hw_cfg.dram.name, phi_cfg.dram.name);
}

TEST(MachineSwitch, PhiChangesModeledCostNotFunctionalOutput)
{
    // The tentpole invariant of MEALIB_MACHINE / --machine: selecting
    // the Phi profile re-prices the modeled time/energy, but the
    // functional pipeline's numerical output is bit-for-bit identical.
    auto run = [](std::vector<float> *out, Cost *modeled) {
        runtime::RuntimeConfig cfg;
        cfg.backingBytes = 64_MiB;
        runtime::MealibRuntime rt(cfg);
        const std::int64_t n = 4096;
        auto *x = static_cast<float *>(rt.memAlloc(n * 4));
        auto *y = static_cast<float *>(rt.memAlloc(n * 4));
        for (std::int64_t i = 0; i < n; ++i) {
            x[i] = 0.25f * static_cast<float>(i % 1000) - 100.0f;
            y[i] = 1.0f / (1.0f + static_cast<float>(i % 37));
        }
        accel::OpCall c;
        c.kind = AccelKind::AXPY;
        c.n = n;
        c.alpha = 1.5f;
        c.beta = 1.0f;
        c.in0.base = rt.physOf(x);
        c.out.base = rt.physOf(y);
        accel::DescriptorProgram prog;
        prog.addComp(c);
        prog.addPassEnd();
        runtime::AccPlanHandle h = rt.accPlan(prog);
        rt.accExecute(h);
        rt.accDestroy(h);
        // A host-side stage, priced by the active machine's CPU model.
        host::KernelProfile prof;
        prof.name = "stage";
        prof.flops = 1e9;
        prof.bytesRead = 64.0 * 1024 * 1024;
        prof.bytesWritten = 16.0 * 1024 * 1024;
        rt.runOnHost(prof);
        out->assign(y, y + n);
        *modeled = rt.accounting().total();
    };

    std::vector<float> hw_out, phi_out;
    Cost hw_cost, phi_cost;
    run(&hw_out, &hw_cost);
    hwmodel::setActiveMachine("phi").orThrow();
    run(&phi_out, &phi_cost);
    hwmodel::setActiveMachine("haswell4770k").orThrow();

    ASSERT_EQ(hw_out.size(), phi_out.size());
    for (std::size_t i = 0; i < hw_out.size(); ++i)
        ASSERT_EQ(std::memcmp(&hw_out[i], &phi_out[i], 4), 0)
            << "functional output diverged at " << i;
    EXPECT_NE(hw_cost.seconds, phi_cost.seconds);
    EXPECT_NE(hw_cost.joules, phi_cost.joules);
}

} // namespace
} // namespace mealib::eval
