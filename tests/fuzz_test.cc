// Differential property tests: randomly generated descriptor programs
// executed through the full TDL -> encode -> decode -> accelerator-layer
// path must match direct MiniMKL execution, for every accelerator kind
// and random shapes/strides/loop structures.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "minimkl/blas1.hh"
#include "minimkl/blas2.hh"
#include "minimkl/fft.hh"
#include "minimkl/resample.hh"
#include "minimkl/transpose.hh"
#include "runtime/runtime.hh"
#include "tdl/params.hh"

namespace mealib {
namespace {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::LoopSpec;
using accel::OpCall;
using mkl::cfloat;

class DescriptorFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    void
    SetUp() override
    {
        runtime::RuntimeConfig cfg;
        cfg.backingBytes = 64_MiB;
        rt_ = std::make_unique<runtime::MealibRuntime>(cfg);
        rng_ = std::make_unique<Rng>(GetParam());
    }

    float *
    randomBuf(std::uint64_t elems)
    {
        auto *p = static_cast<float *>(rt_->memAlloc(elems * 4));
        for (std::uint64_t i = 0; i < elems; ++i)
            p[i] = rng_->uniform(-1.0f, 1.0f);
        bufs_.push_back(p);
        return p;
    }

    cfloat *
    randomCBuf(std::uint64_t elems)
    {
        auto *p = static_cast<cfloat *>(rt_->memAlloc(elems * 8));
        for (std::uint64_t i = 0; i < elems; ++i)
            p[i] = {rng_->uniform(-1.0f, 1.0f),
                    rng_->uniform(-1.0f, 1.0f)};
        bufs_.push_back(p);
        return p;
    }

    /** Round-trip the program through the binary descriptor format and
     * execute it on the layer. */
    void
    execute(const DescriptorProgram &prog)
    {
        auto image = accel::encode(prog);
        DescriptorProgram back = accel::decode(image.data(),
                                               image.size());
        auto h = rt_->accPlan(back);
        rt_->accExecute(h);
        rt_->accDestroy(h);
    }

    void
    TearDown() override
    {
        for (void *p : bufs_)
            rt_->memFree(p);
    }

    std::unique_ptr<runtime::MealibRuntime> rt_;
    std::unique_ptr<Rng> rng_;
    std::vector<void *> bufs_;
};

TEST_P(DescriptorFuzz, LoopedAxpbyMatchesOracle)
{
    const std::uint64_t n = 64 + rng_->below(2000);
    const std::uint32_t iters =
        static_cast<std::uint32_t>(1 + rng_->below(7));
    float alpha = rng_->uniform(-2.0f, 2.0f);
    float beta = rng_->uniform(-2.0f, 2.0f);

    float *x = randomBuf(n * iters);
    float *y = randomBuf(n * iters);
    std::vector<float> y_ref(y, y + n * iters);

    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = n;
    c.alpha = alpha;
    c.beta = beta;
    c.in0 = {rt_->physOf(x), {static_cast<std::int64_t>(n * 4), 0, 0, 0}};
    c.out = {rt_->physOf(y), {static_cast<std::int64_t>(n * 4), 0, 0, 0}};
    LoopSpec loop;
    loop.dims = {iters, 1, 1, 1};

    DescriptorProgram prog;
    prog.addLoop(loop, 2);
    prog.addComp(c);
    prog.addPassEnd();
    execute(prog);

    for (std::uint32_t it = 0; it < iters; ++it)
        mkl::saxpby(static_cast<std::int64_t>(n), alpha, x + it * n, 1,
                    beta, y_ref.data() + it * n, 1);
    for (std::uint64_t i = 0; i < n * iters; ++i)
        ASSERT_EQ(y[i], y_ref[i]) << "i=" << i;
}

TEST_P(DescriptorFuzz, StridedDotMatchesOracle)
{
    const std::uint64_t n = 16 + rng_->below(300);
    const std::int64_t inc = 1 + static_cast<std::int64_t>(
                                     rng_->below(3));
    float *x = randomBuf(n * static_cast<std::uint64_t>(inc));
    float *y = randomBuf(n * static_cast<std::uint64_t>(inc));
    float *out = randomBuf(1);

    OpCall c;
    c.kind = AccelKind::DOT;
    c.n = n;
    c.inc0 = inc;
    c.inc1 = inc;
    c.in0.base = rt_->physOf(x);
    c.in1.base = rt_->physOf(y);
    c.out.base = rt_->physOf(out);
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    execute(prog);

    float ref = mkl::sdot(static_cast<std::int64_t>(n), x, inc, y, inc);
    EXPECT_EQ(*out, ref);
}

TEST_P(DescriptorFuzz, GemvMatchesOracle)
{
    const std::uint64_t m = 8 + rng_->below(60);
    const std::uint64_t n = 8 + rng_->below(60);
    float alpha = rng_->uniform(-1.0f, 1.0f);
    float beta = rng_->uniform(-1.0f, 1.0f);
    float *a = randomBuf(m * n);
    float *x = randomBuf(n);
    float *y = randomBuf(m);
    std::vector<float> y_ref(y, y + m);

    OpCall c;
    c.kind = AccelKind::GEMV;
    c.m = m;
    c.n = n;
    c.alpha = alpha;
    c.beta = beta;
    c.in0.base = rt_->physOf(a);
    c.in1.base = rt_->physOf(x);
    c.out.base = rt_->physOf(y);
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    execute(prog);

    mkl::sgemv(mkl::Order::RowMajor, mkl::Transpose::NoTrans,
               static_cast<std::int64_t>(m), static_cast<std::int64_t>(n),
               alpha, a, static_cast<std::int64_t>(n), x, 1, beta,
               y_ref.data(), 1);
    for (std::uint64_t i = 0; i < m; ++i)
        ASSERT_EQ(y[i], y_ref[i]);
}

TEST_P(DescriptorFuzz, BatchedFftMatchesOracle)
{
    const std::uint64_t lg = 3 + rng_->below(6); // 8 .. 256 points
    const std::uint64_t n = 1ull << lg;
    const std::uint64_t batch = 1 + rng_->below(5);
    bool inverse = rng_->below(2) == 1;
    cfloat *in = randomCBuf(n * batch);
    cfloat *out = randomCBuf(n * batch);

    OpCall c;
    c.kind = AccelKind::FFT;
    c.n = n;
    c.m = batch;
    c.complexData = true;
    c.fftDir = inverse ? 1 : -1;
    c.in0.base = rt_->physOf(in);
    c.out.base = rt_->physOf(out);
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    execute(prog);

    std::vector<cfloat> ref(n * batch);
    mkl::FftPlan::dft1dBatched(
        static_cast<std::int64_t>(n), static_cast<std::int64_t>(batch),
        static_cast<std::int64_t>(n),
        inverse ? mkl::FftDirection::Inverse
                : mkl::FftDirection::Forward)
        .execute(in, ref.data());
    for (std::uint64_t i = 0; i < n * batch; ++i)
        ASSERT_EQ(out[i], ref[i]);
}

TEST_P(DescriptorFuzz, ReshapeMatchesOracle)
{
    const std::uint64_t rows = 4 + rng_->below(80);
    const std::uint64_t cols = 4 + rng_->below(80);
    float *in = randomBuf(rows * cols);
    float *out = randomBuf(rows * cols);

    OpCall c;
    c.kind = AccelKind::RESHP;
    c.m = rows;
    c.n = cols;
    c.in0.base = rt_->physOf(in);
    c.out.base = rt_->physOf(out);
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    execute(prog);

    std::vector<float> ref(rows * cols);
    mkl::somatcopy(mkl::Order::RowMajor, mkl::Transpose::Trans,
                   static_cast<std::int64_t>(rows),
                   static_cast<std::int64_t>(cols), 1.0f, in,
                   static_cast<std::int64_t>(cols), ref.data(),
                   static_cast<std::int64_t>(rows));
    for (std::uint64_t i = 0; i < rows * cols; ++i)
        ASSERT_EQ(out[i], ref[i]);
}

TEST_P(DescriptorFuzz, ResampleMatchesOracle)
{
    const std::uint64_t n = 32 + rng_->below(1000);
    const std::uint64_t m = 16 + rng_->below(2000);
    const std::uint32_t kind = static_cast<std::uint32_t>(
        rng_->below(3));
    float *in = randomBuf(n);
    float *out = randomBuf(m);

    OpCall c;
    c.kind = AccelKind::RESMP;
    c.n = n;
    c.m = m;
    c.resampleKind = kind;
    c.in0.base = rt_->physOf(in);
    c.out.base = rt_->physOf(out);
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    execute(prog);

    std::vector<float> ref(m);
    mkl::resample1d(in, static_cast<std::int64_t>(n), ref.data(),
                    static_cast<std::int64_t>(m),
                    static_cast<mkl::InterpKind>(kind));
    for (std::uint64_t i = 0; i < m; ++i)
        ASSERT_EQ(out[i], ref[i]);
}

TEST_P(DescriptorFuzz, ParamFileRoundTripPreservesSemantics)
{
    // OpCall -> .para text -> OpCall -> execute must equal direct
    // execution (exercises the TDL parameter serialization).
    const std::uint64_t n = 64 + rng_->below(500);
    float *x = randomBuf(n);
    float *y = randomBuf(n);
    std::vector<float> y0(y, y + n);

    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = n;
    c.alpha = rng_->uniform(-2.0f, 2.0f);
    c.beta = rng_->uniform(-2.0f, 2.0f);
    c.in0.base = rt_->physOf(x);
    c.out.base = rt_->physOf(y);

    OpCall back = tdl::parseParams(c.kind, tdl::formatParams(c));
    EXPECT_EQ(back.n, c.n);
    EXPECT_EQ(back.in0.base, c.in0.base);

    DescriptorProgram prog;
    prog.addComp(back);
    prog.addPassEnd();
    execute(prog);

    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(y[i], c.alpha * x[i] + c.beta * y0[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptorFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

} // namespace
} // namespace mealib
