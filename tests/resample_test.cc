// Tests for the 1D resampler (RESMP).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "minimkl/resample.hh"

namespace mealib::mkl {
namespace {

class AllKinds : public ::testing::TestWithParam<InterpKind>
{};

TEST_P(AllKinds, ReproducesConstantSignal)
{
    std::vector<float> in(64, 3.25f), out(200);
    resample1d(in.data(), 64, out.data(), 200, GetParam());
    for (float v : out)
        EXPECT_NEAR(v, 3.25f, 1e-4f);
}

TEST_P(AllKinds, IdentityWhenSameLength)
{
    Rng rng(1);
    std::vector<float> in(50), out(50);
    for (auto &v : in)
        v = rng.uniform(-1.0f, 1.0f);
    resample1d(in.data(), 50, out.data(), 50, GetParam());
    // Output sites coincide with input samples; linear and Catmull-Rom
    // interpolate exactly at knots, sinc within numerical tolerance.
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_NEAR(out[i], in[i], 2e-3f);
}

TEST_P(AllKinds, EndpointsPreserved)
{
    std::vector<float> in{2.0f, -1.0f, 4.0f, 0.5f};
    std::vector<float> out(17);
    resample1d(in.data(), 4, out.data(), 17, GetParam());
    EXPECT_NEAR(out.front(), in.front(), 2e-3f);
    EXPECT_NEAR(out.back(), in.back(), 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllKinds,
                         ::testing::Values(InterpKind::Linear,
                                           InterpKind::CatmullRom,
                                           InterpKind::Sinc8));

TEST(Linear, ExactOnLinearRamp)
{
    std::vector<float> in(16);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<float>(i);
    std::vector<float> out(31); // midpoints included
    resample1d(in.data(), 16, out.data(), 31, InterpKind::Linear);
    for (std::size_t j = 0; j < out.size(); ++j)
        EXPECT_NEAR(out[j], static_cast<float>(j) * 0.5f, 1e-5f);
}

TEST(CatmullRom, ExactOnLinearRamp)
{
    // Cubic interpolation reproduces degree-1 polynomials exactly.
    std::vector<float> in(16);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = 2.0f * static_cast<float>(i) - 5.0f;
    std::vector<float> out(46);
    resample1d(in.data(), 16, out.data(), 46, InterpKind::CatmullRom);
    for (std::size_t j = 1; j + 1 < out.size(); ++j) {
        double x = static_cast<double>(j) * 15.0 / 45.0;
        if (x < 1.0 || x > 14.0)
            continue; // edge clamping distorts the outermost segments
        EXPECT_NEAR(out[j], 2.0f * static_cast<float>(x) - 5.0f, 1e-4f);
    }
}

TEST(Sinc8, ReconstructsBandlimitedTone)
{
    // A slow tone is far below Nyquist; windowed-sinc upsampling should
    // track it closely away from the edges.
    const std::int64_t n = 128, m = 512;
    std::vector<float> in(n), out(m);
    for (std::int64_t i = 0; i < n; ++i)
        in[static_cast<std::size_t>(i)] = std::sin(
            2.0 * M_PI * 4.0 * static_cast<double>(i) / n);
    resample1d(in.data(), n, out.data(), m, InterpKind::Sinc8);
    double step = static_cast<double>(n - 1) / static_cast<double>(m - 1);
    for (std::int64_t j = 0; j < m; ++j) {
        double x = static_cast<double>(j) * step;
        if (x < 8.0 || x > n - 9.0)
            continue;
        double expect = std::sin(2.0 * M_PI * 4.0 * x / n);
        EXPECT_NEAR(out[static_cast<std::size_t>(j)], expect, 5e-3)
            << "site " << x;
    }
}

TEST(Sinc8, BeatsLinearOnCurvedSignal)
{
    const std::int64_t n = 64, m = 256;
    std::vector<float> in(n), lin(m), sinc(m);
    for (std::int64_t i = 0; i < n; ++i)
        in[static_cast<std::size_t>(i)] = std::sin(
            2.0 * M_PI * 6.0 * static_cast<double>(i) / n);
    resample1d(in.data(), n, lin.data(), m, InterpKind::Linear);
    resample1d(in.data(), n, sinc.data(), m, InterpKind::Sinc8);
    double step = static_cast<double>(n - 1) / static_cast<double>(m - 1);
    double err_lin = 0.0, err_sinc = 0.0;
    for (std::int64_t j = 0; j < m; ++j) {
        double x = static_cast<double>(j) * step;
        if (x < 8.0 || x > n - 9.0)
            continue;
        double expect = std::sin(2.0 * M_PI * 6.0 * x / n);
        err_lin += std::fabs(lin[static_cast<std::size_t>(j)] - expect);
        err_sinc += std::fabs(sinc[static_cast<std::size_t>(j)] - expect);
    }
    EXPECT_LT(err_sinc, err_lin * 0.25);
}

TEST(Complex, ResamplesRealAndImagIndependently)
{
    const std::int64_t n = 32, m = 64;
    std::vector<cfloat> in(n);
    std::vector<float> re(n), im(n);
    Rng rng(4);
    for (std::int64_t i = 0; i < n; ++i) {
        re[static_cast<std::size_t>(i)] = rng.uniform(-1.0f, 1.0f);
        im[static_cast<std::size_t>(i)] = rng.uniform(-1.0f, 1.0f);
        in[static_cast<std::size_t>(i)] = {re[static_cast<std::size_t>(i)],
                                           im[static_cast<std::size_t>(i)]};
    }
    std::vector<cfloat> out(m);
    std::vector<float> re_out(m), im_out(m);
    resample1dc(in.data(), n, out.data(), m, InterpKind::Linear);
    resample1d(re.data(), n, re_out.data(), m, InterpKind::Linear);
    resample1d(im.data(), n, im_out.data(), m, InterpKind::Linear);
    for (std::int64_t j = 0; j < m; ++j) {
        auto idx = static_cast<std::size_t>(j);
        EXPECT_FLOAT_EQ(out[idx].real(), re_out[idx]);
        EXPECT_FLOAT_EQ(out[idx].imag(), im_out[idx]);
    }
}

TEST(InterpolateAt, ArbitrarySites)
{
    std::vector<float> in{0.0f, 1.0f, 4.0f, 9.0f};
    std::vector<double> sites{0.5, 1.5, 2.5};
    std::vector<float> out(3);
    interpolate1dAt(in.data(), 4, sites.data(), 3, out.data(),
                    InterpKind::Linear);
    EXPECT_FLOAT_EQ(out[0], 0.5f);
    EXPECT_FLOAT_EQ(out[1], 2.5f);
    EXPECT_FLOAT_EQ(out[2], 6.5f);
}

TEST(InterpolateAt, SitesOutsideGridClamp)
{
    std::vector<float> in{1.0f, 2.0f};
    std::vector<double> sites{-5.0, 10.0};
    std::vector<float> out(2);
    interpolate1dAt(in.data(), 2, sites.data(), 2, out.data(),
                    InterpKind::Linear);
    EXPECT_FLOAT_EQ(out[0], 1.0f);
    EXPECT_FLOAT_EQ(out[1], 2.0f);
}

TEST(Resample, SingleSampleBroadcasts)
{
    std::vector<float> in{7.0f};
    std::vector<float> out(5);
    resample1d(in.data(), 1, out.data(), 5, InterpKind::Linear);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 7.0f);
}

TEST(Resample, EmptyIsFatal)
{
    std::vector<float> out(1);
    EXPECT_THROW(resample1d(nullptr, 0, out.data(), 1,
                            InterpKind::Linear),
                 FatalError);
}

TEST(Resample, DownsamplePreservesMeanApproximately)
{
    Rng rng(6);
    const std::int64_t n = 1024, m = 128;
    std::vector<float> in(n), out(m);
    double mean_in = 0.0;
    for (auto &v : in) {
        v = rng.uniform(0.0f, 1.0f);
        mean_in += v;
    }
    mean_in /= static_cast<double>(n);
    resample1d(in.data(), n, out.data(), m, InterpKind::Linear);
    double mean_out = 0.0;
    for (float v : out)
        mean_out += v;
    mean_out /= static_cast<double>(m);
    EXPECT_NEAR(mean_out, mean_in, 0.05);
}

} // namespace
} // namespace mealib::mkl
