// Tests for the Task Description Language: lexing, parsing, parameter
// files, codegen to descriptors, and formatting round-trips.

#include <map>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "tdl/codegen.hh"
#include "tdl/lexer.hh"
#include "tdl/params.hh"
#include "tdl/parser.hh"

namespace mealib::tdl {
namespace {

const char *kStapTdl = R"(
# Listing-1 style program: data copy + FFT chained, then batched dots.
PASS(in=0x100000, out=0x500000) {
  COMP(acc=RESHP, params="reshape.para")
  COMP(acc=FFT, params="fft.para")
}
LOOP(dims="64x16x4x1") {
  PASS(in=0x900000, out=0xa00000) {
    COMP(acc=DOT, params="dot.para")
  }
}
)";

ParamResolver
stapResolver()
{
    static const std::map<std::string, std::string> files = {
        {"reshape.para",
         "m = 128\nn = 256\ncomplex = true\n"
         "in0 = 0x100000\nout = 0x300000\n"},
        {"fft.para",
         "n = 128\nm = 256\ncomplex = true\ndir = -1\n"
         "in0 = 0x300000\nout = 0x500000\n"},
        {"dot.para",
         "n = 32\ncomplex = true\nconj = true\n"
         "in0 = 0x900000\nin0.stride = 256, 0, 0, 0\n"
         "in1 = 0x980000\nin1.stride = 0, 1024, 64, 0\n"
         "out = 0xa00000\nout.stride = 8, 512, 32, 0\n"},
    };
    return [](const std::string &name) {
        auto it = files.find(name);
        fatalIf(it == files.end(), "missing param file ", name);
        return it->second;
    };
}

TEST(Lexer, TokenizesAllKinds)
{
    auto toks = lex("LOOP(count=128) { } # comment\n\"str\" 0x10 -3 2.5");
    ASSERT_GE(toks.size(), 11u);
    EXPECT_EQ(toks[0].kind, TokKind::Ident);
    EXPECT_EQ(toks[0].text, "LOOP");
    EXPECT_EQ(toks[1].kind, TokKind::LParen);
    EXPECT_EQ(toks[3].kind, TokKind::Equals);
    EXPECT_EQ(toks[4].kind, TokKind::Int);
    EXPECT_EQ(toks[4].intVal, 128);
    EXPECT_EQ(toks[8].kind, TokKind::String);
    EXPECT_EQ(toks[8].text, "str");
    EXPECT_EQ(toks[9].intVal, 16);
    EXPECT_EQ(toks[10].intVal, -3);
    EXPECT_DOUBLE_EQ(toks[11].floatVal, 2.5);
}

TEST(Lexer, TracksLineNumbers)
{
    auto toks = lex("a\nb\n  c");
    EXPECT_EQ(toks[0].line, 1u);
    EXPECT_EQ(toks[1].line, 2u);
    EXPECT_EQ(toks[2].line, 3u);
    EXPECT_EQ(toks[2].col, 3u);
}

TEST(Lexer, UnterminatedStringIsFatal)
{
    EXPECT_THROW(lex("\"oops"), FatalError);
}

TEST(Lexer, BadCharacterIsFatal)
{
    EXPECT_THROW(lex("@"), FatalError);
}

TEST(Parser, ParsesStapProgram)
{
    TdlProgram p = parse(kStapTdl);
    ASSERT_EQ(p.items.size(), 2u);
    EXPECT_FALSE(p.items[0].isLoop);
    EXPECT_EQ(p.items[0].pass.comps.size(), 2u);
    EXPECT_EQ(p.items[0].pass.comps[0].acc, "RESHP");
    EXPECT_EQ(p.items[0].pass.inAddr, 0x100000u);
    EXPECT_TRUE(p.items[1].isLoop);
    EXPECT_EQ(p.items[1].loop.loop.dims[0], 64u);
    EXPECT_EQ(p.items[1].loop.loop.dims[2], 4u);
    EXPECT_EQ(p.items[1].loop.loop.iterations(), 64u * 16 * 4);
}

TEST(Parser, CountAttrSetsFirstDim)
{
    TdlProgram p = parse(
        "LOOP(count=7) { PASS { COMP(acc=FFT, params=\"f\") } }");
    EXPECT_EQ(p.items[0].loop.loop.dims[0], 7u);
    EXPECT_EQ(p.items[0].loop.loop.iterations(), 7u);
}

TEST(Parser, RejectsEmptyProgram)
{
    EXPECT_THROW(parse(""), FatalError);
    EXPECT_THROW(parse("# only a comment\n"), FatalError);
}

TEST(Parser, RejectsCompOutsidePass)
{
    EXPECT_THROW(parse("COMP(acc=FFT, params=\"x\")"), FatalError);
}

TEST(Parser, RejectsEmptyPass)
{
    EXPECT_THROW(parse("PASS { }"), FatalError);
}

TEST(Parser, RejectsLoopWithoutCount)
{
    EXPECT_THROW(
        parse("LOOP() { PASS { COMP(acc=FFT, params=\"x\") } }"),
        FatalError);
}

TEST(Parser, RejectsTooManyDims)
{
    EXPECT_THROW(parse("LOOP(dims=\"2x2x2x2x2\") { PASS { "
                       "COMP(acc=FFT, params=\"x\") } }"),
                 FatalError);
}

TEST(Params, KindNamesResolve)
{
    EXPECT_EQ(kindFromName("FFT"), accel::AccelKind::FFT);
    EXPECT_EQ(kindFromName("fft"), accel::AccelKind::FFT);
    EXPECT_EQ(kindFromName("reshape"), accel::AccelKind::RESHP);
    EXPECT_THROW(kindFromName("GEMM"), FatalError);
}

TEST(Params, ParsesFullOpCall)
{
    std::string text =
        "n = 32\ncomplex = true\nconj = true\nalpha = 2.5\n"
        "in0 = 0x900000\nin0.stride = 256, 0, 0, 0\n"
        "out = 0xa00000\n";
    accel::OpCall c = parseParams(accel::AccelKind::DOT, text);
    EXPECT_EQ(c.n, 32u);
    EXPECT_TRUE(c.complexData);
    EXPECT_TRUE(c.conjugate);
    EXPECT_FLOAT_EQ(c.alpha, 2.5f);
    EXPECT_EQ(c.in0.base, 0x900000u);
    EXPECT_EQ(c.in0.stride[0], 256);
    EXPECT_EQ(c.out.base, 0xa00000u);
}

TEST(Params, UnknownKeyIsFatal)
{
    EXPECT_THROW(parseParams(accel::AccelKind::AXPY, "n = 4\nbogus = 1\n"),
                 FatalError);
}

TEST(Params, FftValidationRejectsNonPow2)
{
    EXPECT_THROW(
        parseParams(accel::AccelKind::FFT, "n = 100\ncomplex = true\n"),
        FatalError);
    EXPECT_THROW(parseParams(accel::AccelKind::FFT, "n = 128\n"),
                 FatalError); // missing complex
}

TEST(Params, FormatParseRoundTrip)
{
    accel::OpCall c;
    c.kind = accel::AccelKind::FFT;
    c.n = 256;
    c.m = 128;
    c.complexData = true;
    c.fftDir = 1;
    c.in0 = {0x1000, {2048, 0, 0, 0}};
    c.out = {0x2000, {2048, 0, 0, 0}};
    accel::OpCall d = parseParams(c.kind, formatParams(c));
    EXPECT_EQ(d.n, c.n);
    EXPECT_EQ(d.m, c.m);
    EXPECT_EQ(d.fftDir, c.fftDir);
    EXPECT_EQ(d.in0.base, c.in0.base);
    EXPECT_EQ(d.in0.stride, c.in0.stride);
}

TEST(Codegen, StapProgramBecomesDescriptor)
{
    accel::DescriptorProgram d = compileTdl(kStapTdl, stapResolver());
    // PASS(2 comps) + PASS_END + LOOP + COMP + PASS_END = 6 instrs.
    ASSERT_EQ(d.instrs.size(), 6u);
    EXPECT_EQ(d.instrs[0].type, accel::Instr::Type::Comp);
    EXPECT_EQ(d.instrs[0].call.kind, accel::AccelKind::RESHP);
    EXPECT_EQ(d.instrs[1].call.kind, accel::AccelKind::FFT);
    EXPECT_EQ(d.instrs[2].type, accel::Instr::Type::PassEnd);
    EXPECT_EQ(d.instrs[3].type, accel::Instr::Type::Loop);
    EXPECT_EQ(d.instrs[3].loop.iterations(), 64u * 16 * 4);
    EXPECT_EQ(d.instrs[4].call.kind, accel::AccelKind::DOT);
    // 2 chained comps once + 1 dot comp x 4096 iterations.
    EXPECT_EQ(d.expandedCompCount(), 2u + 64u * 16 * 4);
}

TEST(Codegen, MissingParamsFileIsFatal)
{
    EXPECT_THROW(
        compileTdl("PASS { COMP(acc=FFT) }",
                   [](const std::string &) { return std::string(); }),
        FatalError);
}

TEST(Codegen, EncodesAndDecodes)
{
    accel::DescriptorProgram d = compileTdl(kStapTdl, stapResolver());
    auto image = accel::encode(d);
    accel::DescriptorProgram back =
        accel::decode(image.data(), image.size());
    EXPECT_EQ(back.instrs.size(), d.instrs.size());
    EXPECT_EQ(back.expandedCompCount(), d.expandedCompCount());
}

TEST(Format, RoundTripsThroughParse)
{
    TdlProgram p = parse(kStapTdl);
    std::string text = format(p);
    TdlProgram q = parse(text);
    ASSERT_EQ(q.items.size(), p.items.size());
    EXPECT_EQ(q.items[0].pass.comps.size(),
              p.items[0].pass.comps.size());
    EXPECT_EQ(q.items[1].loop.loop.dims, p.items[1].loop.loop.dims);
    EXPECT_EQ(q.items[1].loop.passes[0].comps[0].paramsFile,
              p.items[1].loop.passes[0].comps[0].paramsFile);
}

} // namespace
} // namespace mealib::tdl
