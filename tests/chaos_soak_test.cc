// Tests for the resilience stack layered over fault injection: the
// quarantine/probation/strike-out state machine (unit and integration),
// checkpoint-replay numeric identity under sustained multi-fault
// pressure, mid-run stack death resuming on a survivor for less than a
// whole-program host fallback, and bit-for-bit ledger neutrality when
// every resilience layer is disabled.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/runtime.hh"

namespace mealib::runtime {
namespace {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;
using Action = StackHealthMonitor::Action;

constexpr std::int64_t kSliceN = 1 << 13; // floats per iteration
constexpr std::uint32_t kIters = 256;     // expanded COMPs per command
constexpr std::int64_t kN = kSliceN * kIters;

RuntimeConfig
baseConfig(unsigned stacks = 2)
{
    RuntimeConfig cfg;
    cfg.backingBytes = 128_MiB;
    cfg.numStacks = stacks;
    return cfg;
}

/** Looped AXPY with beta = 0: the output interval is disjoint from the
 * inputs and never read, so the plan is rerun-safe (checkpointable). */
AccPlanHandle
planRerunSafe(MealibRuntime &rt, const float *x, float *y)
{
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = static_cast<std::uint64_t>(kSliceN);
    c.alpha = 2.0f;
    c.beta = 0.0f;
    c.in0.base = rt.physOf(x);
    c.out.base = rt.physOf(y);
    c.in0.stride = {kSliceN * 4, 0, 0, 0};
    c.out.stride = {kSliceN * 4, 0, 0, 0};
    accel::LoopSpec loop;
    loop.dims = {kIters, 1, 1, 1};
    DescriptorProgram prog;
    prog.addLoop(loop, 2);
    prog.addComp(c);
    prog.addPassEnd();
    return rt.accPlan(prog);
}

struct Operands
{
    std::vector<float *> x, y;
};

Operands
fillOperands(MealibRuntime &rt)
{
    Operands ops;
    for (unsigned s = 0; s < rt.numStacks(); ++s) {
        auto *x = static_cast<float *>(rt.memAllocOn(s, kN * 4));
        auto *y = static_cast<float *>(rt.memAllocOn(s, kN * 4));
        for (std::int64_t i = 0; i < kN; ++i) {
            x[i] = 0.125f * static_cast<float>(i % 53) + s;
            y[i] = 0.0f;
        }
        ops.x.push_back(x);
        ops.y.push_back(y);
    }
    return ops;
}

std::vector<Event>
runWorkload(MealibRuntime &rt, const Operands &ops,
            unsigned perStack = 3)
{
    std::vector<Event> events;
    for (unsigned round = 0; round < perStack; ++round)
        for (unsigned s = 0; s < rt.numStacks(); ++s)
            events.push_back(
                rt.accSubmit(planRerunSafe(rt, ops.x[s], ops.y[s])));
    rt.waitAll();
    return events;
}

// --- quarantine state machine (unit) ----------------------------------

HealthConfig
monitorConfig()
{
    HealthConfig cfg;
    cfg.quarantineThreshold = 0.5;
    cfg.windowCommands = 8;
    cfg.minSamples = 4;
    cfg.probationAfterCommands = 4;
    cfg.canaryCommands = 2;
    return cfg;
}

TEST(HealthMonitor, FlakyStackQuarantinesThenReadmits)
{
    StackHealthMonitor mon(monitorConfig(), 2);
    ASSERT_TRUE(mon.enabled());
    EXPECT_EQ(mon.state(0), StackHealth::Healthy);

    // Three faulted outcomes stay below minSamples: no verdict yet.
    std::uint64_t cmd = 0;
    for (; cmd < 3; ++cmd)
        EXPECT_EQ(mon.recordOutcome(0, cmd, true), Action::None);
    EXPECT_EQ(mon.state(0), StackHealth::Healthy);

    // The fourth crosses minSamples with score 1.0 >= threshold 0.5.
    EXPECT_EQ(mon.recordOutcome(0, cmd, true), Action::Quarantine);
    EXPECT_EQ(mon.state(0), StackHealth::Quarantined);
    EXPECT_EQ(mon.quarantines(), 1u);
    EXPECT_EQ(mon.score(0), 1.0);
    EXPECT_EQ(mon.canaryTarget(), StackHealthMonitor::kNone);

    // Quarantined at cmd 3, cooldown 4: probation begins at cmd 7.
    EXPECT_TRUE(mon.beginCommand(5).empty());
    EXPECT_EQ(mon.state(0), StackHealth::Quarantined);
    std::vector<unsigned> changed = mon.beginCommand(7);
    ASSERT_EQ(changed.size(), 1u);
    EXPECT_EQ(changed[0], 0u);
    EXPECT_EQ(mon.state(0), StackHealth::Probation);
    EXPECT_EQ(mon.canaryTarget(), 0u);

    // Two clean canaries re-admit and forget the flaky window.
    EXPECT_EQ(mon.recordOutcome(0, 8, false), Action::None);
    EXPECT_EQ(mon.recordOutcome(0, 9, false), Action::Readmit);
    EXPECT_EQ(mon.state(0), StackHealth::Healthy);
    EXPECT_EQ(mon.readmissions(), 1u);
    EXPECT_EQ(mon.score(0), 0.0);

    // Stack 1 never produced an outcome and never changed state.
    EXPECT_EQ(mon.state(1), StackHealth::Healthy);
    EXPECT_EQ(mon.score(1), 0.0);

    mon.reset();
    EXPECT_EQ(mon.quarantines(), 0u);
    EXPECT_EQ(mon.readmissions(), 0u);
    EXPECT_EQ(mon.strikes(0), 0u);
}

TEST(HealthMonitor, FaultedCanaryStrikesOutToPermanentDeath)
{
    HealthConfig cfg = monitorConfig();
    cfg.maxStrikes = 2;
    StackHealthMonitor mon(cfg, 1);

    // First quarantine entry is strike one.
    for (std::uint64_t cmd = 0; cmd < 3; ++cmd)
        EXPECT_EQ(mon.recordOutcome(0, cmd, true), Action::None);
    EXPECT_EQ(mon.recordOutcome(0, 3, true), Action::Quarantine);
    EXPECT_EQ(mon.strikes(0), 1u);

    // A faulted canary on probation costs the second and final strike.
    ASSERT_EQ(mon.beginCommand(7).size(), 1u);
    EXPECT_EQ(mon.recordOutcome(0, 7, true), Action::Die);
    EXPECT_EQ(mon.strikes(0), 2u);

    // The runtime reacts to Die with failStack() -> markDead(): from
    // there the slot is inert.
    mon.markDead(0);
    EXPECT_EQ(mon.state(0), StackHealth::Dead);
    EXPECT_EQ(mon.recordOutcome(0, 8, true), Action::None);
    EXPECT_EQ(mon.state(0), StackHealth::Dead);
    EXPECT_TRUE(mon.beginCommand(1000).empty());
}

TEST(HealthMonitor, HealthySamplesDiluteTheScore)
{
    // Alternating good/bad outcomes peak at 3/5 = 0.6 while the window
    // fills and settle at 0.5; a 0.7 threshold never quarantines, so
    // bursts matter but background noise does not.
    HealthConfig cfg = monitorConfig();
    cfg.quarantineThreshold = 0.7;
    StackHealthMonitor mon(cfg, 1);
    for (std::uint64_t cmd = 0; cmd < 16; ++cmd)
        EXPECT_EQ(mon.recordOutcome(0, cmd, cmd % 2 == 0), Action::None);
    EXPECT_EQ(mon.state(0), StackHealth::Healthy);
    EXPECT_EQ(mon.score(0), 0.5);
}

// --- quarantine (integration) -----------------------------------------

TEST(HealthIntegration, QuarantinedStackStopsReceivingWork)
{
    // Every command on stack 0 hangs and falls back; four of them cross
    // the window threshold and quarantine the stack, after which the
    // scheduler steers new work to the survivor.
    RuntimeConfig cfg = baseConfig(2);
    cfg.fault.seed = 17;
    cfg.fault.hangRate = 1.0;
    cfg.retry.maxRetries = 0;
    cfg.health.quarantineThreshold = 1.0;
    cfg.health.windowCommands = 4;
    cfg.health.minSamples = 4;
    cfg.health.probationAfterCommands = 1000; // stays quarantined
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);

    for (unsigned i = 0; i < 4; ++i) {
        Event ev =
            rt.accSubmitOn(planRerunSafe(rt, ops.x[0], ops.y[0]), 0);
        EXPECT_EQ(ev.state(), EventState::FellBack);
    }
    EXPECT_EQ(rt.stackHealth(0), StackHealth::Quarantined);
    EXPECT_EQ(rt.selectableStackCount(), 1u);
    EXPECT_EQ(rt.accounting().quarantines, 1u);
    EXPECT_FALSE(rt.stackFailed(0)); // steered around, not dead
    EXPECT_EQ(rt.healthyStackCount(), 2u);

    const std::uint64_t landed = rt.queue(0).submitted();
    for (unsigned i = 0; i < 3; ++i) {
        Event ev = rt.accSubmit(planRerunSafe(rt, ops.x[1], ops.y[1]));
        EXPECT_EQ(ev.stack(), 1u);
    }
    EXPECT_EQ(rt.queue(0).submitted(), landed);
    rt.waitAll();
}

TEST(HealthIntegration, ProbationCanaryStrikesOutAndStackDies)
{
    // Quarantine at command 3, probation two submissions later; the
    // canary the runtime routes back to stack 0 hangs too, which is the
    // final strike: the monitor reports Die and the runtime fails the
    // stack permanently.
    RuntimeConfig cfg = baseConfig(2);
    cfg.fault.seed = 23;
    cfg.fault.hangRate = 1.0;
    cfg.retry.maxRetries = 0;
    cfg.health.quarantineThreshold = 1.0;
    cfg.health.windowCommands = 4;
    cfg.health.minSamples = 4;
    cfg.health.probationAfterCommands = 2;
    cfg.health.canaryCommands = 1;
    cfg.health.maxStrikes = 2;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);

    for (unsigned i = 0; i < 4; ++i)
        rt.accSubmitOn(planRerunSafe(rt, ops.x[0], ops.y[0]), 0);
    EXPECT_EQ(rt.stackHealth(0), StackHealth::Quarantined);

    // Submission 4 still sees the cooldown; submission 5 promotes the
    // stack to probation and is steered onto it as the canary.
    Event ev4 = rt.accSubmit(planRerunSafe(rt, ops.x[1], ops.y[1]));
    EXPECT_EQ(ev4.stack(), 1u);
    Event canary = rt.accSubmit(planRerunSafe(rt, ops.x[0], ops.y[0]));
    EXPECT_EQ(canary.stack(), 0u);
    EXPECT_EQ(canary.state(), EventState::FellBack);

    EXPECT_EQ(rt.stackHealth(0), StackHealth::Dead);
    EXPECT_TRUE(rt.stackFailed(0));
    EXPECT_EQ(rt.healthyStackCount(), 1u);
    EXPECT_EQ(rt.healthMonitor().strikes(0), 2u);
    EXPECT_EQ(rt.accounting().quarantines, 2u);
    EXPECT_EQ(rt.accounting().readmissions, 0u);
    rt.waitAll();
}

// --- checkpoint/replay under chaos ------------------------------------

TEST(ChaosSoak, ReplayNumericIdentityAcrossSeeds)
{
    // The full resilience stack under every fault class at once, three
    // seeds: whatever the recovery ladder does — retries, checkpoint
    // resumes, quarantines, host fallbacks — the functional results
    // must be bit-identical to a fault-free run.
    MealibRuntime clean(baseConfig(2));
    Operands opsClean = fillOperands(clean);
    runWorkload(clean, opsClean, 4);

    std::uint64_t ladderUse = 0;
    for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
        RuntimeConfig cfg = baseConfig(2);
        cfg.fault.seed = seed;
        cfg.fault.eccCorrectableRate = 0.2;
        cfg.fault.eccUncorrectableRate = 0.05;
        cfg.fault.linkCrcRate = 0.1;
        cfg.fault.hangRate = 0.1;
        cfg.fault.computeTransientRate = 0.2;
        cfg.fault.silentCorruptionRate = 0.2;
        cfg.retry.maxRetries = 8;
        cfg.integrity.verifyTransfers = true;
        cfg.checkpoint.intervalComps = 32;
        cfg.health.quarantineThreshold = 0.9;
        MealibRuntime rt(cfg);
        Operands ops = fillOperands(rt);
        std::vector<Event> events = runWorkload(rt, ops, 4);

        for (Event &ev : events)
            EXPECT_TRUE(completed(ev.state()));
        const RuntimeAccounting &acct = rt.accounting();
        EXPECT_EQ(acct.silentUndetected, 0u); // verification is on
        ladderUse += acct.retryCount + acct.silentDetected +
                     acct.resumedFromCheckpoint;
        for (unsigned s = 0; s < 2; ++s)
            EXPECT_EQ(0, std::memcmp(opsClean.y[s], ops.y[s], kN * 4))
                << "seed " << seed << " stack " << s;
    }
    // The sweep actually exercised the ladder, not a quiet run.
    EXPECT_GT(ladderUse, 0u);
}

TEST(ChaosSoak, StackDeathResumesOnSurvivorCheaperThanHostFallback)
{
    // Scripted mid-run death of stack 0 with checkpointing: the drained
    // backlog resumes on stack 1 from committed snapshots. Results are
    // identical to fault-free, and the modeled cost is strictly below
    // the whole-program host-fallback a survivor-less topology forces.
    MealibRuntime clean(baseConfig(2));
    Operands opsClean = fillOperands(clean);
    std::vector<Event> evClean;
    for (unsigned i = 0; i < 6; ++i)
        evClean.push_back(clean.accSubmitOn(
            planRerunSafe(clean, opsClean.x[0], opsClean.y[0]), 0));
    clean.waitAll();

    RuntimeConfig cfg = baseConfig(2);
    cfg.fault.failStack = 0;
    cfg.fault.failStackAfter = 4;
    cfg.checkpoint.intervalComps = 8;
    MealibRuntime rt(cfg);
    Operands ops = fillOperands(rt);
    std::vector<Event> events;
    for (unsigned i = 0; i < 6; ++i)
        events.push_back(
            rt.accSubmitOn(planRerunSafe(rt, ops.x[0], ops.y[0]), 0));
    rt.waitAll();

    EXPECT_TRUE(rt.stackFailed(0));
    unsigned resumed = 0;
    for (Event &ev : events) {
        EXPECT_TRUE(completed(ev.state()));
        if (ev.state() == EventState::Resumed) {
            ++resumed;
            EXPECT_EQ(ev.stack(), 1u); // re-homed to the survivor
        }
    }
    EXPECT_GT(resumed, 0u);
    EXPECT_EQ(rt.accounting().resumedFromCheckpoint, resumed);
    EXPECT_EQ(rt.accounting().fallbackCount, 0u);
    EXPECT_EQ(0, std::memcmp(opsClean.y[0], ops.y[0], kN * 4));

    // Same workload, same scripted death, no second stack: every
    // outstanding command falls back to a whole-program host run.
    RuntimeConfig solo = baseConfig(1);
    solo.fault.failStack = 0;
    solo.fault.failStackAfter = 4;
    solo.checkpoint.intervalComps = 8;
    MealibRuntime host(solo);
    Operands opsHost = fillOperands(host);
    for (unsigned i = 0; i < 6; ++i)
        host.accSubmitOn(planRerunSafe(host, opsHost.x[0], opsHost.y[0]),
                         0);
    host.waitAll();

    EXPECT_GT(host.accounting().fallbackCount, 0u);
    EXPECT_LT(rt.accounting().total().seconds,
              host.accounting().total().seconds);
    EXPECT_LT(rt.accounting().makespanSeconds,
              host.accounting().makespanSeconds);
    EXPECT_EQ(0, std::memcmp(opsClean.y[0], opsHost.y[0], kN * 4));
}

// --- neutrality pin ---------------------------------------------------

TEST(ChaosSoak, DisabledResilienceLayersAreBitForBitNeutral)
{
    // A config that merely carries the resilience knobs — all of them
    // off — must not move a single ledger bit: no integrity track, no
    // snapshots, no health activity, identical costs and numerics.
    MealibRuntime rtA(baseConfig());
    Operands opsA = fillOperands(rtA);
    runWorkload(rtA, opsA);

    RuntimeConfig cfg = baseConfig();
    cfg.fault.seed = 5; // disarmed: every rate is zero
    cfg.integrity.verifyTransfers = false;
    cfg.checkpoint.intervalComps = 0;
    cfg.health.quarantineThreshold = 0.0;
    MealibRuntime rtB(cfg);
    Operands opsB = fillOperands(rtB);
    runWorkload(rtB, opsB);

    const RuntimeAccounting &a = rtA.accounting();
    const RuntimeAccounting &b = rtB.accounting();
    EXPECT_EQ(a.total().seconds, b.total().seconds);
    EXPECT_EQ(a.total().joules, b.total().joules);
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(b.integrity.seconds, 0.0);
    EXPECT_EQ(b.integrity.joules, 0.0);
    EXPECT_EQ(b.silentDetected + b.silentUndetected, 0u);
    EXPECT_EQ(b.checkpointsTaken, 0u);
    EXPECT_EQ(b.resumedFromCheckpoint, 0u);
    EXPECT_EQ(b.quarantines + b.readmissions, 0u);
    EXPECT_EQ(rtB.journal().taken(), 0u);
    EXPECT_EQ(rtB.ledger().tracks().count("integrity"), 0u);
    EXPECT_EQ(rtA.ledger().total().seconds,
              rtB.ledger().total().seconds);
    EXPECT_EQ(rtA.ledger().total().joules, rtB.ledger().total().joules);
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_EQ(0, std::memcmp(opsA.y[s], opsB.y[s], kN * 4));
}

} // namespace
} // namespace mealib::runtime
