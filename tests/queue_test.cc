// Tests for the asynchronous command-queue execution engine: per-stack
// queues, hazard inference from descriptor operand intervals, overlap-
// aware accounting, scheduler policies, and the accExecute == submit +
// wait equivalence.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/stap.hh"
#include "common/logging.hh"
#include "runtime/runtime.hh"

namespace mealib::runtime {
namespace {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;

RuntimeConfig
twoStacks()
{
    RuntimeConfig cfg;
    cfg.backingBytes = 128_MiB;
    cfg.numStacks = 2;
    return cfg;
}

OpCall
axpyCall(MealibRuntime &rt, const float *x, float *y, std::int64_t n,
         float alpha = 1.0f, float beta = 1.0f)
{
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = static_cast<std::uint64_t>(n);
    c.alpha = alpha;
    c.beta = beta;
    c.in0.base = rt.physOf(x);
    c.out.base = rt.physOf(y);
    return c;
}

AccPlanHandle
planAxpy(MealibRuntime &rt, const float *x, float *y, std::int64_t n,
         float alpha = 1.0f, float beta = 1.0f)
{
    DescriptorProgram prog;
    prog.addComp(axpyCall(rt, x, y, n, alpha, beta));
    prog.addPassEnd();
    return rt.accPlan(prog);
}

// Timing-sensitive tests use LOOP descriptors: the flush only covers
// one iteration's operands (accPlan's dirty footprint), so the
// accelerator span dwarfs the host-side submit cost — the compacted
// many-call pattern the library is built around.
constexpr std::int64_t kSliceN = 1 << 13;  // floats per iteration
constexpr std::uint32_t kIters = 256;      // loop trip count
constexpr std::int64_t kLoopedN = kSliceN * kIters;

AccPlanHandle
planLoopedAxpy(MealibRuntime &rt, const float *x, float *y)
{
    OpCall c = axpyCall(rt, x, y, kSliceN);
    c.in0.stride = {kSliceN * 4, 0, 0, 0};
    c.out.stride = {kSliceN * 4, 0, 0, 0};
    accel::LoopSpec loop;
    loop.dims = {kIters, 1, 1, 1};
    DescriptorProgram prog;
    prog.addLoop(loop, 2);
    prog.addComp(c);
    prog.addPassEnd();
    return rt.accPlan(prog);
}

// --- CommandQueue unit behavior ---------------------------------------

TEST(CommandQueue, AdmitsImmediatelyWhileSlotsFree)
{
    CommandQueue q(2);
    EXPECT_DOUBLE_EQ(q.admitSeconds(1.0), 1.0);
    q.push(1.0, 5.0);
    EXPECT_DOUBLE_EQ(q.admitSeconds(1.0), 1.0);
    EXPECT_EQ(q.outstanding(), 1u);
}

TEST(CommandQueue, FullQueueStallsUntilOldestRetires)
{
    CommandQueue q(2);
    q.push(0.0, 4.0);
    q.push(4.0, 9.0);
    // Both slots taken: the next admit waits for the oldest command.
    EXPECT_DOUBLE_EQ(q.admitSeconds(1.0), 4.0);
    q.retireUpTo(4.5);
    EXPECT_EQ(q.outstanding(), 1u);
    EXPECT_DOUBLE_EQ(q.admitSeconds(4.5), 4.5);
    EXPECT_DOUBLE_EQ(q.busyUntilSeconds(), 9.0);
    EXPECT_EQ(q.submitted(), 2u);
}

TEST(CommandQueue, ZeroDepthIsFatal)
{
    EXPECT_THROW(CommandQueue q(0), FatalError);
}

// --- scheduler policies -----------------------------------------------

TEST(Scheduler, PolicyNamesParse)
{
    EXPECT_EQ(schedulerPolicy("round_robin"), SchedulerPolicy::RoundRobin);
    EXPECT_EQ(schedulerPolicy("rr"), SchedulerPolicy::RoundRobin);
    EXPECT_EQ(schedulerPolicy("locality"), SchedulerPolicy::Locality);
    EXPECT_THROW(schedulerPolicy("fifo"), FatalError);
    EXPECT_STREQ(name(SchedulerPolicy::RoundRobin), "round_robin");
    EXPECT_STREQ(name(SchedulerPolicy::Locality), "locality");
}

TEST(Scheduler, RoundRobinCyclesLocalityHonorsHome)
{
    Scheduler rr(SchedulerPolicy::RoundRobin, 3);
    EXPECT_EQ(rr.pick(2), 0u);
    EXPECT_EQ(rr.pick(2), 1u);
    EXPECT_EQ(rr.pick(2), 2u);
    EXPECT_EQ(rr.pick(2), 0u);
    rr.reset();
    EXPECT_EQ(rr.pick(2), 0u);

    Scheduler loc(SchedulerPolicy::Locality, 3);
    EXPECT_EQ(loc.pick(2), 2u);
    EXPECT_EQ(loc.pick(0), 0u);
    EXPECT_EQ(loc.pick(7), 0u); // out-of-range home falls back
}

// --- hazard intervals --------------------------------------------------

TEST(AccessInterval, ConflictNeedsOverlapAndAWrite)
{
    AccessInterval r1{0, 100, false};
    AccessInterval r2{50, 150, false};
    AccessInterval w{60, 70, true};
    AccessInterval w2{200, 300, true};
    EXPECT_FALSE(r1.conflictsWith(r2)); // read-read
    EXPECT_TRUE(r1.conflictsWith(w));   // read-write overlap
    EXPECT_TRUE(w.conflictsWith(r1));
    EXPECT_FALSE(w.conflictsWith(w2));  // disjoint writes
}

TEST(AccessInterval, IntervalsCoverLoopStrides)
{
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = 256;
    c.in0 = {0, {1024, 0, 0, 0}};
    c.out = {100000, {1024, 0, 0, 0}};
    accel::LoopSpec loop;
    loop.dims = {8, 1, 1, 1};
    DescriptorProgram prog;
    prog.addLoop(loop, 2);
    prog.addComp(c);
    prog.addPassEnd();

    std::vector<AccessInterval> iv = accessIntervals(prog);
    ASSERT_EQ(iv.size(), 2u);
    EXPECT_EQ(iv[0].lo, 0u);
    EXPECT_EQ(iv[0].hi, 7u * 1024u + 256u * 4u); // last slice's end
    EXPECT_FALSE(iv[0].write);
    EXPECT_EQ(iv[1].lo, 100000u);
    EXPECT_TRUE(iv[1].write);
}

// --- overlap of independent plans -------------------------------------

TEST(Queue, IndependentPlansOnTwoStacksOverlap)
{
    MealibRuntime rt(twoStacks());
    const std::int64_t n = kLoopedN;
    auto *x0 = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *y0 = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *x1 = static_cast<float *>(rt.memAllocOn(1, n * 4));
    auto *y1 = static_cast<float *>(rt.memAllocOn(1, n * 4));

    auto h0 = planLoopedAxpy(rt, x0, y0);
    auto h1 = planLoopedAxpy(rt, x1, y1);
    Event e0 = rt.accSubmitOn(h0, 0);
    Event e1 = rt.accSubmitOn(h1, 1);
    rt.waitAll();

    const RuntimeAccounting &acct = rt.accounting();
    // Acceptance: wall clock beats the serial sum of both invocations.
    EXPECT_LT(acct.makespanSeconds, acct.total().seconds);
    EXPECT_GT(acct.overlapSavedSeconds(), 0.0);
    // The two commands genuinely ran concurrently on the timeline.
    EXPECT_LT(e1.startSeconds(), e0.finishSeconds());
    EXPECT_GT(acct.busyByStack.get("stack0"), 0.0);
    EXPECT_GT(acct.busyByStack.get("stack1"), 0.0);

    rt.accDestroy(h0);
    rt.accDestroy(h1);
}

TEST(Queue, SameStackSerializesInOrder)
{
    MealibRuntime rt(twoStacks());
    const std::int64_t n = 1 << 18;
    auto *x = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *z = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *w = static_cast<float *>(rt.memAllocOn(0, n * 4));

    auto h0 = planAxpy(rt, x, y, n);
    auto h1 = planAxpy(rt, z, w, n); // independent data, same queue
    Event e0 = rt.accSubmitOn(h0, 0);
    Event e1 = rt.accSubmitOn(h1, 0);
    rt.waitAll();
    EXPECT_GE(e1.startSeconds(), e0.finishSeconds());
    rt.accDestroy(h0);
    rt.accDestroy(h1);
}

// --- hazard ordering ---------------------------------------------------

TEST(Queue, RawHazardOrdersDependentPlans)
{
    MealibRuntime rt(twoStacks());
    const std::int64_t n = kLoopedN;
    auto *x = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *z = static_cast<float *>(rt.memAllocOn(1, n * 4));
    for (std::int64_t i = 0; i < n; ++i) {
        x[i] = static_cast<float>(i % 1000);
        y[i] = 1.0f;
        z[i] = 0.0f;
    }

    // p1: y += x. p2: z += y (RAW on y), forced onto the OTHER stack so
    // only the hazard — not queue order — can serialize them.
    auto h1 = planLoopedAxpy(rt, x, y);
    auto h2 = planLoopedAxpy(rt, y, z);
    Event e1 = rt.accSubmitOn(h1, 0);
    Event e2 = rt.accSubmitOn(h2, 1);
    rt.waitAll();

    EXPECT_GE(e2.startSeconds(), e1.finishSeconds());
    // Functional result matches the serial order.
    for (std::int64_t i = 0; i < n; i += 997)
        ASSERT_FLOAT_EQ(z[i], static_cast<float>(i % 1000) + 1.0f) << i;

    rt.accDestroy(h1);
    rt.accDestroy(h2);
}

TEST(Queue, WawAndWarHazardsOrderPlans)
{
    MealibRuntime rt(twoStacks());
    const std::int64_t n = kLoopedN;
    auto *x = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *z = static_cast<float *>(rt.memAllocOn(1, n * 4));

    // WAW: both write y.
    auto h1 = planLoopedAxpy(rt, x, y);
    auto h2 = planLoopedAxpy(rt, z, y);
    Event e1 = rt.accSubmitOn(h1, 0);
    Event e2 = rt.accSubmitOn(h2, 1);
    EXPECT_GE(e2.startSeconds(), e1.finishSeconds());
    rt.waitAll();
    rt.accDestroy(h1);
    rt.accDestroy(h2);

    // WAR: reader of x first, then a writer of x.
    auto h3 = planLoopedAxpy(rt, x, y);
    auto h4 = planLoopedAxpy(rt, z, x);
    Event e3 = rt.accSubmitOn(h3, 0);
    Event e4 = rt.accSubmitOn(h4, 1);
    EXPECT_GE(e4.startSeconds(), e3.finishSeconds());
    rt.waitAll();
    rt.accDestroy(h3);
    rt.accDestroy(h4);
}

TEST(Queue, DisjointHalvesOfOneBufferDoNotConflict)
{
    // Control for the hazard tests: identical shape and sizing, but the
    // two plans touch disjoint halves — so they must overlap instead of
    // serializing.
    MealibRuntime rt(twoStacks());
    const std::int64_t n = kLoopedN;
    auto *x = static_cast<float *>(rt.memAllocOn(0, 2 * n * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(1, 2 * n * 4));

    auto h1 = planLoopedAxpy(rt, x, y);
    auto h2 = planLoopedAxpy(rt, x + n, y + n);
    Event e1 = rt.accSubmitOn(h1, 0);
    Event e2 = rt.accSubmitOn(h2, 1);
    EXPECT_LT(e2.startSeconds(), e1.finishSeconds());
    rt.waitAll();
    rt.accDestroy(h1);
    rt.accDestroy(h2);
}

// --- queue depth -------------------------------------------------------

TEST(Queue, ShallowQueueStallsTheHost)
{
    RuntimeConfig deep = twoStacks();
    deep.queueDepth = 8;
    RuntimeConfig shallow = twoStacks();
    shallow.queueDepth = 1;
    const std::int64_t n = kLoopedN;

    auto submit_three = [&](MealibRuntime &rt) {
        auto *x = static_cast<float *>(rt.memAllocOn(0, n * 4));
        std::vector<float *> ys;
        std::vector<AccPlanHandle> hs;
        for (int i = 0; i < 3; ++i) {
            ys.push_back(
                static_cast<float *>(rt.memAllocOn(0, n * 4)));
            hs.push_back(planLoopedAxpy(rt, x, ys.back()));
            rt.accSubmitOn(hs.back(), 0);
        }
        double now = rt.nowSeconds();
        rt.waitAll();
        for (auto h : hs)
            rt.accDestroy(h);
        return now;
    };

    MealibRuntime rt_deep(deep);
    MealibRuntime rt_shallow(shallow);
    // With depth 1 each submit waits for the previous command; the host
    // clock after the third submit is far ahead of the deep queue's.
    EXPECT_GT(submit_three(rt_shallow), submit_three(rt_deep));
}

// --- accExecute equivalence and serial accounting ----------------------

TEST(Queue, ExecuteMatchesSubmitPlusWait)
{
    const std::int64_t n = 1 << 18;
    auto run = [&](bool async) {
        MealibRuntime rt(twoStacks());
        auto *x = static_cast<float *>(rt.memAllocOn(1, n * 4));
        auto *y = static_cast<float *>(rt.memAllocOn(1, n * 4));
        auto h = planAxpy(rt, x, y, n);
        if (async) {
            Event e = rt.accSubmitOn(h, rt.homeStackOf(h));
            e.wait();
        } else {
            rt.accExecute(h);
        }
        rt.accDestroy(h);
        return rt.accounting();
    };

    RuntimeAccounting sync = run(false);
    RuntimeAccounting async = run(true);
    EXPECT_DOUBLE_EQ(sync.accel.seconds, async.accel.seconds);
    EXPECT_DOUBLE_EQ(sync.accel.joules, async.accel.joules);
    EXPECT_DOUBLE_EQ(sync.invocation.seconds, async.invocation.seconds);
    EXPECT_DOUBLE_EQ(sync.invocation.joules, async.invocation.joules);
    EXPECT_DOUBLE_EQ(sync.makespanSeconds, async.makespanSeconds);
}

TEST(Queue, BlockingWorkloadMakespanEqualsSerialTotal)
{
    MealibRuntime rt(twoStacks());
    const std::int64_t n = 1 << 18;
    auto *x = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(0, n * 4));
    for (int i = 0; i < 4; ++i) {
        auto h = planAxpy(rt, x, y, n);
        rt.accExecute(h);
        rt.accDestroy(h);
    }
    host::KernelProfile p;
    p.name = "host";
    p.flops = 1e8;
    p.bytesRead = 1e6;
    rt.runOnHost(p);

    const RuntimeAccounting &acct = rt.accounting();
    EXPECT_NEAR(acct.makespanSeconds, acct.total().seconds,
                1e-12 * acct.total().seconds);
}

TEST(Queue, WaitAdvancesClockButNotBusyTime)
{
    MealibRuntime rt(twoStacks());
    const std::int64_t n = 1 << 20;
    auto *x = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto h = planAxpy(rt, x, y, n);
    Event e = rt.accSubmitOn(h, 0);
    double submitted = rt.nowSeconds();
    EXPECT_EQ(rt.inflightCount(), 1u);
    e.wait();
    EXPECT_EQ(rt.inflightCount(), 0u);
    EXPECT_GT(rt.nowSeconds(), submitted);
    // The wait itself is idle time, not host work.
    EXPECT_LT(rt.accounting().hostBusySeconds, rt.nowSeconds());
    // A second wait is a no-op.
    double now = rt.nowSeconds();
    e.wait();
    EXPECT_DOUBLE_EQ(rt.nowSeconds(), now);
    rt.accDestroy(h);
}

// --- scheduler-driven submission --------------------------------------

TEST(Queue, RoundRobinSpreadsLocalityStaysHome)
{
    RuntimeConfig cfg = twoStacks();
    cfg.scheduler = SchedulerPolicy::RoundRobin;
    MealibRuntime rr(cfg);
    const std::int64_t n = 4096;
    auto *x = static_cast<float *>(rr.memAllocOn(0, n * 4));
    auto *y = static_cast<float *>(rr.memAllocOn(0, n * 4));
    auto h1 = planAxpy(rr, x, y, n);
    auto h2 = planAxpy(rr, x, y, n);
    EXPECT_EQ(rr.accSubmit(h1).stack(), 0u);
    EXPECT_EQ(rr.accSubmit(h2).stack(), 1u);
    rr.waitAll();
    rr.accDestroy(h1);
    rr.accDestroy(h2);

    MealibRuntime loc(twoStacks()); // Locality is the default
    auto *x1 = static_cast<float *>(loc.memAllocOn(1, n * 4));
    auto *y1 = static_cast<float *>(loc.memAllocOn(1, n * 4));
    auto h = planAxpy(loc, x1, y1, n);
    EXPECT_EQ(loc.homeStackOf(h), 1u);
    EXPECT_EQ(loc.accSubmit(h).stack(), 1u);
    loc.waitAll();
    loc.accDestroy(h);
}

// --- reset and stale events -------------------------------------------

TEST(Queue, ResetProducesIdenticalBackToBackLedgers)
{
    MealibRuntime rt(twoStacks());
    const std::int64_t n = 1 << 18;
    auto *x0 = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *y0 = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *x1 = static_cast<float *>(rt.memAllocOn(1, n * 4));
    auto *y1 = static_cast<float *>(rt.memAllocOn(1, n * 4));

    auto workload = [&] {
        auto h0 = planAxpy(rt, x0, y0, n);
        auto h1 = planAxpy(rt, x1, y1, n);
        rt.accSubmit(h0);
        rt.accSubmit(h1);
        rt.waitAll();
        host::KernelProfile p;
        p.name = "host";
        p.flops = 1e8;
        rt.runOnHost(p);
        rt.accDestroy(h0);
        rt.accDestroy(h1);
        return rt.accounting();
    };

    RuntimeAccounting first = workload();
    rt.resetAccounting();
    RuntimeAccounting second = workload();

    EXPECT_DOUBLE_EQ(first.host.seconds, second.host.seconds);
    EXPECT_DOUBLE_EQ(first.host.joules, second.host.joules);
    EXPECT_DOUBLE_EQ(first.accel.seconds, second.accel.seconds);
    EXPECT_DOUBLE_EQ(first.accel.joules, second.accel.joules);
    EXPECT_DOUBLE_EQ(first.invocation.seconds, second.invocation.seconds);
    EXPECT_DOUBLE_EQ(first.invocation.joules, second.invocation.joules);
    EXPECT_DOUBLE_EQ(first.makespanSeconds, second.makespanSeconds);
    EXPECT_DOUBLE_EQ(first.hostBusySeconds, second.hostBusySeconds);
    EXPECT_DOUBLE_EQ(first.busyByStack.get("stack0"),
                     second.busyByStack.get("stack0"));
    EXPECT_DOUBLE_EQ(first.busyByStack.get("stack1"),
                     second.busyByStack.get("stack1"));
}

TEST(Queue, StaleEventWaitIsNoOpAfterReset)
{
    MealibRuntime rt(twoStacks());
    const std::int64_t n = 1 << 16;
    auto *x = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto h = planAxpy(rt, x, y, n);
    Event e = rt.accSubmitOn(h, 0);
    rt.resetAccounting();
    EXPECT_DOUBLE_EQ(rt.nowSeconds(), 0.0);
    e.wait(); // must not advance the fresh timeline
    EXPECT_DOUBLE_EQ(rt.nowSeconds(), 0.0);
    EXPECT_EQ(rt.inflightCount(), 0u);
    rt.accDestroy(h);
}

TEST(Queue, InvalidEventIsFatal)
{
    Event e;
    EXPECT_FALSE(e.valid());
    EXPECT_THROW(e.wait(), FatalError);
    EXPECT_THROW(e.stack(), FatalError);
    EXPECT_THROW(e.finishSeconds(), FatalError);
}

// --- STAP async pipeline (acceptance criterion c) ----------------------

TEST(Queue, StapAsyncCriticalPathBeatsSerialAndMatchesHost)
{
    apps::StapParams p = apps::StapParams::smallSet();
    apps::StapResult host = apps::runStapHost(p);

    RuntimeConfig cfg;
    cfg.numStacks = 2;
    MealibRuntime rt(cfg);
    apps::StapResult async = apps::runStapMealibAsync(p, rt);

    ASSERT_EQ(async.prods.size(), host.prods.size());
    for (std::size_t i = 0; i < host.prods.size(); i += 101) {
        ASSERT_NEAR(async.prods[i].real(), host.prods[i].real(), 1e-3f)
            << "i=" << i;
        ASSERT_NEAR(async.prods[i].imag(), host.prods[i].imag(), 1e-3f)
            << "i=" << i;
    }

    EXPECT_EQ(async.descriptors, 3u); // 1 head + 2 slices
    EXPECT_GT(async.criticalPathSeconds, 0.0);
    EXPECT_LT(async.criticalPathSeconds, async.total().seconds);
    // Both stacks did real work.
    EXPECT_GT(rt.accounting().busyByStack.get("stack0"), 0.0);
    EXPECT_GT(rt.accounting().busyByStack.get("stack1"), 0.0);
}

TEST(Queue, StapAsyncMatchesBlockingPipelineOutput)
{
    apps::StapParams p = apps::StapParams::smallSet();

    RuntimeConfig cfg1;
    MealibRuntime rt1(cfg1); // single stack: degenerates to 1 slice
    apps::StapResult sync = apps::runStapMealib(p, rt1);

    RuntimeConfig cfg2;
    cfg2.numStacks = 4;
    MealibRuntime rt2(cfg2);
    apps::StapResult async = apps::runStapMealibAsync(p, rt2);

    ASSERT_EQ(async.prods.size(), sync.prods.size());
    for (std::size_t i = 0; i < sync.prods.size(); i += 103) {
        ASSERT_FLOAT_EQ(async.prods[i].real(), sync.prods[i].real());
        ASSERT_FLOAT_EQ(async.prods[i].imag(), sync.prods[i].imag());
    }
}

} // namespace
} // namespace mealib::runtime
