// Tests for the analytical host CPU model.

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "host/cpu.hh"

namespace mealib::host {
namespace {

KernelProfile
streamingProfile(double bytes)
{
    KernelProfile p;
    p.name = "stream";
    p.flops = bytes / 8.0; // well below the roofline ridge
    p.bytesRead = bytes * 2.0 / 3.0;
    p.bytesWritten = bytes / 3.0;
    p.memEff = 0.8;
    return p;
}

TEST(CpuParams, HaswellMatchesPaperFootnote)
{
    CpuParams p = haswell4770k();
    // Footnote 1: 112 GFLOPS peak at 3.5 GHz, 25.6 GB/s.
    EXPECT_NEAR(p.peakFlops(), 112e9, 1e9);
    EXPECT_NEAR(p.memBandwidth, 25.6e9, 1e6);
}

TEST(CpuModel, MemoryBoundKernelPinnedAtBandwidth)
{
    CpuModel m(haswell4770k());
    Cost c = m.run(streamingProfile(1e9));
    double bw = 1e9 / c.seconds;
    // Achieved bandwidth must sit at memEff * peak, not at the flops
    // roofline.
    EXPECT_NEAR(bw, 0.8 * 25.6e9, 0.01 * 25.6e9);
}

TEST(CpuModel, ComputeBoundKernelPinnedAtFlops)
{
    CpuModel m(haswell4770k());
    KernelProfile p;
    p.name = "gemm-ish";
    p.flops = 1e11;
    p.bytesRead = 1e7; // tiny traffic
    p.simdEff = 1.0;
    Cost c = m.run(p);
    double gf = p.flops / c.seconds;
    EXPECT_NEAR(gf, 112e9, 2e9);
}

TEST(CpuModel, HaswellStreamingPowerNearMeasured)
{
    // The paper reports ~48 W package power for the FFT run on Haswell.
    CpuModel m(haswell4770k());
    Cost c = m.run(streamingProfile(4e9));
    EXPECT_GT(c.watts(), 30.0);
    EXPECT_LT(c.watts(), 60.0);
}

TEST(CpuModel, PhiBurnsMorePowerThanHaswell)
{
    CpuModel hw(haswell4770k());
    CpuModel phi(xeonPhi5110p());
    KernelProfile p = streamingProfile(4e9);
    Cost chw = hw.run(p);
    Cost cphi = phi.run(p);
    // Sec. 5.1: Phi draws ~130 W vs ~48 W on Haswell.
    EXPECT_GT(cphi.watts(), 2.0 * chw.watts());
}

TEST(CpuModel, AmdahlLimitsSerialKernels)
{
    CpuModel m(haswell4770k());
    KernelProfile par;
    par.flops = 1e10;
    par.bytesRead = 1.0;
    par.parallelFraction = 1.0;
    KernelProfile ser = par;
    ser.parallelFraction = 0.0;
    double t_par = m.run(par).seconds;
    double t_ser = m.run(ser).seconds;
    EXPECT_NEAR(t_ser / t_par, 4.0, 0.01); // 4 cores
}

TEST(CpuModel, CallOverheadAdds)
{
    CpuModel m(haswell4770k());
    KernelProfile p = streamingProfile(1e6);
    double t0 = m.run(p).seconds;
    p.callOverheads = 1e-3;
    double t1 = m.run(p).seconds;
    EXPECT_NEAR(t1 - t0, 1e-3, 1e-9);
}

TEST(CpuModel, FlushCostScalesWithDirtyBytesUpToLlc)
{
    CpuModel m(haswell4770k());
    Cost small = m.flushCost(64_KiB);
    Cost large = m.flushCost(8_MiB);
    Cost huge = m.flushCost(1_GiB); // clamped at LLC capacity
    EXPECT_LT(small.seconds, large.seconds);
    EXPECT_DOUBLE_EQ(large.seconds, huge.seconds);
    EXPECT_GT(small.seconds, 0.0); // wbinvd is never free
}

TEST(CpuModel, IdleCostIsBackgroundOnly)
{
    CpuModel m(haswell4770k());
    Cost c = m.idleCost(1.0);
    EXPECT_DOUBLE_EQ(c.seconds, 1.0);
    // Idle watts should be near idleW plus DRAM background.
    EXPECT_GT(c.joules, 15.0);
    EXPECT_LT(c.joules, 25.0);
}

TEST(CpuModel, InvalidProfileIsFatal)
{
    CpuModel m(haswell4770k());
    KernelProfile p = streamingProfile(1e6);
    p.simdEff = 0.0;
    EXPECT_THROW(m.run(p), FatalError);
    p = streamingProfile(1e6);
    p.memEff = 1.5;
    EXPECT_THROW(m.run(p), FatalError);
}

TEST(CpuModel, MemBoundStallsReducePower)
{
    CpuModel m(haswell4770k());
    KernelProfile mem = streamingProfile(1e9);
    KernelProfile cmp;
    cmp.flops = 14e9; // ~same runtime as the 1 GB stream, compute-bound
    cmp.bytesRead = 1.0;
    Cost cm = m.run(mem);
    Cost cc = m.run(cmp);
    EXPECT_LT(cm.watts(), cc.watts() * 1.05);
}

} // namespace
} // namespace mealib::host
