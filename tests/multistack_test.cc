// Tests for the multi-stack shared memory model (paper Sec. 3.3: Local
// vs Remote Memory Stacks).

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/status.hh"
#include "runtime/runtime.hh"

namespace mealib::runtime {
namespace {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;

RuntimeConfig
fourStacks()
{
    RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    cfg.numStacks = 4;
    return cfg;
}

TEST(MultiStack, AllocationsLandOnRequestedStack)
{
    MealibRuntime rt(fourStacks());
    for (unsigned st = 0; st < 4; ++st) {
        void *p = rt.memAllocOn(st, 4096);
        EXPECT_EQ(rt.stackOf(rt.physOf(p)), st);
        rt.memFree(p);
    }
}

TEST(MultiStack, DefaultAllocUsesStackZero)
{
    MealibRuntime rt(fourStacks());
    void *p = rt.memAlloc(4096);
    EXPECT_EQ(rt.stackOf(rt.physOf(p)), 0u);
    rt.memFree(p);
}

TEST(MultiStack, OutOfRangeStackIsFatal)
{
    MealibRuntime rt(fourStacks());
    EXPECT_THROW(rt.memAllocOn(4, 64), FatalError);
}

TEST(MultiStack, StacksHaveIndependentCapacity)
{
    // Exhausting one stack must not affect another.
    RuntimeConfig cfg;
    cfg.backingBytes = 16_MiB;
    cfg.numStacks = 2;
    MealibRuntime rt(cfg);
    void *big = rt.memAllocOn(1, 7_MiB); // nearly fills stack 1
    EXPECT_THROW(rt.memAllocOn(1, 4_MiB), MealibError);
    EXPECT_NO_THROW(rt.memFree(rt.memAllocOn(0, 4_MiB)));
    rt.memFree(big);
}

OpCall
axpyOn(MealibRuntime &rt, float *x, float *y, std::int64_t n)
{
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = static_cast<std::uint64_t>(n);
    c.alpha = 1.0f;
    c.beta = 1.0f;
    c.in0.base = rt.physOf(x);
    c.out.base = rt.physOf(y);
    return c;
}

TEST(MultiStack, RemoteOperandsCostMore)
{
    MealibRuntime rt(fourStacks());
    const std::int64_t n = 1 << 20;

    // Local: both operands on the home stack (where out lives).
    auto *xl = static_cast<float *>(rt.memAllocOn(1, n * 4));
    auto *yl = static_cast<float *>(rt.memAllocOn(1, n * 4));
    DescriptorProgram local;
    local.addComp(axpyOn(rt, xl, yl, n));
    local.addPassEnd();
    auto hl = rt.accPlan(local);
    accel::ExecStats el = rt.accExecute(hl);
    rt.accDestroy(hl);
    EXPECT_DOUBLE_EQ(el.remoteBytes, 0.0);

    // Remote: the input lives on a different stack than the output.
    auto *xr = static_cast<float *>(rt.memAllocOn(2, n * 4));
    auto *yr = static_cast<float *>(rt.memAllocOn(1, n * 4));
    DescriptorProgram remote;
    remote.addComp(axpyOn(rt, xr, yr, n));
    remote.addPassEnd();
    auto hr = rt.accPlan(remote);
    accel::ExecStats er = rt.accExecute(hr);
    rt.accDestroy(hr);

    EXPECT_GT(er.remoteBytes, 0.0);
    EXPECT_GT(er.total.seconds, el.total.seconds);
    EXPECT_GT(er.total.joules, el.total.joules);
    EXPECT_GT(er.remote.seconds, 0.0);

    rt.memFree(xl);
    rt.memFree(yl);
    rt.memFree(xr);
    rt.memFree(yr);
}

TEST(MultiStack, RemotePenaltyProportionalToRemoteShare)
{
    MealibRuntime rt(fourStacks());
    const std::int64_t n = 1 << 20;
    auto *x = static_cast<float *>(rt.memAllocOn(2, n * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(1, n * 4));

    DescriptorProgram prog;
    prog.addComp(axpyOn(rt, x, y, n));
    prog.addPassEnd();
    auto h = rt.accPlan(prog);
    accel::ExecStats es = rt.accExecute(h);
    rt.accDestroy(h);

    // Only x (1 of 3 traffic shares) is remote: n*4 bytes.
    EXPECT_DOUBLE_EQ(es.remoteBytes, static_cast<double>(n) * 4.0);

    rt.memFree(x);
    rt.memFree(y);
}

TEST(MultiStack, SingleStackHasNoPenalty)
{
    RuntimeConfig cfg;
    cfg.backingBytes = 32_MiB;
    MealibRuntime rt(cfg); // numStacks = 1
    const std::int64_t n = 4096;
    auto *x = static_cast<float *>(rt.memAlloc(n * 4));
    auto *y = static_cast<float *>(rt.memAlloc(n * 4));
    DescriptorProgram prog;
    prog.addComp(axpyOn(rt, x, y, n));
    prog.addPassEnd();
    auto h = rt.accPlan(prog);
    accel::ExecStats es = rt.accExecute(h);
    rt.accDestroy(h);
    EXPECT_DOUBLE_EQ(es.remoteBytes, 0.0);
    EXPECT_DOUBLE_EQ(es.remote.seconds, 0.0);
}

TEST(MultiStack, StackOfBoundaries)
{
    RuntimeConfig cfg = fourStacks(); // 64 MiB over 4 stacks
    MealibRuntime rt(cfg);
    const std::uint64_t span = cfg.backingBytes / cfg.numStacks;

    EXPECT_EQ(rt.stackOf(0), 0u);
    EXPECT_EQ(rt.stackOf(span - 1), 0u);
    EXPECT_EQ(rt.stackOf(span), 1u);
    EXPECT_EQ(rt.stackOf(3 * span), 3u);
    EXPECT_EQ(rt.stackOf(cfg.backingBytes - 1), 3u);
    // Addresses past the arena clamp to the last stack.
    EXPECT_EQ(rt.stackOf(cfg.backingBytes), 3u);
    EXPECT_EQ(rt.stackOf(cfg.backingBytes + span), 3u);
}

TEST(MultiStack, LastStackAllocatesItsFullSpan)
{
    RuntimeConfig cfg = fourStacks();
    MealibRuntime rt(cfg);
    const std::uint64_t span = cfg.backingBytes / cfg.numStacks;
    // Stack 3 carries no command space: its whole span is data.
    void *p = rt.memAllocOn(3, span);
    EXPECT_EQ(rt.stackOf(rt.physOf(p)), 3u);
    EXPECT_EQ(rt.stackOf(rt.physOf(p) + span - 1), 3u);
    rt.memFree(p);
    // Stack 0 gave up commandBytes, so the full span must not fit.
    EXPECT_THROW(rt.memAllocOn(0, span), MealibError);
}

TEST(MultiStack, StraddlingOperandClassifiedByBase)
{
    // An operand whose byte range crosses a stack boundary is charged
    // by its base address: remote accounting is per-operand, matching
    // the per-operand placement model of Sec. 3.3.
    RuntimeConfig cfg = fourStacks();
    cfg.functional = false; // synthetic addresses, cost model only
    MealibRuntime rt(cfg);
    const std::uint64_t span = cfg.backingBytes / cfg.numStacks;
    const std::int64_t n = 1 << 16;

    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = static_cast<std::uint64_t>(n);
    // Input starts on stack 1 but extends into stack 2; output (the
    // home operand) sits fully on stack 1.
    c.in0.base = 2 * span - n * 2;
    c.out.base = span;
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    auto h = rt.accPlan(prog);
    accel::ExecStats es = rt.accExecute(h);
    rt.accDestroy(h);
    EXPECT_DOUBLE_EQ(es.remoteBytes, 0.0);

    // Move the input's base itself across the boundary: now its whole
    // traffic is remote.
    c.in0.base = 2 * span;
    DescriptorProgram prog2;
    prog2.addComp(c);
    prog2.addPassEnd();
    auto h2 = rt.accPlan(prog2);
    accel::ExecStats es2 = rt.accExecute(h2);
    rt.accDestroy(h2);
    EXPECT_DOUBLE_EQ(es2.remoteBytes, static_cast<double>(n) * 4.0);
}

TEST(MultiStack, FunctionalResultUnaffectedByPlacement)
{
    MealibRuntime rt(fourStacks());
    const std::int64_t n = 10000;
    auto *x = static_cast<float *>(rt.memAllocOn(3, n * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(0, n * 4));
    for (std::int64_t i = 0; i < n; ++i) {
        x[i] = static_cast<float>(i);
        y[i] = 1.0f;
    }
    DescriptorProgram prog;
    OpCall c = axpyOn(rt, x, y, n);
    c.alpha = 3.0f; // beta stays 1: y := 3x + y
    prog.addComp(c);
    prog.addPassEnd();
    auto h = rt.accPlan(prog);
    rt.accExecute(h);
    rt.accDestroy(h);
    for (std::int64_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(y[i], 3.0f * static_cast<float>(i) + 1.0f);
    rt.memFree(x);
    rt.memFree(y);
}

} // namespace
} // namespace mealib::runtime
