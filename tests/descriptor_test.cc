// Tests for the accelerator descriptor binary format (CR/IR/PR).

#include <gtest/gtest.h>

#include "accel/descriptor.hh"
#include "common/logging.hh"

namespace mealib::accel {
namespace {

OpCall
sampleCall(AccelKind kind)
{
    OpCall c;
    c.kind = kind;
    c.n = 4096;
    c.m = kind == AccelKind::GEMV || kind == AccelKind::RESHP ? 128 : 1;
    c.k = kind == AccelKind::SPMV ? 9999 : 0;
    c.inc0 = 2;
    c.inc1 = -3;
    c.alpha = 1.5f;
    c.beta = -0.25f;
    c.complexData = kind == AccelKind::FFT;
    c.conjugate = kind == AccelKind::DOT;
    c.fftDir = 1;
    c.resampleKind = 2;
    c.in0 = {0x1000, {8, 16, 0, -8}};
    c.in1 = {0x2000, {4, 0, 0, 0}};
    c.in2 = {0x3000, {0, 0, 0, 0}};
    c.in3 = {0x4000, {1, 2, 3, 4}};
    c.out = {0x5000, {64, 0, 0, 0}};
    return c;
}

DescriptorProgram
sampleProgram()
{
    DescriptorProgram p;
    LoopSpec loop;
    loop.dims = {128, 4, 1, 1};
    p.addLoop(loop, 3);
    p.addComp(sampleCall(AccelKind::RESHP));
    p.addComp(sampleCall(AccelKind::FFT));
    p.addPassEnd();
    p.addComp(sampleCall(AccelKind::DOT));
    p.addPassEnd();
    return p;
}

TEST(Descriptor, EncodeDecodeRoundTrip)
{
    DescriptorProgram p = sampleProgram();
    std::vector<std::uint8_t> image = encode(p);
    DescriptorProgram q = decode(image.data(), image.size());

    ASSERT_EQ(q.instrs.size(), p.instrs.size());
    for (std::size_t i = 0; i < p.instrs.size(); ++i) {
        const Instr &a = p.instrs[i];
        const Instr &b = q.instrs[i];
        EXPECT_EQ(static_cast<int>(a.type), static_cast<int>(b.type));
        if (a.type == Instr::Type::Loop) {
            EXPECT_EQ(a.loop.dims, b.loop.dims);
            EXPECT_EQ(a.bodyCount, b.bodyCount);
        }
        if (a.type == Instr::Type::Comp) {
            EXPECT_EQ(a.call.kind, b.call.kind);
            EXPECT_EQ(a.call.n, b.call.n);
            EXPECT_EQ(a.call.m, b.call.m);
            EXPECT_EQ(a.call.k, b.call.k);
            EXPECT_EQ(a.call.inc0, b.call.inc0);
            EXPECT_EQ(a.call.inc1, b.call.inc1);
            EXPECT_FLOAT_EQ(a.call.alpha, b.call.alpha);
            EXPECT_FLOAT_EQ(a.call.beta, b.call.beta);
            EXPECT_EQ(a.call.complexData, b.call.complexData);
            EXPECT_EQ(a.call.conjugate, b.call.conjugate);
            EXPECT_EQ(a.call.fftDir, b.call.fftDir);
            EXPECT_EQ(a.call.resampleKind, b.call.resampleKind);
            EXPECT_EQ(a.call.in0.base, b.call.in0.base);
            EXPECT_EQ(a.call.in0.stride, b.call.in0.stride);
            EXPECT_EQ(a.call.in3.stride, b.call.in3.stride);
            EXPECT_EQ(a.call.out.base, b.call.out.base);
        }
    }
}

TEST(Descriptor, CommandWordReadWrite)
{
    std::vector<std::uint8_t> image = encode(sampleProgram());
    EXPECT_EQ(readCommand(image.data(), image.size()), Command::Idle);
    writeCommand(image.data(), image.size(), Command::Start);
    EXPECT_EQ(readCommand(image.data(), image.size()), Command::Start);
    // Writing the CR must not disturb the program.
    EXPECT_NO_THROW(decode(image.data(), image.size()));
}

TEST(Descriptor, ExpandedCompCountMultipliesLoops)
{
    DescriptorProgram p = sampleProgram();
    // Loop covers 2 comps x (128*4) iterations, plus 1 bare comp.
    EXPECT_EQ(p.expandedCompCount(), 2u * 512u + 1u);
}

TEST(Descriptor, EmptyProgramIsFatal)
{
    DescriptorProgram p;
    EXPECT_THROW(encode(p), FatalError);
}

TEST(Descriptor, MissingPassEndIsFatal)
{
    DescriptorProgram p;
    p.addComp(sampleCall(AccelKind::AXPY));
    EXPECT_THROW(encode(p), FatalError);
}

TEST(Descriptor, LoopBodyOverrunIsFatal)
{
    DescriptorProgram p;
    LoopSpec loop;
    p.addLoop(loop, 5); // body claims 5 instrs but only 2 follow
    p.addComp(sampleCall(AccelKind::AXPY));
    p.addPassEnd();
    EXPECT_THROW(encode(p), FatalError);
}

TEST(Descriptor, NestedLoopIsFatal)
{
    DescriptorProgram p;
    LoopSpec loop;
    p.addLoop(loop, 3);
    p.addLoop(loop, 1);
    p.addComp(sampleCall(AccelKind::AXPY));
    p.addPassEnd();
    EXPECT_THROW(encode(p), FatalError);
}

TEST(Descriptor, TruncatedImageIsFatal)
{
    std::vector<std::uint8_t> image = encode(sampleProgram());
    EXPECT_THROW(decode(image.data(), image.size() / 2), FatalError);
    EXPECT_THROW(decode(image.data(), 8), FatalError);
}

TEST(Descriptor, CorruptOpcodeIsFatal)
{
    std::vector<std::uint8_t> image = encode(sampleProgram());
    image[kCrBytes] = 0x7f; // first IR instruction's opcode byte
    EXPECT_THROW(decode(image.data(), image.size()), FatalError);
}

TEST(Operand, StrideAddressing)
{
    OperandRef op{1000, {8, 100, 0, -4}};
    EXPECT_EQ(op.at({0, 0, 0, 0}), 1000u);
    EXPECT_EQ(op.at({2, 1, 0, 0}), 1000u + 16 + 100);
    EXPECT_EQ(op.at({0, 0, 0, 3}), 1000u - 12);
}

TEST(LoopSpec, IterationProduct)
{
    LoopSpec l;
    EXPECT_EQ(l.iterations(), 1u);
    l.dims = {4, 8, 2, 1};
    EXPECT_EQ(l.iterations(), 64u);
}

} // namespace
} // namespace mealib::accel
