// Tests for the DRAM page-policy and refresh extensions.

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/params.hh"
#include "dram/stack.hh"
#include "dram/tracegen.hh"
#include "dram/vault.hh"

namespace mealib::dram {
namespace {

Trace
linearTrace(const DramParams &p, std::uint64_t bytes)
{
    TraceBuilder tb(p, 64_MiB);
    tb.addLinear(0, bytes, false);
    return tb.build();
}

Trace
randomTrace(const DramParams &p, std::uint64_t bytes, std::uint64_t seed)
{
    TraceBuilder tb(p, 64_MiB);
    Rng rng(seed);
    tb.addGather(0, 1_GiB, bytes / p.timing.burstBytes,
                 static_cast<std::uint32_t>(p.timing.burstBytes), false,
                 rng);
    return tb.build();
}

TEST(PagePolicy, OpenBeatsClosedOnSequentialStreams)
{
    DramParams p = hmcStack();
    Stack open(p, PagePolicy::Open);
    Stack closed(p, PagePolicy::Closed);
    Trace t = linearTrace(p, 8_MiB);
    double t_open = open.run(t).seconds;
    double t_closed = closed.run(t).seconds;
    EXPECT_LT(t_open, t_closed);
}

TEST(PagePolicy, ClosedCompetitiveOnRandomStreams)
{
    // Random traffic gets no reuse out of open rows; auto-precharge
    // hides tRP behind the next access, so closed-page must be at least
    // as fast (within noise) on a pure random stream.
    DramParams p = hmcStack();
    Stack open(p, PagePolicy::Open);
    Stack closed(p, PagePolicy::Closed);
    Trace t = randomTrace(p, 4_MiB, 7);
    double t_open = open.run(t).seconds;
    double t_closed = closed.run(t).seconds;
    EXPECT_LT(t_closed, t_open * 1.1);
}

TEST(PagePolicy, ClosedNeverHitsRows)
{
    DramParams p = hmcStack();
    Stack closed(p, PagePolicy::Closed);
    RunStats r = closed.run(linearTrace(p, 1_MiB));
    EXPECT_EQ(r.rowHits, 0u);
    EXPECT_EQ(r.rowMisses, r.activates);
}

TEST(Refresh, CountsProportionalToBusyTime)
{
    DramParams p = hmcStack();
    Stack s(p);
    RunStats small = s.run(linearTrace(p, 2_MiB));
    RunStats large = s.run(linearTrace(p, 16_MiB));
    EXPECT_GT(large.refreshes, small.refreshes);
}

TEST(Refresh, DisablingRefreshSpeedsThingsUp)
{
    DramParams with = hmcStack();
    DramParams without = hmcStack();
    without.timing.tREFI = 0;
    Stack sw(with), sn(without);
    Trace t = linearTrace(with, 16_MiB);
    RunStats rw = sw.run(t);
    RunStats rn = sn.run(t);
    EXPECT_GT(rw.seconds, rn.seconds);
    EXPECT_EQ(rn.refreshes, 0u);
    // tRFC/tREFI = 60/3900 => ~1.5% overhead; sanity-check the band.
    EXPECT_LT(rw.seconds / rn.seconds, 1.05);
}

TEST(Refresh, AddsEnergy)
{
    DramParams with = hmcStack();
    DramParams without = hmcStack();
    without.timing.tREFI = 0;
    Stack sw(with), sn(without);
    Trace t = linearTrace(with, 16_MiB);
    EXPECT_GT(sw.run(t).energyJ, sn.run(t).energyJ);
}

TEST(Refresh, Ddr3PaysMoreThanHmc)
{
    // 350 ns tRFC every 7.8 us on DDR3 vs 60 ns every 3.9 us on the
    // fine-grained 3D stack: the relative refresh tax is higher on DDR3.
    DramParams hmc = hmcStack();
    DramParams ddr = ddr3(2);
    double hmc_tax = static_cast<double>(hmc.timing.tRFC) /
                     static_cast<double>(hmc.timing.tREFI);
    double ddr_tax = static_cast<double>(ddr.timing.tRFC) /
                     static_cast<double>(ddr.timing.tREFI);
    EXPECT_GT(ddr_tax, hmc_tax);
}

} // namespace
} // namespace mealib::dram
