// Integration tests for the MEALib runtime: shared memory management,
// descriptor execution through the full plan/execute/destroy flow, and
// the functional correctness of accelerator-executed kernels.

#include <cmath>
#include <complex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "minimkl/fft.hh"
#include "minimkl/sparse.hh"
#include "runtime/runtime.hh"

namespace mealib::runtime {
namespace {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::LoopSpec;
using accel::OpCall;
using mkl::cfloat;

RuntimeConfig
smallConfig()
{
    RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    return cfg;
}

TEST(RuntimeConfig, ValidationRejectsInconsistentConfigs)
{
    RuntimeConfig cfg = smallConfig();
    EXPECT_TRUE(cfg.validate().ok());

    // validate() reports instead of throwing, so an embedding system
    // can reject a bad config and survive; the runtime constructor
    // turns the report into a recoverable MealibError.
    RuntimeConfig no_stacks = smallConfig();
    no_stacks.numStacks = 0;
    EXPECT_EQ(no_stacks.validate().code(), ErrorCode::InvalidArgument);
    EXPECT_THROW(MealibRuntime{no_stacks}, MealibError);

    RuntimeConfig no_arena = smallConfig();
    no_arena.backingBytes = 0;
    EXPECT_EQ(no_arena.validate().code(), ErrorCode::InvalidArgument);
    EXPECT_THROW(MealibRuntime{no_arena}, MealibError);

    RuntimeConfig no_cmd = smallConfig();
    no_cmd.commandBytes = 0;
    EXPECT_EQ(no_cmd.validate().code(), ErrorCode::InvalidArgument);
    EXPECT_THROW(MealibRuntime{no_cmd}, MealibError);

    // Command space must leave room in stack 0's share of the arena.
    RuntimeConfig swallowed = smallConfig();
    swallowed.numStacks = 4;
    swallowed.commandBytes = swallowed.backingBytes / 4;
    EXPECT_EQ(swallowed.validate().code(), ErrorCode::InvalidArgument);
    EXPECT_THROW(MealibRuntime{swallowed}, MealibError);

    RuntimeConfig no_depth = smallConfig();
    no_depth.queueDepth = 0;
    EXPECT_EQ(no_depth.validate().code(), ErrorCode::InvalidArgument);
    EXPECT_THROW(MealibRuntime{no_depth}, MealibError);
}

TEST(RuntimeConfig, ValidationMessagesAreDescriptive)
{
    RuntimeConfig bad = smallConfig();
    bad.numStacks = 0;
    const Status s = bad.validate();
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("numStacks"), std::string::npos);
    try {
        MealibRuntime rt{bad};
        FAIL() << "expected MealibError";
    } catch (const MealibError &e) {
        EXPECT_NE(std::string(e.what()).find("numStacks"),
                  std::string::npos);
    }
}

TEST(RuntimeConfig, ValidationRejectsBadIntegrityAndHealthSettings)
{
    RuntimeConfig bad_price = smallConfig();
    bad_price.integrity.verifyTransfers = true;
    bad_price.integrity.checksumSecondsPerByte = -1.0;
    EXPECT_EQ(bad_price.validate().code(),
              ErrorCode::InvalidArgument);

    RuntimeConfig bad_journal = smallConfig();
    bad_journal.checkpoint.intervalComps = 4;
    bad_journal.checkpoint.journalJPerByte = -1.0;
    EXPECT_EQ(bad_journal.validate().code(),
              ErrorCode::InvalidArgument);

    RuntimeConfig bad_threshold = smallConfig();
    bad_threshold.health.quarantineThreshold = 1.5;
    EXPECT_EQ(bad_threshold.validate().code(),
              ErrorCode::InvalidArgument);
    EXPECT_THROW(MealibRuntime{bad_threshold}, MealibError);

    RuntimeConfig bad_window = smallConfig();
    bad_window.health.quarantineThreshold = 0.5;
    bad_window.health.windowCommands = 0;
    EXPECT_EQ(bad_window.validate().code(),
              ErrorCode::InvalidArgument);
}

TEST(Runtime, MemAllocVirtualPhysicalRoundTrip)
{
    MealibRuntime rt(smallConfig());
    void *p = rt.memAlloc(4096);
    ASSERT_NE(p, nullptr);
    Addr phys = rt.physOf(p);
    EXPECT_EQ(rt.virtOf(phys), p);
    // Data space starts after the command space.
    EXPECT_GE(phys, 1_MiB);
    rt.memFree(p);
}

TEST(Runtime, PhysOfForeignPointerIsFatal)
{
    MealibRuntime rt(smallConfig());
    int x = 0;
    EXPECT_THROW(rt.physOf(&x), FatalError);
}

TEST(Runtime, AxpyThroughDescriptor)
{
    MealibRuntime rt(smallConfig());
    const std::int64_t n = 10000;
    auto *x = static_cast<float *>(rt.memAlloc(n * 4));
    auto *y = static_cast<float *>(rt.memAlloc(n * 4));
    for (std::int64_t i = 0; i < n; ++i) {
        x[i] = static_cast<float>(i);
        y[i] = 1.0f;
    }

    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = n;
    c.alpha = 2.0f;
    c.beta = 1.0f; // y := 2x + y
    c.in0.base = rt.physOf(x);
    c.out.base = rt.physOf(y);

    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    AccPlanHandle h = rt.accPlan(prog);
    accel::ExecStats es = rt.accExecute(h);
    rt.accDestroy(h);

    for (std::int64_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(y[i], 2.0f * static_cast<float>(i) + 1.0f)
            << "i=" << i;
    EXPECT_GT(es.total.seconds, 0.0);
    EXPECT_GT(es.total.joules, 0.0);
    EXPECT_EQ(es.compsExecuted, 1u);
}

TEST(Runtime, DotWithLoopStrides)
{
    // 8 dot products over stride-separated slices via one LOOP
    // descriptor — the compacted STAP pattern.
    MealibRuntime rt(smallConfig());
    const std::int64_t n = 256, iters = 8;
    auto *x = static_cast<float *>(rt.memAlloc(n * iters * 4));
    auto *y = static_cast<float *>(rt.memAlloc(n * iters * 4));
    auto *r = static_cast<float *>(rt.memAlloc(iters * 4));
    Rng rng(1);
    for (std::int64_t i = 0; i < n * iters; ++i) {
        x[i] = rng.uniform(-1.0f, 1.0f);
        y[i] = rng.uniform(-1.0f, 1.0f);
    }

    OpCall c;
    c.kind = AccelKind::DOT;
    c.n = n;
    c.in0 = {rt.physOf(x), {n * 4, 0, 0, 0}};
    c.in1 = {rt.physOf(y), {n * 4, 0, 0, 0}};
    c.out = {rt.physOf(r), {4, 0, 0, 0}};

    LoopSpec loop;
    loop.dims = {static_cast<std::uint32_t>(iters), 1, 1, 1};
    DescriptorProgram prog;
    prog.addLoop(loop, 2);
    prog.addComp(c);
    prog.addPassEnd();

    AccPlanHandle h = rt.accPlan(prog);
    accel::ExecStats es = rt.accExecute(h);
    rt.accDestroy(h);
    EXPECT_EQ(es.compsExecuted, static_cast<std::uint64_t>(iters));

    for (std::int64_t it = 0; it < iters; ++it) {
        double expect = 0.0;
        for (std::int64_t i = 0; i < n; ++i)
            expect += static_cast<double>(x[it * n + i]) *
                      static_cast<double>(y[it * n + i]);
        EXPECT_NEAR(r[it], expect, 1e-3) << "iteration " << it;
    }
}

TEST(Runtime, ChainedReshapeFftPass)
{
    // RESHP -> FFT chained in one PASS: transpose a matrix, then FFT its
    // rows (the Listing 1 data-copy + FFT pattern).
    MealibRuntime rt(smallConfig());
    const std::int64_t r = 16, cdim = 64;
    auto *in = static_cast<cfloat *>(rt.memAlloc(r * cdim * 8));
    auto *mid = static_cast<cfloat *>(rt.memAlloc(r * cdim * 8));
    auto *out = static_cast<cfloat *>(rt.memAlloc(r * cdim * 8));
    Rng rng(2);
    for (std::int64_t i = 0; i < r * cdim; ++i)
        in[i] = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};

    OpCall reshape;
    reshape.kind = AccelKind::RESHP;
    reshape.m = r;
    reshape.n = cdim;
    reshape.complexData = true;
    reshape.in0.base = rt.physOf(in);
    reshape.out.base = rt.physOf(mid);

    OpCall fft;
    fft.kind = AccelKind::FFT;
    fft.n = r;             // rows of the transposed matrix have length r
    fft.m = cdim;          // one transform per transposed row
    fft.complexData = true;
    fft.in0.base = rt.physOf(mid);
    fft.out.base = rt.physOf(out);

    DescriptorProgram prog;
    prog.addComp(reshape);
    prog.addComp(fft);
    prog.addPassEnd();
    AccPlanHandle h = rt.accPlan(prog);
    rt.accExecute(h);
    rt.accDestroy(h);

    // Oracle: transpose then row FFTs.
    std::vector<cfloat> ref_mid(static_cast<std::size_t>(r * cdim));
    for (std::int64_t i = 0; i < r; ++i)
        for (std::int64_t j = 0; j < cdim; ++j)
            ref_mid[static_cast<std::size_t>(j * r + i)] =
                in[i * cdim + j];
    auto plan = mkl::FftPlan::dft1dBatched(r, cdim, r,
                                           mkl::FftDirection::Forward);
    std::vector<cfloat> ref_out(ref_mid.size());
    plan.execute(ref_mid.data(), ref_out.data());
    for (std::size_t i = 0; i < ref_out.size(); ++i)
        EXPECT_NEAR(std::abs(out[i] - ref_out[i]), 0.0f, 1e-3f);
}

TEST(Runtime, SpmvThroughDescriptor)
{
    MealibRuntime rt(smallConfig());
    Rng rng(3);
    mkl::CsrMatrix mat = mkl::randomGeometricGraph(500, 8.0, rng);
    const std::int64_t rows = mat.rows;
    const std::int64_t nnz = mat.nnz();

    auto *rowptr =
        static_cast<std::int64_t *>(rt.memAlloc((rows + 1) * 8));
    auto *colidx = static_cast<std::int32_t *>(rt.memAlloc(nnz * 4));
    auto *vals = static_cast<float *>(rt.memAlloc(nnz * 4));
    auto *x = static_cast<float *>(rt.memAlloc(rows * 4));
    auto *y = static_cast<float *>(rt.memAlloc(rows * 4));
    std::copy(mat.rowPtr.begin(), mat.rowPtr.end(), rowptr);
    std::copy(mat.colIdx.begin(), mat.colIdx.end(), colidx);
    std::copy(mat.vals.begin(), mat.vals.end(), vals);
    for (std::int64_t i = 0; i < rows; ++i)
        x[i] = rng.uniform(-1.0f, 1.0f);

    OpCall c;
    c.kind = AccelKind::SPMV;
    c.m = static_cast<std::uint64_t>(rows);
    c.n = static_cast<std::uint64_t>(rows);
    c.k = static_cast<std::uint64_t>(nnz);
    c.in0.base = rt.physOf(rowptr);
    c.in1.base = rt.physOf(colidx);
    c.in2.base = rt.physOf(vals);
    c.in3.base = rt.physOf(x);
    c.out.base = rt.physOf(y);

    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    AccPlanHandle h = rt.accPlan(prog);
    rt.accExecute(h);
    rt.accDestroy(h);

    std::vector<float> ref(static_cast<std::size_t>(rows));
    mkl::scsrmv(mat, x, ref.data());
    for (std::int64_t i = 0; i < rows; ++i)
        EXPECT_NEAR(y[i], ref[static_cast<std::size_t>(i)], 1e-4f);
}

TEST(Runtime, InvocationCostsAccumulate)
{
    MealibRuntime rt(smallConfig());
    auto *x = static_cast<float *>(rt.memAlloc(1024 * 4));
    auto *y = static_cast<float *>(rt.memAlloc(1024 * 4));
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = 1024;
    c.in0.base = rt.physOf(x);
    c.out.base = rt.physOf(y);
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();

    AccPlanHandle h = rt.accPlan(prog);
    rt.accExecute(h);
    double inv1 = rt.accounting().invocation.seconds;
    rt.accExecute(h); // plans are reusable (Listing 2)
    double inv2 = rt.accounting().invocation.seconds;
    rt.accDestroy(h);

    EXPECT_GT(inv1, 0.0);
    EXPECT_NEAR(inv2, 2.0 * inv1, inv1 * 0.01);
    // Tiny op: the wbinvd flush should dominate the accelerator time.
    EXPECT_GT(rt.accounting().invocation.seconds,
              rt.accounting().accel.seconds);
}

TEST(Runtime, DestroyedPlanCannotExecute)
{
    MealibRuntime rt(smallConfig());
    auto *x = static_cast<float *>(rt.memAlloc(64));
    auto *y = static_cast<float *>(rt.memAlloc(64));
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = 16;
    c.in0.base = rt.physOf(x);
    c.out.base = rt.physOf(y);
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    AccPlanHandle h = rt.accPlan(prog);
    rt.accDestroy(h);
    EXPECT_THROW(rt.accExecute(h), FatalError);
    EXPECT_THROW(rt.accDestroy(h), FatalError);
}

TEST(Runtime, StackOwnershipReleasedAfterExecute)
{
    MealibRuntime rt(smallConfig());
    auto *x = static_cast<float *>(rt.memAlloc(64));
    auto *y = static_cast<float *>(rt.memAlloc(64));
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = 16;
    c.in0.base = rt.physOf(x);
    c.out.base = rt.physOf(y);
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    AccPlanHandle h = rt.accPlan(prog);
    rt.accExecute(h);
    EXPECT_EQ(rt.stack().owner(), dram::Owner::None);
    // The CPU can re-acquire between invocations.
    rt.stack().acquire(dram::Owner::Cpu);
    rt.stack().release(dram::Owner::Cpu);
    rt.accDestroy(h);
}

TEST(Runtime, HostWorkAccountsSeparately)
{
    MealibRuntime rt(smallConfig());
    host::KernelProfile p;
    p.name = "cherk";
    p.flops = 1e9;
    p.bytesRead = 1e6;
    Cost c = rt.runOnHost(p);
    EXPECT_GT(c.seconds, 0.0);
    EXPECT_DOUBLE_EQ(rt.accounting().host.seconds, c.seconds);
    EXPECT_DOUBLE_EQ(rt.accounting().accel.seconds, 0.0);
}

TEST(Runtime, LoopDescriptorCheaperThanManyDescriptors)
{
    // The Fig. 12b claim in miniature: N invocations through one LOOP
    // descriptor must cost less than N separate invocations.
    const std::int64_t n = 4096;
    const std::uint32_t iters = 16;

    MealibRuntime rt_hw(smallConfig());
    auto *x = static_cast<float *>(rt_hw.memAlloc(n * iters * 4));
    auto *y = static_cast<float *>(rt_hw.memAlloc(n * iters * 4));
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = static_cast<std::uint64_t>(n);
    c.in0 = {rt_hw.physOf(x), {n * 4, 0, 0, 0}};
    c.out = {rt_hw.physOf(y), {n * 4, 0, 0, 0}};

    DescriptorProgram loop_prog;
    LoopSpec loop;
    loop.dims = {iters, 1, 1, 1};
    loop_prog.addLoop(loop, 2);
    loop_prog.addComp(c);
    loop_prog.addPassEnd();
    AccPlanHandle h = rt_hw.accPlan(loop_prog);
    double t_hw = rt_hw.accExecute(h).total.seconds;
    rt_hw.accDestroy(h);

    MealibRuntime rt_sw(smallConfig());
    auto *x2 = static_cast<float *>(rt_sw.memAlloc(n * iters * 4));
    auto *y2 = static_cast<float *>(rt_sw.memAlloc(n * iters * 4));
    double t_sw = 0.0;
    for (std::uint32_t i = 0; i < iters; ++i) {
        OpCall ci;
        ci.kind = AccelKind::AXPY;
        ci.n = static_cast<std::uint64_t>(n);
        ci.in0.base = rt_sw.physOf(x2 + i * n);
        ci.out.base = rt_sw.physOf(y2 + i * n);
        DescriptorProgram p;
        p.addComp(ci);
        p.addPassEnd();
        AccPlanHandle hi = rt_sw.accPlan(p);
        t_sw += rt_sw.accExecute(hi).total.seconds;
        rt_sw.accDestroy(hi);
    }
    EXPECT_GT(t_sw, 2.0 * t_hw);
}

// --- cross-layer energy ledger ---------------------------------------

namespace {

/** One small AXPY descriptor executed on @p rt. */
void
runLedgerAxpy(MealibRuntime &rt)
{
    const std::int64_t n = 8192;
    auto *x = static_cast<float *>(rt.memAlloc(n * 4));
    auto *y = static_cast<float *>(rt.memAlloc(n * 4));
    for (std::int64_t i = 0; i < n; ++i) {
        x[i] = static_cast<float>(i);
        y[i] = 0.5f;
    }
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = n;
    c.alpha = 3.0f;
    c.beta = 1.0f;
    c.in0.base = rt.physOf(x);
    c.out.base = rt.physOf(y);
    DescriptorProgram prog;
    prog.addComp(c);
    prog.addPassEnd();
    AccPlanHandle h = rt.accPlan(prog);
    rt.accExecute(h);
    rt.accDestroy(h);
}

} // namespace

TEST(Ledger, TotalsMirrorAccountingExactly)
{
    // The runtime posts to its ledger at exactly the points it updates
    // RuntimeAccounting, so the two views of the run agree bit for bit.
    MealibRuntime rt(smallConfig());
    runLedgerAxpy(rt);

    host::KernelProfile prof;
    prof.name = "stage";
    prof.flops = 1e8;
    prof.bytesRead = 1 << 24;
    prof.bytesWritten = 1 << 22;
    rt.runOnHost(prof);

    const Cost acct = rt.accounting().total();
    const Cost ledger = rt.ledger().total();
    EXPECT_DOUBLE_EQ(ledger.seconds, acct.seconds);
    EXPECT_DOUBLE_EQ(ledger.joules, acct.joules);
    EXPECT_GT(ledger.joules, 0.0);

    // Track view: accel + invocation + host partition the total.
    EXPECT_DOUBLE_EQ(rt.ledger().track("accel").seconds,
                     rt.accounting().accel.seconds);
    EXPECT_DOUBLE_EQ(rt.ledger().track("host").joules,
                     rt.accounting().host.joules);
    EXPECT_DOUBLE_EQ(rt.ledger().track("invocation").joules,
                     rt.accounting().invocation.joules);

    // Component attribution (dram/logic/noc/host/invocation/...) is a
    // partition of the same joules.
    double attributed = 0.0;
    for (const auto &[name, j] :
         rt.ledger().energyByComponent().parts())
        attributed += j;
    EXPECT_NEAR(attributed, ledger.joules, 1e-12 * ledger.joules);
}

TEST(Ledger, ResetAccountingClearsTheLedger)
{
    MealibRuntime rt(smallConfig());
    runLedgerAxpy(rt);
    ASSERT_GT(rt.ledger().total().joules, 0.0);
    rt.resetAccounting();
    EXPECT_DOUBLE_EQ(rt.ledger().total().seconds, 0.0);
    EXPECT_DOUBLE_EQ(rt.ledger().total().joules, 0.0);
    EXPECT_TRUE(rt.ledger().tracks().empty());
}

TEST(Ledger, FaultFallbackPostsToTheHostTrack)
{
    // Every command hangs with a zero retry budget: the work completes
    // on the host and the recovery cost lands on the ledger's host
    // track, keeping the ledger == accounting identity intact.
    RuntimeConfig cfg = smallConfig();
    cfg.fault.seed = 7;
    cfg.fault.hangRate = 1.0;
    cfg.retry.maxRetries = 0;
    MealibRuntime rt(cfg);
    runLedgerAxpy(rt);

    ASSERT_GT(rt.accounting().fallbackCount, 0u);
    const Cost acct = rt.accounting().total();
    const Cost ledger = rt.ledger().total();
    EXPECT_DOUBLE_EQ(ledger.seconds, acct.seconds);
    EXPECT_DOUBLE_EQ(ledger.joules, acct.joules);
    auto ev = rt.ledger().events().find("host/fault_fallback");
    ASSERT_NE(ev, rt.ledger().events().end());
    EXPECT_GE(ev->second.count, 1u);
    EXPECT_GT(rt.ledger().track("host").joules, 0.0);
}

} // namespace
} // namespace mealib::runtime
