// Unit tests for the common substrate: logging, units, RNG, stats, CLI.

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/units.hh"

namespace mealib {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant"), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "nope"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Logging, MessageCarriesStreamedParts)
{
    try {
        fatal("value=", 7, " name=", "x");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=x");
    }
}

TEST(Units, ByteLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024u);
    EXPECT_EQ(4_GiB, 4ull << 30);
}

TEST(Units, FrequencyAndBandwidthLiterals)
{
    EXPECT_DOUBLE_EQ(3.5_GHz, 3.5e9);
    EXPECT_DOUBLE_EQ(25.6_GBps, 25.6e9);
    EXPECT_DOUBLE_EQ(1.0_ns, 1e-9);
    EXPECT_DOUBLE_EQ(1.0_pJ, 1e-12);
}

TEST(Units, CostComposition)
{
    Cost a{1.0, 10.0};
    Cost b{2.0, 5.0};
    Cost s = a + b;
    EXPECT_DOUBLE_EQ(s.seconds, 3.0);
    EXPECT_DOUBLE_EQ(s.joules, 15.0);

    Cost o = overlap(a, b);
    EXPECT_DOUBLE_EQ(o.seconds, 2.0);
    EXPECT_DOUBLE_EQ(o.joules, 15.0);
}

TEST(Units, CostDerivedMetrics)
{
    Cost c{2.0, 10.0};
    EXPECT_DOUBLE_EQ(c.watts(), 5.0);
    EXPECT_DOUBLE_EQ(c.edp(), 20.0);
    EXPECT_DOUBLE_EQ(Cost{}.watts(), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Stats, ScalarBasics)
{
    ScalarStat s;
    s.sample(1.0);
    s.sample(3.0);
    s.sample(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(Stats, EmptyScalarIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, BreakdownFractions)
{
    Breakdown b;
    b.add("host", 75.0);
    b.add("accel", 25.0);
    EXPECT_DOUBLE_EQ(b.total(), 100.0);
    EXPECT_DOUBLE_EQ(b.fraction("host"), 0.75);
    EXPECT_DOUBLE_EQ(b.get("missing"), 0.0);
}

TEST(Stats, BreakdownAccumulates)
{
    Breakdown b;
    b.add("x", 1.0);
    b.add("x", 2.0);
    EXPECT_DOUBLE_EQ(b.get("x"), 3.0);
}

TEST(Cli, FlagForms)
{
    const char *argv[] = {"prog", "--verbose", "--size=128",
                          "--name", "foo", "positional"};
    Cli cli(6, argv);
    EXPECT_TRUE(cli.has("verbose"));
    EXPECT_FALSE(cli.has("absent"));
    EXPECT_EQ(cli.getInt("size", 0), 128);
    EXPECT_EQ(cli.get("name", ""), "foo");
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    Cli cli(1, argv);
    EXPECT_EQ(cli.getInt("n", 42), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("f", 2.5), 2.5);
    EXPECT_EQ(cli.get("s", "dft"), "dft");
}

TEST(Cli, BadIntegerIsFatal)
{
    const char *argv[] = {"prog", "--n=abc"};
    Cli cli(2, argv);
    EXPECT_THROW(cli.getInt("n", 0), FatalError);
}

} // namespace
} // namespace mealib
