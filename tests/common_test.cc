// Unit tests for the common substrate: logging, units, RNG, stats, CLI.

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/ledger.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/units.hh"

namespace mealib {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant"), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "nope"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Logging, MessageCarriesStreamedParts)
{
    try {
        fatal("value=", 7, " name=", "x");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=x");
    }
}

TEST(Units, ByteLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024u);
    EXPECT_EQ(4_GiB, 4ull << 30);
}

TEST(Units, FrequencyAndBandwidthLiterals)
{
    EXPECT_DOUBLE_EQ(3.5_GHz, 3.5e9);
    EXPECT_DOUBLE_EQ(25.6_GBps, 25.6e9);
    EXPECT_DOUBLE_EQ(1.0_ns, 1e-9);
    EXPECT_DOUBLE_EQ(1.0_pJ, 1e-12);
}

TEST(Units, CostComposition)
{
    Cost a{1.0, 10.0};
    Cost b{2.0, 5.0};
    Cost s = a + b;
    EXPECT_DOUBLE_EQ(s.seconds, 3.0);
    EXPECT_DOUBLE_EQ(s.joules, 15.0);

    Cost o = overlap(a, b);
    EXPECT_DOUBLE_EQ(o.seconds, 2.0);
    EXPECT_DOUBLE_EQ(o.joules, 15.0);
}

TEST(Units, CostDerivedMetrics)
{
    Cost c{2.0, 10.0};
    EXPECT_DOUBLE_EQ(c.watts(), 5.0);
    EXPECT_DOUBLE_EQ(c.edp(), 20.0);
    EXPECT_DOUBLE_EQ(Cost{}.watts(), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Stats, ScalarBasics)
{
    ScalarStat s;
    s.sample(1.0);
    s.sample(3.0);
    s.sample(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(Stats, EmptyScalarIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, BreakdownFractions)
{
    Breakdown b;
    b.add("host", 75.0);
    b.add("accel", 25.0);
    EXPECT_DOUBLE_EQ(b.total(), 100.0);
    EXPECT_DOUBLE_EQ(b.fraction("host"), 0.75);
    EXPECT_DOUBLE_EQ(b.get("missing"), 0.0);
}

TEST(Stats, BreakdownAccumulates)
{
    Breakdown b;
    b.add("x", 1.0);
    b.add("x", 2.0);
    EXPECT_DOUBLE_EQ(b.get("x"), 3.0);
}

TEST(Cli, FlagForms)
{
    const char *argv[] = {"prog", "--verbose", "--size=128",
                          "--name", "foo", "positional"};
    Cli cli(6, argv);
    EXPECT_TRUE(cli.has("verbose"));
    EXPECT_FALSE(cli.has("absent"));
    EXPECT_EQ(cli.getInt("size", 0), 128);
    EXPECT_EQ(cli.get("name", ""), "foo");
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    Cli cli(1, argv);
    EXPECT_EQ(cli.getInt("n", 42), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("f", 2.5), 2.5);
    EXPECT_EQ(cli.get("s", "dft"), "dft");
}

TEST(Cli, BadIntegerIsFatal)
{
    const char *argv[] = {"prog", "--n=abc"};
    Cli cli(2, argv);
    EXPECT_THROW(cli.getInt("n", 0), FatalError);
}

TEST(Units, EnergyAndPowerLiterals)
{
    EXPECT_DOUBLE_EQ(4.0_pJ, 4.0e-12);
    EXPECT_DOUBLE_EQ(0.7_nJ, 0.7e-9);
    EXPECT_DOUBLE_EQ(55.0_mW, 0.055);
    EXPECT_DOUBLE_EQ(20.0_us, 20.0e-6);
    EXPECT_DOUBLE_EQ(1.5_ms, 1.5e-3);
    EXPECT_DOUBLE_EQ(800.0_MHz, 0.8e9);
}

TEST(Units, OverlapTakesMaxTimeAndSumsEnergy)
{
    Cost fast{1.0, 4.0};
    Cost slow{3.0, 2.0};
    Cost o = overlap(fast, slow);
    EXPECT_DOUBLE_EQ(o.seconds, 3.0);
    EXPECT_DOUBLE_EQ(o.joules, 6.0);
    // Commutative, and a zero-cost branch contributes only energy.
    Cost o2 = overlap(slow, fast);
    EXPECT_DOUBLE_EQ(o2.seconds, o.seconds);
    EXPECT_DOUBLE_EQ(o2.joules, o.joules);
    Cost o3 = overlap(fast, Cost{});
    EXPECT_DOUBLE_EQ(o3.seconds, 1.0);
    EXPECT_DOUBLE_EQ(o3.joules, 4.0);
}

TEST(Units, WattsOnZeroLengthIntervalIsZero)
{
    // A zero-length interval has no meaningful average power, even if
    // energy was booked against it (e.g. a package-idle correction).
    EXPECT_DOUBLE_EQ((Cost{0.0, 5.0}.watts()), 0.0);
    EXPECT_DOUBLE_EQ((Cost{0.0, 5.0}.edp()), 0.0);
}

TEST(Ledger, PostAccumulatesTracksAndTotal)
{
    EnergyLedger l;
    l.post("host", {1.0, 2.0}, "kernel");
    l.post("host", {0.5, 1.0}, "kernel");
    l.post("accel", {2.0, 3.0});
    EXPECT_DOUBLE_EQ(l.track("host").seconds, 1.5);
    EXPECT_DOUBLE_EQ(l.track("host").joules, 3.0);
    EXPECT_DOUBLE_EQ(l.total().seconds, 3.5);
    EXPECT_DOUBLE_EQ(l.total().joules, 6.0);
    EXPECT_DOUBLE_EQ(l.track("nope").seconds, 0.0);
    auto it = l.events().find("host/kernel");
    ASSERT_NE(it, l.events().end());
    EXPECT_EQ(it->second.count, 2u);
    EXPECT_DOUBLE_EQ(it->second.cost.joules, 3.0);
}

TEST(Ledger, AttributionNeverChangesTotal)
{
    EnergyLedger l;
    l.post("accel", {1.0, 10.0});
    Cost before = l.total();
    l.attribute("dram", 6.0);
    l.attribute("logic", 3.0);
    l.attribute("noc", 1.0);
    EXPECT_DOUBLE_EQ(l.total().seconds, before.seconds);
    EXPECT_DOUBLE_EQ(l.total().joules, before.joules);
    EXPECT_DOUBLE_EQ(l.energyByComponent().get("dram"), 6.0);
    EXPECT_DOUBLE_EQ(l.energyByComponent().get("logic"), 3.0);
}

TEST(Ledger, NotesAreZeroCostEvents)
{
    EnergyLedger l;
    l.note("dispatch/axpy/accel");
    l.note("dispatch/axpy/accel");
    EXPECT_DOUBLE_EQ(l.total().seconds, 0.0);
    EXPECT_DOUBLE_EQ(l.total().joules, 0.0);
    auto it = l.events().find("dispatch/axpy/accel");
    ASSERT_NE(it, l.events().end());
    EXPECT_EQ(it->second.count, 2u);
}

TEST(Ledger, GflopsPerWattUsesRunTotals)
{
    EnergyLedger l;
    l.post("host", {2.0, 10.0});
    l.addFlops(20e9);
    // 10 GFLOP/s at 5 W average power.
    EXPECT_DOUBLE_EQ(l.gflopsPerWatt(), 2.0);
    EXPECT_DOUBLE_EQ(l.edp(), 20.0);
    EnergyLedger empty;
    EXPECT_DOUBLE_EQ(empty.gflopsPerWatt(), 0.0);
}

TEST(Ledger, ResetClearsEverything)
{
    EnergyLedger l;
    l.post("host", {1.0, 1.0}, "k");
    l.attribute("host", 1.0);
    l.addFlops(1e9);
    l.reset();
    EXPECT_DOUBLE_EQ(l.total().joules, 0.0);
    EXPECT_TRUE(l.tracks().empty());
    EXPECT_TRUE(l.events().empty());
    EXPECT_TRUE(l.energyByComponent().parts().empty());
    EXPECT_DOUBLE_EQ(l.flops(), 0.0);
}

TEST(Ledger, JsonCarriesMachineTracksAndComponents)
{
    EnergyLedger l;
    l.post("accel", {0.25, 1.5}, "execute");
    l.attribute("dram", 1.0);
    l.note("dispatch/dot/host");
    std::string j = l.toJson("haswell4770k");
    EXPECT_NE(j.find("\"machine\": \"haswell4770k\""),
              std::string::npos);
    EXPECT_NE(j.find("\"accel\""), std::string::npos);
    EXPECT_NE(j.find("\"dram\": 1"), std::string::npos);
    EXPECT_NE(j.find("\"dispatch/dot/host\""), std::string::npos);
    EXPECT_NE(j.find("\"gflops_per_watt\""), std::string::npos);
}

} // namespace
} // namespace mealib
