// Tests for Level-3 BLAS: gemm vs oracle, cherk vs gemm, trsm vs
// multiply-back, across layouts and parameter combinations.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "minimkl/blas3.hh"

namespace mealib::mkl {
namespace {

std::vector<float>
randomVec(std::int64_t n, Rng &rng)
{
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

std::vector<cfloat>
randomCVec(std::int64_t n, Rng &rng)
{
    std::vector<cfloat> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    return v;
}

/** Unblocked row-major oracle for C := alpha*op(A)*op(B) + beta*C. */
template <typename T>
void
gemmOracle(Transpose ta, Transpose tb, std::int64_t m, std::int64_t n,
           std::int64_t k, T alpha, const std::vector<T> &a,
           std::int64_t lda, const std::vector<T> &b, std::int64_t ldb,
           T beta, std::vector<T> &c, std::int64_t ldc)
{
    auto conj_of = [](T v) {
        if constexpr (std::is_same_v<T, cfloat>)
            return std::conj(v);
        else
            return v;
    };
    auto elem = [&](const std::vector<T> &mat, std::int64_t ld,
                    Transpose t, std::int64_t i, std::int64_t j) {
        T v = t == Transpose::NoTrans
                  ? mat[static_cast<std::size_t>(i * ld + j)]
                  : mat[static_cast<std::size_t>(j * ld + i)];
        return t == Transpose::ConjTrans ? conj_of(v) : v;
    };
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            T acc{};
            for (std::int64_t p = 0; p < k; ++p)
                acc += elem(a, lda, ta, i, p) * elem(b, ldb, tb, p, j);
            auto idx = static_cast<std::size_t>(i * ldc + j);
            c[idx] = alpha * acc + beta * c[idx];
        }
    }
}

class GemmCombos
    : public ::testing::TestWithParam<std::tuple<Transpose, Transpose>>
{};

TEST_P(GemmCombos, RowMajorMatchesOracle)
{
    auto [ta, tb] = GetParam();
    const std::int64_t m = 9, n = 14, k = 11;
    Rng rng(21);
    std::int64_t lda = ta == Transpose::NoTrans ? k : m;
    std::int64_t ldb = tb == Transpose::NoTrans ? n : k;
    auto a = randomVec(m * k, rng);
    auto b = randomVec(k * n, rng);
    auto c = randomVec(m * n, rng);
    auto c_ref = c;

    sgemm(Order::RowMajor, ta, tb, m, n, k, 1.3f, a.data(), lda, b.data(),
          ldb, 0.4f, c.data(), n);
    gemmOracle(ta, tb, m, n, k, 1.3f, a, lda, b, ldb, 0.4f, c_ref, n);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c[i], c_ref[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    TransCombos, GemmCombos,
    ::testing::Combine(::testing::Values(Transpose::NoTrans,
                                         Transpose::Trans),
                       ::testing::Values(Transpose::NoTrans,
                                         Transpose::Trans)));

TEST(Sgemm, ColMajorAgreesWithRowMajor)
{
    const std::int64_t m = 6, n = 5, k = 4;
    Rng rng(31);
    auto a = randomVec(m * k, rng); // row-major m x k
    auto b = randomVec(k * n, rng);
    std::vector<float> c_rm(m * n, 0.0f);
    sgemm(Order::RowMajor, Transpose::NoTrans, Transpose::NoTrans, m, n,
          k, 1.0f, a.data(), k, b.data(), n, 0.0f, c_rm.data(), n);

    // Build column-major copies of the same logical matrices.
    std::vector<float> a_cm(m * k), b_cm(k * n), c_cm(m * n, 0.0f);
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t p = 0; p < k; ++p)
            a_cm[static_cast<std::size_t>(p * m + i)] =
                a[static_cast<std::size_t>(i * k + p)];
    for (std::int64_t p = 0; p < k; ++p)
        for (std::int64_t j = 0; j < n; ++j)
            b_cm[static_cast<std::size_t>(j * k + p)] =
                b[static_cast<std::size_t>(p * n + j)];
    sgemm(Order::ColMajor, Transpose::NoTrans, Transpose::NoTrans, m, n,
          k, 1.0f, a_cm.data(), m, b_cm.data(), k, 0.0f, c_cm.data(), m);

    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            EXPECT_NEAR(c_rm[static_cast<std::size_t>(i * n + j)],
                        c_cm[static_cast<std::size_t>(j * m + i)], 1e-4f);
}

TEST(Sgemm, BlockingIsTransparentAcrossSizes)
{
    // Sizes straddling the 64-wide block boundary must agree with the
    // oracle (catches blocked-loop edge bugs).
    for (std::int64_t sz : {63, 64, 65, 130}) {
        Rng rng(static_cast<std::uint64_t>(sz));
        auto a = randomVec(sz * sz, rng);
        auto b = randomVec(sz * sz, rng);
        std::vector<float> c(static_cast<std::size_t>(sz * sz), 0.0f);
        auto c_ref = c;
        sgemm(Order::RowMajor, Transpose::NoTrans, Transpose::NoTrans, sz,
              sz, sz, 1.0f, a.data(), sz, b.data(), sz, 0.0f, c.data(),
              sz);
        gemmOracle(Transpose::NoTrans, Transpose::NoTrans, sz, sz, sz,
                   1.0f, a, sz, b, sz, 0.0f, c_ref, sz);
        float max_err = 0.0f;
        for (std::size_t i = 0; i < c.size(); ++i)
            max_err = std::max(max_err, std::fabs(c[i] - c_ref[i]));
        EXPECT_LT(max_err, 1e-3f) << "size " << sz;
    }
}

TEST(Cgemm, ComplexMatchesOracle)
{
    const std::int64_t m = 7, n = 8, k = 6;
    Rng rng(41);
    auto a = randomCVec(m * k, rng);
    auto b = randomCVec(k * n, rng);
    auto c = randomCVec(m * n, rng);
    auto c_ref = c;
    cfloat alpha{0.5f, -0.25f}, beta{0.1f, 0.2f};
    cgemm(Order::RowMajor, Transpose::NoTrans, Transpose::ConjTrans, m, n,
          k, alpha, a.data(), k, b.data(), k, beta, c.data(), n);
    gemmOracle(Transpose::NoTrans, Transpose::ConjTrans, m, n, k, alpha,
               a, k, b, k, beta, c_ref, n);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(std::abs(c[i] - c_ref[i]), 0.0f, 1e-4f);
}

/** Oracle CHERK via explicit A*A^H computation on the full matrix. */
void
cherkOracle(Uplo uplo, Transpose trans, std::int64_t n, std::int64_t k,
            float alpha, const std::vector<cfloat> &a, std::int64_t lda,
            float beta, std::vector<cfloat> &c, std::int64_t ldc)
{
    for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            bool in_tri = uplo == Uplo::Upper ? j >= i : j <= i;
            if (!in_tri)
                continue;
            cfloat acc{};
            for (std::int64_t p = 0; p < k; ++p) {
                cfloat x = trans == Transpose::NoTrans
                               ? a[static_cast<std::size_t>(i * lda + p)]
                               : std::conj(a[static_cast<std::size_t>(
                                     p * lda + i)]);
                cfloat y = trans == Transpose::NoTrans
                               ? std::conj(a[static_cast<std::size_t>(
                                     j * lda + p)])
                               : a[static_cast<std::size_t>(p * lda + j)];
                acc += x * y;
            }
            auto idx = static_cast<std::size_t>(i * ldc + j);
            cfloat v = alpha * acc + beta * c[idx];
            if (i == j)
                v = {v.real(), 0.0f};
            c[idx] = v;
        }
    }
}

class CherkCombos
    : public ::testing::TestWithParam<std::tuple<Uplo, Transpose>>
{};

TEST_P(CherkCombos, MatchesOracle)
{
    auto [uplo, trans] = GetParam();
    const std::int64_t n = 10, k = 7;
    Rng rng(51);
    std::int64_t lda = trans == Transpose::NoTrans ? k : n;
    auto a = randomCVec(n * k, rng);
    auto c = randomCVec(n * n, rng);
    // Make C Hermitian-ish on the diagonal as BLAS expects.
    for (std::int64_t i = 0; i < n; ++i)
        c[static_cast<std::size_t>(i * n + i)] = {
            c[static_cast<std::size_t>(i * n + i)].real(), 0.0f};
    auto c_ref = c;

    cherk(Order::RowMajor, uplo, trans, n, k, 0.8f, a.data(), lda, 0.5f,
          c.data(), n);
    cherkOracle(uplo, trans, n, k, 0.8f, a, lda, 0.5f, c_ref, n);
    for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            auto idx = static_cast<std::size_t>(i * n + j);
            EXPECT_NEAR(std::abs(c[idx] - c_ref[idx]), 0.0f, 1e-4f)
                << i << "," << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    UploTrans, CherkCombos,
    ::testing::Combine(::testing::Values(Uplo::Upper, Uplo::Lower),
                       ::testing::Values(Transpose::NoTrans,
                                         Transpose::ConjTrans)));

TEST(Cherk, DiagonalStaysReal)
{
    const std::int64_t n = 8, k = 5;
    Rng rng(61);
    auto a = randomCVec(n * k, rng);
    std::vector<cfloat> c(static_cast<std::size_t>(n * n), cfloat{});
    cherk(Order::RowMajor, Uplo::Lower, Transpose::NoTrans, n, k, 1.0f,
          a.data(), k, 0.0f, c.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
        auto d = c[static_cast<std::size_t>(i * n + i)];
        EXPECT_FLOAT_EQ(d.imag(), 0.0f);
        EXPECT_GE(d.real(), 0.0f); // A*A^H is positive semidefinite
    }
}

TEST(Cherk, RejectsPlainTrans)
{
    std::vector<cfloat> a(4), c(4);
    EXPECT_THROW(cherk(Order::RowMajor, Uplo::Lower, Transpose::Trans, 2,
                       2, 1.0f, a.data(), 2, 0.0f, c.data(), 2),
                 mealib::FatalError);
}

/** Build a well-conditioned triangular matrix. */
std::vector<cfloat>
triangular(std::int64_t n, Uplo uplo, Rng &rng)
{
    std::vector<cfloat> a(static_cast<std::size_t>(n * n), cfloat{});
    for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            bool in_tri = uplo == Uplo::Upper ? j >= i : j <= i;
            if (!in_tri)
                continue;
            auto idx = static_cast<std::size_t>(i * n + j);
            if (i == j)
                a[idx] = {rng.uniform(1.0f, 2.0f), 0.0f}; // dominant diag
            else
                a[idx] = {rng.uniform(-0.3f, 0.3f),
                          rng.uniform(-0.3f, 0.3f)};
        }
    }
    return a;
}

class TrsmCombos
    : public ::testing::TestWithParam<
          std::tuple<Side, Uplo, Transpose, Diag>>
{};

TEST_P(TrsmCombos, SolveThenMultiplyRoundTrips)
{
    auto [side, uplo, trans, diag] = GetParam();
    const std::int64_t m = 9, n = 6;
    Rng rng(71);
    std::int64_t adim = side == Side::Left ? m : n;
    auto a = triangular(adim, uplo, rng);
    if (diag == Diag::Unit) {
        // Unit diagonal: stored diagonal is ignored; poison it.
        for (std::int64_t i = 0; i < adim; ++i)
            a[static_cast<std::size_t>(i * adim + i)] = {77.0f, 77.0f};
    }
    auto b = randomCVec(m * n, rng);
    auto b0 = b;
    cfloat alpha{1.5f, -0.5f};

    ctrsm(Order::RowMajor, side, uplo, trans, diag, m, n, alpha, a.data(),
          adim, b.data(), n);

    // Multiply back: op(A)*X (Left) or X*op(A) (Right), with the unit
    // diagonal imposed when requested.
    auto a_eff = a;
    if (diag == Diag::Unit)
        for (std::int64_t i = 0; i < adim; ++i)
            a_eff[static_cast<std::size_t>(i * adim + i)] = {1.0f, 0.0f};
    std::vector<cfloat> back(static_cast<std::size_t>(m * n), cfloat{});
    if (side == Side::Left) {
        gemmOracle(trans, Transpose::NoTrans, m, n, m, cfloat{1, 0},
                   a_eff, adim, b, n, cfloat{0, 0}, back, n);
    } else {
        gemmOracle(Transpose::NoTrans, trans, m, n, n, cfloat{1, 0}, b, n,
                   a_eff, adim, cfloat{0, 0}, back, n);
    }
    for (std::size_t i = 0; i < back.size(); ++i)
        EXPECT_NEAR(std::abs(back[i] - alpha * b0[i]), 0.0f, 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrsmCombos,
    ::testing::Combine(
        ::testing::Values(Side::Left, Side::Right),
        ::testing::Values(Uplo::Upper, Uplo::Lower),
        ::testing::Values(Transpose::NoTrans, Transpose::Trans,
                          Transpose::ConjTrans),
        ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(Strsm, RealSolveRoundTrips)
{
    const std::int64_t m = 12, n = 5;
    Rng rng(81);
    std::vector<float> a(static_cast<std::size_t>(m * m), 0.0f);
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j <= i; ++j)
            a[static_cast<std::size_t>(i * m + j)] =
                i == j ? rng.uniform(1.0f, 2.0f)
                       : rng.uniform(-0.3f, 0.3f);
    auto b = randomVec(m * n, rng);
    auto b0 = b;
    strsm(Order::RowMajor, Side::Left, Uplo::Lower, Transpose::NoTrans,
          Diag::NonUnit, m, n, 1.0f, a.data(), m, b.data(), n);
    // back = A * X should equal b0
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p <= i; ++p)
                acc += static_cast<double>(
                           a[static_cast<std::size_t>(i * m + p)]) *
                       b[static_cast<std::size_t>(p * n + j)];
            EXPECT_NEAR(acc, b0[static_cast<std::size_t>(i * n + j)],
                        1e-3);
        }
    }
}

TEST(Strsm, ConjTransIsFatalForReal)
{
    std::vector<float> a(4, 1.0f), b(4, 1.0f);
    EXPECT_THROW(strsm(Order::RowMajor, Side::Left, Uplo::Lower,
                       Transpose::ConjTrans, Diag::NonUnit, 2, 2, 1.0f,
                       a.data(), 2, b.data(), 2),
                 mealib::FatalError);
}

TEST(Ctrsm, ColMajorAgreesWithRowMajor)
{
    const std::int64_t m = 6, n = 4;
    Rng rng(91);
    auto a = triangular(m, Uplo::Lower, rng);
    auto b = randomCVec(m * n, rng);

    // Row-major solve.
    auto b_rm = b;
    ctrsm(Order::RowMajor, Side::Left, Uplo::Lower, Transpose::NoTrans,
          Diag::NonUnit, m, n, {1, 0}, a.data(), m, b_rm.data(), n);

    // Column-major copies of the same logical A (lower) and B.
    std::vector<cfloat> a_cm(a.size()), b_cm(b.size());
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < m; ++j)
            a_cm[static_cast<std::size_t>(j * m + i)] =
                a[static_cast<std::size_t>(i * m + j)];
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            b_cm[static_cast<std::size_t>(j * m + i)] =
                b[static_cast<std::size_t>(i * n + j)];
    ctrsm(Order::ColMajor, Side::Left, Uplo::Lower, Transpose::NoTrans,
          Diag::NonUnit, m, n, {1, 0}, a_cm.data(), m, b_cm.data(), m);

    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            EXPECT_NEAR(
                std::abs(b_rm[static_cast<std::size_t>(i * n + j)] -
                         b_cm[static_cast<std::size_t>(j * m + i)]),
                0.0f, 1e-4f);
}

} // namespace
} // namespace mealib::mkl
