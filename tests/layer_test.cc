// Direct tests of the accelerator layer's DecodeUnit semantics:
// pass structure, chaining credit, loop accounting, cost-only mode.

#include <gtest/gtest.h>

#include "accel/layer.hh"
#include "common/logging.hh"
#include "dram/params.hh"
#include "dram/physmem.hh"
#include "noc/mesh.hh"

namespace mealib::accel {
namespace {

OpCall
resmpCall(Addr in, Addr out, std::uint64_t n)
{
    OpCall c;
    c.kind = AccelKind::RESMP;
    c.n = n;
    c.m = 2 * n;
    c.complexData = true;
    c.in0.base = in;
    c.out.base = out;
    return c;
}

OpCall
fftCall(Addr in, Addr out, std::uint64_t n)
{
    OpCall c;
    c.kind = AccelKind::FFT;
    c.n = n;
    c.complexData = true;
    c.in0.base = in;
    c.out.base = out;
    return c;
}

class LayerTest : public ::testing::Test
{
  protected:
    LayerTest()
        : layer_(dram::hmcStack(), noc::mealibMesh(),
                 /*functional=*/false),
          mem_(1_MiB)
    {
    }

    AcceleratorLayer layer_;
    dram::PhysMem mem_;
};

TEST_F(LayerTest, CountsPassesAndComps)
{
    DescriptorProgram prog;
    prog.addComp(resmpCall(0, 1_GiB, 4096));
    prog.addPassEnd();
    prog.addComp(fftCall(1_GiB, 2_GiB, 8192));
    prog.addPassEnd();
    ExecStats s = layer_.execute(prog, mem_);
    EXPECT_EQ(s.passes, 2u);
    EXPECT_EQ(s.compsExecuted, 2u);
    EXPECT_GT(s.timeByAccel.get("RESMP"), 0.0);
    EXPECT_GT(s.timeByAccel.get("FFT"), 0.0);
}

TEST_F(LayerTest, ChainedPassCheaperThanSeparatePasses)
{
    const std::uint64_t n = 1 << 16;
    // Chained: FFT reads exactly what RESMP wrote.
    DescriptorProgram chained;
    chained.addComp(resmpCall(0, 1_GiB, n));
    chained.addComp(fftCall(1_GiB, 2_GiB, 2 * n));
    chained.addPassEnd();

    // Same work in two passes (no chaining credit, extra pass start).
    DescriptorProgram split;
    split.addComp(resmpCall(0, 1_GiB, n));
    split.addPassEnd();
    split.addComp(fftCall(1_GiB, 2_GiB, 2 * n));
    split.addPassEnd();

    ExecStats sc = layer_.execute(chained, mem_);
    ExecStats ss = layer_.execute(split, mem_);
    EXPECT_LT(sc.total.seconds, ss.total.seconds);
    EXPECT_LT(sc.total.joules, ss.total.joules);
    EXPECT_LT(sc.bytesMoved, ss.bytesMoved);
}

TEST_F(LayerTest, UnrelatedCompsGetNoChainCredit)
{
    const std::uint64_t n = 1 << 16;
    // Same pass but the FFT reads a different buffer.
    DescriptorProgram unrelated;
    unrelated.addComp(resmpCall(0, 1_GiB, n));
    unrelated.addComp(fftCall(3_GiB, 2_GiB, 2 * n));
    unrelated.addPassEnd();

    DescriptorProgram chained;
    chained.addComp(resmpCall(0, 1_GiB, n));
    chained.addComp(fftCall(1_GiB, 2_GiB, 2 * n));
    chained.addPassEnd();

    ExecStats su = layer_.execute(unrelated, mem_);
    ExecStats sc = layer_.execute(chained, mem_);
    EXPECT_GT(su.bytesMoved, sc.bytesMoved);
}

TEST_F(LayerTest, ChainCreditNeverGoesNegative)
{
    // Tiny chained ops: the credit clamp (<= 50% of the pair's cost)
    // must keep every accounting entry positive.
    DescriptorProgram prog;
    prog.addComp(resmpCall(0, 1_GiB, 16));
    prog.addComp(fftCall(1_GiB, 2_GiB, 32));
    prog.addPassEnd();
    ExecStats s = layer_.execute(prog, mem_);
    EXPECT_GT(s.total.seconds, 0.0);
    EXPECT_GT(s.total.joules, 0.0);
    for (const auto &[k, v] : s.timeByAccel.parts())
        EXPECT_GE(v, 0.0) << k;
    for (const auto &[k, v] : s.energyByAccel.parts())
        EXPECT_GE(v, 0.0) << k;
}

TEST_F(LayerTest, LoopMultipliesWork)
{
    OpCall c = fftCall(0, 1_GiB, 4096);
    DescriptorProgram once;
    once.addComp(c);
    once.addPassEnd();

    DescriptorProgram looped;
    LoopSpec loop;
    loop.dims = {16, 1, 1, 1};
    // Advance the buffers per iteration so no reuse credit applies.
    OpCall cl = c;
    cl.in0.stride[0] = 4096 * 8;
    cl.out.stride[0] = 4096 * 8;
    looped.addLoop(loop, 2);
    looped.addComp(cl);
    looped.addPassEnd();

    ExecStats s1 = layer_.execute(once, mem_);
    ExecStats s16 = layer_.execute(looped, mem_);
    EXPECT_EQ(s16.compsExecuted, 16u);
    EXPECT_NEAR(s16.flops / s1.flops, 16.0, 0.01);
    // One descriptor still pays the invocation machinery once.
    EXPECT_LT(s16.invocation.seconds, 16.0 * s1.invocation.seconds);
}

TEST_F(LayerTest, CostOnlyModeNeverTouchesMemory)
{
    // functional=false: operand addresses far beyond the 1 MiB backing
    // must not fault.
    DescriptorProgram prog;
    prog.addComp(fftCall(3_GiB, 2_GiB, 1 << 20));
    prog.addPassEnd();
    EXPECT_NO_THROW(layer_.execute(prog, mem_));
}

TEST_F(LayerTest, FunctionalModeChecksBounds)
{
    AcceleratorLayer functional(dram::hmcStack(), noc::mealibMesh(),
                                true);
    DescriptorProgram prog;
    prog.addComp(fftCall(3_GiB, 2_GiB, 1 << 20)); // outside backing
    prog.addPassEnd();
    EXPECT_THROW(functional.execute(prog, mem_), FatalError);
}

TEST_F(LayerTest, InvocationScalesWithInstructionCount)
{
    DescriptorProgram small;
    small.addComp(fftCall(0, 1_GiB, 4096));
    small.addPassEnd();

    DescriptorProgram big;
    for (int i = 0; i < 8; ++i) {
        big.addComp(fftCall(0, 1_GiB, 4096));
        big.addPassEnd();
    }
    ExecStats ss = layer_.execute(small, mem_);
    ExecStats sb = layer_.execute(big, mem_);
    EXPECT_GT(sb.invocation.seconds, ss.invocation.seconds);
    EXPECT_EQ(sb.passes, 8u);
}

TEST_F(LayerTest, ModelAccessorExposesAllKinds)
{
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(AccelKind::kCount); ++k) {
        auto kind = static_cast<AccelKind>(k);
        EXPECT_EQ(layer_.model(kind).kind(), kind);
    }
}

} // namespace
} // namespace mealib::accel
