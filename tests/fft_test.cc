// Tests for the Stockham FFT and the guru plan interface: oracle
// comparison, round-trip, Parseval, linearity, shift theorem, strides,
// batching, rank-2 and rank-0 (copy) plans.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "minimkl/fft.hh"
#include "minimkl/naive.hh"

namespace mealib::mkl {
namespace {

std::vector<cfloat>
randomSignal(std::int64_t n, Rng &rng)
{
    std::vector<cfloat> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    return v;
}

double
maxAbsDiff(const std::vector<cfloat> &a, const std::vector<cfloat> &b)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, static_cast<double>(std::abs(a[i] - b[i])));
    return m;
}

class FftSizes : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(FftSizes, MatchesNaiveDft)
{
    std::int64_t n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n));
    auto in = randomSignal(n, rng);
    std::vector<cfloat> out(in.size()), ref(in.size());

    FftPlan::dft1d(n, FftDirection::Forward).execute(in.data(),
                                                     out.data());
    naiveDft(in.data(), ref.data(), n, FftDirection::Forward);
    EXPECT_LT(maxAbsDiff(out, ref),
              1e-3 * std::sqrt(static_cast<double>(n)));
}

TEST_P(FftSizes, ForwardInverseRoundTrip)
{
    std::int64_t n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) + 1);
    auto in = randomSignal(n, rng);
    std::vector<cfloat> freq(in.size()), back(in.size());

    FftPlan::dft1d(n, FftDirection::Forward).execute(in.data(),
                                                     freq.data());
    FftPlan::dft1d(n, FftDirection::Inverse).execute(freq.data(),
                                                     back.data());
    fftNormalize(back.data(), n, n);
    EXPECT_LT(maxAbsDiff(in, back), 1e-4 * static_cast<double>(n));
}

TEST_P(FftSizes, ParsevalHolds)
{
    std::int64_t n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) + 2);
    auto in = randomSignal(n, rng);
    std::vector<cfloat> out(in.size());
    FftPlan::dft1d(n, FftDirection::Forward).execute(in.data(),
                                                     out.data());
    double et = 0.0, ef = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        et += std::norm(in[static_cast<std::size_t>(i)]);
        ef += std::norm(out[static_cast<std::size_t>(i)]);
    }
    EXPECT_NEAR(ef / (et * static_cast<double>(n)), 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024,
                                           4096));

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    const std::int64_t n = 64;
    std::vector<cfloat> in(n, cfloat{}), out(n);
    in[0] = {1.0f, 0.0f};
    FftPlan::dft1d(n, FftDirection::Forward).execute(in.data(),
                                                     out.data());
    for (auto v : out) {
        EXPECT_NEAR(v.real(), 1.0f, 1e-5f);
        EXPECT_NEAR(v.imag(), 0.0f, 1e-5f);
    }
}

TEST(Fft, SingleToneLandsInOneBin)
{
    const std::int64_t n = 128, k = 5;
    std::vector<cfloat> in(n), out(n);
    for (std::int64_t t = 0; t < n; ++t) {
        double a = 2.0 * M_PI * k * t / n;
        in[static_cast<std::size_t>(t)] = {
            static_cast<float>(std::cos(a)),
            static_cast<float>(std::sin(a))};
    }
    FftPlan::dft1d(n, FftDirection::Forward).execute(in.data(),
                                                     out.data());
    for (std::int64_t b = 0; b < n; ++b) {
        double mag = std::abs(out[static_cast<std::size_t>(b)]);
        if (b == k)
            EXPECT_NEAR(mag, static_cast<double>(n), 1e-2);
        else
            EXPECT_LT(mag, 1e-2);
    }
}

TEST(Fft, LinearityProperty)
{
    const std::int64_t n = 256;
    Rng rng(5);
    auto a = randomSignal(n, rng);
    auto b = randomSignal(n, rng);
    std::vector<cfloat> sum(n), fa(n), fb(n), fsum(n);
    for (std::int64_t i = 0; i < n; ++i)
        sum[static_cast<std::size_t>(i)] =
            a[static_cast<std::size_t>(i)] +
            b[static_cast<std::size_t>(i)];
    auto plan = FftPlan::dft1d(n, FftDirection::Forward);
    plan.execute(a.data(), fa.data());
    plan.execute(b.data(), fb.data());
    plan.execute(sum.data(), fsum.data());
    for (std::int64_t i = 0; i < n; ++i) {
        auto idx = static_cast<std::size_t>(i);
        EXPECT_NEAR(std::abs(fsum[idx] - (fa[idx] + fb[idx])), 0.0,
                    1e-3);
    }
}

TEST(Fft, AgreesWithRecursiveOracle)
{
    const std::int64_t n = 512;
    Rng rng(6);
    auto in = randomSignal(n, rng);
    std::vector<cfloat> out(n), ref(n);
    FftPlan::dft1d(n, FftDirection::Forward).execute(in.data(),
                                                     out.data());
    naive::fftRecursive(in.data(), ref.data(), n, -1);
    EXPECT_LT(maxAbsDiff(out, ref), 1e-3);
}

TEST(Fft, StridedTransform)
{
    // Transform every other element of a 2n buffer.
    const std::int64_t n = 64;
    Rng rng(7);
    auto dense = randomSignal(n, rng);
    std::vector<cfloat> interleaved(2 * n, {99.0f, 99.0f});
    for (std::int64_t i = 0; i < n; ++i)
        interleaved[static_cast<std::size_t>(2 * i)] =
            dense[static_cast<std::size_t>(i)];

    std::vector<cfloat> out_strided(2 * n, {0.0f, 0.0f});
    FftPlan({{n, 2, 2}}, {}, FftDirection::Forward)
        .execute(interleaved.data(), out_strided.data());

    std::vector<cfloat> ref(n);
    FftPlan::dft1d(n, FftDirection::Forward).execute(dense.data(),
                                                     ref.data());
    for (std::int64_t i = 0; i < n; ++i)
        EXPECT_NEAR(
            std::abs(out_strided[static_cast<std::size_t>(2 * i)] -
                     ref[static_cast<std::size_t>(i)]),
            0.0, 1e-3);
}

TEST(Fft, BatchedMatchesIndividual)
{
    const std::int64_t n = 128, batch = 9;
    Rng rng(8);
    auto in = randomSignal(n * batch, rng);
    std::vector<cfloat> out_batched(in.size());
    FftPlan::dft1dBatched(n, batch, n, FftDirection::Forward)
        .execute(in.data(), out_batched.data());

    auto single = FftPlan::dft1d(n, FftDirection::Forward);
    std::vector<cfloat> ref(static_cast<std::size_t>(n));
    for (std::int64_t b = 0; b < batch; ++b) {
        single.execute(in.data() + b * n, ref.data());
        for (std::int64_t i = 0; i < n; ++i)
            EXPECT_NEAR(std::abs(out_batched[static_cast<std::size_t>(
                            b * n + i)] -
                                 ref[static_cast<std::size_t>(i)]),
                        0.0, 1e-3);
    }
}

TEST(Fft, Rank2SeparableAgainstRowColumn)
{
    const std::int64_t r = 16, c = 32;
    Rng rng(9);
    auto in = randomSignal(r * c, rng);

    std::vector<cfloat> out2d(in.size());
    FftPlan::dft2d(r, c, FftDirection::Forward).execute(in.data(),
                                                        out2d.data());

    // Manual row-column: rows first, then columns via gather.
    std::vector<cfloat> tmp(in.size()), ref(in.size());
    auto rows = FftPlan::dft1d(c, FftDirection::Forward);
    for (std::int64_t i = 0; i < r; ++i)
        rows.execute(in.data() + i * c, tmp.data() + i * c);
    auto cols = FftPlan::dft1d(r, FftDirection::Forward);
    std::vector<cfloat> colbuf(static_cast<std::size_t>(r)),
        colout(static_cast<std::size_t>(r));
    for (std::int64_t j = 0; j < c; ++j) {
        for (std::int64_t i = 0; i < r; ++i)
            colbuf[static_cast<std::size_t>(i)] =
                tmp[static_cast<std::size_t>(i * c + j)];
        cols.execute(colbuf.data(), colout.data());
        for (std::int64_t i = 0; i < r; ++i)
            ref[static_cast<std::size_t>(i * c + j)] =
                colout[static_cast<std::size_t>(i)];
    }
    EXPECT_LT(maxAbsDiff(out2d, ref), 1e-3);
}

TEST(Fft, InPlaceMatchesOutOfPlace)
{
    const std::int64_t n = 256;
    Rng rng(10);
    auto in = randomSignal(n, rng);
    auto inplace = in;
    std::vector<cfloat> out(in.size());
    auto plan = FftPlan::dft1d(n, FftDirection::Forward);
    plan.execute(in.data(), out.data());
    plan.execute(inplace.data(), inplace.data());
    EXPECT_LT(maxAbsDiff(out, inplace), 1e-5);
}

TEST(Fft, Rank0CopyWithLoopsTransposes)
{
    // A rank-0 plan with two loop dims performing a 4x6 transpose —
    // exactly how Listing 1 uses the guru interface for data reshape.
    const std::int64_t r = 4, c = 6;
    Rng rng(11);
    auto in = randomSignal(r * c, rng);
    std::vector<cfloat> out(in.size());
    FftPlan({}, {{r, c, 1}, {c, 1, r}}, FftDirection::Forward)
        .execute(in.data(), out.data());
    for (std::int64_t i = 0; i < r; ++i)
        for (std::int64_t j = 0; j < c; ++j)
            EXPECT_EQ(out[static_cast<std::size_t>(j * r + i)],
                      in[static_cast<std::size_t>(i * c + j)]);
}

TEST(Fft, CopyPlanReportsZeroFlops)
{
    FftPlan copy({}, {{8, 1, 1}}, FftDirection::Forward);
    EXPECT_TRUE(copy.isCopy());
    EXPECT_DOUBLE_EQ(copy.flopEstimate(), 0.0);
    EXPECT_EQ(copy.batchCount(), 8);
}

TEST(Fft, FlopEstimateIs5NLogN)
{
    auto p = FftPlan::dft1d(1024, FftDirection::Forward);
    EXPECT_DOUBLE_EQ(p.flopEstimate(), 5.0 * 1024 * 10);
    auto b = FftPlan::dft1dBatched(1024, 4, 1024, FftDirection::Forward);
    EXPECT_DOUBLE_EQ(b.flopEstimate(), 4.0 * 5.0 * 1024 * 10);
}

TEST(Fft, NonPowerOfTwoIsFatal)
{
    EXPECT_THROW(FftPlan::dft1d(24, FftDirection::Forward),
                 mealib::FatalError);
}

TEST(Fft, ShiftTheorem)
{
    // Circularly shifting the input multiplies the spectrum by a phase;
    // magnitudes must be unchanged.
    const std::int64_t n = 128;
    Rng rng(12);
    auto in = randomSignal(n, rng);
    std::vector<cfloat> shifted(in.size());
    for (std::int64_t i = 0; i < n; ++i)
        shifted[static_cast<std::size_t>((i + 1) % n)] =
            in[static_cast<std::size_t>(i)];
    std::vector<cfloat> f0(in.size()), f1(in.size());
    auto plan = FftPlan::dft1d(n, FftDirection::Forward);
    plan.execute(in.data(), f0.data());
    plan.execute(shifted.data(), f1.data());
    for (std::int64_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(f0[static_cast<std::size_t>(i)]),
                    std::abs(f1[static_cast<std::size_t>(i)]), 1e-3);
}

class RfftSizes : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(RfftSizes, MatchesPromotedComplexFft)
{
    std::int64_t n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) + 99);
    std::vector<float> x(static_cast<std::size_t>(n));
    for (auto &v : x)
        v = rng.uniform(-1.0f, 1.0f);

    std::vector<cfloat> half(static_cast<std::size_t>(n / 2 + 1));
    rfft(x.data(), n, half.data());

    // Oracle: promote to complex and run the full-size transform.
    std::vector<cfloat> full_in(static_cast<std::size_t>(n));
    std::vector<cfloat> full_out(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        full_in[static_cast<std::size_t>(i)] = {
            x[static_cast<std::size_t>(i)], 0.0f};
    FftPlan::dft1d(n, FftDirection::Forward).execute(full_in.data(),
                                                     full_out.data());
    for (std::int64_t k = 0; k <= n / 2; ++k)
        EXPECT_NEAR(std::abs(half[static_cast<std::size_t>(k)] -
                             full_out[static_cast<std::size_t>(k)]),
                    0.0, 2e-3)
            << "bin " << k;
}

TEST_P(RfftSizes, RoundTripsThroughIrfft)
{
    std::int64_t n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) + 100);
    std::vector<float> x(static_cast<std::size_t>(n));
    for (auto &v : x)
        v = rng.uniform(-1.0f, 1.0f);
    std::vector<cfloat> spec(static_cast<std::size_t>(n / 2 + 1));
    std::vector<float> back(static_cast<std::size_t>(n));
    rfft(x.data(), n, spec.data());
    irfft(spec.data(), n, back.data());
    for (std::int64_t i = 0; i < n; ++i)
        EXPECT_NEAR(back[static_cast<std::size_t>(i)],
                    x[static_cast<std::size_t>(i)], 2e-4)
            << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Pow2, RfftSizes,
                         ::testing::Values(2, 4, 8, 64, 512, 4096));

TEST(Rfft, DcBinIsTheSum)
{
    std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
    std::vector<cfloat> spec(3);
    rfft(x.data(), 4, spec.data());
    EXPECT_NEAR(spec[0].real(), 10.0f, 1e-5f);
    EXPECT_NEAR(spec[0].imag(), 0.0f, 1e-5f);
    // Nyquist bin is the alternating sum, also purely real.
    EXPECT_NEAR(spec[2].real(), -2.0f, 1e-5f);
    EXPECT_NEAR(spec[2].imag(), 0.0f, 1e-5f);
}

TEST(Rfft, NonPow2IsFatal)
{
    std::vector<float> x(6);
    std::vector<cfloat> spec(4);
    EXPECT_THROW(rfft(x.data(), 6, spec.data()), mealib::FatalError);
    EXPECT_THROW(irfft(spec.data(), 6, x.data()), mealib::FatalError);
}

} // namespace
} // namespace mealib::mkl
