/**
 * @file
 * Tests for the unified hardware-model registry (src/hwmodel): profile
 * lookup and aliases, active-machine selection, forwarder equivalence
 * of the legacy per-layer factories, the dispatch-vs-host drift pin
 * (both must price a kernel from the same profile, identically), and
 * the golden modeled time/energy pins that freeze the default profile's
 * Table 2/3/5 behaviour across refactors.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/config.hh"
#include "accel/model.hh"
#include "common/logging.hh"
#include "dispatch/models.hh"
#include "dispatch/opdesc.hh"
#include "dram/params.hh"
#include "host/cpu.hh"
#include "hwmodel/profile.hh"
#include "mealib/platform.hh"
#include "noc/mesh.hh"

namespace mealib {
namespace {

using accel::AccelKind;

TEST(Registry, CanonicalNamesAndAliases)
{
    EXPECT_EQ(hwmodel::profile("haswell4770k").name, "haswell4770k");
    EXPECT_EQ(hwmodel::profile("xeonphi5110p").name, "xeonphi5110p");
    EXPECT_EQ(hwmodel::profile("haswell").name, "haswell4770k");
    EXPECT_EQ(hwmodel::profile("phi").name, "xeonphi5110p");
    EXPECT_EQ(hwmodel::profile("xeonphi").name, "xeonphi5110p");
    EXPECT_TRUE(hwmodel::knownMachine("haswell"));
    EXPECT_FALSE(hwmodel::knownMachine("pentium4"));
    EXPECT_THROW(hwmodel::profile("pentium4"), FatalError);
    EXPECT_EQ(hwmodel::profileNames().size(), 2u);
}

TEST(Registry, SameNameReturnsSameObject)
{
    // Profiles are singletons: RooflineCostModel holds a reference.
    EXPECT_EQ(&hwmodel::profile("haswell"),
              &hwmodel::profile("haswell4770k"));
    EXPECT_NE(&hwmodel::profile("haswell"), &hwmodel::profile("phi"));
}

TEST(Registry, ActiveMachineDefaultsToHaswell)
{
    EXPECT_EQ(hwmodel::activeProfile().name, "haswell4770k");
    EXPECT_EQ(hwmodel::activeMachineName(), "haswell4770k");
}

TEST(Registry, SetActiveMachineSwitchesAndRestores)
{
    EXPECT_TRUE(hwmodel::setActiveMachine("phi").ok());
    EXPECT_EQ(hwmodel::activeProfile().name, "xeonphi5110p");
    EXPECT_TRUE(hwmodel::setActiveMachine("haswell4770k").ok());
    EXPECT_EQ(hwmodel::activeProfile().name, "haswell4770k");
    const Status bad = hwmodel::setActiveMachine("vax11");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(hwmodel::activeProfile().name, "haswell4770k");
}

TEST(Registry, SetActiveMachineRefusesWhilePinned)
{
    // A live session pins the active profile; switching under it would
    // silently reprice in-flight work.
    hwmodel::pinActiveMachine();
    EXPECT_EQ(hwmodel::activeMachinePins(), 1);
    const Status st = hwmodel::setActiveMachine("phi");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(hwmodel::activeProfile().name, "haswell4770k");
    hwmodel::unpinActiveMachine();
    EXPECT_EQ(hwmodel::activeMachinePins(), 0);
    EXPECT_TRUE(hwmodel::setActiveMachine("phi").ok());
    EXPECT_TRUE(hwmodel::setActiveMachine("haswell4770k").ok());
}

TEST(Registry, LegacyFactoriesForwardToRegistry)
{
    // The per-layer factories are thin forwarders; any drift would mean
    // a Table 3 constant re-materialized outside src/hwmodel.
    host::CpuParams hc = host::haswell4770k();
    const host::CpuParams &rc = hwmodel::profile("haswell4770k").cpu;
    EXPECT_EQ(hc.name, rc.name);
    EXPECT_DOUBLE_EQ(hc.freq, rc.freq);
    EXPECT_EQ(hc.cores, rc.cores);
    EXPECT_DOUBLE_EQ(hc.idleW, rc.idleW);
    EXPECT_DOUBLE_EQ(hc.perCoreActiveW, rc.perCoreActiveW);

    host::CpuParams pc = host::xeonPhi5110p();
    EXPECT_EQ(pc.name, hwmodel::profile("phi").cpu.name);
    EXPECT_DOUBLE_EQ(pc.freq, hwmodel::profile("phi").cpu.freq);

    dram::DramParams hmc = dram::hmcStack();
    const dram::DramParams &rh =
        hwmodel::profile("haswell4770k").stackDram;
    EXPECT_EQ(hmc.name, rh.name);
    EXPECT_EQ(hmc.org.numVaults, rh.org.numVaults);
    EXPECT_DOUBLE_EQ(hmc.energy.readJPerByte, rh.energy.readJPerByte);
    EXPECT_DOUBLE_EQ(hmc.org.linkBandwidth, rh.org.linkBandwidth);

    noc::MeshParams mesh = noc::mealibMesh();
    const noc::MeshParams &rm = hwmodel::profile("haswell4770k").mesh;
    EXPECT_EQ(mesh.width, rm.width);
    EXPECT_EQ(mesh.height, rm.height);
    EXPECT_DOUBLE_EQ(mesh.energyPerByteHop, rm.energyPerByteHop);
}

TEST(Registry, ProfilesDifferWhereTheyShould)
{
    const hwmodel::MachineProfile &hw = hwmodel::profile("haswell");
    const hwmodel::MachineProfile &phi = hwmodel::profile("phi");
    EXPECT_NE(hw.cpu.cores, phi.cpu.cores);
    EXPECT_NE(hw.cpu.freq, phi.cpu.freq);
    EXPECT_NE(hw.callOverheadSeconds, phi.callOverheadSeconds);
    // Both machines see the same 3D stack: it is the accelerator's
    // memory, not the host's.
    EXPECT_EQ(hw.stackDram.name, phi.stackDram.name);
    for (int k = 0; k < static_cast<int>(hwmodel::kNumAccelKinds); ++k) {
        AccelKind kind = static_cast<AccelKind>(k);
        EXPECT_GT(hw.opEfficiency(kind).memEff, 0.0);
        EXPECT_GT(phi.opEfficiency(kind).memEff, 0.0);
    }
}

// --- satellite 1: dispatch and host models must price identically ----

TEST(DriftPin, DispatchAndHostModelsPriceTheSameProfile)
{
    // One KernelProfile, two consumers: host::CpuModel directly, and
    // RooflineCostModel::hostSeconds through the dispatch seam. Both
    // must derive from the same registry CpuParams and agree exactly —
    // this pins the removal of the duplicated Haswell model that used
    // to live in dispatch/models.cc.
    const hwmodel::MachineProfile &m = hwmodel::profile("haswell4770k");
    host::CpuModel cpu(m.cpu);
    dispatch::RooflineCostModel roofline(m);

    const AccelKind kinds[] = {
        AccelKind::AXPY, AccelKind::DOT,   AccelKind::GEMV,
        AccelKind::SPMV, AccelKind::RESMP, AccelKind::FFT,
        AccelKind::RESHP,
    };
    for (AccelKind k : kinds) {
        eval::Workload w = eval::table2Workload(k, 1.0 / 64.0);
        host::KernelProfile p =
            dispatch::hostKernelProfile(m, w.call, w.loop);
        dispatch::OpDesc desc = dispatch::opDescFromCall(w.call, w.loop);
        EXPECT_EQ(roofline.hostSeconds(desc), cpu.run(p).seconds)
            << "kind " << accel::name(k);
    }
}

TEST(DriftPin, DefaultRooflineUsesActiveProfile)
{
    dispatch::RooflineCostModel def;
    EXPECT_EQ(&def.machine(), &hwmodel::activeProfile());
}

TEST(DriftPin, PhiProfileChangesHostPricing)
{
    eval::Workload w = eval::table2Workload(AccelKind::DOT, 1.0 / 64.0);
    dispatch::OpDesc desc = dispatch::opDescFromCall(w.call, w.loop);
    dispatch::RooflineCostModel hw(hwmodel::profile("haswell"));
    dispatch::RooflineCostModel phi(hwmodel::profile("phi"));
    EXPECT_NE(hw.hostSeconds(desc), phi.hostSeconds(desc));
    // The accelerator execution itself runs on the same 3D stack, but
    // accelSeconds adds the host-side invocation overhead (cache flush
    // of the input footprint), which is machine-dependent too.
    EXPECT_NE(hw.accelSeconds(desc), phi.accelSeconds(desc));

    const hwmodel::MachineProfile &h = hwmodel::profile("haswell");
    const hwmodel::MachineProfile &p = hwmodel::profile("phi");
    accel::AccelModel mh(AccelKind::DOT,
                         accel::defaultConfig(AccelKind::DOT),
                         h.stackDram, h.mesh);
    accel::AccelModel mp(AccelKind::DOT,
                         accel::defaultConfig(AccelKind::DOT),
                         p.stackDram, p.mesh);
    accel::AccelEstimate eh = mh.estimate(w.call, w.loop);
    accel::AccelEstimate ep = mp.estimate(w.call, w.loop);
    EXPECT_EQ(eh.total.seconds, ep.total.seconds);
    EXPECT_EQ(eh.total.joules, ep.total.joules);
}

// --- golden pins: default-profile modeled values are frozen ----------

struct GoldenOp
{
    int platform;
    int kind;
    double seconds;
    double joules;
};

// Captured at scale 1/16 from the pre-registry tree (%.17g); the
// refactor moved every constant into src/hwmodel without changing any
// modeled number.
const GoldenOp kGolden[] = {
    {0, 0, 0.017481266666666669, 0.60919662438715372},
    {0, 1, 0.0104907603125, 0.3447604586016243},
    {0, 2, 0.0045947600000000007, 0.16011937757524872},
    {0, 3, 0.00068566698660714291, 0.022471802627030128},
    {0, 4, 0.018380046095238099, 0.84416161831117131},
    {0, 5, 0.020976520000000002, 0.68935805050978471},
    {0, 6, 0.039326599999999996, 1.2854638081900307},
    {1, 0, 0.0077260072727272731, 0.86076456737897045},
    {1, 1, 0.0056924054999999999, 0.5934229432720356},
    {1, 2, 0.0037718080000000002, 0.39278049659517161},
    {1, 3, 0.00096630343750000005, 0.096837721168074695},
    {1, 4, 0.092141671111111184, 9.757173351155318},
    {1, 5, 0.013005550769230769, 1.3076287407840321},
    {1, 6, 1.3982013333333334, 139.92202621046428},
    {2, 0, 0.0082123999999999999, 0.17176696100159999},
    {2, 1, 0.0054790249999999993, 0.11456875062079999},
    {2, 2, 0.002735665, 0.057757327529600007},
    {2, 3, 0.00090216359632434525, 0.013198372268470026},
    {2, 4, 0.0088420800000000004, 0.075305749920000012},
    {2, 5, 0.0054785199999999997, 0.088180304507199991},
    {2, 6, 0.0061554769277787401, 0.12381983794817862},
    {3, 0, 0.00204536, 0.057628788201599994},
    {3, 1, 0.0013676650000000001, 0.038506059420800001},
    {3, 2, 0.00068034500000000006, 0.019291696129599998},
    {3, 3, 0.00016357917214478818, 0.0035311110480718273},
    {3, 4, 0.0022118400000000001, 0.034903941120000004},
    {3, 5, 0.0013671600000000001, 0.031849765307199997},
    {3, 6, 0.0014388900869369634, 0.039410831623069895},
    {4, 0, 0.00040393600000000003, 0.0099714725184000003},
    {4, 1, 0.00030758500000000003, 0.0074040934271999998},
    {4, 2, 0.00013539300000000001, 0.003356691654400001},
    {4, 3, 6.5959257408946653e-05, 0.0010211083591208834},
    {4, 4, 0.001048576125, 0.010061349845875001},
    {4, 5, 0.00030037339583333333, 0.0056608837734041665},
    {4, 6, 0.00041360059987791137, 0.0093112700616770211},
};

TEST(GoldenPins, EvaluateOpMatchesPreRefactorValues)
{
    for (const GoldenOp &g : kGolden) {
        eval::Workload w = eval::table2Workload(
            static_cast<AccelKind>(g.kind), 1.0 / 16.0);
        eval::OpResult r = eval::evaluateOp(
            static_cast<eval::Platform>(g.platform), w);
        EXPECT_DOUBLE_EQ(r.cost.seconds, g.seconds)
            << "platform " << g.platform << " kind " << g.kind;
        EXPECT_DOUBLE_EQ(r.cost.joules, g.joules)
            << "platform " << g.platform << " kind " << g.kind;
    }
}

TEST(GoldenPins, Table5PowerAndArea)
{
    // Modeled average power of each accelerator at scale 1/16 (golden),
    // synthesis area exactly as Table 5, and the paper's power column
    // within a 25% band (the RESMP pipeline model sits ~17% under).
    const double golden_power[] = {
        24.685773286857323, 24.071698643301847, 24.792209747919028,
        15.48089531678659,  9.5952497925460598, 18.846155658023697,
        22.512709276595746,
    };
    const double paper_power[] = {23.56, 23.49, 23.75, 15.44,
                                  8.19,  18.89, 22.70};
    const double paper_area[] = {1.38, 1.81, 2.45, 14.17,
                                 2.64, 16.13, 0.0};
    for (int k = 0; k < 7; ++k) {
        AccelKind kind = static_cast<AccelKind>(k);
        accel::AccelConfig cfg = accel::defaultConfig(kind);
        accel::AccelModel model(kind, cfg, dram::hmcStack(),
                                noc::mealibMesh());
        eval::Workload w = eval::table2Workload(kind, 1.0 / 16.0);
        accel::AccelEstimate e = model.estimate(w.call, w.loop);
        EXPECT_NEAR(e.powerW(), golden_power[k],
                    1e-9 * golden_power[k])
            << accel::name(kind);
        EXPECT_NEAR(e.powerW(), paper_power[k], 0.25 * paper_power[k])
            << accel::name(kind);
        EXPECT_NEAR(accel::areaMm2(kind, cfg), paper_area[k], 1e-6)
            << accel::name(kind);
    }
}

TEST(GoldenPins, ConstantsLiveInTheRegistry)
{
    // The layer-level constants the benches print come from
    // hwmodel/constants.hh — pin the values the paper quotes.
    EXPECT_DOUBLE_EQ(hwmodel::kTsvAreaMm2, 1.75);
    EXPECT_DOUBLE_EQ(hwmodel::kAccelLayerAreaMm2, 68.0);
    EXPECT_DOUBLE_EQ(hwmodel::kLogicLayerMuxPowerW, 0.25);
    EXPECT_DOUBLE_EQ(hwmodel::kLogicLayerMuxAreaMm2, 0.45);
    EXPECT_DOUBLE_EQ(hwmodel::kHandshakeSeconds, 20.0e-6);
    EXPECT_DOUBLE_EQ(accel::kTsvAreaMm2, hwmodel::kTsvAreaMm2);
    EXPECT_DOUBLE_EQ(accel::kLayerAreaMm2,
                     hwmodel::kAccelLayerAreaMm2);
    EXPECT_DOUBLE_EQ(dispatch::RooflineCostModel::kHandshakeSeconds,
                     hwmodel::kHandshakeSeconds);
}

} // namespace
} // namespace mealib
