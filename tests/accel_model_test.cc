// Tests for the accelerator analytical models: roofline behaviour,
// bandwidth sensitivity, design-space monotonicity, power/area tables.

#include <gtest/gtest.h>

#include "accel/config.hh"
#include "accel/model.hh"
#include "common/logging.hh"
#include "dram/params.hh"
#include "noc/mesh.hh"

namespace mealib::accel {
namespace {

OpCall
axpyCall(std::uint64_t n)
{
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = n;
    return c;
}

OpCall
fftCall(std::uint64_t n, std::uint64_t batch = 1)
{
    OpCall c;
    c.kind = AccelKind::FFT;
    c.n = n;
    c.m = batch;
    c.complexData = true;
    return c;
}

AccelModel
makeModel(AccelKind kind, const dram::DramParams &d)
{
    return AccelModel(kind, defaultConfig(kind), d, noc::mealibMesh());
}

TEST(OpCall, FlopsAndTraffic)
{
    OpCall a = axpyCall(1000);
    EXPECT_DOUBLE_EQ(a.flops(), 2000.0);
    EXPECT_DOUBLE_EQ(a.trafficBytes(), 12000.0);

    OpCall f = fftCall(1024);
    EXPECT_DOUBLE_EQ(f.flops(), 5.0 * 1024 * 10);

    OpCall r;
    r.kind = AccelKind::RESHP;
    r.m = 100;
    r.n = 200;
    EXPECT_DOUBLE_EQ(r.flops(), 0.0);
    EXPECT_DOUBLE_EQ(r.trafficBytes(), 100.0 * 200 * 4 * 2);
}

TEST(AccelModel, StreamingOpIsMemoryBound)
{
    AccelModel m = makeModel(AccelKind::AXPY, dram::hmcStack());
    AccelEstimate e = m.estimate(axpyCall(16 << 20));
    EXPECT_GT(e.memSeconds, e.computeSeconds);
    // Achieved bandwidth within [50%, 100%] of the 510 GB/s stack.
    EXPECT_GT(e.achievedBw, 0.5 * 510e9);
    EXPECT_LE(e.achievedBw, 512e9 * 1.01);
}

TEST(AccelModel, MoreBandwidthMoreSpeed)
{
    AccelEstimate hmc =
        makeModel(AccelKind::AXPY, dram::hmcStack())
            .estimate(axpyCall(16 << 20));
    AccelEstimate ddr =
        makeModel(AccelKind::AXPY, dram::ddr3(2))
            .estimate(axpyCall(16 << 20));
    // 510 GB/s vs 25.6 GB/s should be roughly an order of magnitude.
    EXPECT_GT(ddr.total.seconds / hmc.total.seconds, 8.0);
}

TEST(AccelModel, MsasSitsBetweenPsasAndMealib)
{
    OpCall c = axpyCall(16 << 20);
    double t_psas =
        makeModel(AccelKind::AXPY, dram::ddr3(2)).estimate(c).total.seconds;
    double t_msas =
        makeModel(AccelKind::AXPY, dram::ddr3(8)).estimate(c).total.seconds;
    double t_mea =
        makeModel(AccelKind::AXPY, dram::hmcStack()).estimate(c).total.seconds;
    EXPECT_GT(t_psas, t_msas);
    EXPECT_GT(t_msas, t_mea);
}

TEST(AccelModel, SpmvSlowerPerByteThanAxpy)
{
    OpCall s;
    s.kind = AccelKind::SPMV;
    s.m = 1 << 18;
    s.n = 1 << 18;
    s.k = 1 << 21; // ~8 nnz per row
    AccelEstimate es =
        makeModel(AccelKind::SPMV, dram::hmcStack()).estimate(s);
    AccelEstimate ea =
        makeModel(AccelKind::AXPY, dram::hmcStack())
            .estimate(axpyCall(16 << 20));
    // The gather destroys row locality: effective bandwidth must be
    // well below the streaming case.
    EXPECT_LT(es.achievedBw, 0.6 * ea.achievedBw);
}

TEST(AccelModel, LoopAggregatesIterations)
{
    AccelModel m = makeModel(AccelKind::DOT, dram::hmcStack());
    OpCall c;
    c.kind = AccelKind::DOT;
    c.n = 1024;
    LoopSpec loop;
    loop.dims = {64, 1, 1, 1};
    AccelEstimate one = m.estimate(c);
    AccelEstimate many = m.estimate(c, loop);
    EXPECT_NEAR(many.flops / one.flops, 64.0, 0.01);
    EXPECT_GT(many.total.seconds, one.total.seconds);
}

TEST(AccelModel, FftSmallFitsLocalMemorySinglePass)
{
    AccelModel m = makeModel(AccelKind::FFT, dram::hmcStack());
    // 8 MiB of local memory (32 tiles x 256 KiB): a 256-point transform
    // needs one pass, a 16M-point transform needs two.
    AccelEstimate small = m.estimate(fftCall(1 << 18));
    AccelEstimate large = m.estimate(fftCall(1 << 24));
    double bytes_small = static_cast<double>((1 << 18)) * 8 * 2;
    double bytes_large = static_cast<double>((1 << 24)) * 8 * 4;
    EXPECT_NEAR(small.bytes, bytes_small, bytes_small * 0.01);
    EXPECT_NEAR(large.bytes, bytes_large, bytes_large * 0.01);
}

TEST(AccelModel, HigherFrequencyNeverSlower)
{
    dram::DramParams d = dram::hmcStack();
    AccelConfig slow = defaultConfig(AccelKind::FFT);
    slow.freq = 0.8_GHz;
    AccelConfig fast = slow;
    fast.freq = 2.0_GHz;
    AccelModel ms(AccelKind::FFT, slow, d, noc::mealibMesh());
    AccelModel mf(AccelKind::FFT, fast, d, noc::mealibMesh());
    OpCall c = fftCall(1 << 20);
    EXPECT_LE(mf.estimate(c).total.seconds,
              ms.estimate(c).total.seconds * 1.0001);
}

TEST(AccelModel, HigherFrequencyMorePower)
{
    AccelConfig slow = defaultConfig(AccelKind::FFT);
    slow.freq = 0.8_GHz;
    AccelConfig fast = slow;
    fast.freq = 2.0_GHz;
    EXPECT_LT(logicPowerW(AccelKind::FFT, slow),
              logicPowerW(AccelKind::FFT, fast));
}

TEST(Config, Table5AreasAtDefaults)
{
    // Table 5 areas at the default configurations.
    EXPECT_NEAR(areaMm2(AccelKind::AXPY, defaultConfig(AccelKind::AXPY)),
                1.38, 0.01);
    EXPECT_NEAR(areaMm2(AccelKind::SPMV, defaultConfig(AccelKind::SPMV)),
                14.17, 0.01);
    EXPECT_NEAR(areaMm2(AccelKind::FFT, defaultConfig(AccelKind::FFT)),
                16.13, 0.01);
}

TEST(Config, TotalAreaMatchesTable5Budget)
{
    // Accelerators + NoC + TSVs = 41.77 mm^2, 61.43% of 68 mm^2.
    double total = 0.0;
    for (std::size_t k = 0; k < static_cast<std::size_t>(AccelKind::kCount);
         ++k) {
        auto kind = static_cast<AccelKind>(k);
        total += areaMm2(kind, defaultConfig(kind));
    }
    noc::Mesh mesh(noc::mealibMesh());
    total += mesh.areaMm2() + kTsvAreaMm2;
    EXPECT_NEAR(total, 41.77, 0.5);
    EXPECT_NEAR(total / kLayerAreaMm2, 0.6143, 0.01);
}

TEST(AccelModel, PowerInTable5Band)
{
    // Logic + DRAM power for the default AXPY configuration should land
    // near the Table 5 value of 23.56 W.
    AccelModel m = makeModel(AccelKind::AXPY, dram::hmcStack());
    AccelEstimate e = m.estimate(axpyCall(32 << 20));
    EXPECT_GT(e.powerW(), 18.0);
    EXPECT_LT(e.powerW(), 28.0);
}

TEST(AccelModel, ReshpReportsBandwidthNotFlops)
{
    AccelModel m = makeModel(AccelKind::RESHP, dram::hmcStack());
    OpCall c;
    c.kind = AccelKind::RESHP;
    c.m = 4096;
    c.n = 4096;
    AccelEstimate e = m.estimate(c);
    EXPECT_DOUBLE_EQ(e.gflops(), 0.0);
    EXPECT_GT(e.gbps(), 10.0);
}

TEST(AccelModel, EmptyLoopIsFatal)
{
    AccelModel m = makeModel(AccelKind::AXPY, dram::hmcStack());
    LoopSpec bad;
    bad.dims = {0, 1, 1, 1};
    EXPECT_THROW(m.estimate(axpyCall(1024), bad), FatalError);
}

} // namespace
} // namespace mealib::accel
