/**
 * @file
 * Parity and determinism suite for the parallel cache-blocked kernels.
 *
 * Every optimized MiniMKL routine is compared against its naive oracle
 * (or a reference loop written here) across awkward sizes (empty,
 * single-element, sub-tile, tile-straddling, above the parallel cutoff),
 * strides (unit, strided, negative) and thread counts (1, 2, 8). On top
 * of parity, the deterministic reductions must be bit-identical across
 * thread counts and repeated runs — that is the contract that lets the
 * parallel kernels replace the serial ones without perturbing any
 * downstream result.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "minimkl/blas1.hh"
#include "minimkl/blas2.hh"
#include "minimkl/blas3.hh"
#include "minimkl/compat.hh"
#include "minimkl/fft.hh"
#include "minimkl/naive.hh"
#include "minimkl/sparse.hh"
#include "minimkl/transpose.hh"

namespace mealib::mkl {
namespace {

// Sub-tile, tile-straddling (tile = 32), and above the 1<<15 cutoff.
const std::int64_t kSizes[] = {0, 1, 7, 33, 100, (1 << 15) + 17};
const int kThreadCounts[] = {1, 2, 8};
const std::int64_t kStrides[] = {1, 2, -1, -3};

std::vector<float>
randomVec(std::int64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

std::vector<cfloat>
randomCVec(std::int64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<cfloat> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    return v;
}

/** BLAS convention: with negative stride the vector starts at the end. */
std::int64_t
startIndex(std::int64_t n, std::int64_t inc)
{
    return inc >= 0 ? 0 : (1 - n) * inc;
}

/** Elements a strided vector of n logical entries spans. */
std::int64_t
spanFor(std::int64_t n, std::int64_t inc)
{
    return n > 0 ? 1 + (n - 1) * std::llabs(inc) : 0;
}

/** Fixture that restores the global tuning after each test. */
class KernelParityTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = kernelTuning();
    }

    void
    TearDown() override
    {
        kernelTuning() = saved_;
    }

    KernelTuning saved_;
};

// --- BLAS-1 parity ----------------------------------------------------------

// Map parity is checked two ways: near-equality against a reference
// loop compiled in this translation unit (the library may legitimately
// differ by one rounding when the compiler contracts a*x+y to an FMA),
// and bit-identity between the single-thread and multi-thread runs of
// the library itself — that is the determinism contract.

TEST_F(KernelParityTest, SaxpyMatchesReferenceAcrossShapes)
{
    for (std::int64_t n : kSizes) {
        for (std::int64_t incx : kStrides) {
            for (std::int64_t incy : kStrides) {
                auto x = randomVec(spanFor(n, incx), 1);
                auto y0 = randomVec(spanFor(n, incy), 2);
                auto expect = y0;
                std::int64_t ix = startIndex(n, incx);
                std::int64_t iy = startIndex(n, incy);
                for (std::int64_t i = 0; i < n;
                     ++i, ix += incx, iy += incy)
                    expect[static_cast<std::size_t>(iy)] +=
                        0.75f * x[static_cast<std::size_t>(ix)];

                kernelTuning().numThreads = 1;
                auto ref = y0;
                saxpy(n, 0.75f, x.data(), incx, ref.data(), incy);
                for (std::size_t i = 0; i < ref.size(); ++i)
                    ASSERT_NEAR(ref[i], expect[i],
                                1e-6 * (std::fabs(expect[i]) + 1.0f))
                        << "n=" << n << " incx=" << incx
                        << " incy=" << incy;

                for (int threads : {2, 8}) {
                    kernelTuning().numThreads = threads;
                    auto y = y0;
                    saxpy(n, 0.75f, x.data(), incx, y.data(), incy);
                    ASSERT_EQ(y, ref)
                        << "n=" << n << " incx=" << incx
                        << " incy=" << incy << " threads=" << threads;
                }
            }
        }
    }
}

TEST_F(KernelParityTest, SaxpbyMatchesReferenceAcrossShapes)
{
    for (std::int64_t n : kSizes) {
        for (std::int64_t incx : kStrides) {
            for (std::int64_t incy : kStrides) {
                auto x = randomVec(spanFor(n, incx), 3);
                auto y0 = randomVec(spanFor(n, incy), 4);
                auto expect = y0;
                std::int64_t ix = startIndex(n, incx);
                std::int64_t iy = startIndex(n, incy);
                for (std::int64_t i = 0; i < n;
                     ++i, ix += incx, iy += incy) {
                    auto &e = expect[static_cast<std::size_t>(iy)];
                    e = 0.5f * x[static_cast<std::size_t>(ix)] -
                        2.0f * e;
                }

                kernelTuning().numThreads = 1;
                auto ref = y0;
                saxpby(n, 0.5f, x.data(), incx, -2.0f, ref.data(),
                       incy);
                for (std::size_t i = 0; i < ref.size(); ++i)
                    ASSERT_NEAR(ref[i], expect[i],
                                1e-6 * (std::fabs(expect[i]) + 1.0f))
                        << "n=" << n << " incx=" << incx
                        << " incy=" << incy;

                for (int threads : {2, 8}) {
                    kernelTuning().numThreads = threads;
                    auto y = y0;
                    saxpby(n, 0.5f, x.data(), incx, -2.0f, y.data(),
                           incy);
                    ASSERT_EQ(y, ref)
                        << "n=" << n << " incx=" << incx
                        << " incy=" << incy << " threads=" << threads;
                }
            }
        }
    }
}

TEST_F(KernelParityTest, ScalCopyMatchReferenceAcrossShapes)
{
    for (int threads : kThreadCounts) {
        kernelTuning().numThreads = threads;
        for (std::int64_t n : kSizes) {
            for (std::int64_t inc : kStrides) {
                auto x = randomVec(spanFor(n, inc), 5);
                auto expect = x;
                std::int64_t ix = startIndex(n, inc);
                for (std::int64_t i = 0; i < n; ++i, ix += inc)
                    expect[static_cast<std::size_t>(ix)] *= 1.25f;
                sscal(n, 1.25f, x.data(), inc);
                ASSERT_EQ(x, expect) << "n=" << n << " inc=" << inc;

                auto src = randomVec(spanFor(n, inc), 6);
                std::vector<float> dst(static_cast<std::size_t>(
                                           spanFor(n, 2)),
                                       -7.0f);
                scopy(n, src.data(), inc, dst.data(), 2);
                std::int64_t is = startIndex(n, inc);
                for (std::int64_t i = 0; i < n; ++i, is += inc)
                    ASSERT_EQ(dst[static_cast<std::size_t>(2 * i)],
                              src[static_cast<std::size_t>(is)]);
            }
        }
    }
}

TEST_F(KernelParityTest, ReductionsMatchOracleAcrossShapes)
{
    for (int threads : kThreadCounts) {
        kernelTuning().numThreads = threads;
        for (std::int64_t n : kSizes) {
            for (std::int64_t inc : kStrides) {
                auto x = randomVec(spanFor(n, inc), 7);
                auto y = randomVec(spanFor(n, inc), 8);

                double dot = 0.0, asum = 0.0, ssq = 0.0;
                std::int64_t ix = startIndex(n, inc);
                for (std::int64_t i = 0; i < n; ++i, ix += inc) {
                    auto xi = static_cast<double>(
                        x[static_cast<std::size_t>(ix)]);
                    auto yi = static_cast<double>(
                        y[static_cast<std::size_t>(ix)]);
                    dot += xi * yi;
                    asum += std::fabs(xi);
                    ssq += xi * xi;
                }
                const double tol = 1e-5 * (static_cast<double>(n) + 1.0);
                EXPECT_NEAR(sdot(n, x.data(), inc, y.data(), inc), dot,
                            tol)
                    << "n=" << n << " inc=" << inc;
                EXPECT_NEAR(sasum(n, x.data(), inc), asum, tol);
                EXPECT_NEAR(snrm2(n, x.data(), inc), std::sqrt(ssq),
                            1e-5 * (std::sqrt(ssq) + 1.0));

                if (n > 0) {
                    std::int64_t best = 0;
                    float bv = -1.0f;
                    std::int64_t j = startIndex(n, inc);
                    for (std::int64_t i = 0; i < n; ++i, j += inc) {
                        float v = std::fabs(
                            x[static_cast<std::size_t>(j)]);
                        if (v > bv) {
                            bv = v;
                            best = i;
                        }
                    }
                    EXPECT_EQ(isamax(n, x.data(), inc), best)
                        << "n=" << n << " inc=" << inc;
                }
            }
        }
    }
}

TEST_F(KernelParityTest, ComplexDotsMatchOracle)
{
    for (int threads : kThreadCounts) {
        kernelTuning().numThreads = threads;
        for (std::int64_t n : kSizes) {
            auto x = randomCVec(n, 9);
            auto y = randomCVec(n, 10);
            std::complex<double> conj{}, unconj{};
            for (std::int64_t i = 0; i < n; ++i) {
                std::complex<double> xi{x[static_cast<std::size_t>(i)]
                                            .real(),
                                        x[static_cast<std::size_t>(i)]
                                            .imag()};
                std::complex<double> yi{y[static_cast<std::size_t>(i)]
                                            .real(),
                                        y[static_cast<std::size_t>(i)]
                                            .imag()};
                conj += std::conj(xi) * yi;
                unconj += xi * yi;
            }
            const double tol = 1e-5 * (static_cast<double>(n) + 1.0);
            cfloat c = cdotc(n, x.data(), 1, y.data(), 1);
            cfloat u = cdotu(n, x.data(), 1, y.data(), 1);
            EXPECT_NEAR(c.real(), conj.real(), tol) << "n=" << n;
            EXPECT_NEAR(c.imag(), conj.imag(), tol);
            EXPECT_NEAR(u.real(), unconj.real(), tol);
            EXPECT_NEAR(u.imag(), unconj.imag(), tol);
        }
    }
}

// --- saxpby null-x leniency (MKL-observed behaviour) ------------------------

TEST_F(KernelParityTest, SaxpbyZeroAlphaIgnoresX)
{
    std::vector<float> y{1.0f, 2.0f, 3.0f, 4.0f};
    saxpby(4, 0.0f, nullptr, 0, 2.0f, y.data(), 1);
    EXPECT_EQ(y, (std::vector<float>{2.0f, 4.0f, 6.0f, 8.0f}));

    // b == 1 with a == 0 is a no-op and must not touch either pointer.
    saxpby(4, 0.0f, nullptr, 0, 1.0f, y.data(), 1);
    EXPECT_EQ(y, (std::vector<float>{2.0f, 4.0f, 6.0f, 8.0f}));

    // n <= 0 never dereferences anything.
    saxpby(0, 1.0f, nullptr, 1, 2.0f, nullptr, 1);
    saxpby(-3, 1.0f, nullptr, 1, 2.0f, nullptr, 1);
}

TEST_F(KernelParityTest, SaxpbyNonzeroAlphaStillValidatesStride)
{
    std::vector<float> x{1.0f};
    std::vector<float> y{1.0f};
    EXPECT_THROW(saxpby(1, 2.0f, x.data(), 0, 1.0f, y.data(), 1),
                 FatalError);
    EXPECT_THROW(saxpby(1, 0.0f, nullptr, 1, 2.0f, y.data(), 0),
                 FatalError);
}

// --- determinism: bit-identical across thread counts and runs ---------------

TEST_F(KernelParityTest, ReductionsBitIdenticalAcrossThreadCounts)
{
    // Large enough to clear the parallel cutoff and span many chunks.
    const std::int64_t n = (1 << 17) + 321;
    auto x = randomVec(n, 11);
    auto y = randomVec(n, 12);

    kernelTuning().numThreads = 1;
    const float dotRef = sdot(n, x.data(), 1, y.data(), 1);
    const float nrmRef = snrm2(n, x.data(), 1);
    const float asumRef = sasum(n, x.data(), 1);
    const cfloat cdotRef = [&] {
        auto cx = randomCVec(n, 13);
        auto cy = randomCVec(n, 14);
        return cdotc(n, cx.data(), 1, cy.data(), 1);
    }();

    auto cx = randomCVec(n, 13);
    auto cy = randomCVec(n, 14);
    for (int threads : kThreadCounts) {
        kernelTuning().numThreads = threads;
        for (int run = 0; run < 3; ++run) {
            float d = sdot(n, x.data(), 1, y.data(), 1);
            float r = snrm2(n, x.data(), 1);
            float s = sasum(n, x.data(), 1);
            cfloat c = cdotc(n, cx.data(), 1, cy.data(), 1);
            // Bitwise comparison: determinism means identical bits, not
            // merely close values.
            EXPECT_EQ(std::memcmp(&d, &dotRef, sizeof d), 0)
                << "threads=" << threads << " run=" << run;
            EXPECT_EQ(std::memcmp(&r, &nrmRef, sizeof r), 0);
            EXPECT_EQ(std::memcmp(&s, &asumRef, sizeof s), 0);
            EXPECT_EQ(std::memcmp(&c, &cdotRef, sizeof c), 0);
        }
    }
}

TEST_F(KernelParityTest, ReductionResultIndependentOfCutoff)
{
    // Forcing the parallel path (cutoff 0) must not change the bits
    // either: the serial path uses the same chunked tree.
    const std::int64_t n = (1 << 16) + 5;
    auto x = randomVec(n, 15);
    auto y = randomVec(n, 16);

    kernelTuning().numThreads = 1;
    const float ref = sdot(n, x.data(), 1, y.data(), 1);
    kernelTuning().numThreads = 8;
    kernelTuning().parallelCutoff = 0;
    float got = sdot(n, x.data(), 1, y.data(), 1);
    EXPECT_EQ(std::memcmp(&got, &ref, sizeof got), 0);
}

// --- BLAS-2 / sparse parity -------------------------------------------------

TEST_F(KernelParityTest, SgemvMatchesNaiveAcrossThreadCounts)
{
    const std::int64_t dims[] = {1, 7, 33, 300};
    for (int threads : kThreadCounts) {
        kernelTuning().numThreads = threads;
        kernelTuning().parallelCutoff = 1; // force the parallel path
        for (std::int64_t m : dims) {
            for (std::int64_t n : dims) {
                auto a = randomVec(m * n, 17);
                auto x = randomVec(n, 18);
                std::vector<float> y(static_cast<std::size_t>(m));
                std::vector<float> expect(static_cast<std::size_t>(m));
                naive::sgemv(m, n, a.data(), n, x.data(), expect.data());
                sgemv(Order::RowMajor, Transpose::NoTrans, m, n, 1.0f,
                      a.data(), n, x.data(), 1, 0.0f, y.data(), 1);
                for (std::int64_t i = 0; i < m; ++i)
                    ASSERT_NEAR(y[static_cast<std::size_t>(i)],
                                expect[static_cast<std::size_t>(i)],
                                1e-4)
                        << "m=" << m << " n=" << n
                        << " threads=" << threads;
            }
        }
    }
}

TEST_F(KernelParityTest, SgemvTransBitIdenticalAcrossThreadCounts)
{
    const std::int64_t m = 257, n = 129;
    auto a = randomVec(m * n, 19);
    auto x = randomVec(m, 20);

    kernelTuning().numThreads = 1;
    kernelTuning().parallelCutoff = 1;
    std::vector<float> ref(static_cast<std::size_t>(n), 0.5f);
    sgemv(Order::RowMajor, Transpose::Trans, m, n, 2.0f, a.data(), n,
          x.data(), 1, 0.25f, ref.data(), 1);

    for (int threads : {2, 8}) {
        kernelTuning().numThreads = threads;
        std::vector<float> y(static_cast<std::size_t>(n), 0.5f);
        sgemv(Order::RowMajor, Transpose::Trans, m, n, 2.0f, a.data(), n,
              x.data(), 1, 0.25f, y.data(), 1);
        ASSERT_EQ(std::memcmp(y.data(), ref.data(),
                              y.size() * sizeof(float)),
                  0)
            << "threads=" << threads;
    }
}

TEST_F(KernelParityTest, CsrgemvMatchesNaiveAcrossThreadCounts)
{
    Rng rng(21);
    CsrMatrix m = randomGeometricGraph(1 << 12, 9.0, rng);
    auto x = randomVec(m.cols, 22);
    std::vector<float> expect(static_cast<std::size_t>(m.rows));
    naive::spmv(m, x.data(), expect.data());

    // Classic 1-based arrays as handed to the MKL shim.
    const int rows = static_cast<int>(m.rows);
    std::vector<int> ia(m.rowPtr.size());
    for (std::size_t i = 0; i < m.rowPtr.size(); ++i)
        ia[i] = static_cast<int>(m.rowPtr[i]) + 1;
    std::vector<int> ja(m.colIdx.size());
    for (std::size_t i = 0; i < m.colIdx.size(); ++i)
        ja[i] = m.colIdx[i] + 1;

    kernelTuning().parallelCutoff = 1;
    std::vector<float> ref;
    for (int threads : kThreadCounts) {
        kernelTuning().numThreads = threads;
        std::vector<float> y(static_cast<std::size_t>(m.rows));
        mkl_scsrgemv("N", &rows, m.vals.data(), ia.data(), ja.data(),
                     x.data(), y.data());
        for (std::int64_t i = 0; i < m.rows; ++i)
            ASSERT_NEAR(y[static_cast<std::size_t>(i)],
                        expect[static_cast<std::size_t>(i)], 1e-4)
                << "row " << i << " threads=" << threads;
        if (ref.empty())
            ref = y;
        else
            // Row partitioning never splits a row, so the per-row sums
            // are bit-identical for every thread count.
            ASSERT_EQ(std::memcmp(y.data(), ref.data(),
                                  y.size() * sizeof(float)),
                      0)
                << "threads=" << threads;
    }

    // Transposed path against a reference scatter.
    auto xt = randomVec(m.rows, 23);
    std::vector<float> expectT(static_cast<std::size_t>(m.cols), 0.0f);
    for (std::int64_t r = 0; r < m.rows; ++r)
        for (std::int64_t k = m.rowPtr[static_cast<std::size_t>(r)];
             k < m.rowPtr[static_cast<std::size_t>(r) + 1]; ++k)
            expectT[static_cast<std::size_t>(
                m.colIdx[static_cast<std::size_t>(k)])] +=
                m.vals[static_cast<std::size_t>(k)] *
                xt[static_cast<std::size_t>(r)];
    std::vector<float> yt(static_cast<std::size_t>(m.cols));
    mkl_scsrgemv("T", &rows, m.vals.data(), ia.data(), ja.data(),
                 xt.data(), yt.data());
    for (std::int64_t i = 0; i < m.cols; ++i)
        ASSERT_NEAR(yt[static_cast<std::size_t>(i)],
                    expectT[static_cast<std::size_t>(i)], 1e-4);
}

// --- transpose parity -------------------------------------------------------

TEST_F(KernelParityTest, TransposeMatchesNaiveAcrossThreadCounts)
{
    const std::int64_t dims[] = {1, 7, 33, 100, 257};
    for (int threads : kThreadCounts) {
        kernelTuning().numThreads = threads;
        kernelTuning().parallelCutoff = 1;
        for (std::int64_t rows : dims) {
            for (std::int64_t cols : dims) {
                auto a = randomVec(rows * cols, 24);
                std::vector<float> expect(a.size());
                naive::transpose(rows, cols, a.data(), expect.data());

                // Out-of-place.
                std::vector<float> b(a.size());
                mkl_somatcopy('R', 'T', static_cast<std::size_t>(rows),
                              static_cast<std::size_t>(cols), 1.0f,
                              a.data(), static_cast<std::size_t>(cols),
                              b.data(), static_cast<std::size_t>(rows));
                ASSERT_EQ(b, expect)
                    << rows << "x" << cols << " threads=" << threads;

                // In-place (square and rectangular paths).
                auto c = a;
                mkl_simatcopy('R', 'T', static_cast<std::size_t>(rows),
                              static_cast<std::size_t>(cols), 1.0f,
                              c.data(), static_cast<std::size_t>(cols),
                              static_cast<std::size_t>(rows));
                ASSERT_EQ(c, expect)
                    << rows << "x" << cols << " threads=" << threads;
            }
        }
    }
}

// --- FFT parity -------------------------------------------------------------

TEST_F(KernelParityTest, BatchedFftMatchesNaiveAndIsThreadInvariant)
{
    const std::int64_t n = 256, batch = 24;
    auto in = randomCVec(n * batch, 25);
    auto plan = FftPlan::dft1dBatched(n, batch, n, FftDirection::Forward);
    kernelTuning().parallelCutoff = 1;

    kernelTuning().numThreads = 1;
    std::vector<cfloat> ref(in.size());
    plan.execute(in.data(), ref.data());

    // Oracle: the recursive radix-2 DFT per batch entry.
    for (std::int64_t b = 0; b < batch; ++b) {
        std::vector<cfloat> expect(static_cast<std::size_t>(n));
        naive::fftRecursive(in.data() + b * n, expect.data(), n, -1);
        for (std::int64_t i = 0; i < n; ++i) {
            ASSERT_NEAR(ref[static_cast<std::size_t>(b * n + i)].real(),
                        expect[static_cast<std::size_t>(i)].real(), 1e-2)
                << "batch " << b << " bin " << i;
            ASSERT_NEAR(ref[static_cast<std::size_t>(b * n + i)].imag(),
                        expect[static_cast<std::size_t>(i)].imag(),
                        1e-2);
        }
    }

    // Thread sweep: batch entries are independent, so results must be
    // bit-identical to the single-thread run.
    for (int threads : {2, 8}) {
        kernelTuning().numThreads = threads;
        std::vector<cfloat> out(in.size());
        plan.execute(in.data(), out.data());
        ASSERT_EQ(std::memcmp(out.data(), ref.data(),
                              out.size() * sizeof(cfloat)),
                  0)
            << "threads=" << threads;
    }
}

// --- BLAS-3 thread invariance ----------------------------------------------

TEST_F(KernelParityTest, Blas3BitIdenticalAcrossThreadCounts)
{
    const std::int64_t n = 96, k = 64;
    auto a = randomCVec(n * k, 26);
    auto b0 = randomCVec(n * n, 27);
    auto tri = randomCVec(n * n, 28);
    // Make the triangular factor well-conditioned.
    for (std::int64_t i = 0; i < n; ++i)
        tri[static_cast<std::size_t>(i * n + i)] += cfloat{4.0f, 0.0f};

    kernelTuning().parallelCutoff = 1;
    kernelTuning().numThreads = 1;
    auto herkRef = b0;
    cherk(Order::RowMajor, Uplo::Lower, Transpose::NoTrans, n, k, 1.5f,
          a.data(), k, 0.5f, herkRef.data(), n);
    auto trsmRef = b0;
    ctrsm(Order::RowMajor, Side::Left, Uplo::Lower, Transpose::NoTrans,
          Diag::NonUnit, n, n, cfloat{1.0f, 0.0f}, tri.data(), n,
          trsmRef.data(), n);

    for (int threads : {2, 8}) {
        kernelTuning().numThreads = threads;
        auto herk = b0;
        cherk(Order::RowMajor, Uplo::Lower, Transpose::NoTrans, n, k,
              1.5f, a.data(), k, 0.5f, herk.data(), n);
        ASSERT_EQ(std::memcmp(herk.data(), herkRef.data(),
                              herk.size() * sizeof(cfloat)),
                  0)
            << "cherk threads=" << threads;

        auto trsm = b0;
        ctrsm(Order::RowMajor, Side::Left, Uplo::Lower,
              Transpose::NoTrans, Diag::NonUnit, n, n,
              cfloat{1.0f, 0.0f}, tri.data(), n, trsm.data(), n);
        ASSERT_EQ(std::memcmp(trsm.data(), trsmRef.data(),
                              trsm.size() * sizeof(cfloat)),
                  0)
            << "ctrsm threads=" << threads;
    }
}

TEST_F(KernelParityTest, SgemmMatchesReferenceAcrossThreadCounts)
{
    const std::int64_t m = 65, n = 33, k = 47;
    auto a = randomVec(m * k, 29);
    auto b = randomVec(k * n, 30);
    auto c0 = randomVec(m * n, 31);

    std::vector<float> expect = c0;
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p)
                acc += static_cast<double>(
                           a[static_cast<std::size_t>(i * k + p)]) *
                       static_cast<double>(
                           b[static_cast<std::size_t>(p * n + j)]);
            auto &e = expect[static_cast<std::size_t>(i * n + j)];
            e = static_cast<float>(1.5 * acc + 0.5 * e);
        }

    kernelTuning().parallelCutoff = 1;
    std::vector<float> ref;
    for (int threads : kThreadCounts) {
        kernelTuning().numThreads = threads;
        auto c = c0;
        sgemm(Order::RowMajor, Transpose::NoTrans, Transpose::NoTrans, m,
              n, k, 1.5f, a.data(), k, b.data(), n, 0.5f, c.data(), n);
        for (std::int64_t i = 0; i < m * n; ++i)
            ASSERT_NEAR(c[static_cast<std::size_t>(i)],
                        expect[static_cast<std::size_t>(i)], 1e-3)
                << "threads=" << threads;
        if (ref.empty())
            ref = c;
        else
            ASSERT_EQ(std::memcmp(c.data(), ref.data(),
                                  c.size() * sizeof(float)),
                      0)
                << "threads=" << threads;
    }
}

// --- SIMD ISA matrix --------------------------------------------------------

// The portable SIMD layer (common/simd.hh) pins two contracts on top of
// parity: MEALIB_SIMD=scalar reproduces the legacy loops bit for bit at
// every thread count, and every vector level (sse4/avx2/avx512) produces
// one common result — the fixed 8-lane virtual vector makes the ISA
// width invisible. Values between scalar and vector levels are compared
// with NEAR, not EQ: a native-arch build may contract the inline scalar
// loops into FMAs while the vector backends pin contraction off.

TEST_F(KernelParityTest, MapsAndReductionsMatchOracleAtEveryIsaLevel)
{
    for (simd::SimdLevel level : simd::availableLevels()) {
        kernelTuning().simd = level;
        // Tail sizes 0..17 exercise every lane-remainder; offsets 0..7
        // exercise every 32-byte misalignment of the float pointers.
        for (std::int64_t n = 0; n <= 17; ++n) {
            for (std::int64_t off = 0; off < 8; ++off) {
                auto xb = randomVec(n + off, 40 + n * 8 + off);
                auto yb = randomVec(n + off, 80 + n * 8 + off);
                const float *x = xb.data() + off;

                std::vector<float> expect(
                    yb.begin() + static_cast<std::ptrdiff_t>(off),
                    yb.end());
                double dot = 0.0, asum = 0.0;
                for (std::int64_t i = 0; i < n; ++i) {
                    expect[static_cast<std::size_t>(i)] +=
                        0.75f * x[i];
                    dot += static_cast<double>(x[i]) *
                           static_cast<double>(
                               yb[static_cast<std::size_t>(off + i)]);
                    asum += std::fabs(static_cast<double>(x[i]));
                }

                auto yc = yb;
                saxpy(n, 0.75f, x, 1, yc.data() + off, 1);
                for (std::int64_t i = 0; i < n; ++i)
                    ASSERT_NEAR(yc[static_cast<std::size_t>(off + i)],
                                expect[static_cast<std::size_t>(i)],
                                1e-6)
                        << simd::name(level) << " n=" << n
                        << " off=" << off;

                const double tol = 1e-5 * (static_cast<double>(n) + 1.0);
                EXPECT_NEAR(sdot(n, x, 1, yb.data() + off, 1), dot, tol)
                    << simd::name(level) << " n=" << n << " off=" << off;
                EXPECT_NEAR(sasum(n, x, 1), asum, tol)
                    << simd::name(level) << " n=" << n << " off=" << off;
                if (n > 0) {
                    std::int64_t best = 0;
                    float bv = -1.0f;
                    for (std::int64_t i = 0; i < n; ++i)
                        if (std::fabs(x[i]) > bv) {
                            bv = std::fabs(x[i]);
                            best = i;
                        }
                    EXPECT_EQ(isamax(n, x, 1), best)
                        << simd::name(level) << " n=" << n
                        << " off=" << off;
                }
            }
        }
        // Strided calls must fall back to the legacy loops untouched.
        auto x = randomVec(201, 90);
        auto y = randomVec(201, 91);
        double dot2 = 0.0;
        for (std::int64_t i = 0; i < 100; ++i)
            dot2 += static_cast<double>(
                        x[static_cast<std::size_t>(2 * i)]) *
                    static_cast<double>(
                        y[static_cast<std::size_t>(2 * i)]);
        EXPECT_NEAR(sdot(100, x.data(), 2, y.data(), 2), dot2, 1e-4)
            << simd::name(level);
    }
}

TEST_F(KernelParityTest, MatrixKernelsMatchNaiveAtEveryIsaLevel)
{
    const std::int64_t dims[] = {1, 7, 30, 65};
    for (simd::SimdLevel level : simd::availableLevels()) {
        kernelTuning().simd = level;
        for (std::int64_t m : dims) {
            for (std::int64_t n : dims) {
                auto a = randomVec(m * n, 100 + m);
                auto x = randomVec(n, 101 + n);
                std::vector<float> y(static_cast<std::size_t>(m));
                std::vector<float> expect(static_cast<std::size_t>(m));
                naive::sgemv(m, n, a.data(), n, x.data(), expect.data());
                sgemv(Order::RowMajor, Transpose::NoTrans, m, n, 1.0f,
                      a.data(), n, x.data(), 1, 0.0f, y.data(), 1);
                for (std::int64_t i = 0; i < m; ++i)
                    ASSERT_NEAR(y[static_cast<std::size_t>(i)],
                                expect[static_cast<std::size_t>(i)],
                                1e-4)
                        << simd::name(level) << " " << m << "x" << n;

                std::vector<float> bt(a.size());
                std::vector<float> tExpect(a.size());
                naive::transpose(m, n, a.data(), tExpect.data());
                somatcopy(Order::RowMajor, Transpose::Trans, m, n, 1.0f,
                          a.data(), n, bt.data(), m);
                ASSERT_EQ(bt, tExpect)
                    << simd::name(level) << " " << m << "x" << n;

                auto c = a;
                simatcopy(Order::RowMajor, Transpose::Trans, m, n, 1.0f,
                          c.data(), n, m);
                ASSERT_EQ(c, tExpect)
                    << simd::name(level) << " " << m << "x" << n;
            }
        }

        // FFT: the butterfly kernel against the recursive oracle.
        const std::int64_t fn = 128;
        auto in = randomCVec(fn, 110);
        std::vector<cfloat> out(in.size());
        FftPlan::dft1d(fn, FftDirection::Forward).execute(in.data(),
                                                          out.data());
        std::vector<cfloat> expect(in.size());
        naive::fftRecursive(in.data(), expect.data(), fn, -1);
        for (std::int64_t i = 0; i < fn; ++i) {
            ASSERT_NEAR(out[static_cast<std::size_t>(i)].real(),
                        expect[static_cast<std::size_t>(i)].real(), 1e-2)
                << simd::name(level) << " bin " << i;
            ASSERT_NEAR(out[static_cast<std::size_t>(i)].imag(),
                        expect[static_cast<std::size_t>(i)].imag(), 1e-2)
                << simd::name(level) << " bin " << i;
        }
    }
}

TEST_F(KernelParityTest, ScalarLevelBitIdenticalAcrossThreadCounts)
{
    // The legacy pin: MEALIB_SIMD=scalar must reproduce the pre-SIMD
    // library bit for bit — same chunk tree, same inline loops — at
    // every thread count.
    kernelTuning().simd = simd::SimdLevel::Scalar;
    const std::int64_t n = (1 << 16) + 11;
    auto x = randomVec(n, 120);
    auto y = randomVec(n, 121);

    kernelTuning().numThreads = 1;
    const float dotRef = sdot(n, x.data(), 1, y.data(), 1);
    auto saxRef = y;
    saxpy(n, 1.25f, x.data(), 1, saxRef.data(), 1);

    for (int threads : {2, 8}) {
        kernelTuning().numThreads = threads;
        float d = sdot(n, x.data(), 1, y.data(), 1);
        EXPECT_EQ(std::memcmp(&d, &dotRef, sizeof d), 0)
            << "threads=" << threads;
        auto sax = y;
        saxpy(n, 1.25f, x.data(), 1, sax.data(), 1);
        EXPECT_EQ(std::memcmp(sax.data(), saxRef.data(),
                              sax.size() * sizeof(float)),
                  0)
            << "threads=" << threads;
    }
}

TEST_F(KernelParityTest, VectorIsaLevelsBitIdenticalAcrossThreads)
{
    std::vector<simd::SimdLevel> vec;
    for (simd::SimdLevel level : simd::availableLevels())
        if (level != simd::SimdLevel::Scalar)
            vec.push_back(level);
    if (vec.empty())
        GTEST_SKIP() << "no vector backend on this machine";

    const std::int64_t n = (1 << 16) + 13;
    auto x = randomVec(n, 130);
    auto y = randomVec(n, 131);
    const std::int64_t dim = 96;
    auto a = randomVec(dim * dim, 132);
    auto fin = randomCVec(256, 133);

    bool first = true;
    float dotRef = 0.0f, nrmRef = 0.0f;
    std::vector<float> saxRef, gemvRef, traRef;
    std::vector<cfloat> fftRef;
    for (simd::SimdLevel level : vec) {
        kernelTuning().simd = level;
        for (int threads : kThreadCounts) {
            kernelTuning().numThreads = threads;

            float d = sdot(n, x.data(), 1, y.data(), 1);
            float r = snrm2(n, x.data(), 1);
            auto sax = y;
            saxpy(n, 1.25f, x.data(), 1, sax.data(), 1);
            std::vector<float> gy(static_cast<std::size_t>(dim));
            sgemv(Order::RowMajor, Transpose::NoTrans, dim, dim, 1.0f,
                  a.data(), dim, x.data(), 1, 0.0f, gy.data(), 1);
            std::vector<float> tb(a.size());
            somatcopy(Order::RowMajor, Transpose::Trans, dim, dim, 1.0f,
                      a.data(), dim, tb.data(), dim);
            std::vector<cfloat> fout(fin.size());
            FftPlan::dft1d(256, FftDirection::Forward)
                .execute(fin.data(), fout.data());

            if (first) {
                dotRef = d;
                nrmRef = r;
                saxRef = sax;
                gemvRef = gy;
                traRef = tb;
                fftRef = fout;
                first = false;
                continue;
            }
            EXPECT_EQ(std::memcmp(&d, &dotRef, sizeof d), 0)
                << simd::name(level) << " threads=" << threads;
            EXPECT_EQ(std::memcmp(&r, &nrmRef, sizeof r), 0)
                << simd::name(level) << " threads=" << threads;
            EXPECT_EQ(std::memcmp(sax.data(), saxRef.data(),
                                  sax.size() * sizeof(float)),
                      0)
                << simd::name(level) << " threads=" << threads;
            EXPECT_EQ(std::memcmp(gy.data(), gemvRef.data(),
                                  gy.size() * sizeof(float)),
                      0)
                << simd::name(level) << " threads=" << threads;
            EXPECT_EQ(std::memcmp(tb.data(), traRef.data(),
                                  tb.size() * sizeof(float)),
                      0)
                << simd::name(level) << " threads=" << threads;
            EXPECT_EQ(std::memcmp(fout.data(), fftRef.data(),
                                  fout.size() * sizeof(cfloat)),
                      0)
                << simd::name(level) << " threads=" << threads;
        }
    }
}

TEST_F(KernelParityTest, SimdLevelResolutionClampsToDetected)
{
    // Requests above what the machine (or build) supports clamp down,
    // never up; scalar always resolves to scalar.
    EXPECT_EQ(simd::resolveLevel(simd::SimdLevel::Scalar),
              simd::SimdLevel::Scalar);
    simd::SimdLevel detected = simd::detectedLevel();
    EXPECT_LE(static_cast<int>(simd::resolveLevel(simd::SimdLevel::Auto)),
              static_cast<int>(detected));
    EXPECT_EQ(simd::resolveLevel(simd::SimdLevel::Auto), detected);
    // Every advertised level must come with a kernel table (scalar's is
    // the null table — the inline legacy loops).
    for (simd::SimdLevel level : simd::availableLevels()) {
        if (level == simd::SimdLevel::Scalar)
            EXPECT_EQ(simd::tableFor(level), nullptr);
        else
            EXPECT_NE(simd::tableFor(level), nullptr);
    }
}

} // namespace
} // namespace mealib::mkl
