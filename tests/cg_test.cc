// Tests for the conjugate-gradient application.

#include <cmath>

#include <gtest/gtest.h>

#include "apps/cg.hh"
#include "common/logging.hh"
#include "runtime/runtime.hh"

namespace mealib::apps {
namespace {

std::vector<float>
rhs(std::int64_t n)
{
    std::vector<float> b(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        b[static_cast<std::size_t>(i)] =
            static_cast<float>(std::sin(0.05 * static_cast<double>(i)));
    return b;
}

TEST(CgHost, ConvergesOnSpdSystem)
{
    mkl::CsrMatrix a = cgTestMatrix(2000, 1);
    CgResult r = solveCgHost(a, rhs(2000));
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.iterations, 1u);
    EXPECT_LT(r.iterations, 200u);
}

TEST(CgHost, SolutionSatisfiesSystem)
{
    const std::int64_t n = 1500;
    mkl::CsrMatrix a = cgTestMatrix(n, 2);
    std::vector<float> b = rhs(n);
    CgOptions opts;
    opts.tolerance = 1e-5;
    CgResult r = solveCgHost(a, b, opts);
    ASSERT_TRUE(r.converged);

    std::vector<float> ax(static_cast<std::size_t>(n));
    mkl::scsrmv(a, r.x.data(), ax.data());
    double rn = 0.0, bn = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        double d = static_cast<double>(b[i]) - ax[i];
        rn += d * d;
        bn += static_cast<double>(b[i]) * b[i];
    }
    EXPECT_LT(std::sqrt(rn / bn), 1e-4);
}

TEST(CgHost, TighterToleranceMoreIterations)
{
    mkl::CsrMatrix a = cgTestMatrix(1000, 3);
    std::vector<float> b = rhs(1000);
    CgOptions loose, tight;
    loose.tolerance = 1e-2;
    tight.tolerance = 1e-5;
    EXPECT_LT(solveCgHost(a, b, loose).iterations,
              solveCgHost(a, b, tight).iterations);
}

TEST(CgHost, ZeroRhsConvergesImmediately)
{
    mkl::CsrMatrix a = cgTestMatrix(100, 4);
    std::vector<float> b(100, 0.0f);
    CgResult r = solveCgHost(a, b);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, 0u);
}

TEST(CgHost, DimensionMismatchIsFatal)
{
    mkl::CsrMatrix a = cgTestMatrix(100, 5);
    std::vector<float> b(99, 1.0f);
    EXPECT_THROW(solveCgHost(a, b), FatalError);
}

TEST(CgMealib, MatchesHostBitForBit)
{
    const std::int64_t n = 1200;
    mkl::CsrMatrix a = cgTestMatrix(n, 6);
    std::vector<float> b = rhs(n);
    CgResult host = solveCgHost(a, b);

    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    runtime::MealibRuntime rt(cfg);
    CgResult mea = solveCgMealib(a, b, rt);

    EXPECT_EQ(mea.converged, host.converged);
    EXPECT_EQ(mea.iterations, host.iterations);
    ASSERT_EQ(mea.x.size(), host.x.size());
    for (std::size_t i = 0; i < host.x.size(); ++i)
        ASSERT_EQ(mea.x[i], host.x[i]) << "i=" << i;
}

TEST(CgMealib, ReusesFixedPlansAcrossIterations)
{
    const std::int64_t n = 800;
    mkl::CsrMatrix a = cgTestMatrix(n, 7);
    std::vector<float> b = rhs(n);
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    runtime::MealibRuntime rt(cfg);
    CgResult r = solveCgMealib(a, b, rt);
    ASSERT_TRUE(r.converged);
    // 2 fixed plans + 3 rebuilt axpby plans per iteration (minus the
    // final iteration's p-update, skipped on convergence).
    EXPECT_EQ(r.descriptors, 2u + 3u * r.iterations - 1u);
    // Executes: spmv + 2x dots + 3 axpbys per full iteration.
    EXPECT_GT(r.executes, 4u * r.iterations);
    EXPECT_GT(r.accel.seconds, 0.0);
}

TEST(CgTestMatrix, IsSymmetricPositiveDefinitish)
{
    mkl::CsrMatrix a = cgTestMatrix(500, 8);
    a.validate();
    // Diagonal dominance: |a_ii| >= sum_j |a_ij| (strict via loading).
    for (std::int64_t r = 0; r < a.rows; ++r) {
        double diag = 0.0, off = 0.0;
        for (std::int64_t k = a.rowPtr[r]; k < a.rowPtr[r + 1]; ++k) {
            if (a.colIdx[k] == r)
                diag = a.vals[static_cast<std::size_t>(k)];
            else
                off += std::fabs(a.vals[static_cast<std::size_t>(k)]);
        }
        EXPECT_GT(diag, off) << "row " << r;
    }
}

} // namespace
} // namespace mealib::apps
