/**
 * @file
 * mealib-run: execute a TDL program on the simulated MEALib system.
 *
 * Usage:
 *   mealib-run <program.tdl> [--params=<dir>] [--bind k=v ...]
 *              [--cost-only] [--arena-mib=N] [--verbose]
 *              [--stacks=N] [--queue-depth=N] [--scheduler=P]
 *              [--repeat=N] [--fault-seed=S] [--fault-rate=R]
 *              [--silent-rate=R] [--fail-stack=S[@N]]
 *              [--watchdog-us=T] [--max-retries=K] [--integrity]
 *              [--checkpoint-interval=K] [--quarantine-threshold=T]
 *              [--quarantine-window=N] [--quarantine-probation=N]
 *              [--quarantine-canaries=N] [--quarantine-strikes=N]
 *              [--offload-policy=P] [--dispatch-json=PATH]
 *              [--machine=M] [--energy-json=PATH] [--help]
 *   mealib-run --clients=N [--app=stap|sar|cg|mix] [options]
 *
 * Exit codes: 0 on success, 1 on an internal error, 2 on a usage /
 * configuration error, 3 when a submitted command reached an
 * unrecoverable terminal state (TIMED_OUT / FAILED) — the stderr line
 * is structured as `mealib-run: command failed: state=<s> code=<c>
 * message=<m>` so harnesses can parse it.
 *
 * Parameter files referenced by COMP blocks are loaded from --params
 * (default: the TDL file's directory). `$symbol` placeholders are
 * resolved from --bind options (`--bind=x=4096`, repeatable via comma
 * separation: `--bind=x=4096,y=8192`).
 *
 * With --cost-only the functional kernels are skipped and only the
 * time/energy model runs (buffers need not exist), which allows
 * paper-scale address ranges.
 *
 * --stacks, --queue-depth and --scheduler (round_robin | locality)
 * configure the asynchronous command-queue engine; --repeat=N submits
 * the compiled program N times through accSubmit() before waiting, and
 * the summary reports the overlap-aware makespan next to the serial
 * total.
 *
 * Fault injection (docs/FAULTS.md): --fault-rate=R arms every transient
 * source (corrected/uncorrectable ECC, link CRC, command hang, compute
 * fault) at a per-attempt probability R, rolled deterministically from
 * --fault-seed (which must be non-negative). --silent-rate=R
 * additionally arms silent data corruption — only end-to-end
 * verification (--integrity) can catch it. --fail-stack=S kills stack
 * S before the first command (S@N: before global command N).
 * --watchdog-us bounds a hung command; --max-retries bounds the retry
 * ladder before host fallback. The summary then adds a degraded-mode
 * line (retries, fallbacks, watchdog fires, corrected ECC events).
 *
 * Resilience layers (docs/FAULTS.md): --integrity prices per-transfer
 * operand checksums (and catches injected silent corruption);
 * --checkpoint-interval=K journals a snapshot every K expanded COMPs of
 * rerun-safe programs, so retries and stack-death drains resume from
 * the last committed checkpoint instead of re-running from scratch.
 * --quarantine-threshold=T arms the stack health monitor: a stack whose
 * sliding-window fault score reaches T is quarantined, re-admitted
 * through a canary probation (--quarantine-window/-probation/-canaries
 * configure the window and cooldown), and permanently failed after
 * --quarantine-strikes failed probations (0 = never).
 *
 * --offload-policy=P (host | accel | crossover | calibrated) routes
 * every COMP of the program through the op-IR dispatcher
 * (docs/DISPATCH.md) instead of executing the plan wholesale: the
 * policy decides per call whether the functional result is produced by
 * a host-priced execution or an accelerator submission, and the summary
 * gains a dispatch line. --dispatch-json=PATH writes the per-kind
 * telemetry (calls, decisions, fallbacks, bytes) as JSON; it implies
 * the dispatcher with the host policy when --offload-policy is absent.
 * Without either flag the legacy wholesale path runs untouched.
 *
 * --clients=N (docs/SESSIONS.md) switches to the multi-tenant driver:
 * no TDL program is read; instead N client threads each open a
 * mealib::Session over ONE shared runtime, bind it to their thread and
 * run --app (stap | sar | cg, or the default mix that round-robins all
 * three). Every client's functional output is digested (FNV-1a) and
 * verified against a solo run of the same application on a private
 * runtime — multi-tenancy must not change anyone's numbers — and the
 * per-session energy ledgers are summed against the shared runtime's
 * aggregate accounting. Any digest mismatch or ledger-sum divergence
 * exits 1.
 *
 * --machine=M selects the hardware-model profile every layer prices
 * against (haswell4770k | xeonphi5110p, aliases haswell | phi); it
 * overrides the MEALIB_MACHINE environment variable and defaults to
 * haswell4770k. --energy-json=PATH writes the runtime's energy ledger
 * (per-track costs, component attribution, EDP, GFLOPS/W; schema in
 * docs/MODEL.md) after the run.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "accel/descriptor.hh"
#include "apps/cg.hh"
#include "apps/sar.hh"
#include "apps/stap.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "dispatch/backend.hh"
#include "dispatch/dispatcher.hh"
#include "dispatch/models.hh"
#include "dispatch/policy.hh"
#include "dram/stack.hh"
#include "hwmodel/profile.hh"
#include "runtime/runtime.hh"
#include "s2s/compiler.hh"
#include "session/session.hh"
#include "tdl/codegen.hh"

using namespace mealib;

namespace {

void
printHelp(const std::string &program)
{
    std::printf(
        "usage: %s <program.tdl> [options]\n"
        "\n"
        "Execute a TDL program on the simulated MEALib system.\n"
        "\n"
        "general:\n"
        "  --params=DIR           parameter-file directory (default:\n"
        "                         the TDL file's directory)\n"
        "  --bind=k=v,...         bind $symbol placeholders\n"
        "  --cost-only            skip functional kernels, model only\n"
        "  --arena-mib=N          backing arena size (default 64)\n"
        "  --machine=M            haswell4770k | xeonphi5110p\n"
        "  --verbose              verbose logging\n"
        "  --help                 this text\n"
        "\n"
        "command-queue engine:\n"
        "  --stacks=N             memory stacks (default 1)\n"
        "  --queue-depth=N        per-stack queue depth (default 8)\n"
        "  --scheduler=P          round_robin | locality\n"
        "  --repeat=N             submit the program N times\n"
        "\n"
        "fault injection (docs/FAULTS.md):\n"
        "  --fault-seed=S         injection seed (non-negative)\n"
        "  --fault-rate=R         per-attempt probability, in [0,1],\n"
        "                         armed for every transient source\n"
        "  --silent-rate=R        silent-corruption probability; only\n"
        "                         --integrity can catch these\n"
        "  --fail-stack=S[@N]     kill stack S (before command N)\n"
        "  --watchdog-us=T        hung-command watchdog (default 100)\n"
        "  --max-retries=K        retry budget (default 3)\n"
        "  --no-host-fallback     exhausted commands terminate\n"
        "                         TIMED_OUT / FAILED (exit 3) instead\n"
        "                         of re-running on the host\n"
        "\n"
        "resilience (docs/FAULTS.md):\n"
        "  --integrity            per-transfer operand checksums\n"
        "  --checkpoint-interval=K  journal a snapshot every K\n"
        "                         expanded COMPs (0 = off)\n"
        "  --quarantine-threshold=T  fault score arming quarantine,\n"
        "                         in (0,1] (0 = off)\n"
        "  --quarantine-window=N  sliding window, commands (16)\n"
        "  --quarantine-probation=N  cooldown before probation (32)\n"
        "  --quarantine-canaries=N   clean canaries to re-admit (2)\n"
        "  --quarantine-strikes=N    probation failures before the\n"
        "                         stack dies for good (0 = never)\n"
        "\n"
        "multi-tenant (docs/SESSIONS.md):\n"
        "  --clients=N            N client threads, one session each,\n"
        "                         against ONE shared runtime (no TDL\n"
        "                         file); outputs verified against solo\n"
        "                         digests, session ledgers summed\n"
        "                         against the aggregate accounting\n"
        "  --app=A                stap | sar | cg | mix (default mix)\n"
        "\n"
        "dispatch & output:\n"
        "  --offload-policy=P     host | accel | crossover | calibrated\n"
        "  --dispatch-json=PATH   per-kind dispatch telemetry\n"
        "  --energy-json=PATH     energy-ledger JSON\n"
        "\n"
        "reuse (docs/RUNTIME.md):\n"
        "  --residency            track cross-command operand residency\n"
        "                         and elide redundant flush/verify work\n"
        "                         (also: MEALIB_RESIDENCY=1)\n"
        "  --fusion-window=N      fuse up to N adjacent same-stack\n"
        "                         dispatched calls into one descriptor\n"
        "                         program (default 1 = off; also:\n"
        "                         MEALIB_FUSION_WINDOW; needs\n"
        "                         --offload-policy)\n"
        "\n"
        "exit codes: 0 success, 1 internal error, 2 usage/config\n"
        "error, 3 unrecoverable command (structured stderr).\n",
        program.c_str());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
dirName(const std::string &path)
{
    auto slash = path.find_last_of('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

std::map<std::string, std::uint64_t>
parseBindings(const std::string &spec)
{
    std::map<std::string, std::uint64_t> out;
    std::stringstream ss(spec);
    std::string part;
    while (std::getline(ss, part, ',')) {
        if (part.empty())
            continue;
        auto eq = part.find('=');
        fatalIf(eq == std::string::npos, "--bind entry '", part,
                "' is not k=v");
        char *end = nullptr;
        std::uint64_t v =
            std::strtoull(part.c_str() + eq + 1, &end, 0);
        fatalIf(end == nullptr || *end != '\0', "--bind value in '",
                part, "' is not a number");
        out[part.substr(0, eq)] = v;
    }
    return out;
}

/**
 * Per-COMP dispatch execution (--offload-policy / --dispatch-json):
 * every COMP of @p prog — paired with its enclosing LOOP, if any —
 * lowers into an OpDesc and runs through a Dispatcher backed by the
 * runtime. Host decisions keep the functional result (the shared
 * functional engine computes it, as the fault-fallback path does) but
 * are priced as native host execution; accel decisions submit through
 * the asynchronous queue engine.
 */
/** Write the runtime's energy ledger as JSON (--energy-json). */
void
writeEnergyJson(const runtime::MealibRuntime &rt,
                const std::string &path)
{
    if (path.empty())
        return;
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot write '", path, "'");
    out << rt.ledger().toJson(hwmodel::activeMachineName()) << "\n";
    std::printf("energy ledger written to %s\n", path.c_str());
}

/** FNV-1a digest of a buffer (stable, platform-independent). */
std::uint64_t
fnv1a(const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * One client's application against @p rt, executed under the calling
 * thread's session binding. Shared mode throughout (exclusive=false):
 * the apps neither reset nor read the runtime's aggregate accounting —
 * attribution comes from the bound session's ledger. Returns the
 * FNV-1a digest of the functional output.
 */
std::uint64_t
runClientApp(const std::string &app, runtime::MealibRuntime &rt)
{
    if (app == "stap") {
        apps::StapResult r = apps::runStapMealib(
            apps::StapParams::smallSet(), rt, /*exclusive=*/false);
        return fnv1a(r.prods.data(),
                     r.prods.size() * sizeof(r.prods[0]));
    }
    if (app == "sar") {
        apps::SarResult r = apps::runSarChain(64, true, rt, 7);
        return fnv1a(r.image.data(),
                     r.image.size() * sizeof(r.image[0]));
    }
    if (app == "cg") {
        mkl::CsrMatrix a = apps::cgTestMatrix(600, 1);
        std::vector<float> b(600);
        for (std::size_t i = 0; i < b.size(); ++i)
            b[i] = static_cast<float>(
                std::sin(0.05 * static_cast<double>(i)));
        apps::CgOptions opts;
        opts.exclusive = false;
        apps::CgResult r = apps::solveCgMealib(a, b, rt, opts);
        return fnv1a(r.x.data(), r.x.size() * sizeof(float));
    }
    throw MealibError(
        Status::error(ErrorCode::InvalidArgument,
                      "--app '" + app + "' is not stap|sar|cg|mix"));
}

/**
 * The --clients=N multi-tenant driver: N threads, one Session each,
 * against one shared runtime. Per-client digests must match a solo run
 * of the same app (isolation), and the per-session ledgers must sum to
 * the shared runtime's aggregate accounting (exact attribution).
 */
int
runClients(const Cli &cli, const runtime::RuntimeConfig &cfg,
           unsigned clients, const std::string &appSpec,
           const SessionOptions &sopts,
           const std::string &energyJsonPath)
{
    static const char *kMix[] = {"stap", "sar", "cg"};
    std::vector<std::string> appOf(clients);
    for (unsigned i = 0; i < clients; ++i)
        appOf[i] = appSpec == "mix" ? kMix[i % 3] : appSpec;

    // Solo oracles: each distinct app once, alone on a private
    // runtime. Multi-tenancy must not change anyone's numbers.
    std::map<std::string, std::uint64_t> reference;
    for (const std::string &app : appOf) {
        if (reference.count(app) != 0)
            continue;
        runtime::MealibRuntime solo(cfg);
        Session s(solo, sopts);
        SessionBinding bound = s.bind();
        reference[app] = runClientApp(app, solo);
    }

    // The shared stack: one runtime, N sessions, N threads.
    runtime::MealibRuntime rt(cfg);
    std::vector<std::unique_ptr<Session>> sessions;
    for (unsigned i = 0; i < clients; ++i)
        sessions.push_back(std::make_unique<Session>(rt, sopts));
    std::vector<std::uint64_t> digest(clients, 0);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned i = 0; i < clients; ++i)
        threads.emplace_back([&rt, &sessions, &digest, &appOf, i] {
            SessionBinding bound = sessions[i]->bind();
            digest[i] = runClientApp(appOf[i], rt);
        });
    for (std::thread &t : threads)
        t.join();
    rt.waitAll();

    int rc = 0;
    Cost sum;
    std::printf("multitenant: %u client(s), app %s, policy %s\n",
                clients, appSpec.c_str(),
                sopts.policy.empty() ? "(env)" : sopts.policy.c_str());
    for (unsigned i = 0; i < clients; ++i) {
        const Cost c = sessions[i]->ledger().total();
        sum += c;
        const bool ok = digest[i] == reference[appOf[i]];
        std::printf("client %u: app %-4s digest %016llx %s  "
                    "%10.6f ms  %10.6f mJ\n",
                    i, appOf[i].c_str(),
                    static_cast<unsigned long long>(digest[i]),
                    ok ? "OK      " : "MISMATCH", c.seconds * 1e3,
                    c.joules * 1e3);
        if (!ok)
            rc = 1;
    }
    for (const auto &[app, d] : reference)
        std::printf("digest[%s]=%016llx\n", app.c_str(),
                    static_cast<unsigned long long>(d));

    const Cost agg = rt.accounting().total();
    const double ds =
        std::abs(sum.seconds - agg.seconds) /
        std::max({std::abs(agg.seconds), 1e-300});
    const double dj = std::abs(sum.joules - agg.joules) /
                      std::max({std::abs(agg.joules), 1e-300});
    const bool ledgers_ok = ds <= 1e-9 && dj <= 1e-9;
    std::printf("ledgers: sum %.9f ms / %.9f mJ, aggregate %.9f ms / "
                "%.9f mJ (%s)\n",
                sum.seconds * 1e3, sum.joules * 1e3, agg.seconds * 1e3,
                agg.joules * 1e3, ledgers_ok ? "match" : "DIVERGED");
    if (!ledgers_ok)
        rc = 1;

    writeEnergyJson(rt, energyJsonPath);
    if (rc != 0)
        std::fprintf(stderr, "%s: multi-tenant isolation check "
                             "failed\n",
                     cli.program().c_str());
    return rc;
}

int
runDispatched(runtime::MealibRuntime &rt,
              const runtime::RuntimeConfig &cfg,
              const accel::DescriptorProgram &prog, std::uint64_t repeat,
              const std::string &policyName, const std::string &jsonPath,
              const std::string &energyJsonPath, unsigned fusionWindow)
{
    auto policy = dispatch::makePolicy(policyName);
    fatalIf(policy == nullptr, "--offload-policy '", policyName,
            "' is not host|accel|crossover|calibrated");
    dispatch::Dispatcher disp(std::move(policy));
    auto costs = std::make_shared<dispatch::RooflineCostModel>();
    costs->setFusionWindow(fusionWindow);
    disp.setCostModel(costs);
    dispatch::RuntimeBackend backend(rt, fusionWindow);
    disp.attachBackend(&backend);
    // Decisions land in the runtime's ledger as zero-cost notes, so the
    // --energy-json record shows where every call went.
    disp.attachLedger(&rt.ledger());

    struct Unit
    {
        accel::OpCall call;
        accel::LoopSpec loop;
    };
    std::vector<Unit> units;
    for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
        const accel::Instr &in = prog.instrs[i];
        if (in.type == accel::Instr::Type::Comp) {
            units.push_back({in.call, accel::LoopSpec{}});
        } else if (in.type == accel::Instr::Type::Loop) {
            for (std::size_t j = i + 1;
                 j <= i + in.bodyCount && j < prog.instrs.size(); ++j)
                if (prog.instrs[j].type == accel::Instr::Type::Comp)
                    units.push_back({prog.instrs[j].call, in.loop});
            i += in.bodyCount;
        }
    }

    for (std::uint64_t r = 0; r < repeat; ++r) {
        for (const Unit &u : units) {
            dispatch::OpDesc d =
                dispatch::opDescFromCall(u.call, u.loop);
            disp.run(d, [&] {
                if (cfg.functional) {
                    accel::DescriptorProgram up;
                    if (u.loop.iterations() > 1)
                        up.addLoop(u.loop, 2);
                    up.addComp(u.call);
                    up.addPassEnd();
                    rt.stack(0).acquire(dram::Owner::Accelerator);
                    rt.layer(0).execute(up, rt.mem());
                    rt.stack(0).release(dram::Owner::Accelerator);
                }
                rt.runOnHost(dispatch::hostKernelProfile(
                    hwmodel::activeProfile(), u.call, u.loop));
            });
        }
    }
    backend.sync(); // materialize any fused calls still buffered
    rt.waitAll();

    const dispatch::DispatchStats ds = disp.snapshot();
    const runtime::RuntimeAccounting &acct = rt.accounting();
    std::printf("program: %zu instruction(s), %zu dispatch unit(s), "
                "%llu dispatched call(s)\n",
                prog.instrs.size(), units.size(),
                static_cast<unsigned long long>(ds.totalCalls()));
    std::printf("dispatch: policy %s, %llu accel decision(s), "
                "%llu offloaded (ratio %.2f), %.3f of %.3f MiB "
                "accelerator-side\n",
                disp.policy().name(),
                static_cast<unsigned long long>(
                    ds.totalAccelDecisions()),
                static_cast<unsigned long long>(ds.totalOffloaded()),
                ds.offloadRatio(),
                ds.totalBytesOffloaded() / 1048576.0,
                ds.totalBytes() / 1048576.0);
    for (std::size_t k = 0; k < ds.byKind.size(); ++k) {
        const dispatch::OpStats &os = ds.byKind[k];
        if (os.calls == 0)
            continue;
        std::printf("  %-6s %6llu call(s)  host %llu  accel %llu  "
                    "offloaded %llu  fallback %llu\n",
                    dispatch::name(static_cast<dispatch::OpKind>(k)),
                    static_cast<unsigned long long>(os.calls),
                    static_cast<unsigned long long>(os.hostDecisions),
                    static_cast<unsigned long long>(os.accelDecisions),
                    static_cast<unsigned long long>(os.offloaded),
                    static_cast<unsigned long long>(os.fallbacks));
    }
    std::printf("time:   %.6f ms serial (makespan %.6f ms)\n",
                acct.total().seconds * 1e3, acct.makespanSeconds * 1e3);
    std::printf("energy: %.6f mJ\n", acct.total().joules * 1e3);
    if (rt.config().residency.enabled || fusionWindow > 1)
        std::printf("reuse:  %llu flush B elided, %llu verify B elided, "
                    "%llu handshake(s) elided, %llu fused program(s), "
                    "%llu plan-image reuse(s)\n",
                    static_cast<unsigned long long>(
                        acct.flushBytesElided),
                    static_cast<unsigned long long>(
                        acct.verifyBytesElided),
                    static_cast<unsigned long long>(
                        acct.handshakesElided),
                    static_cast<unsigned long long>(acct.fusedPrograms),
                    static_cast<unsigned long long>(
                        acct.planImageReuses));
    if (cfg.fault.enabled())
        std::printf("faults: %zu injected (retries %llu, fallbacks "
                    "%llu)\n",
                    rt.faultModel().history().size(),
                    static_cast<unsigned long long>(acct.retryCount),
                    static_cast<unsigned long long>(acct.fallbackCount));
    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath, std::ios::binary);
        fatalIf(!out, "cannot write '", jsonPath, "'");
        out << ds.toJson(disp.policy().name()) << "\n";
        std::printf("dispatch telemetry written to %s\n",
                    jsonPath.c_str());
    }
    writeEnergyJson(rt, energyJsonPath);
    disp.detachLedger();
    disp.detachBackend();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    if (cli.has("help")) {
        printHelp(cli.program());
        return 0;
    }
    if (cli.positional().empty() && !cli.has("clients")) {
        std::fprintf(stderr,
                     "usage: %s <program.tdl> [options]; see --help\n",
                     cli.program().c_str());
        return 2;
    }
    setVerbose(cli.has("verbose"));

    try {
        // --- multi-tenant driver (docs/SESSIONS.md) --------------------
        if (cli.has("clients")) {
            const std::string machine = cli.get("machine", "");
            if (!machine.empty())
                hwmodel::setActiveMachine(machine).orThrow();
            const std::int64_t n = cli.getInt("clients", 0);
            if (n < 1) {
                throw MealibError(
                    Status::error(ErrorCode::InvalidArgument,
                                  "--clients must be at least 1"));
            }
            runtime::RuntimeConfig cfg;
            cfg.backingBytes = static_cast<std::uint64_t>(
                                   cli.getInt("arena-mib", 256))
                               << 20;
            cfg.numStacks =
                static_cast<unsigned>(cli.getInt("stacks", 2));
            cfg.queueDepth =
                static_cast<unsigned>(cli.getInt("queue-depth", 8));
            SessionOptions sopts;
            sopts.policy = cli.get("offload-policy", "");
            if (!sopts.policy.empty() &&
                dispatch::makePolicy(sopts.policy) == nullptr)
                throw MealibError(Status::error(
                    ErrorCode::InvalidArgument,
                    "--offload-policy '" + sopts.policy +
                        "' is not host|accel|crossover|calibrated"));
            sopts.fusionWindow = static_cast<unsigned>(
                cli.getInt("fusion-window", 0));
            return runClients(cli, cfg, static_cast<unsigned>(n),
                              cli.get("app", "mix"), sopts,
                              cli.get("energy-json", ""));
        }

        const std::string tdl_path = cli.positional()[0];
        const std::string params_dir =
            cli.get("params", dirName(tdl_path));
        auto binds = parseBindings(cli.get("bind", ""));

        std::string tdl = s2s::bindParams(readFile(tdl_path), binds);
        auto resolve = [&](const std::string &name) {
            return s2s::bindParams(readFile(params_dir + "/" + name),
                                   binds);
        };
        accel::DescriptorProgram prog = tdl::compileTdl(tdl, resolve);

        // Must precede RuntimeConfig: its defaults come from the active
        // machine profile.
        const std::string machine = cli.get("machine", "");
        if (!machine.empty())
            hwmodel::setActiveMachine(machine).orThrow();

        runtime::RuntimeConfig cfg;
        cfg.functional = !cli.has("cost-only");
        cfg.backingBytes = static_cast<std::uint64_t>(
                               cli.getInt("arena-mib", 64))
                           << 20;
        cfg.numStacks = static_cast<unsigned>(cli.getInt("stacks", 1));
        cfg.queueDepth =
            static_cast<unsigned>(cli.getInt("queue-depth", 8));
        const std::string sched = cli.get("scheduler", "locality");
        if (sched != "round_robin" && sched != "rr" &&
            sched != "locality") {
            throw MealibError(Status::error(
                ErrorCode::InvalidArgument,
                "unknown scheduler policy '" + sched +
                    "' (expected 'round_robin' or 'locality')"));
        }
        cfg.scheduler = runtime::schedulerPolicy(sched);

        // --- fault injection (docs/FAULTS.md) --------------------------
        const std::int64_t seed = cli.getInt("fault-seed", 0);
        if (seed < 0) {
            std::fprintf(stderr,
                         "%s: --fault-seed must be non-negative "
                         "(got %lld)\n",
                         cli.program().c_str(),
                         static_cast<long long>(seed));
            return 2;
        }
        cfg.fault.seed = static_cast<std::uint64_t>(seed);
        const double rate = cli.getDouble("fault-rate", 0.0);
        cfg.fault.eccCorrectableRate = rate;
        cfg.fault.eccUncorrectableRate = rate;
        cfg.fault.linkCrcRate = rate;
        cfg.fault.hangRate = rate;
        cfg.fault.computeTransientRate = rate;
        cfg.fault.silentCorruptionRate =
            cli.getDouble("silent-rate", 0.0);
        const std::string fail_spec = cli.get("fail-stack", "");
        if (!fail_spec.empty()) {
            auto at = fail_spec.find('@');
            cfg.fault.failStack = static_cast<unsigned>(
                std::strtoul(fail_spec.c_str(), nullptr, 0));
            if (at != std::string::npos)
                cfg.fault.failStackAfter = std::strtoull(
                    fail_spec.c_str() + at + 1, nullptr, 0);
        }
        cfg.watchdogSeconds =
            cli.getDouble("watchdog-us", cfg.watchdogSeconds * 1e6) *
            1e-6;
        cfg.retry.maxRetries = static_cast<unsigned>(cli.getInt(
            "max-retries", cfg.retry.maxRetries));
        if (cli.has("no-host-fallback"))
            cfg.retry.hostFallback = false;

        // --- integrity / checkpoint / health (docs/FAULTS.md) ----------
        cfg.integrity.verifyTransfers = cli.has("integrity");
        cfg.checkpoint.intervalComps = static_cast<unsigned>(
            cli.getInt("checkpoint-interval", 0));
        cfg.health.quarantineThreshold =
            cli.getDouble("quarantine-threshold", 0.0);
        cfg.health.windowCommands = static_cast<unsigned>(cli.getInt(
            "quarantine-window", cfg.health.windowCommands));
        cfg.health.probationAfterCommands =
            static_cast<unsigned>(cli.getInt(
                "quarantine-probation",
                cfg.health.probationAfterCommands));
        cfg.health.canaryCommands = static_cast<unsigned>(cli.getInt(
            "quarantine-canaries", cfg.health.canaryCommands));
        cfg.health.maxStrikes = static_cast<unsigned>(cli.getInt(
            "quarantine-strikes", cfg.health.maxStrikes));

        // --- residency / fusion (docs/RUNTIME.md) ----------------------
        if (cli.has("residency"))
            cfg.residency.enabled = true;
        const unsigned fusion_window = static_cast<unsigned>(cli.getInt(
            "fusion-window",
            static_cast<std::int64_t>(dispatch::fusionWindowFromEnv())));
        if (fusion_window < 1) {
            throw MealibError(
                Status::error(ErrorCode::InvalidArgument,
                              "--fusion-window must be at least 1"));
        }

        runtime::MealibRuntime rt(cfg);

        const std::uint64_t repeat = static_cast<std::uint64_t>(
            cli.getInt("repeat", 1));
        if (repeat == 0) {
            throw MealibError(
                Status::error(ErrorCode::InvalidArgument,
                              "--repeat must be at least 1"));
        }

        const std::string policy_name = cli.get("offload-policy", "");
        const std::string dispatch_json = cli.get("dispatch-json", "");
        const std::string energy_json = cli.get("energy-json", "");
        if (!policy_name.empty() || !dispatch_json.empty())
            return runDispatched(
                rt, cfg, prog, repeat,
                policy_name.empty() ? "host" : policy_name,
                dispatch_json, energy_json, fusion_window);

        runtime::AccPlanHandle plan = rt.accPlan(prog);
        std::vector<runtime::Event> events;
        if (repeat == 1) {
            // The paper's blocking Listing-2 semantics: submit on the
            // plan's home stack, then poll DONE.
            events.push_back(
                rt.accSubmitOn(plan, rt.homeStackOf(plan)));
            events.front().wait();
        } else {
            // Asynchronous fan-out: N submits, one wait. Overlap shows
            // up with --stacks > 1 (on one stack the in-order queue
            // serializes the copies anyway).
            for (std::uint64_t i = 0; i < repeat; ++i)
                events.push_back(rt.accSubmit(plan));
            rt.waitAll();
        }
        accel::ExecStats stats = events.front().stats();
        for (std::size_t i = 1; i < events.size(); ++i) {
            stats.total += events[i].stats().total;
            stats.invocation += events[i].stats().invocation;
            stats.compsExecuted += events[i].stats().compsExecuted;
            stats.passes += events[i].stats().passes;
            stats.bytesMoved += events[i].stats().bytesMoved;
        }
        rt.accDestroy(plan);

        // An unrecoverable terminal state (watchdog expiry or device
        // failure with fallback disabled) is a run failure: report it
        // on stderr in a machine-parseable form and exit 3.
        for (const runtime::Event &ev : events) {
            if (runtime::completed(ev.state()))
                continue;
            std::fprintf(stderr,
                         "%s: command failed: state=%s code=%s "
                         "message=\"%s\"\n",
                         cli.program().c_str(),
                         runtime::name(ev.state()),
                         name(ev.status().code()),
                         ev.status().message().c_str());
            return 3;
        }

        std::printf("program: %zu instruction(s), %llu expanded COMP "
                    "invocation(s), %llu pass(es)\n",
                    prog.instrs.size(),
                    static_cast<unsigned long long>(stats.compsExecuted),
                    static_cast<unsigned long long>(stats.passes));
        std::printf("time:   %.6f ms (invocation %.6f ms)\n",
                    stats.total.seconds * 1e3,
                    stats.invocation.seconds * 1e3);
        std::printf("energy: %.6f mJ (avg power %.2f W)\n",
                    stats.total.joules * 1e3, stats.total.watts());
        std::printf("DRAM traffic: %.3f MiB (%.1f GB/s effective)\n",
                    stats.bytesMoved / 1048576.0,
                    stats.bytesMoved / stats.total.seconds / 1e9);
        for (const auto &[k, v] : stats.timeByAccel.parts())
            std::printf("  %-6s %8.3f us  %8.3f uJ\n", k.c_str(),
                        v * 1e6, stats.energyByAccel.get(k) * 1e6);
        const runtime::RuntimeAccounting &acct = rt.accounting();
        std::printf("queue:  %u stack(s), depth %u, %s scheduler\n",
                    rt.numStacks(), cfg.queueDepth,
                    runtime::name(cfg.scheduler));
        std::printf("makespan: %.6f ms (serial %.6f ms, overlap saved "
                    "%.6f ms)\n",
                    acct.makespanSeconds * 1e3,
                    acct.total().seconds * 1e3,
                    acct.overlapSavedSeconds() * 1e3);
        if (cfg.residency.enabled)
            std::printf("reuse:  %llu flush B elided, %llu verify B "
                        "elided, %llu plan-image reuse(s)\n",
                        static_cast<unsigned long long>(
                            acct.flushBytesElided),
                        static_cast<unsigned long long>(
                            acct.verifyBytesElided),
                        static_cast<unsigned long long>(
                            acct.planImageReuses));
        if (cfg.fault.enabled()) {
            std::printf("faults: seed %llu, %zu injected (retries %llu, "
                        "fallbacks %llu, watchdog %llu, ecc-corrected "
                        "%llu)\n",
                        static_cast<unsigned long long>(cfg.fault.seed),
                        rt.faultModel().history().size(),
                        static_cast<unsigned long long>(acct.retryCount),
                        static_cast<unsigned long long>(
                            acct.fallbackCount),
                        static_cast<unsigned long long>(
                            acct.watchdogFires),
                        static_cast<unsigned long long>(
                            acct.eccCorrected));
            std::printf("degraded: %u/%u stacks healthy, fallback "
                        "%.6f ms on the host\n",
                        rt.healthyStackCount(), rt.numStacks(),
                        acct.fallbackSeconds * 1e3);
        }
        if (cfg.integrity.enabled() || cfg.checkpoint.enabled())
            std::printf("integrity: %.6f ms / %.6f mJ verify+journal, "
                        "%llu checkpoint(s), %llu resume(s), silent "
                        "%llu caught / %llu missed\n",
                        acct.integrity.seconds * 1e3,
                        acct.integrity.joules * 1e3,
                        static_cast<unsigned long long>(
                            acct.checkpointsTaken),
                        static_cast<unsigned long long>(
                            acct.resumedFromCheckpoint),
                        static_cast<unsigned long long>(
                            acct.silentDetected),
                        static_cast<unsigned long long>(
                            acct.silentUndetected));
        if (cfg.health.enabled())
            std::printf("health: %u/%u stacks selectable, %llu "
                        "quarantine(s), %llu readmission(s)\n",
                        rt.selectableStackCount(), rt.numStacks(),
                        static_cast<unsigned long long>(
                            acct.quarantines),
                        static_cast<unsigned long long>(
                            acct.readmissions));
        writeEnergyJson(rt, energy_json);
        return 0;
    } catch (const MealibError &e) {
        // A recoverable configuration/usage error the library reported
        // (bad fault rates, health thresholds, ...): a usage problem,
        // not an internal failure.
        std::fprintf(stderr, "%s: %s\n", cli.program().c_str(),
                     e.what());
        return 2;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
