/**
 * @file
 * mealib-run: execute a TDL program on the simulated MEALib system.
 *
 * Usage:
 *   mealib-run <program.tdl> [--params=<dir>] [--bind k=v ...]
 *              [--cost-only] [--arena-mib=N] [--verbose]
 *
 * Parameter files referenced by COMP blocks are loaded from --params
 * (default: the TDL file's directory). `$symbol` placeholders are
 * resolved from --bind options (`--bind=x=4096`, repeatable via comma
 * separation: `--bind=x=4096,y=8192`).
 *
 * With --cost-only the functional kernels are skipped and only the
 * time/energy model runs (buffers need not exist), which allows
 * paper-scale address ranges.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "runtime/runtime.hh"
#include "s2s/compiler.hh"
#include "tdl/codegen.hh"

using namespace mealib;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
dirName(const std::string &path)
{
    auto slash = path.find_last_of('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

std::map<std::string, std::uint64_t>
parseBindings(const std::string &spec)
{
    std::map<std::string, std::uint64_t> out;
    std::stringstream ss(spec);
    std::string part;
    while (std::getline(ss, part, ',')) {
        if (part.empty())
            continue;
        auto eq = part.find('=');
        fatalIf(eq == std::string::npos, "--bind entry '", part,
                "' is not k=v");
        char *end = nullptr;
        std::uint64_t v =
            std::strtoull(part.c_str() + eq + 1, &end, 0);
        fatalIf(end == nullptr || *end != '\0', "--bind value in '",
                part, "' is not a number");
        out[part.substr(0, eq)] = v;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    if (cli.positional().empty()) {
        std::fprintf(stderr,
                     "usage: %s <program.tdl> [--params=<dir>] "
                     "[--bind=k=v,...] [--cost-only]\n",
                     cli.program().c_str());
        return 2;
    }
    setVerbose(cli.has("verbose"));

    try {
        const std::string tdl_path = cli.positional()[0];
        const std::string params_dir =
            cli.get("params", dirName(tdl_path));
        auto binds = parseBindings(cli.get("bind", ""));

        std::string tdl = s2s::bindParams(readFile(tdl_path), binds);
        auto resolve = [&](const std::string &name) {
            return s2s::bindParams(readFile(params_dir + "/" + name),
                                   binds);
        };
        accel::DescriptorProgram prog = tdl::compileTdl(tdl, resolve);

        runtime::RuntimeConfig cfg;
        cfg.functional = !cli.has("cost-only");
        cfg.backingBytes = static_cast<std::uint64_t>(
                               cli.getInt("arena-mib", 64))
                           << 20;
        runtime::MealibRuntime rt(cfg);

        runtime::AccPlanHandle plan = rt.accPlan(prog);
        accel::ExecStats stats = rt.accExecute(plan);
        rt.accDestroy(plan);

        std::printf("program: %zu instruction(s), %llu expanded COMP "
                    "invocation(s), %llu pass(es)\n",
                    prog.instrs.size(),
                    static_cast<unsigned long long>(stats.compsExecuted),
                    static_cast<unsigned long long>(stats.passes));
        std::printf("time:   %.6f ms (invocation %.6f ms)\n",
                    stats.total.seconds * 1e3,
                    stats.invocation.seconds * 1e3);
        std::printf("energy: %.6f mJ (avg power %.2f W)\n",
                    stats.total.joules * 1e3, stats.total.watts());
        std::printf("DRAM traffic: %.3f MiB (%.1f GB/s effective)\n",
                    stats.bytesMoved / 1048576.0,
                    stats.bytesMoved / stats.total.seconds / 1e9);
        for (const auto &[k, v] : stats.timeByAccel.parts())
            std::printf("  %-6s %8.3f us  %8.3f uJ\n", k.c_str(),
                        v * 1e6, stats.energyByAccel.get(k) * 1e6);
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
