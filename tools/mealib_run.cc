/**
 * @file
 * mealib-run: execute a TDL program on the simulated MEALib system.
 *
 * Usage:
 *   mealib-run <program.tdl> [--params=<dir>] [--bind k=v ...]
 *              [--cost-only] [--arena-mib=N] [--verbose]
 *              [--stacks=N] [--queue-depth=N] [--scheduler=P]
 *              [--repeat=N] [--fault-seed=S] [--fault-rate=R]
 *              [--fail-stack=S[@N]] [--watchdog-us=T]
 *              [--max-retries=K]
 *
 * Parameter files referenced by COMP blocks are loaded from --params
 * (default: the TDL file's directory). `$symbol` placeholders are
 * resolved from --bind options (`--bind=x=4096`, repeatable via comma
 * separation: `--bind=x=4096,y=8192`).
 *
 * With --cost-only the functional kernels are skipped and only the
 * time/energy model runs (buffers need not exist), which allows
 * paper-scale address ranges.
 *
 * --stacks, --queue-depth and --scheduler (round_robin | locality)
 * configure the asynchronous command-queue engine; --repeat=N submits
 * the compiled program N times through accSubmit() before waiting, and
 * the summary reports the overlap-aware makespan next to the serial
 * total.
 *
 * Fault injection (docs/FAULTS.md): --fault-rate=R arms every transient
 * source (corrected/uncorrectable ECC, link CRC, command hang, compute
 * fault) at a per-attempt probability R, rolled deterministically from
 * --fault-seed. --fail-stack=S kills stack S before the first command
 * (S@N: before global command N). --watchdog-us bounds a hung command;
 * --max-retries bounds the retry ladder before host fallback. The
 * summary then adds a degraded-mode line (retries, fallbacks, watchdog
 * fires, corrected ECC events).
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "runtime/runtime.hh"
#include "s2s/compiler.hh"
#include "tdl/codegen.hh"

using namespace mealib;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
dirName(const std::string &path)
{
    auto slash = path.find_last_of('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

std::map<std::string, std::uint64_t>
parseBindings(const std::string &spec)
{
    std::map<std::string, std::uint64_t> out;
    std::stringstream ss(spec);
    std::string part;
    while (std::getline(ss, part, ',')) {
        if (part.empty())
            continue;
        auto eq = part.find('=');
        fatalIf(eq == std::string::npos, "--bind entry '", part,
                "' is not k=v");
        char *end = nullptr;
        std::uint64_t v =
            std::strtoull(part.c_str() + eq + 1, &end, 0);
        fatalIf(end == nullptr || *end != '\0', "--bind value in '",
                part, "' is not a number");
        out[part.substr(0, eq)] = v;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    if (cli.positional().empty()) {
        std::fprintf(stderr,
                     "usage: %s <program.tdl> [--params=<dir>] "
                     "[--bind=k=v,...] [--cost-only]\n",
                     cli.program().c_str());
        return 2;
    }
    setVerbose(cli.has("verbose"));

    try {
        const std::string tdl_path = cli.positional()[0];
        const std::string params_dir =
            cli.get("params", dirName(tdl_path));
        auto binds = parseBindings(cli.get("bind", ""));

        std::string tdl = s2s::bindParams(readFile(tdl_path), binds);
        auto resolve = [&](const std::string &name) {
            return s2s::bindParams(readFile(params_dir + "/" + name),
                                   binds);
        };
        accel::DescriptorProgram prog = tdl::compileTdl(tdl, resolve);

        runtime::RuntimeConfig cfg;
        cfg.functional = !cli.has("cost-only");
        cfg.backingBytes = static_cast<std::uint64_t>(
                               cli.getInt("arena-mib", 64))
                           << 20;
        cfg.numStacks = static_cast<unsigned>(cli.getInt("stacks", 1));
        cfg.queueDepth =
            static_cast<unsigned>(cli.getInt("queue-depth", 8));
        cfg.scheduler =
            runtime::schedulerPolicy(cli.get("scheduler", "locality"));

        // --- fault injection (docs/FAULTS.md) --------------------------
        cfg.fault.seed = static_cast<std::uint64_t>(
            cli.getInt("fault-seed", 0));
        const double rate = cli.getDouble("fault-rate", 0.0);
        cfg.fault.eccCorrectableRate = rate;
        cfg.fault.eccUncorrectableRate = rate;
        cfg.fault.linkCrcRate = rate;
        cfg.fault.hangRate = rate;
        cfg.fault.computeTransientRate = rate;
        const std::string fail_spec = cli.get("fail-stack", "");
        if (!fail_spec.empty()) {
            auto at = fail_spec.find('@');
            cfg.fault.failStack = static_cast<unsigned>(
                std::strtoul(fail_spec.c_str(), nullptr, 0));
            if (at != std::string::npos)
                cfg.fault.failStackAfter = std::strtoull(
                    fail_spec.c_str() + at + 1, nullptr, 0);
        }
        cfg.watchdogSeconds =
            cli.getDouble("watchdog-us", cfg.watchdogSeconds * 1e6) *
            1e-6;
        cfg.retry.maxRetries = static_cast<unsigned>(cli.getInt(
            "max-retries", cfg.retry.maxRetries));
        runtime::MealibRuntime rt(cfg);

        const std::uint64_t repeat = static_cast<std::uint64_t>(
            cli.getInt("repeat", 1));
        fatalIf(repeat == 0, "--repeat must be at least 1");

        runtime::AccPlanHandle plan = rt.accPlan(prog);
        accel::ExecStats stats;
        if (repeat == 1) {
            stats = rt.accExecute(plan);
        } else {
            // Asynchronous fan-out: N submits, one wait. Overlap shows
            // up with --stacks > 1 (on one stack the in-order queue
            // serializes the copies anyway).
            std::vector<runtime::Event> events;
            for (std::uint64_t i = 0; i < repeat; ++i)
                events.push_back(rt.accSubmit(plan));
            rt.waitAll();
            stats = events.front().stats();
            for (std::size_t i = 1; i < events.size(); ++i) {
                stats.total += events[i].stats().total;
                stats.invocation += events[i].stats().invocation;
                stats.compsExecuted += events[i].stats().compsExecuted;
                stats.passes += events[i].stats().passes;
                stats.bytesMoved += events[i].stats().bytesMoved;
            }
        }
        rt.accDestroy(plan);

        std::printf("program: %zu instruction(s), %llu expanded COMP "
                    "invocation(s), %llu pass(es)\n",
                    prog.instrs.size(),
                    static_cast<unsigned long long>(stats.compsExecuted),
                    static_cast<unsigned long long>(stats.passes));
        std::printf("time:   %.6f ms (invocation %.6f ms)\n",
                    stats.total.seconds * 1e3,
                    stats.invocation.seconds * 1e3);
        std::printf("energy: %.6f mJ (avg power %.2f W)\n",
                    stats.total.joules * 1e3, stats.total.watts());
        std::printf("DRAM traffic: %.3f MiB (%.1f GB/s effective)\n",
                    stats.bytesMoved / 1048576.0,
                    stats.bytesMoved / stats.total.seconds / 1e9);
        for (const auto &[k, v] : stats.timeByAccel.parts())
            std::printf("  %-6s %8.3f us  %8.3f uJ\n", k.c_str(),
                        v * 1e6, stats.energyByAccel.get(k) * 1e6);
        const runtime::RuntimeAccounting &acct = rt.accounting();
        std::printf("queue:  %u stack(s), depth %u, %s scheduler\n",
                    rt.numStacks(), cfg.queueDepth,
                    runtime::name(cfg.scheduler));
        std::printf("makespan: %.6f ms (serial %.6f ms, overlap saved "
                    "%.6f ms)\n",
                    acct.makespanSeconds * 1e3,
                    acct.total().seconds * 1e3,
                    acct.overlapSavedSeconds() * 1e3);
        if (cfg.fault.enabled()) {
            std::printf("faults: seed %llu, %zu injected (retries %llu, "
                        "fallbacks %llu, watchdog %llu, ecc-corrected "
                        "%llu)\n",
                        static_cast<unsigned long long>(cfg.fault.seed),
                        rt.faultModel().history().size(),
                        static_cast<unsigned long long>(acct.retryCount),
                        static_cast<unsigned long long>(
                            acct.fallbackCount),
                        static_cast<unsigned long long>(
                            acct.watchdogFires),
                        static_cast<unsigned long long>(
                            acct.eccCorrected));
            std::printf("degraded: %u/%u stacks healthy, fallback "
                        "%.6f ms on the host\n",
                        rt.healthyStackCount(), rt.numStacks(),
                        acct.fallbackSeconds * 1e3);
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
