/**
 * @file
 * mealib-s2s: the standalone source-to-source compiler driver.
 *
 * Usage:
 *   mealib-s2s <input.c> [--out=<dir>] [--tdl-only] [--quiet]
 *
 * Reads a C source file, translates the accelerable library calls
 * (paper Sec. 3.4) and writes:
 *   <dir>/<input>.mea.c     transformed source
 *   <dir>/<input>.tdl       generated TDL program
 *   <dir>/<param files>     one .para file per COMP block
 * Diagnostics go to stderr; exit code 0 on success.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "s2s/compiler.hh"

using namespace mealib;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open input file '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot write output file '", path, "'");
    out << text;
}

std::string
baseName(const std::string &path)
{
    auto slash = path.find_last_of('/');
    std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    auto dot = name.find_last_of('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    if (cli.positional().empty()) {
        std::fprintf(stderr,
                     "usage: %s <input.c> [--out=<dir>] [--tdl-only]\n",
                     cli.program().c_str());
        return 2;
    }

    try {
        const std::string input = cli.positional()[0];
        const std::string outdir = cli.get("out", ".");
        const std::string base = baseName(input);

        s2s::TranslationResult r = s2s::translate(readFile(input));

        for (const auto &d : r.notes)
            std::fprintf(stderr, "%s:%u: note: %s\n", input.c_str(),
                         d.line, d.message.c_str());

        writeFile(outdir + "/" + base + ".tdl", r.tdl);
        if (!cli.has("tdl-only")) {
            writeFile(outdir + "/" + base + ".mea.c", r.source);
            for (const auto &[file, text] : r.paramFiles)
                writeFile(outdir + "/" + file, text);
        }

        if (!cli.has("quiet")) {
            std::printf("%s: %u plan site(s), %u allocation rewrites, "
                        "%llu library calls absorbed, %zu parameter "
                        "file(s)\n",
                        input.c_str(), r.plansEmitted, r.allocRewrites,
                        static_cast<unsigned long long>(r.callsAbsorbed),
                        r.paramFiles.size());
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
