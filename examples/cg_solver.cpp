/**
 * @file
 * Conjugate-gradient solver on MEALib — an application beyond the
 * paper's evaluation that exercises the same Table-1 operations (SPMV,
 * DOT, AXPY) and the Listing-2 plan-reuse pattern: the SPMV and DOT
 * descriptors are built once and re-executed every iteration.
 *
 * Run: ./build/examples/cg_solver [--n=20000] [--tol=1e-4]
 */

#include <cmath>
#include <cstdio>

#include "apps/cg.hh"
#include "common/cli.hh"
#include "runtime/runtime.hh"

using namespace mealib;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const std::int64_t n = cli.getInt("n", 20000);
    apps::CgOptions opts;
    opts.tolerance = cli.getDouble("tol", 1e-4);
    opts.maxIterations =
        static_cast<unsigned>(cli.getInt("max-iters", 300));

    std::printf("building SPD system: RGG Laplacian, n = %lld...\n",
                static_cast<long long>(n));
    mkl::CsrMatrix a = apps::cgTestMatrix(n, 2026);
    std::vector<float> b(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        b[static_cast<std::size_t>(i)] =
            std::sin(0.01 * static_cast<double>(i));
    std::printf("  nnz = %lld (avg degree %.1f)\n",
                static_cast<long long>(a.nnz()), a.avgDegree());

    apps::CgResult host = apps::solveCgHost(a, b, opts);
    std::printf("host CG:   %u iterations, ||r|| = %.3e, %s\n",
                host.iterations, host.residualNorm,
                host.converged ? "converged" : "NOT converged");

    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 256_MiB;
    runtime::MealibRuntime rt(cfg);
    apps::CgResult mea = apps::solveCgMealib(a, b, rt, opts);
    std::printf("MEALib CG: %u iterations, ||r|| = %.3e, %s\n",
                mea.iterations, mea.residualNorm,
                mea.converged ? "converged" : "NOT converged");
    std::printf("  %llu plans (%llu executes): SPMV/DOT plans reused "
                "across all iterations\n",
                static_cast<unsigned long long>(mea.descriptors),
                static_cast<unsigned long long>(mea.executes));
    std::printf("  accel %.3f ms + invocation %.3f ms (simulated)\n",
                mea.accel.seconds * 1e3, mea.invocation.seconds * 1e3);

    double maxdiff = 0.0;
    for (std::size_t i = 0; i < host.x.size(); ++i)
        maxdiff = std::max(maxdiff, static_cast<double>(std::fabs(
                                        host.x[i] - mea.x[i])));
    std::printf("solution check: max |host - mealib| = %.2e (%s)\n",
                maxdiff, maxdiff == 0.0 ? "bit-identical" : "check");

    // Independent residual check against the original system.
    std::vector<float> ax(static_cast<std::size_t>(n));
    mkl::scsrmv(a, mea.x.data(), ax.data());
    double rn = 0.0, bn = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        double d = static_cast<double>(b[i]) - ax[i];
        rn += d * d;
        bn += static_cast<double>(b[i]) * b[i];
    }
    std::printf("verified relative residual: %.3e (tolerance %.1e)\n",
                std::sqrt(rn / bn), opts.tolerance);
    return host.converged && mea.converged && maxdiff == 0.0 ? 0 : 1;
}
