/**
 * @file
 * FFT-based circular convolution on MEALib — the spectral-methods
 * pattern (the third of the paper's three accelerated domains): two
 * forward FFTs on the accelerators, a pointwise product on the host
 * (compute-dense, stays there per the paper's split), and an inverse
 * FFT back on the accelerators.
 *
 * Verifies the result against a direct O(n^2) convolution.
 *
 * Run: ./build/examples/fft_convolution [--n=4096]
 */

#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "minimkl/fft.hh"
#include "runtime/runtime.hh"

using namespace mealib;
using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;
using mkl::cfloat;

namespace {

OpCall
fftCall(runtime::MealibRuntime &rt, const cfloat *in, cfloat *out,
        std::uint64_t n, int dir)
{
    OpCall c;
    c.kind = AccelKind::FFT;
    c.n = n;
    c.complexData = true;
    c.fftDir = dir;
    c.in0.base = rt.physOf(in);
    c.out.base = rt.physOf(out);
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const auto n = static_cast<std::uint64_t>(cli.getInt("n", 4096));
    if (n == 0 || (n & (n - 1)) != 0) {
        std::fprintf(stderr, "--n must be a power of two\n");
        return 2;
    }

    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    runtime::MealibRuntime rt(cfg);

    auto *a = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *b = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *fa = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *fb = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *prod = static_cast<cfloat *>(rt.memAlloc(n * 8));
    auto *result = static_cast<cfloat *>(rt.memAlloc(n * 8));

    // A smooth signal convolved with a short box kernel.
    for (std::uint64_t i = 0; i < n; ++i) {
        a[i] = {static_cast<float>(
                    std::sin(2.0 * M_PI * 3.0 * static_cast<double>(i) /
                             static_cast<double>(n))),
                0.0f};
        b[i] = i < 8 ? cfloat{1.0f / 8.0f, 0.0f} : cfloat{};
    }

    // Pass 1 (accelerators): both forward transforms in one descriptor.
    DescriptorProgram fwd;
    fwd.addComp(fftCall(rt, a, fa, n, -1));
    fwd.addPassEnd();
    fwd.addComp(fftCall(rt, b, fb, n, -1));
    fwd.addPassEnd();
    auto h_fwd = rt.accPlan(fwd);
    accel::ExecStats s_fwd = rt.accExecute(h_fwd);
    rt.accDestroy(h_fwd);

    // Host: pointwise spectral product (compute-dense, per-element FMA).
    for (std::uint64_t i = 0; i < n; ++i)
        prod[i] = fa[i] * fb[i];

    // Pass 2 (accelerators): inverse transform.
    DescriptorProgram bwd;
    bwd.addComp(fftCall(rt, prod, result, n, +1));
    bwd.addPassEnd();
    auto h_bwd = rt.accPlan(bwd);
    accel::ExecStats s_bwd = rt.accExecute(h_bwd);
    rt.accDestroy(h_bwd);
    mkl::fftNormalize(result, static_cast<std::int64_t>(n),
                      static_cast<std::int64_t>(n));

    // Oracle: direct circular convolution (on a subsample for big n).
    double max_err = 0.0;
    const std::uint64_t check = std::min<std::uint64_t>(n, 512);
    for (std::uint64_t i = 0; i < check; ++i) {
        cfloat acc{};
        for (std::uint64_t k = 0; k < n; ++k)
            acc += a[k] * b[(i + n - k) % n];
        max_err = std::max(max_err,
                           static_cast<double>(std::abs(result[i] - acc)));
    }

    std::printf("circular convolution of %llu points via MEALib FFTs\n",
                static_cast<unsigned long long>(n));
    std::printf("forward pair: %.3f ms, inverse: %.3f ms (simulated)\n",
                s_fwd.total.seconds * 1e3, s_bwd.total.seconds * 1e3);
    std::printf("max |fft-conv - direct-conv| over %llu checked points: "
                "%.3e\n",
                static_cast<unsigned long long>(check), max_err);

    bool ok = max_err < 1e-3;
    std::printf("%s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
