/**
 * @file
 * Surviving hardware failure with the fault-injection layer
 * (docs/FAULTS.md): the same pipeline keeps producing correct results
 * while a stack dies mid-run, transient faults are retried, and the
 * ledger itemizes what recovery cost.
 *
 *  1. create a 2-stack runtime with seeded transient faults armed and a
 *     scripted whole-stack failure halfway through the run;
 *  2. submit a batch of independent updates — early ones land on both
 *     stacks, then stack 0 dies: its queued commands drain to stack 1
 *     and new submissions steer away on their own;
 *  3. every Event reports how it completed (DONE / RETRIED / FELL_BACK)
 *     and results are bit-identical to a fault-free run — the retry and
 *     fallback machinery re-places cost, never recomputes differently;
 *  4. the accounting's degraded-mode fields (retryCount, fallbackCount,
 *     watchdogFires, fallbackSeconds) price the whole episode.
 *
 * Build: cmake --build build --target degraded_pipeline
 * Run:   ./build/examples/degraded_pipeline
 */

#include <cstdio>

#include "runtime/runtime.hh"

using namespace mealib;
using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;

namespace {

constexpr std::int64_t kSlice = 1 << 13; // floats per LOOP iteration
constexpr std::uint32_t kIters = 128;
constexpr std::int64_t kN = kSlice * kIters;
constexpr unsigned kBatch = 8;

/** y := alpha*x + y as one LOOP descriptor over kIters slices. */
runtime::AccPlanHandle
planAxpy(runtime::MealibRuntime &rt, float alpha, const float *x,
         float *y)
{
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = kSlice;
    c.alpha = alpha;
    c.beta = 1.0f;
    c.in0.base = rt.physOf(x);
    c.in0.stride = {kSlice * 4, 0, 0, 0};
    c.out.base = rt.physOf(y);
    c.out.stride = {kSlice * 4, 0, 0, 0};
    accel::LoopSpec loop;
    loop.dims = {kIters, 1, 1, 1};
    DescriptorProgram prog;
    prog.addLoop(loop, 2);
    prog.addComp(c);
    prog.addPassEnd();
    return rt.accPlan(prog);
}

} // namespace

int
main()
{
    // 1. Two stacks; transient compute faults at 20% per attempt, and
    //    stack 0 scripted to die right before the 4th command. The seed
    //    makes every run of this example inject identical faults.
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    cfg.numStacks = 2;
    cfg.fault.seed = 2026;
    cfg.fault.computeTransientRate = 0.2;
    cfg.fault.failStack = 0;
    cfg.fault.failStackAfter = kBatch / 2;
    cfg.retry.maxRetries = 3;
    runtime::MealibRuntime rt(cfg);

    auto *x = static_cast<float *>(rt.memAllocOn(0, kN * 4));
    auto *y = static_cast<float *>(rt.memAllocOn(0, kN * 4));
    for (std::int64_t i = 0; i < kN; ++i) {
        x[i] = 1.0f;
        y[i] = 0.5f;
    }

    // 2. A batch of independent updates, alternated onto both stacks by
    //    hand. Submissions 0-3 spread normally; the scripted failure
    //    then fires, drains stack 0's backlog to stack 1, and reroutes
    //    the explicit stack-0 requests that follow.
    runtime::AccPlanHandle plan = planAxpy(rt, 1.0f, x, y);
    runtime::Event events[kBatch];
    for (unsigned i = 0; i < kBatch; ++i)
        events[i] = rt.accSubmitOn(plan, i % 2);
    rt.waitAll();

    // 3. Per-command outcome: how each one completed and where.
    for (unsigned i = 0; i < kBatch; ++i) {
        runtime::Event &e = events[i];
        std::printf("command %u: %-9s on %s, %u retr%s\n", i,
                    runtime::name(e.state()),
                    e.stats().fellBack ? "host " : "stack",
                    e.retries(), e.retries() == 1 ? "y" : "ies");
        if (!runtime::completed(e.state()))
            std::printf("  !! %s\n", e.status().toString().c_str());
    }
    std::printf("y[0] = %.1f (expected %.1f — every command applied "
                "exactly once)\n",
                static_cast<double>(y[0]), 0.5 + 1.0 * kBatch);
    std::printf("stack 0 failed: %s, healthy stacks: %u/%u\n",
                rt.stackFailed(0) ? "yes" : "no", rt.healthyStackCount(),
                rt.numStacks());

    // 4. What the episode cost, itemized by the degraded-mode ledger.
    const runtime::RuntimeAccounting &acct = rt.accounting();
    std::printf("recovery: %llu retried attempt(s), %llu host "
                "fallback(s) (%.3f ms), %llu watchdog fire(s)\n",
                static_cast<unsigned long long>(acct.retryCount),
                static_cast<unsigned long long>(acct.fallbackCount),
                acct.fallbackSeconds * 1e3,
                static_cast<unsigned long long>(acct.watchdogFires));
    std::printf("%zu fault(s) injected; makespan %.3f ms vs serial "
                "%.3f ms\n",
                rt.faultModel().history().size(),
                acct.makespanSeconds * 1e3, acct.total().seconds * 1e3);

    rt.accDestroy(plan);
    rt.memFree(x);
    rt.memFree(y);
    return 0;
}
