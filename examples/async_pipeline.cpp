/**
 * @file
 * Asynchronous submission with the command-queue engine
 * (docs/RUNTIME.md): overlap two independent descriptors across two
 * memory stacks, then chain a dependent one and let hazard tracking
 * order it.
 *
 *  1. create a 2-stack runtime and home one working set per stack;
 *  2. accSubmit() both halves — each lands on its local stack's queue
 *     and the two execute concurrently on the simulated timeline;
 *  3. submit a third descriptor that reads both outputs: the runtime
 *     infers the RAW dependencies from the operands and starts it only
 *     after both producers finish — no manual wait needed;
 *  4. Event::wait() / waitAll() advance the host to DONE; the ledger's
 *     makespan shows the wall-clock win over the serial total.
 *
 * Build: cmake --build build --target async_pipeline
 * Run:   ./build/examples/async_pipeline
 */

#include <cstdio>

#include "runtime/runtime.hh"

using namespace mealib;
using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;

namespace {

constexpr std::int64_t kSlice = 1 << 13; // floats per LOOP iteration
constexpr std::uint32_t kIters = 128;
constexpr std::int64_t kN = kSlice * kIters;

/** y := alpha*x + y as one LOOP descriptor over kIters slices. The
 * LOOP form keeps the submit-time cache flush to a single iteration's
 * footprint, so the invocation cost stays far below the accelerator
 * span — that headroom is what asynchrony overlaps. */
runtime::AccPlanHandle
planAxpy(runtime::MealibRuntime &rt, float alpha, const float *x,
         float *y)
{
    OpCall c;
    c.kind = AccelKind::AXPY;
    c.n = kSlice;
    c.alpha = alpha;
    c.beta = 1.0f;
    c.in0.base = rt.physOf(x);
    c.in0.stride = {kSlice * 4, 0, 0, 0};
    c.out.base = rt.physOf(y);
    c.out.stride = {kSlice * 4, 0, 0, 0};
    accel::LoopSpec loop;
    loop.dims = {kIters, 1, 1, 1};
    DescriptorProgram prog;
    prog.addLoop(loop, 2);
    prog.addComp(c);
    prog.addPassEnd();
    return rt.accPlan(prog);
}

} // namespace

int
main()
{
    // 1. Two memory stacks, each with its own in-order command queue.
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    cfg.numStacks = 2;
    runtime::MealibRuntime rt(cfg);

    const std::int64_t n = kN;
    auto *a = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *b = static_cast<float *>(rt.memAllocOn(0, n * 4));
    auto *c = static_cast<float *>(rt.memAllocOn(1, n * 4));
    auto *d = static_cast<float *>(rt.memAllocOn(1, n * 4));
    for (std::int64_t i = 0; i < n; ++i) {
        a[i] = 1.0f;
        b[i] = 2.0f;
        c[i] = 3.0f;
        d[i] = 4.0f;
    }

    // 2. Two independent updates, one per stack. The default locality
    //    scheduler homes each on its output's stack, so they overlap.
    runtime::AccPlanHandle p1 = planAxpy(rt, 2.0f, a, b); // b += 2a
    runtime::AccPlanHandle p2 = planAxpy(rt, 3.0f, c, d); // d += 3c
    runtime::Event e1 = rt.accSubmit(p1);
    runtime::Event e2 = rt.accSubmit(p2);

    // 3. d += b reads p1's output and writes p2's: the runtime sees the
    //    RAW/WAW hazards and starts it after both producers, without
    //    any wait on our part.
    runtime::AccPlanHandle p3 = planAxpy(rt, 1.0f, b, d);
    runtime::Event e3 = rt.accSubmit(p3);

    // 4. Drain the queues and read the ledger.
    rt.waitAll();
    const runtime::RuntimeAccounting &acct = rt.accounting();

    std::printf("d[0] = %.1f (expected %.1f)\n",
                static_cast<double>(d[0]), 4.0 + 3.0 * 3.0 + 4.0);
    std::printf("producers overlapped: e2 started %.3f ms before e1 "
                "finished\n",
                (e1.finishSeconds() - e2.startSeconds()) * 1e3);
    std::printf("consumer waited for both: e3 start %.3f ms >= "
                "max(producer finish) %.3f ms\n",
                e3.startSeconds() * 1e3,
                (e1.finishSeconds() > e2.finishSeconds()
                     ? e1.finishSeconds()
                     : e2.finishSeconds()) *
                    1e3);
    std::printf("serial total %.3f ms, makespan %.3f ms, overlap saved "
                "%.3f ms\n",
                acct.total().seconds * 1e3, acct.makespanSeconds * 1e3,
                acct.overlapSavedSeconds() * 1e3);

    rt.accDestroy(p1);
    rt.accDestroy(p2);
    rt.accDestroy(p3);
    rt.memFree(a);
    rt.memFree(b);
    rt.memFree(c);
    rt.memFree(d);
    return 0;
}
