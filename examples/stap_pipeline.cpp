/**
 * @file
 * STAP (Space-Time Adaptive Processing) on MEALib — the paper's
 * real-world application (Sec. 3.1 / 5.5).
 *
 * Runs the full Table-4 pipeline twice: once entirely through MiniMKL
 * on the host model (the optimized legacy baseline) and once with the
 * memory-bounded calls routed to the accelerators (compacted into 3
 * descriptors). Verifies the outputs are bit-identical and reports the
 * Fig. 13-style gains and Fig. 14-style breakdown.
 *
 * Run: ./build/examples/stap_pipeline [--medium|--large]
 */

#include <complex>
#include <cstdio>

#include "apps/stap.hh"
#include "common/cli.hh"
#include "runtime/runtime.hh"

using namespace mealib;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    apps::StapParams params = apps::StapParams::smallSet();
    std::uint64_t arena = 128_MiB;
    if (cli.has("medium")) {
        params = apps::StapParams::mediumSet();
        arena = 256_MiB;
    } else if (cli.has("large")) {
        params = apps::StapParams::largeSet();
        arena = 1536_MiB;
    }

    std::printf("STAP: %u channels x %u dof, %u doppler bins, %u blocks "
                "x %u cells, %u steering vectors (%llu inner products)\n",
                params.nChan, params.tdof, params.nDop, params.nBlocks,
                params.tbs, params.nSteering,
                static_cast<unsigned long long>(params.dotCalls()));

    std::printf("\n[1/2] legacy baseline: MiniMKL + OpenMP on the "
                "Haswell model...\n");
    apps::StapResult host = apps::runStapHost(params);
    std::printf("  time %.2f ms, energy %.3f J (%llu library calls)\n",
                host.total().seconds * 1e3, host.total().joules,
                static_cast<unsigned long long>(host.libraryCalls));

    std::printf("[2/2] same pipeline on MEALib accelerators...\n");
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = arena;
    runtime::MealibRuntime rt(cfg);
    apps::StapResult mea = apps::runStapMealib(params, rt);
    std::printf("  time %.2f ms, energy %.3f J (%llu calls -> %llu "
                "descriptors)\n",
                mea.total().seconds * 1e3, mea.total().joules,
                static_cast<unsigned long long>(mea.libraryCalls),
                static_cast<unsigned long long>(mea.descriptors));

    double maxdiff = 0.0;
    for (std::size_t i = 0; i < host.prods.size(); ++i)
        maxdiff = std::max(maxdiff,
                           static_cast<double>(std::abs(
                               host.prods[i] - mea.prods[i])));
    std::printf("\noutput check: %s\n",
                maxdiff == 0.0 ? "bit-identical" : "DIFFERS");

    std::printf("performance gain: %.2fx   EDP gain: %.2fx   (paper "
                "Fig. 13: 2.0-3.2x / 4.5-10.2x)\n",
                host.total().seconds / mea.total().seconds,
                host.total().edp() / mea.total().edp());

    std::printf("\nMEALib-side breakdown (Fig. 14):\n");
    std::printf("  host  : %5.1f%% time, %5.1f%% energy\n",
                100.0 * mea.host.seconds / mea.total().seconds,
                100.0 * mea.host.joules / mea.total().joules);
    std::printf("  accel : %5.1f%% time, %5.1f%% energy\n",
                100.0 * mea.accel.seconds / mea.total().seconds,
                100.0 * mea.accel.joules / mea.total().joules);
    for (const auto &[k, v] : mea.timeByAccel.parts())
        std::printf("    %-5s %5.1f%% of accelerator time\n", k.c_str(),
                    100.0 * v / mea.accel.seconds);
    std::printf("  invoc : %5.1f%% time\n",
                100.0 * mea.invocation.seconds / mea.total().seconds);
    return maxdiff == 0.0 ? 0 : 1;
}
