/* Sample legacy program for the mealib-s2s smoke test. */
float *x = malloc(4096 * sizeof(float));
float *y = malloc(4096 * sizeof(float));

cblas_saxpy(1024, 2.0, x, 1, y, 1);

#pragma omp parallel for
for (i = 0; i < 16; ++i)
    cblas_sdot(256, &x[i * 256], 1, &y[i * 256], 1);

free(x);
free(y);
