/**
 * @file
 * MEALib quickstart: the minimal end-to-end flow.
 *
 *  1. create a runtime (host model + 3D-stacked accelerator stack);
 *  2. allocate operands in the physically contiguous shared space
 *     (mealib_mem_alloc semantics);
 *  3. describe a computation as an accelerator descriptor — here one
 *     PASS with a single AXPY, then a DOT over the result;
 *  4. plan / execute / destroy (Listing 2 of the paper);
 *  5. read the result back through the host's virtual mapping and
 *     inspect the simulated time/energy.
 *
 * Build: cmake --build build --target quickstart
 * Run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "runtime/runtime.hh"

using namespace mealib;
using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;

int
main()
{
    // 1. Runtime: Haswell-class host + HMC-like stack, 64 MiB arena.
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    runtime::MealibRuntime rt(cfg);

    // 2. Operands live in the shared physically contiguous data space.
    const std::int64_t n = 1 << 20;
    auto *x = static_cast<float *>(rt.memAlloc(n * sizeof(float)));
    auto *y = static_cast<float *>(rt.memAlloc(n * sizeof(float)));
    auto *dot = static_cast<float *>(rt.memAlloc(sizeof(float)));
    for (std::int64_t i = 0; i < n; ++i) {
        x[i] = 1.0f;
        y[i] = static_cast<float>(i % 7);
    }

    // 3. One descriptor, two passes: y := 2x + y, then dot = x . y.
    OpCall axpy;
    axpy.kind = AccelKind::AXPY;
    axpy.n = static_cast<std::uint64_t>(n);
    axpy.alpha = 2.0f;
    axpy.beta = 1.0f; // axpby semantics: y := alpha*x + beta*y
    axpy.in0.base = rt.physOf(x); // accelerators use physical addresses
    axpy.out.base = rt.physOf(y);

    OpCall sdot;
    sdot.kind = AccelKind::DOT;
    sdot.n = static_cast<std::uint64_t>(n);
    sdot.in0.base = rt.physOf(x);
    sdot.in1.base = rt.physOf(y);
    sdot.out.base = rt.physOf(dot);

    DescriptorProgram prog;
    prog.addComp(axpy);
    prog.addPassEnd();
    prog.addComp(sdot);
    prog.addPassEnd();

    // 4. Plan once, execute (flush caches, write START, wait for DONE).
    runtime::AccPlanHandle plan = rt.accPlan(prog);
    accel::ExecStats stats = rt.accExecute(plan);
    rt.accDestroy(plan);

    // 5. Results are visible through the virtual mapping immediately.
    double expect = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
        expect += 2.0 + static_cast<double>(i % 7);
    std::printf("dot(x, 2x+y) = %.1f (expected %.1f)\n",
                static_cast<double>(*dot), expect);
    std::printf("accelerator time: %.3f ms, energy: %.3f mJ, "
                "invocation overhead: %.3f ms\n",
                stats.total.seconds * 1e3, stats.total.joules * 1e3,
                stats.invocation.seconds * 1e3);
    std::printf("traffic: %.1f MiB at %.1f GB/s effective\n",
                stats.bytesMoved / 1048576.0,
                stats.bytesMoved / stats.total.seconds / 1e9);

    rt.memFree(x);
    rt.memFree(y);
    rt.memFree(dot);
    return 0;
}
