/**
 * @file
 * SAR image-formation chain on MEALib: hardware accelerator chaining
 * (paper Sec. 5.4, Fig. 12a).
 *
 * The per-row pipeline — windowed-sinc range interpolation (RESMP)
 * feeding an azimuth FFT — runs once as a single chained PASS and once
 * as two separate descriptor invocations. Both produce the same image;
 * the chained version avoids one invocation and the DRAM round trip of
 * the intermediate.
 *
 * Run: ./build/examples/sar_chain [--size=N] [--sweep]
 */

#include <complex>
#include <cstdio>

#include "apps/sar.hh"
#include "common/cli.hh"
#include "runtime/runtime.hh"

using namespace mealib;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    std::uint64_t n = static_cast<std::uint64_t>(
        cli.getInt("size", 128));

    // Functional run at a laptop-friendly size.
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 128_MiB;
    runtime::MealibRuntime rt(cfg);

    std::printf("SAR chain on a %llux%llu image (range samples "
                "upsampled 2x, then azimuth FFT)\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(n));

    apps::SarResult hw = apps::runSarChain(n, true, rt);
    apps::SarResult sw = apps::runSarChain(n, false, rt);

    double maxdiff = 0.0;
    for (std::size_t i = 0; i < hw.image.size(); ++i)
        maxdiff = std::max(maxdiff,
                           static_cast<double>(std::abs(
                               hw.image[i] - sw.image[i])));
    std::printf("hardware chaining : %llu descriptor(s), %.3f ms\n",
                static_cast<unsigned long long>(hw.descriptors),
                hw.total.seconds * 1e3);
    std::printf("software chaining : %llu descriptor(s), %.3f ms\n",
                static_cast<unsigned long long>(sw.descriptors),
                sw.total.seconds * 1e3);
    std::printf("speedup from chaining: %.2fx; images %s\n",
                sw.total.seconds / hw.total.seconds,
                maxdiff == 0.0 ? "identical" : "DIFFER");

    // Spot-check the image has energy where a radar return would be.
    double energy = 0.0;
    for (auto v : hw.image)
        energy += std::norm(v);
    std::printf("image energy: %.3e (nonzero => pipeline actually "
                "computed)\n", energy);

    if (cli.has("sweep")) {
        std::printf("\ncost-model sweep over Fig. 12a sizes:\n");
        runtime::RuntimeConfig mc;
        mc.functional = false;
        mc.backingBytes = 8_MiB;
        runtime::MealibRuntime model_rt(mc);
        for (std::uint64_t s : {256, 512, 1024, 2048, 4096, 8192}) {
            double t_hw =
                apps::runSarChain(s, true, model_rt).total.seconds;
            double t_sw =
                apps::runSarChain(s, false, model_rt).total.seconds;
            std::printf("  %5llu: SW/HW = %.2fx\n",
                        static_cast<unsigned long long>(s),
                        t_sw / t_hw);
        }
    }
    return maxdiff == 0.0 ? 0 : 1;
}
