/**
 * @file
 * The portability story end to end (paper Secs. 3 and 3.4): take a
 * legacy C program written against MKL/FFTW APIs, run it through the
 * source-to-source compiler, and execute the generated TDL on the
 * accelerators — no reimplementation of the legacy code.
 *
 *  legacy C  --s2s-->  transformed C + TDL + param files
 *                       --bind-->  descriptor  --runtime-->  accelerators
 *
 * The example prints the transformed source (so you can see the
 * malloc -> mealib_mem_alloc and call -> acc_plan rewrites), then
 * actually executes the descriptor and verifies the numerics against a
 * plain host run of the same legacy code.
 *
 * Run: ./build/examples/legacy_port
 */

#include <cstdio>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "minimkl/blas1.hh"
#include "runtime/runtime.hh"
#include "s2s/compiler.hh"
#include "tdl/codegen.hh"

using namespace mealib;

namespace {

// The "legacy" program: a Listing-1-flavoured snippet using standard
// allocation and an OpenMP-parallel batch of saxpy calls.
const char *kLegacySource = R"(
/* legacy radar post-processing kernel (unchanged application code) */
float *gain = malloc(N_BATCH * N_SAMP * sizeof(float));
float *acc  = malloc(N_BATCH * N_SAMP * sizeof(float));

#pragma omp parallel for num_threads(4)
for (b = 0; b < 8; ++b)
    cblas_saxpy(4096, 0.5, &gain[b * 4096], 1, &acc[b * 4096], 1);

free(gain);
free(acc);
)";

} // namespace

int
main()
{
    std::printf("--- legacy source ---------------------------------\n");
    std::printf("%s\n", kLegacySource);

    // Source-to-source translation (the compiler of Sec. 3.4).
    s2s::TranslationResult tr = s2s::translate(kLegacySource);

    std::printf("--- transformed source ----------------------------\n");
    std::printf("%s\n", tr.source.c_str());
    std::printf("--- generated TDL ---------------------------------\n");
    std::printf("%s\n", tr.tdl.c_str());
    for (const auto &[file, text] : tr.paramFiles)
        std::printf("--- %s ---\n%s\n", file.c_str(), text.c_str());
    for (const auto &d : tr.notes)
        std::printf("note (line %u): %s\n", d.line, d.message.c_str());

    std::printf("%u plan site(s), %u allocation rewrites, %llu library "
                "calls absorbed\n\n",
                tr.plansEmitted, tr.allocRewrites,
                static_cast<unsigned long long>(tr.callsAbsorbed));

    // Execute: what the rewritten program does at run time.
    const std::int64_t batch = 8, nsamp = 4096;
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 32_MiB;
    runtime::MealibRuntime rt(cfg);
    auto *gain = static_cast<float *>(
        rt.memAlloc(batch * nsamp * sizeof(float)));
    auto *acc = static_cast<float *>(
        rt.memAlloc(batch * nsamp * sizeof(float)));
    std::vector<float> gain_ref(static_cast<std::size_t>(batch * nsamp));
    std::vector<float> acc_ref(gain_ref.size());
    for (std::int64_t i = 0; i < batch * nsamp; ++i) {
        gain[i] = static_cast<float>(i % 101) * 0.01f;
        acc[i] = 1.0f;
        gain_ref[static_cast<std::size_t>(i)] = gain[i];
        acc_ref[static_cast<std::size_t>(i)] = acc[i];
    }

    // Late binding: resolve the $placeholders the compiler left for the
    // values only known at run time (the generated mealib_acc_plan call
    // performs exactly this step).
    std::map<std::string, std::uint64_t> syms{
        {"gain", rt.physOf(gain)},
        {"acc", rt.physOf(acc)},
        {"gain_stride0", nsamp * sizeof(float)},
        {"acc_stride0", nsamp * sizeof(float)},
    };
    auto resolve = [&](const std::string &name) {
        auto it = tr.paramFiles.find(name);
        fatalIf(it == tr.paramFiles.end(), "missing param file ", name);
        return s2s::bindParams(it->second, syms);
    };
    accel::DescriptorProgram prog =
        tdl::compileTdl(s2s::bindParams(tr.tdl, syms), resolve);

    runtime::AccPlanHandle plan = rt.accPlan(prog);
    accel::ExecStats stats = rt.accExecute(plan);
    rt.accDestroy(plan);

    // Reference: the legacy code run as-is on the host library.
    for (std::int64_t b = 0; b < batch; ++b)
        mkl::saxpy(nsamp, 0.5f, gain_ref.data() + b * nsamp, 1,
                   acc_ref.data() + b * nsamp, 1);

    double maxdiff = 0.0;
    for (std::int64_t i = 0; i < batch * nsamp; ++i)
        maxdiff = std::max(maxdiff,
                           static_cast<double>(std::abs(
                               acc[i] -
                               acc_ref[static_cast<std::size_t>(i)])));
    std::printf("accelerator vs legacy host output: max |diff| = %.1e "
                "(%s)\n",
                maxdiff, maxdiff == 0.0 ? "bit-identical" : "check");
    std::printf("8 saxpy calls -> 1 descriptor, %.3f ms total "
                "(%.3f ms invocation)\n",
                stats.total.seconds * 1e3,
                stats.invocation.seconds * 1e3);

    rt.memFree(gain);
    rt.memFree(acc);
    return maxdiff == 0.0 ? 0 : 1;
}
