/**
 * @file
 * Ablation: accelerator-side design choices DESIGN.md calls out (not a
 * paper figure).
 *
 *  1. SPMV local-memory capacity: how much of the gather vector the
 *     tiles can pin decides the residual DRAM gather rate (the paper's
 *     justification for SPMV's 14.17 mm^2);
 *  2. FFT local memory: the single-pass / two-pass crossover of the
 *     DRAM-optimized FFT;
 *  3. SPMV MSHR-style gather concurrency (PE count at fixed clock);
 *  4. operand placement: local vs remote memory stack (Sec. 3.3).
 */

#include <cstdio>

#include "accel/config.hh"
#include "accel/model.hh"
#include "bench_util.hh"
#include "dram/params.hh"
#include "mealib/platform.hh"
#include "noc/mesh.hh"
#include "runtime/runtime.hh"

using namespace mealib;
using mealib::accel::AccelKind;

int
main()
{
    bench::banner("Ablation: accelerator-side design choices",
                  "SPMV local memory & gather concurrency, FFT pass "
                  "crossover, operand placement");

    std::printf("(1) SPMV: per-tile local memory (x vector pinning)\n");
    bench::Table t1({"LM (KiB/tile)", "x resident", "GFLOPS",
                     "GFLOPS/W"});
    // Full-scale rgg (4 MiB gather vector) so local memory actually
    // becomes the contended resource.
    eval::Workload spmv = eval::table2Workload(AccelKind::SPMV, 1.0);
    for (std::uint64_t lm : {16u, 32u, 64u, 128u, 256u}) {
        accel::AccelConfig cfg = accel::defaultConfig(AccelKind::SPMV);
        cfg.localMemKiB = lm;
        accel::AccelModel m(AccelKind::SPMV, cfg, dram::hmcStack(),
                            noc::mealibMesh());
        accel::AccelEstimate e = m.estimate(spmv.call, spmv.loop);
        double resident =
            std::min(1.0, static_cast<double>(cfg.tiles * lm * 1024) /
                              (static_cast<double>(spmv.call.n) * 4.0));
        t1.row({std::to_string(lm), bench::fmt("%.0f%%", 100 * resident),
                bench::fmt("%.1f", e.gflops()),
                bench::fmt("%.2f", e.gflopsPerW())});
    }
    t1.print();

    std::printf("(2) FFT: transform size vs aggregate local memory "
                "(single- vs two-pass)\n");
    bench::Table t2({"points", "footprint (MiB)", "GB moved",
                     "passes", "bound", "GFLOPS"});
    for (std::uint64_t lg : {16u, 18u, 20u, 22u, 24u}) {
        accel::OpCall fft;
        fft.kind = AccelKind::FFT;
        fft.n = 1ull << lg;
        fft.complexData = true;
        accel::AccelModel m(AccelKind::FFT,
                            accel::defaultConfig(AccelKind::FFT),
                            dram::hmcStack(), noc::mealibMesh());
        accel::AccelEstimate e = m.estimate(fft);
        double footprint = static_cast<double>(fft.n) * 8;
        int passes = static_cast<int>(e.bytes / (2.0 * footprint) + 0.5);
        t2.row({"2^" + std::to_string(lg),
                bench::fmt("%.1f", footprint / 1048576.0),
                bench::fmt("%.3f", e.bytes / 1e9),
                std::to_string(passes),
                e.memSeconds > e.computeSeconds ? "memory" : "compute",
                bench::fmt("%.1f", e.gflops())});
    }
    t2.print();

    std::printf("(3) SPMV: gather concurrency (PEs/tile at 1 GHz)\n");
    bench::Table t3({"PEs/tile", "GFLOPS", "power (W)", "GFLOPS/W"});
    for (unsigned c : {1u, 2u, 4u, 8u, 16u}) {
        accel::AccelConfig cfg = accel::defaultConfig(AccelKind::SPMV);
        cfg.coresPerTile = c;
        cfg.localMemKiB = 32; // force a miss-heavy regime
        accel::AccelModel m(AccelKind::SPMV, cfg, dram::hmcStack(),
                            noc::mealibMesh());
        accel::AccelEstimate e = m.estimate(spmv.call, spmv.loop);
        t3.row({std::to_string(c), bench::fmt("%.1f", e.gflops()),
                bench::fmt("%.2f", e.powerW()),
                bench::fmt("%.2f", e.gflopsPerW())});
    }
    t3.print();

    std::printf("(4) operand placement: local vs remote memory stack\n");
    bench::Table t4({"placement", "time (ms)", "energy (mJ)",
                     "remote MiB"});
    {
        runtime::RuntimeConfig cfg;
        cfg.backingBytes = 64_MiB;
        cfg.numStacks = 2;
        runtime::MealibRuntime rt(cfg);
        const std::int64_t n = 2 << 20;
        auto run = [&](unsigned x_stack, const char *label) {
            auto *x = static_cast<float *>(rt.memAllocOn(x_stack, n * 4));
            auto *y = static_cast<float *>(rt.memAllocOn(0, n * 4));
            accel::OpCall c;
            c.kind = AccelKind::AXPY;
            c.n = static_cast<std::uint64_t>(n);
            c.in0.base = rt.physOf(x);
            c.out.base = rt.physOf(y);
            accel::DescriptorProgram prog;
            prog.addComp(c);
            prog.addPassEnd();
            auto h = rt.accPlan(prog);
            accel::ExecStats es = rt.accExecute(h);
            rt.accDestroy(h);
            rt.memFree(x);
            rt.memFree(y);
            t4.row({label, bench::fmt("%.3f", es.total.seconds * 1e3),
                    bench::fmt("%.3f", es.total.joules * 1e3),
                    bench::fmt("%.1f", es.remoteBytes / 1048576.0)});
        };
        run(0, "x on local stack");
        run(1, "x on remote stack");
    }
    t4.print();
    return 0;
}
