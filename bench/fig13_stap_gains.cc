/**
 * @file
 * Figure 13 reproduction: STAP performance and energy-efficiency (EDP)
 * gains of MEALib over the optimized MKL+OpenMP Haswell baseline, for
 * the small/medium/large data sets.
 *
 * Paper: performance 2.0x / 2.3x / 3.2x; EDP 4.5x / 9.0x / 10.2x.
 *
 * Both modes execute the pipeline functionally (identical numerical
 * output); pass --large to include the paper-scale 16.7M-inner-product
 * set (needs ~1 GiB of arena and a couple of minutes).
 */

#include <complex>
#include <cstdio>

#include "apps/stap.hh"
#include "bench_util.hh"
#include "common/cli.hh"
#include "runtime/runtime.hh"

using namespace mealib;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    bool include_large = cli.has("large") || cli.has("paper-scale");

    bench::banner("Figure 13: STAP gains over the Haswell baseline",
                  "performance 2.0/2.3/3.2x and EDP 4.5/9.0/10.2x for "
                  "small/medium/large");

    struct Set
    {
        const char *name;
        apps::StapParams params;
        std::uint64_t arena;
    };
    std::vector<Set> sets = {
        {"small", apps::StapParams::smallSet(), 128_MiB},
        {"medium", apps::StapParams::mediumSet(), 256_MiB},
    };
    if (include_large)
        sets.push_back({"large", apps::StapParams::largeSet(), 1536_MiB});

    bench::Table t({"set", "dot calls", "Haswell (ms)", "MEALib (ms)",
                    "perf gain", "EDP gain", "output check"});
    for (const Set &s : sets) {
        apps::StapResult host = apps::runStapHost(s.params);
        runtime::RuntimeConfig cfg;
        cfg.backingBytes = s.arena;
        runtime::MealibRuntime rt(cfg);
        apps::StapResult mea = apps::runStapMealib(s.params, rt);

        double maxdiff = 0.0;
        for (std::size_t i = 0; i < host.prods.size(); ++i)
            maxdiff = std::max(
                maxdiff, static_cast<double>(
                             std::abs(host.prods[i] - mea.prods[i])));

        t.row({s.name, std::to_string(s.params.dotCalls()),
               bench::fmt("%.2f", host.total().seconds * 1e3),
               bench::fmt("%.2f", mea.total().seconds * 1e3),
               bench::fmt("%.2fx", host.total().seconds /
                                       mea.total().seconds),
               bench::fmt("%.2fx", host.total().edp() /
                                       mea.total().edp()),
               maxdiff == 0.0 ? "bit-identical"
                              : bench::fmt("maxdiff %.1e", maxdiff)});
    }
    t.print();

    if (!include_large)
        std::printf("(pass --large for the paper-scale 16.7M-product "
                    "set)\n");
    std::printf("paper: perf 2.0/2.3/3.2x, EDP 4.5/9.0/10.2x\n");
    return 0;
}
