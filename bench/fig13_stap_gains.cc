/**
 * @file
 * Figure 13 reproduction: STAP performance and energy-efficiency (EDP)
 * gains of MEALib over the optimized MKL+OpenMP Haswell baseline, for
 * the small/medium/large data sets.
 *
 * Paper: performance 2.0x / 2.3x / 3.2x; EDP 4.5x / 9.0x / 10.2x.
 *
 * Both modes execute the pipeline functionally (identical numerical
 * output); pass --large to include the paper-scale 16.7M-inner-product
 * set (needs ~1 GiB of arena and a couple of minutes). `--quick` runs
 * only the small set; `--json=PATH` writes per-set records (modeled
 * costs, gains, the MEALib run's ledger-derived GFLOPS/W, and the
 * functional pipeline's wall time via timeKernel).
 */

#include <complex>
#include <cstdio>

#include "apps/stap.hh"
#include "bench_util.hh"
#include "common/cli.hh"
#include "hwmodel/profile.hh"
#include "runtime/runtime.hh"

using namespace mealib;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    const bool include_large =
        !quick && (cli.has("large") || cli.has("paper-scale"));
    const std::string json_path = cli.get("json", "");

    bench::banner("Figure 13: STAP gains over the Haswell baseline",
                  "performance 2.0/2.3/3.2x and EDP 4.5/9.0/10.2x for "
                  "small/medium/large");

    struct Set
    {
        const char *name;
        apps::StapParams params;
        std::uint64_t arena;
    };
    std::vector<Set> sets = {
        {"small", apps::StapParams::smallSet(), 128_MiB},
    };
    if (!quick)
        sets.push_back(
            {"medium", apps::StapParams::mediumSet(), 256_MiB});
    if (include_large)
        sets.push_back({"large", apps::StapParams::largeSet(), 1536_MiB});

    bench::JsonWriter json;
    json.meta("bench", "fig13_stap_gains");
    json.meta("machine", hwmodel::activeMachineName());
    json.meta("quick", quick);

    bench::Table t({"set", "dot calls", "Haswell (ms)", "MEALib (ms)",
                    "perf gain", "EDP gain", "output check"});
    for (const Set &s : sets) {
        apps::StapResult host;
        apps::StapResult mea;
        // timeKernel's calibration pass plus one repetition: the whole
        // functional pipeline (both modes) runs twice, deterministically
        // producing the same results; the wall time goes to the JSON.
        bench::TimingConfig timing;
        timing.warmupIters = 0;
        timing.targetSeconds = 0.0;
        timing.repetitions = 1;
        bench::TimingResult tr = timeKernel(
            [&] {
                host = apps::runStapHost(s.params);
                runtime::RuntimeConfig cfg;
                cfg.backingBytes = s.arena;
                runtime::MealibRuntime rt(cfg);
                mea = apps::runStapMealib(s.params, rt);
            },
            timing);

        double maxdiff = 0.0;
        for (std::size_t i = 0; i < host.prods.size(); ++i)
            maxdiff = std::max(
                maxdiff, static_cast<double>(
                             std::abs(host.prods[i] - mea.prods[i])));

        const double perf_gain =
            host.total().seconds / mea.total().seconds;
        const double edp_gain = host.total().edp() / mea.total().edp();
        t.row({s.name, std::to_string(s.params.dotCalls()),
               bench::fmt("%.2f", host.total().seconds * 1e3),
               bench::fmt("%.2f", mea.total().seconds * 1e3),
               bench::fmt("%.2fx", perf_gain),
               bench::fmt("%.2fx", edp_gain),
               maxdiff == 0.0 ? "bit-identical"
                              : bench::fmt("maxdiff %.1e", maxdiff)});

        json.beginRecord();
        json.field("set", s.name);
        json.field("dot_calls",
                   static_cast<long long>(s.params.dotCalls()));
        json.field("host_seconds", host.total().seconds);
        json.field("host_joules", host.total().joules);
        json.field("host_edp", host.total().edp());
        json.field("mealib_seconds", mea.total().seconds);
        json.field("mealib_joules", mea.total().joules);
        json.field("mealib_edp", mea.total().edp());
        json.field("mealib_critical_path_seconds",
                   mea.criticalPathSeconds);
        json.field("mealib_gflops_per_watt",
                   mea.ledger.gflopsPerWatt());
        json.field("host_gflops_per_watt",
                   host.ledger.gflopsPerWatt());
        json.field("perf_gain", perf_gain);
        json.field("edp_gain", edp_gain);
        json.field("bit_identical", maxdiff == 0.0);
        json.field("pipeline_wall_seconds", tr.secondsPerCall);
        json.endRecord();
    }
    t.print();

    if (!include_large)
        std::printf("(pass --large for the paper-scale 16.7M-product "
                    "set)\n");
    std::printf("paper: perf 2.0/2.3/3.2x, EDP 4.5/9.0/10.2x\n");

    if (!json_path.empty()) {
        if (!json.writeFile(json_path)) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("STAP energy records written to %s\n",
                    json_path.c_str());
    }
    return 0;
}
