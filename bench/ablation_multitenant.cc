/**
 * @file
 * Ablation: multi-tenant sessions over one shared runtime
 * (docs/SESSIONS.md).
 *
 * Sweeps clients x offload policy. Each cell opens N sessions over one
 * shared MealibRuntime and drives them through a deterministic
 * single-thread round-robin: every round, each client in turn binds
 * its session and issues one batch of MKL-signature calls (saxpy +
 * sdot on its own arena-resident vectors) that route through its
 * private dispatcher. The round-robin keeps the JSON bit-reproducible
 * — true thread contention is exercised by session_test and
 * `mealib-run --clients=N`, which verify against solo digests; this
 * bench measures how the shared stack divides between tenants.
 *
 * Reported per cell: goodput (dispatched calls per modeled second on
 * the shared stack), Jain fairness over the per-session ledger
 * seconds, and the ledger-sum-vs-aggregate-accounting residual that
 * must stay at zero.
 *
 * Usage: ablation_multitenant [--quick] [--seed=S] [--json=PATH]
 *                             [--check]
 *
 * --check exits non-zero when a functional digest diverges between
 * any two cells, when the per-session ledgers stop summing to the
 * aggregate accounting (relative 1e-9), or when fairness drops below
 * 0.999 (the round-robin hands every client identical work, so the
 * ledger split must be near-perfectly even). CI runs this.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/cli.hh"
#include "common/rng.hh"
#include "minimkl/compat.hh"
#include "runtime/runtime.hh"
#include "session/session.hh"

using namespace mealib;

namespace {

/** FNV-1a over a byte range, for output-identity checks. */
std::uint64_t
digestBytes(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

struct Sample
{
    unsigned clients;
    std::string policy;
    std::uint64_t calls;
    double totalS;
    double totalJ;
    double goodputCallsPerS; //!< calls per modeled shared-stack second
    double jainFairness;     //!< over per-session ledger seconds
    double minClientS;
    double maxClientS;
    double ledgerResidual; //!< |sum(sessions) - aggregate| / aggregate
    bool crossClientDiverged = false;
    std::uint64_t digest;
};

/** Jain's index over @p xs; 1.0 for an all-zero (perfectly idle) set. */
double
jain(const std::vector<double> &xs)
{
    double sum = 0.0, sq = 0.0;
    for (double x : xs) {
        sum += x;
        sq += x * x;
    }
    if (sq == 0.0)
        return 1.0;
    return sum * sum / (static_cast<double>(xs.size()) * sq);
}

Sample
runCell(unsigned clients, const std::string &policy, unsigned rounds,
        std::uint64_t seed)
{
    constexpr std::int64_t kN = 16384;
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 64_MiB;
    cfg.numStacks = 2;
    runtime::MealibRuntime rt(cfg);

    SessionOptions sopts;
    sopts.policy = policy;
    std::vector<std::unique_ptr<Session>> sessions;
    for (unsigned i = 0; i < clients; ++i)
        sessions.push_back(std::make_unique<Session>(rt, sopts));

    // Per-client vectors live in the shared arena so accel decisions
    // are COMP-mappable; every client gets the SAME seed, so every
    // client must end with the SAME bytes.
    struct Client
    {
        float *x, *y;
        float dot = 0.0f;
    };
    std::vector<Client> cl(clients);
    for (unsigned i = 0; i < clients; ++i) {
        cl[i].x = static_cast<float *>(rt.memAlloc(kN * 4));
        cl[i].y = static_cast<float *>(rt.memAlloc(kN * 4));
        Rng rng(seed ^ 0x77ull);
        for (std::int64_t k = 0; k < kN; ++k) {
            cl[i].x[k] = rng.uniform(-1.0f, 1.0f);
            cl[i].y[k] = rng.uniform(-1.0f, 1.0f);
        }
        rt.noteHostWrite(cl[i].x, kN * 4);
        rt.noteHostWrite(cl[i].y, kN * 4);
    }

    // Deterministic round-robin: one batch per client per round.
    for (unsigned r = 0; r < rounds; ++r)
        for (unsigned i = 0; i < clients; ++i) {
            SessionBinding bound = sessions[i]->bind();
            const float a =
                0.125f + 0.0625f * static_cast<float>(r % 8);
            cblas_saxpy(static_cast<int>(kN), a, cl[i].x, 1, cl[i].y,
                        1);
            cl[i].dot = cblas_sdot(static_cast<int>(kN), cl[i].x, 1,
                                   cl[i].y, 1);
        }
    for (auto &s : sessions)
        s->sync();
    rt.waitAll();

    Sample smp{};
    smp.clients = clients;
    smp.policy = policy;
    smp.calls = static_cast<std::uint64_t>(clients) * rounds * 2;

    std::uint64_t digest = 1469598103934665603ull;
    std::vector<double> perClientS;
    Cost sum;
    for (unsigned i = 0; i < clients; ++i) {
        digest = digestBytes(digest, cl[i].y,
                             static_cast<std::size_t>(kN) * 4);
        digest = digestBytes(digest, &cl[i].dot, sizeof(float));
        const Cost c = sessions[i]->ledger().total();
        perClientS.push_back(c.seconds);
        sum += c;
    }
    // Same seed, same rounds: client 0's bytes are the oracle for all.
    for (unsigned i = 1; i < clients; ++i)
        if (std::memcmp(cl[i].y, cl[0].y,
                        static_cast<std::size_t>(kN) * 4) != 0)
            smp.crossClientDiverged = true;

    const Cost agg = rt.accounting().total();
    smp.digest = digest;
    smp.totalS = agg.seconds;
    smp.totalJ = agg.joules;
    smp.goodputCallsPerS =
        agg.seconds > 0.0
            ? static_cast<double>(smp.calls) / agg.seconds
            : 0.0;
    smp.jainFairness = jain(perClientS);
    smp.minClientS = perClientS.empty() ? 0.0 : perClientS.front();
    smp.maxClientS = smp.minClientS;
    for (double s : perClientS) {
        smp.minClientS = std::min(smp.minClientS, s);
        smp.maxClientS = std::max(smp.maxClientS, s);
    }
    smp.ledgerResidual =
        agg.seconds > 0.0
            ? std::abs(sum.seconds - agg.seconds) / agg.seconds
            : std::abs(sum.seconds);

    for (unsigned i = 0; i < clients; ++i) {
        rt.memFree(cl[i].x);
        rt.memFree(cl[i].y);
    }
    return smp;
}

std::string
hex64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    const bool check = cli.has("check");
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 0));
    const std::string jsonPath =
        cli.get("json", "BENCH_multitenant.json");

    bench::banner(
        "ablation: clients x offload policy on one shared runtime "
        "(docs/SESSIONS.md)",
        "N sessions share the accelerator stack without changing "
        "anyone's numbers: identical per-client outputs, per-session "
        "ledgers that sum exactly to the aggregate accounting, and an "
        "even split of the modeled time");

    const std::vector<unsigned> clientCounts =
        quick ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};
    const std::vector<std::string> policies{"host", "accel",
                                            "crossover"};
    const unsigned rounds = quick ? 4 : 8;

    std::vector<Sample> samples;
    for (unsigned clients : clientCounts)
        for (const std::string &policy : policies)
            samples.push_back(runCell(clients, policy, rounds, seed));

    bench::Table t({"clients", "policy", "calls", "goodput (calls/ms)",
                    "fairness", "client min/max (us)", "total (us)",
                    "residual"});
    for (const Sample &s : samples)
        t.row({std::to_string(s.clients), s.policy,
               std::to_string(s.calls),
               bench::fmt("%.2f", s.goodputCallsPerS / 1e3),
               bench::fmt("%.6f", s.jainFairness),
               bench::fmt("%.2f", s.minClientS * 1e6) + " / " +
                   bench::fmt("%.2f", s.maxClientS * 1e6),
               bench::fmt("%.2f", s.totalS * 1e6),
               bench::fmt("%.2e", s.ledgerResidual)});
    t.print();

    bench::JsonWriter json;
    json.meta("bench", "ablation_multitenant");
    json.meta("experiment",
              "clients x offload policy on one shared runtime "
              "(docs/SESSIONS.md)");
    json.meta("quick", quick);
    json.meta("rounds", static_cast<double>(rounds));
    for (const Sample &s : samples) {
        json.beginRecord();
        json.field("clients", static_cast<double>(s.clients));
        json.field("policy", s.policy);
        json.field("calls", static_cast<double>(s.calls));
        json.field("total_s", s.totalS);
        json.field("total_j", s.totalJ);
        json.field("goodput_calls_per_s", s.goodputCallsPerS);
        json.field("jain_fairness", s.jainFairness);
        json.field("min_client_s", s.minClientS);
        json.field("max_client_s", s.maxClientS);
        json.field("ledger_residual", s.ledgerResidual);
        json.field("cross_client_diverged", s.crossClientDiverged);
        json.field("digest", hex64(s.digest));
        json.endRecord();
    }
    if (!json.writeFile(jsonPath.c_str())) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::printf("wrote %s (%zu records)\n", jsonPath.c_str(),
                samples.size());

    if (!check)
        return 0;

    // --- acceptance gates (CI) -----------------------------------------
    int rc = 0;
    for (const Sample &s : samples) {
        if (s.crossClientDiverged) {
            std::fprintf(
                stderr,
                "FAIL: cross-client output divergence at clients=%u "
                "policy=%s\n",
                s.clients, s.policy.c_str());
            rc = 1;
        }
        if (s.ledgerResidual > 1e-9) {
            std::fprintf(stderr,
                         "FAIL: ledger sum != aggregate at clients=%u "
                         "policy=%s (residual %.3e)\n",
                         s.clients, s.policy.c_str(),
                         s.ledgerResidual);
            rc = 1;
        }
        if (s.jainFairness < 0.999) {
            std::fprintf(stderr,
                         "FAIL: fairness %.6f below 0.999 at "
                         "clients=%u policy=%s\n",
                         s.jainFairness, s.clients, s.policy.c_str());
            rc = 1;
        }
    }
    // The functional bytes must also agree ACROSS policies: host and
    // accel kernels are bit-identical (kernel parity), so for a given
    // client count all three policies share one digest.
    for (unsigned clients : clientCounts) {
        std::uint64_t d = 0;
        bool first = true;
        for (const Sample &s : samples) {
            if (s.clients != clients)
                continue;
            if (first) {
                d = s.digest;
                first = false;
            } else if (s.digest != d) {
                std::fprintf(stderr,
                             "FAIL: digest diverges across policies "
                             "at clients=%u (%s)\n",
                             clients, s.policy.c_str());
                rc = 1;
            }
        }
    }
    if (rc == 0)
        std::printf("check: outputs identical, ledgers exact, "
                    "fairness >= 0.999\n");
    return rc;
}
