/**
 * @file
 * Figure 12 reproduction: efficiency of the configuration
 * infrastructure.
 *
 *  (a) hardware vs software chaining of the RESMP+FFT SAR pipeline over
 *      problem sizes 256..8192 (paper: 2.5x at 256, shrinking);
 *  (b) hardware LOOP of 128 FFT invocations vs 128 software-issued
 *      descriptors (paper: 9.5x at 256, shrinking toward 1x).
 */

#include <cstdio>

#include "apps/sar.hh"
#include "bench_util.hh"
#include "common/cli.hh"
#include "runtime/runtime.hh"

using namespace mealib;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    (void)cli;

    bench::banner("Figure 12: accelerator chaining and loop efficiency",
                  "(a) SW/HW chaining 2.5x at 256^2 shrinking with "
                  "size; (b) SW/HW loop 9.5x at 256^2 shrinking toward "
                  "1x at 8192^2");

    // Cost-only runtime: addresses are modeled, buffers not touched, so
    // the full 8192^2 sizes run in milliseconds.
    runtime::RuntimeConfig cfg;
    cfg.functional = false;
    cfg.backingBytes = 8_MiB;
    runtime::MealibRuntime rt(cfg);

    const std::uint64_t sizes[] = {256, 512, 1024, 2048, 4096, 8192};

    std::printf("(a) software vs hardware chaining of RESMP+FFT (SAR)\n");
    bench::Table ta({"size", "SW (ms)", "HW (ms)", "SW/HW"});
    for (std::uint64_t n : sizes) {
        apps::SarResult hw = apps::runSarChain(n, true, rt);
        apps::SarResult sw = apps::runSarChain(n, false, rt);
        ta.row({std::to_string(n),
                bench::fmt("%.3f", sw.total.seconds * 1e3),
                bench::fmt("%.3f", hw.total.seconds * 1e3),
                bench::fmt("%.2fx", sw.total.seconds /
                                        hw.total.seconds)});
    }
    ta.print();

    std::printf("(b) software vs hardware loop of 128 FFT "
                "invocations\n");
    bench::Table tb({"size", "SW (ms)", "HW (ms)", "SW/HW"});
    for (std::uint64_t n : sizes) {
        apps::FftLoopResult hw = apps::runFftLoop(n, 128, true, rt);
        apps::FftLoopResult sw = apps::runFftLoop(n, 128, false, rt);
        tb.row({std::to_string(n),
                bench::fmt("%.3f", sw.total.seconds * 1e3),
                bench::fmt("%.3f", hw.total.seconds * 1e3),
                bench::fmt("%.2fx", sw.total.seconds /
                                        hw.total.seconds)});
    }
    tb.print();

    std::printf("paper: chaining 2.5x at 256 (declining); loop 9.5x at "
                "256 (declining)\n");
    return 0;
}
