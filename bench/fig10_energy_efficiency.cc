/**
 * @file
 * Figure 10 reproduction: energy efficiency (GFLOPS/W; GB/s/W for
 * RESHP) of each operation on the five platforms, normalized to the
 * Haswell baseline. Also reports the per-op power draws that anchor the
 * comparison (Sec. 5.1 quotes 19 W MEALib vs 48 W Haswell vs 130 W Phi
 * for FFT).
 *
 * `--json=PATH` writes a BENCH_energy.json record stream (one record
 * per op x platform: modeled seconds/joules/watts, efficiency, gain,
 * and the wall time of the model evaluation via timeKernel). `--quick`
 * shrinks the workload scale and the timing budget for a CI smoke run.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/cli.hh"
#include "hwmodel/profile.hh"
#include "mealib/platform.hh"

using namespace mealib;
using namespace mealib::eval;
using mealib::accel::AccelKind;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    double scale = cli.has("paper-scale")
                       ? 1.0
                       : cli.getDouble("scale",
                                       quick ? 1.0 / 64.0 : 1.0 / 16.0);
    const std::string json_path = cli.get("json", "");

    bench::banner("Figure 10: energy-efficiency improvement over Intel "
                  "MKL on Haswell",
                  "MEALib 75x average (32.9 .. 150.4); PSAS ~10x less "
                  "than MEALib, MSAS ~5x less; Xeon Phi below 1x "
                  "everywhere");

    const AccelKind kinds[] = {
        AccelKind::AXPY, AccelKind::DOT,   AccelKind::GEMV,
        AccelKind::SPMV, AccelKind::RESMP, AccelKind::FFT,
        AccelKind::RESHP,
    };
    const Platform platforms[] = {
        Platform::HaswellMkl, Platform::XeonPhiMkl, Platform::Psas,
        Platform::Msas,       Platform::MeaLib,
    };

    bench::TimingConfig timing;
    if (quick) {
        timing.warmupIters = 1;
        timing.targetSeconds = 0.01;
        timing.repetitions = 2;
    }

    bench::JsonWriter json;
    json.meta("bench", "fig10_energy_efficiency");
    json.meta("machine", hwmodel::activeMachineName());
    json.meta("scale", scale);
    json.meta("quick", quick);

    bench::Table t({"op", "Haswell W", "MEALib W", "XeonPhi", "PSAS",
                    "MSAS", "MEALib"});
    double sums[4] = {0, 0, 0, 0};
    for (AccelKind k : kinds) {
        Workload w = table2Workload(k, scale);
        OpResult res[5];
        double eval_s[5] = {0, 0, 0, 0, 0};
        for (int p = 0; p < 5; ++p) {
            // timeKernel measures the analytical model's own wall cost
            // (it simulates a DRAM trace per estimate) — the perf
            // trajectory CI archives next to the modeled energy.
            bench::TimingResult tr = timeKernel(
                [&] { res[p] = evaluateOp(platforms[p], w); }, timing);
            eval_s[p] = tr.secondsPerCall;
        }
        const OpResult &base = res[0];
        double g[4] = {res[1].perfPerWatt() / base.perfPerWatt(),
                       res[2].perfPerWatt() / base.perfPerWatt(),
                       res[3].perfPerWatt() / base.perfPerWatt(),
                       res[4].perfPerWatt() / base.perfPerWatt()};
        for (int i = 0; i < 4; ++i)
            sums[i] += g[i];
        t.row({accel::name(k), bench::fmt("%.1f", base.cost.watts()),
               bench::fmt("%.1f", res[4].cost.watts()),
               bench::fmt("%.2fx", g[0]), bench::fmt("%.2fx", g[1]),
               bench::fmt("%.2fx", g[2]), bench::fmt("%.2fx", g[3])});

        for (int p = 0; p < 5; ++p) {
            json.beginRecord();
            json.field("op", accel::name(k));
            json.field("platform", name(platforms[p]));
            json.field("seconds", res[p].cost.seconds);
            json.field("joules", res[p].cost.joules);
            json.field("watts", res[p].cost.watts());
            json.field("edp", res[p].cost.edp());
            json.field("perf_per_watt", res[p].perfPerWatt());
            json.field("gain_vs_haswell",
                       res[p].perfPerWatt() / base.perfPerWatt());
            json.field("eval_wall_seconds", eval_s[p]);
            json.endRecord();
        }
    }
    t.row({"average", "-", "-", bench::fmt("%.2fx", sums[0] / 7),
           bench::fmt("%.2fx", sums[1] / 7),
           bench::fmt("%.2fx", sums[2] / 7),
           bench::fmt("%.2fx", sums[3] / 7)});
    t.print();

    std::printf("paper: MEALib 75x average energy-efficiency gain; FFT "
                "power 19 W (MEALib) vs 48 W (Haswell) vs 130 W (Phi)\n");

    if (!json_path.empty()) {
        if (!json.writeFile(json_path)) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("energy records written to %s\n", json_path.c_str());
    }
    return 0;
}
