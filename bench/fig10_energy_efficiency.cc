/**
 * @file
 * Figure 10 reproduction: energy efficiency (GFLOPS/W; GB/s/W for
 * RESHP) of each operation on the five platforms, normalized to the
 * Haswell baseline. Also reports the per-op power draws that anchor the
 * comparison (Sec. 5.1 quotes 19 W MEALib vs 48 W Haswell vs 130 W Phi
 * for FFT).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/cli.hh"
#include "mealib/platform.hh"

using namespace mealib;
using namespace mealib::eval;
using mealib::accel::AccelKind;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    double scale = cli.has("paper-scale")
                       ? 1.0
                       : cli.getDouble("scale", 1.0 / 16.0);

    bench::banner("Figure 10: energy-efficiency improvement over Intel "
                  "MKL on Haswell",
                  "MEALib 75x average (32.9 .. 150.4); PSAS ~10x less "
                  "than MEALib, MSAS ~5x less; Xeon Phi below 1x "
                  "everywhere");

    const AccelKind kinds[] = {
        AccelKind::AXPY, AccelKind::DOT,   AccelKind::GEMV,
        AccelKind::SPMV, AccelKind::RESMP, AccelKind::FFT,
        AccelKind::RESHP,
    };

    bench::Table t({"op", "Haswell W", "MEALib W", "XeonPhi", "PSAS",
                    "MSAS", "MEALib"});
    double sums[4] = {0, 0, 0, 0};
    for (AccelKind k : kinds) {
        Workload w = table2Workload(k, scale);
        OpResult base = evaluateOp(Platform::HaswellMkl, w);
        OpResult phi = evaluateOp(Platform::XeonPhiMkl, w);
        OpResult psas = evaluateOp(Platform::Psas, w);
        OpResult msas = evaluateOp(Platform::Msas, w);
        OpResult mea = evaluateOp(Platform::MeaLib, w);
        double g[4] = {phi.perfPerWatt() / base.perfPerWatt(),
                       psas.perfPerWatt() / base.perfPerWatt(),
                       msas.perfPerWatt() / base.perfPerWatt(),
                       mea.perfPerWatt() / base.perfPerWatt()};
        for (int i = 0; i < 4; ++i)
            sums[i] += g[i];
        t.row({accel::name(k), bench::fmt("%.1f", base.cost.watts()),
               bench::fmt("%.1f", mea.cost.watts()),
               bench::fmt("%.2fx", g[0]), bench::fmt("%.2fx", g[1]),
               bench::fmt("%.2fx", g[2]), bench::fmt("%.2fx", g[3])});
    }
    t.row({"average", "-", "-", bench::fmt("%.2fx", sums[0] / 7),
           bench::fmt("%.2fx", sums[1] / 7),
           bench::fmt("%.2fx", sums[2] / 7),
           bench::fmt("%.2fx", sums[3] / 7)});
    t.print();

    std::printf("paper: MEALib 75x average energy-efficiency gain; FFT "
                "power 19 W (MEALib) vs 48 W (Haswell) vs 130 W (Phi)\n");
    return 0;
}
