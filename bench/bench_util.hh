/**
 * @file
 * Shared helpers for the per-figure bench binaries: aligned table
 * printing and the paper-vs-measured banner each bench emits so that
 * EXPERIMENTS.md can be regenerated from bench output.
 */

#ifndef MEALIB_BENCH_BENCH_UTIL_HH
#define MEALIB_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace mealib::bench {

/** Print the bench banner: which figure/table, and the paper's claim. */
inline void
banner(const char *experiment, const char *paperClaim)
{
    std::printf("=== %s ===\n", experiment);
    std::printf("paper: %s\n\n", paperClaim);
}

/** Simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size(), 0);
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_)
            for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            cells[c].c_str());
            std::printf("\n");
        };
        line(headers_);
        for (const auto &r : rows_)
            line(r);
        std::printf("\n");
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into std::string. */
inline std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

// --- stable kernel timing ---------------------------------------------------

/** Knobs for timeKernel(); the defaults suit ~ms-scale kernels. */
struct TimingConfig
{
    int warmupIters = 2;      //!< untimed calls before measuring
    double targetSeconds = 0.08; //!< per-repetition timed budget
    int repetitions = 5;      //!< min-of-N repetitions reported
    int maxIters = 1 << 20;   //!< cap on iterations per repetition
};

/** One timing result: min-of-N seconds per call plus the batch shape. */
struct TimingResult
{
    double secondsPerCall = 0.0; //!< best repetition, per-call
    int itersPerRep = 0;         //!< calls per timed repetition
    int repetitions = 0;
};

/**
 * Time @p fn with warmup and min-of-N repetitions. The iteration count
 * per repetition is scaled so one repetition runs for roughly
 * TimingConfig::targetSeconds, which keeps the minimum stable enough to
 * gate on: a single cold call measures mostly page faults and cache
 * warmup, not the kernel.
 */
template <typename Fn>
TimingResult
timeKernel(Fn &&fn, const TimingConfig &cfg = {})
{
    using clock = std::chrono::steady_clock;
    auto secondsSince = [](clock::time_point t0) {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };

    for (int i = 0; i < cfg.warmupIters; ++i)
        fn();

    // Calibrate: estimate a single-call cost, then pick the batch size.
    auto t0 = clock::now();
    fn();
    double est = std::max(secondsSince(t0), 1e-9);
    int iters = static_cast<int>(
        std::clamp(cfg.targetSeconds / est, 1.0,
                   static_cast<double>(cfg.maxIters)));

    TimingResult r;
    r.itersPerRep = iters;
    r.repetitions = cfg.repetitions;
    r.secondsPerCall = 0.0;
    for (int rep = 0; rep < cfg.repetitions; ++rep) {
        auto tr = clock::now();
        for (int i = 0; i < iters; ++i)
            fn();
        double per = secondsSince(tr) / iters;
        if (rep == 0 || per < r.secondsPerCall)
            r.secondsPerCall = per;
    }
    return r;
}

// --- minimal JSON emission --------------------------------------------------

/**
 * Flat JSON document writer for bench output: an object holding scalar
 * metadata plus one array of record objects. Covers exactly what
 * BENCH_kernels.json needs — not a general JSON library.
 */
class JsonWriter
{
  public:
    /** Add a top-level scalar field. */
    void
    meta(const std::string &key, const std::string &value)
    {
        meta_.push_back({key, "\"" + escape(value) + "\""});
    }

    // Keep string literals out of the bool overload.
    void
    meta(const std::string &key, const char *value)
    {
        meta(key, std::string(value));
    }

    void
    meta(const std::string &key, double value)
    {
        meta_.push_back({key, num(value)});
    }

    void
    meta(const std::string &key, bool value)
    {
        meta_.push_back({key, value ? "true" : "false"});
    }

    /** Start a record in the array; finish it with endRecord(). */
    void
    beginRecord()
    {
        fields_.clear();
    }

    void
    field(const std::string &key, const std::string &value)
    {
        fields_.push_back({key, "\"" + escape(value) + "\""});
    }

    void
    field(const std::string &key, const char *value)
    {
        field(key, std::string(value));
    }

    void
    field(const std::string &key, double value)
    {
        fields_.push_back({key, num(value)});
    }

    void
    field(const std::string &key, long long value)
    {
        fields_.push_back({key, std::to_string(value)});
    }

    void
    field(const std::string &key, bool value)
    {
        fields_.push_back({key, value ? "true" : "false"});
    }

    void
    endRecord()
    {
        std::string rec = "    {";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            if (i)
                rec += ", ";
            rec += "\"" + fields_[i].first + "\": " + fields_[i].second;
        }
        rec += "}";
        records_.push_back(std::move(rec));
    }

    /** @return the whole document ("records" holds the array). */
    std::string
    str() const
    {
        std::string out = "{\n";
        for (const auto &[k, v] : meta_)
            out += "  \"" + k + "\": " + v + ",\n";
        out += "  \"records\": [\n";
        for (std::size_t i = 0; i < records_.size(); ++i) {
            out += records_[i];
            out += i + 1 < records_.size() ? ",\n" : "\n";
        }
        out += "  ]\n}\n";
        return out;
    }

    /** Write the document to @p path. @return false on I/O failure. */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return false;
        std::string s = str();
        bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
        return std::fclose(f) == 0 && ok;
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    static std::string
    num(double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        return buf;
    }

    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<std::pair<std::string, std::string>> fields_;
    std::vector<std::string> records_;
};

} // namespace mealib::bench

#endif // MEALIB_BENCH_BENCH_UTIL_HH
