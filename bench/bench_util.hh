/**
 * @file
 * Shared helpers for the per-figure bench binaries: aligned table
 * printing and the paper-vs-measured banner each bench emits so that
 * EXPERIMENTS.md can be regenerated from bench output.
 */

#ifndef MEALIB_BENCH_BENCH_UTIL_HH
#define MEALIB_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

namespace mealib::bench {

/** Print the bench banner: which figure/table, and the paper's claim. */
inline void
banner(const char *experiment, const char *paperClaim)
{
    std::printf("=== %s ===\n", experiment);
    std::printf("paper: %s\n\n", paperClaim);
}

/** Simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size(), 0);
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_)
            for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            cells[c].c_str());
            std::printf("\n");
        };
        line(headers_);
        for (const auto &r : rows_)
            line(r);
        std::printf("\n");
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into std::string. */
inline std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace mealib::bench

#endif // MEALIB_BENCH_BENCH_UTIL_HH
