/**
 * @file
 * Figure 11 reproduction: design-space exploration of the FFT and SPMV
 * accelerators at 510 GB/s. Sweeps clock frequency (0.8-2.0 GHz), PE
 * count, local memory and block size, printing (power, performance,
 * GFLOPS/W) points and the resulting efficiency ranges.
 *
 * Paper: FFT spans ~10-56 GFLOPS/W with performance up to ~2250 GFLOPS;
 * SPMV spans ~0.18-1.76 GFLOPS/W with performance up to ~45 GFLOPS.
 */

#include <algorithm>
#include <cstdio>
#include <limits>

#include "accel/config.hh"
#include "accel/model.hh"
#include "bench_util.hh"
#include "common/cli.hh"
#include "common/units.hh"
#include "dram/params.hh"
#include "mealib/platform.hh"
#include "noc/mesh.hh"

using namespace mealib;
using mealib::accel::AccelKind;

namespace {

struct Range
{
    double minEff = std::numeric_limits<double>::infinity();
    double maxEff = 0.0;
    double maxPerf = 0.0;
};

Range
sweep(AccelKind kind, const eval::Workload &w)
{
    const double freqs[] = {0.8_GHz, 1.2_GHz, 1.6_GHz, 2.0_GHz};
    const unsigned cores[] = {1, 2, 4, 8};
    const std::uint64_t lms[] = {64, 128, 256};

    std::printf("%s design space (freq x PEs/tile x LM KiB):\n",
                accel::name(kind));
    bench::Table t({"freq (GHz)", "PEs/tile", "LM (KiB)", "power (W)",
                    "perf (GFLOPS)", "GFLOPS/W"});
    Range range;
    for (double f : freqs) {
        for (unsigned c : cores) {
            for (std::uint64_t lm : lms) {
                accel::AccelConfig cfg = accel::defaultConfig(kind);
                cfg.freq = f;
                cfg.coresPerTile = c;
                cfg.localMemKiB = lm;
                accel::AccelModel model(kind, cfg, dram::hmcStack(),
                                        noc::mealibMesh());
                accel::AccelEstimate e = model.estimate(w.call, w.loop);
                double eff = e.gflopsPerW();
                range.minEff = std::min(range.minEff, eff);
                range.maxEff = std::max(range.maxEff, eff);
                range.maxPerf = std::max(range.maxPerf, e.gflops());
                if (lm == 256) // keep the printed table readable
                    t.row({bench::fmt("%.1f", f / 1e9),
                           std::to_string(c), std::to_string(lm),
                           bench::fmt("%.2f", e.powerW()),
                           bench::fmt("%.1f", e.gflops()),
                           bench::fmt("%.2f", eff)});
            }
        }
    }
    t.print();
    return range;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    double scale = cli.has("paper-scale")
                       ? 1.0
                       : cli.getDouble("scale", 1.0 / 16.0);

    bench::banner("Figure 11: FFT and SPMV accelerator design spaces at "
                  "510 GB/s",
                  "FFT: 10-56 GFLOPS/W depending on the power budget; "
                  "SPMV: 0.18-1.76 GFLOPS/W");

    Range fft = sweep(AccelKind::FFT,
                      eval::table2Workload(AccelKind::FFT, scale));
    Range spmv = sweep(AccelKind::SPMV,
                       eval::table2Workload(AccelKind::SPMV, scale));

    std::printf("FFT efficiency range:  %.1f .. %.1f GFLOPS/W "
                "(paper 10 .. 56), peak %.0f GFLOPS (paper ~2250)\n",
                fft.minEff, fft.maxEff, fft.maxPerf);
    std::printf("SPMV efficiency range: %.2f .. %.2f GFLOPS/W "
                "(paper 0.18 .. 1.76), peak %.1f GFLOPS (paper ~45)\n",
                spmv.minEff, spmv.maxEff, spmv.maxPerf);
    return 0;
}
