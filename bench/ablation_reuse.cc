/**
 * @file
 * Ablation: cross-command operand residency and descriptor-program
 * fusion (docs/RUNTIME.md "Residency", docs/DISPATCH.md "Fusion").
 *
 * Sweeps chain length x fusion window x residency on/off over two
 * chained workloads and reports what the reuse layers elide:
 *
 *  1. a SAR-style runtime chain (RESMP -> FFT repeated over the same
 *     operands): with residency on, every warm iteration's pre-submit
 *     flush collapses because the read set is still clean-on-stack;
 *  2. a STAP-style dispatcher chain (repeated AXPY passes through the
 *     op-IR dispatcher): the fusion window coalesces adjacent calls
 *     into one multi-COMP program, eliding the intermediate START
 *     handshakes, and residency elides the warm flushes on top.
 *
 * Functional output is bit-for-bit identical in every cell — the FNV
 * digest over all output bytes must agree across the whole sweep; only
 * the modeled invocation cost moves. Each record carries its reduction
 * against the baseline twin cell (residency off, window 1, same chain
 * length and seed).
 *
 * Usage: ablation_reuse [--quick] [--seed=S] [--json=PATH] [--check]
 *
 * --check exits non-zero when a digest diverges, when a residency-on
 * cell elides zero flush bytes, or when the fully-enabled cell of any
 * chain length fails the >= 20% invocation-reduction bar on either
 * workload (the ISSUE acceptance gate; CI runs this).
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/cli.hh"
#include "common/rng.hh"
#include "dispatch/backend.hh"
#include "dispatch/dispatcher.hh"
#include "dispatch/models.hh"
#include "dispatch/opdesc.hh"
#include "dispatch/policy.hh"
#include "minimkl/blas1.hh"
#include "runtime/runtime.hh"

using namespace mealib;
using accel::AccelKind;
using accel::DescriptorProgram;
using accel::LoopSpec;
using accel::OpCall;
using mkl::cfloat;

namespace {

/** FNV-1a over a byte range, for output-identity checks. */
std::uint64_t
digestBytes(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

struct Sample
{
    std::uint64_t seed;
    unsigned chain;
    unsigned window;
    bool residency;
    double sarInvocationS;
    double stapInvocationS;
    double totalS;
    double totalJ;
    std::uint64_t flushBytesElided;
    std::uint64_t verifyBytesElided;
    std::uint64_t handshakesElided;
    std::uint64_t fusedPrograms;
    std::uint64_t planImageReuses;
    std::uint64_t digest;
    double sarReductionPct = 0.0;  //!< vs the (off, window 1) twin
    double stapReductionPct = 0.0; //!< vs the (off, window 1) twin
    double invocationReductionPct = 0.0; //!< combined, vs the twin
};

/**
 * SAR-style chain: `chain` repetitions of the unfused RESMP -> FFT
 * pair over the same buffers. The input is host-written once; every
 * later repetition's read set is accelerator-resident.
 */
std::uint64_t
runSarChain(runtime::MealibRuntime &rt, unsigned chain,
            std::uint64_t seed, std::uint64_t digest)
{
    const std::uint64_t n = 64;      // image rows / row length
    const std::uint64_t nin = n / 2; // range samples per row
    auto *in = static_cast<cfloat *>(rt.memAlloc(n * nin * 8));
    auto *mid = static_cast<cfloat *>(rt.memAlloc(n * n * 8));
    auto *out = static_cast<cfloat *>(rt.memAlloc(n * n * 8));
    Rng rng(seed);
    for (std::uint64_t i = 0; i < n * nin; ++i)
        in[i] = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    rt.noteHostWrite(in, n * nin * 8);

    OpCall resmp;
    resmp.kind = AccelKind::RESMP;
    resmp.n = nin;
    resmp.m = n;
    resmp.complexData = true;
    resmp.resampleKind = 2;
    resmp.in0 = {rt.physOf(in),
                 {static_cast<std::int64_t>(nin * 8), 0, 0, 0}};
    resmp.out = {rt.physOf(mid),
                 {static_cast<std::int64_t>(n * 8), 0, 0, 0}};

    OpCall fft;
    fft.kind = AccelKind::FFT;
    fft.n = n;
    fft.m = 1;
    fft.complexData = true;
    fft.fftDir = -1;
    fft.in0 = {rt.physOf(mid),
               {static_cast<std::int64_t>(n * 8), 0, 0, 0}};
    fft.out = {rt.physOf(out),
               {static_cast<std::int64_t>(n * 8), 0, 0, 0}};

    LoopSpec rows;
    rows.dims = {static_cast<std::uint32_t>(n), 1, 1, 1};
    DescriptorProgram d1;
    d1.addLoop(rows, 2);
    d1.addComp(resmp);
    d1.addPassEnd();
    DescriptorProgram d2;
    d2.addLoop(rows, 2);
    d2.addComp(fft);
    d2.addPassEnd();

    for (unsigned k = 0; k < chain; ++k) {
        auto h1 = rt.accPlan(d1);
        auto h2 = rt.accPlan(d2);
        rt.accExecute(h1);
        rt.accExecute(h2);
        rt.accDestroy(h1);
        rt.accDestroy(h2);
    }
    digest = digestBytes(digest, out, n * n * 8);
    rt.memFree(in);
    rt.memFree(mid);
    rt.memFree(out);
    return digest;
}

/**
 * STAP-style chain: 4 * `chain` AXPY passes (the output-scaling stage
 * of Listing 1) through the dispatcher with the given fusion window.
 */
std::uint64_t
runStapChain(runtime::MealibRuntime &rt, unsigned chain,
             unsigned window, std::uint64_t seed, std::uint64_t digest)
{
    const std::int64_t n = 8192;
    auto *x = static_cast<float *>(rt.memAlloc(n * 4));
    auto *y = static_cast<float *>(rt.memAlloc(n * 4));
    Rng rng(seed ^ 0x5741ull);
    for (std::int64_t i = 0; i < n; ++i) {
        x[i] = rng.uniform(-1.0f, 1.0f);
        y[i] = rng.uniform(-1.0f, 1.0f);
    }
    rt.noteHostWrite(x, n * 4);
    rt.noteHostWrite(y, n * 4);

    auto costs = std::make_shared<dispatch::RooflineCostModel>();
    costs->setFusionWindow(window);
    dispatch::Dispatcher disp(dispatch::makePolicy("accel"));
    disp.setCostModel(costs);
    dispatch::RuntimeBackend backend(rt, window);
    disp.attachBackend(&backend);
    for (unsigned k = 0; k < 4 * chain; ++k) {
        const float a = 0.125f + 0.0625f * static_cast<float>(k % 8);
        dispatch::OpDesc d = dispatch::lowerSaxpy(n, a, x, 1, y, 1);
        disp.run(d, [&] { mkl::saxpy(n, a, x, 1, y, 1); });
    }
    disp.detachBackend(); // syncs the fusion window

    digest = digestBytes(digest, y, static_cast<std::size_t>(n) * 4);
    rt.memFree(x);
    rt.memFree(y);
    return digest;
}

Sample
runCell(std::uint64_t seed, unsigned chain, unsigned window,
        bool residency)
{
    runtime::RuntimeConfig cfg;
    cfg.backingBytes = 32_MiB;
    cfg.residency.enabled = residency;
    // Integrity on everywhere so the verify-elision counter is
    // exercised; its cost lands on the integrity ledger, not on the
    // invocation numbers the reduction bar measures.
    cfg.integrity.verifyTransfers = true;
    cfg.integrity.checksumSecondsPerByte = 1.0e-10;
    cfg.integrity.checksumJPerByte = 1.0e-12;
    runtime::MealibRuntime rt(cfg);

    Sample s{};
    s.seed = seed;
    s.chain = chain;
    s.window = window;
    s.residency = residency;

    std::uint64_t digest = 1469598103934665603ull;
    digest = runSarChain(rt, chain, seed, digest);
    s.sarInvocationS = rt.accounting().invocation.seconds;
    digest = runStapChain(rt, chain, window, seed, digest);
    s.stapInvocationS =
        rt.accounting().invocation.seconds - s.sarInvocationS;

    const runtime::RuntimeAccounting &a = rt.accounting();
    s.totalS = a.total().seconds;
    s.totalJ = a.total().joules;
    s.flushBytesElided = a.flushBytesElided;
    s.verifyBytesElided = a.verifyBytesElided;
    s.handshakesElided = a.handshakesElided;
    s.fusedPrograms = a.fusedPrograms;
    s.planImageReuses = a.planImageReuses;
    s.digest = digest;
    return s;
}

double
reductionPct(double base, double v)
{
    return base > 0.0 ? 100.0 * (base - v) / base : 0.0;
}

std::string
hex64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    const bool check = cli.has("check");
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 0));
    const std::string jsonPath = cli.get("json", "BENCH_reuse.json");

    bench::banner(
        "ablation: residency x fusion window x chain length "
        "(docs/RUNTIME.md)",
        "chained workloads stop paying the flush + START handshake for "
        "operands that never left the stack; outputs are bit-for-bit "
        "identical in every cell");

    const std::vector<unsigned> chains =
        quick ? std::vector<unsigned>{4} : std::vector<unsigned>{4, 16};
    const std::vector<unsigned> windows{1, 2, 8};

    std::vector<Sample> samples;
    for (unsigned chain : chains)
        for (unsigned window : windows)
            for (bool residency : {false, true})
                samples.push_back(
                    runCell(seed, chain, window, residency));

    // Reductions against the (off, window 1) twin of each chain length.
    for (Sample &s : samples) {
        for (const Sample &base : samples) {
            if (base.chain != s.chain || base.window != 1 ||
                base.residency)
                continue;
            s.sarReductionPct =
                reductionPct(base.sarInvocationS, s.sarInvocationS);
            s.stapReductionPct =
                reductionPct(base.stapInvocationS, s.stapInvocationS);
            s.invocationReductionPct = reductionPct(
                base.sarInvocationS + base.stapInvocationS,
                s.sarInvocationS + s.stapInvocationS);
        }
    }

    bench::Table t({"chain", "window", "residency", "sar invoc (us)",
                    "stap invoc (us)", "sar -%", "stap -%",
                    "flush elided (KiB)", "handshakes", "fused"});
    for (const Sample &s : samples)
        t.row({std::to_string(s.chain), std::to_string(s.window),
               s.residency ? "on" : "off",
               bench::fmt("%.2f", s.sarInvocationS * 1e6),
               bench::fmt("%.2f", s.stapInvocationS * 1e6),
               bench::fmt("%.1f", s.sarReductionPct),
               bench::fmt("%.1f", s.stapReductionPct),
               bench::fmt("%.1f",
                          static_cast<double>(s.flushBytesElided) /
                              1024.0),
               std::to_string(s.handshakesElided),
               std::to_string(s.fusedPrograms)});
    t.print();

    bench::JsonWriter json;
    json.meta("bench", "ablation_reuse");
    json.meta("experiment",
              "residency x fusion window x chain length "
              "(docs/RUNTIME.md)");
    json.meta("quick", quick);
    for (const Sample &s : samples) {
        json.beginRecord();
        json.field("seed", static_cast<double>(s.seed));
        json.field("chain", static_cast<double>(s.chain));
        json.field("fusion_window", static_cast<double>(s.window));
        json.field("residency", s.residency);
        json.field("sar_invocation_s", s.sarInvocationS);
        json.field("stap_invocation_s", s.stapInvocationS);
        json.field("invocation_s", s.sarInvocationS + s.stapInvocationS);
        json.field("total_s", s.totalS);
        json.field("total_j", s.totalJ);
        json.field("flush_bytes_elided",
                   static_cast<double>(s.flushBytesElided));
        json.field("verify_bytes_elided",
                   static_cast<double>(s.verifyBytesElided));
        json.field("handshakes_elided",
                   static_cast<double>(s.handshakesElided));
        json.field("fused_programs",
                   static_cast<double>(s.fusedPrograms));
        json.field("plan_image_reuses",
                   static_cast<double>(s.planImageReuses));
        json.field("digest", hex64(s.digest));
        json.field("invocation_reduction_pct",
                   s.invocationReductionPct);
        json.field("sar_reduction_pct", s.sarReductionPct);
        json.field("stap_reduction_pct", s.stapReductionPct);
        json.endRecord();
    }
    if (!json.writeFile(jsonPath.c_str())) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::printf("wrote %s (%zu records)\n", jsonPath.c_str(),
                samples.size());

    if (!check)
        return 0;

    // --- acceptance gates (CI) -----------------------------------------
    int rc = 0;
    for (unsigned chain : chains) {
        std::uint64_t digest = 0;
        bool first = true;
        for (const Sample &s : samples) {
            if (s.chain != chain)
                continue;
            if (first) {
                digest = s.digest;
                first = false;
            } else if (s.digest != digest) {
                std::fprintf(stderr,
                             "FAIL: digest diverges at chain=%u "
                             "window=%u residency=%d\n",
                             chain, s.window, s.residency);
                rc = 1;
            }
            if (s.residency && s.flushBytesElided == 0) {
                std::fprintf(stderr,
                             "FAIL: zero flush bytes elided at "
                             "chain=%u window=%u\n",
                             chain, s.window);
                rc = 1;
            }
            if (s.residency && s.window == windows.back() &&
                (s.sarReductionPct < 20.0 ||
                 s.stapReductionPct < 20.0)) {
                std::fprintf(stderr,
                             "FAIL: reduction below 20%% at chain=%u "
                             "(sar %.1f%%, stap %.1f%%)\n",
                             chain, s.sarReductionPct,
                             s.stapReductionPct);
                rc = 1;
            }
        }
    }
    if (rc == 0)
        std::printf("check: digests identical, elision active, "
                    ">=20%% invocation reduction met\n");
    return rc;
}
