/**
 * @file
 * Table 5 reproduction: estimated power and 32 nm area of every
 * component on the accelerator layer, plus the DRAM-logic-layer extras
 * (Sec. 5.2). Power per primitive accelerator includes the 3D-DRAM
 * power while that accelerator saturates the stack, exactly as the
 * paper accounts it.
 *
 * `--json=PATH` writes the per-component records; `--quick` trims the
 * timeKernel budget. `--check` turns the run into a regression gate:
 * synthesis areas must match Table 5 exactly, modeled powers must stay
 * within tolerance of the paper's column (RESMP's simpler pipeline
 * model sits ~17% under the paper, hence the 25% band), and the NoC /
 * TSV / logic-layer extras must hold their pinned values. Exits
 * non-zero on the first violation, so CI catches any constant drifting
 * out of the hardware-model registry.
 */

#include <cmath>
#include <cstdio>

#include "accel/config.hh"
#include "accel/model.hh"
#include "bench_util.hh"
#include "common/cli.hh"
#include "dram/params.hh"
#include "hwmodel/profile.hh"
#include "mealib/platform.hh"
#include "noc/mesh.hh"

using namespace mealib;
using mealib::accel::AccelKind;

namespace {

int failures = 0;

void
check(bool ok, const char *what, double got, double want)
{
    if (ok)
        return;
    std::fprintf(stderr, "CHECK FAILED: %s: got %.6f, want %.6f\n",
                 what, got, want);
    ++failures;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    const bool do_check = cli.has("check");
    const std::string json_path = cli.get("json", "");

    bench::banner(
        "Table 5: power and area of the accelerator layer (32 nm)",
        "AXPY 23.56 W / 1.38 mm2 ... FFT 18.89 W / 16.13 mm2; NoC "
        "0.095 W / 1.44 mm2; TSVs 1.75 mm2; total 23.85 W, 41.77 mm2 "
        "(61.43% of the 68 mm2 layer)");

    const AccelKind kinds[] = {
        AccelKind::AXPY, AccelKind::DOT,   AccelKind::GEMV,
        AccelKind::SPMV, AccelKind::RESMP, AccelKind::FFT,
        AccelKind::RESHP,
    };
    const double paper_power[] = {23.56, 23.49, 23.75, 15.44,
                                  8.19,  18.89, 22.70};
    const double paper_area[] = {1.38, 1.81, 2.45, 14.17,
                                 2.64, 16.13, 0.0};

    noc::Mesh mesh(noc::mealibMesh());
    dram::DramParams stack = dram::hmcStack();

    bench::TimingConfig timing;
    if (quick) {
        timing.warmupIters = 1;
        timing.targetSeconds = 0.01;
        timing.repetitions = 2;
    }

    bench::JsonWriter json;
    json.meta("bench", "tab05_power_area");
    json.meta("machine", hwmodel::activeMachineName());
    json.meta("quick", quick);

    bench::Table t({"component", "power (W)", "paper (W)", "area (mm2)",
                    "paper (mm2)", "area %"});
    double total_area = 0.0;
    double max_power = 0.0;
    int i = 0;
    for (AccelKind k : kinds) {
        accel::AccelConfig cfg = accel::defaultConfig(k);
        accel::AccelModel model(k, cfg, stack, noc::mealibMesh());
        // Run the accelerator's Table-2 workload to obtain its average
        // power at full memory utilization (logic + DRAM). The scale is
        // pinned at 1/16 — the power estimate is what --check gates on.
        eval::Workload w = eval::table2Workload(k, 1.0 / 16.0);
        accel::AccelEstimate e;
        bench::TimingResult tr = timeKernel(
            [&] { e = model.estimate(w.call, w.loop); }, timing);
        double area = accel::areaMm2(k, cfg);
        total_area += area;
        max_power = std::max(max_power, e.powerW());
        t.row({accel::name(k), bench::fmt("%.2f", e.powerW()),
               bench::fmt("%.2f", paper_power[i]),
               bench::fmt("%.2f", area),
               paper_area[i] > 0 ? bench::fmt("%.2f", paper_area[i])
                                 : "- (logic layer)",
               bench::fmt("%.2f%%", 100.0 * area /
                                        accel::kLayerAreaMm2)});

        json.beginRecord();
        json.field("component", accel::name(k));
        json.field("power_w", e.powerW());
        json.field("paper_power_w", paper_power[i]);
        json.field("area_mm2", area);
        json.field("paper_area_mm2", paper_area[i]);
        json.field("energy_joules", e.total.joules);
        json.field("seconds", e.total.seconds);
        json.field("eval_wall_seconds", tr.secondsPerCall);
        json.endRecord();

        if (do_check) {
            // Synthesis areas are Table 5 verbatim (registry values).
            check(std::abs(area - paper_area[i]) < 1e-6,
                  accel::name(k), area, paper_area[i]);
            // Modeled power derives from the workload model; hold it to
            // the paper's column within a band that covers the known
            // RESMP gap.
            check(std::abs(e.powerW() - paper_power[i]) <=
                      0.25 * paper_power[i],
                  accel::name(k), e.powerW(), paper_power[i]);
        }
        ++i;
    }

    t.row({"NoC (router+link)", bench::fmt("%.3f", mesh.leakageW()),
           "0.095", bench::fmt("%.2f", mesh.areaMm2()), "1.44",
           bench::fmt("%.2f%%",
                      100.0 * mesh.areaMm2() / accel::kLayerAreaMm2)});
    t.row({"TSVs", "-", "-", bench::fmt("%.2f", accel::kTsvAreaMm2),
           "1.75",
           bench::fmt("%.2f%%",
                      100.0 * accel::kTsvAreaMm2 /
                          accel::kLayerAreaMm2)});
    total_area += mesh.areaMm2() + accel::kTsvAreaMm2;

    // Sec. 5.2: only the hungriest primitive accelerator can be active
    // (they all saturate the same 510 GB/s), so the layer's power is
    // max(accelerator) + NoC.
    double total_power = max_power + mesh.leakageW();
    t.row({"Total", bench::fmt("%.2f", total_power), "23.85",
           bench::fmt("%.2f", total_area), "41.77",
           bench::fmt("%.2f%%",
                      100.0 * total_area / accel::kLayerAreaMm2)});
    t.print();

    dram::LogicLayerExtras extras;
    std::printf("DRAM logic layer extras (MUX + reshape unit): %.2f W, "
                "%.2f mm2 (%.2f%% of the logic layer) — paper: 0.25 W, "
                "0.45 mm2 (0.66%%)\n",
                extras.powerW, extras.areaMm2,
                100.0 * extras.areaMm2 / extras.logicLayerAreaMm2);

    json.meta("total_power_w", total_power);
    json.meta("total_area_mm2", total_area);
    json.meta("noc_leakage_w", mesh.leakageW());
    json.meta("noc_area_mm2", mesh.areaMm2());
    json.meta("tsv_area_mm2", accel::kTsvAreaMm2);
    json.meta("logic_extras_w", extras.powerW);
    json.meta("logic_extras_mm2", extras.areaMm2);

    if (do_check) {
        check(std::abs(mesh.leakageW() - 0.095) < 1e-9, "NoC leakage",
              mesh.leakageW(), 0.095);
        check(std::abs(mesh.areaMm2() - 1.44) < 1e-9, "NoC area",
              mesh.areaMm2(), 1.44);
        check(std::abs(accel::kTsvAreaMm2 - 1.75) < 1e-12, "TSV area",
              accel::kTsvAreaMm2, 1.75);
        check(std::abs(extras.powerW - 0.25) < 1e-12,
              "logic-layer extras power", extras.powerW, 0.25);
        check(std::abs(extras.areaMm2 - 0.45) < 1e-12,
              "logic-layer extras area", extras.areaMm2, 0.45);
        check(std::abs(total_area - 41.77) < 0.02, "total area",
              total_area, 41.77);
        if (failures == 0)
            std::printf("check: all Table 5 pins hold\n");
    }

    if (!json_path.empty()) {
        if (!json.writeFile(json_path)) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("power/area records written to %s\n",
                    json_path.c_str());
    }
    return failures == 0 ? 0 : 1;
}
