/**
 * @file
 * Table 5 reproduction: estimated power and 32 nm area of every
 * component on the accelerator layer, plus the DRAM-logic-layer extras
 * (Sec. 5.2). Power per primitive accelerator includes the 3D-DRAM
 * power while that accelerator saturates the stack, exactly as the
 * paper accounts it.
 */

#include <cstdio>

#include "accel/config.hh"
#include "accel/model.hh"
#include "bench_util.hh"
#include "dram/params.hh"
#include "mealib/platform.hh"
#include "noc/mesh.hh"

using namespace mealib;
using mealib::accel::AccelKind;

int
main()
{
    bench::banner(
        "Table 5: power and area of the accelerator layer (32 nm)",
        "AXPY 23.56 W / 1.38 mm2 ... FFT 18.89 W / 16.13 mm2; NoC "
        "0.095 W / 1.44 mm2; TSVs 1.75 mm2; total 23.85 W, 41.77 mm2 "
        "(61.43% of the 68 mm2 layer)");

    const AccelKind kinds[] = {
        AccelKind::AXPY, AccelKind::DOT,   AccelKind::GEMV,
        AccelKind::SPMV, AccelKind::RESMP, AccelKind::FFT,
        AccelKind::RESHP,
    };
    const double paper_power[] = {23.56, 23.49, 23.75, 15.44,
                                  8.19,  18.89, 22.70};
    const double paper_area[] = {1.38, 1.81, 2.45, 14.17,
                                 2.64, 16.13, 0.0};

    noc::Mesh mesh(noc::mealibMesh());
    dram::DramParams stack = dram::hmcStack();

    bench::Table t({"component", "power (W)", "paper (W)", "area (mm2)",
                    "paper (mm2)", "area %"});
    double total_area = 0.0;
    double max_power = 0.0;
    int i = 0;
    for (AccelKind k : kinds) {
        accel::AccelConfig cfg = accel::defaultConfig(k);
        accel::AccelModel model(k, cfg, stack, noc::mealibMesh());
        // Run the accelerator's Table-2 workload to obtain its average
        // power at full memory utilization (logic + DRAM).
        eval::Workload w = eval::table2Workload(k, 1.0 / 16.0);
        accel::AccelEstimate e = model.estimate(w.call, w.loop);
        double area = accel::areaMm2(k, cfg);
        total_area += area;
        max_power = std::max(max_power, e.powerW());
        t.row({accel::name(k), bench::fmt("%.2f", e.powerW()),
               bench::fmt("%.2f", paper_power[i]),
               bench::fmt("%.2f", area),
               paper_area[i] > 0 ? bench::fmt("%.2f", paper_area[i])
                                 : "- (logic layer)",
               bench::fmt("%.2f%%", 100.0 * area /
                                        accel::kLayerAreaMm2)});
        ++i;
    }

    t.row({"NoC (router+link)", bench::fmt("%.3f", mesh.leakageW()),
           "0.095", bench::fmt("%.2f", mesh.areaMm2()), "1.44",
           bench::fmt("%.2f%%",
                      100.0 * mesh.areaMm2() / accel::kLayerAreaMm2)});
    t.row({"TSVs", "-", "-", bench::fmt("%.2f", accel::kTsvAreaMm2),
           "1.75",
           bench::fmt("%.2f%%",
                      100.0 * accel::kTsvAreaMm2 /
                          accel::kLayerAreaMm2)});
    total_area += mesh.areaMm2() + accel::kTsvAreaMm2;

    // Sec. 5.2: only the hungriest primitive accelerator can be active
    // (they all saturate the same 510 GB/s), so the layer's power is
    // max(accelerator) + NoC.
    double total_power = max_power + mesh.leakageW();
    t.row({"Total", bench::fmt("%.2f", total_power), "23.85",
           bench::fmt("%.2f", total_area), "41.77",
           bench::fmt("%.2f%%",
                      100.0 * total_area / accel::kLayerAreaMm2)});
    t.print();

    dram::LogicLayerExtras extras;
    std::printf("DRAM logic layer extras (MUX + reshape unit): %.2f W, "
                "%.2f mm2 (%.2f%% of the logic layer) — paper: 0.25 W, "
                "0.45 mm2 (0.66%%)\n",
                extras.powerW, extras.areaMm2,
                100.0 * extras.areaMm2 / extras.logicLayerAreaMm2);
    return 0;
}
