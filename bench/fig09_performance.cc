/**
 * @file
 * Figure 9 reproduction: performance of each Table-1 operation on the
 * five Table-3 platforms, normalized to MiniMKL on the Haswell model.
 * Also prints Tables 2 and 3 for reference.
 *
 * Default scale is 1/16 of the paper's data sets (the analytical models
 * make the ratios scale-stable; see the ScaleInvariance test); pass
 * --paper-scale for the full Table 2 sizes.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/cli.hh"
#include "mealib/platform.hh"

using namespace mealib;
using namespace mealib::eval;
using mealib::accel::AccelKind;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    double scale = cli.has("paper-scale")
                       ? 1.0
                       : cli.getDouble("scale", 1.0 / 16.0);

    bench::banner("Figure 9: performance improvement over Intel MKL on "
                  "Haswell",
                  "MEALib 38x average (11x SPMV .. 88x RESHP); PSAS "
                  "2.51x, MSAS 10.32x average; Xeon Phi at best 2.23x "
                  "(AXPY) and 0.024x on RESHP");

    std::printf("Table 3 platforms: Haswell i7-4770K (4c @3.5 GHz, "
                "25.6 GB/s), Xeon Phi 5110P (60c @1.0 GHz, 320 GB/s),\n"
                "PSAS (accel @ 25.6 GB/s), MSAS (accel @ 102.4 GB/s), "
                "MEALib (accel @ 510 GB/s)\n\n");

    const AccelKind kinds[] = {
        AccelKind::AXPY, AccelKind::DOT,   AccelKind::GEMV,
        AccelKind::SPMV, AccelKind::RESMP, AccelKind::FFT,
        AccelKind::RESHP,
    };

    std::printf("Table 2 data sets (scale %.4f):\n", scale);
    for (AccelKind k : kinds)
        std::printf("  %-6s %s\n", accel::name(k),
                    table2Workload(k, scale).desc.c_str());
    std::printf("\n");

    bench::Table t({"op", "Haswell", "XeonPhi", "PSAS", "MSAS",
                    "MEALib", "unit"});
    double sum_phi = 0, sum_psas = 0, sum_msas = 0, sum_mea = 0;
    for (AccelKind k : kinds) {
        Workload w = table2Workload(k, scale);
        OpResult base = evaluateOp(Platform::HaswellMkl, w);
        double phi = evaluateOp(Platform::XeonPhiMkl, w).perf() /
                     base.perf();
        double psas = evaluateOp(Platform::Psas, w).perf() / base.perf();
        double msas = evaluateOp(Platform::Msas, w).perf() / base.perf();
        double mea = evaluateOp(Platform::MeaLib, w).perf() /
                     base.perf();
        sum_phi += phi;
        sum_psas += psas;
        sum_msas += msas;
        sum_mea += mea;
        t.row({accel::name(k), bench::fmt("%.2f", base.perf()),
               bench::fmt("%.2fx", phi), bench::fmt("%.2fx", psas),
               bench::fmt("%.2fx", msas), bench::fmt("%.2fx", mea),
               k == AccelKind::RESHP ? "GB/s (abs), x (rel)"
                                     : "GFLOPS (abs), x (rel)"});
    }
    t.row({"average", "-", bench::fmt("%.2fx", sum_phi / 7),
           bench::fmt("%.2fx", sum_psas / 7),
           bench::fmt("%.2fx", sum_msas / 7),
           bench::fmt("%.2fx", sum_mea / 7), ""});
    t.print();

    std::printf("paper averages: PSAS 2.51x, MSAS 10.32x, MEALib 38x\n");
    return 0;
}
