/**
 * @file
 * Microbenchmarks of the MiniMKL functional kernels: optimized variants
 * against their naive oracles across sizes and thread counts, with
 * warmup + min-of-N timing (see bench_util.hh) so the numbers are
 * stable enough to gate on.
 *
 * Not a paper figure — library-release hygiene. `--json <path>` writes
 * BENCH_kernels.json-style output (per-kernel GB/s and speedups) that
 * CI uploads as the perf trajectory artifact; later PRs regress against
 * it. `--quick` shrinks sizes for a smoke run.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "hwmodel/profile.hh"
#include "minimkl/blas1.hh"
#include "minimkl/blas2.hh"
#include "minimkl/blas3.hh"
#include "minimkl/compat.hh"
#include "minimkl/fft.hh"
#include "minimkl/naive.hh"
#include "minimkl/sparse.hh"
#include "minimkl/transpose.hh"

namespace {

using namespace mealib;

std::vector<float>
randomVec(std::int64_t n, std::uint64_t seed = 1)
{
    Rng rng(seed);
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

std::vector<mkl::cfloat>
randomCVec(std::int64_t n, std::uint64_t seed = 2)
{
    Rng rng(seed);
    std::vector<mkl::cfloat> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    return v;
}

struct Options
{
    std::string jsonPath;
    bool quick = false;
    std::vector<int> threads;
    std::vector<simd::SimdLevel> simdLevels;
    bench::TimingConfig timing;
};

/**
 * SIMD levels to sweep by default: the pinned scalar baseline plus the
 * best level this machine supports (collapsed to scalar-only when no
 * vector backend is available).
 */
std::vector<simd::SimdLevel>
defaultSimdSweep()
{
    std::vector<simd::SimdLevel> levels{simd::SimdLevel::Scalar};
    if (simd::detectedLevel() != simd::SimdLevel::Scalar)
        levels.push_back(simd::SimdLevel::Auto);
    return levels;
}

/** Thread counts to sweep: 1, 2, and the hardware width (deduped). */
std::vector<int>
defaultThreadSweep()
{
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw < 1)
        hw = 1;
    std::vector<int> t{1, 2, 4, hw};
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    return t;
}

/** One benchmark entry: optimized kernel vs its naive oracle. */
struct Report
{
    bench::Table &table;
    bench::JsonWriter &json;
    const Options &opt;
    //! Modeled peak DRAM bandwidth of the active machine profile, GB/s;
    //! measured GB/s over this is the roofline fraction.
    double peakGBs =
        hwmodel::activeProfile().cpu.memBandwidth * 1e-9;

    void
    row(const std::string &kernel, long long n, int threads,
        const std::string &simdName, const bench::TimingResult &t,
        double bytesPerCall, double naiveSeconds,
        double oneThreadSeconds, double scalarSeconds)
    {
        double gbps = bytesPerCall / t.secondsPerCall * 1e-9;
        double rooflineFrac = peakGBs > 0.0 ? gbps / peakGBs : 0.0;
        double vsNaive =
            naiveSeconds > 0.0 ? naiveSeconds / t.secondsPerCall : 0.0;
        double vs1t = oneThreadSeconds > 0.0
                          ? oneThreadSeconds / t.secondsPerCall
                          : 0.0;
        double vsScalar = scalarSeconds > 0.0
                              ? scalarSeconds / t.secondsPerCall
                              : 0.0;
        table.row({kernel, std::to_string(n), std::to_string(threads),
                   simdName, bench::fmt("%.3f", t.secondsPerCall * 1e3),
                   bench::fmt("%.2f", gbps),
                   bench::fmt("%.2f", rooflineFrac),
                   naiveSeconds > 0.0 ? bench::fmt("%.2f", vsNaive) : "-",
                   oneThreadSeconds > 0.0 ? bench::fmt("%.2f", vs1t)
                                          : "-",
                   scalarSeconds > 0.0 ? bench::fmt("%.2f", vsScalar)
                                       : "-"});
        json.beginRecord();
        json.field("kernel", kernel);
        json.field("n", n);
        json.field("threads", static_cast<long long>(threads));
        json.field("simd", simdName);
        json.field("seconds", t.secondsPerCall);
        json.field("iters_per_rep", static_cast<long long>(t.itersPerRep));
        json.field("repetitions",
                   static_cast<long long>(t.repetitions));
        json.field("gb_per_s", gbps);
        json.field("roofline_frac", rooflineFrac);
        if (naiveSeconds > 0.0)
            json.field("speedup_vs_naive", vsNaive);
        if (oneThreadSeconds > 0.0)
            json.field("speedup_vs_1thread", vs1t);
        if (scalarSeconds > 0.0)
            json.field("speedup_vs_scalar", vsScalar);
        json.endRecord();
    }
};

/**
 * Sweep an optimized kernel over the SIMD levels x thread counts
 * against one naive baseline measurement; ratios vs the naive time,
 * vs the kernel's own 1-thread time at that level and vs the scalar
 * 1-thread time are recorded. @p optimized must be re-runnable.
 */
template <typename OptFn, typename NaiveFn>
void
sweep(Report &rep, const std::string &kernel, long long n,
      double bytesPerCall, OptFn &&optimized, NaiveFn &&naive)
{
    double naiveSec = 0.0;
    {
        kernelTuning().numThreads = 1;
        bench::TimingResult t = bench::timeKernel(naive, rep.opt.timing);
        naiveSec = t.secondsPerCall;
        rep.row(kernel + "_naive", n, 1, "-", t, bytesPerCall, 0.0, 0.0,
                0.0);
    }
    double scalarOneThreadSec = 0.0;
    for (simd::SimdLevel level : rep.opt.simdLevels) {
        kernelTuning().simd = level;
        const simd::SimdLevel resolved = simd::resolveLevel(level);
        const std::string simdName = simd::name(resolved);
        double oneThreadSec = 0.0;
        for (int threads : rep.opt.threads) {
            kernelTuning().numThreads = threads;
            bench::TimingResult t =
                bench::timeKernel(optimized, rep.opt.timing);
            if (threads == 1) {
                oneThreadSec = t.secondsPerCall;
                if (resolved == simd::SimdLevel::Scalar)
                    scalarOneThreadSec = t.secondsPerCall;
            }
            rep.row(kernel, n, threads, simdName, t, bytesPerCall,
                    naiveSec, threads == 1 ? 0.0 : oneThreadSec,
                    threads == 1 && resolved != simd::SimdLevel::Scalar
                        ? scalarOneThreadSec
                        : 0.0);
        }
    }
    kernelTuning().numThreads = 1;
    kernelTuning().simd = simd::SimdLevel::Auto;
}

void
benchSaxpy(Report &rep, std::int64_t n)
{
    auto x = randomVec(n);
    auto y = randomVec(n, 3);
    sweep(
        rep, "saxpy", n, static_cast<double>(n) * 12,
        [&] { mkl::saxpy(n, 1.0001f, x.data(), 1, y.data(), 1); },
        [&] { mkl::naive::saxpy(n, 1.0001f, x.data(), y.data()); });
}

void
benchSdot(Report &rep, std::int64_t n)
{
    auto x = randomVec(n);
    auto y = randomVec(n, 5);
    volatile float sink = 0.0f;
    sweep(
        rep, "sdot", n, static_cast<double>(n) * 8,
        [&] { sink = mkl::sdot(n, x.data(), 1, y.data(), 1); },
        [&] { sink = mkl::naive::sdot(n, x.data(), y.data()); });
    (void)sink;
}

void
benchSgemv(Report &rep, std::int64_t d)
{
    auto a = randomVec(d * d);
    auto x = randomVec(d, 7);
    std::vector<float> y(static_cast<std::size_t>(d));
    sweep(
        rep, "sgemv", d, static_cast<double>(d) * d * 4,
        [&] {
            mkl::sgemv(mkl::Order::RowMajor, mkl::Transpose::NoTrans, d,
                       d, 1.0f, a.data(), d, x.data(), 1, 0.0f, y.data(),
                       1);
        },
        [&] {
            mkl::naive::sgemv(d, d, a.data(), d, x.data(), y.data());
        });
}

void
benchCsrgemv(Report &rep, std::int64_t nodes)
{
    Rng rng(11);
    mkl::CsrMatrix m = mkl::randomGeometricGraph(nodes, 13.0, rng);
    auto x = randomVec(m.cols, 13);
    std::vector<float> y(static_cast<std::size_t>(m.rows));

    // Classic 1-based MKL arrays, as legacy callers hand them over.
    const int rows = static_cast<int>(m.rows);
    std::vector<int> ia(m.rowPtr.size());
    for (std::size_t i = 0; i < m.rowPtr.size(); ++i)
        ia[i] = static_cast<int>(m.rowPtr[i]) + 1;
    std::vector<int> ja(m.colIdx.size());
    for (std::size_t i = 0; i < m.colIdx.size(); ++i)
        ja[i] = m.colIdx[i] + 1;

    // ~12 bytes per nonzero (value + index + gathered x) + y writes.
    double bytes = static_cast<double>(m.nnz()) * 12 +
                   static_cast<double>(m.rows) * 4;
    sweep(
        rep, "csrgemv", m.nnz(), bytes,
        [&] {
            mkl_scsrgemv("N", &rows, m.vals.data(), ia.data(), ja.data(),
                         x.data(), y.data());
        },
        [&] { mkl::naive::spmv(m, x.data(), y.data()); });
}

void
benchSimatcopy(Report &rep, std::int64_t d)
{
    auto a = randomVec(d * d);
    std::vector<float> b(a.size());
    sweep(
        rep, "simatcopy", d, static_cast<double>(d) * d * 8,
        [&] {
            // Square in-place transpose: repeated calls alternate
            // between the two layouts, which is fine for timing.
            mkl_simatcopy('R', 'T', static_cast<std::size_t>(d),
                          static_cast<std::size_t>(d), 1.0f, a.data(),
                          static_cast<std::size_t>(d),
                          static_cast<std::size_t>(d));
        },
        [&] { mkl::naive::transpose(d, d, a.data(), b.data()); });
}

void
benchFftBatched(Report &rep, std::int64_t n, std::int64_t batch)
{
    auto in = randomCVec(n * batch);
    std::vector<mkl::cfloat> out(in.size());
    auto plan =
        mkl::FftPlan::dft1dBatched(n, batch, n, mkl::FftDirection::Forward);
    sweep(
        rep, "fft_batched", n * batch,
        static_cast<double>(n) * batch * 16,
        [&] { plan.execute(in.data(), out.data()); },
        [&] {
            for (std::int64_t b = 0; b < batch; ++b)
                mkl::naive::fftRecursive(in.data() + b * n,
                                         out.data() + b * n, n, -1);
        });
}

void
benchCherk(Report &rep, std::int64_t n, std::int64_t k)
{
    auto a = randomCVec(n * k);
    std::vector<mkl::cfloat> c(static_cast<std::size_t>(n * n));
    // No naive cherk oracle exists; report thread scaling only.
    sweep(
        rep, "cherk", n, static_cast<double>(n) * n * k * 4,
        [&] {
            mkl::cherk(mkl::Order::RowMajor, mkl::Uplo::Lower,
                       mkl::Transpose::NoTrans, n, k, 1.0f, a.data(), k,
                       0.0f, c.data(), n);
        },
        [&] {
            mkl::cherk(mkl::Order::RowMajor, mkl::Uplo::Lower,
                       mkl::Transpose::NoTrans, n, k, 1.0f, a.data(), k,
                       0.0f, c.data(), n);
        });
}

/** FNV-1a over raw bytes — the cross-ISA output digest. */
std::uint64_t
fnv1a(const void *data, std::size_t bytes, std::uint64_t h)
{
    const auto *b = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= b[i];
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Digest of a representative kernel batch (map + reductions + gemv) at
 * the current tuning: every float bit of every output feeds the hash.
 */
std::uint64_t
outputDigest(std::int64_t n, const std::vector<float> &x,
             const std::vector<float> &y)
{
    std::vector<float> v(y);
    mkl::saxpy(n, 1.0001f, x.data(), 1, v.data(), 1);
    float d = mkl::sdot(n, x.data(), 1, y.data(), 1);
    float r = mkl::snrm2(n, x.data(), 1);
    float s = mkl::sasum(n, x.data(), 1);
    const std::int64_t dim = 128;
    std::vector<float> gy(static_cast<std::size_t>(dim));
    mkl::sgemv(mkl::Order::RowMajor, mkl::Transpose::NoTrans, dim, dim,
               1.0f, x.data(), dim, y.data(), 1, 0.0f, gy.data(), 1);
    std::uint64_t h = 1469598103934665603ull;
    h = fnv1a(v.data(), v.size() * sizeof(float), h);
    h = fnv1a(&d, sizeof(d), h);
    h = fnv1a(&r, sizeof(r), h);
    h = fnv1a(&s, sizeof(s), h);
    h = fnv1a(gy.data(), gy.size() * sizeof(float), h);
    return h;
}

/**
 * Bit-reproducibility probe. Two pins:
 *  - per level, the deterministic reductions must return identical bits
 *    for every thread count and across repeated runs;
 *  - every non-scalar level must produce the same output digest (the
 *    fixed-width virtual vectors make sse4/avx2/avx512 bit-identical).
 * @return true when every sweep agrees.
 */
bool
checkDeterminism(const Options &opt, bench::JsonWriter &json)
{
    const std::int64_t n = opt.quick ? (1 << 14) : (1 << 20);
    auto x = randomVec(n, 21);
    auto y = randomVec(n, 22);

    bool threadsOk = true;
    bool crossIsaOk = true;
    std::uint64_t vectorDigest = 0;
    bool haveVectorDigest = false;
    for (simd::SimdLevel level : simd::availableLevels()) {
        kernelTuning().simd = level;
        kernelTuning().numThreads = 1;
        const float dotRef = mkl::sdot(n, x.data(), 1, y.data(), 1);
        const float nrmRef = mkl::snrm2(n, x.data(), 1);
        const float asumRef = mkl::sasum(n, x.data(), 1);
        for (int threads : {1, 2, 8}) {
            kernelTuning().numThreads = threads;
            for (int rep = 0; rep < 3; ++rep) {
                float d = mkl::sdot(n, x.data(), 1, y.data(), 1);
                float r = mkl::snrm2(n, x.data(), 1);
                float s = mkl::sasum(n, x.data(), 1);
                threadsOk =
                    threadsOk &&
                    std::memcmp(&d, &dotRef, sizeof(float)) == 0 &&
                    std::memcmp(&r, &nrmRef, sizeof(float)) == 0 &&
                    std::memcmp(&s, &asumRef, sizeof(float)) == 0;
            }
            std::uint64_t digest = outputDigest(n, x, y);
            if (level != simd::SimdLevel::Scalar) {
                if (!haveVectorDigest) {
                    vectorDigest = digest;
                    haveVectorDigest = true;
                } else if (digest != vectorDigest) {
                    crossIsaOk = false;
                    std::fprintf(stderr,
                                 "cross-ISA digest mismatch at %s x %d "
                                 "threads\n",
                                 simd::name(level), threads);
                }
            }
        }
    }
    kernelTuning().numThreads = 1;
    kernelTuning().simd = simd::SimdLevel::Auto;
    json.meta("reductions_bit_identical", threadsOk);
    json.meta("cross_isa_bit_identical", crossIsaOk);
    return threadsOk && crossIsaOk;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.threads = defaultThreadSweep();
    opt.simdLevels = defaultSimdSweep();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (arg == "--quick") {
            opt.quick = true;
            opt.timing.targetSeconds = 0.01;
            opt.timing.repetitions = 3;
        } else if (arg == "--simd" && i + 1 < argc) {
            opt.simdLevels.clear();
            std::string list = argv[++i];
            std::size_t pos = 0;
            while (pos < list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string item = list.substr(pos, comma - pos);
                simd::SimdLevel level;
                if (!simd::parseLevel(item.c_str(), &level)) {
                    std::fprintf(stderr, "unknown simd level '%s'\n",
                                 item.c_str());
                    std::exit(2);
                }
                opt.simdLevels.push_back(level);
                pos = comma + 1;
            }
        } else if (arg == "--threads" && i + 1 < argc) {
            opt.threads.clear();
            std::string list = argv[++i];
            std::size_t pos = 0;
            while (pos < list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                opt.threads.push_back(
                    std::stoi(list.substr(pos, comma - pos)));
                pos = comma + 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: kernels_microbench [--json <path>] "
                         "[--quick] [--threads 1,2,4] "
                         "[--simd scalar,sse4,avx2,avx512,auto]\n");
            std::exit(2);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    bench::banner("kernels_microbench",
                  "library kernels must beat handwritten loops "
                  "(Figure 1) — optimized vs naive, by thread count");

    bench::Table table({"kernel", "n", "threads", "simd", "ms/call",
                        "GB/s", "roofline", "vs_naive", "vs_1t",
                        "vs_scalar"});
    bench::JsonWriter json;
    json.meta("bench", "kernels_microbench");
    json.meta("hardware_threads",
              static_cast<double>(std::thread::hardware_concurrency()));
    json.meta("quick", opt.quick);
    json.meta("simd_detected", simd::name(simd::detectedLevel()));

    Report rep{table, json, opt};

    if (opt.quick) {
        benchSaxpy(rep, 1 << 14);
        benchSdot(rep, 1 << 14);
        benchSgemv(rep, 128);
        benchCsrgemv(rep, 1 << 12);
        benchSimatcopy(rep, 128);
        benchFftBatched(rep, 256, 16);
        benchCherk(rep, 48, 64);
    } else {
        benchSaxpy(rep, 1 << 16);
        benchSaxpy(rep, 1 << 20);
        benchSdot(rep, 1 << 16);
        benchSdot(rep, 1 << 20);
        benchSgemv(rep, 512);
        benchSgemv(rep, 2048);
        benchCsrgemv(rep, 1 << 14);
        benchCsrgemv(rep, 1 << 17);
        benchSimatcopy(rep, 512);
        benchSimatcopy(rep, 2048);
        benchFftBatched(rep, 1024, 256);
        benchCherk(rep, 256, 256);
    }

    bool deterministic = checkDeterminism(opt, json);

    table.print();
    std::printf("reductions bit-identical across threads and "
                "non-scalar ISA levels: %s\n",
                deterministic ? "yes" : "NO");

    if (!opt.jsonPath.empty()) {
        if (!json.writeFile(opt.jsonPath)) {
            std::fprintf(stderr, "failed to write %s\n",
                         opt.jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    return deterministic ? 0 : 1;
}
