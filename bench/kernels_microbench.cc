/**
 * @file
 * google-benchmark microbenchmarks of the MiniMKL functional kernels.
 * Not a paper figure — standard library-release hygiene so downstream
 * users can track kernel regressions.
 */

#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "minimkl/blas1.hh"
#include "minimkl/blas2.hh"
#include "minimkl/blas3.hh"
#include "minimkl/fft.hh"
#include "minimkl/resample.hh"
#include "minimkl/sparse.hh"
#include "minimkl/transpose.hh"

namespace {

using namespace mealib;

std::vector<float>
randomVec(std::int64_t n, std::uint64_t seed = 1)
{
    Rng rng(seed);
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

std::vector<mkl::cfloat>
randomCVec(std::int64_t n, std::uint64_t seed = 2)
{
    Rng rng(seed);
    std::vector<mkl::cfloat> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    return v;
}

void
BM_Saxpy(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    auto x = randomVec(n);
    auto y = randomVec(n, 3);
    for (auto _ : state) {
        mkl::saxpy(n, 1.0001f, x.data(), 1, y.data(), 1);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * 12);
}
BENCHMARK(BM_Saxpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void
BM_Sdot(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    auto x = randomVec(n);
    auto y = randomVec(n, 5);
    for (auto _ : state) {
        float d = mkl::sdot(n, x.data(), 1, y.data(), 1);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * 8);
}
BENCHMARK(BM_Sdot)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void
BM_Sgemv(benchmark::State &state)
{
    const std::int64_t d = state.range(0);
    auto a = randomVec(d * d);
    auto x = randomVec(d, 7);
    std::vector<float> y(static_cast<std::size_t>(d));
    for (auto _ : state) {
        mkl::sgemv(mkl::Order::RowMajor, mkl::Transpose::NoTrans, d, d,
                   1.0f, a.data(), d, x.data(), 1, 0.0f, y.data(), 1);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            d * d * 2);
}
BENCHMARK(BM_Sgemv)->Arg(256)->Arg(1024);

void
BM_Spmv(benchmark::State &state)
{
    Rng rng(11);
    mkl::CsrMatrix m = mkl::randomGeometricGraph(state.range(0), 13.0,
                                                 rng);
    auto x = randomVec(m.cols, 13);
    std::vector<float> y(static_cast<std::size_t>(m.rows));
    for (auto _ : state) {
        mkl::scsrmv(m, x.data(), y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            m.nnz() * 2);
}
BENCHMARK(BM_Spmv)->Arg(1 << 12)->Arg(1 << 16);

void
BM_Fft(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    auto in = randomCVec(n);
    std::vector<mkl::cfloat> out(in.size());
    auto plan = mkl::FftPlan::dft1d(n, mkl::FftDirection::Forward);
    for (auto _ : state) {
        plan.execute(in.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(plan.flopEstimate()));
}
BENCHMARK(BM_Fft)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void
BM_Fft2d(benchmark::State &state)
{
    const std::int64_t d = state.range(0);
    auto in = randomCVec(d * d);
    std::vector<mkl::cfloat> out(in.size());
    auto plan = mkl::FftPlan::dft2d(d, d, mkl::FftDirection::Forward);
    for (auto _ : state) {
        plan.execute(in.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_Fft2d)->Arg(128)->Arg(512);

void
BM_Transpose(benchmark::State &state)
{
    const std::int64_t d = state.range(0);
    auto a = randomVec(d * d);
    std::vector<float> b(a.size());
    for (auto _ : state) {
        mkl::somatcopy(mkl::Order::RowMajor, mkl::Transpose::Trans, d, d,
                       1.0f, a.data(), d, b.data(), d);
        benchmark::DoNotOptimize(b.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            d * d * 8);
}
BENCHMARK(BM_Transpose)->Arg(512)->Arg(2048);

void
BM_Resample(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    auto in = randomVec(n);
    std::vector<float> out(static_cast<std::size_t>(2 * n));
    for (auto _ : state) {
        mkl::resample1d(in.data(), n, out.data(), 2 * n,
                        mkl::InterpKind::Sinc8);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            2 * n);
}
BENCHMARK(BM_Resample)->Arg(1 << 12)->Arg(1 << 16);

void
BM_Cherk(benchmark::State &state)
{
    const std::int64_t n = 48, k = state.range(0);
    auto a = randomCVec(n * k);
    std::vector<mkl::cfloat> c(static_cast<std::size_t>(n * n));
    for (auto _ : state) {
        mkl::cherk(mkl::Order::RowMajor, mkl::Uplo::Lower,
                   mkl::Transpose::NoTrans, n, k, 1.0f, a.data(), k,
                   0.0f, c.data(), n);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_Cherk)->Arg(64)->Arg(512);

} // namespace

BENCHMARK_MAIN();
