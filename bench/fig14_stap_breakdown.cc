/**
 * @file
 * Figure 14 reproduction: execution time and energy breakdown of the
 * MEALib STAP run.
 *
 *  (a) host vs accelerators: paper reports ~75% of time and ~90% of
 *      energy on the host multicore;
 *  (b) among the accelerators, DOT dominates (60% time / 76% energy),
 *      AXPY is smallest (3.1% / 3.8%), and the invocation overhead
 *      (cache flush + descriptor copy) stays at 3.3% / 7.1% of the
 *      accelerator total thanks to the 3-descriptor compaction.
 */

#include <cstdio>

#include "apps/stap.hh"
#include "bench_util.hh"
#include "common/cli.hh"
#include "runtime/runtime.hh"

using namespace mealib;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    apps::StapParams params = cli.has("large")
                                  ? apps::StapParams::largeSet()
                                  : apps::StapParams::mediumSet();
    std::uint64_t arena = cli.has("large") ? 1536_MiB : 256_MiB;

    bench::banner("Figure 14: STAP time/energy breakdown on MEALib",
                  "(a) host 75% time / 90% energy; (b) DOT 60%/76%, "
                  "AXPY 3.1%/3.8%, invocation 3.3%/7.1% of the "
                  "accelerator side");

    runtime::RuntimeConfig cfg;
    cfg.backingBytes = arena;
    runtime::MealibRuntime rt(cfg);
    apps::StapResult r = apps::runStapMealib(params, rt);
    Cost total = r.total();

    std::printf("(a) host vs accelerators vs invocation\n");
    bench::Table ta({"component", "time (ms)", "time %", "energy (J)",
                     "energy %"});
    auto share = [&](Cost c, const char *name, bench::Table &t) {
        t.row({name, bench::fmt("%.3f", c.seconds * 1e3),
               bench::fmt("%.1f%%", 100.0 * c.seconds / total.seconds),
               bench::fmt("%.4f", c.joules),
               bench::fmt("%.1f%%", 100.0 * c.joules / total.joules)});
    };
    share(r.host, "host (cherk/ctrsm/marshal + idle)", ta);
    share(r.accel, "accelerators", ta);
    share(r.invocation, "invocation (flush+descriptor)", ta);
    ta.print();

    std::printf("(b) accelerator-side breakdown\n");
    double acc_t = r.accel.seconds + r.invocation.seconds;
    double acc_e = r.accel.joules + r.invocation.joules;
    bench::Table tb({"accelerator", "time %", "energy %"});
    for (const auto &[k, v] : r.timeByAccel.parts()) {
        tb.row({k, bench::fmt("%.1f%%", 100.0 * v / acc_t),
                bench::fmt("%.1f%%",
                           100.0 * r.energyByAccel.get(k) / acc_e)});
    }
    tb.row({"invocation",
            bench::fmt("%.1f%%", 100.0 * r.invocation.seconds / acc_t),
            bench::fmt("%.1f%%", 100.0 * r.invocation.joules / acc_e)});
    tb.print();

    std::printf("descriptors used: %llu (paper: 3); library calls "
                "absorbed: %llu (paper: ~17M at full scale)\n",
                static_cast<unsigned long long>(r.descriptors),
                static_cast<unsigned long long>(r.libraryCalls));
    return 0;
}
