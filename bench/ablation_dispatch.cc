/**
 * @file
 * Ablation: the op-IR dispatcher's offload policies (docs/DISPATCH.md).
 *
 * Sweeps policy x op kind x call size and reports, per cell, where the
 * policy sends the call and what the roofline/accelerator cost models
 * price for each side. Shows the paper's crossover shape:
 *  1. every Table-2 memory-bounded kind offloads at paper scale under
 *     crossover/calibrated, matching AccelAlways;
 *  2. small calls stay on the host — the flush + handshake overhead
 *     dominates — so AccelAlways loses there;
 *  3. compute-bounded calls (gemm, cherk, ctrsm) never offload: no
 *     Table-1 accelerator exists and the model prices them host-side.
 *
 * Emits BENCH_dispatch.json (policy/kind/scale records) after the
 * human-readable table.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "dispatch/dispatcher.hh"
#include "dispatch/models.hh"
#include "dispatch/opdesc.hh"
#include "dispatch/policy.hh"
#include "mealib/platform.hh"

using namespace mealib;
using namespace mealib::dispatch;

namespace {

/** Backend that "succeeds" without a runtime: the bench measures the
 * policy decisions and modeled costs, not functional execution. */
class ModelBackend final : public AccelBackend
{
  public:
    const char *name() const override { return "model"; }
    Status execute(const OpDesc &) override { return Status(); }
};

struct Cell
{
    std::string policy;
    std::string kind;
    double scale;
    double hostS;
    double accelS;
    bool offloaded;
};

} // namespace

int
main()
{
    bench::banner(
        "ablation: offload policy x op kind x size (docs/DISPATCH.md)",
        "memory-bounded library calls win on the memory-side "
        "accelerators at paper scale; small and compute-bounded calls "
        "stay on the host");

    auto costs = std::make_shared<RooflineCostModel>();
    ModelBackend backend;
    const std::vector<std::string> policies{"host", "accel", "crossover",
                                            "calibrated"};
    const std::vector<double> scales{0.01, 0.1, 1.0};

    std::vector<Cell> cells;
    for (const std::string &pname : policies) {
        Dispatcher disp(makePolicy(pname));
        disp.setCostModel(costs);
        disp.attachBackend(&backend);
        for (std::uint8_t k = 0;
             k < static_cast<std::uint8_t>(accel::AccelKind::kCount);
             ++k) {
            auto kind = static_cast<accel::AccelKind>(k);
            for (double scale : scales) {
                eval::Workload w = eval::table2Workload(kind, scale);
                OpDesc d = opDescFromCall(w.call, w.loop);
                const std::uint64_t before =
                    disp.snapshot().of(d.kind).offloaded;
                disp.run(d, [] {});
                const std::uint64_t after =
                    disp.snapshot().of(d.kind).offloaded;
                cells.push_back({pname, dispatch::name(d.kind), scale,
                                 costs->hostSeconds(d),
                                 costs->accelSeconds(d),
                                 after > before});
            }
        }
        // Compute-bounded calls (STAP covariance/solve scale): priced
        // host-side under every policy.
        for (OpDesc d :
             {lowerSgemm(512, 512, 512, nullptr, nullptr, 0.0f, nullptr),
              lowerCherk(256, 1024, nullptr, 0.0f, nullptr),
              lowerCtrsm(256, 256, nullptr, nullptr)}) {
            const std::uint64_t before =
                disp.snapshot().of(d.kind).offloaded;
            disp.run(d, [] {});
            const std::uint64_t after =
                disp.snapshot().of(d.kind).offloaded;
            cells.push_back({pname, dispatch::name(d.kind), 1.0,
                             costs->hostSeconds(d),
                             costs->accelSeconds(d), after > before});
        }
        disp.detachBackend();
    }

    bench::Table table({"policy", "kind", "scale", "host ms", "accel ms",
                        "side"});
    for (const Cell &c : cells)
        table.row({c.policy, c.kind, bench::fmt("%.2f", c.scale),
                   bench::fmt("%.4f", c.hostS * 1e3),
                   c.accelS < 1e18 ? bench::fmt("%.4f", c.accelS * 1e3)
                                   : "-",
                   c.offloaded ? "accel" : "host"});
    table.print();

    bench::JsonWriter json;
    json.meta("bench", "ablation_dispatch");
    json.meta("experiment",
              "offload policy x op kind x size (docs/DISPATCH.md)");
    for (const Cell &c : cells) {
        json.beginRecord();
        json.field("policy", c.policy);
        json.field("kind", c.kind);
        json.field("scale", c.scale);
        json.field("host_seconds", c.hostS);
        json.field("accel_seconds", c.accelS < 1e18 ? c.accelS : -1.0);
        json.field("offloaded", c.offloaded);
        json.endRecord();
    }
    const char *out = "BENCH_dispatch.json";
    if (!json.writeFile(out)) {
        std::fprintf(stderr, "cannot write %s\n", out);
        return 1;
    }
    std::printf("wrote %s (%zu records)\n", out, cells.size());
    return 0;
}
