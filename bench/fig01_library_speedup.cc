/**
 * @file
 * Figure 1 reproduction: performance gained by replacing handwritten
 * "original" code with high-performance library calls (the paper's
 * motivation: up to 27x on R benchmarks, 42x on PERFECT, 24x on PARSEC).
 *
 * Two views are printed:
 *  1. modeled speedups on the Haswell model — original code is scalar,
 *     single-threaded and cache-naive; the library is vectorized,
 *     blocked and multithreaded (the paper's single-thread and
 *     multi-thread library bars);
 *  2. measured wall-clock speedups of this repository's own naive
 *     reference kernels vs the optimized MiniMKL kernels, as a sanity
 *     anchor that the effect is real, not just modeled.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/cli.hh"
#include "common/rng.hh"
#include "host/cpu.hh"
#include "mealib/platform.hh"
#include "minimkl/fft.hh"
#include "minimkl/naive.hh"
#include "minimkl/transpose.hh"

using namespace mealib;
using mealib::accel::AccelKind;

namespace {

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Modeled original-vs-library speedup for one kernel shape. */
void
modeledRow(bench::Table &t, const char *name, AccelKind kind,
           double scale)
{
    host::CpuModel cpu(host::haswell4770k());
    eval::Workload w = eval::table2Workload(kind, scale);

    // Original: scalar loops, one thread, cache-hostile access. A
    // single unoptimized thread is latency-bound and reaches only a
    // small fraction of the channel bandwidth, and unblocked walks
    // roughly double the traffic.
    host::KernelProfile orig = eval::hostProfile(
        eval::Platform::HaswellMkl, w.call, w.loop);
    orig.simdEff = 0.10;
    orig.parallelFraction = 0.0;
    orig.memEff = 0.12;
    orig.bytesRead *= 2.0;

    host::KernelProfile lib1 = eval::hostProfile(
        eval::Platform::HaswellMkl, w.call, w.loop);
    lib1.parallelFraction = 0.0; // single-thread library

    host::KernelProfile libn = eval::hostProfile(
        eval::Platform::HaswellMkl, w.call, w.loop);

    double t_orig = cpu.run(orig).seconds;
    double t1 = cpu.run(lib1).seconds;
    double tn = cpu.run(libn).seconds;
    t.row({name, accel::name(kind), bench::fmt("%.1fx", t_orig / t1),
           bench::fmt("%.1fx", t_orig / tn)});
}

template <typename F>
double
timeIt(F &&f, int reps = 3)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        double t0 = now();
        f();
        best = std::min(best, now() - t0);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    double scale = cli.has("paper-scale")
                       ? 1.0
                       : cli.getDouble("scale", 1.0 / 16.0);

    bench::banner("Figure 1: speedup of library-based code over "
                  "original code",
                  "R benchmarks up to 27x, PERFECT up to 42x, PARSEC up "
                  "to 24x (single- and multi-threaded library)");

    std::printf("modeled on the Haswell model (original = scalar, "
                "single-thread, unblocked):\n");
    bench::Table tm({"benchmark proxy", "kernel", "1-thread lib",
                     "multi-thread lib"});
    modeledRow(tm, "R: pca / regression", AccelKind::GEMV, scale);
    modeledRow(tm, "R: similarity (dot)", AccelKind::DOT, scale);
    modeledRow(tm, "PERFECT: stap doppler", AccelKind::FFT, scale);
    modeledRow(tm, "PERFECT: sar backproj", AccelKind::RESMP, scale);
    modeledRow(tm, "PERFECT: corner turn", AccelKind::RESHP, scale);
    modeledRow(tm, "PARSEC: streamcluster", AccelKind::AXPY, scale);
    modeledRow(tm, "PARSEC: graph (spmv)", AccelKind::SPMV, scale);
    tm.print();

    std::printf("measured in this build (naive reference vs MiniMKL):\n");
    bench::Table ms({"kernel", "naive (ms)", "library (ms)", "speedup"});
    Rng rng(1);

    { // FFT: recursive textbook CT vs iterative Stockham.
        const std::int64_t n = 1 << 15;
        std::vector<mkl::cfloat> in(n), out(n);
        for (auto &v : in)
            v = {rng.uniform(-1.f, 1.f), rng.uniform(-1.f, 1.f)};
        double t_naive = timeIt([&] {
            mkl::naive::fftRecursive(in.data(), out.data(), n, -1);
        });
        auto plan = mkl::FftPlan::dft1d(n, mkl::FftDirection::Forward);
        double t_lib =
            timeIt([&] { plan.execute(in.data(), out.data()); });
        ms.row({"fft 32768", bench::fmt("%.3f", t_naive * 1e3),
                bench::fmt("%.3f", t_lib * 1e3),
                bench::fmt("%.1fx", t_naive / t_lib)});
    }
    { // small DFT: O(n^2) loop vs O(n log n) library.
        const std::int64_t n = 1 << 11;
        std::vector<mkl::cfloat> in(n), out(n);
        for (auto &v : in)
            v = {rng.uniform(-1.f, 1.f), rng.uniform(-1.f, 1.f)};
        double t_naive = timeIt(
            [&] { mkl::naiveDft(in.data(), out.data(), n,
                                mkl::FftDirection::Forward); },
            1);
        auto plan = mkl::FftPlan::dft1d(n, mkl::FftDirection::Forward);
        double t_lib =
            timeIt([&] { plan.execute(in.data(), out.data()); });
        ms.row({"dft 2048 (O(n^2) original)",
                bench::fmt("%.3f", t_naive * 1e3),
                bench::fmt("%.3f", t_lib * 1e3),
                bench::fmt("%.1fx", t_naive / t_lib)});
    }
    { // transpose: row-column loop vs blocked kernel.
        const std::int64_t d = 2048;
        std::vector<float> a(static_cast<std::size_t>(d * d));
        std::vector<float> b(a.size());
        for (auto &v : a)
            v = rng.uniform(-1.f, 1.f);
        double t_naive = timeIt(
            [&] { mkl::naive::transpose(d, d, a.data(), b.data()); });
        double t_lib = timeIt([&] {
            mkl::somatcopy(mkl::Order::RowMajor, mkl::Transpose::Trans,
                           d, d, 1.0f, a.data(), d, b.data(), d);
        });
        ms.row({"transpose 2048x2048",
                bench::fmt("%.3f", t_naive * 1e3),
                bench::fmt("%.3f", t_lib * 1e3),
                bench::fmt("%.1fx", t_naive / t_lib)});
    }
    ms.print();

    std::printf("paper: 5x .. 42x depending on benchmark suite\n");
    return 0;
}
