/**
 * @file
 * Ablation: fault injection and graceful degradation (docs/FAULTS.md).
 *
 * Sweeps the per-attempt fault rate x retry budget x stack count over a
 * fan-out of independent LOOP descriptors and reports what failure
 * costs: the makespan under recovery, how many commands completed on an
 * accelerator after retries, and how many had to fall back to the host.
 * Shows
 *  1. retry budget: with 0 retries every transient fault becomes a host
 *     fallback; a small budget absorbs almost all of them;
 *  2. fault rate: recovery cost grows smoothly until fallbacks dominate
 *     the host track;
 *  3. stacks: more queues dilute per-stack damage, and a scripted
 *     whole-stack failure mid-run shows survivors absorbing the drain.
 *
 * Each configuration also emits one JSON line (machine-readable, for
 * plotting) after the human-readable table. All rolls derive from one
 * fixed seed, so every cell is bit-reproducible.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "runtime/runtime.hh"

using namespace mealib;
using accel::AccelKind;
using accel::DescriptorProgram;
using accel::LoopSpec;
using accel::OpCall;

namespace {

constexpr std::uint64_t kSeed = 1234567;

struct Sample
{
    unsigned stacks;
    double rate;
    unsigned maxRetries;
    bool scripted;      //!< one stack killed mid-run
    double serialS;
    double makespanS;
    double joules;
    std::uint64_t retries;
    std::uint64_t fallbacks;
    std::uint64_t watchdog;
    std::uint64_t eccCorrected;
    unsigned completed; //!< commands whose results are usable
    unsigned plans;
};

/** Submit independent looped-AXPY plans under injection, measure. */
Sample
runConfig(unsigned stacks, double rate, unsigned maxRetries,
          bool scripted, unsigned plans)
{
    runtime::RuntimeConfig cfg;
    cfg.functional = false; // cost model only: paper-scale operands
    cfg.numStacks = stacks;
    cfg.fault.seed = kSeed;
    cfg.fault.eccCorrectableRate = rate;
    cfg.fault.eccUncorrectableRate = rate / 4.0;
    cfg.fault.linkCrcRate = rate / 2.0;
    cfg.fault.hangRate = rate / 4.0;
    cfg.fault.computeTransientRate = rate;
    if (scripted) {
        cfg.fault.failStack = 0;
        cfg.fault.failStackAfter = plans / 2;
    }
    cfg.retry.maxRetries = maxRetries;
    runtime::MealibRuntime rt(cfg);

    const std::uint64_t span = cfg.backingBytes / stacks;
    const std::uint64_t slice = 1 << 13; // floats per loop iteration
    LoopSpec loop;
    loop.dims = {256, 1, 1, 1};

    std::vector<runtime::AccPlanHandle> handles;
    std::vector<runtime::Event> events;
    for (unsigned i = 0; i < plans; ++i) {
        const unsigned home = i % stacks;
        const std::uint64_t base =
            static_cast<std::uint64_t>(home) * span +
            (home == 0 ? cfg.commandBytes : 0);
        const std::int64_t step = static_cast<std::int64_t>(slice * 4);
        OpCall c;
        c.kind = AccelKind::AXPY;
        c.n = slice;
        c.in0.base = base;
        c.in0.stride = {step, 0, 0, 0};
        c.out.base = base + span / 2;
        c.out.stride = {step, 0, 0, 0};
        DescriptorProgram d;
        d.addLoop(loop, 2);
        d.addComp(c);
        d.addPassEnd();
        handles.push_back(rt.accPlan(d));
        events.push_back(rt.accSubmit(handles.back()));
    }
    rt.waitAll();

    Sample s;
    s.stacks = stacks;
    s.rate = rate;
    s.maxRetries = maxRetries;
    s.scripted = scripted;
    s.plans = plans;
    s.serialS = rt.accounting().total().seconds;
    s.makespanS = rt.accounting().makespanSeconds;
    s.joules = rt.accounting().total().joules;
    s.retries = rt.accounting().retryCount;
    s.fallbacks = rt.accounting().fallbackCount;
    s.watchdog = rt.accounting().watchdogFires;
    s.eccCorrected = rt.accounting().eccCorrected;
    s.completed = 0;
    for (runtime::Event &e : events)
        if (runtime::completed(e.state()))
            s.completed++;
    for (runtime::AccPlanHandle h : handles)
        rt.accDestroy(h);
    return s;
}

} // namespace

int
main()
{
    bench::banner("Ablation: fault injection & graceful degradation",
                  "fault rate x retry budget x stack count; recovery "
                  "cost and availability under a fixed seed");
    const unsigned plans = 32;

    bench::Table t({"stacks", "rate", "retries", "fail-stack",
                    "makespan (ms)", "retried", "fellback", "watchdog",
                    "ecc-c", "completed"});
    std::vector<Sample> samples;
    for (unsigned stacks : {1u, 2u, 4u}) {
        for (double rate : {0.0, 0.02, 0.1}) {
            for (unsigned maxRetries : {0u, 1u, 3u}) {
                for (bool scripted : {false, true}) {
                    if (scripted && stacks == 1)
                        continue; // no survivor to drain to
                    Sample s = runConfig(stacks, rate, maxRetries,
                                         scripted, plans);
                    samples.push_back(s);
                    t.row({std::to_string(s.stacks),
                           bench::fmt("%.2f", s.rate),
                           std::to_string(s.maxRetries),
                           s.scripted ? "yes" : "no",
                           bench::fmt("%.3f", s.makespanS * 1e3),
                           std::to_string(s.retries),
                           std::to_string(s.fallbacks),
                           std::to_string(s.watchdog),
                           std::to_string(s.eccCorrected),
                           std::to_string(s.completed) + "/" +
                               std::to_string(s.plans)});
                }
            }
        }
    }
    t.print();

    std::printf("JSON:\n");
    for (const Sample &s : samples)
        std::printf("{\"bench\":\"ablation_faults\",\"stacks\":%u,"
                    "\"rate\":%.9g,\"max_retries\":%u,"
                    "\"fail_stack\":%s,\"serial_s\":%.9g,"
                    "\"makespan_s\":%.9g,\"joules\":%.9g,"
                    "\"retries\":%llu,\"fallbacks\":%llu,"
                    "\"watchdog\":%llu,\"ecc_corrected\":%llu,"
                    "\"completed\":%u,\"plans\":%u}\n",
                    s.stacks, s.rate, s.maxRetries,
                    s.scripted ? "true" : "false", s.serialS,
                    s.makespanS, s.joules,
                    static_cast<unsigned long long>(s.retries),
                    static_cast<unsigned long long>(s.fallbacks),
                    static_cast<unsigned long long>(s.watchdog),
                    static_cast<unsigned long long>(s.eccCorrected),
                    s.completed, s.plans);

    std::printf("\nTakeaway: a retry budget of 1-3 absorbs nearly every "
                "transient at these rates; with 0 retries each fault "
                "becomes a host fallback and the host track dominates "
                "the makespan. A whole-stack failure drains its backlog "
                "to survivors, so availability stays at 100%% while the "
                "makespan pays the re-homed occupancy.\n");
    return 0;
}
