/**
 * @file
 * Ablation: DRAM-side design choices of the MEALib stack (DESIGN.md's
 * per-design-choice studies; not a paper figure).
 *
 *  1. vault scheduler lookahead window (FCFS .. FR-FCFS-32) on a
 *     row-mixing trace;
 *  2. open- vs closed-page policy on streaming vs random traffic;
 *  3. refresh overhead on the 3D stack vs DDR3.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/rng.hh"
#include "dram/params.hh"
#include "dram/stack.hh"
#include "dram/tracegen.hh"
#include "dram/vault.hh"

using namespace mealib;
using namespace mealib::dram;

namespace {

Trace
streamTrace(const DramParams &p, std::uint64_t bytes)
{
    TraceBuilder tb(p, 64_MiB);
    tb.addLinear(0, bytes / 3, false);
    tb.addLinear(1_GiB + 2 * p.org.rowBytes * p.org.numVaults,
                 bytes / 3, false);
    tb.addLinear(2_GiB + 4 * p.org.rowBytes * p.org.numVaults,
                 bytes / 3, true);
    return tb.build();
}

Trace
randomTrace(const DramParams &p, std::uint64_t bytes)
{
    TraceBuilder tb(p, 64_MiB);
    Rng rng(11);
    tb.addGather(0, 1_GiB, bytes / p.timing.burstBytes,
                 static_cast<std::uint32_t>(p.timing.burstBytes), false,
                 rng);
    return tb.build();
}

/** Interleave two same-bank row streams: worst case for FCFS. */
Trace
conflictTrace(const DramParams &p, std::uint64_t bytes)
{
    TraceBuilder tb(p, 64_MiB);
    std::uint64_t row_group = p.org.rowBytes * p.org.numVaults *
                              p.org.banksPerVault;
    tb.addStrided(0, p.org.rowBytes, row_group,
                  bytes / 2 / p.org.rowBytes, false);
    tb.addStrided(8 * row_group, p.org.rowBytes, row_group,
                  bytes / 2 / p.org.rowBytes, false);
    return tb.build();
}

} // namespace

int
main()
{
    bench::banner("Ablation: DRAM-side design choices",
                  "scheduler window, page policy, refresh overhead "
                  "(design-space support for Secs. 2.1/4.2)");

    DramParams p = hmcStack();

    std::printf("(1) FR-FCFS lookahead window, bank-conflict trace\n");
    bench::Table t1({"window", "GB/s", "row hit rate"});
    Trace conflict = conflictTrace(p, 16_MiB);
    for (unsigned w : {1u, 2u, 4u, 8u, 16u, 32u}) {
        // Build a stack manually from vaults with this window.
        Vault v(p.timing, p.org, w);
        VaultStats s = v.service(conflict.requests, 0);
        double secs = static_cast<double>(s.busyUntil) * p.timing.tCK;
        double gbps = static_cast<double>(conflict.sampledBytes) / secs /
                      1e9 * p.org.numVaults; // scale one vault to stack
        double hits = static_cast<double>(s.rowHits) /
                      static_cast<double>(s.rowHits + s.rowMisses);
        t1.row({std::to_string(w), bench::fmt("%.1f", gbps),
                bench::fmt("%.3f", hits)});
    }
    t1.print();

    std::printf("(2) page policy vs traffic pattern (whole stack)\n");
    bench::Table t2({"pattern", "open (GB/s)", "closed (GB/s)"});
    {
        Stack open(p, PagePolicy::Open);
        Stack closed(p, PagePolicy::Closed);
        Trace st = streamTrace(p, 16_MiB);
        Trace rnd = randomTrace(p, 4_MiB);
        t2.row({"streaming",
                bench::fmt("%.1f", open.run(st).bandwidth() / 1e9),
                bench::fmt("%.1f", closed.run(st).bandwidth() / 1e9)});
        t2.row({"random",
                bench::fmt("%.1f", open.run(rnd).bandwidth() / 1e9),
                bench::fmt("%.1f", closed.run(rnd).bandwidth() / 1e9)});
    }
    t2.print();

    std::printf("(3) refresh overhead\n");
    bench::Table t3({"device", "with refresh (GB/s)", "without (GB/s)",
                     "overhead"});
    for (auto dev : {hmcStack(), ddr3(2)}) {
        DramParams no_ref = dev;
        no_ref.timing.tREFI = 0;
        Stack with(dev), without(no_ref);
        Trace t = streamTrace(dev, 16_MiB);
        double bw1 = with.run(t).bandwidth() / 1e9;
        double bw0 = without.run(t).bandwidth() / 1e9;
        t3.row({dev.name, bench::fmt("%.1f", bw1),
                bench::fmt("%.1f", bw0),
                bench::fmt("%.2f%%", 100.0 * (bw0 - bw1) / bw0)});
    }
    t3.print();
    return 0;
}
