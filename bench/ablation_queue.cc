/**
 * @file
 * Ablation: the asynchronous command-queue engine (docs/RUNTIME.md).
 *
 * Sweeps queue depth x scheduler policy x stack count over a fan-out of
 * independent LOOP descriptors (one working set per stack) and reports
 * the overlap-aware makespan against the serial total. Shows
 *  1. stacks: the dominant lever — independent queues overlap;
 *  2. queue depth: how many outstanding commands the host may run
 *     ahead of before a submit stalls (depth 1 degenerates to the
 *     blocking Listing-2 schedule);
 *  3. scheduler: locality keeps zero remote traffic, round_robin
 *     spreads work but pays inter-stack links when operands don't
 *     follow.
 *
 * Each configuration also emits one JSON line (machine-readable, for
 * plotting) after the human-readable table.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "runtime/runtime.hh"

using namespace mealib;
using accel::AccelKind;
using accel::DescriptorProgram;
using accel::LoopSpec;
using accel::OpCall;

namespace {

struct Sample
{
    unsigned stacks;
    unsigned depth;
    runtime::SchedulerPolicy policy;
    double serialS;
    double makespanS;
    double submitDoneS; //!< host clock when the last submit returned
    double joules;
    double remoteBytes;
};

/** Submit one looped-AXPY descriptor per working set, wait, measure. */
Sample
runConfig(unsigned stacks, unsigned depth,
          runtime::SchedulerPolicy policy, unsigned plans)
{
    runtime::RuntimeConfig cfg;
    cfg.functional = false; // cost model only: paper-scale operands
    cfg.numStacks = stacks;
    cfg.queueDepth = depth;
    cfg.scheduler = policy;
    runtime::MealibRuntime rt(cfg);

    const std::uint64_t span = cfg.backingBytes / stacks;
    const std::uint64_t slice = 1 << 13; // floats per loop iteration
    LoopSpec loop;
    loop.dims = {256, 1, 1, 1};

    double remote = 0.0;
    std::vector<runtime::AccPlanHandle> handles;
    std::vector<runtime::Event> events;
    for (unsigned i = 0; i < plans; ++i) {
        // Plan i's operands live on stack (stacks-1 - i%stacks): evenly
        // spread, but in the REVERSE of submission order. Locality
        // follows the operands (zero remote traffic); round_robin's
        // cursor walks forward, so every pick lands off-home and pays
        // the inter-stack links (Sec. 3.3).
        const unsigned home = stacks - 1 - (i % stacks);
        const std::uint64_t base =
            static_cast<std::uint64_t>(home) * span +
            (home == 0 ? cfg.commandBytes : 0);
        const std::int64_t step = static_cast<std::int64_t>(slice * 4);
        OpCall c;
        c.kind = AccelKind::AXPY;
        c.n = slice;
        c.in0.base = base;
        c.in0.stride = {step, 0, 0, 0};
        c.out.base = base + span / 2;
        c.out.stride = {step, 0, 0, 0};
        DescriptorProgram d;
        d.addLoop(loop, 2);
        d.addComp(c);
        d.addPassEnd();
        handles.push_back(rt.accPlan(d));
        events.push_back(rt.accSubmit(handles.back()));
    }
    // How far behind the queues the host got to run: with deep queues
    // the last submit returns almost immediately; with depth 1 every
    // submit stalls until the queue's previous command retires.
    const double submitDone = rt.nowSeconds();
    rt.waitAll();

    Sample s;
    s.stacks = stacks;
    s.depth = depth;
    s.policy = policy;
    s.serialS = rt.accounting().total().seconds;
    s.makespanS = rt.accounting().makespanSeconds;
    s.submitDoneS = submitDone;
    s.joules = rt.accounting().total().joules;
    for (const runtime::Event &e : events)
        remote += e.stats().remoteBytes;
    s.remoteBytes = remote;
    for (runtime::AccPlanHandle h : handles)
        rt.accDestroy(h);
    return s;
}

} // namespace

int
main()
{
    bench::banner("Ablation: asynchronous command queues",
                  "queue depth x scheduler x stack count; overlap-aware "
                  "makespan vs serial total");
    const unsigned plans = 16;

    bench::Table t({"stacks", "depth", "scheduler", "serial (ms)",
                    "makespan (ms)", "speedup", "submit-done (ms)",
                    "remote (MiB)"});
    std::vector<Sample> samples;
    for (unsigned stacks : {1u, 2u, 4u, 8u}) {
        for (unsigned depth : {1u, 2u, 8u}) {
            for (runtime::SchedulerPolicy policy :
                 {runtime::SchedulerPolicy::Locality,
                  runtime::SchedulerPolicy::RoundRobin}) {
                Sample s = runConfig(stacks, depth, policy, plans);
                samples.push_back(s);
                t.row({std::to_string(s.stacks),
                       std::to_string(s.depth), runtime::name(s.policy),
                       bench::fmt("%.3f", s.serialS * 1e3),
                       bench::fmt("%.3f", s.makespanS * 1e3),
                       bench::fmt("%.2fx", s.serialS / s.makespanS),
                       bench::fmt("%.3f", s.submitDoneS * 1e3),
                       bench::fmt("%.1f", s.remoteBytes / 1048576.0)});
            }
        }
    }
    t.print();

    std::printf("JSON:\n");
    for (const Sample &s : samples)
        std::printf("{\"bench\":\"ablation_queue\",\"stacks\":%u,"
                    "\"depth\":%u,\"scheduler\":\"%s\","
                    "\"serial_s\":%.9g,\"makespan_s\":%.9g,"
                    "\"submit_done_s\":%.9g,\"joules\":%.9g,"
                    "\"remote_bytes\":%.9g}\n",
                    s.stacks, s.depth, runtime::name(s.policy),
                    s.serialS, s.makespanS, s.submitDoneS, s.joules,
                    s.remoteBytes);

    std::printf("\nTakeaway: stacks give near-linear overlap for "
                "independent plans; depth 1 serializes the host into "
                "every submit; round_robin trades locality for spread "
                "and pays the inter-stack links.\n");
    return 0;
}
