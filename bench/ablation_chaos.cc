/**
 * @file
 * Chaos soak: integrity, checkpoint/replay and quarantine under
 * sustained fault pressure (docs/FAULTS.md).
 *
 * Sweeps fault rate x checkpoint interval x quarantine threshold over a
 * fan-out of rerun-safe looped descriptors, with one scripted stack
 * death mid-run in every cell, and reports what the resilience stack
 * buys and costs:
 *
 *  1. checkpoint interval: a retry or a drained command resumes from
 *     the last committed snapshot instead of iteration zero, cutting
 *     recovery latency; the snapshot journaling overhead is the price,
 *     visible at rate 0;
 *  2. quarantine threshold: a flaky stack stops receiving work, so the
 *     fault tax concentrates on its backlog instead of every command;
 *  3. fault rate: goodput (completed commands per makespan second)
 *     degrades smoothly while availability stays at 100% — silent
 *     corruption is caught by end-to-end verification and retried.
 *
 * Recovery latency is reported against the rate-0 cell of the same
 * (interval, threshold, seed): the extra makespan attributable to the
 * injected faults alone. Every cell derives from the seed(s) on the
 * command line, so the whole sweep is bit-reproducible; the JSON
 * document (default BENCH_chaos.json) carries one record per cell.
 *
 * Usage: ablation_chaos [--quick] [--seed=S] [--json=PATH]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/cli.hh"
#include "runtime/runtime.hh"

using namespace mealib;
using accel::AccelKind;
using accel::DescriptorProgram;
using accel::LoopSpec;
using accel::OpCall;

namespace {

struct Sample
{
    std::uint64_t seed;
    double rate;
    unsigned ckptInterval;
    double threshold;
    unsigned stacks;
    unsigned plans;
    double serialS;
    double makespanS;
    double joules;
    double integrityS;
    double integrityJ;
    std::uint64_t retries;
    std::uint64_t checkpoints;
    std::uint64_t resumes;
    std::uint64_t silentDetected;
    std::uint64_t silentUndetected;
    std::uint64_t quarantines;
    std::uint64_t readmissions;
    std::uint64_t fallbacks;
    unsigned completed;
    double goodput;          //!< completed commands per makespan second
    double recoveryLatencyS; //!< makespan over the rate-0 twin cell
};

/**
 * One cell: independent rerun-safe looped-AXPY plans (beta = 0, output
 * disjoint from input, so checkpoint resume is numerically exact) under
 * injection, with stack 0 scripted to die halfway through submission.
 */
Sample
runCell(std::uint64_t seed, double rate, unsigned ckptInterval,
        double threshold, unsigned stacks, unsigned plans)
{
    runtime::RuntimeConfig cfg;
    cfg.functional = false; // cost model only: paper-scale operands
    cfg.numStacks = stacks;
    cfg.fault.seed = seed;
    cfg.fault.eccCorrectableRate = rate;
    cfg.fault.eccUncorrectableRate = rate / 4.0;
    cfg.fault.linkCrcRate = rate / 2.0;
    cfg.fault.hangRate = rate / 8.0;
    cfg.fault.computeTransientRate = rate;
    cfg.fault.silentCorruptionRate = rate / 2.0;
    cfg.fault.failStack = 0;
    cfg.fault.failStackAfter = plans / 2;
    cfg.integrity.verifyTransfers = true;
    cfg.checkpoint.intervalComps = ckptInterval;
    cfg.health.quarantineThreshold = threshold;
    runtime::MealibRuntime rt(cfg);

    const std::uint64_t span = cfg.backingBytes / stacks;
    const std::uint64_t slice = 1 << 13; // floats per loop iteration
    LoopSpec loop;
    loop.dims = {64, 1, 1, 1};

    std::vector<runtime::AccPlanHandle> handles;
    std::vector<runtime::Event> events;
    for (unsigned i = 0; i < plans; ++i) {
        const unsigned home = i % stacks;
        const std::uint64_t base =
            static_cast<std::uint64_t>(home) * span +
            (home == 0 ? cfg.commandBytes : 0);
        const std::int64_t step = static_cast<std::int64_t>(slice * 4);
        OpCall c;
        c.kind = AccelKind::AXPY;
        c.n = slice;
        c.beta = 0.0f; // out = alpha*in: rerun-safe, checkpointable
        c.in0.base = base;
        c.in0.stride = {step, 0, 0, 0};
        c.out.base = base + span / 2;
        c.out.stride = {step, 0, 0, 0};
        DescriptorProgram d;
        d.addLoop(loop, 2);
        d.addComp(c);
        d.addPassEnd();
        handles.push_back(rt.accPlan(d));
        events.push_back(rt.accSubmit(handles.back()));
    }
    rt.waitAll();

    const runtime::RuntimeAccounting &acct = rt.accounting();
    Sample s{};
    s.seed = seed;
    s.rate = rate;
    s.ckptInterval = ckptInterval;
    s.threshold = threshold;
    s.stacks = stacks;
    s.plans = plans;
    s.serialS = acct.total().seconds;
    s.makespanS = acct.makespanSeconds;
    s.joules = acct.total().joules;
    s.integrityS = acct.integrity.seconds;
    s.integrityJ = acct.integrity.joules;
    s.retries = acct.retryCount;
    s.checkpoints = acct.checkpointsTaken;
    s.resumes = acct.resumedFromCheckpoint;
    s.silentDetected = acct.silentDetected;
    s.silentUndetected = acct.silentUndetected;
    s.quarantines = acct.quarantines;
    s.readmissions = acct.readmissions;
    s.fallbacks = acct.fallbackCount;
    s.completed = 0;
    for (runtime::Event &e : events)
        if (runtime::completed(e.state()))
            s.completed++;
    s.goodput =
        s.makespanS > 0.0 ? s.completed / s.makespanS : 0.0;
    for (runtime::AccPlanHandle h : handles)
        rt.accDestroy(h);
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    const std::uint64_t oneSeed =
        static_cast<std::uint64_t>(cli.getInt("seed", 0));
    const std::string jsonPath = cli.get("json", "BENCH_chaos.json");

    bench::banner("Chaos soak: integrity, checkpoint/replay & "
                  "quarantine",
                  "fault rate x checkpoint interval x quarantine "
                  "threshold, scripted stack death in every cell");

    const unsigned stacks = quick ? 2 : 4;
    const unsigned plans = quick ? 16 : 48;
    std::vector<std::uint64_t> seeds =
        oneSeed != 0 ? std::vector<std::uint64_t>{oneSeed}
                     : std::vector<std::uint64_t>{101, 202, 303};
    std::vector<double> rates =
        quick ? std::vector<double>{0.0, 0.1}
              : std::vector<double>{0.0, 0.05, 0.15};
    std::vector<unsigned> intervals =
        quick ? std::vector<unsigned>{0, 16}
              : std::vector<unsigned>{0, 8, 32};
    std::vector<double> thresholds = {0.0, 0.4};

    bench::Table t({"seed", "rate", "ckpt", "quar", "makespan (ms)",
                    "recov (ms)", "goodput", "resume", "snap",
                    "silent", "quarantined", "completed"});
    std::vector<Sample> samples;
    for (std::uint64_t seed : seeds) {
        for (unsigned interval : intervals) {
            for (double threshold : thresholds) {
                double baselineS = 0.0;
                for (double rate : rates) {
                    Sample s = runCell(seed, rate, interval, threshold,
                                       stacks, plans);
                    if (rate == 0.0)
                        baselineS = s.makespanS;
                    s.recoveryLatencyS = s.makespanS - baselineS;
                    samples.push_back(s);
                    t.row({std::to_string(s.seed),
                           bench::fmt("%.2f", s.rate),
                           std::to_string(s.ckptInterval),
                           bench::fmt("%.1f", s.threshold),
                           bench::fmt("%.3f", s.makespanS * 1e3),
                           bench::fmt("%.3f",
                                      s.recoveryLatencyS * 1e3),
                           bench::fmt("%.0f", s.goodput),
                           std::to_string(s.resumes),
                           std::to_string(s.checkpoints),
                           std::to_string(s.silentDetected) + "/" +
                               std::to_string(s.silentUndetected),
                           std::to_string(s.quarantines),
                           std::to_string(s.completed) + "/" +
                               std::to_string(s.plans)});
                }
            }
        }
    }
    t.print();

    bench::JsonWriter json;
    json.meta("bench", "ablation_chaos");
    json.meta("quick", quick);
    json.meta("stacks", static_cast<double>(stacks));
    json.meta("plans", static_cast<double>(plans));
    for (const Sample &s : samples) {
        json.beginRecord();
        json.field("seed", static_cast<long long>(s.seed));
        json.field("rate", s.rate);
        json.field("ckpt_interval",
                   static_cast<long long>(s.ckptInterval));
        json.field("quarantine_threshold", s.threshold);
        json.field("serial_s", s.serialS);
        json.field("makespan_s", s.makespanS);
        json.field("recovery_latency_s", s.recoveryLatencyS);
        json.field("goodput_cmds_per_s", s.goodput);
        json.field("joules", s.joules);
        json.field("integrity_s", s.integrityS);
        json.field("integrity_j", s.integrityJ);
        json.field("retries", static_cast<long long>(s.retries));
        json.field("checkpoints",
                   static_cast<long long>(s.checkpoints));
        json.field("resumes", static_cast<long long>(s.resumes));
        json.field("silent_detected",
                   static_cast<long long>(s.silentDetected));
        json.field("silent_undetected",
                   static_cast<long long>(s.silentUndetected));
        json.field("quarantines",
                   static_cast<long long>(s.quarantines));
        json.field("readmissions",
                   static_cast<long long>(s.readmissions));
        json.field("fallbacks", static_cast<long long>(s.fallbacks));
        json.field("completed", static_cast<long long>(s.completed));
        json.endRecord();
    }
    if (!json.writeFile(jsonPath)) {
        std::fprintf(stderr, "cannot write '%s'\n", jsonPath.c_str());
        return 1;
    }
    std::printf("\nJSON written to %s\n", jsonPath.c_str());

    std::printf("\nTakeaway: checkpointing pays a small journaling tax "
                "at rate 0 and buys it back under pressure — resumed "
                "commands re-execute only the span past the last "
                "committed snapshot, so recovery latency shrinks as "
                "the interval tightens. Quarantine keeps a flaky "
                "stack's fault tax off the common path, and every "
                "injected silent corruption is caught by end-to-end "
                "verification; availability stays at 100%%.\n");
    return 0;
}
