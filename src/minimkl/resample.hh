/**
 * @file
 * 1D data resampling (Table 1: RESMP; MKL's data-fitting
 * dfsInterpolate1D). Uniform-grid interpolation of real or complex
 * signals with linear, Catmull-Rom and windowed-sinc kernels — the
 * range-interpolation step of SAR backprojection uses the complex
 * windowed-sinc path.
 */

#ifndef MEALIB_MINIMKL_RESAMPLE_HH
#define MEALIB_MINIMKL_RESAMPLE_HH

#include <cstdint>

#include "minimkl/types.hh"

namespace mealib::mkl {

/** Interpolation kernel selector. */
enum class InterpKind
{
    Linear,     //!< 2-tap linear
    CatmullRom, //!< 4-tap cubic
    Sinc8,      //!< 8-tap Hann-windowed sinc
};

/**
 * Resample @p n input samples (uniform grid over [0, n-1]) to @p m
 * output samples (uniform grid over the same span). Edge taps clamp.
 */
void resample1d(const float *in, std::int64_t n, float *out,
                std::int64_t m, InterpKind kind);

/** Complex-signal variant of resample1d(). */
void resample1dc(const cfloat *in, std::int64_t n, cfloat *out,
                 std::int64_t m, InterpKind kind);

/**
 * Interpolate @p in (length @p n, uniform grid over [0, n-1]) at the
 * arbitrary sites @p x (length @p m) — the general dfsInterpolate1D
 * shape. Sites outside the grid clamp to the edges.
 */
void interpolate1dAt(const float *in, std::int64_t n, const double *x,
                     std::int64_t m, float *out, InterpKind kind);

/** Complex variant of interpolate1dAt(). */
void interpolate1dAtC(const cfloat *in, std::int64_t n, const double *x,
                      std::int64_t m, cfloat *out, InterpKind kind);

} // namespace mealib::mkl

#endif // MEALIB_MINIMKL_RESAMPLE_HH
