#include "minimkl/blas1.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace mealib::mkl {

namespace {

/** BLAS convention: with negative stride the vector starts at the end. */
inline std::int64_t
startIndex(std::int64_t n, std::int64_t inc)
{
    return inc >= 0 ? 0 : (1 - n) * inc;
}

} // namespace

void
saxpy(std::int64_t n, float a, const float *x, std::int64_t incx, float *y,
      std::int64_t incy)
{
    if (n <= 0 || a == 0.0f)
        return;
    fatalIf(incx == 0 || incy == 0, "saxpy: zero stride");
    if (incx == 1 && incy == 1) {
        for (std::int64_t i = 0; i < n; ++i)
            y[i] += a * x[i];
        return;
    }
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        y[iy] += a * x[ix];
}

void
saxpby(std::int64_t n, float a, const float *x, std::int64_t incx,
       float b, float *y, std::int64_t incy)
{
    if (n <= 0)
        return;
    fatalIf(incx == 0 || incy == 0, "saxpby: zero stride");
    if (b == 1.0f) {
        saxpy(n, a, x, incx, y, incy);
        return;
    }
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        y[iy] = a * x[ix] + b * y[iy];
}

void
sscal(std::int64_t n, float a, float *x, std::int64_t incx)
{
    if (n <= 0)
        return;
    fatalIf(incx == 0, "sscal: zero stride");
    std::int64_t ix = startIndex(n, incx);
    for (std::int64_t i = 0; i < n; ++i, ix += incx)
        x[ix] *= a;
}

void
scopy(std::int64_t n, const float *x, std::int64_t incx, float *y,
      std::int64_t incy)
{
    if (n <= 0)
        return;
    fatalIf(incx == 0 || incy == 0, "scopy: zero stride");
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        y[iy] = x[ix];
}

float
sdot(std::int64_t n, const float *x, std::int64_t incx, const float *y,
     std::int64_t incy)
{
    if (n <= 0)
        return 0.0f;
    fatalIf(incx == 0 || incy == 0, "sdot: zero stride");
    // Accumulate in double: cheap insurance against cancellation on the
    // 256M-element vectors of Table 2.
    double acc = 0.0;
    if (incx == 1 && incy == 1) {
        for (std::int64_t i = 0; i < n; ++i)
            acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
        return static_cast<float>(acc);
    }
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        acc += static_cast<double>(x[ix]) * static_cast<double>(y[iy]);
    return static_cast<float>(acc);
}

float
snrm2(std::int64_t n, const float *x, std::int64_t incx)
{
    if (n <= 0)
        return 0.0f;
    fatalIf(incx == 0, "snrm2: zero stride");
    // Scaled sum of squares (LAPACK slassq style) to avoid overflow.
    double scale = 0.0;
    double ssq = 1.0;
    std::int64_t ix = startIndex(n, incx);
    for (std::int64_t i = 0; i < n; ++i, ix += incx) {
        double ax = std::fabs(static_cast<double>(x[ix]));
        if (ax == 0.0)
            continue;
        if (scale < ax) {
            ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
            scale = ax;
        } else {
            ssq += (ax / scale) * (ax / scale);
        }
    }
    return static_cast<float>(scale * std::sqrt(ssq));
}

float
sasum(std::int64_t n, const float *x, std::int64_t incx)
{
    if (n <= 0)
        return 0.0f;
    fatalIf(incx == 0, "sasum: zero stride");
    double acc = 0.0;
    std::int64_t ix = startIndex(n, incx);
    for (std::int64_t i = 0; i < n; ++i, ix += incx)
        acc += std::fabs(static_cast<double>(x[ix]));
    return static_cast<float>(acc);
}

std::int64_t
isamax(std::int64_t n, const float *x, std::int64_t incx)
{
    if (n <= 0)
        return -1;
    fatalIf(incx == 0, "isamax: zero stride");
    std::int64_t best = 0;
    float best_v = std::fabs(x[startIndex(n, incx)]);
    std::int64_t ix = startIndex(n, incx);
    for (std::int64_t i = 0; i < n; ++i, ix += incx) {
        float v = std::fabs(x[ix]);
        if (v > best_v) {
            best_v = v;
            best = i;
        }
    }
    return best;
}

void
caxpy(std::int64_t n, cfloat a, const cfloat *x, std::int64_t incx,
      cfloat *y, std::int64_t incy)
{
    if (n <= 0 || a == cfloat{})
        return;
    fatalIf(incx == 0 || incy == 0, "caxpy: zero stride");
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        y[iy] += a * x[ix];
}

cfloat
cdotc(std::int64_t n, const cfloat *x, std::int64_t incx, const cfloat *y,
      std::int64_t incy)
{
    if (n <= 0)
        return {};
    fatalIf(incx == 0 || incy == 0, "cdotc: zero stride");
    double re = 0.0, im = 0.0;
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy) {
        const cfloat &a = x[ix];
        const cfloat &b = y[iy];
        // conj(a) * b, accumulated in double
        re += static_cast<double>(a.real()) * b.real() +
              static_cast<double>(a.imag()) * b.imag();
        im += static_cast<double>(a.real()) * b.imag() -
              static_cast<double>(a.imag()) * b.real();
    }
    return {static_cast<float>(re), static_cast<float>(im)};
}

cfloat
cdotu(std::int64_t n, const cfloat *x, std::int64_t incx, const cfloat *y,
      std::int64_t incy)
{
    if (n <= 0)
        return {};
    fatalIf(incx == 0 || incy == 0, "cdotu: zero stride");
    double re = 0.0, im = 0.0;
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy) {
        const cfloat &a = x[ix];
        const cfloat &b = y[iy];
        re += static_cast<double>(a.real()) * b.real() -
              static_cast<double>(a.imag()) * b.imag();
        im += static_cast<double>(a.real()) * b.imag() +
              static_cast<double>(a.imag()) * b.real();
    }
    return {static_cast<float>(re), static_cast<float>(im)};
}

} // namespace mealib::mkl
