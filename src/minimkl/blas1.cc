#include "minimkl/blas1.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"

namespace mealib::mkl {

namespace {

/** BLAS convention: with negative stride the vector starts at the end. */
inline std::int64_t
startIndex(std::int64_t n, std::int64_t inc)
{
    return inc >= 0 ? 0 : (1 - n) * inc;
}

/** Interleaved re/im view of a complex array for the SIMD kernels. */
inline const float *
flat(const cfloat *p)
{
    return reinterpret_cast<const float *>(p);
}

/**
 * Partial state of an slassq-style scaled sum of squares. Combining two
 * partials rescales the smaller-scaled one, which is exactly the LAPACK
 * slassq update applied chunk-wise; the fixed-order tree in
 * deterministicReduce makes the result independent of thread count.
 */
struct Slassq
{
    double scale = 0.0;
    double ssq = 1.0;
};

inline Slassq
slassqCombine(const Slassq &a, const Slassq &b)
{
    if (b.scale == 0.0)
        return a;
    if (a.scale == 0.0)
        return b;
    if (a.scale >= b.scale) {
        double r = b.scale / a.scale;
        return {a.scale, a.ssq + b.ssq * r * r};
    }
    double r = a.scale / b.scale;
    return {b.scale, b.ssq + a.ssq * r * r};
}

} // namespace

void
saxpy(std::int64_t n, float a, const float *x, std::int64_t incx, float *y,
      std::int64_t incy)
{
    if (n <= 0 || a == 0.0f)
        return;
    fatalIf(incx == 0 || incy == 0, "saxpy: zero stride");
    if (incx == 1 && incy == 1) {
        const KernelTuning &t = kernelTuning();
        const simd::Kernels *sk = simd::active();
        parallelFor(0, n, t.threadsFor(n), 4096,
                    [&](std::int64_t b, std::int64_t e) {
                        if (sk) {
                            sk->saxpy(e - b, a, x + b, y + b);
                            return;
                        }
                        for (std::int64_t i = b; i < e; ++i)
                            y[i] += a * x[i];
                    });
        return;
    }
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        y[iy] += a * x[ix];
}

void
saxpby(std::int64_t n, float a, const float *x, std::int64_t incx,
       float b, float *y, std::int64_t incy)
{
    if (n <= 0)
        return;
    fatalIf(incy == 0, "saxpby: zero stride");
    if (a == 0.0f) {
        // x is unused (and may be null, as MKL tolerates): y := b*y.
        if (b != 1.0f)
            sscal(n, b, y, incy);
        return;
    }
    fatalIf(incx == 0, "saxpby: zero stride");
    if (b == 1.0f) {
        saxpy(n, a, x, incx, y, incy);
        return;
    }
    if (incx == 1 && incy == 1) {
        const KernelTuning &t = kernelTuning();
        const simd::Kernels *sk = simd::active();
        parallelFor(0, n, t.threadsFor(n), 4096,
                    [&](std::int64_t lo, std::int64_t hi) {
                        if (sk) {
                            sk->saxpby(hi - lo, a, x + lo, b, y + lo);
                            return;
                        }
                        for (std::int64_t i = lo; i < hi; ++i)
                            y[i] = a * x[i] + b * y[i];
                    });
        return;
    }
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        y[iy] = a * x[ix] + b * y[iy];
}

void
sscal(std::int64_t n, float a, float *x, std::int64_t incx)
{
    if (n <= 0)
        return;
    fatalIf(incx == 0, "sscal: zero stride");
    if (incx == 1) {
        const KernelTuning &t = kernelTuning();
        const simd::Kernels *sk = simd::active();
        parallelFor(0, n, t.threadsFor(n), 4096,
                    [&](std::int64_t b, std::int64_t e) {
                        if (sk) {
                            sk->sscal(e - b, a, x + b);
                            return;
                        }
                        for (std::int64_t i = b; i < e; ++i)
                            x[i] *= a;
                    });
        return;
    }
    std::int64_t ix = startIndex(n, incx);
    for (std::int64_t i = 0; i < n; ++i, ix += incx)
        x[ix] *= a;
}

void
scopy(std::int64_t n, const float *x, std::int64_t incx, float *y,
      std::int64_t incy)
{
    if (n <= 0)
        return;
    fatalIf(incx == 0 || incy == 0, "scopy: zero stride");
    if (incx == 1 && incy == 1) {
        const KernelTuning &t = kernelTuning();
        const simd::Kernels *sk = simd::active();
        parallelFor(0, n, t.threadsFor(n), 4096,
                    [&](std::int64_t b, std::int64_t e) {
                        if (sk) {
                            sk->scopy(e - b, x + b, y + b);
                            return;
                        }
                        for (std::int64_t i = b; i < e; ++i)
                            y[i] = x[i];
                    });
        return;
    }
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        y[iy] = x[ix];
}

float
sdot(std::int64_t n, const float *x, std::int64_t incx, const float *y,
     std::int64_t incy)
{
    if (n <= 0)
        return 0.0f;
    fatalIf(incx == 0 || incy == 0, "sdot: zero stride");
    // Accumulate in double: cheap insurance against cancellation on the
    // 256M-element vectors of Table 2.
    if (incx == 1 && incy == 1) {
        // Fixed-chunk deterministic reduction: the chunk boundaries and
        // the combine tree depend only on n, so the result is
        // bit-identical for any thread count.
        const KernelTuning &t = kernelTuning();
        const simd::Kernels *sk = simd::active();
        double acc = deterministicReduce<double>(
            n, t.reduceChunk, t.threadsFor(n),
            [&](std::int64_t b, std::int64_t e) {
                if (sk)
                    return sk->sdot(e - b, x + b, y + b);
                double s = 0.0;
                for (std::int64_t i = b; i < e; ++i)
                    s += static_cast<double>(x[i]) *
                         static_cast<double>(y[i]);
                return s;
            },
            [](double a, double b) { return a + b; });
        return static_cast<float>(acc);
    }
    double acc = 0.0;
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        acc += static_cast<double>(x[ix]) * static_cast<double>(y[iy]);
    return static_cast<float>(acc);
}

float
snrm2(std::int64_t n, const float *x, std::int64_t incx)
{
    if (n <= 0)
        return 0.0f;
    fatalIf(incx == 0, "snrm2: zero stride");
    // Scaled sum of squares (LAPACK slassq style) to avoid overflow.
    auto chunkSsq = [&](std::int64_t b, std::int64_t e) {
        Slassq s;
        for (std::int64_t i = b; i < e; ++i) {
            double ax = std::fabs(static_cast<double>(x[i]));
            if (ax == 0.0)
                continue;
            if (s.scale < ax) {
                s.ssq = 1.0 + s.ssq * (s.scale / ax) * (s.scale / ax);
                s.scale = ax;
            } else {
                s.ssq += (ax / s.scale) * (ax / s.scale);
            }
        }
        return s;
    };
    if (incx == 1) {
        const KernelTuning &t = kernelTuning();
        const simd::Kernels *sk = simd::active();
        auto chunkFn = [&](std::int64_t b, std::int64_t e) {
            if (sk) {
                Slassq s;
                sk->slassq(e - b, x + b, &s.scale, &s.ssq);
                return s;
            }
            return chunkSsq(b, e);
        };
        Slassq s = deterministicReduce<Slassq>(
            n, t.reduceChunk, t.threadsFor(n), chunkFn, slassqCombine);
        return static_cast<float>(s.scale * std::sqrt(s.ssq));
    }
    Slassq s;
    std::int64_t ix = startIndex(n, incx);
    for (std::int64_t i = 0; i < n; ++i, ix += incx) {
        double ax = std::fabs(static_cast<double>(x[ix]));
        if (ax == 0.0)
            continue;
        if (s.scale < ax) {
            s.ssq = 1.0 + s.ssq * (s.scale / ax) * (s.scale / ax);
            s.scale = ax;
        } else {
            s.ssq += (ax / s.scale) * (ax / s.scale);
        }
    }
    return static_cast<float>(s.scale * std::sqrt(s.ssq));
}

float
sasum(std::int64_t n, const float *x, std::int64_t incx)
{
    if (n <= 0)
        return 0.0f;
    fatalIf(incx == 0, "sasum: zero stride");
    if (incx == 1) {
        const KernelTuning &t = kernelTuning();
        const simd::Kernels *sk = simd::active();
        double acc = deterministicReduce<double>(
            n, t.reduceChunk, t.threadsFor(n),
            [&](std::int64_t b, std::int64_t e) {
                if (sk)
                    return sk->sasum(e - b, x + b);
                double s = 0.0;
                for (std::int64_t i = b; i < e; ++i)
                    s += std::fabs(static_cast<double>(x[i]));
                return s;
            },
            [](double a, double b) { return a + b; });
        return static_cast<float>(acc);
    }
    double acc = 0.0;
    std::int64_t ix = startIndex(n, incx);
    for (std::int64_t i = 0; i < n; ++i, ix += incx)
        acc += std::fabs(static_cast<double>(x[ix]));
    return static_cast<float>(acc);
}

std::int64_t
isamax(std::int64_t n, const float *x, std::int64_t incx)
{
    if (n <= 0)
        return -1;
    fatalIf(incx == 0, "isamax: zero stride");
    struct Best
    {
        float v;
        std::int64_t i;
    };
    const std::int64_t base = startIndex(n, incx);
    const simd::Kernels *sk = incx == 1 ? simd::active() : nullptr;
    auto chunkBest = [&](std::int64_t b, std::int64_t e) {
        if (sk) {
            Best best;
            best.i = b + sk->isamax(e - b, x + b);
            best.v = std::fabs(x[best.i]);
            return best;
        }
        Best best{std::fabs(x[base + b * incx]), b};
        for (std::int64_t i = b + 1; i < e; ++i) {
            float v = std::fabs(x[base + i * incx]);
            if (v > best.v) {
                best.v = v;
                best.i = i;
            }
        }
        return best;
    };
    // Combine keeps the left (lower-index) chunk on ties, matching the
    // sequential "first strictly greater wins" semantics exactly.
    const KernelTuning &t = kernelTuning();
    Best best = deterministicReduce<Best>(
        n, t.reduceChunk, incx == 1 ? t.threadsFor(n) : 1, chunkBest,
        [](const Best &a, const Best &b) { return b.v > a.v ? b : a; });
    return best.i;
}

void
caxpy(std::int64_t n, cfloat a, const cfloat *x, std::int64_t incx,
      cfloat *y, std::int64_t incy)
{
    if (n <= 0 || a == cfloat{})
        return;
    fatalIf(incx == 0 || incy == 0, "caxpy: zero stride");
    if (incx == 1 && incy == 1) {
        const KernelTuning &t = kernelTuning();
        const simd::Kernels *sk = simd::active();
        parallelFor(0, n, t.threadsFor(2 * n), 4096,
                    [&](std::int64_t b, std::int64_t e) {
                        if (sk) {
                            sk->caxpy(e - b, a.real(), a.imag(),
                                      flat(x + b),
                                      reinterpret_cast<float *>(y + b));
                            return;
                        }
                        for (std::int64_t i = b; i < e; ++i)
                            y[i] += a * x[i];
                    });
        return;
    }
    std::int64_t ix = startIndex(n, incx);
    std::int64_t iy = startIndex(n, incy);
    for (std::int64_t i = 0; i < n; ++i, ix += incx, iy += incy)
        y[iy] += a * x[ix];
}

namespace {

/** Complex accumulator for the deterministic cdot reductions. */
struct CAcc
{
    double re = 0.0;
    double im = 0.0;
};

inline CAcc
caccAdd(const CAcc &a, const CAcc &b)
{
    return {a.re + b.re, a.im + b.im};
}

} // namespace

cfloat
cdotc(std::int64_t n, const cfloat *x, std::int64_t incx, const cfloat *y,
      std::int64_t incy)
{
    if (n <= 0)
        return {};
    fatalIf(incx == 0 || incy == 0, "cdotc: zero stride");
    const std::int64_t bx = startIndex(n, incx);
    const std::int64_t by = startIndex(n, incy);
    const simd::Kernels *sk =
        incx == 1 && incy == 1 ? simd::active() : nullptr;
    auto chunk = [&](std::int64_t b, std::int64_t e) {
        CAcc s;
        if (sk) {
            sk->cdot(e - b, flat(x + b), flat(y + b), /*conjx=*/true,
                     &s.re, &s.im);
            return s;
        }
        for (std::int64_t i = b; i < e; ++i) {
            const cfloat &a = x[bx + i * incx];
            const cfloat &c = y[by + i * incy];
            // conj(a) * c, accumulated in double
            s.re += static_cast<double>(a.real()) * c.real() +
                    static_cast<double>(a.imag()) * c.imag();
            s.im += static_cast<double>(a.real()) * c.imag() -
                    static_cast<double>(a.imag()) * c.real();
        }
        return s;
    };
    const KernelTuning &t = kernelTuning();
    int threads = incx == 1 && incy == 1 ? t.threadsFor(2 * n) : 1;
    CAcc s = deterministicReduce<CAcc>(n, t.reduceChunk, threads, chunk,
                                       caccAdd);
    return {static_cast<float>(s.re), static_cast<float>(s.im)};
}

cfloat
cdotu(std::int64_t n, const cfloat *x, std::int64_t incx, const cfloat *y,
      std::int64_t incy)
{
    if (n <= 0)
        return {};
    fatalIf(incx == 0 || incy == 0, "cdotu: zero stride");
    const std::int64_t bx = startIndex(n, incx);
    const std::int64_t by = startIndex(n, incy);
    const simd::Kernels *sk =
        incx == 1 && incy == 1 ? simd::active() : nullptr;
    auto chunk = [&](std::int64_t b, std::int64_t e) {
        CAcc s;
        if (sk) {
            sk->cdot(e - b, flat(x + b), flat(y + b), /*conjx=*/false,
                     &s.re, &s.im);
            return s;
        }
        for (std::int64_t i = b; i < e; ++i) {
            const cfloat &a = x[bx + i * incx];
            const cfloat &c = y[by + i * incy];
            s.re += static_cast<double>(a.real()) * c.real() -
                    static_cast<double>(a.imag()) * c.imag();
            s.im += static_cast<double>(a.real()) * c.imag() +
                    static_cast<double>(a.imag()) * c.real();
        }
        return s;
    };
    const KernelTuning &t = kernelTuning();
    int threads = incx == 1 && incy == 1 ? t.threadsFor(2 * n) : 1;
    CAcc s = deterministicReduce<CAcc>(n, t.reduceChunk, threads, chunk,
                                       caccAdd);
    return {static_cast<float>(s.re), static_cast<float>(s.im)};
}

} // namespace mealib::mkl
