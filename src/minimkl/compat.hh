/**
 * @file
 * Legacy-interface shims: the exact MKL / CBLAS / FFTW entry points the
 * paper's target applications call (Table 1 and Listing 1), implemented
 * over MiniMKL. These live in the global namespace on purpose — the
 * point of MEALib is that legacy code keeps compiling against the same
 * API — and are exercised by the legacy-port example and the
 * source-to-source compiler tests.
 *
 * Only the subset the paper uses is provided; MEALib treats the library
 * interface as fixed, so a small surface is the design point, not a
 * limitation.
 */

#ifndef MEALIB_MINIMKL_COMPAT_HH
#define MEALIB_MINIMKL_COMPAT_HH

#include <cstddef>

// --- CBLAS enums (values match the standard cblas.h) -----------------------

enum CBLAS_LAYOUT
{
    CblasRowMajor = 101,
    CblasColMajor = 102,
};
enum CBLAS_TRANSPOSE
{
    CblasNoTrans = 111,
    CblasTrans = 112,
    CblasConjTrans = 113,
};
enum CBLAS_UPLO
{
    CblasUpper = 121,
    CblasLower = 122,
};
enum CBLAS_DIAG
{
    CblasNonUnit = 131,
    CblasUnit = 132,
};
enum CBLAS_SIDE
{
    CblasLeft = 141,
    CblasRight = 142,
};

// --- BLAS level 1 -----------------------------------------------------------

void cblas_saxpy(int n, float a, const float *x, int incx, float *y,
                 int incy);
float cblas_sdot(int n, const float *x, int incx, const float *y,
                 int incy);
void cblas_sscal(int n, float a, float *x, int incx);
void cblas_saxpby(int n, float a, const float *x, int incx, float b,
                  float *y, int incy);
void cblas_scopy(int n, const float *x, int incx, float *y, int incy);

/** Complex dot (conjugated); result via out parameter as in CBLAS. */
void cblas_cdotc_sub(int n, const void *x, int incx, const void *y,
                     int incy, void *dotc);
void cblas_caxpy(int n, const void *a, const void *x, int incx, void *y,
                 int incy);

// --- BLAS level 2 / 3 -------------------------------------------------------

void cblas_sgemv(CBLAS_LAYOUT layout, CBLAS_TRANSPOSE trans, int m, int n,
                 float alpha, const float *a, int lda, const float *x,
                 int incx, float beta, float *y, int incy);
void cblas_sgemm(CBLAS_LAYOUT layout, CBLAS_TRANSPOSE transa,
                 CBLAS_TRANSPOSE transb, int m, int n, int k, float alpha,
                 const float *a, int lda, const float *b, int ldb,
                 float beta, float *c, int ldc);
void cblas_cherk(CBLAS_LAYOUT layout, CBLAS_UPLO uplo,
                 CBLAS_TRANSPOSE trans, int n, int k, float alpha,
                 const void *a, int lda, float beta, void *c, int ldc);
void cblas_ctrsm(CBLAS_LAYOUT layout, CBLAS_SIDE side, CBLAS_UPLO uplo,
                 CBLAS_TRANSPOSE trans, CBLAS_DIAG diag, int m, int n,
                 const void *alpha, const void *a, int lda, void *b,
                 int ldb);

// --- MKL sparse (classic 1-based Fortran-flavoured interface) --------------

/**
 * y := op(A)*x for CSR A with 1-based ia/ja as in MKL's mkl_scsrgemv.
 * @p transa is "N"/"n" or "T"/"t".
 */
void mkl_scsrgemv(const char *transa, const int *m, const float *a,
                  const int *ia, const int *ja, const float *x, float *y);

// --- MKL transpose ----------------------------------------------------------

/**
 * In-place scaled transpose as in mkl_simatcopy: @p ordering is 'R'/'r'
 * or 'C'/'c'; @p trans is 'N', 'T', 'R' (conj, no transpose) or 'C'.
 */
void mkl_simatcopy(char ordering, char trans, std::size_t rows,
                   std::size_t cols, float alpha, float *ab,
                   std::size_t lda, std::size_t ldb);

/** Out-of-place variant (mkl_somatcopy). */
void mkl_somatcopy(char ordering, char trans, std::size_t rows,
                   std::size_t cols, float alpha, const float *a,
                   std::size_t lda, float *b, std::size_t ldb);

// --- MKL data fitting (simplified dfsInterpolate1D) -------------------------

/**
 * Uniform-grid linear interpolation of @p nx samples onto @p nsite
 * uniformly spaced sites spanning the same interval — the shape of the
 * paper's dfsInterpolate1D use. @return 0 on success.
 */
int dfsInterpolate1D(const float *x, int nx, float *site, int nsite);

// --- FFTW single-precision guru subset --------------------------------------

using fftwf_complex = float[2];

struct fftwf_iodim
{
    int n;
    int is;
    int os;
};

struct fftwf_plan_s;
using fftwf_plan = fftwf_plan_s *;

inline constexpr int FFTW_FORWARD = -1;
inline constexpr int FFTW_BACKWARD = +1;
inline constexpr unsigned FFTW_WISDOM_ONLY = 1u << 21;
inline constexpr unsigned FFTW_ESTIMATE = 1u << 6;

/**
 * Guru complex DFT planner (the only planner Listing 1 uses). Rank 0
 * plans are strided copies; rank 1/2 are transforms. The buffers are
 * captured in the plan, as in FFTW.
 */
fftwf_plan fftwf_plan_guru_dft(int rank, const fftwf_iodim *dims,
                               int howmany_rank,
                               const fftwf_iodim *howmany_dims,
                               fftwf_complex *in, fftwf_complex *out,
                               int sign, unsigned flags);

void fftwf_execute(const fftwf_plan plan);
void fftwf_destroy_plan(fftwf_plan plan);

#endif // MEALIB_MINIMKL_COMPAT_HH
