#include "minimkl/fft.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"

namespace mealib::mkl {

namespace {

bool
isPow2(std::int64_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

std::int64_t
log2i(std::int64_t n)
{
    std::int64_t l = 0;
    while ((std::int64_t{1} << l) < n)
        ++l;
    return l;
}

} // namespace

FftPlan::FftPlan(std::vector<FftDim> dims, std::vector<FftDim> loops,
                 FftDirection dir)
    : dims_(std::move(dims)), loops_(std::move(loops)), dir_(dir)
{
    fatalIf(dims_.size() > 2, "fft: rank > 2 not supported");
    fatalIf(loops_.size() > 4, "fft: more than 4 loop dims not supported");
    for (const FftDim &d : dims_) {
        fatalIf(!isPow2(d.n), "fft: transform extent ", d.n,
                " is not a power of two");
        fatalIf(d.is == 0 || d.os == 0, "fft: zero stride");
        points_ *= d.n;
        twiddleN_ = std::max(twiddleN_, d.n);
    }
    for (const FftDim &d : loops_) {
        fatalIf(d.n <= 0, "fft: loop extent must be positive");
        batch_ *= d.n;
    }

    if (twiddleN_ >= 2) {
        twiddles_.resize(static_cast<std::size_t>(twiddleN_ / 2));
        const double theta = 2.0 * M_PI / static_cast<double>(twiddleN_) *
                             static_cast<double>(static_cast<int>(dir_));
        for (std::int64_t k = 0; k < twiddleN_ / 2; ++k) {
            double a = theta * static_cast<double>(k);
            twiddles_[static_cast<std::size_t>(k)] = {
                static_cast<float>(std::cos(a)),
                static_cast<float>(std::sin(a))};
        }
    }
}

FftPlan
FftPlan::dft1d(std::int64_t n, FftDirection dir)
{
    return FftPlan({{n, 1, 1}}, {}, dir);
}

FftPlan
FftPlan::dft1dBatched(std::int64_t n, std::int64_t howmany,
                      std::int64_t dist, FftDirection dir)
{
    return FftPlan({{n, 1, 1}}, {{howmany, dist, dist}}, dir);
}

FftPlan
FftPlan::dft2d(std::int64_t rows, std::int64_t cols, FftDirection dir)
{
    return FftPlan({{rows, cols, cols}, {cols, 1, 1}}, {}, dir);
}

double
FftPlan::flopEstimate() const
{
    if (isCopy())
        return 0.0;
    double n = static_cast<double>(points_);
    double lg = 0.0;
    for (const FftDim &d : dims_)
        lg += static_cast<double>(log2i(d.n));
    return 5.0 * n * lg * static_cast<double>(batch_);
}

void
FftPlan::kernel(cfloat *x, cfloat *y, std::int64_t n) const
{
    // Iterative Stockham autosort (decimation in frequency). The
    // invariant nn * s == n lets twiddle lookups index the master table
    // with stride s. After log2(n) ping-pong stages the result is in x.
    panicIf(n > twiddleN_, "fft kernel size exceeds twiddle table");
    const std::int64_t step = twiddleN_ / n;
    const simd::Kernels *sk = simd::active();
    for (std::int64_t nn = n, s = 1; nn > 1; nn >>= 1, s <<= 1) {
        const std::int64_t m = nn >> 1;
        for (std::int64_t p = 0; p < m; ++p) {
            const cfloat w =
                twiddles_[static_cast<std::size_t>(p * s * step)];
            const cfloat *xa = x + s * p;
            const cfloat *xb = x + s * (p + m);
            cfloat *ya = y + s * 2 * p;
            cfloat *yb = ya + s;
            if (sk) {
                // Same elementwise ops as the scalar loop, 4 complex
                // lanes at a time (bit-identical at every level).
                sk->fftButterfly(s, reinterpret_cast<const float *>(xa),
                                 reinterpret_cast<const float *>(xb),
                                 reinterpret_cast<float *>(ya),
                                 reinterpret_cast<float *>(yb), w.real(),
                                 w.imag());
                continue;
            }
            for (std::int64_t q = 0; q < s; ++q) {
                const cfloat a = xa[q];
                const cfloat b = xb[q];
                ya[q] = a + b;
                yb[q] = (a - b) * w;
            }
        }
        std::swap(x, y);
    }
    // After log2(n) ping-pong swaps the result is in the caller's first
    // buffer when log2(n) is even, else in the second; callers pick the
    // buffer by parity (see dft1dStrided).
}

void
FftPlan::dft1dStrided(const cfloat *in, std::int64_t is, cfloat *out,
                      std::int64_t os, std::int64_t n) const
{
    if (n == 1) {
        out[0] = in[0];
        return;
    }
    std::vector<cfloat> a(static_cast<std::size_t>(n));
    std::vector<cfloat> b(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        a[static_cast<std::size_t>(i)] = in[i * is];
    kernel(a.data(), b.data(), n);
    const cfloat *res = (log2i(n) & 1) ? b.data() : a.data();
    for (std::int64_t i = 0; i < n; ++i)
        out[i * os] = res[i];
}

void
FftPlan::applyOne(const cfloat *in, cfloat *out) const
{
    if (dims_.empty()) {
        out[0] = in[0]; // rank-0: loops do the copying
        return;
    }
    if (dims_.size() == 1) {
        dft1dStrided(in, dims_[0].is, out, dims_[0].os, dims_[0].n);
        return;
    }
    // Rank 2: transform dim 1 per row into out, then dim 0 in-place.
    // Rows (and then columns) are independent transforms, so each pass
    // fans out across the pool; the two parallelFor calls form a
    // barrier between the passes.
    const FftDim &d0 = dims_[0];
    const FftDim &d1 = dims_[1];
    const KernelTuning &t = kernelTuning();
    parallelFor(0, d0.n, t.threadsFor(2 * points_), 1,
                [&](std::int64_t rb, std::int64_t re) {
                    for (std::int64_t r = rb; r < re; ++r)
                        dft1dStrided(in + r * d0.is, d1.is,
                                     out + r * d0.os, d1.os, d1.n);
                });
    parallelFor(0, d1.n, t.threadsFor(2 * points_), 1,
                [&](std::int64_t cb, std::int64_t ce) {
                    for (std::int64_t c = cb; c < ce; ++c)
                        dft1dStrided(out + c * d1.os, d0.os,
                                     out + c * d1.os, d0.os, d0.n);
                });
}

void
FftPlan::execute(const cfloat *in, cfloat *out) const
{
    // Batch iterations are independent transforms over disjoint offsets,
    // so the flat batch index range is statically partitioned across the
    // pool. Each index is decomposed into the nested loop counters
    // (last loop dim fastest, matching the sequential iteration order) —
    // rank-0 plans rely on these to enumerate every copied element.
    auto runRange = [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
            std::int64_t rest = b;
            std::int64_t ioff = 0, ooff = 0;
            for (std::size_t d = loops_.size(); d-- > 0;) {
                std::int64_t c = rest % loops_[d].n;
                rest /= loops_[d].n;
                ioff += c * loops_[d].is;
                ooff += c * loops_[d].os;
            }
            applyOne(in + ioff, out + ooff);
        }
    };
    const KernelTuning &t = kernelTuning();
    const std::int64_t work = 2 * points_ * batch_;
    parallelFor(0, batch_, batch_ > 1 ? t.threadsFor(work) : 1, 1,
                runRange);
}

void
fftNormalize(cfloat *buf, std::int64_t count, std::int64_t n)
{
    const float s = 1.0f / static_cast<float>(n);
    for (std::int64_t i = 0; i < count; ++i)
        buf[i] *= s;
}

void
rfft(const float *in, std::int64_t n, cfloat *out)
{
    fatalIf(n < 2 || (n & (n - 1)) != 0,
            "rfft: n must be a power of two >= 2");
    const std::int64_t m = n / 2;

    // Pack adjacent real samples into complex points and transform at
    // half size, then untangle the even/odd spectra.
    std::vector<cfloat> z(static_cast<std::size_t>(m));
    for (std::int64_t k = 0; k < m; ++k)
        z[static_cast<std::size_t>(k)] = {in[2 * k], in[2 * k + 1]};
    std::vector<cfloat> big(static_cast<std::size_t>(m));
    FftPlan::dft1d(m, FftDirection::Forward).execute(z.data(),
                                                     big.data());

    for (std::int64_t k = 0; k <= m; ++k) {
        cfloat zk = big[static_cast<std::size_t>(k % m)];
        cfloat zmk = std::conj(big[static_cast<std::size_t>(
            (m - k) % m)]);
        cfloat even = 0.5f * (zk + zmk);
        cfloat odd = cfloat{0.0f, -0.5f} * (zk - zmk);
        double a = -2.0 * M_PI * static_cast<double>(k) /
                   static_cast<double>(n);
        cfloat w{static_cast<float>(std::cos(a)),
                 static_cast<float>(std::sin(a))};
        out[k] = even + w * odd;
    }
}

void
irfft(const cfloat *in, std::int64_t n, float *out)
{
    fatalIf(n < 2 || (n & (n - 1)) != 0,
            "irfft: n must be a power of two >= 2");
    const std::int64_t m = n / 2;

    // Re-tangle the half spectra and invert at half size.
    std::vector<cfloat> z(static_cast<std::size_t>(m));
    for (std::int64_t k = 0; k < m; ++k) {
        cfloat xk = in[k];
        cfloat xmk = std::conj(in[m - k]);
        cfloat even = 0.5f * (xk + xmk);
        double a = 2.0 * M_PI * static_cast<double>(k) /
                   static_cast<double>(n);
        cfloat w{static_cast<float>(std::cos(a)),
                 static_cast<float>(std::sin(a))};
        cfloat odd = w * (0.5f * (xk - xmk));
        z[static_cast<std::size_t>(k)] =
            even + cfloat{0.0f, 1.0f} * odd;
    }
    std::vector<cfloat> small(static_cast<std::size_t>(m));
    FftPlan::dft1d(m, FftDirection::Inverse).execute(z.data(),
                                                     small.data());
    const float s = 1.0f / static_cast<float>(m);
    for (std::int64_t k = 0; k < m; ++k) {
        out[2 * k] = small[static_cast<std::size_t>(k)].real() * s;
        out[2 * k + 1] = small[static_cast<std::size_t>(k)].imag() * s;
    }
}

void
naiveDft(const cfloat *in, cfloat *out, std::int64_t n, FftDirection dir)
{
    fatalIf(in == out, "naiveDft: in-place not supported");
    const double theta = 2.0 * M_PI / static_cast<double>(n) *
                         static_cast<double>(static_cast<int>(dir));
    for (std::int64_t k = 0; k < n; ++k) {
        double re = 0.0, im = 0.0;
        for (std::int64_t j = 0; j < n; ++j) {
            double a = theta * static_cast<double>(k) *
                       static_cast<double>(j);
            double c = std::cos(a), s = std::sin(a);
            re += in[j].real() * c - in[j].imag() * s;
            im += in[j].real() * s + in[j].imag() * c;
        }
        out[k] = {static_cast<float>(re), static_cast<float>(im)};
    }
}

} // namespace mealib::mkl
