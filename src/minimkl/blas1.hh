/**
 * @file
 * Level-1 BLAS: vector-vector operations. These are the memory-bounded
 * routines MEALib accelerates (Table 1: AXPY, DOT) plus the complex
 * variants the STAP application needs (caxpy, cdotc).
 *
 * All routines accept strides (inc) following BLAS conventions; negative
 * strides address vectors back-to-front as in the standard.
 */

#ifndef MEALIB_MINIMKL_BLAS1_HH
#define MEALIB_MINIMKL_BLAS1_HH

#include <cstdint>

#include "minimkl/types.hh"

namespace mealib::mkl {

/** y := a*x + y (single precision). */
void saxpy(std::int64_t n, float a, const float *x, std::int64_t incx,
           float *y, std::int64_t incy);

/**
 * y := a*x + b*y (single precision; MKL's cblas_saxpby). Matching MKL's
 * observed leniency, x (and its stride) is ignored — and may be null —
 * when a == 0.
 */
void saxpby(std::int64_t n, float a, const float *x, std::int64_t incx,
            float b, float *y, std::int64_t incy);

/** x := a*x (single precision). */
void sscal(std::int64_t n, float a, float *x, std::int64_t incx);

/** y := x (single precision). */
void scopy(std::int64_t n, const float *x, std::int64_t incx, float *y,
           std::int64_t incy);

/** @return sum_i x[i]*y[i] (single precision). */
float sdot(std::int64_t n, const float *x, std::int64_t incx,
           const float *y, std::int64_t incy);

/** @return Euclidean norm of x (single precision, overflow-safe). */
float snrm2(std::int64_t n, const float *x, std::int64_t incx);

/** @return sum of absolute values of x. */
float sasum(std::int64_t n, const float *x, std::int64_t incx);

/** @return index of the element of maximum absolute value. */
std::int64_t isamax(std::int64_t n, const float *x, std::int64_t incx);

/** y := a*x + y (complex single precision). */
void caxpy(std::int64_t n, cfloat a, const cfloat *x, std::int64_t incx,
           cfloat *y, std::int64_t incy);

/** @return sum_i conj(x[i])*y[i] (complex dot, conjugated). */
cfloat cdotc(std::int64_t n, const cfloat *x, std::int64_t incx,
             const cfloat *y, std::int64_t incy);

/** @return sum_i x[i]*y[i] (complex dot, unconjugated). */
cfloat cdotu(std::int64_t n, const cfloat *x, std::int64_t incx,
             const cfloat *y, std::int64_t incy);

} // namespace mealib::mkl

#endif // MEALIB_MINIMKL_BLAS1_HH
