#include "minimkl/compat.hh"

#include <vector>

#include "common/logging.hh"
#include "dispatch/dispatcher.hh"
#include "dispatch/opdesc.hh"
#include "minimkl/blas1.hh"
#include "minimkl/blas2.hh"
#include "minimkl/blas3.hh"
#include "minimkl/fft.hh"
#include "minimkl/resample.hh"
#include "minimkl/sparse.hh"
#include "minimkl/transpose.hh"

namespace mkl = mealib::mkl;
namespace dsp = mealib::dispatch;

namespace {

mkl::Order
toOrder(CBLAS_LAYOUT l)
{
    return static_cast<mkl::Order>(l);
}

mkl::Transpose
toTrans(CBLAS_TRANSPOSE t)
{
    return static_cast<mkl::Transpose>(t);
}

const mkl::cfloat *
cf(const void *p)
{
    return static_cast<const mkl::cfloat *>(p);
}

mkl::cfloat *
cf(void *p)
{
    return static_cast<mkl::cfloat *>(p);
}

/** The one seam every shim dispatches through. */
void
run(const dsp::OpDesc &desc, const std::function<void()> &hostFn)
{
    dsp::currentDispatcher().run(desc, hostFn);
}

} // namespace

void
cblas_saxpy(int n, float a, const float *x, int incx, float *y, int incy)
{
    run(dsp::lowerSaxpy(n, a, x, incx, y, incy),
        [&] { mkl::saxpy(n, a, x, incx, y, incy); });
}

float
cblas_sdot(int n, const float *x, int incx, const float *y, int incy)
{
    float r = 0.0f;
    run(dsp::lowerSdot(n, x, incx, y, incy, &r),
        [&] { r = mkl::sdot(n, x, incx, y, incy); });
    return r;
}

void
cblas_sscal(int n, float a, float *x, int incx)
{
    run(dsp::lowerSscal(n, x, incx),
        [&] { mkl::sscal(n, a, x, incx); });
}

void
cblas_saxpby(int n, float a, const float *x, int incx, float b, float *y,
             int incy)
{
    run(dsp::lowerSaxpby(n, a, x, incx, b, y, incy),
        [&] { mkl::saxpby(n, a, x, incx, b, y, incy); });
}

void
cblas_scopy(int n, const float *x, int incx, float *y, int incy)
{
    run(dsp::lowerScopy(n, x, incx, y, incy),
        [&] { mkl::scopy(n, x, incx, y, incy); });
}

void
cblas_cdotc_sub(int n, const void *x, int incx, const void *y, int incy,
                void *dotc)
{
    run(dsp::lowerCdotc(n, cf(x), incx, cf(y), incy, cf(dotc)),
        [&] { *cf(dotc) = mkl::cdotc(n, cf(x), incx, cf(y), incy); });
}

void
cblas_caxpy(int n, const void *a, const void *x, int incx, void *y,
            int incy)
{
    run(dsp::lowerCaxpy(n, *cf(a), cf(x), incx, cf(y), incy),
        [&] { mkl::caxpy(n, *cf(a), cf(x), incx, cf(y), incy); });
}

void
cblas_sgemv(CBLAS_LAYOUT layout, CBLAS_TRANSPOSE trans, int m, int n,
            float alpha, const float *a, int lda, const float *x, int incx,
            float beta, float *y, int incy)
{
    run(dsp::lowerSgemv(toOrder(layout), toTrans(trans), m, n, alpha, a,
                        lda, x, incx, beta, y, incy),
        [&] {
            mkl::sgemv(toOrder(layout), toTrans(trans), m, n, alpha, a,
                       lda, x, incx, beta, y, incy);
        });
}

void
cblas_sgemm(CBLAS_LAYOUT layout, CBLAS_TRANSPOSE transa,
            CBLAS_TRANSPOSE transb, int m, int n, int k, float alpha,
            const float *a, int lda, const float *b, int ldb, float beta,
            float *c, int ldc)
{
    run(dsp::lowerSgemm(m, n, k, a, b, beta, c), [&] {
        mkl::sgemm(toOrder(layout), toTrans(transa), toTrans(transb), m,
                   n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    });
}

void
cblas_cherk(CBLAS_LAYOUT layout, CBLAS_UPLO uplo, CBLAS_TRANSPOSE trans,
            int n, int k, float alpha, const void *a, int lda, float beta,
            void *c, int ldc)
{
    run(dsp::lowerCherk(n, k, cf(a), beta, cf(c)), [&] {
        mkl::cherk(toOrder(layout), static_cast<mkl::Uplo>(uplo),
                   toTrans(trans), n, k, alpha, cf(a), lda, beta, cf(c),
                   ldc);
    });
}

void
cblas_ctrsm(CBLAS_LAYOUT layout, CBLAS_SIDE side, CBLAS_UPLO uplo,
            CBLAS_TRANSPOSE trans, CBLAS_DIAG diag, int m, int n,
            const void *alpha, const void *a, int lda, void *b, int ldb)
{
    run(dsp::lowerCtrsm(m, n, cf(a), cf(b)), [&] {
        mkl::ctrsm(toOrder(layout), static_cast<mkl::Side>(side),
                   static_cast<mkl::Uplo>(uplo), toTrans(trans),
                   static_cast<mkl::Diag>(diag), m, n, *cf(alpha), cf(a),
                   lda, cf(b), ldb);
    });
}

void
mkl_scsrgemv(const char *transa, const int *m, const float *a,
             const int *ia, const int *ja, const float *x, float *y)
{
    mealib::fatalIf(transa == nullptr || m == nullptr,
                    "mkl_scsrgemv: null argument");
    const std::int64_t rows = *m;
    // The classic 1-based arrays are consumed in place (no CsrMatrix
    // copy): the raw kernels adjust for the index base per access.
    static_assert(sizeof(int) == sizeof(std::int32_t),
                  "mkl_scsrgemv assumes 32-bit int indices");
    const auto *ia32 = reinterpret_cast<const std::int32_t *>(ia);
    const auto *ja32 = reinterpret_cast<const std::int32_t *>(ja);

    const char t = *transa;
    if (t == 'N' || t == 'n') {
        run(dsp::lowerScsrgemv1(rows, a, ia32, ja32, x, y, false),
            [&] { mkl::scsrmvRaw1(rows, ia32, ja32, a, x, y); });
    } else if (t == 'T' || t == 't') {
        run(dsp::lowerScsrgemv1(rows, a, ia32, ja32, x, y, true),
            [&] { mkl::scsrmvTransRaw1(rows, ia32, ja32, a, x, y); });
    } else {
        mealib::fatal("mkl_scsrgemv: bad transa '", t, "'");
    }
}

namespace {

mkl::Order
charOrder(char ordering)
{
    switch (ordering) {
      case 'R':
      case 'r':
        return mkl::Order::RowMajor;
      case 'C':
      case 'c':
        return mkl::Order::ColMajor;
      default:
        mealib::fatal("imatcopy: bad ordering '", ordering, "'");
    }
}

mkl::Transpose
charTrans(char trans)
{
    switch (trans) {
      case 'N':
      case 'n':
      case 'R': // conjugate-no-transpose degrades to NoTrans for reals
      case 'r':
        return mkl::Transpose::NoTrans;
      case 'T':
      case 't':
        return mkl::Transpose::Trans;
      case 'C':
      case 'c':
        return mkl::Transpose::ConjTrans;
      default:
        mealib::fatal("imatcopy: bad trans '", trans, "'");
    }
}

} // namespace

void
mkl_simatcopy(char ordering, char trans, std::size_t rows,
              std::size_t cols, float alpha, float *ab, std::size_t lda,
              std::size_t ldb)
{
    const auto r = static_cast<std::int64_t>(rows);
    const auto c = static_cast<std::int64_t>(cols);
    // Only the square unit-alpha transpose matches the RESHP COMP (the
    // accelerator's functional path is an in-place imatcopy).
    const bool mappable =
        charTrans(trans) == mkl::Transpose::Trans && r == c &&
        alpha == 1.0f;
    run(dsp::lowerTranspose(r, c, alpha, ab, ab, false, mappable), [&] {
        mkl::simatcopy(charOrder(ordering), charTrans(trans), r, c,
                       alpha, ab, static_cast<std::int64_t>(lda),
                       static_cast<std::int64_t>(ldb));
    });
}

void
mkl_somatcopy(char ordering, char trans, std::size_t rows,
              std::size_t cols, float alpha, const float *a,
              std::size_t lda, float *b, std::size_t ldb)
{
    const auto r = static_cast<std::int64_t>(rows);
    const auto c = static_cast<std::int64_t>(cols);
    run(dsp::lowerTranspose(r, c, alpha, a, b, false, false), [&] {
        mkl::somatcopy(charOrder(ordering), charTrans(trans), r, c,
                       alpha, a, static_cast<std::int64_t>(lda), b,
                       static_cast<std::int64_t>(ldb));
    });
}

int
dfsInterpolate1D(const float *x, int nx, float *site, int nsite)
{
    if (x == nullptr || site == nullptr || nx <= 0 || nsite <= 0)
        return -1;
    run(dsp::lowerResample(x, nx, site, nsite), [&] {
        mkl::resample1d(x, nx, site, nsite, mkl::InterpKind::Linear);
    });
    return 0;
}

// --- FFTW shims --------------------------------------------------------------

struct fftwf_plan_s
{
    mkl::FftPlan plan;
    const mkl::cfloat *in;
    mkl::cfloat *out;
};

fftwf_plan
fftwf_plan_guru_dft(int rank, const fftwf_iodim *dims, int howmany_rank,
                    const fftwf_iodim *howmany_dims, fftwf_complex *in,
                    fftwf_complex *out, int sign, unsigned flags)
{
    (void)flags; // planning rigor flags don't change semantics here
    mealib::fatalIf(rank < 0 || howmany_rank < 0,
                    "fftwf_plan_guru_dft: negative rank");
    std::vector<mkl::FftDim> d;
    for (int i = 0; i < rank; ++i)
        d.push_back({dims[i].n, dims[i].is, dims[i].os});
    std::vector<mkl::FftDim> h;
    for (int i = 0; i < howmany_rank; ++i)
        h.push_back({howmany_dims[i].n, howmany_dims[i].is,
                     howmany_dims[i].os});
    auto dir = sign == FFTW_FORWARD ? mkl::FftDirection::Forward
                                    : mkl::FftDirection::Inverse;
    // fftwf_complex is layout-compatible with std::complex<float>.
    return new fftwf_plan_s{
        mkl::FftPlan(std::move(d), std::move(h), dir),
        reinterpret_cast<const mkl::cfloat *>(in),
        reinterpret_cast<mkl::cfloat *>(out)};
}

void
fftwf_execute(const fftwf_plan plan)
{
    mealib::fatalIf(plan == nullptr, "fftwf_execute: null plan");
    run(dsp::lowerFft(plan->plan, plan->in, plan->out),
        [&] { plan->plan.execute(plan->in, plan->out); });
}

void
fftwf_destroy_plan(fftwf_plan plan)
{
    delete plan;
}
