#include "minimkl/blas3.hh"

#include <algorithm>
#include <complex>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"

namespace mealib::mkl {

namespace {

inline float
conjOf(float v)
{
    return v;
}

inline cfloat
conjOf(cfloat v)
{
    return std::conj(v);
}

template <typename T>
inline bool
isZero(const T &v)
{
    return v == T{};
}

/** Element accessor for op(A) of a row-major stored matrix. */
template <typename T>
class OpView
{
  public:
    OpView(const T *a, std::int64_t lda, Transpose trans)
        : a_(a), lda_(lda),
          trans_(trans != Transpose::NoTrans),
          conj_(trans == Transpose::ConjTrans)
    {}

    T
    operator()(std::int64_t i, std::int64_t j) const
    {
        T v = trans_ ? a_[j * lda_ + i] : a_[i * lda_ + j];
        return conj_ ? conjOf(v) : v;
    }

    /** @return true when op(A) walks A column-wise. */
    bool
    transposed() const
    {
        return trans_;
    }

    /** Raw stored row @p i — valid only when !transposed() (no conj). */
    const T *
    rowPtr(std::int64_t i) const
    {
        return a_ + i * lda_;
    }

  private:
    const T *a_;
    std::int64_t lda_;
    bool trans_;
    bool conj_;
};

/** alpha*x + y row update through the active SIMD table. */
inline void
simdAxpyRow(const simd::Kernels *sk, std::int64_t n, float av,
            const float *x, float *y)
{
    sk->saxpy(n, av, x, y);
}

inline void
simdAxpyRow(const simd::Kernels *sk, std::int64_t n, cfloat av,
            const cfloat *x, cfloat *y)
{
    sk->caxpy(n, av.real(), av.imag(), reinterpret_cast<const float *>(x),
              reinterpret_cast<float *>(y));
}

/** Row-major blocked GEMM core: C := alpha*op(A)*op(B) + beta*C. */
template <typename T>
void
gemmRowMajor(Transpose transa, Transpose transb, std::int64_t m,
             std::int64_t n, std::int64_t k, T alpha, const T *a,
             std::int64_t lda, const T *b, std::int64_t ldb, T beta, T *c,
             std::int64_t ldc)
{
    fatalIf(m < 0 || n < 0 || k < 0, "gemm: negative dimension");
    fatalIf(ldc < n && m > 0, "gemm: ldc too small");
    if (m == 0 || n == 0)
        return;

    const KernelTuning &tun = kernelTuning();
    const int threads = tun.threadsFor(m * n);

    parallelFor(0, m, threads, 16, [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t i = rb; i < re; ++i) {
            T *row = c + i * ldc;
            if (isZero(beta)) {
                std::fill(row, row + n, T{});
            } else if (beta != T{1}) {
                for (std::int64_t j = 0; j < n; ++j)
                    row[j] *= beta;
            }
        }
    });
    if (isZero(alpha) || k == 0)
        return;

    OpView<T> A(a, lda, transa);
    OpView<T> B(b, ldb, transb);

    // i-k-j loop nest with square blocking: the kj inner loops stream
    // over rows of op(B) and C, which keeps the walk unit-stride when
    // op(B) is untransposed. Row bands own disjoint C rows, so the
    // outer band loop fans out across the pool; within a row the
    // kk-ascending update order is unchanged by the partition.
    const std::int64_t BS = tun.gemmBlock;
    const std::int64_t mult = tun.threadsFor(2 * m * n * k);
    // When op(B) is untransposed its rows are contiguous, so the j map
    // runs through the SIMD axpy kernel (bit-identical to the scalar
    // elementwise update at every level).
    const simd::Kernels *sk = simd::active();
    const bool vecB = sk != nullptr && !B.transposed();
    parallelFor(0, m, mult, BS, [&](std::int64_t mb, std::int64_t me) {
        for (std::int64_t ii = mb; ii < me; ii += BS) {
            std::int64_t ie = std::min(ii + BS, me);
            for (std::int64_t kk = 0; kk < k; kk += BS) {
                std::int64_t ke = std::min(kk + BS, k);
                for (std::int64_t jj = 0; jj < n; jj += BS) {
                    std::int64_t je = std::min(jj + BS, n);
                    for (std::int64_t i = ii; i < ie; ++i) {
                        T *crow = c + i * ldc;
                        for (std::int64_t p = kk; p < ke; ++p) {
                            T av = alpha * A(i, p);
                            if (isZero(av))
                                continue;
                            if (vecB) {
                                simdAxpyRow(sk, je - jj, av,
                                            B.rowPtr(p) + jj, crow + jj);
                                continue;
                            }
                            for (std::int64_t j = jj; j < je; ++j)
                                crow[j] += av * B(p, j);
                        }
                    }
                }
            }
        }
    });
}

Uplo
flipUplo(Uplo u)
{
    return u == Uplo::Upper ? Uplo::Lower : Uplo::Upper;
}

/** Row-major CHERK core. */
void
cherkRowMajor(Uplo uplo, Transpose trans, std::int64_t n, std::int64_t k,
              float alpha, const cfloat *a, std::int64_t lda, float beta,
              cfloat *c, std::int64_t ldc)
{
    fatalIf(n < 0 || k < 0, "cherk: negative dimension");
    fatalIf(trans == Transpose::Trans,
            "cherk: trans must be NoTrans or ConjTrans");
    if (n == 0)
        return;
    fatalIf(ldc < n, "cherk: ldc too small");

    const bool upper = uplo == Uplo::Upper;
    const KernelTuning &tun = kernelTuning();
    const int threads = tun.threadsFor(4 * n * n);

    // Scale the referenced triangle; the diagonal of a Hermitian matrix
    // is real, and BLAS guarantees the imaginary part is cleared.
    parallelFor(0, n, threads, 16, [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t i = rb; i < re; ++i) {
            std::int64_t j0 = upper ? i : 0;
            std::int64_t j1 = upper ? n : i + 1;
            for (std::int64_t j = j0; j < j1; ++j) {
                cfloat v = c[i * ldc + j] * beta;
                if (i == j)
                    v = cfloat{v.real(), 0.0f};
                c[i * ldc + j] = v;
            }
        }
    });
    if (alpha == 0.0f || k == 0)
        return;

    const bool notrans = trans == Transpose::NoTrans;
    // NoTrans: C += alpha * A * A^H with A n x k (row-major).
    // ConjTrans: C += alpha * A^H * A with A k x n.
    //
    // Panel loop: k is cut into gemmBlock-sized panels so that in the
    // NoTrans case row i's panel stays L1-resident while row j streams.
    // Each (i, j) keeps one double accumulator across all panels, so
    // the summation order (p ascending) — and hence the result — is
    // identical to the unblocked walk for every thread count. Rows of
    // the triangle are independent and fan out across the pool.
    const std::int64_t PS = tun.gemmBlock;
    const int rowThreads = tun.threadsFor(4 * n * n * k);
    // NoTrans rows are contiguous: each panel dot runs through the
    // fixed-width complex dot kernel (conj(a_i).a_j is the conjugate of
    // the legacy x.conj(y) walk, so only the imaginary sign flips), and
    // the panel partials accumulate in pp-ascending order — identical
    // across vector ISA levels and thread counts.
    const simd::Kernels *sk = simd::active();
    const bool vecRow = sk != nullptr && notrans;
    parallelFor(0, n, rowThreads, 1,
                [&](std::int64_t rb, std::int64_t re) {
                    for (std::int64_t i = rb; i < re; ++i) {
                        std::int64_t j0 = upper ? i : 0;
                        std::int64_t j1 = upper ? n : i + 1;
                        for (std::int64_t j = j0; j < j1; ++j) {
                            double racc = 0.0, iacc = 0.0;
                            for (std::int64_t pp = 0; pp < k; pp += PS) {
                                std::int64_t pe = std::min(pp + PS, k);
                                if (vecRow) {
                                    double re_ = 0.0, im_ = 0.0;
                                    sk->cdot(
                                        pe - pp,
                                        reinterpret_cast<const float *>(
                                            a + i * lda + pp),
                                        reinterpret_cast<const float *>(
                                            a + j * lda + pp),
                                        /*conjx=*/true, &re_, &im_);
                                    racc += re_;
                                    iacc -= im_;
                                    continue;
                                }
                                for (std::int64_t p = pp; p < pe; ++p) {
                                    cfloat x =
                                        notrans
                                            ? a[i * lda + p]
                                            : std::conj(a[p * lda + i]);
                                    cfloat y =
                                        notrans
                                            ? std::conj(a[j * lda + p])
                                            : a[p * lda + j];
                                    racc +=
                                        static_cast<double>(x.real()) *
                                            y.real() -
                                        static_cast<double>(x.imag()) *
                                            y.imag();
                                    iacc +=
                                        static_cast<double>(x.real()) *
                                            y.imag() +
                                        static_cast<double>(x.imag()) *
                                            y.real();
                                }
                            }
                            cfloat acc{static_cast<float>(racc),
                                       static_cast<float>(iacc)};
                            cfloat v = c[i * ldc + j] + alpha * acc;
                            if (i == j)
                                v = cfloat{v.real(), 0.0f};
                            c[i * ldc + j] = v;
                        }
                    }
                });
}

/** Row-major TRSM core. B is m x n; see header for semantics. */
template <typename T>
void
trsmRowMajor(Side side, Uplo uplo, Transpose trans, Diag diag,
             std::int64_t m, std::int64_t n, T alpha, const T *a,
             std::int64_t lda, T *b, std::int64_t ldb)
{
    fatalIf(m < 0 || n < 0, "trsm: negative dimension");
    if (m == 0 || n == 0)
        return;
    fatalIf(ldb < n, "trsm: ldb too small");
    std::int64_t adim = side == Side::Left ? m : n;
    fatalIf(lda < adim, "trsm: lda too small");

    OpView<T> A(a, lda, trans);
    // Transposing a triangular matrix flips which triangle holds data.
    Uplo eff = trans == Transpose::NoTrans ? uplo : flipUplo(uplo);
    const bool unit = diag == Diag::Unit;

    const KernelTuning &tun = kernelTuning();
    const std::int64_t solveDim = side == Side::Left ? m : n;
    const int threads = tun.threadsFor(2 * m * n * solveDim);

    parallelFor(0, m, threads, 16, [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t i = rb; i < re; ++i)
            for (std::int64_t j = 0; j < n; ++j)
                b[i * ldb + j] *= alpha;
    });

    if (side == Side::Left) {
        // Solve op(A) * X = B row-block-wise. The row recurrence is
        // sequential, but B's columns are independent right-hand sides:
        // each pool lane runs the full recurrence over its own column
        // panel [jb, je), so writes are disjoint and each element's
        // update order is exactly the sequential one.
        auto panel = [&](std::int64_t jb, std::int64_t je) {
            if (eff == Uplo::Lower) {
                for (std::int64_t i = 0; i < m; ++i) {
                    for (std::int64_t p = 0; p < i; ++p) {
                        T f = A(i, p);
                        if (isZero(f))
                            continue;
                        for (std::int64_t j = jb; j < je; ++j)
                            b[i * ldb + j] -= f * b[p * ldb + j];
                    }
                    if (!unit) {
                        T d = A(i, i);
                        for (std::int64_t j = jb; j < je; ++j)
                            b[i * ldb + j] /= d;
                    }
                }
            } else {
                for (std::int64_t i = m - 1; i >= 0; --i) {
                    for (std::int64_t p = i + 1; p < m; ++p) {
                        T f = A(i, p);
                        if (isZero(f))
                            continue;
                        for (std::int64_t j = jb; j < je; ++j)
                            b[i * ldb + j] -= f * b[p * ldb + j];
                    }
                    if (!unit) {
                        T d = A(i, i);
                        for (std::int64_t j = jb; j < je; ++j)
                            b[i * ldb + j] /= d;
                    }
                }
            }
        };
        parallelFor(0, n, threads, 16, panel);
    } else {
        // Solve X * op(A) = B: each row of B is an independent solve
        // against op(A) from the right.
        auto rows = [&](std::int64_t rb, std::int64_t re) {
            if (eff == Uplo::Upper) {
                for (std::int64_t r = rb; r < re; ++r) {
                    T *row = b + r * ldb;
                    for (std::int64_t j = 0; j < n; ++j) {
                        T acc = row[j];
                        for (std::int64_t p = 0; p < j; ++p)
                            acc -= row[p] * A(p, j);
                        row[j] = unit ? acc : acc / A(j, j);
                    }
                }
            } else {
                for (std::int64_t r = rb; r < re; ++r) {
                    T *row = b + r * ldb;
                    for (std::int64_t j = n - 1; j >= 0; --j) {
                        T acc = row[j];
                        for (std::int64_t p = j + 1; p < n; ++p)
                            acc -= row[p] * A(p, j);
                        row[j] = unit ? acc : acc / A(j, j);
                    }
                }
            }
        };
        parallelFor(0, m, threads, 1, rows);
    }
}

Side
flipSide(Side s)
{
    return s == Side::Left ? Side::Right : Side::Left;
}

} // namespace

void
sgemm(Order order, Transpose transa, Transpose transb, std::int64_t m,
      std::int64_t n, std::int64_t k, float alpha, const float *a,
      std::int64_t lda, const float *b, std::int64_t ldb, float beta,
      float *c, std::int64_t ldc)
{
    if (order == Order::RowMajor) {
        gemmRowMajor(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                     c, ldc);
    } else {
        // Column-major C = op(A)op(B) is row-major C^T = op(B)^T op(A)^T.
        gemmRowMajor(transb, transa, n, m, k, alpha, b, ldb, a, lda, beta,
                     c, ldc);
    }
}

void
cgemm(Order order, Transpose transa, Transpose transb, std::int64_t m,
      std::int64_t n, std::int64_t k, cfloat alpha, const cfloat *a,
      std::int64_t lda, const cfloat *b, std::int64_t ldb, cfloat beta,
      cfloat *c, std::int64_t ldc)
{
    if (order == Order::RowMajor) {
        gemmRowMajor(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                     c, ldc);
    } else {
        gemmRowMajor(transb, transa, n, m, k, alpha, b, ldb, a, lda, beta,
                     c, ldc);
    }
}

void
cherk(Order order, Uplo uplo, Transpose trans, std::int64_t n,
      std::int64_t k, float alpha, const cfloat *a, std::int64_t lda,
      float beta, cfloat *c, std::int64_t ldc)
{
    if (order == Order::RowMajor) {
        cherkRowMajor(uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
    } else {
        // Column-major Hermitian update maps to the row-major core with
        // the triangle and the transposition flipped (CBLAS convention).
        Transpose t = trans == Transpose::NoTrans ? Transpose::ConjTrans
                                                  : Transpose::NoTrans;
        cherkRowMajor(flipUplo(uplo), t, n, k, alpha, a, lda, beta, c,
                      ldc);
    }
}

void
ctrsm(Order order, Side side, Uplo uplo, Transpose trans, Diag diag,
      std::int64_t m, std::int64_t n, cfloat alpha, const cfloat *a,
      std::int64_t lda, cfloat *b, std::int64_t ldb)
{
    if (order == Order::RowMajor) {
        trsmRowMajor(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb);
    } else {
        // Column-major B is row-major B^T: flip the side and the
        // triangle, and swap the dimensions.
        trsmRowMajor(flipSide(side), flipUplo(uplo), trans, diag, n, m,
                     alpha, a, lda, b, ldb);
    }
}

void
strsm(Order order, Side side, Uplo uplo, Transpose trans, Diag diag,
      std::int64_t m, std::int64_t n, float alpha, const float *a,
      std::int64_t lda, float *b, std::int64_t ldb)
{
    fatalIf(trans == Transpose::ConjTrans,
            "strsm: ConjTrans is meaningless for real matrices; use Trans");
    if (order == Order::RowMajor) {
        trsmRowMajor(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb);
    } else {
        trsmRowMajor(flipSide(side), flipUplo(uplo), trans, diag, n, m,
                     alpha, a, lda, b, ldb);
    }
}

} // namespace mealib::mkl
