#include "minimkl/blas2.hh"

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "minimkl/blas1.hh"

namespace mealib::mkl {

namespace {

/**
 * Reduce every (order, trans) combination to the row-major cases by
 * flipping trans for column-major input: a column-major m x n matrix is a
 * row-major n x m matrix.
 */
struct Canon
{
    std::int64_t rows; //!< logical rows of op(A) in row-major walk
    std::int64_t cols;
    bool transposed;   //!< walk A column-wise instead of row-wise
    bool conj;
};

Canon
canonicalize(Order order, Transpose trans, std::int64_t m, std::int64_t n)
{
    bool t = trans != Transpose::NoTrans;
    bool conj = trans == Transpose::ConjTrans;
    if (order == Order::ColMajor)
        t = !t;
    // With row-major storage: NoTrans walks rows (m x n); Trans walks
    // columns (result length n).
    if (!t)
        return {m, n, false, conj};
    return {n, m, true, conj};
}

} // namespace

void
sgemv(Order order, Transpose trans, std::int64_t m, std::int64_t n,
      float alpha, const float *a, std::int64_t lda, const float *x,
      std::int64_t incx, float beta, float *y, std::int64_t incy)
{
    fatalIf(m < 0 || n < 0, "sgemv: negative dimension");
    fatalIf(incy == 0, "sgemv: zero stride");
    // A and x are unused when alpha == 0 (and may be null, matching the
    // saxpby leniency): validate incx only when x is actually walked.
    fatalIf(alpha != 0.0f && incx == 0, "sgemv: zero stride");
    if (m == 0 || n == 0)
        return;

    // Storage rows/cols as laid out (row-major view of the buffer).
    std::int64_t srows = order == Order::RowMajor ? m : n;
    std::int64_t scols = order == Order::RowMajor ? n : m;
    fatalIf(alpha != 0.0f && lda < scols, "sgemv: lda too small");

    Canon c = canonicalize(order, trans, srows, scols);
    std::int64_t ylen = c.rows;
    std::int64_t xlen = c.cols;

    // y := beta*y
    if (beta == 0.0f) {
        std::int64_t iy = incy >= 0 ? 0 : (1 - ylen) * incy;
        for (std::int64_t i = 0; i < ylen; ++i, iy += incy)
            y[iy] = 0.0f;
    } else if (beta != 1.0f) {
        sscal(ylen, beta, y, incy);
    }
    if (alpha == 0.0f)
        return;

    std::int64_t ybase = incy >= 0 ? 0 : (1 - ylen) * incy;
    std::int64_t xbase = incx >= 0 ? 0 : (1 - xlen) * incx;

    const KernelTuning &tun = kernelTuning();
    const int threads = tun.threadsFor(ylen * xlen);

    const simd::Kernels *sk = simd::active();

    if (!c.transposed) {
        // Row-wise: each output element is a dot product over one stored
        // row — the streaming-friendly case. Rows are independent, so
        // the row range is statically partitioned across the pool; each
        // row's accumulation stays sequential (the SIMD kernel uses the
        // fixed 8-lane accumulator layout), keeping the result
        // bit-identical for any thread count.
        const bool vecRow = sk != nullptr && incx == 1;
        parallelFor(0, ylen, threads, 1,
                    [&](std::int64_t rb, std::int64_t re) {
                        for (std::int64_t i = rb; i < re; ++i) {
                            double acc = 0.0;
                            const float *row = a + i * lda;
                            if (vecRow) {
                                acc = sk->sdot(xlen, row, x);
                            } else {
                                std::int64_t jx = xbase;
                                for (std::int64_t j = 0; j < xlen;
                                     ++j, jx += incx)
                                    acc += static_cast<double>(row[j]) *
                                           static_cast<double>(x[jx]);
                            }
                            y[ybase + i * incy] +=
                                alpha * static_cast<float>(acc);
                        }
                    });
    } else {
        // Column-wise as saxpy over rows: keeps the matrix walk unit
        // stride. Each thread owns a contiguous slice of y and walks
        // every stored row's slice, so writes never overlap and the
        // per-element accumulation order (j ascending) is unchanged.
        const bool vecCol = sk != nullptr && incy == 1;
        parallelFor(0, ylen, threads, 256,
                    [&](std::int64_t lb, std::int64_t le) {
                        std::int64_t jx = xbase;
                        for (std::int64_t j = 0; j < xlen;
                             ++j, jx += incx) {
                            float ax = alpha * x[jx];
                            if (ax == 0.0f)
                                continue;
                            const float *row = a + j * lda;
                            if (vecCol) {
                                sk->saxpy(le - lb, ax, row + lb, y + lb);
                                continue;
                            }
                            for (std::int64_t i = lb; i < le; ++i)
                                y[ybase + i * incy] += ax * row[i];
                        }
                    });
    }
}

void
cgemv(Order order, Transpose trans, std::int64_t m, std::int64_t n,
      cfloat alpha, const cfloat *a, std::int64_t lda, const cfloat *x,
      std::int64_t incx, cfloat beta, cfloat *y, std::int64_t incy)
{
    fatalIf(m < 0 || n < 0, "cgemv: negative dimension");
    fatalIf(incy == 0, "cgemv: zero stride");
    // Same leniency as sgemv: A and x are untouched when alpha == 0.
    fatalIf(alpha != cfloat{} && incx == 0, "cgemv: zero stride");
    if (m == 0 || n == 0)
        return;

    std::int64_t srows = order == Order::RowMajor ? m : n;
    std::int64_t scols = order == Order::RowMajor ? n : m;
    fatalIf(alpha != cfloat{} && lda < scols, "cgemv: lda too small");

    Canon c = canonicalize(order, trans, srows, scols);
    std::int64_t ylen = c.rows;
    std::int64_t xlen = c.cols;

    std::int64_t ybase = incy >= 0 ? 0 : (1 - ylen) * incy;
    std::int64_t xbase = incx >= 0 ? 0 : (1 - xlen) * incx;

    if (beta == cfloat{}) {
        for (std::int64_t i = 0; i < ylen; ++i)
            y[ybase + i * incy] = cfloat{};
    } else if (beta != cfloat{1.0f, 0.0f}) {
        for (std::int64_t i = 0; i < ylen; ++i)
            y[ybase + i * incy] *= beta;
    }
    if (alpha == cfloat{})
        return;

    auto maybe_conj = [&](cfloat v) { return c.conj ? std::conj(v) : v; };

    const KernelTuning &tun = kernelTuning();
    const int threads = tun.threadsFor(2 * ylen * xlen);

    const simd::Kernels *sk = simd::active();

    if (!c.transposed) {
        // Vector levels accumulate the row dot in 4 complex f64 lanes
        // (an upgrade over the legacy float accumulator, consistent
        // across the non-scalar ISA levels); scalar keeps legacy bits.
        const bool vecRow = sk != nullptr && incx == 1;
        parallelFor(0, ylen, threads, 1,
                    [&](std::int64_t rb, std::int64_t re) {
                        for (std::int64_t i = rb; i < re; ++i) {
                            cfloat acc{};
                            const cfloat *row = a + i * lda;
                            if (vecRow) {
                                double re_ = 0.0;
                                double im_ = 0.0;
                                sk->cdot(
                                    xlen,
                                    reinterpret_cast<const float *>(row),
                                    reinterpret_cast<const float *>(x),
                                    c.conj, &re_, &im_);
                                acc = cfloat{static_cast<float>(re_),
                                             static_cast<float>(im_)};
                            } else {
                                std::int64_t jx = xbase;
                                for (std::int64_t j = 0; j < xlen;
                                     ++j, jx += incx)
                                    acc += maybe_conj(row[j]) * x[jx];
                            }
                            y[ybase + i * incy] += alpha * acc;
                        }
                    });
    } else {
        // Same y-slice ownership scheme as sgemv's transposed path.
        const bool vecCol = sk != nullptr && incy == 1 && !c.conj;
        parallelFor(0, ylen, threads, 256,
                    [&](std::int64_t lb, std::int64_t le) {
                        std::int64_t jx = xbase;
                        for (std::int64_t j = 0; j < xlen;
                             ++j, jx += incx) {
                            cfloat ax = alpha * x[jx];
                            if (ax == cfloat{})
                                continue;
                            const cfloat *row = a + j * lda;
                            if (vecCol) {
                                sk->caxpy(
                                    le - lb, ax.real(), ax.imag(),
                                    reinterpret_cast<const float *>(row
                                                                    + lb),
                                    reinterpret_cast<float *>(y + lb));
                                continue;
                            }
                            for (std::int64_t i = lb; i < le; ++i)
                                y[ybase + i * incy] +=
                                    ax * maybe_conj(row[i]);
                        }
                    });
    }
}

void
sger(Order order, std::int64_t m, std::int64_t n, float alpha,
     const float *x, std::int64_t incx, const float *y, std::int64_t incy,
     float *a, std::int64_t lda)
{
    fatalIf(m < 0 || n < 0, "sger: negative dimension");
    fatalIf(incx == 0 || incy == 0, "sger: zero stride");
    if (m == 0 || n == 0 || alpha == 0.0f)
        return;

    // Canonical row-major walk: column-major A is the transpose, so swap
    // the roles of x and y.
    if (order == Order::ColMajor) {
        sger(Order::RowMajor, n, m, alpha, y, incy, x, incx, a, lda);
        return;
    }
    fatalIf(lda < n, "sger: lda too small");
    std::int64_t ix = incx >= 0 ? 0 : (1 - m) * incx;
    for (std::int64_t i = 0; i < m; ++i, ix += incx) {
        float ax = alpha * x[ix];
        float *row = a + i * lda;
        std::int64_t jy = incy >= 0 ? 0 : (1 - n) * incy;
        for (std::int64_t j = 0; j < n; ++j, jy += incy)
            row[j] += ax * y[jy];
    }
}

} // namespace mealib::mkl
