/**
 * @file
 * Level-3 BLAS. MEALib leaves these compute-bounded routines on the host
 * (paper Table 4: cherk and ctrsm stay on the multicore), but the STAP
 * application needs functionally correct implementations, so MiniMKL
 * provides cache-blocked versions.
 */

#ifndef MEALIB_MINIMKL_BLAS3_HH
#define MEALIB_MINIMKL_BLAS3_HH

#include <cstdint>

#include "minimkl/types.hh"

namespace mealib::mkl {

/** C := alpha*op(A)*op(B) + beta*C (single precision, blocked). */
void sgemm(Order order, Transpose transa, Transpose transb, std::int64_t m,
           std::int64_t n, std::int64_t k, float alpha, const float *a,
           std::int64_t lda, const float *b, std::int64_t ldb, float beta,
           float *c, std::int64_t ldc);

/** C := alpha*op(A)*op(B) + beta*C (complex single precision). */
void cgemm(Order order, Transpose transa, Transpose transb, std::int64_t m,
           std::int64_t n, std::int64_t k, cfloat alpha, const cfloat *a,
           std::int64_t lda, const cfloat *b, std::int64_t ldb, cfloat beta,
           cfloat *c, std::int64_t ldc);

/**
 * Hermitian rank-k update: C := alpha*A*A^H + beta*C (trans == NoTrans)
 * or C := alpha*A^H*A + beta*C (trans == ConjTrans). Only the @p uplo
 * triangle of C is referenced/updated; alpha and beta are real as in the
 * CBLAS interface.
 */
void cherk(Order order, Uplo uplo, Transpose trans, std::int64_t n,
           std::int64_t k, float alpha, const cfloat *a, std::int64_t lda,
           float beta, cfloat *c, std::int64_t ldc);

/**
 * Triangular solve with multiple right-hand sides:
 * op(A)*X = alpha*B (side == Left) or X*op(A) = alpha*B (side == Right);
 * B is overwritten with X.
 */
void ctrsm(Order order, Side side, Uplo uplo, Transpose trans, Diag diag,
           std::int64_t m, std::int64_t n, cfloat alpha, const cfloat *a,
           std::int64_t lda, cfloat *b, std::int64_t ldb);

/** Single-precision real TRSM (same semantics as ctrsm). */
void strsm(Order order, Side side, Uplo uplo, Transpose trans, Diag diag,
           std::int64_t m, std::int64_t n, float alpha, const float *a,
           std::int64_t lda, float *b, std::int64_t ldb);

} // namespace mealib::mkl

#endif // MEALIB_MINIMKL_BLAS3_HH
