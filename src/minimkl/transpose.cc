#include "minimkl/transpose.hh"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"

namespace mealib::mkl {

namespace {

inline float
conjOf(float v)
{
    return v;
}

inline cfloat
conjOf(cfloat v)
{
    return std::conj(v);
}

/**
 * Row-major core of B := alpha * op(A). Column-major callers flip
 * rows/cols (a column-major matrix is its row-major transpose).
 *
 * The transposing path is tiled in KernelTuning::tile-sized square
 * blocks (the default 32x32 float tile pair fits in L1) and the tile
 * row-bands are statically partitioned across the thread pool: band i
 * only writes columns [ii, ie) of B, so bands never overlap.
 */
template <typename T>
void
omatcopyRowMajor(Transpose trans, std::int64_t rows, std::int64_t cols,
                 T alpha, const T *a, std::int64_t lda, T *b,
                 std::int64_t ldb)
{
    fatalIf(rows < 0 || cols < 0, "omatcopy: negative dimension");
    fatalIf(lda < cols, "omatcopy: lda too small");
    const bool t = trans == Transpose::Trans ||
                   trans == Transpose::ConjTrans;
    const bool cj = trans == Transpose::ConjTrans;
    fatalIf(ldb < (t ? rows : cols), "omatcopy: ldb too small");

    const KernelTuning &tun = kernelTuning();
    const int threads = tun.threadsFor(rows * cols);

    const simd::Kernels *sk = simd::active();

    if (!t) {
        parallelFor(0, rows, threads, 1,
                    [&](std::int64_t rb, std::int64_t re) {
                        for (std::int64_t i = rb; i < re; ++i) {
                            const T *ra = a + i * lda;
                            T *rb2 = b + i * ldb;
                            if constexpr (std::is_same_v<T, float>) {
                                if (!cj && sk) {
                                    sk->scopyScale(cols, alpha, ra, rb2);
                                    continue;
                                }
                            }
                            if (cj) {
                                for (std::int64_t j = 0; j < cols; ++j)
                                    rb2[j] = alpha * conjOf(ra[j]);
                            } else {
                                for (std::int64_t j = 0; j < cols; ++j)
                                    rb2[j] = alpha * ra[j];
                            }
                        }
                    });
        return;
    }

    // Blocked transpose: both the read and the write stay within one
    // BS x BS tile, so each side touches at most BS distinct rows. The
    // float tiles run through the 8x8 in-register transpose kernel
    // (bit-identical to the elementwise loop).
    const std::int64_t BS = tun.tile;
    const std::int64_t rowTiles = (rows + BS - 1) / BS;
    parallelFor(0, rowTiles, threads, 1,
                [&](std::int64_t tb, std::int64_t te) {
                    for (std::int64_t rt = tb; rt < te; ++rt) {
                        std::int64_t ii = rt * BS;
                        std::int64_t ie = std::min(ii + BS, rows);
                        for (std::int64_t jj = 0; jj < cols; jj += BS) {
                            std::int64_t je = std::min(jj + BS, cols);
                            if constexpr (std::is_same_v<T, float>) {
                                if (!cj && sk) {
                                    sk->somatTile(ie - ii, je - jj, alpha,
                                                  a + ii * lda + jj, lda,
                                                  b + jj * ldb + ii, ldb);
                                    continue;
                                }
                            }
                            for (std::int64_t i = ii; i < ie; ++i) {
                                const T *ra = a + i * lda;
                                for (std::int64_t j = jj; j < je; ++j) {
                                    T v = cj ? conjOf(ra[j]) : ra[j];
                                    b[j * ldb + i] = alpha * v;
                                }
                            }
                        }
                    }
                });
}

template <typename T>
void
omatcopyDispatch(Order order, Transpose trans, std::int64_t rows,
                 std::int64_t cols, T alpha, const T *a, std::int64_t lda,
                 T *b, std::int64_t ldb)
{
    if (order == Order::RowMajor)
        omatcopyRowMajor(trans, rows, cols, alpha, a, lda, b, ldb);
    else
        omatcopyRowMajor(trans, cols, rows, alpha, a, lda, b, ldb);
}

/** In-place core; square NoTrans/Trans fast paths, temp otherwise. */
template <typename T>
void
imatcopyDispatch(Order order, Transpose trans, std::int64_t rows,
                 std::int64_t cols, T alpha, T *ab, std::int64_t lda,
                 std::int64_t ldb)
{
    fatalIf(rows < 0 || cols < 0, "imatcopy: negative dimension");
    const bool t = trans == Transpose::Trans ||
                   trans == Transpose::ConjTrans;
    const bool cj = trans == Transpose::ConjTrans;

    // Storage-view dimensions (row-major walk).
    std::int64_t srows = order == Order::RowMajor ? rows : cols;
    std::int64_t scols = order == Order::RowMajor ? cols : rows;
    fatalIf(lda < scols, "imatcopy: lda too small");

    const KernelTuning &tun = kernelTuning();
    const int threads = tun.threadsFor(srows * scols);

    if (!t) {
        fatalIf(ldb < scols, "imatcopy: ldb too small");
        // NoTrans with lda != ldb would need a row repack; MKL requires
        // lda == ldb here and so do we.
        fatalIf(lda != ldb, "imatcopy: NoTrans requires lda == ldb");
        parallelFor(0, srows, threads, 1,
                    [&](std::int64_t rb, std::int64_t re) {
                        for (std::int64_t i = rb; i < re; ++i) {
                            T *r = ab + i * lda;
                            for (std::int64_t j = 0; j < scols; ++j)
                                r[j] = alpha * (cj ? conjOf(r[j]) : r[j]);
                        }
                    });
        return;
    }

    const std::int64_t BS = tun.tile;
    if (srows == scols && lda == ldb) {
        // Square in-place transpose by swapping across the diagonal,
        // tile pair by tile pair. Band rt swaps tiles (rt, jj >= rt)
        // with their mirrors, so two bands never touch the same tile
        // pair: band rt writes row-band rt plus the mirrored column-band
        // rt, and those mirrors live in rows jj > rt of columns
        // [rt*BS, ...) that no other band's swap reaches.
        std::int64_t n = srows;
        const std::int64_t tiles = (n + BS - 1) / BS;
        const simd::Kernels *sk = simd::active();
        parallelFor(0, tiles, threads, 1,
                    [&](std::int64_t tb, std::int64_t te) {
                        // Scratch for the SIMD tile-pair swap (sized once
                        // per band; both mirrors are fully read into the
                        // transposing kernel before either is written).
                        std::vector<T> t1, t2;
                        for (std::int64_t rt = tb; rt < te; ++rt) {
                            std::int64_t ii = rt * BS;
                            std::int64_t ie = std::min(ii + BS, n);
                            for (std::int64_t jj = ii; jj < n; jj += BS) {
                                std::int64_t je = std::min(jj + BS, n);
                                if constexpr (std::is_same_v<T, float>) {
                                    if (!cj && sk && jj > ii) {
                                        const std::int64_t h = ie - ii;
                                        const std::int64_t w = je - jj;
                                        t1.resize(static_cast<std::size_t>(
                                            h * w));
                                        t2.resize(static_cast<std::size_t>(
                                            h * w));
                                        // t1[j'][i'] = alpha*A[ii+i'][jj+j']
                                        sk->somatTile(h, w, alpha,
                                                      ab + ii * lda + jj,
                                                      lda, t1.data(), h);
                                        // t2[i'][j'] = alpha*A[jj+j'][ii+i']
                                        sk->somatTile(w, h, alpha,
                                                      ab + jj * lda + ii,
                                                      lda, t2.data(), w);
                                        for (std::int64_t r = 0; r < h;
                                             ++r)
                                            sk->scopy(
                                                w, t2.data() + r * w,
                                                ab + (ii + r) * lda + jj);
                                        for (std::int64_t r = 0; r < w;
                                             ++r)
                                            sk->scopy(
                                                h, t1.data() + r * h,
                                                ab + (jj + r) * lda + ii);
                                        continue;
                                    }
                                }
                                for (std::int64_t i = ii; i < ie; ++i) {
                                    std::int64_t j0 = std::max(jj, i);
                                    for (std::int64_t j = j0; j < je;
                                         ++j) {
                                        T x = ab[i * lda + j];
                                        T y = ab[j * lda + i];
                                        ab[i * lda + j] =
                                            alpha * (cj ? conjOf(y) : y);
                                        ab[j * lda + i] =
                                            alpha * (cj ? conjOf(x) : x);
                                    }
                                }
                            }
                        }
                    });
        return;
    }

    // Rectangular (or re-strided) in-place transpose via a temporary.
    std::int64_t orows = scols, ocols = srows;
    fatalIf(ldb < ocols, "imatcopy: ldb too small for transposed shape");
    std::vector<T> tmp(static_cast<std::size_t>(orows * ocols));
    omatcopyRowMajor(cj ? Transpose::ConjTrans : Transpose::Trans, srows,
                     scols, alpha, ab, lda, tmp.data(), ocols);
    parallelFor(0, orows, threads, 1,
                [&](std::int64_t rb, std::int64_t re) {
                    for (std::int64_t i = rb; i < re; ++i)
                        std::copy(tmp.begin() + i * ocols,
                                  tmp.begin() + (i + 1) * ocols,
                                  ab + i * ldb);
                });
}

} // namespace

void
somatcopy(Order order, Transpose trans, std::int64_t rows,
          std::int64_t cols, float alpha, const float *a, std::int64_t lda,
          float *b, std::int64_t ldb)
{
    omatcopyDispatch(order, trans, rows, cols, alpha, a, lda, b, ldb);
}

void
comatcopy(Order order, Transpose trans, std::int64_t rows,
          std::int64_t cols, cfloat alpha, const cfloat *a,
          std::int64_t lda, cfloat *b, std::int64_t ldb)
{
    omatcopyDispatch(order, trans, rows, cols, alpha, a, lda, b, ldb);
}

void
simatcopy(Order order, Transpose trans, std::int64_t rows,
          std::int64_t cols, float alpha, float *ab, std::int64_t lda,
          std::int64_t ldb)
{
    imatcopyDispatch(order, trans, rows, cols, alpha, ab, lda, ldb);
}

void
cimatcopy(Order order, Transpose trans, std::int64_t rows,
          std::int64_t cols, cfloat alpha, cfloat *ab, std::int64_t lda,
          std::int64_t ldb)
{
    imatcopyDispatch(order, trans, rows, cols, alpha, ab, lda, ldb);
}

} // namespace mealib::mkl
