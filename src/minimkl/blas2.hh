/**
 * @file
 * Level-2 BLAS: matrix-vector operations (Table 1: GEMV).
 */

#ifndef MEALIB_MINIMKL_BLAS2_HH
#define MEALIB_MINIMKL_BLAS2_HH

#include <cstdint>

#include "minimkl/types.hh"

namespace mealib::mkl {

/**
 * y := alpha*op(A)*x + beta*y for a dense m x n matrix A with leading
 * dimension @p lda in storage order @p order.
 */
void sgemv(Order order, Transpose trans, std::int64_t m, std::int64_t n,
           float alpha, const float *a, std::int64_t lda, const float *x,
           std::int64_t incx, float beta, float *y, std::int64_t incy);

/** Complex single-precision GEMV (needed by complex pipelines). */
void cgemv(Order order, Transpose trans, std::int64_t m, std::int64_t n,
           cfloat alpha, const cfloat *a, std::int64_t lda, const cfloat *x,
           std::int64_t incx, cfloat beta, cfloat *y, std::int64_t incy);

/** Rank-1 update A := alpha*x*y^T + A (row-major unsupported dims fatal). */
void sger(Order order, std::int64_t m, std::int64_t n, float alpha,
          const float *x, std::int64_t incx, const float *y,
          std::int64_t incy, float *a, std::int64_t lda);

} // namespace mealib::mkl

#endif // MEALIB_MINIMKL_BLAS2_HH
