#include "minimkl/resample.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mealib::mkl {

namespace {

/** Clamped sample fetch. */
template <typename T>
inline T
at(const T *in, std::int64_t n, std::int64_t i)
{
    i = std::clamp<std::int64_t>(i, 0, n - 1);
    return in[i];
}

template <typename T>
T
interpOne(const T *in, std::int64_t n, double x, InterpKind kind)
{
    x = std::clamp(x, 0.0, static_cast<double>(n - 1));
    const std::int64_t i0 = static_cast<std::int64_t>(std::floor(x));
    const double f = x - static_cast<double>(i0);

    switch (kind) {
      case InterpKind::Linear: {
        T a = at(in, n, i0);
        T b = at(in, n, i0 + 1);
        return a + (b - a) * static_cast<float>(f);
      }
      case InterpKind::CatmullRom: {
        T p0 = at(in, n, i0 - 1);
        T p1 = at(in, n, i0);
        T p2 = at(in, n, i0 + 1);
        T p3 = at(in, n, i0 + 2);
        float t = static_cast<float>(f);
        float t2 = t * t, t3 = t2 * t;
        return p1 * (1.0f - 2.5f * t2 + 1.5f * t3) +
               p0 * (-0.5f * t + t2 - 0.5f * t3) +
               p2 * (0.5f * t + 2.0f * t2 - 1.5f * t3) +
               p3 * (-0.5f * t2 + 0.5f * t3);
      }
      case InterpKind::Sinc8: {
        // 8-tap Hann-windowed sinc centred on x.
        T acc{};
        double wsum = 0.0;
        for (std::int64_t k = i0 - 3; k <= i0 + 4; ++k) {
            double d = x - static_cast<double>(k);
            double sinc =
                d == 0.0 ? 1.0 : std::sin(M_PI * d) / (M_PI * d);
            double hann =
                0.5 * (1.0 + std::cos(M_PI * d / 4.0)); // |d| <= 4
            double w = sinc * hann;
            acc += at(in, n, k) * static_cast<float>(w);
            wsum += w;
        }
        // Renormalize so constants are reproduced exactly at the edges.
        return acc * static_cast<float>(1.0 / wsum);
      }
    }
    panic("interpOne: unknown kind");
}

template <typename T>
void
resampleUniform(const T *in, std::int64_t n, T *out, std::int64_t m,
                InterpKind kind)
{
    fatalIf(n <= 0 || m <= 0, "resample: empty signal");
    if (n == 1) {
        for (std::int64_t j = 0; j < m; ++j)
            out[j] = in[0];
        return;
    }
    const double step = m > 1 ? static_cast<double>(n - 1) /
                                    static_cast<double>(m - 1)
                              : 0.0;
    for (std::int64_t j = 0; j < m; ++j)
        out[j] = interpOne(in, n, static_cast<double>(j) * step, kind);
}

template <typename T>
void
interpolateAt(const T *in, std::int64_t n, const double *x,
              std::int64_t m, T *out, InterpKind kind)
{
    fatalIf(n <= 0, "interpolate: empty signal");
    for (std::int64_t j = 0; j < m; ++j)
        out[j] = interpOne(in, n, x[j], kind);
}

} // namespace

void
resample1d(const float *in, std::int64_t n, float *out, std::int64_t m,
           InterpKind kind)
{
    resampleUniform(in, n, out, m, kind);
}

void
resample1dc(const cfloat *in, std::int64_t n, cfloat *out, std::int64_t m,
            InterpKind kind)
{
    resampleUniform(in, n, out, m, kind);
}

void
interpolate1dAt(const float *in, std::int64_t n, const double *x,
                std::int64_t m, float *out, InterpKind kind)
{
    interpolateAt(in, n, x, m, out, kind);
}

void
interpolate1dAtC(const cfloat *in, std::int64_t n, const double *x,
                 std::int64_t m, cfloat *out, InterpKind kind)
{
    interpolateAt(in, n, x, m, out, kind);
}

} // namespace mealib::mkl
