#include "minimkl/naive.hh"

#include <cmath>

#include "common/logging.hh"

namespace mealib::mkl::naive {

void
saxpy(std::int64_t n, float a, const float *x, float *y)
{
    for (std::int64_t i = 0; i < n; ++i)
        y[i] = a * x[i] + y[i];
}

float
sdot(std::int64_t n, const float *x, const float *y)
{
    float acc = 0.0f;
    for (std::int64_t i = 0; i < n; ++i)
        acc += x[i] * y[i];
    return acc;
}

void
sgemv(std::int64_t m, std::int64_t n, const float *a, std::int64_t lda,
      const float *x, float *y)
{
    for (std::int64_t i = 0; i < m; ++i) {
        float acc = 0.0f;
        for (std::int64_t j = 0; j < n; ++j)
            acc += a[i * lda + j] * x[j];
        y[i] = acc;
    }
}

void
transpose(std::int64_t rows, std::int64_t cols, const float *a, float *b)
{
    for (std::int64_t i = 0; i < rows; ++i)
        for (std::int64_t j = 0; j < cols; ++j)
            b[j * rows + i] = a[i * cols + j];
}

void
spmv(const CsrMatrix &a, const float *x, float *y)
{
    for (std::int64_t r = 0; r < a.rows; ++r) {
        float acc = 0.0f;
        for (std::int64_t k = a.rowPtr[r]; k < a.rowPtr[r + 1]; ++k)
            acc += a.vals[k] * x[a.colIdx[k]];
        y[r] = acc;
    }
}

void
fftRecursive(const cfloat *in, cfloat *out, std::int64_t n, int dir)
{
    fatalIf(n <= 0 || (n & (n - 1)) != 0,
            "fftRecursive: n must be a power of two");
    if (n == 1) {
        out[0] = in[0];
        return;
    }
    // Split even/odd, recurse, combine — O(n log n) time but O(n log n)
    // extra space; fine as an oracle.
    std::vector<cfloat> even(static_cast<std::size_t>(n / 2));
    std::vector<cfloat> odd(static_cast<std::size_t>(n / 2));
    std::vector<cfloat> fe(static_cast<std::size_t>(n / 2));
    std::vector<cfloat> fo(static_cast<std::size_t>(n / 2));
    for (std::int64_t i = 0; i < n / 2; ++i) {
        even[static_cast<std::size_t>(i)] = in[2 * i];
        odd[static_cast<std::size_t>(i)] = in[2 * i + 1];
    }
    fftRecursive(even.data(), fe.data(), n / 2, dir);
    fftRecursive(odd.data(), fo.data(), n / 2, dir);
    for (std::int64_t k = 0; k < n / 2; ++k) {
        double a = 2.0 * M_PI * static_cast<double>(k) /
                   static_cast<double>(n) * static_cast<double>(dir);
        cfloat w{static_cast<float>(std::cos(a)),
                 static_cast<float>(std::sin(a))};
        cfloat t = w * fo[static_cast<std::size_t>(k)];
        out[k] = fe[static_cast<std::size_t>(k)] + t;
        out[k + n / 2] = fe[static_cast<std::size_t>(k)] - t;
    }
}

void
resampleNearest(const float *in, std::int64_t n, float *out,
                std::int64_t m)
{
    for (std::int64_t j = 0; j < m; ++j) {
        double x = m > 1 ? static_cast<double>(j) *
                               static_cast<double>(n - 1) /
                               static_cast<double>(m - 1)
                         : 0.0;
        auto i = static_cast<std::int64_t>(x + 0.5);
        if (i > n - 1)
            i = n - 1;
        out[j] = in[i];
    }
}

} // namespace mealib::mkl::naive
