/**
 * @file
 * Sparse BLAS: CSR storage, sparse matrix-vector multiply (Table 1:
 * SPMV), and matrix generators.
 *
 * The paper evaluates SPMV on `rgg_n_2_20` from the UF Sparse Matrix
 * Collection. That matrix is the adjacency matrix of a random geometric
 * graph; since the collection is not bundled, randomGeometricGraph()
 * generates one with the same construction (n points in the unit square,
 * edges below a distance threshold), which exercises the identical
 * irregular-gather access pattern.
 */

#ifndef MEALIB_MINIMKL_SPARSE_HH
#define MEALIB_MINIMKL_SPARSE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "minimkl/types.hh"

namespace mealib::mkl {

/** Compressed-sparse-row matrix, 0-based indexing. */
struct CsrMatrix
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::vector<std::int64_t> rowPtr; //!< size rows+1
    std::vector<std::int32_t> colIdx; //!< size nnz
    std::vector<float> vals;          //!< size nnz

    std::int64_t
    nnz() const
    {
        return static_cast<std::int64_t>(vals.size());
    }

    /** Average nonzeros per row. */
    double
    avgDegree() const
    {
        return rows > 0 ? static_cast<double>(nnz()) /
                              static_cast<double>(rows)
                        : 0.0;
    }

    /** fatal() if the structure is inconsistent. */
    void validate() const;
};

/** y := A*x for CSR A. x has A.cols elements, y has A.rows. */
void scsrmv(const CsrMatrix &a, const float *x, float *y);

/**
 * Raw-pointer SpMV over CSR arrays that live in simulated physical
 * memory (used by the SPMV accelerator's functional executor, which must
 * not copy the matrix out of the arena).
 */
void scsrmvRaw(std::int64_t rows, const std::int64_t *rowPtr,
               const std::int32_t *colIdx, const float *vals,
               const float *x, float *y);

/** y := A^T*x for CSR A (scatter formulation). */
void scsrmvTrans(const CsrMatrix &a, const float *x, float *y);

/**
 * SpMV over classic 1-based MKL CSR arrays (square matrix), used by the
 * mkl_scsrgemv shim so legacy callers get the parallel path without the
 * matrix being copied into a CsrMatrix first.
 */
void scsrmvRaw1(std::int64_t rows, const std::int32_t *rowPtr,
                const std::int32_t *colIdx, const float *vals,
                const float *x, float *y);

/** Transposed variant of scsrmvRaw1 (y := A^T*x, 1-based arrays). */
void scsrmvTransRaw1(std::int64_t rows, const std::int32_t *rowPtr,
                     const std::int32_t *colIdx, const float *vals,
                     const float *x, float *y);

/** Triplet (COO) entry used by the builder. */
struct Triplet
{
    std::int64_t row;
    std::int64_t col;
    float val;
};

/** Build CSR from unordered triplets; duplicates are summed. */
CsrMatrix csrFromTriplets(std::int64_t rows, std::int64_t cols,
                          std::vector<Triplet> triplets);

/**
 * Random geometric graph adjacency matrix (UF `rgg_n_2_*` family):
 * @p n points uniform in the unit square, symmetric edges where the
 * Euclidean distance is below a radius chosen so the expected average
 * degree is @p avgDegree. Edge weights are uniform in (0, 1].
 */
CsrMatrix randomGeometricGraph(std::int64_t n, double avgDegree, Rng &rng);

/** Symmetric banded test matrix with @p halfBandwidth off-diagonals. */
CsrMatrix bandMatrix(std::int64_t n, std::int64_t halfBandwidth);

/**
 * Parse a Matrix Market (.mtx) coordinate-format body into CSR. The UF
 * Sparse Matrix Collection — the paper's source for rgg_n_2_20 — ships
 * this format. Supports `real`/`integer`/`pattern` fields and the
 * `general`/`symmetric` symmetry modes; fatal() on malformed input.
 */
CsrMatrix readMatrixMarket(const std::string &text);

/** Serialize CSR to Matrix Market coordinate format (general, real). */
std::string writeMatrixMarket(const CsrMatrix &m);

} // namespace mealib::mkl

#endif // MEALIB_MINIMKL_SPARSE_HH
