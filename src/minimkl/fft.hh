/**
 * @file
 * Complex single-precision FFT with an FFTW-guru-style plan interface.
 *
 * The STAP program in the paper (Listing 1) drives FFTW through
 * fftwf_plan_guru_dft: rank-0 plans perform pure strided data copies
 * (mapped by MEALib to the RESHP accelerator) and rank-1/2 plans perform
 * batched transforms (mapped to the FFT accelerator). This module
 * implements that interface subset over an iterative Stockham autosort
 * kernel (power-of-two sizes, unnormalized, FFTW sign conventions).
 */

#ifndef MEALIB_MINIMKL_FFT_HH
#define MEALIB_MINIMKL_FFT_HH

#include <cstdint>
#include <vector>

#include "minimkl/types.hh"

namespace mealib::mkl {

/** Transform direction; values follow FFTW (forward = -1). */
enum class FftDirection : int
{
    Forward = -1,
    Inverse = +1,
};

/** One transform or loop dimension (FFTW guru iodim). */
struct FftDim
{
    std::int64_t n;  //!< extent
    std::int64_t is; //!< input stride in elements
    std::int64_t os; //!< output stride in elements
};

/**
 * A prepared transform: @p dims are the transform dimensions (rank 0, 1
 * or 2; extents must be powers of two) and @p loops are batch dimensions
 * iterated around it. Twiddle tables are precomputed at plan time.
 */
class FftPlan
{
  public:
    /**
     * Build a guru-style plan. Rank 0 (empty @p dims) is a strided copy.
     * fatal() on non-power-of-two transform extents or rank > 2.
     */
    FftPlan(std::vector<FftDim> dims, std::vector<FftDim> loops,
            FftDirection dir);

    /** Convenience: 1D contiguous transform of length @p n. */
    static FftPlan dft1d(std::int64_t n, FftDirection dir);

    /**
     * Convenience: @p howmany contiguous transforms of length @p n with
     * batch distance @p dist (elements).
     */
    static FftPlan dft1dBatched(std::int64_t n, std::int64_t howmany,
                                std::int64_t dist, FftDirection dir);

    /** Convenience: row-major 2D transform of @p rows x @p cols. */
    static FftPlan dft2d(std::int64_t rows, std::int64_t cols,
                         FftDirection dir);

    /**
     * Execute on @p in / @p out. in == out (in-place) is supported;
     * partially overlapping distinct buffers are not.
     */
    void execute(const cfloat *in, cfloat *out) const;

    /** Transform points per batch iteration (1 for rank 0 copies). */
    std::int64_t transformPoints() const { return points_; }

    /** Number of batch iterations. */
    std::int64_t batchCount() const { return batch_; }

    /** Standard 5*N*log2(N) flop estimate for the whole plan. */
    double flopEstimate() const;

    /** True for rank-0 (pure data motion) plans. */
    bool isCopy() const { return dims_.empty(); }

    /** Transform dimensions (rank 0-2), outermost first. */
    const std::vector<FftDim> &dims() const { return dims_; }

    FftDirection direction() const { return dir_; }

  private:
    /** Contiguous power-of-two Stockham kernel; result ends in @p x. */
    void kernel(cfloat *x, cfloat *y, std::int64_t n) const;

    /** Strided 1D transform via gather / kernel / scatter. */
    void dft1dStrided(const cfloat *in, std::int64_t is, cfloat *out,
                      std::int64_t os, std::int64_t n) const;

    /** Apply the rank-dims transform at one batch offset pair. */
    void applyOne(const cfloat *in, cfloat *out) const;

    std::vector<FftDim> dims_;
    std::vector<FftDim> loops_;
    FftDirection dir_;
    std::int64_t points_ = 1;
    std::int64_t batch_ = 1;
    std::vector<cfloat> twiddles_; //!< exp(dir*2*pi*i*k/nmax), k < nmax/2
    std::int64_t twiddleN_ = 0;    //!< nmax the table was built for
};

/** Scale @p buf by 1/n (apply after an Inverse transform to round-trip). */
void fftNormalize(cfloat *buf, std::int64_t count, std::int64_t n);

/**
 * Real-to-complex forward FFT of @p n real samples (n a power of two,
 * n >= 2) into n/2+1 spectrum bins (the remaining bins are the
 * conjugate mirror). Uses the half-size complex-packing algorithm, so
 * it costs one n/2-point complex FFT plus O(n) unpacking.
 */
void rfft(const float *in, std::int64_t n, cfloat *out);

/**
 * Complex-to-real inverse of rfft(): @p in holds n/2+1 bins of a
 * conjugate-symmetric spectrum; @p out receives n real samples scaled
 * by 1/n (i.e. irfft(rfft(x)) == x).
 */
void irfft(const cfloat *in, std::int64_t n, float *out);

/** O(n^2) reference DFT used by tests and tiny problems. */
void naiveDft(const cfloat *in, cfloat *out, std::int64_t n,
              FftDirection dir);

} // namespace mealib::mkl

#endif // MEALIB_MINIMKL_FFT_HH
