/**
 * @file
 * Deliberately straightforward reference implementations.
 *
 * Two uses: (1) differential oracles for the optimized MiniMKL kernels in
 * the test suite, and (2) the "original code" side of the paper's Figure 1,
 * which compares handwritten loops against library implementations.
 */

#ifndef MEALIB_MINIMKL_NAIVE_HH
#define MEALIB_MINIMKL_NAIVE_HH

#include <cstdint>
#include <vector>

#include "minimkl/sparse.hh"
#include "minimkl/types.hh"

namespace mealib::mkl::naive {

/** Textbook axpy loop. */
void saxpy(std::int64_t n, float a, const float *x, float *y);

/** Textbook dot product (single-precision accumulation). */
float sdot(std::int64_t n, const float *x, const float *y);

/** Textbook row-major gemv: y := A*x. */
void sgemv(std::int64_t m, std::int64_t n, const float *a,
           std::int64_t lda, const float *x, float *y);

/** Unblocked transpose: b := a^T (a is rows x cols row-major). */
void transpose(std::int64_t rows, std::int64_t cols, const float *a,
               float *b);

/** Textbook CSR SpMV. */
void spmv(const CsrMatrix &a, const float *x, float *y);

/** Recursive radix-2 Cooley-Tukey DFT (power-of-two n, out-of-place). */
void fftRecursive(const cfloat *in, cfloat *out, std::int64_t n,
                  int dir);

/** Nearest-neighbour "resampler" a non-specialist would write. */
void resampleNearest(const float *in, std::int64_t n, float *out,
                     std::int64_t m);

} // namespace mealib::mkl::naive

#endif // MEALIB_MINIMKL_NAIVE_HH
