/**
 * @file
 * Matrix transpose / copy with scaling (MKL's mkl_?imatcopy and
 * mkl_?omatcopy family; Table 1: RESHP). Cache-blocked kernels: the
 * blocked walk is also the access pattern the data-reshape unit on the
 * DRAM logic layer performs in hardware.
 */

#ifndef MEALIB_MINIMKL_TRANSPOSE_HH
#define MEALIB_MINIMKL_TRANSPOSE_HH

#include <cstdint>

#include "minimkl/types.hh"

namespace mealib::mkl {

/**
 * Out-of-place scaled copy/transpose: B := alpha * op(A).
 * A is rows x cols in @p order; op per @p trans (Conj* applies to
 * complex overloads only).
 */
void somatcopy(Order order, Transpose trans, std::int64_t rows,
               std::int64_t cols, float alpha, const float *a,
               std::int64_t lda, float *b, std::int64_t ldb);

/** Complex out-of-place scaled copy/transpose. */
void comatcopy(Order order, Transpose trans, std::int64_t rows,
               std::int64_t cols, cfloat alpha, const cfloat *a,
               std::int64_t lda, cfloat *b, std::int64_t ldb);

/**
 * In-place scaled transpose: AB := alpha * op(AB). Square matrices are
 * transposed by blocked swaps; rectangular in-place transposes go through
 * a temporary (as MKL is permitted to).
 */
void simatcopy(Order order, Transpose trans, std::int64_t rows,
               std::int64_t cols, float alpha, float *ab, std::int64_t lda,
               std::int64_t ldb);

/** Complex in-place scaled transpose. */
void cimatcopy(Order order, Transpose trans, std::int64_t rows,
               std::int64_t cols, cfloat alpha, cfloat *ab,
               std::int64_t lda, std::int64_t ldb);

} // namespace mealib::mkl

#endif // MEALIB_MINIMKL_TRANSPOSE_HH
