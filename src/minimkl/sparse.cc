#include "minimkl/sparse.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"

namespace mealib::mkl {

namespace {

/**
 * Split [0, rows) into at most @p parts row ranges of roughly equal
 * nonzero count using the CSR row-pointer prefix sums. Skewed matrices
 * (a few dense rows) would starve most threads under naive equal-row
 * partitioning; equal-nnz bounds keep the per-thread work balanced.
 * @p PtrT is the row-pointer element type (int64 CSR, int32 legacy),
 * @p base its index base (0 or 1).
 */
template <typename PtrT>
std::vector<std::int64_t>
nnzBalancedBounds(std::int64_t rows, const PtrT *rowPtr, PtrT base,
                  int parts)
{
    std::vector<std::int64_t> bounds;
    bounds.reserve(static_cast<std::size_t>(parts) + 1);
    bounds.push_back(0);
    const std::int64_t nnz = rowPtr[rows] - base;
    for (int p = 1; p < parts; ++p) {
        const PtrT target =
            static_cast<PtrT>(base + nnz * p / parts);
        const PtrT *it =
            std::lower_bound(rowPtr, rowPtr + rows + 1, target);
        std::int64_t r = it - rowPtr;
        bounds.push_back(std::clamp<std::int64_t>(r, bounds.back(), rows));
    }
    bounds.push_back(rows);
    return bounds;
}

/** Core row-range SpMV shared by the CSR and raw entry points. */
template <typename PtrT>
void
spmvRows(std::int64_t rb, std::int64_t re, const PtrT *rowPtr, PtrT base,
         const std::int32_t *colIdx, const float *vals, const float *x,
         float *y)
{
    const simd::Kernels *sk = simd::active();
    for (std::int64_t r = rb; r < re; ++r) {
        double acc = 0.0;
        const std::int64_t k0 = rowPtr[r] - base;
        const std::int64_t k1 = rowPtr[r + 1] - base;
        // Short rows stay scalar: the lane-by-lane x gather only pays
        // off once a row spans several full vectors. The cutoff is a
        // fixed constant (row length only), so results remain
        // bit-identical across thread counts and vector ISA levels.
        if (sk && k1 - k0 >= 32) {
            acc = sk->csrdot(k1 - k0, vals + k0, colIdx + k0,
                             static_cast<std::int32_t>(base), x);
        } else {
            for (std::int64_t k = k0; k < k1; ++k)
                acc += static_cast<double>(vals[k]) *
                       static_cast<double>(x[colIdx[k] - base]);
        }
        y[r] = static_cast<float>(acc);
    }
}

/** nnz-balanced parallel driver over any row-pointer flavour. */
template <typename PtrT>
void
spmvParallel(std::int64_t rows, const PtrT *rowPtr, PtrT base,
             const std::int32_t *colIdx, const float *vals,
             const float *x, float *y)
{
    if (rows <= 0)
        return;
    const std::int64_t nnz = rowPtr[rows] - base;
    const KernelTuning &t = kernelTuning();
    const int threads = t.threadsFor(2 * nnz);
    if (threads <= 1) {
        spmvRows<PtrT>(0, rows, rowPtr, base, colIdx, vals, x, y);
        return;
    }
    // Rows are partitioned by nnz share; every row is still summed
    // sequentially by exactly one thread, so the output is bit-identical
    // to the serial walk regardless of the partition.
    std::vector<std::int64_t> bounds =
        nnzBalancedBounds(rows, rowPtr, base, threads);
    const int parts = static_cast<int>(bounds.size()) - 1;
    parallelFor(0, parts, parts, 1,
                [&](std::int64_t pb, std::int64_t pe) {
                    for (std::int64_t p = pb; p < pe; ++p)
                        spmvRows<PtrT>(bounds[static_cast<std::size_t>(p)],
                                       bounds[static_cast<std::size_t>(
                                           p + 1)],
                                       rowPtr, base, colIdx, vals, x, y);
                });
}

} // namespace

void
CsrMatrix::validate() const
{
    fatalIf(rows < 0 || cols < 0, "csr: negative dimension");
    fatalIf(rowPtr.size() != static_cast<std::size_t>(rows) + 1,
            "csr: rowPtr size ", rowPtr.size(), " != rows+1");
    fatalIf(rowPtr.front() != 0, "csr: rowPtr[0] != 0");
    fatalIf(rowPtr.back() != nnz(), "csr: rowPtr[rows] != nnz");
    fatalIf(colIdx.size() != vals.size(), "csr: colIdx/vals size mismatch");
    for (std::int64_t r = 0; r < rows; ++r) {
        fatalIf(rowPtr[r] > rowPtr[r + 1], "csr: rowPtr not monotone at ",
                r);
        for (std::int64_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
            fatalIf(colIdx[k] < 0 || colIdx[k] >= cols,
                    "csr: column index out of range at entry ", k);
            fatalIf(k > rowPtr[r] && colIdx[k] <= colIdx[k - 1],
                    "csr: columns not strictly increasing in row ", r);
        }
    }
}

void
scsrmv(const CsrMatrix &a, const float *x, float *y)
{
    spmvParallel<std::int64_t>(a.rows, a.rowPtr.data(), 0,
                               a.colIdx.data(), a.vals.data(), x, y);
}

void
scsrmvRaw(std::int64_t rows, const std::int64_t *rowPtr,
          const std::int32_t *colIdx, const float *vals, const float *x,
          float *y)
{
    spmvParallel<std::int64_t>(rows, rowPtr, 0, colIdx, vals, x, y);
}

void
scsrmvRaw1(std::int64_t rows, const std::int32_t *rowPtr,
           const std::int32_t *colIdx, const float *vals, const float *x,
           float *y)
{
    spmvParallel<std::int32_t>(rows, rowPtr, 1, colIdx, vals, x, y);
}

void
scsrmvTransRaw1(std::int64_t rows, const std::int32_t *rowPtr,
                const std::int32_t *colIdx, const float *vals,
                const float *x, float *y)
{
    // The scatter formulation writes y[colIdx[k]] across rows, so the
    // transposed walk stays serial: parallelizing it would need
    // per-thread output buffers whose merge order depends on the thread
    // count, breaking bit-reproducibility. The classic interface
    // assumes a square matrix, so y has `rows` elements.
    std::memset(y, 0, static_cast<std::size_t>(rows) * sizeof(float));
    for (std::int64_t r = 0; r < rows; ++r) {
        float xv = x[r];
        if (xv == 0.0f)
            continue;
        for (std::int64_t k = rowPtr[r] - 1; k < rowPtr[r + 1] - 1; ++k)
            y[colIdx[k] - 1] += vals[k] * xv;
    }
}

void
scsrmvTrans(const CsrMatrix &a, const float *x, float *y)
{
    std::memset(y, 0, static_cast<std::size_t>(a.cols) * sizeof(float));
    for (std::int64_t r = 0; r < a.rows; ++r) {
        float xv = x[r];
        if (xv == 0.0f)
            continue;
        for (std::int64_t k = a.rowPtr[r]; k < a.rowPtr[r + 1]; ++k)
            y[a.colIdx[k]] += a.vals[k] * xv;
    }
}

CsrMatrix
csrFromTriplets(std::int64_t rows, std::int64_t cols,
                std::vector<Triplet> triplets)
{
    for (const Triplet &t : triplets) {
        fatalIf(t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols,
                "triplet (", t.row, ",", t.col, ") out of range");
    }
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });

    CsrMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr.assign(static_cast<std::size_t>(rows) + 1, 0);

    for (std::size_t i = 0; i < triplets.size();) {
        std::size_t j = i;
        float sum = 0.0f;
        while (j < triplets.size() && triplets[j].row == triplets[i].row &&
               triplets[j].col == triplets[i].col) {
            sum += triplets[j].val;
            ++j;
        }
        m.colIdx.push_back(static_cast<std::int32_t>(triplets[i].col));
        m.vals.push_back(sum);
        m.rowPtr[static_cast<std::size_t>(triplets[i].row) + 1]++;
        i = j;
    }
    for (std::int64_t r = 0; r < rows; ++r)
        m.rowPtr[static_cast<std::size_t>(r) + 1] +=
            m.rowPtr[static_cast<std::size_t>(r)];
    return m;
}

CsrMatrix
randomGeometricGraph(std::int64_t n, double avgDegree, Rng &rng)
{
    fatalIf(n <= 0, "rgg: need at least one node");
    fatalIf(avgDegree < 0.0, "rgg: negative degree");

    // Expected degree of an interior node is n * pi * r^2.
    double radius = std::sqrt(avgDegree / (M_PI * static_cast<double>(n)));
    radius = std::min(radius, 1.0);

    struct Pt
    {
        float x, y;
    };
    std::vector<Pt> pts(static_cast<std::size_t>(n));
    for (auto &p : pts) {
        p.x = static_cast<float>(rng.uniform());
        p.y = static_cast<float>(rng.uniform());
    }

    // Bucket grid with cell size >= radius: neighbours lie in the 3x3
    // cell neighbourhood, making generation O(n * degree).
    std::int64_t grid = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(1.0 / std::max(radius, 1e-9)));
    grid = std::min<std::int64_t>(grid, 4096);
    double cell = 1.0 / static_cast<double>(grid);

    std::vector<std::vector<std::int32_t>> buckets(
        static_cast<std::size_t>(grid * grid));
    auto cellOf = [&](const Pt &p) {
        std::int64_t cx = std::min<std::int64_t>(
            grid - 1, static_cast<std::int64_t>(p.x / cell));
        std::int64_t cy = std::min<std::int64_t>(
            grid - 1, static_cast<std::int64_t>(p.y / cell));
        return cy * grid + cx;
    };
    for (std::int64_t i = 0; i < n; ++i)
        buckets[static_cast<std::size_t>(cellOf(pts[static_cast<
            std::size_t>(i)]))].push_back(static_cast<std::int32_t>(i));

    const float r2 = static_cast<float>(radius * radius);
    std::vector<Triplet> trip;
    for (std::int64_t i = 0; i < n; ++i) {
        const Pt &p = pts[static_cast<std::size_t>(i)];
        std::int64_t cx = std::min<std::int64_t>(
            grid - 1, static_cast<std::int64_t>(p.x / cell));
        std::int64_t cy = std::min<std::int64_t>(
            grid - 1, static_cast<std::int64_t>(p.y / cell));
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
            for (std::int64_t dx = -1; dx <= 1; ++dx) {
                std::int64_t nx = cx + dx, ny = cy + dy;
                if (nx < 0 || ny < 0 || nx >= grid || ny >= grid)
                    continue;
                for (std::int32_t j :
                     buckets[static_cast<std::size_t>(ny * grid + nx)]) {
                    if (j <= i)
                        continue; // emit each undirected edge once
                    const Pt &q = pts[static_cast<std::size_t>(j)];
                    float ddx = p.x - q.x, ddy = p.y - q.y;
                    if (ddx * ddx + ddy * ddy <= r2) {
                        float w =
                            static_cast<float>(rng.uniform()) * 0.999f +
                            0.001f;
                        trip.push_back({i, j, w});
                        trip.push_back({j, i, w});
                    }
                }
            }
        }
    }
    return csrFromTriplets(n, n, std::move(trip));
}

CsrMatrix
readMatrixMarket(const std::string &text)
{
    std::istringstream in(text);
    std::string line;

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    fatalIf(!std::getline(in, line), "mtx: empty input");
    std::istringstream hs(line);
    std::string banner, object, format, field, symmetry;
    hs >> banner >> object >> format >> field >> symmetry;
    fatalIf(banner != "%%MatrixMarket", "mtx: missing banner");
    fatalIf(object != "matrix" || format != "coordinate",
            "mtx: only coordinate-format matrices are supported");
    bool pattern = field == "pattern";
    fatalIf(!pattern && field != "real" && field != "integer",
            "mtx: unsupported field '", field, "'");
    bool symmetric = symmetry == "symmetric";
    fatalIf(!symmetric && symmetry != "general",
            "mtx: unsupported symmetry '", symmetry, "'");

    // Skip comments, read the size line.
    do {
        fatalIf(!std::getline(in, line), "mtx: missing size line");
    } while (!line.empty() && line[0] == '%');
    std::istringstream ss(line);
    std::int64_t rows = 0, cols = 0, entries = 0;
    ss >> rows >> cols >> entries;
    fatalIf(rows <= 0 || cols <= 0 || entries < 0,
            "mtx: bad size line '", line, "'");

    std::vector<Triplet> trip;
    trip.reserve(static_cast<std::size_t>(entries) * (symmetric ? 2 : 1));
    for (std::int64_t e = 0; e < entries; ++e) {
        do {
            fatalIf(!std::getline(in, line), "mtx: truncated after ", e,
                    " of ", entries, " entries");
        } while (line.empty() || line[0] == '%');
        std::istringstream es(line);
        std::int64_t r = 0, c = 0;
        double v = 1.0;
        es >> r >> c;
        if (!pattern)
            es >> v;
        fatalIf(es.fail(), "mtx: bad entry '", line, "'");
        fatalIf(r < 1 || r > rows || c < 1 || c > cols,
                "mtx: entry (", r, ",", c, ") out of range");
        trip.push_back({r - 1, c - 1, static_cast<float>(v)});
        if (symmetric && r != c)
            trip.push_back({c - 1, r - 1, static_cast<float>(v)});
    }
    return csrFromTriplets(rows, cols, std::move(trip));
}

std::string
writeMatrixMarket(const CsrMatrix &m)
{
    std::ostringstream os;
    os << "%%MatrixMarket matrix coordinate real general\n";
    os << "% written by MEALib MiniMKL\n";
    os << m.rows << " " << m.cols << " " << m.nnz() << "\n";
    for (std::int64_t r = 0; r < m.rows; ++r)
        for (std::int64_t k = m.rowPtr[r]; k < m.rowPtr[r + 1]; ++k)
            os << r + 1 << " " << m.colIdx[k] + 1 << " "
               << m.vals[static_cast<std::size_t>(k)] << "\n";
    return os.str();
}

CsrMatrix
bandMatrix(std::int64_t n, std::int64_t halfBandwidth)
{
    fatalIf(n <= 0, "band: need at least one row");
    std::vector<Triplet> trip;
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t lo = std::max<std::int64_t>(0, i - halfBandwidth);
        std::int64_t hi = std::min<std::int64_t>(n - 1, i + halfBandwidth);
        for (std::int64_t j = lo; j <= hi; ++j) {
            float v = i == j ? 2.0f : -1.0f / static_cast<float>(
                                                 1 + std::llabs(i - j));
            trip.push_back({i, j, v});
        }
    }
    return csrFromTriplets(n, n, std::move(trip));
}

} // namespace mealib::mkl
