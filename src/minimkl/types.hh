/**
 * @file
 * Shared types for the MiniMKL functional library.
 *
 * MiniMKL stands in for Intel MKL 11.2 in this reproduction: it provides
 * functionally correct implementations behind MKL-shaped interfaces. The
 * clean C++ API lives in mealib::mkl; C-style shims with the exact MKL /
 * FFTW / CBLAS names live in compat.hh for the legacy-code examples.
 */

#ifndef MEALIB_MINIMKL_TYPES_HH
#define MEALIB_MINIMKL_TYPES_HH

#include <complex>
#include <cstdint>

namespace mealib::mkl {

/** Single-precision complex, the element type of the STAP pipeline. */
using cfloat = std::complex<float>;

/** Matrix storage order (CBLAS-compatible values). */
enum class Order : int
{
    RowMajor = 101,
    ColMajor = 102,
};

/** Transposition request (CBLAS-compatible values). */
enum class Transpose : int
{
    NoTrans = 111,
    Trans = 112,
    ConjTrans = 113,
};

/** Triangular side selector (CBLAS-compatible values). */
enum class Side : int
{
    Left = 141,
    Right = 142,
};

/** Upper/lower triangle selector (CBLAS-compatible values). */
enum class Uplo : int
{
    Upper = 121,
    Lower = 122,
};

/** Unit-diagonal selector (CBLAS-compatible values). */
enum class Diag : int
{
    NonUnit = 131,
    Unit = 132,
};

} // namespace mealib::mkl

#endif // MEALIB_MINIMKL_TYPES_HH
