#include "runtime/alloc.hh"

#include "common/logging.hh"

namespace mealib::runtime {

ContigAllocator::ContigAllocator(Addr base, std::uint64_t size,
                                 std::uint64_t align)
    : base_(base), size_(size), align_(align)
{
    fatalIf(size == 0, "allocator: zero-sized region");
    fatalIf(align == 0 || (align & (align - 1)) != 0,
            "allocator: alignment must be a power of two");
    freeList_[base_] = size_;
}

Status
ContigAllocator::tryAlloc(std::uint64_t bytes, Addr *out)
{
    if (bytes == 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "allocator: zero-byte allocation");
    std::uint64_t need = (bytes + align_ - 1) & ~(align_ - 1);

    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        Addr hole = it->first;
        std::uint64_t hole_size = it->second;
        Addr aligned = (hole + align_ - 1) & ~(align_ - 1);
        std::uint64_t lead = aligned - hole;
        if (hole_size < lead + need)
            continue;

        freeList_.erase(it);
        if (lead > 0)
            freeList_[hole] = lead;
        std::uint64_t tail = hole_size - lead - need;
        if (tail > 0)
            freeList_[aligned + need] = tail;

        allocated_[aligned] = need;
        inUse_ += need;
        *out = aligned;
        return Status();
    }
    return Status::error(
        ErrorCode::Exhausted,
        "allocator: out of contiguous memory (requested " +
            std::to_string(bytes) + " bytes, largest hole " +
            std::to_string(largestFreeBlock()) + ")");
}

Status
ContigAllocator::tryFree(Addr addr, std::uint64_t *freedBytes)
{
    auto it = allocated_.find(addr);
    if (it == allocated_.end())
        return Status::error(
            ErrorCode::InvalidArgument,
            "allocator: free of unallocated address " +
                std::to_string(addr));
    std::uint64_t sz = it->second;
    allocated_.erase(it);
    inUse_ -= sz;
    if (freedBytes != nullptr)
        *freedBytes = sz;

    // Insert the hole and coalesce with neighbours.
    auto [pos, inserted] = freeList_.emplace(addr, sz);
    panicIf(!inserted, "allocator: double-free slipped through");

    // Merge with successor.
    auto next = std::next(pos);
    if (next != freeList_.end() && pos->first + pos->second == next->first) {
        pos->second += next->second;
        freeList_.erase(next);
    }
    // Merge with predecessor.
    if (pos != freeList_.begin()) {
        auto prev = std::prev(pos);
        if (prev->first + prev->second == pos->first) {
            prev->second += pos->second;
            freeList_.erase(pos);
        }
    }
    return Status();
}

Addr
ContigAllocator::alloc(std::uint64_t bytes)
{
    Addr out = 0;
    tryAlloc(bytes, &out).orThrow();
    return out;
}

void
ContigAllocator::free(Addr addr)
{
    tryFree(addr).orThrow();
}

std::uint64_t
ContigAllocator::largestFreeBlock() const
{
    std::uint64_t best = 0;
    for (const auto &[addr, sz] : freeList_)
        best = best > sz ? best : sz;
    return best;
}

std::uint64_t
ContigAllocator::sizeOf(Addr addr) const
{
    auto it = allocated_.find(addr);
    fatalIf(it == allocated_.end(), "allocator: unknown address ", addr);
    return it->second;
}

} // namespace mealib::runtime
