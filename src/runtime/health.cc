#include "runtime/health.hh"

#include <cmath>

#include "common/logging.hh"

namespace mealib::runtime {

const char *
name(StackHealth state)
{
    switch (state) {
      case StackHealth::Healthy:
        return "healthy";
      case StackHealth::Quarantined:
        return "quarantined";
      case StackHealth::Probation:
        return "probation";
      case StackHealth::Dead:
        return "dead";
      default:
        panic("name: bad stack health state");
    }
}

Status
HealthConfig::validate() const
{
    if (std::isnan(quarantineThreshold) || quarantineThreshold < 0.0 ||
        quarantineThreshold > 1.0) {
        return Status::error(
            ErrorCode::InvalidArgument,
            "health config: quarantine threshold " +
                std::to_string(quarantineThreshold) +
                " outside [0, 1] (0 disables the monitor)");
    }
    if (!enabled())
        return Status();
    if (windowCommands == 0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "health config: sliding window needs at "
                             "least one command (windowCommands == 0)");
    }
    if (canaryCommands == 0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "health config: probation needs at least "
                             "one canary (canaryCommands == 0)");
    }
    return Status();
}

StackHealthMonitor::StackHealthMonitor(const HealthConfig &cfg,
                                       unsigned numStacks)
    : cfg_(cfg), slots_(numStacks)
{
    cfg_.validate().orThrow();
}

StackHealth
StackHealthMonitor::state(unsigned stack) const
{
    fatalIf(stack >= slots_.size(), "health state: stack ", stack,
            " out of range (", slots_.size(), " stacks)");
    return slots_[stack].state;
}

double
StackHealthMonitor::score(unsigned stack) const
{
    fatalIf(stack >= slots_.size(), "health score: stack ", stack,
            " out of range (", slots_.size(), " stacks)");
    const Slot &s = slots_[stack];
    if (s.window.empty())
        return 0.0;
    return static_cast<double>(s.faults) /
           static_cast<double>(s.window.size());
}

unsigned
StackHealthMonitor::strikes(unsigned stack) const
{
    fatalIf(stack >= slots_.size(), "health strikes: stack ", stack,
            " out of range (", slots_.size(), " stacks)");
    return slots_[stack].strikes;
}

std::vector<unsigned>
StackHealthMonitor::beginCommand(std::uint64_t cmd)
{
    std::vector<unsigned> changed;
    if (!enabled())
        return changed;
    for (unsigned st = 0; st < slots_.size(); ++st) {
        Slot &slot = slots_[st];
        if (slot.state == StackHealth::Quarantined &&
            cmd >= slot.quarantinedAt + cfg_.probationAfterCommands) {
            slot.state = StackHealth::Probation;
            slot.cleanCanaries = 0;
            changed.push_back(st);
        }
    }
    return changed;
}

unsigned
StackHealthMonitor::canaryTarget() const
{
    if (!enabled())
        return kNone;
    for (unsigned st = 0; st < slots_.size(); ++st)
        if (slots_[st].state == StackHealth::Probation)
            return st;
    return kNone;
}

void
StackHealthMonitor::quarantine(Slot &slot, std::uint64_t cmd)
{
    slot.state = StackHealth::Quarantined;
    slot.quarantinedAt = cmd;
    slot.strikes++;
    quarantines_++;
}

StackHealthMonitor::Action
StackHealthMonitor::recordOutcome(unsigned stack, std::uint64_t cmd,
                                  bool faulted)
{
    fatalIf(stack >= slots_.size(), "recordOutcome: stack ", stack,
            " out of range (", slots_.size(), " stacks)");
    if (!enabled())
        return Action::None;
    Slot &slot = slots_[stack];
    if (slot.state == StackHealth::Dead)
        return Action::None;

    slot.window.push_back(faulted);
    if (faulted)
        slot.faults++;
    while (slot.window.size() > cfg_.windowCommands) {
        if (slot.window.front())
            slot.faults--;
        slot.window.pop_front();
    }

    switch (slot.state) {
      case StackHealth::Healthy:
        if (slot.window.size() >= cfg_.minSamples &&
            static_cast<double>(slot.faults) >=
                cfg_.quarantineThreshold *
                    static_cast<double>(slot.window.size())) {
            quarantine(slot, cmd);
            return Action::Quarantine;
        }
        return Action::None;

      case StackHealth::Probation:
        if (faulted) {
            // The canary faulted: back to quarantine, one strike
            // closer to permanent death.
            quarantine(slot, cmd);
            if (cfg_.maxStrikes > 0 && slot.strikes >= cfg_.maxStrikes)
                return Action::Die;
            return Action::Quarantine;
        }
        if (++slot.cleanCanaries >= cfg_.canaryCommands) {
            // Clean streak: the stack has recovered. Forget the flaky
            // window so the next quarantine needs fresh evidence.
            slot.state = StackHealth::Healthy;
            slot.window.clear();
            slot.faults = 0;
            slot.cleanCanaries = 0;
            readmissions_++;
            return Action::Readmit;
        }
        return Action::None;

      case StackHealth::Quarantined:
        // Explicit accSubmitOn() can still land commands here; their
        // outcomes keep feeding the window but cause no transition —
        // the cooldown clock decides when probation starts.
        return Action::None;

      default:
        return Action::None;
    }
}

void
StackHealthMonitor::markDead(unsigned stack)
{
    fatalIf(stack >= slots_.size(), "markDead: stack ", stack,
            " out of range (", slots_.size(), " stacks)");
    slots_[stack].state = StackHealth::Dead;
}

void
StackHealthMonitor::reset()
{
    for (Slot &slot : slots_)
        slot = Slot{};
    quarantines_ = 0;
    readmissions_ = 0;
}

} // namespace mealib::runtime
