/**
 * @file
 * Completion events and hazard intervals of the asynchronous
 * command-queue engine.
 *
 * Every accSubmit() returns an Event. The runtime derives, from the
 * plan's Parameter-Region operands, the physical byte intervals the
 * descriptor will read and write (conservatively expanded over LOOP
 * strides); overlapping intervals between in-flight commands induce
 * RAW/WAR/WAW dependencies that serialize the dependent command after
 * its producers on the simulated timeline. Event::wait() advances the
 * host track to the command's DONE time (the Listing-2 poll, made
 * non-blocking at submit time).
 */

#ifndef MEALIB_RUNTIME_EVENT_HH
#define MEALIB_RUNTIME_EVENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/descriptor.hh"
#include "accel/layer.hh"
#include "common/status.hh"
#include "common/units.hh"

namespace mealib::runtime {

class MealibRuntime;

/**
 * Terminal states of a submitted command (docs/FAULTS.md). The runtime
 * resolves the state at submit time on the simulated timeline:
 *
 *   DONE       clean completion on the scheduled stack;
 *   RETRIED    completed on an accelerator after >= 1 retried attempt
 *              (transient faults absorbed by the retry policy);
 *   RESUMED    completed on an accelerator after resuming from a
 *              committed checkpoint (mid-span retry, or a drain to a
 *              surviving stack after stack death) instead of
 *              re-executing from iteration zero;
 *   FELL_BACK  completed, but on the host via the minimkl fallback path
 *              (retry budget exhausted, watchdog fired, or every stack
 *              failed);
 *   TIMED_OUT  the watchdog fired and host fallback was disabled — the
 *              command did not complete;
 *   FAILED     permanent failure with fallback disabled, or an invalid
 *              submission (e.g. a stack index out of range).
 */
enum class EventState
{
    Pending = 0,
    Done,
    Retried,
    Resumed,
    FellBack,
    TimedOut,
    Failed,
};

/** Printable state name ("done", "fell_back", ...). */
const char *name(EventState state);

/** @return whether @p state means the command's results are usable. */
bool completed(EventState state);

/** Half-open physical byte range touched by a descriptor operand. */
struct AccessInterval
{
    Addr lo = 0;        //!< first byte touched
    Addr hi = 0;        //!< one past the last byte touched
    bool write = false; //!< written (out operand) vs read

    bool
    overlaps(const AccessInterval &o) const
    {
        return lo < o.hi && o.lo < hi;
    }

    /** Two accesses conflict when they overlap and either writes. */
    bool
    conflictsWith(const AccessInterval &o) const
    {
        return (write || o.write) && overlaps(o);
    }
};

/**
 * Conservative access intervals of @p prog: one interval per COMP
 * operand, expanded over the covering LOOP's strides (min/max effective
 * address plus the operand's per-iteration footprint).
 */
std::vector<AccessInterval>
accessIntervals(const accel::DescriptorProgram &prog);

/**
 * Whether every COMP in @p prog can be re-executed from scratch (or
 * from a checkpoint) without changing its results: no accumulating
 * AXPY/GEMV (beta != 0 reads the previous output) and no write operand
 * overlapping a read operand (in-place updates). Mirrors the dispatch
 * layer's OpDesc::rerunSafe for descriptor programs; the checkpoint
 * layer only journals rerunSafe programs.
 */
bool rerunSafe(const accel::DescriptorProgram &prog);

namespace detail {

/** Shared completion record of one submitted command. */
struct EventState
{
    std::uint64_t id = 0;       //!< submission order, 1-based
    unsigned stack = 0;         //!< stack the command executed on
    double submitSeconds = 0.0; //!< host-track time of the submit
    double startSeconds = 0.0;  //!< accelerator start (hazards resolved)
    double finishSeconds = 0.0; //!< accelerator DONE time
    std::uint64_t epoch = 0;    //!< runtime accounting epoch at submit
    bool waited = false;        //!< host has observed DONE
    accel::ExecStats stats;     //!< full cost of this invocation
    /** Terminal state (qualified: the injected class name shadows the
     * enum inside this struct). */
    mealib::runtime::EventState state =
        mealib::runtime::EventState::Pending;
    Status status;              //!< non-ok for TimedOut/Failed
    bool onHost = false;        //!< completed via host fallback
    double spanSeconds = 0.0;   //!< accelerator occupancy (for drains)
    std::vector<AccessInterval> intervals; //!< hazard footprint copy

    // --- checkpoint/replay (docs/FAULTS.md) ----------------------------
    std::uint64_t command = 0;  //!< global submission index
    /** Span fraction between committed checkpoints (0 = program is not
     * checkpointed: rerun-unsafe, or checkpointing disabled). */
    double checkpointStep = 0.0;
};

} // namespace detail

/**
 * Handle to one submitted command. Copyable; all copies share the
 * completion record. A default-constructed Event is invalid.
 */
class Event
{
  public:
    Event() = default;

    /** Block the host track until DONE. @return the invocation stats. */
    const accel::ExecStats &wait();

    bool valid() const { return state_ != nullptr; }

    /** Terminal state of the command (see EventState). */
    EventState state() const;

    /** Error detail: ok() unless state() is TIMED_OUT or FAILED. */
    const Status &status() const;

    /** Failed attempts absorbed by retry before completion. */
    unsigned retries() const;

    /** Stack the command was scheduled on. */
    unsigned stack() const;

    /** Accelerator-track start time, seconds on the simulated clock. */
    double startSeconds() const;

    /** Accelerator-track completion time on the simulated clock. */
    double finishSeconds() const;

    /** Invocation stats (valid as soon as the submit returns). */
    const accel::ExecStats &stats() const;

  private:
    friend class MealibRuntime;
    Event(MealibRuntime *rt, std::shared_ptr<detail::EventState> state)
        : rt_(rt), state_(std::move(state))
    {
    }

    MealibRuntime *rt_ = nullptr;
    std::shared_ptr<detail::EventState> state_;
};

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_EVENT_HH
