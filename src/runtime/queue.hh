/**
 * @file
 * Per-stack command queues of the asynchronous execution engine.
 *
 * Each memory stack owns one in-order queue. The host enqueues
 * submitted plans; a queue admits at most `depth` outstanding commands
 * (the hardware's command-buffer size), so a submit against a full
 * queue stalls the host track until the oldest command retires — the
 * queue-depth amortization knob swept by bench/ablation_queue.
 *
 * Commands on one queue execute back to back (the stack's decode unit
 * is busy for the whole invocation); overlap comes from *different*
 * stacks running their queues concurrently while the host keeps
 * issuing.
 */

#ifndef MEALIB_RUNTIME_QUEUE_HH
#define MEALIB_RUNTIME_QUEUE_HH

#include <cstdint>
#include <deque>

namespace mealib::runtime {

/** One per-stack in-order command queue on the simulated timeline. */
class CommandQueue
{
  public:
    explicit CommandQueue(unsigned depth);

    /**
     * Earliest host-track time (>= @p now) at which a new command may
     * be enqueued: @p now while a slot is free, otherwise the retire
     * time of the command that frees one.
     */
    double admitSeconds(double now) const;

    /** Record a command occupying the stack over [start, finish). */
    void push(double start, double finish);

    /** Retire every command whose finish time is <= @p now. */
    void retireUpTo(double now);

    /**
     * Stack-failure drain (docs/FAULTS.md): cancel every command still
     * occupying the stack past @p now. Queued-but-unstarted commands
     * are removed outright; a command mid-execution at @p now is
     * truncated to end there (the failure killed it). Busy accounting
     * shrinks to match. @return the number of commands cancelled or
     * truncated — the runtime re-homes those on survivors or the host.
     */
    std::size_t cancelFrom(double now);

    /** Time the stack finishes its last enqueued command. */
    double busyUntilSeconds() const { return busyUntil_; }

    /** Cumulative seconds the stack spent executing commands. */
    double busySeconds() const { return busySeconds_; }

    /** Commands ever enqueued on this queue. */
    std::uint64_t submitted() const { return submitted_; }

    /** Commands currently outstanding (enqueued, not retired). */
    std::size_t outstanding() const { return inflight_.size(); }

    unsigned depth() const { return depth_; }

    /** Drop all state (used by MealibRuntime::resetAccounting). */
    void reset();

  private:
    /** One outstanding command's occupancy of the stack. */
    struct Slot
    {
        double start;
        double finish;
    };

    unsigned depth_;
    /** Outstanding commands, oldest first. In-order issue on one stack
     * keeps finish times monotonically non-decreasing. */
    std::deque<Slot> inflight_;
    double busyUntil_ = 0.0;
    double busySeconds_ = 0.0;
    std::uint64_t submitted_ = 0;
};

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_QUEUE_HH
