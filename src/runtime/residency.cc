#include "runtime/residency.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace mealib::runtime {

void
IntervalSet::insert(Addr lo, Addr hi)
{
    if (hi <= lo)
        return;
    // Merge every range overlapping or adjacent to [lo, hi).
    auto it = ranges_.upper_bound(lo);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= lo) {
            lo = prev->first;
            hi = std::max(hi, prev->second);
            it = ranges_.erase(prev);
        }
    }
    while (it != ranges_.end() && it->first <= hi) {
        hi = std::max(hi, it->second);
        it = ranges_.erase(it);
    }
    ranges_.emplace(lo, hi);
}

void
IntervalSet::erase(Addr lo, Addr hi)
{
    if (hi <= lo || ranges_.empty())
        return;
    auto it = ranges_.upper_bound(lo);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > lo)
            it = prev;
    }
    while (it != ranges_.end() && it->first < hi) {
        const Addr rlo = it->first;
        const Addr rhi = it->second;
        it = ranges_.erase(it);
        if (rlo < lo)
            ranges_.emplace(rlo, lo);
        if (rhi > hi) {
            ranges_.emplace(hi, rhi);
            break;
        }
    }
}

std::uint64_t
IntervalSet::coveredBytes(Addr lo, Addr hi) const
{
    if (hi <= lo || ranges_.empty())
        return 0;
    std::uint64_t covered = 0;
    auto it = ranges_.upper_bound(lo);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > lo)
            it = prev;
    }
    for (; it != ranges_.end() && it->first < hi; ++it) {
        const Addr a = std::max(lo, it->first);
        const Addr b = std::min(hi, it->second);
        if (b > a)
            covered += b - a;
    }
    return covered;
}

void
ResidencyTracker::commit(const std::vector<AccessInterval> &intervals,
                         bool verified)
{
    for (const AccessInterval &iv : intervals) {
        if (iv.hi <= iv.lo)
            continue;
        flushClean_.insert(iv.lo, iv.hi);
        if (verified)
            verifyClean_.insert(iv.lo, iv.hi);
        else if (iv.write)
            verifyClean_.erase(iv.lo, iv.hi);
    }
}

void
ResidencyTracker::hostWrite(Addr lo, Addr hi)
{
    flushClean_.erase(lo, hi);
    verifyClean_.erase(lo, hi);
}

void
ResidencyTracker::invalidateWrites(
    const std::vector<AccessInterval> &intervals)
{
    for (const AccessInterval &iv : intervals)
        if (iv.write)
            hostWrite(iv.lo, iv.hi);
}

void
ResidencyTracker::invalidateAll(
    const std::vector<AccessInterval> &intervals)
{
    for (const AccessInterval &iv : intervals)
        hostWrite(iv.lo, iv.hi);
}

void
ResidencyTracker::dropRange(Addr lo, Addr hi)
{
    flushClean_.erase(lo, hi);
    verifyClean_.erase(lo, hi);
}

void
ResidencyTracker::reset()
{
    flushClean_.clear();
    verifyClean_.clear();
}

std::uint64_t
ResidencyTracker::flushCleanReadBytes(
    const std::vector<AccessInterval> &intervals) const
{
    std::uint64_t clean = 0;
    for (const AccessInterval &iv : intervals)
        if (!iv.write)
            clean += flushClean_.coveredBytes(iv.lo, iv.hi);
    return clean;
}

std::uint64_t
ResidencyTracker::readBytes(const std::vector<AccessInterval> &intervals)
{
    std::uint64_t bytes = 0;
    for (const AccessInterval &iv : intervals)
        if (!iv.write && iv.hi > iv.lo)
            bytes += iv.hi - iv.lo;
    return bytes;
}

std::uint64_t
ResidencyTracker::verifyCleanBytes(
    const std::vector<AccessInterval> &intervals) const
{
    std::uint64_t clean = 0;
    for (const AccessInterval &iv : intervals)
        clean += verifyClean_.coveredBytes(iv.lo, iv.hi);
    return clean;
}

bool
residencyFromEnv()
{
    const char *v = std::getenv("MEALIB_RESIDENCY");
    if (v == nullptr || *v == '\0')
        return false;
    return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0 &&
           std::strcmp(v, "false") != 0;
}

} // namespace mealib::runtime
