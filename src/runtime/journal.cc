#include "runtime/journal.hh"

#include <algorithm>
#include <cmath>

namespace mealib::runtime {

Status
CheckpointConfig::validate() const
{
    if (!std::isfinite(journalJPerByte) || journalJPerByte < 0.0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "checkpoint config: journal joules/byte "
                             "must be finite and >= 0");
    }
    return Status();
}

void
ReplayJournal::record(const CheckpointRecord &rec)
{
    log_.push_back(rec);
    std::vector<double> &fr = byCommand_[rec.command];
    // Commit order is ascending within a command; keep it sorted even
    // if a retry re-commits an earlier position.
    fr.insert(std::upper_bound(fr.begin(), fr.end(), rec.fraction),
              rec.fraction);
}

double
ReplayJournal::lastFractionAtOrBefore(std::uint64_t command,
                                      double fraction) const
{
    auto it = byCommand_.find(command);
    if (it == byCommand_.end())
        return 0.0;
    const std::vector<double> &fr = it->second;
    auto ub = std::upper_bound(fr.begin(), fr.end(), fraction);
    if (ub == fr.begin())
        return 0.0;
    return *(ub - 1);
}

void
ReplayJournal::reset()
{
    log_.clear();
    byCommand_.clear();
}

} // namespace mealib::runtime
