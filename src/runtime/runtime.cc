#include "runtime/runtime.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace mealib::runtime {

RuntimeConfig::RuntimeConfig()
    : dram(dram::hmcStack()), hostCpu(host::haswell4770k()),
      mesh(noc::mealibMesh())
{
}

MealibRuntime::MealibRuntime(const RuntimeConfig &cfg)
    : cfg_(cfg), mem_(std::make_unique<dram::PhysMem>(cfg.backingBytes)),
      stack_(std::make_unique<dram::Stack>(cfg.dram)),
      layer_(std::make_unique<accel::AcceleratorLayer>(cfg.dram, cfg.mesh,
                                                       cfg.functional)),
      host_(cfg.hostCpu)
{
    fatalIf(cfg.numStacks == 0, "runtime: need at least one stack");
    const std::uint64_t span = cfg.backingBytes / cfg.numStacks;
    fatalIf(cfg.commandBytes >= span,
            "runtime: command space swallows stack 0");
    // The driver reserves the contiguous region and splits it: command
    // space first (monitored by the configuration unit), then one data
    // region per memory stack (Sec. 3.3: data should be allocated on
    // the accelerator's Local Memory Stack).
    cmdAlloc_ =
        std::make_unique<ContigAllocator>(0, cfg.commandBytes);
    for (unsigned st = 0; st < cfg.numStacks; ++st) {
        std::uint64_t base = static_cast<std::uint64_t>(st) * span +
                             (st == 0 ? cfg.commandBytes : 0);
        std::uint64_t size = span - (st == 0 ? cfg.commandBytes : 0);
        dataAllocs_.push_back(
            std::make_unique<ContigAllocator>(base, size));
    }
}

unsigned
MealibRuntime::stackOf(Addr paddr) const
{
    const std::uint64_t span = cfg_.backingBytes / cfg_.numStacks;
    unsigned st = static_cast<unsigned>(paddr / span);
    return st < cfg_.numStacks ? st : cfg_.numStacks - 1;
}

void *
MealibRuntime::memAlloc(std::uint64_t bytes)
{
    return memAllocOn(0, bytes);
}

void *
MealibRuntime::memAllocOn(unsigned stack, std::uint64_t bytes)
{
    fatalIf(stack >= cfg_.numStacks, "memAllocOn: stack ", stack,
            " out of range (", cfg_.numStacks, " stacks)");
    Addr p = dataAllocs_[stack]->alloc(bytes);
    return mem_->raw(p, bytes);
}

void
MealibRuntime::memFree(void *vptr)
{
    dataAllocs_[stackOf(physOf(vptr))]->free(physOf(vptr));
}

Addr
MealibRuntime::physOf(const void *vptr) const
{
    const std::uint8_t *base = mem_->raw(0, 0);
    const auto *p = static_cast<const std::uint8_t *>(vptr);
    fatalIf(p < base || p >= base + mem_->size(),
            "physOf: pointer is not in the mapped region");
    return static_cast<Addr>(p - base);
}

void *
MealibRuntime::virtOf(Addr paddr)
{
    return mem_->raw(paddr, 0);
}

AccPlanHandle
MealibRuntime::accPlan(const accel::DescriptorProgram &prog)
{
    Plan plan;
    plan.prog = prog;
    std::vector<std::uint8_t> image = accel::encode(prog);
    plan.descBytes = image.size();
    plan.descAddr = cmdAlloc_->alloc(plan.descBytes);
    std::memcpy(mem_->raw(plan.descAddr, plan.descBytes), image.data(),
                image.size());

    // Footprint the host may hold dirty in its caches: one iteration's
    // input operands per COMP (flushCost clamps at LLC capacity).
    double dirty = 0.0;
    for (const accel::Instr &in : prog.instrs)
        if (in.type == accel::Instr::Type::Comp)
            dirty += in.call.inputBytes();
    plan.dirtyBytes = static_cast<std::uint64_t>(
        std::min(dirty, 1.0e9));

    AccPlanHandle h = nextHandle_++;
    plans_.emplace(h, std::move(plan));
    return h;
}

unsigned
MealibRuntime::homeStackOf(const accel::DescriptorProgram &prog) const
{
    for (const accel::Instr &in : prog.instrs)
        if (in.type == accel::Instr::Type::Comp)
            return stackOf(in.call.out.base);
    return 0;
}

Cost
MealibRuntime::remotePenalty(const accel::DescriptorProgram &prog,
                             unsigned home, double *remoteBytes) const
{
    // Operands on Remote Memory Stacks cross the HMC-style serial
    // links: cheaper than going through the host, but far below the
    // internal TSV bandwidth (Sec. 3.3).
    double bytes = 0.0;
    accel::LoopSpec active;
    std::uint32_t remaining = 0;
    for (const accel::Instr &in : prog.instrs) {
        if (in.type == accel::Instr::Type::Loop) {
            active = in.loop;
            remaining = in.bodyCount;
            continue;
        }
        if (in.type == accel::Instr::Type::Comp) {
            accel::LoopSpec loop = remaining ? active
                                             : accel::LoopSpec{};
            for (const accel::OperandTraffic &t :
                 accel::operandTraffic(in.call, loop)) {
                if (stackOf(t.op->base) != home)
                    bytes += t.bytes;
            }
        }
        if (remaining && --remaining == 0)
            active = accel::LoopSpec{};
    }
    if (remoteBytes)
        *remoteBytes = bytes;

    Cost c;
    if (bytes > 0.0) {
        double link_bw = cfg_.dram.org.linkBandwidth;
        double internal_bw = cfg_.dram.peakInternalBandwidth();
        double slowdown = 1.0 / link_bw - 1.0 / internal_bw;
        c.seconds = bytes * (slowdown > 0.0 ? slowdown : 0.0);
        c.joules = bytes * cfg_.linkJPerByte;
    }
    return c;
}

accel::ExecStats
MealibRuntime::accExecute(AccPlanHandle handle)
{
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accExecute: unknown plan handle ",
            handle);
    Plan &plan = it->second;

    // 1. Coherence: write back dirty lines so the memory-side view is
    //    current (wbinvd, Sec. 3.5).
    Cost flush = host_.flushCost(plan.dirtyBytes);

    // 2. Descriptor copy + START write + DONE poll over the host links.
    double link_bw = cfg_.dram.org.linkBandwidth;
    Cost handshake;
    handshake.seconds = static_cast<double>(plan.descBytes) / link_bw +
                        2.0e-6; // two link round trips
    handshake.joules = cfg_.hostCpu.idleW * handshake.seconds;

    // 3. Hand the arrays to the accelerators (exclusive ownership).
    const std::uint8_t *img = mem_->raw(plan.descAddr, plan.descBytes);
    accel::writeCommand(mem_->raw(plan.descAddr, plan.descBytes),
                        plan.descBytes, accel::Command::Start);
    accel::DescriptorProgram prog =
        accel::decode(img, plan.descBytes);

    stack_->acquire(dram::Owner::Accelerator);
    accel::ExecStats es = layer_->execute(prog, *mem_);
    stack_->release(dram::Owner::Accelerator);

    // Inter-stack traffic for operands left on remote stacks.
    if (cfg_.numStacks > 1) {
        Cost remote = remotePenalty(prog, homeStackOf(prog),
                                    &es.remoteBytes);
        es.total += remote;
        es.remote = remote;
    }

    accel::writeCommand(mem_->raw(plan.descAddr, plan.descBytes),
                        plan.descBytes, accel::Command::Done);

    // Fold the software-side invocation costs into the stats.
    es.invocation += flush + handshake;
    es.total += flush + handshake;

    acct_.invocation += es.invocation;
    Cost accel_only{es.total.seconds - es.invocation.seconds,
                    es.total.joules - es.invocation.joules};
    acct_.accel += accel_only;
    for (const auto &[k, v] : es.timeByAccel.parts())
        acct_.timeByAccel.add(k, v);
    for (const auto &[k, v] : es.energyByAccel.parts())
        acct_.energyByAccel.add(k, v);
    return es;
}

void
MealibRuntime::accDestroy(AccPlanHandle handle)
{
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accDestroy: unknown plan handle ",
            handle);
    cmdAlloc_->free(it->second.descAddr);
    plans_.erase(it);
}

Cost
MealibRuntime::runOnHost(const host::KernelProfile &profile)
{
    Cost c = host_.run(profile);
    acct_.host += c;
    return c;
}

} // namespace mealib::runtime
