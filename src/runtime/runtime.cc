#include "runtime/runtime.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "hwmodel/profile.hh"

namespace mealib::runtime {

RuntimeConfig::RuntimeConfig() : RuntimeConfig(hwmodel::activeProfile())
{
    // Defaults come from the active machine profile (MEALIB_MACHINE /
    // hwmodel::setActiveMachine), so a profile switch reconfigures every
    // runtime constructed afterwards. Sessions use the explicit-profile
    // constructor instead and never touch the mutable global.
}

RuntimeConfig::RuntimeConfig(const hwmodel::MachineProfile &m)
{
    dram = m.stackDram;
    hostCpu = m.cpu;
    mesh = m.mesh;
    integrity.checksumSecondsPerByte =
        m.checksumBytesPerSecond > 0.0
            ? 1.0 / m.checksumBytesPerSecond
            : 0.0;
    integrity.checksumJPerByte = m.checksumJPerByte;
    checkpoint.journalJPerByte = m.journalJPerByte;
    residency.enabled = residencyFromEnv();
}

Status
RuntimeConfig::validate() const
{
    // A bad configuration is a caller error an embedding system must be
    // able to reject and survive — report InvalidArgument instead of
    // killing the process. The constructor turns a non-ok Status into a
    // MealibError via orThrow().
    auto err = [](std::string msg) {
        return Status::error(ErrorCode::InvalidArgument,
                             std::move(msg));
    };
    if (numStacks == 0) {
        return err("runtime config: need at least one memory stack "
                   "(numStacks == 0)");
    }
    if (backingBytes == 0) {
        return err("runtime config: backing arena must be non-empty "
                   "(backingBytes == 0)");
    }
    if (commandBytes == 0) {
        return err("runtime config: command space must be non-empty "
                   "(commandBytes == 0)");
    }
    const std::uint64_t span = backingBytes / numStacks;
    if (commandBytes >= span) {
        return err("runtime config: command space (" +
                   std::to_string(commandBytes) +
                   " B) swallows stack 0's data region (" +
                   std::to_string(span) +
                   " B per stack); grow backingBytes or shrink "
                   "commandBytes");
    }
    if (queueDepth == 0) {
        return err("runtime config: per-stack command queues need a "
                   "depth of at least 1 (queueDepth == 0)");
    }
    if (Status s = fault.validate(); !s.ok())
        return s;
    if (fault.failStack != fault::kNoStack &&
        fault.failStack >= numStacks) {
        return err("runtime config: scripted failure targets stack " +
                   std::to_string(fault.failStack) + " but only " +
                   std::to_string(numStacks) +
                   " stacks are configured");
    }
    if (watchdogSeconds <= 0.0)
        return err("runtime config: watchdog timeout must be positive");
    if (retry.backoffBaseSeconds < 0.0)
        return err("runtime config: retry backoff base must be >= 0");
    if (retry.backoffMultiplier < 1.0)
        return err("runtime config: retry backoff multiplier must be "
                   ">= 1");
    if (Status s = integrity.validate(); !s.ok())
        return s;
    if (Status s = checkpoint.validate(); !s.ok())
        return s;
    if (Status s = health.validate(); !s.ok())
        return s;
    return Status();
}

namespace {

/** Validate before any member construction touches the config. */
const RuntimeConfig &
validated(const RuntimeConfig &cfg)
{
    cfg.validate().orThrow();
    return cfg;
}

/** The thread's session ledger; runtime posts mirror into it. */
thread_local EnergyLedger *tlSessionLedger = nullptr;

} // namespace

EnergyLedger *
bindSessionLedger(EnergyLedger *ledger)
{
    EnergyLedger *previous = tlSessionLedger;
    tlSessionLedger = ledger;
    return previous;
}

EnergyLedger *
boundSessionLedger()
{
    return tlSessionLedger;
}

void
MealibRuntime::postLedger(const std::string &track, const Cost &c,
                          const std::string &label)
{
    ledger_.post(track, c, label);
    if (tlSessionLedger != nullptr && tlSessionLedger != &ledger_)
        tlSessionLedger->post(track, c, label);
}

void
MealibRuntime::attributeLedger(const std::string &component,
                               double joules)
{
    ledger_.attribute(component, joules);
    if (tlSessionLedger != nullptr && tlSessionLedger != &ledger_)
        tlSessionLedger->attribute(component, joules);
}

void
MealibRuntime::addFlopsLedger(double flops)
{
    ledger_.addFlops(flops);
    if (tlSessionLedger != nullptr && tlSessionLedger != &ledger_)
        tlSessionLedger->addFlops(flops);
}

MealibRuntime::MealibRuntime(const RuntimeConfig &cfg)
    : cfg_(validated(cfg)),
      mem_(std::make_unique<dram::PhysMem>(cfg.backingBytes)),
      host_(cfg.hostCpu), faults_(cfg.fault), mesh_(cfg.mesh),
      slowdown_(cfg.numStacks, 1.0),
      health_(cfg.health, cfg.numStacks)
{
    const std::uint64_t span = cfg.backingBytes / cfg.numStacks;
    // The driver reserves the contiguous region and splits it: command
    // space first (monitored by the configuration unit), then one data
    // region per memory stack (Sec. 3.3: data should be allocated on
    // the accelerator's Local Memory Stack). Each stack carries its own
    // accelerator layer so independent command queues execute in
    // parallel.
    cmdAlloc_ =
        std::make_unique<ContigAllocator>(0, cfg.commandBytes);
    for (unsigned st = 0; st < cfg.numStacks; ++st) {
        std::uint64_t base = static_cast<std::uint64_t>(st) * span +
                             (st == 0 ? cfg.commandBytes : 0);
        std::uint64_t size = span - (st == 0 ? cfg.commandBytes : 0);
        dataAllocs_.push_back(
            std::make_unique<ContigAllocator>(base, size));
        stacks_.push_back(std::make_unique<dram::Stack>(cfg.dram));
        layers_.push_back(std::make_unique<accel::AcceleratorLayer>(
            cfg.dram, cfg.mesh, cfg.functional));
        queues_.emplace_back(cfg.queueDepth);
    }
    sched_ = std::make_unique<Scheduler>(cfg.scheduler, cfg.numStacks);
}

unsigned
MealibRuntime::stackOf(Addr paddr) const
{
    const std::uint64_t span = cfg_.backingBytes / cfg_.numStacks;
    unsigned st = static_cast<unsigned>(paddr / span);
    return st < cfg_.numStacks ? st : cfg_.numStacks - 1;
}

void *
MealibRuntime::memAlloc(std::uint64_t bytes)
{
    return memAllocOn(0, bytes);
}

void *
MealibRuntime::memAllocOn(unsigned stack, std::uint64_t bytes)
{
    fatalIf(stack >= cfg_.numStacks, "memAllocOn: stack ", stack,
            " out of range (", cfg_.numStacks, " stacks)");
    std::lock_guard<std::mutex> lock(mu_);
    Addr p = dataAllocs_[stack]->alloc(bytes);
    return mem_->raw(p, bytes);
}

void
MealibRuntime::memFree(void *vptr)
{
    const Addr p = physOf(vptr);
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t freed = 0;
    dataAllocs_[stackOf(p)]->tryFree(p, &freed).orThrow();
    // A freed block's residency must die with it: the allocator may
    // hand the range to a new array the accelerators have never seen.
    residency_.dropRange(p, p + freed);
}

Addr
MealibRuntime::physOf(const void *vptr) const
{
    const std::uint8_t *base = mem_->raw(0, 0);
    const auto *p = static_cast<const std::uint8_t *>(vptr);
    fatalIf(p < base || p >= base + mem_->size(),
            "physOf: pointer is not in the mapped region");
    return static_cast<Addr>(p - base);
}

bool
MealibRuntime::tryPhysOf(const void *vptr, Addr *paddr) const
{
    const std::uint8_t *base = mem_->raw(0, 0);
    const auto *p = static_cast<const std::uint8_t *>(vptr);
    if (p < base || p >= base + mem_->size())
        return false;
    *paddr = static_cast<Addr>(p - base);
    return true;
}

void *
MealibRuntime::virtOf(Addr paddr)
{
    return mem_->raw(paddr, 0);
}

accel::AcceleratorLayer &
MealibRuntime::layer(unsigned stack)
{
    fatalIf(stack >= cfg_.numStacks, "layer: stack ", stack,
            " out of range (", cfg_.numStacks, " stacks)");
    return *layers_[stack];
}

dram::Stack &
MealibRuntime::stack(unsigned stack)
{
    fatalIf(stack >= cfg_.numStacks, "stack: stack ", stack,
            " out of range (", cfg_.numStacks, " stacks)");
    return *stacks_[stack];
}

const CommandQueue &
MealibRuntime::queue(unsigned stack) const
{
    fatalIf(stack >= cfg_.numStacks, "queue: stack ", stack,
            " out of range (", cfg_.numStacks, " stacks)");
    return queues_[stack];
}

std::uint64_t
MealibRuntime::evictDeadImages(std::size_t keep)
{
    // Collect dead (unreferenced) memo entries oldest-first and free
    // all but the `keep` most recently used.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> dead; // use,hash
    for (const auto &[hash, img] : images_)
        if (img.refs == 0)
            dead.emplace_back(img.lastUse, hash);
    if (dead.size() <= keep)
        return 0;
    std::sort(dead.begin(), dead.end());
    std::uint64_t reclaimed = 0;
    for (std::size_t i = 0; i + keep < dead.size(); ++i) {
        auto it = images_.find(dead[i].second);
        cmdAlloc_->free(it->second.descAddr);
        reclaimed += it->second.descBytes;
        images_.erase(it);
    }
    return reclaimed;
}

AccPlanHandle
MealibRuntime::accPlan(const accel::DescriptorProgram &prog)
{
    std::lock_guard<std::mutex> lock(mu_);
    Plan plan;
    plan.prog = prog;
    plan.imageHash = accel::programHash(prog);

    // Descriptor-image memo: a repeated program (same hash AND same
    // fields — sameProgram guards collisions) reuses the image already
    // sitting in the command space instead of re-encoding and copying.
    auto cached = images_.find(plan.imageHash);
    if (cached != images_.end() &&
        accel::sameProgram(cached->second.prog, prog)) {
        CachedImage &img = cached->second;
        img.refs++;
        img.lastUse = ++imageUseTick_;
        plan.descAddr = img.descAddr;
        plan.descBytes = img.descBytes;
        plan.imageCached = true;
        acct_.planImageReuses++;
    } else {
        const bool collision = cached != images_.end();
        std::vector<std::uint8_t> image = accel::encode(prog);
        plan.descBytes = image.size();
        Status s = cmdAlloc_->tryAlloc(plan.descBytes, &plan.descAddr);
        if (!s.ok() && s.code() == ErrorCode::Exhausted) {
            // Dead memo entries are a cache, not a reservation: give
            // their space back and retry before reporting exhaustion.
            if (evictDeadImages(0) > 0)
                s = cmdAlloc_->tryAlloc(plan.descBytes, &plan.descAddr);
        }
        if (!s.ok()) {
            throw MealibError(Status::error(
                s.code(), "accPlan: command space exhausted (" +
                              s.message() + ")"));
        }
        std::memcpy(mem_->raw(plan.descAddr, plan.descBytes),
                    image.data(), image.size());
        if (!collision) {
            CachedImage img;
            img.descAddr = plan.descAddr;
            img.descBytes = plan.descBytes;
            img.refs = 1;
            img.lastUse = ++imageUseTick_;
            img.prog = prog;
            images_.emplace(plan.imageHash, std::move(img));
            plan.imageCached = true;
        }
    }

    // Footprint the host may hold dirty in its caches: one iteration's
    // input operands per COMP (flushCost clamps at LLC capacity).
    double dirty = 0.0;
    for (const accel::Instr &in : prog.instrs)
        if (in.type == accel::Instr::Type::Comp)
            dirty += in.call.inputBytes();
    plan.dirtyBytes = static_cast<std::uint64_t>(
        std::min(dirty, 1.0e9));

    // Hazard footprint for the asynchronous submit path.
    plan.intervals = accessIntervals(prog);

    // Integrity/checkpoint footprint: the operand bytes a verification
    // pass streams, and the written bytes a snapshot journals.
    plan.expandedComps = prog.expandedCompCount();
    plan.rerunSafe = rerunSafe(prog);
    for (const AccessInterval &iv : plan.intervals) {
        const std::uint64_t n = iv.hi > iv.lo ? iv.hi - iv.lo : 0;
        plan.transferBytes += n;
        if (iv.write)
            plan.writeBytes += n;
    }

    AccPlanHandle h = nextHandle_++;
    plans_.emplace(h, std::move(plan));
    return h;
}

unsigned
MealibRuntime::homeStackOf(const accel::DescriptorProgram &prog) const
{
    for (const accel::Instr &in : prog.instrs)
        if (in.type == accel::Instr::Type::Comp)
            return stackOf(in.call.out.base);
    return 0;
}

unsigned
MealibRuntime::homeStackOf(AccPlanHandle handle) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "homeStackOf: unknown plan handle ",
            handle);
    return homeStackOf(it->second.prog);
}

Cost
MealibRuntime::remotePenalty(const accel::DescriptorProgram &prog,
                             unsigned home, double *remoteBytes) const
{
    // Operands on Remote Memory Stacks cross the HMC-style serial
    // links: cheaper than going through the host, but far below the
    // internal TSV bandwidth (Sec. 3.3).
    double bytes = 0.0;
    accel::LoopSpec active;
    std::uint32_t remaining = 0;
    for (const accel::Instr &in : prog.instrs) {
        if (in.type == accel::Instr::Type::Loop) {
            active = in.loop;
            remaining = in.bodyCount;
            continue;
        }
        if (in.type == accel::Instr::Type::Comp) {
            accel::LoopSpec loop = remaining ? active
                                             : accel::LoopSpec{};
            for (const accel::OperandTraffic &t :
                 accel::operandTraffic(in.call, loop)) {
                if (stackOf(t.op->base) != home)
                    bytes += t.bytes;
            }
        }
        if (remaining && --remaining == 0)
            active = accel::LoopSpec{};
    }
    if (remoteBytes)
        *remoteBytes = bytes;

    Cost c;
    if (bytes > 0.0) {
        double link_bw = cfg_.dram.org.linkBandwidth;
        double internal_bw = cfg_.dram.peakInternalBandwidth();
        double slowdown = 1.0 / link_bw - 1.0 / internal_bw;
        c.seconds = bytes * (slowdown > 0.0 ? slowdown : 0.0);
        c.joules = bytes * cfg_.linkJPerByte;
    }
    return c;
}

void
MealibRuntime::hostWork(double seconds)
{
    hostSeconds_ += seconds;
    acct_.hostBusySeconds += seconds;
}

void
MealibRuntime::hostWaitUntil(double seconds)
{
    if (seconds > hostSeconds_)
        hostSeconds_ = seconds;
}

void
MealibRuntime::updateMakespan()
{
    double frontier = hostSeconds_;
    for (const CommandQueue &q : queues_)
        frontier = std::max(frontier, q.busyUntilSeconds());
    acct_.makespanSeconds = std::max(acct_.makespanSeconds, frontier);
}

Event
MealibRuntime::accSubmit(AccPlanHandle handle)
{
    std::lock_guard<std::mutex> lock(mu_);
    return accSubmitLocked(handle);
}

Event
MealibRuntime::accSubmitLocked(AccPlanHandle handle)
{
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accSubmit: unknown plan handle ",
            handle);
    applyScriptedFailure();
    // Promote quarantined stacks whose cooldown has elapsed, then give
    // any probation stack the next scheduler-routed command as its
    // canary: the probe costs one real command, not synthetic traffic.
    for (unsigned st : health_.beginCommand(cmdIndex_))
        sched_->setAvailable(st, true);
    unsigned home = homeStackOf(it->second.prog);
    // With no survivor left the target is moot: accSubmitOn reroutes an
    // unhealthy target to the host (or a FAILED event) on its own.
    unsigned target =
        sched_->healthyCount() > 0 ? sched_->pick(home) : home;
    const unsigned canary = health_.canaryTarget();
    if (canary != StackHealthMonitor::kNone && !sched_->failed(canary))
        target = canary;
    return accSubmitOnLocked(handle, target);
}

Event
MealibRuntime::accSubmitOn(AccPlanHandle handle, unsigned stackIdx)
{
    std::lock_guard<std::mutex> lock(mu_);
    return accSubmitOnLocked(handle, stackIdx);
}

Event
MealibRuntime::accSubmitOnLocked(AccPlanHandle handle, unsigned stackIdx)
{
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accSubmit: unknown plan handle ",
            handle);
    // An out-of-range stack is a recoverable caller error, not a
    // process-killing one: report it on the returned event.
    if (stackIdx >= cfg_.numStacks) {
        return submitError(Status::error(
            ErrorCode::InvalidArgument,
            "accSubmitOn: stack " + std::to_string(stackIdx) +
                " out of range (" + std::to_string(cfg_.numStacks) +
                " stacks)"));
    }
    Plan &plan = it->second;

    applyScriptedFailure();
    for (unsigned st : health_.beginCommand(cmdIndex_))
        sched_->setAvailable(st, true);
    if (sched_->failed(stackIdx)) {
        // The caller's target is dead: steer to a survivor, fall back
        // to the host, or report the loss — never submit to it.
        if (sched_->healthyCount() > 0) {
            stackIdx = sched_->pick(stackIdx);
        } else if (cfg_.retry.hostFallback) {
            return submitOnHost(plan, stackIdx, 0);
        } else {
            return submitError(Status::error(
                ErrorCode::DeviceFailed,
                "accSubmitOn: every stack has failed and host "
                "fallback is disabled"));
        }
    }

    // 1. Coherence: write back dirty lines so the memory-side view is
    //    current (wbinvd, Sec. 3.5). With residency tracking on, read
    //    operands the accelerators produced — and the host has not
    //    touched since — are already coherent in stack memory, so the
    //    flush shrinks to the host-dirtied remainder (and disappears
    //    entirely when the whole read set is clean-on-stack).
    const bool residencyOn = cfg_.residency.enabled;
    std::uint64_t effDirtyBytes = plan.dirtyBytes;
    if (residencyOn) {
        const std::uint64_t readB =
            ResidencyTracker::readBytes(plan.intervals);
        const std::uint64_t cleanB =
            residency_.flushCleanReadBytes(plan.intervals);
        if (readB > 0 && cleanB >= readB) {
            effDirtyBytes = 0;
        } else if (readB > 0 && cleanB > 0) {
            const double frac = static_cast<double>(cleanB) /
                                static_cast<double>(readB);
            effDirtyBytes = static_cast<std::uint64_t>(
                static_cast<double>(plan.dirtyBytes) * (1.0 - frac));
        }
        acct_.flushBytesElided += plan.dirtyBytes - effDirtyBytes;
        if (effDirtyBytes < plan.dirtyBytes)
            postLedger("reuse", Cost{}, "flush_elided");
    }
    Cost flush = effDirtyBytes > 0 || !residencyOn
                     ? host_.flushCost(effDirtyBytes)
                     : Cost{};

    // 2. Descriptor copy + START write + DONE poll over the host links.
    double link_bw = cfg_.dram.org.linkBandwidth;
    Cost handshake;
    handshake.seconds = static_cast<double>(plan.descBytes) / link_bw +
                        2.0e-6; // two link round trips
    handshake.joules = cfg_.hostCpu.idleW * handshake.seconds;

    // 3. Hand the arrays to the accelerators (exclusive ownership).
    //    Functional execution happens eagerly in submission order;
    //    hazard chains below guarantee that any order the timeline
    //    could legally report computes these same values.
    const std::uint8_t *img = mem_->raw(plan.descAddr, plan.descBytes);
    accel::writeCommand(mem_->raw(plan.descAddr, plan.descBytes),
                        plan.descBytes, accel::Command::Start);
    accel::DescriptorProgram prog =
        accel::decode(img, plan.descBytes);

    // End-to-end verification, functional side: checksum the read-only
    // operand intervals before and after the execute. The fault model
    // never corrupts real buffers (faults shape cost, not values), so
    // a mismatch here means the functional engine itself scribbled
    // over an input — a broken invariant worth catching in situ.
    const bool verifyFunctional =
        cfg_.functional && cfg_.integrity.enabled();
    auto readChecksum = [&]() {
        fault::Checksum ck;
        for (const AccessInterval &iv : plan.intervals) {
            if (iv.write)
                continue;
            const Addr lo = std::min<Addr>(iv.lo, mem_->size());
            const Addr hi = std::min<Addr>(iv.hi, mem_->size());
            if (hi > lo)
                ck.update(mem_->raw(lo, hi - lo), hi - lo);
        }
        return ck.value();
    };
    const std::uint64_t srcSum = verifyFunctional ? readChecksum() : 0;

    stacks_[stackIdx]->acquire(dram::Owner::Accelerator);
    accel::ExecStats es = layers_[stackIdx]->execute(prog, *mem_);
    stacks_[stackIdx]->release(dram::Owner::Accelerator);

    if (verifyFunctional) {
        panicIf(readChecksum() != srcSum,
                "integrity: read-only operand bytes changed during "
                "execution (functional engine corrupted an input "
                "interval)");
    }

    // Inter-stack traffic for operands left on stacks remote to the
    // one that executed the plan.
    if (cfg_.numStacks > 1) {
        Cost remote = remotePenalty(prog, stackIdx, &es.remoteBytes);
        es.total += remote;
        es.remote = remote;
    }

    accel::writeCommand(mem_->raw(plan.descAddr, plan.descBytes),
                        plan.descBytes, accel::Command::Done);

    // Everything accounted so far occupies the stack; the flush and
    // handshake below occupy the host track instead.
    const double accelSpan = es.total.seconds;
    const double accelJoules = es.total.joules;

    // Roll the fault ladder for this command. The functional results
    // above were computed exactly once and are final either way: faults
    // only shape cost, occupancy and the event's terminal state.
    const std::uint64_t cmd = cmdIndex_++;
    // Verification footprint: with residency on, intervals whose cached
    // checksum is still valid (verified earlier, untouched since) are
    // skipped by both the host-side and stack-side passes.
    std::uint64_t effVerifyBytes = plan.transferBytes;
    if (residencyOn && cfg_.integrity.enabled()) {
        const std::uint64_t cleanV =
            residency_.verifyCleanBytes(plan.intervals);
        effVerifyBytes = cleanV < plan.transferBytes
                             ? plan.transferBytes - cleanV
                             : 0;
        // Two passes (host + stack) skip these bytes each.
        acct_.verifyBytesElided +=
            2 * (plan.transferBytes - effVerifyBytes);
        if (effVerifyBytes < plan.transferBytes)
            postLedger("reuse", Cost{}, "verify_elided");
    }
    // Host-side source checksum: one pass over the operand footprint
    // before the transfer (the re-verify passes after link crossings
    // and vault reads are stack-side, charged per attempt below).
    Cost integHost;
    if (cfg_.integrity.enabled())
        integHost = fault::checksumCost(cfg_.integrity,
                                        static_cast<double>(
                                            effVerifyBytes));
    Attempts at;
    if (faults_.enabled()) {
        at = resolveAttempts(cmd, stackIdx, accelSpan, accelJoules,
                             plan, effVerifyBytes);
        es.retries = at.retries;
        es.faultPenalty = at.penalty;
        es.total += at.penalty;
        acct_.retryCount += at.retries;
    } else {
        // Fault-free: one stack-side re-verify pass and the base
        // checkpoint schedule (the overhead the chaos harness trades
        // against recovery latency). This is exactly where the faulty
        // path converges as every rate goes to zero.
        if (cfg_.integrity.enabled())
            at.integrity += fault::checksumCost(
                cfg_.integrity,
                static_cast<double>(effVerifyBytes));
        if (checkpointed(plan)) {
            const std::uint64_t comps = plan.expandedComps;
            const std::uint64_t ival = cfg_.checkpoint.intervalComps;
            const std::uint64_t last = (comps - 1) / ival;
            const Cost snap = snapshotCost(plan);
            for (std::uint64_t k = 1; k <= last; ++k) {
                at.integrity += snap;
                journal_.record({cmd, stackIdx, k * ival,
                                 static_cast<double>(k * ival) /
                                     static_cast<double>(comps),
                                 plan.writeBytes});
            }
            at.checkpoints = last;
        }
        at.occupancySeconds = accelSpan + at.integrity.seconds;
    }
    es.integrity = at.integrity + integHost;
    es.total += es.integrity;
    es.checkpoints = at.checkpoints;
    es.resumed = at.resumed;
    acct_.integrity += es.integrity;
    acct_.silentDetected += at.silentDetected;
    acct_.silentUndetected += at.silentUndetected;
    acct_.checkpointsTaken += at.checkpoints;

    // Feed the health monitor: a command counts as faulted when it
    // needed the recovery ladder (in-line corrected ECC is latency, not
    // a health signal). A struck-out stack dies after this command's
    // event is placed, so the drain below re-homes it too.
    unsigned strikeOut = StackHealthMonitor::kNone;
    if (faults_.enabled() && health_.enabled()) {
        const bool faulted = at.retries > 0 || !at.success ||
                             at.silentDetected > 0;
        strikeOut = recordHealth(stackIdx, cmd, faulted);
    }

    // Fold the software-side invocation costs into the stats.
    es.invocation += flush + handshake;
    es.total += flush + handshake;

    acct_.invocation += es.invocation;
    Cost accel_only{es.total.seconds - es.invocation.seconds -
                        es.integrity.seconds,
                    es.total.joules - es.invocation.joules -
                        es.integrity.joules};
    acct_.accel += accel_only;
    for (const auto &[k, v] : es.timeByAccel.parts())
        acct_.timeByAccel.add(k, v);
    for (const auto &[k, v] : es.energyByAccel.parts())
        acct_.energyByAccel.add(k, v);

    // Ledger: mirror the accounting exactly, then attribute the energy
    // to physical components (the attribution view covers the whole
    // posted energy: dram+logic+noc+link+fault == the accel track,
    // "invocation" the invocation track).
    postLedger("invocation", es.invocation, "flush+handshake");
    postLedger("accel", accel_only, "execute");
    for (const auto &[k, v] : es.energyByComponent.parts())
        attributeLedger(k, v);
    if (es.remote.joules != 0.0)
        attributeLedger("link", es.remote.joules);
    if (es.faultPenalty.joules != 0.0)
        attributeLedger("fault", es.faultPenalty.joules);
    attributeLedger("invocation", es.invocation.joules);
    if (es.integrity.seconds != 0.0 || es.integrity.joules != 0.0) {
        postLedger("integrity", es.integrity, "verify+journal");
        attributeLedger("integrity", es.integrity.joules);
    }
    addFlopsLedger(es.flops);

    // --- timeline: place the command on its stack's queue -------------
    hostWork(flush.seconds + handshake.seconds + integHost.seconds);
    CommandQueue &q = queues_[stackIdx];
    hostWaitUntil(q.admitSeconds(hostSeconds_)); // stall on a full queue
    q.retireUpTo(hostSeconds_);

    // Retire hazard records the host clock has already passed: a new
    // command cannot start before the host submitted it.
    std::erase_if(pending_, [&](const PendingAccess &pa) {
        return pa.finishSeconds <= hostSeconds_;
    });

    double ready = hostSeconds_;
    for (const PendingAccess &pa : pending_)
        for (const AccessInterval &iv : plan.intervals)
            if (iv.conflictsWith(pa.interval))
                ready = std::max(ready, pa.finishSeconds);

    // Stack occupancy: clean span plus verification, journaling and any
    // fault-recovery time, scaled by the stack's degradation factor
    // (1.0 while healthy — exact).
    const double spanBase = at.occupancySeconds;
    const double occupancy = spanBase * slowdown_[stackIdx];

    const double start = std::max(ready, q.busyUntilSeconds());
    const double finish = start + occupancy;
    q.push(start, finish);
    acct_.busyByStack.add("stack" + std::to_string(stackIdx),
                          occupancy);

    auto state = std::make_shared<detail::EventState>();
    state->id = nextEventId_++;
    state->stack = stackIdx;
    state->submitSeconds = hostSeconds_;
    state->startSeconds = start;
    state->finishSeconds = finish;
    state->epoch = epoch_;
    state->spanSeconds = spanBase;
    state->intervals = plan.intervals;
    state->command = cmd;
    // Replay granularity for a post-hoc stack death: the fraction of
    // the command one checkpoint interval covers (0 = not replayable).
    state->checkpointStep =
        checkpointed(plan) && plan.expandedComps > 0
            ? static_cast<double>(cfg_.checkpoint.intervalComps) /
                  static_cast<double>(plan.expandedComps)
            : 0.0;

    for (const AccessInterval &iv : plan.intervals)
        pending_.push_back({iv, finish, state->id});

    if (at.success) {
        state->state = at.resumed  ? EventState::Resumed
                       : at.retries ? EventState::Retried
                                    : EventState::Done;
        if (at.resumed)
            acct_.resumedFromCheckpoint++;
        state->stats = es;
        inflight_.push_back(state);
        // The command's operands now live clean on the stack: reads
        // were flushed (or already clean), writes were produced there.
        // With integrity on they were also verified this command, so
        // the cached checksum stays valid until a host write.
        if (residencyOn)
            residency_.commit(plan.intervals, cfg_.integrity.enabled());
    } else if (cfg_.retry.hostFallback) {
        // Retry budget exhausted on the accelerator: the stack burned
        // `occupancy` on dead attempts, then the host re-executes the
        // plan natively (the minimkl naive-kernel cost model). The
        // fallback is synchronous on the host track, so the event is
        // already complete when the submit returns.
        hostWaitUntil(finish);
        Cost c = host_.run(fallbackProfile(es));
        hostWork(c.seconds);
        acct_.host += c;
        postLedger("host", c, "fault_fallback");
        attributeLedger("host", c.joules);
        acct_.fallbackSeconds += c.seconds;
        acct_.fallbackCount++;
        es.fellBack = true;
        es.total += c;
        state->state = EventState::FellBack;
        state->onHost = true;
        state->finishSeconds = hostSeconds_;
        state->stats = es;
        state->waited = true;
        // The host produced the results: its caches hold them dirty,
        // so the written intervals are no longer clean-on-stack.
        if (residencyOn)
            residency_.invalidateWrites(plan.intervals);
    } else {
        // No recovery left: the command terminates without a result.
        state->state = at.lastFault == fault::FaultKind::CommandHang
                           ? EventState::TimedOut
                           : EventState::Failed;
        state->status = Status::error(
            state->state == EventState::TimedOut
                ? ErrorCode::Timeout
                : ErrorCode::DeviceFailed,
            std::string("command ") + std::to_string(cmd) +
                " exhausted its retry budget on stack " +
                std::to_string(stackIdx) + " (last fault: " +
                fault::name(at.lastFault) + ")");
        state->stats = es;
        inflight_.push_back(state);
        // A failed/timed-out command leaves its output intervals in an
        // untrusted state: drop any residency they had.
        if (residencyOn)
            residency_.invalidateAll(plan.intervals);
    }
    updateMakespan();
    // A struck-out stack dies only after this command's event has been
    // placed, so the failStack drain re-homes it along with the rest.
    if (strikeOut != StackHealthMonitor::kNone)
        failStackLocked(strikeOut);
    return Event(this, state);
}

const accel::ExecStats &
MealibRuntime::eventWait(const std::shared_ptr<detail::EventState> &state)
{
    std::lock_guard<std::mutex> lock(mu_);
    return eventWaitLocked(state);
}

const accel::ExecStats &
MealibRuntime::eventWaitLocked(
    const std::shared_ptr<detail::EventState> &state)
{
    // Events submitted before a resetAccounting() are stale: their
    // times belong to a discarded timeline, so waiting is a no-op.
    if (state->epoch == epoch_ && !state->waited) {
        hostWaitUntil(state->finishSeconds);
        std::erase(inflight_, state);
        updateMakespan();
    }
    state->waited = true;
    return state->stats;
}

void
MealibRuntime::waitAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &state : inflight_) {
        hostWaitUntil(state->finishSeconds);
        state->waited = true;
    }
    inflight_.clear();
    // Every recorded access has finished by now.
    pending_.clear();
    for (CommandQueue &q : queues_)
        q.retireUpTo(hostSeconds_);
    updateMakespan();
}

accel::ExecStats
MealibRuntime::accExecute(AccPlanHandle handle)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accExecute: unknown plan handle ",
            handle);
    // The paper's blocking Listing-2 semantics: submit on the plan's
    // home stack, then poll DONE. One lock span covers both so another
    // session cannot interleave between a blocking submit and its wait.
    Event ev =
        accSubmitOnLocked(handle, homeStackOf(it->second.prog));
    return eventWaitLocked(ev.state_);
}

void
MealibRuntime::accDestroy(AccPlanHandle handle)
{
    // A handful of dead images stay memoized so plan/destroy loops over
    // the same program hit the cache; beyond that they are evicted LRU
    // so the command space is not pinned by history.
    constexpr std::size_t kDeadImageCap = 16;

    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accDestroy: unknown plan handle ",
            handle);
    const Plan &plan = it->second;
    auto cached = images_.find(plan.imageHash);
    if (plan.imageCached && cached != images_.end() &&
        cached->second.descAddr == plan.descAddr) {
        fatalIf(cached->second.refs == 0,
                "accDestroy: image refcount underflow");
        cached->second.refs--;
        evictDeadImages(kDeadImageCap);
    } else {
        cmdAlloc_->free(plan.descAddr);
    }
    plans_.erase(it);
}

// --- degradation & fault injection (docs/FAULTS.md) -------------------

void
MealibRuntime::applyScriptedFailure()
{
    const fault::FaultConfig &fc = cfg_.fault;
    if (fc.failStack == fault::kNoStack || sched_->failed(fc.failStack))
        return;
    if (cmdIndex_ >= fc.failStackAfter)
        failStackLocked(fc.failStack);
}

void
MealibRuntime::failStack(unsigned stackIdx)
{
    std::lock_guard<std::mutex> lock(mu_);
    failStackLocked(stackIdx);
}

void
MealibRuntime::failStackLocked(unsigned stackIdx)
{
    fatalIf(stackIdx >= cfg_.numStacks, "failStack: stack ", stackIdx,
            " out of range (", cfg_.numStacks, " stacks)");
    if (sched_->failed(stackIdx))
        return;
    sched_->markFailed(stackIdx);
    health_.markDead(stackIdx);
    faults_.record({fault::FaultKind::StackFailure, stackIdx,
                    cmdIndex_, 0});

    // Nothing on a dead stack can be trusted as clean or verified.
    const std::uint64_t stackSpan = cfg_.backingBytes / cfg_.numStacks;
    residency_.dropRange(static_cast<Addr>(stackIdx) * stackSpan,
                         static_cast<Addr>(stackIdx + 1) * stackSpan);

    // Cancel everything still occupying the dead stack past `now`.
    const double now = hostSeconds_;
    CommandQueue &q = queues_[stackIdx];
    const double before = q.busySeconds();
    q.cancelFrom(now);
    acct_.busyByStack.add("stack" + std::to_string(stackIdx),
                          q.busySeconds() - before);

    // Re-home the killed commands in submission order. Their functional
    // results are already final (computed eagerly at submit), so the
    // drain only re-places occupancy: on a survivor the scheduler
    // picks, or — with none left — on the host track.
    std::vector<std::shared_ptr<detail::EventState>> drained;
    for (const auto &state : inflight_)
        if (state->stack == stackIdx && !state->onHost &&
            !state->waited && state->finishSeconds > now)
            drained.push_back(state);

    for (const auto &state : drained) {
        acct_.retryCount++;
        state->stats.retries++;
        // A drained command's destination is decided below; until it
        // completes there, none of its intervals count as resident.
        residency_.invalidateAll(state->intervals);
        std::erase_if(pending_, [&](const PendingAccess &pa) {
            return pa.owner == state->id;
        });
        if (sched_->healthyCount() > 0) {
            unsigned dest = sched_->pick(stackIdx);
            CommandQueue &q2 = queues_[dest];
            double ready = std::max(now, q2.busyUntilSeconds());
            for (const PendingAccess &pa : pending_)
                for (const AccessInterval &iv : state->intervals)
                    if (iv.conflictsWith(pa.interval))
                        ready = std::max(ready, pa.finishSeconds);
            // Checkpoint replay: resume from the last snapshot the
            // dead stack committed before the command's execution
            // point, instead of re-running the command from scratch.
            double resumeFrac = 0.0;
            if (state->checkpointStep > 0.0) {
                const double total =
                    state->finishSeconds - state->startSeconds;
                const double execFrac =
                    total > 0.0
                        ? std::clamp((now - state->startSeconds) /
                                         total,
                                     0.0, 1.0)
                        : 0.0;
                resumeFrac = journal_.lastFractionAtOrBefore(
                    state->command, execFrac);
            }
            const double span = state->spanSeconds *
                                (1.0 - resumeFrac) * slowdown_[dest];
            q2.push(ready, ready + span);
            acct_.busyByStack.add("stack" + std::to_string(dest), span);
            state->stack = dest;
            state->startSeconds = ready;
            state->finishSeconds = ready + span;
            if (resumeFrac > 0.0) {
                state->state = EventState::Resumed;
                state->stats.resumed = true;
                acct_.resumedFromCheckpoint++;
            } else {
                state->state = EventState::Retried;
            }
            for (const AccessInterval &iv : state->intervals)
                pending_.push_back({iv, state->finishSeconds,
                                    state->id});
        } else if (cfg_.retry.hostFallback) {
            Cost c = host_.run(fallbackProfile(state->stats));
            hostWork(c.seconds);
            acct_.host += c;
            postLedger("host", c, "fault_fallback");
            attributeLedger("host", c.joules);
            acct_.fallbackSeconds += c.seconds;
            acct_.fallbackCount++;
            state->stats.fellBack = true;
            state->stats.total += c;
            state->state = EventState::FellBack;
            state->onHost = true;
            state->startSeconds = hostSeconds_ - c.seconds;
            state->finishSeconds = hostSeconds_;
            state->waited = true;
        } else {
            state->state = EventState::Failed;
            state->status = Status::error(
                ErrorCode::DeviceFailed,
                "stack " + std::to_string(stackIdx) +
                    " failed with no survivor and host fallback "
                    "disabled");
            state->finishSeconds = now;
        }
    }
    updateMakespan();
}

bool
MealibRuntime::stackFailed(unsigned stackIdx) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sched_->failed(stackIdx);
}

unsigned
MealibRuntime::healthyStackCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sched_->healthyCount();
}

void
MealibRuntime::degradeStack(unsigned stackIdx, double slowdown)
{
    fatalIf(stackIdx >= cfg_.numStacks, "degradeStack: stack ",
            stackIdx, " out of range (", cfg_.numStacks, " stacks)");
    fatalIf(slowdown < 1.0, "degradeStack: slowdown must be >= 1, got ",
            slowdown);
    std::lock_guard<std::mutex> lock(mu_);
    slowdown_[stackIdx] = slowdown;
}

double
MealibRuntime::stackSlowdown(unsigned stackIdx) const
{
    fatalIf(stackIdx >= cfg_.numStacks, "stackSlowdown: stack ",
            stackIdx, " out of range (", cfg_.numStacks, " stacks)");
    std::lock_guard<std::mutex> lock(mu_);
    return slowdown_[stackIdx];
}

StackHealth
MealibRuntime::stackHealth(unsigned stackIdx) const
{
    fatalIf(stackIdx >= cfg_.numStacks, "stackHealth: stack ",
            stackIdx, " out of range (", cfg_.numStacks, " stacks)");
    std::lock_guard<std::mutex> lock(mu_);
    return health_.state(stackIdx);
}

unsigned
MealibRuntime::selectableStackCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sched_->selectableCount();
}

unsigned
MealibRuntime::recordHealth(unsigned stackIdx, std::uint64_t cmd,
                            bool faulted)
{
    const StackHealthMonitor::Action act =
        health_.recordOutcome(stackIdx, cmd, faulted);
    acct_.quarantines = health_.quarantines();
    acct_.readmissions = health_.readmissions();
    // Quarantine and death both mean the stack's recent behaviour is
    // suspect: anything it holds loses clean/verified status.
    const std::uint64_t stackSpan = cfg_.backingBytes / cfg_.numStacks;
    switch (act) {
    case StackHealthMonitor::Action::Quarantine:
        sched_->setAvailable(stackIdx, false);
        residency_.dropRange(static_cast<Addr>(stackIdx) * stackSpan,
                             static_cast<Addr>(stackIdx + 1) *
                                 stackSpan);
        break;
    case StackHealthMonitor::Action::Readmit:
        sched_->setAvailable(stackIdx, true);
        break;
    case StackHealthMonitor::Action::Die:
        sched_->setAvailable(stackIdx, false);
        residency_.dropRange(static_cast<Addr>(stackIdx) * stackSpan,
                             static_cast<Addr>(stackIdx + 1) *
                                 stackSpan);
        return stackIdx;
    case StackHealthMonitor::Action::None:
        break;
    }
    return StackHealthMonitor::kNone;
}

bool
MealibRuntime::checkpointed(const Plan &plan) const
{
    // Only rerun-safe programs checkpoint: resuming an unsafe one from
    // a snapshot would re-apply an accumulation or re-read an already
    // overwritten input, so those keep whole-command retry semantics.
    return cfg_.checkpoint.enabled() && plan.rerunSafe &&
           plan.expandedComps > 0;
}

Cost
MealibRuntime::snapshotCost(const Plan &plan) const
{
    // One snapshot journals the command's written intervals through the
    // stack-internal TSV bandwidth — a read+write round trip priced by
    // the machine profile's journal energy.
    Cost c;
    const double bw = cfg_.dram.peakInternalBandwidth();
    const double bytes = static_cast<double>(plan.writeBytes);
    if (bw > 0.0)
        c.seconds = bytes / bw;
    c.joules = bytes * cfg_.checkpoint.journalJPerByte;
    return c;
}

MealibRuntime::Attempts
MealibRuntime::resolveAttempts(std::uint64_t cmd, unsigned stackIdx,
                               double spanSeconds, double accelJoules,
                               const Plan &plan,
                               std::uint64_t effVerifyBytes)
{
    /** HMC-style request packet re-sent after a CRC failure. */
    constexpr std::uint64_t kCrcPacketBytes = 128;

    const bool integrityOn = cfg_.integrity.enabled();
    const bool ckpt = checkpointed(plan);
    const std::uint64_t comps = plan.expandedComps;
    const std::uint64_t ival = ckpt ? cfg_.checkpoint.intervalComps : 0;
    const std::uint64_t kmax = ckpt ? (comps - 1) / ival : 0;
    const Cost snap = ckpt ? snapshotCost(plan) : Cost{};
    const Cost verify =
        integrityOn
            ? fault::checksumCost(cfg_.integrity,
                                  static_cast<double>(effVerifyBytes))
            : Cost{};

    Attempts at;
    const dram::Stack &st = *stacks_[stackIdx];
    // Comps whose results a *committed* checkpoint already holds: a
    // retry resumes past them instead of re-running the whole command.
    // Snapshots commit only once their provenance is trusted —
    // immediately at the failure point for detected faults (the
    // hardware knows where it died), but only after the end-of-attempt
    // verification for silent corruption (commit-on-verify).
    std::uint64_t committed = 0;
    auto commitUpTo = [&](std::uint64_t newK) {
        for (std::uint64_t k = committed / ival + 1; k <= newK; ++k) {
            at.integrity += snap;
            journal_.record({cmd, stackIdx, k * ival,
                             static_cast<double>(k * ival) /
                                 static_cast<double>(comps),
                             plan.writeBytes});
            at.checkpoints++;
        }
        committed = newK * ival;
    };
    double backoff = cfg_.retry.backoffBaseSeconds;
    for (unsigned attempt = 0;; ++attempt) {
        // Fraction of the command this attempt still has to execute.
        const double base =
            ckpt && comps ? static_cast<double>(committed) /
                                static_cast<double>(comps)
                          : 0.0;
        const double attemptFrac = 1.0 - base;
        if (base > 0.0)
            at.resumed = true;
        fault::FaultPlan p = faults_.roll(cmd, attempt);
        if (p.eccCorrected > 0) {
            // In-line vault ECC corrections: latency-only, the attempt
            // still completes.
            at.penalty.seconds +=
                p.eccCorrected * st.eccCorrectPenaltySeconds();
            acct_.eccCorrected += p.eccCorrected;
            faults_.record({fault::FaultKind::EccCorrectable, stackIdx,
                            cmd, attempt});
        }
        if (p.succeeds()) {
            // The attempt ran to completion; the stack-side re-verify
            // pass is the end-to-end integrity check.
            if (integrityOn)
                at.integrity += verify;
            const bool detected = p.silent && integrityOn;
            if (p.silent && !integrityOn) {
                // Undetected silent corruption: the run "succeeds"
                // carrying wrong data. Counted for the chaos harness;
                // the functional results stay the clean ones (the
                // fault model shapes cost, never values).
                at.silentUndetected++;
                faults_.record({fault::FaultKind::SilentCorruption,
                                stackIdx, cmd, attempt});
            }
            if (!detected) {
                if (ckpt && kmax > 0)
                    commitUpTo(kmax);
                at.success = true;
                at.retries = attempt;
                if (base > 0.0) {
                    // The resumed attempt skipped the committed
                    // prefix; credit the span it never executed.
                    at.penalty.seconds -= base * spanSeconds;
                    at.penalty.joules -= base * accelJoules;
                }
                at.occupancySeconds = spanSeconds +
                                      at.penalty.seconds +
                                      at.integrity.seconds;
                return at;
            }
            // Verification caught the corruption at end of attempt:
            // the whole attempt span is wasted, and its snapshots were
            // written but never commit — the corruption point is
            // unknown, so none of them can be trusted.
            at.silentDetected++;
            faults_.record({fault::FaultKind::SilentCorruption,
                            stackIdx, cmd, attempt});
            at.lastFault = fault::FaultKind::SilentCorruption;
            at.penalty.seconds += spanSeconds * attemptFrac;
            at.penalty.joules += accelJoules * attemptFrac;
            if (ckpt) {
                const std::uint64_t crossed = kmax - committed / ival;
                for (std::uint64_t k = 0; k < crossed; ++k)
                    at.integrity += snap;
                at.checkpoints += crossed;
            }
        } else if (p.hang) {
            // DONE never arrives; the watchdog reclaims the stack.
            // Nothing executed, so no verify pass and no checkpoint
            // advances.
            at.penalty.seconds += cfg_.watchdogSeconds;
            acct_.watchdogFires++;
            faults_.record({fault::FaultKind::CommandHang, stackIdx,
                            cmd, attempt});
            at.lastFault = fault::FaultKind::CommandHang;
        } else {
            // A transient fault killed the attempt partway through:
            // the attempt-span fraction already executed is wasted,
            // plus the fault's own detection / replay penalty.
            at.penalty.seconds +=
                spanSeconds * attemptFrac * p.failFraction;
            at.penalty.joules +=
                accelJoules * attemptFrac * p.failFraction;
            if (p.failure == fault::FaultKind::LinkCrc)
                at.penalty += mesh_.crcReplayCost(kCrcPacketBytes);
            else if (p.failure == fault::FaultKind::EccUncorrectable)
                at.penalty.seconds +=
                    st.eccUncorrectableDetectSeconds();
            faults_.record({p.failure, stackIdx, cmd, attempt});
            at.lastFault = p.failure;
            // The fault was *detected* at the failure point, so every
            // snapshot crossed before it is trusted and commits — the
            // next attempt resumes from the last of them.
            if (ckpt) {
                const std::uint64_t execComps =
                    committed +
                    static_cast<std::uint64_t>(
                        static_cast<double>(comps - committed) *
                        p.failFraction);
                const std::uint64_t newK =
                    std::min(execComps / ival, kmax);
                if (newK > committed / ival)
                    commitUpTo(newK);
            }
        }
        if (attempt >= cfg_.retry.maxRetries) {
            at.success = false;
            at.retries = cfg_.retry.maxRetries;
            at.occupancySeconds =
                at.penalty.seconds + at.integrity.seconds;
            at.committedFraction =
                comps ? static_cast<double>(committed) /
                            static_cast<double>(comps)
                      : 0.0;
            return at;
        }
        at.penalty.seconds += backoff;
        backoff *= cfg_.retry.backoffMultiplier;
    }
}

Event
MealibRuntime::submitError(Status status)
{
    auto state = std::make_shared<detail::EventState>();
    state->id = nextEventId_++;
    state->epoch = epoch_;
    state->waited = true;
    state->state = EventState::Failed;
    state->status = std::move(status);
    return Event(this, state);
}

host::KernelProfile
MealibRuntime::fallbackProfile(const accel::ExecStats &es) const
{
    // The minimkl naive kernels the host falls back to: scalar
    // (1/8 of SIMD issue), single-threaded, cache-unfriendly streaming.
    host::KernelProfile p;
    p.name = "fault_fallback";
    p.flops = es.flops;
    p.bytesRead = 0.5 * es.bytesMoved;
    p.bytesWritten = 0.5 * es.bytesMoved;
    p.simdEff = 0.125;
    p.parallelFraction = 0.0;
    p.memEff = 0.5;
    return p;
}

Event
MealibRuntime::submitOnHost(Plan &plan, unsigned targetStack,
                            unsigned retries)
{
    cmdIndex_++;
    // Functional results still come from the shared functional engine,
    // so fallback numerics are bit-identical to the accelerated path
    // (docs/FAULTS.md); only the *cost* is priced as host execution.
    const std::uint8_t *img = mem_->raw(plan.descAddr, plan.descBytes);
    accel::DescriptorProgram prog = accel::decode(img, plan.descBytes);
    stacks_[targetStack]->acquire(dram::Owner::Accelerator);
    accel::ExecStats es = layers_[targetStack]->execute(prog, *mem_);
    stacks_[targetStack]->release(dram::Owner::Accelerator);

    // The host executes after every conflicting in-flight command.
    double ready = hostSeconds_;
    for (const PendingAccess &pa : pending_)
        for (const AccessInterval &iv : plan.intervals)
            if (iv.conflictsWith(pa.interval))
                ready = std::max(ready, pa.finishSeconds);
    hostWaitUntil(ready);

    Cost c = host_.run(fallbackProfile(es));
    hostWork(c.seconds);
    acct_.host += c;
    postLedger("host", c, "fault_fallback");
    attributeLedger("host", c.joules);
    acct_.fallbackSeconds += c.seconds;
    acct_.fallbackCount++;
    acct_.retryCount += retries;

    accel::ExecStats hostStats;
    hostStats.total = c;
    hostStats.compsExecuted = es.compsExecuted;
    hostStats.passes = es.passes;
    hostStats.bytesMoved = es.bytesMoved;
    hostStats.flops = es.flops;
    hostStats.retries = retries;
    hostStats.fellBack = true;

    auto state = std::make_shared<detail::EventState>();
    state->id = nextEventId_++;
    state->stack = targetStack;
    state->submitSeconds = hostSeconds_;
    state->startSeconds = hostSeconds_ - c.seconds;
    state->finishSeconds = hostSeconds_;
    state->epoch = epoch_;
    state->spanSeconds = c.seconds;
    state->intervals = plan.intervals;
    state->stats = hostStats;
    state->state = EventState::FellBack;
    state->onHost = true;
    state->waited = true;
    // Host execution dirties the written intervals in host caches.
    if (cfg_.residency.enabled)
        residency_.invalidateWrites(plan.intervals);
    updateMakespan();
    return Event(this, state);
}

void
MealibRuntime::noteHostWrite(const void *vptr, std::uint64_t bytes)
{
    if (!cfg_.residency.enabled || bytes == 0)
        return;
    Addr lo = 0;
    if (!tryPhysOf(vptr, &lo))
        return;
    std::lock_guard<std::mutex> lock(mu_);
    residency_.hostWrite(lo, lo + bytes);
}

void
MealibRuntime::noteFusion(std::uint64_t comps)
{
    if (comps <= 1)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    acct_.fusedPrograms++;
    acct_.handshakesElided += comps - 1;
    postLedger("reuse", Cost{}, "fused_program");
}

Cost
MealibRuntime::runOnHost(const host::KernelProfile &profile)
{
    std::lock_guard<std::mutex> lock(mu_);
    Cost c = host_.run(profile);
    acct_.host += c;
    postLedger("host", c,
                 profile.name.empty() ? "host_kernel" : profile.name);
    attributeLedger("host", c.joules);
    addFlopsLedger(profile.flops);
    hostWork(c.seconds);
    updateMakespan();
    return c;
}

void
MealibRuntime::resetAccounting()
{
    std::lock_guard<std::mutex> lock(mu_);
    acct_ = RuntimeAccounting{};
    ledger_.reset();
    hostSeconds_ = 0.0;
    pending_.clear();
    inflight_.clear();
    for (CommandQueue &q : queues_)
        q.reset();
    sched_->reset();
    nextEventId_ = 1;
    epoch_++;
    cmdIndex_ = 0;
    faults_.reset();
    slowdown_.assign(cfg_.numStacks, 1.0);
    health_.reset();
    journal_.reset();
    residency_.reset();
}

const accel::ExecStats &
Event::wait()
{
    fatalIf(!valid(), "Event::wait: invalid event");
    return rt_->eventWait(state_);
}

} // namespace mealib::runtime
