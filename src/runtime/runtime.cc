#include "runtime/runtime.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace mealib::runtime {

RuntimeConfig::RuntimeConfig()
    : dram(dram::hmcStack()), hostCpu(host::haswell4770k()),
      mesh(noc::mealibMesh())
{
}

void
RuntimeConfig::validate() const
{
    fatalIf(numStacks == 0, "runtime config: need at least one memory "
            "stack (numStacks == 0)");
    fatalIf(backingBytes == 0,
            "runtime config: backing arena must be non-empty "
            "(backingBytes == 0)");
    fatalIf(commandBytes == 0,
            "runtime config: command space must be non-empty "
            "(commandBytes == 0)");
    const std::uint64_t span = backingBytes / numStacks;
    fatalIf(commandBytes >= span,
            "runtime config: command space (", commandBytes,
            " B) swallows stack 0's data region (", span,
            " B per stack); grow backingBytes or shrink commandBytes");
    fatalIf(queueDepth == 0,
            "runtime config: per-stack command queues need a depth of "
            "at least 1 (queueDepth == 0)");
}

namespace {

/** Validate before any member construction touches the config. */
const RuntimeConfig &
validated(const RuntimeConfig &cfg)
{
    cfg.validate();
    return cfg;
}

} // namespace

MealibRuntime::MealibRuntime(const RuntimeConfig &cfg)
    : cfg_(validated(cfg)),
      mem_(std::make_unique<dram::PhysMem>(cfg.backingBytes)),
      host_(cfg.hostCpu)
{
    const std::uint64_t span = cfg.backingBytes / cfg.numStacks;
    // The driver reserves the contiguous region and splits it: command
    // space first (monitored by the configuration unit), then one data
    // region per memory stack (Sec. 3.3: data should be allocated on
    // the accelerator's Local Memory Stack). Each stack carries its own
    // accelerator layer so independent command queues execute in
    // parallel.
    cmdAlloc_ =
        std::make_unique<ContigAllocator>(0, cfg.commandBytes);
    for (unsigned st = 0; st < cfg.numStacks; ++st) {
        std::uint64_t base = static_cast<std::uint64_t>(st) * span +
                             (st == 0 ? cfg.commandBytes : 0);
        std::uint64_t size = span - (st == 0 ? cfg.commandBytes : 0);
        dataAllocs_.push_back(
            std::make_unique<ContigAllocator>(base, size));
        stacks_.push_back(std::make_unique<dram::Stack>(cfg.dram));
        layers_.push_back(std::make_unique<accel::AcceleratorLayer>(
            cfg.dram, cfg.mesh, cfg.functional));
        queues_.emplace_back(cfg.queueDepth);
    }
    sched_ = std::make_unique<Scheduler>(cfg.scheduler, cfg.numStacks);
}

unsigned
MealibRuntime::stackOf(Addr paddr) const
{
    const std::uint64_t span = cfg_.backingBytes / cfg_.numStacks;
    unsigned st = static_cast<unsigned>(paddr / span);
    return st < cfg_.numStacks ? st : cfg_.numStacks - 1;
}

void *
MealibRuntime::memAlloc(std::uint64_t bytes)
{
    return memAllocOn(0, bytes);
}

void *
MealibRuntime::memAllocOn(unsigned stack, std::uint64_t bytes)
{
    fatalIf(stack >= cfg_.numStacks, "memAllocOn: stack ", stack,
            " out of range (", cfg_.numStacks, " stacks)");
    Addr p = dataAllocs_[stack]->alloc(bytes);
    return mem_->raw(p, bytes);
}

void
MealibRuntime::memFree(void *vptr)
{
    dataAllocs_[stackOf(physOf(vptr))]->free(physOf(vptr));
}

Addr
MealibRuntime::physOf(const void *vptr) const
{
    const std::uint8_t *base = mem_->raw(0, 0);
    const auto *p = static_cast<const std::uint8_t *>(vptr);
    fatalIf(p < base || p >= base + mem_->size(),
            "physOf: pointer is not in the mapped region");
    return static_cast<Addr>(p - base);
}

void *
MealibRuntime::virtOf(Addr paddr)
{
    return mem_->raw(paddr, 0);
}

accel::AcceleratorLayer &
MealibRuntime::layer(unsigned stack)
{
    fatalIf(stack >= cfg_.numStacks, "layer: stack ", stack,
            " out of range (", cfg_.numStacks, " stacks)");
    return *layers_[stack];
}

dram::Stack &
MealibRuntime::stack(unsigned stack)
{
    fatalIf(stack >= cfg_.numStacks, "stack: stack ", stack,
            " out of range (", cfg_.numStacks, " stacks)");
    return *stacks_[stack];
}

const CommandQueue &
MealibRuntime::queue(unsigned stack) const
{
    fatalIf(stack >= cfg_.numStacks, "queue: stack ", stack,
            " out of range (", cfg_.numStacks, " stacks)");
    return queues_[stack];
}

AccPlanHandle
MealibRuntime::accPlan(const accel::DescriptorProgram &prog)
{
    Plan plan;
    plan.prog = prog;
    std::vector<std::uint8_t> image = accel::encode(prog);
    plan.descBytes = image.size();
    plan.descAddr = cmdAlloc_->alloc(plan.descBytes);
    std::memcpy(mem_->raw(plan.descAddr, plan.descBytes), image.data(),
                image.size());

    // Footprint the host may hold dirty in its caches: one iteration's
    // input operands per COMP (flushCost clamps at LLC capacity).
    double dirty = 0.0;
    for (const accel::Instr &in : prog.instrs)
        if (in.type == accel::Instr::Type::Comp)
            dirty += in.call.inputBytes();
    plan.dirtyBytes = static_cast<std::uint64_t>(
        std::min(dirty, 1.0e9));

    // Hazard footprint for the asynchronous submit path.
    plan.intervals = accessIntervals(prog);

    AccPlanHandle h = nextHandle_++;
    plans_.emplace(h, std::move(plan));
    return h;
}

unsigned
MealibRuntime::homeStackOf(const accel::DescriptorProgram &prog) const
{
    for (const accel::Instr &in : prog.instrs)
        if (in.type == accel::Instr::Type::Comp)
            return stackOf(in.call.out.base);
    return 0;
}

unsigned
MealibRuntime::homeStackOf(AccPlanHandle handle) const
{
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "homeStackOf: unknown plan handle ",
            handle);
    return homeStackOf(it->second.prog);
}

Cost
MealibRuntime::remotePenalty(const accel::DescriptorProgram &prog,
                             unsigned home, double *remoteBytes) const
{
    // Operands on Remote Memory Stacks cross the HMC-style serial
    // links: cheaper than going through the host, but far below the
    // internal TSV bandwidth (Sec. 3.3).
    double bytes = 0.0;
    accel::LoopSpec active;
    std::uint32_t remaining = 0;
    for (const accel::Instr &in : prog.instrs) {
        if (in.type == accel::Instr::Type::Loop) {
            active = in.loop;
            remaining = in.bodyCount;
            continue;
        }
        if (in.type == accel::Instr::Type::Comp) {
            accel::LoopSpec loop = remaining ? active
                                             : accel::LoopSpec{};
            for (const accel::OperandTraffic &t :
                 accel::operandTraffic(in.call, loop)) {
                if (stackOf(t.op->base) != home)
                    bytes += t.bytes;
            }
        }
        if (remaining && --remaining == 0)
            active = accel::LoopSpec{};
    }
    if (remoteBytes)
        *remoteBytes = bytes;

    Cost c;
    if (bytes > 0.0) {
        double link_bw = cfg_.dram.org.linkBandwidth;
        double internal_bw = cfg_.dram.peakInternalBandwidth();
        double slowdown = 1.0 / link_bw - 1.0 / internal_bw;
        c.seconds = bytes * (slowdown > 0.0 ? slowdown : 0.0);
        c.joules = bytes * cfg_.linkJPerByte;
    }
    return c;
}

void
MealibRuntime::hostWork(double seconds)
{
    hostSeconds_ += seconds;
    acct_.hostBusySeconds += seconds;
}

void
MealibRuntime::hostWaitUntil(double seconds)
{
    if (seconds > hostSeconds_)
        hostSeconds_ = seconds;
}

void
MealibRuntime::updateMakespan()
{
    double frontier = hostSeconds_;
    for (const CommandQueue &q : queues_)
        frontier = std::max(frontier, q.busyUntilSeconds());
    acct_.makespanSeconds = std::max(acct_.makespanSeconds, frontier);
}

Event
MealibRuntime::accSubmit(AccPlanHandle handle)
{
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accSubmit: unknown plan handle ",
            handle);
    return accSubmitOn(handle, sched_->pick(homeStackOf(it->second.prog)));
}

Event
MealibRuntime::accSubmitOn(AccPlanHandle handle, unsigned stackIdx)
{
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accSubmit: unknown plan handle ",
            handle);
    fatalIf(stackIdx >= cfg_.numStacks, "accSubmit: stack ", stackIdx,
            " out of range (", cfg_.numStacks, " stacks)");
    Plan &plan = it->second;

    // 1. Coherence: write back dirty lines so the memory-side view is
    //    current (wbinvd, Sec. 3.5).
    Cost flush = host_.flushCost(plan.dirtyBytes);

    // 2. Descriptor copy + START write + DONE poll over the host links.
    double link_bw = cfg_.dram.org.linkBandwidth;
    Cost handshake;
    handshake.seconds = static_cast<double>(plan.descBytes) / link_bw +
                        2.0e-6; // two link round trips
    handshake.joules = cfg_.hostCpu.idleW * handshake.seconds;

    // 3. Hand the arrays to the accelerators (exclusive ownership).
    //    Functional execution happens eagerly in submission order;
    //    hazard chains below guarantee that any order the timeline
    //    could legally report computes these same values.
    const std::uint8_t *img = mem_->raw(plan.descAddr, plan.descBytes);
    accel::writeCommand(mem_->raw(plan.descAddr, plan.descBytes),
                        plan.descBytes, accel::Command::Start);
    accel::DescriptorProgram prog =
        accel::decode(img, plan.descBytes);

    stacks_[stackIdx]->acquire(dram::Owner::Accelerator);
    accel::ExecStats es = layers_[stackIdx]->execute(prog, *mem_);
    stacks_[stackIdx]->release(dram::Owner::Accelerator);

    // Inter-stack traffic for operands left on stacks remote to the
    // one that executed the plan.
    if (cfg_.numStacks > 1) {
        Cost remote = remotePenalty(prog, stackIdx, &es.remoteBytes);
        es.total += remote;
        es.remote = remote;
    }

    accel::writeCommand(mem_->raw(plan.descAddr, plan.descBytes),
                        plan.descBytes, accel::Command::Done);

    // Everything accounted so far occupies the stack; the flush and
    // handshake below occupy the host track instead.
    const double accelSpan = es.total.seconds;

    // Fold the software-side invocation costs into the stats.
    es.invocation += flush + handshake;
    es.total += flush + handshake;

    acct_.invocation += es.invocation;
    Cost accel_only{es.total.seconds - es.invocation.seconds,
                    es.total.joules - es.invocation.joules};
    acct_.accel += accel_only;
    for (const auto &[k, v] : es.timeByAccel.parts())
        acct_.timeByAccel.add(k, v);
    for (const auto &[k, v] : es.energyByAccel.parts())
        acct_.energyByAccel.add(k, v);

    // --- timeline: place the command on its stack's queue -------------
    hostWork(flush.seconds + handshake.seconds);
    CommandQueue &q = queues_[stackIdx];
    hostWaitUntil(q.admitSeconds(hostSeconds_)); // stall on a full queue
    q.retireUpTo(hostSeconds_);

    // Retire hazard records the host clock has already passed: a new
    // command cannot start before the host submitted it.
    std::erase_if(pending_, [&](const PendingAccess &pa) {
        return pa.finishSeconds <= hostSeconds_;
    });

    double ready = hostSeconds_;
    for (const PendingAccess &pa : pending_)
        for (const AccessInterval &iv : plan.intervals)
            if (iv.conflictsWith(pa.interval))
                ready = std::max(ready, pa.finishSeconds);

    const double start = std::max(ready, q.busyUntilSeconds());
    const double finish = start + accelSpan;
    q.push(start, finish);
    acct_.busyByStack.add("stack" + std::to_string(stackIdx),
                          accelSpan);
    for (const AccessInterval &iv : plan.intervals)
        pending_.push_back({iv, finish});

    auto state = std::make_shared<detail::EventState>();
    state->id = nextEventId_++;
    state->stack = stackIdx;
    state->submitSeconds = hostSeconds_;
    state->startSeconds = start;
    state->finishSeconds = finish;
    state->epoch = epoch_;
    state->stats = es;
    inflight_.push_back(state);
    updateMakespan();
    return Event(this, state);
}

const accel::ExecStats &
MealibRuntime::eventWait(const std::shared_ptr<detail::EventState> &state)
{
    // Events submitted before a resetAccounting() are stale: their
    // times belong to a discarded timeline, so waiting is a no-op.
    if (state->epoch == epoch_ && !state->waited) {
        hostWaitUntil(state->finishSeconds);
        std::erase(inflight_, state);
        updateMakespan();
    }
    state->waited = true;
    return state->stats;
}

void
MealibRuntime::waitAll()
{
    for (const auto &state : inflight_) {
        hostWaitUntil(state->finishSeconds);
        state->waited = true;
    }
    inflight_.clear();
    // Every recorded access has finished by now.
    pending_.clear();
    for (CommandQueue &q : queues_)
        q.retireUpTo(hostSeconds_);
    updateMakespan();
}

accel::ExecStats
MealibRuntime::accExecute(AccPlanHandle handle)
{
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accExecute: unknown plan handle ",
            handle);
    // The paper's blocking Listing-2 semantics: submit on the plan's
    // home stack, then poll DONE.
    Event ev = accSubmitOn(handle, homeStackOf(it->second.prog));
    return ev.wait();
}

void
MealibRuntime::accDestroy(AccPlanHandle handle)
{
    auto it = plans_.find(handle);
    fatalIf(it == plans_.end(), "accDestroy: unknown plan handle ",
            handle);
    cmdAlloc_->free(it->second.descAddr);
    plans_.erase(it);
}

Cost
MealibRuntime::runOnHost(const host::KernelProfile &profile)
{
    Cost c = host_.run(profile);
    acct_.host += c;
    hostWork(c.seconds);
    updateMakespan();
    return c;
}

void
MealibRuntime::resetAccounting()
{
    acct_ = RuntimeAccounting{};
    hostSeconds_ = 0.0;
    pending_.clear();
    inflight_.clear();
    for (CommandQueue &q : queues_)
        q.reset();
    sched_->reset();
    nextEventId_ = 1;
    epoch_++;
}

const accel::ExecStats &
Event::wait()
{
    fatalIf(!valid(), "Event::wait: invalid event");
    return rt_->eventWait(state_);
}

} // namespace mealib::runtime
