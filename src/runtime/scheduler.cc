#include "runtime/scheduler.hh"

#include "common/logging.hh"

namespace mealib::runtime {

const char *
name(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::RoundRobin:
        return "round_robin";
      case SchedulerPolicy::Locality:
        return "locality";
      default:
        panic("name: bad scheduler policy");
    }
}

SchedulerPolicy
schedulerPolicy(const std::string &name)
{
    if (name == "round_robin" || name == "rr")
        return SchedulerPolicy::RoundRobin;
    if (name == "locality")
        return SchedulerPolicy::Locality;
    fatal("unknown scheduler policy '", name,
          "' (expected 'round_robin' or 'locality')");
}

Scheduler::Scheduler(SchedulerPolicy policy, unsigned numStacks)
    : policy_(policy), numStacks_(numStacks), healthy_(numStacks),
      failed_(numStacks, false), unavailable_(numStacks, false)
{
    fatalIf(numStacks == 0, "scheduler: need at least one stack");
}

void
Scheduler::markFailed(unsigned stack)
{
    fatalIf(stack >= numStacks_, "markFailed: stack ", stack,
            " out of range (", numStacks_, " stacks)");
    if (!failed_[stack]) {
        failed_[stack] = true;
        --healthy_;
    }
}

bool
Scheduler::failed(unsigned stack) const
{
    return stack < numStacks_ && failed_[stack];
}

void
Scheduler::setAvailable(unsigned stack, bool available)
{
    fatalIf(stack >= numStacks_, "setAvailable: stack ", stack,
            " out of range (", numStacks_, " stacks)");
    unavailable_[stack] = !available;
}

bool
Scheduler::available(unsigned stack) const
{
    return stack < numStacks_ && !unavailable_[stack];
}

unsigned
Scheduler::selectableCount() const
{
    unsigned n = 0;
    for (unsigned s = 0; s < numStacks_; ++s)
        if (!failed_[s] && !unavailable_[s])
            ++n;
    return n;
}

bool
Scheduler::preferred(unsigned stack) const
{
    return !failed_[stack] && !unavailable_[stack];
}

void
Scheduler::reset()
{
    next_ = 0;
    healthy_ = numStacks_;
    failed_.assign(numStacks_, false);
    unavailable_.assign(numStacks_, false);
}

unsigned
Scheduler::pick(unsigned homeStack)
{
    panicIf(healthy_ == 0, "pick: every stack is marked failed");
    // Quarantine is best-effort steering: honor the availability mask
    // while it leaves a candidate, otherwise pick among every
    // non-failed stack so submissions never strand.
    const bool useMask = selectableCount() > 0;
    auto pickable = [&](unsigned s) {
        return useMask ? preferred(s) : !failed_[s];
    };
    switch (policy_) {
      case SchedulerPolicy::RoundRobin:
        while (true) {
            unsigned s = next_++ % numStacks_;
            if (pickable(s))
                return s;
        }
      case SchedulerPolicy::Locality: {
        unsigned s = homeStack < numStacks_ ? homeStack : 0;
        // A failed home reroutes to the next healthy stack upward —
        // deterministic, and adjacent homes spread across survivors.
        for (unsigned i = 0; i < numStacks_; ++i) {
            unsigned cand = (s + i) % numStacks_;
            if (pickable(cand))
                return cand;
        }
        panic("pick: no healthy stack found");
      }
      default:
        panic("pick: bad scheduler policy");
    }
}

} // namespace mealib::runtime
