#include "runtime/scheduler.hh"

#include "common/logging.hh"

namespace mealib::runtime {

const char *
name(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::RoundRobin:
        return "round_robin";
      case SchedulerPolicy::Locality:
        return "locality";
      default:
        panic("name: bad scheduler policy");
    }
}

SchedulerPolicy
schedulerPolicy(const std::string &name)
{
    if (name == "round_robin" || name == "rr")
        return SchedulerPolicy::RoundRobin;
    if (name == "locality")
        return SchedulerPolicy::Locality;
    fatal("unknown scheduler policy '", name,
          "' (expected 'round_robin' or 'locality')");
}

Scheduler::Scheduler(SchedulerPolicy policy, unsigned numStacks)
    : policy_(policy), numStacks_(numStacks), healthy_(numStacks),
      failed_(numStacks, false)
{
    fatalIf(numStacks == 0, "scheduler: need at least one stack");
}

void
Scheduler::markFailed(unsigned stack)
{
    fatalIf(stack >= numStacks_, "markFailed: stack ", stack,
            " out of range (", numStacks_, " stacks)");
    if (!failed_[stack]) {
        failed_[stack] = true;
        --healthy_;
    }
}

bool
Scheduler::failed(unsigned stack) const
{
    return stack < numStacks_ && failed_[stack];
}

void
Scheduler::reset()
{
    next_ = 0;
    healthy_ = numStacks_;
    failed_.assign(numStacks_, false);
}

unsigned
Scheduler::pick(unsigned homeStack)
{
    panicIf(healthy_ == 0, "pick: every stack is marked failed");
    switch (policy_) {
      case SchedulerPolicy::RoundRobin:
        while (true) {
            unsigned s = next_++ % numStacks_;
            if (!failed_[s])
                return s;
        }
      case SchedulerPolicy::Locality: {
        unsigned s = homeStack < numStacks_ ? homeStack : 0;
        // A failed home reroutes to the next healthy stack upward —
        // deterministic, and adjacent homes spread across survivors.
        for (unsigned i = 0; i < numStacks_; ++i) {
            unsigned cand = (s + i) % numStacks_;
            if (!failed_[cand])
                return cand;
        }
        panic("pick: no healthy stack found");
      }
      default:
        panic("pick: bad scheduler policy");
    }
}

} // namespace mealib::runtime
