#include "runtime/scheduler.hh"

#include "common/logging.hh"

namespace mealib::runtime {

const char *
name(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::RoundRobin:
        return "round_robin";
      case SchedulerPolicy::Locality:
        return "locality";
      default:
        panic("name: bad scheduler policy");
    }
}

SchedulerPolicy
schedulerPolicy(const std::string &name)
{
    if (name == "round_robin" || name == "rr")
        return SchedulerPolicy::RoundRobin;
    if (name == "locality")
        return SchedulerPolicy::Locality;
    fatal("unknown scheduler policy '", name,
          "' (expected 'round_robin' or 'locality')");
}

Scheduler::Scheduler(SchedulerPolicy policy, unsigned numStacks)
    : policy_(policy), numStacks_(numStacks)
{
    fatalIf(numStacks == 0, "scheduler: need at least one stack");
}

unsigned
Scheduler::pick(unsigned homeStack)
{
    switch (policy_) {
      case SchedulerPolicy::RoundRobin:
        return next_++ % numStacks_;
      case SchedulerPolicy::Locality:
        return homeStack < numStacks_ ? homeStack : 0;
      default:
        panic("pick: bad scheduler policy");
    }
}

} // namespace mealib::runtime
