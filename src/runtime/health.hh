/**
 * @file
 * Per-stack health monitoring: quarantine and probationary re-admission
 * (docs/FAULTS.md).
 *
 * PR 2's failure handling was binary — a stack is healthy until
 * failStack() kills it forever. Real stacks are flakier than that: a
 * marginal SerDes lane or a hot vault produces bursts of transient
 * faults, and the right response is to steer work away *temporarily*,
 * keep probing, and re-admit the stack once it behaves again.
 *
 * StackHealthMonitor scores each stack over a sliding window of its
 * most recent command outcomes. When the faulted fraction crosses the
 * quarantine threshold the stack is quarantined: the scheduler's
 * availability mask steers both policies around it. After a cooldown
 * (measured in global submissions, so replay is deterministic) the
 * stack enters probation and the runtime routes canary commands to it;
 * a clean streak re-admits it, another fault re-quarantines it and
 * costs a strike. Too many strikes and the stack is declared dead for
 * good (the monitor reports Action::Die; the runtime calls
 * failStack()).
 *
 *   Healthy ──score ≥ threshold──► Quarantined
 *      ▲                               │ cooldown elapses
 *      │ canary streak clean           ▼
 *      └────────────────────────── Probation
 *                                      │ canary faults
 *                                      ▼
 *                     Quarantined (strike++) ──strikes ≥ max──► Dead
 *
 * Everything is a pure function of the submission stream, so a given
 * (seed, config, workload) triple quarantines and re-admits the same
 * stacks at the same points on every run.
 */

#ifndef MEALIB_RUNTIME_HEALTH_HH
#define MEALIB_RUNTIME_HEALTH_HH

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/status.hh"

namespace mealib::runtime {

/** Lifecycle state of one stack in the health monitor. */
enum class StackHealth
{
    Healthy = 0, //!< full member of the scheduling set
    Quarantined, //!< steered around; waiting out the cooldown
    Probation,   //!< receiving canary commands, one fault from strike
    Dead,        //!< permanently failed (scripted or struck out)
};

/** Printable state name ("healthy", "quarantined", ...). */
const char *name(StackHealth state);

/** Quarantine/re-admission policy. Disabled by default. */
struct HealthConfig
{
    /** Faulted fraction of the window that quarantines a stack;
     * 0 disables the monitor entirely. */
    double quarantineThreshold = 0.0;

    /** Sliding window length, in commands resolved on the stack. */
    unsigned windowCommands = 16;

    /** Outcomes required before the score is trusted (no quarantine
     * off a single unlucky first command). */
    unsigned minSamples = 4;

    /** Cooldown: global submissions between quarantine entry and
     * probation. */
    unsigned probationAfterCommands = 32;

    /** Clean canary commands in a row that re-admit a probation
     * stack. */
    unsigned canaryCommands = 2;

    /** Quarantine strikes before the stack is declared permanently
     * dead; 0 = never struck out. */
    unsigned maxStrikes = 0;

    bool enabled() const { return quarantineThreshold > 0.0; }

    /** InvalidArgument on a threshold outside (0, 1], a zero window,
     * or a zero canary streak. */
    Status validate() const;
};

/** The per-stack sliding-window fault scorer. */
class StackHealthMonitor
{
  public:
    /** What the runtime must do after recordOutcome(). */
    enum class Action
    {
        None = 0,
        Quarantine, //!< remove the stack from the scheduling set
        Readmit,    //!< restore the stack to the scheduling set
        Die,        //!< strikes exhausted: fail the stack permanently
    };

    /** Sentinel for "no stack" (canaryTarget with nothing on probation). */
    static constexpr unsigned kNone =
        std::numeric_limits<unsigned>::max();

    StackHealthMonitor(const HealthConfig &cfg, unsigned numStacks);

    bool enabled() const { return cfg_.enabled(); }
    const HealthConfig &config() const { return cfg_; }

    /** Current lifecycle state of @p stack. */
    StackHealth state(unsigned stack) const;

    /** Faulted fraction of @p stack's current window (0 when empty). */
    double score(unsigned stack) const;

    /** Quarantine strikes charged against @p stack so far. */
    unsigned strikes(unsigned stack) const;

    /**
     * Advance the monitor to global submission @p cmd: quarantined
     * stacks whose cooldown has elapsed move to probation. @return the
     * stacks that changed state (the runtime restores their scheduler
     * availability).
     */
    std::vector<unsigned> beginCommand(std::uint64_t cmd);

    /** Probation stack that should receive the next canary command,
     * or kNone. Lowest-numbered first for determinism. */
    unsigned canaryTarget() const;

    /**
     * Record one resolved command on @p stack at global submission
     * @p cmd. @p faulted means the command needed the recovery ladder:
     * retries, a detected corruption, or outright failure (in-line
     * corrected ECC does not count — it is invisible latency, not a
     * health signal). @return the action the runtime must take.
     */
    Action recordOutcome(unsigned stack, std::uint64_t cmd, bool faulted);

    /** Mark @p stack permanently dead (scripted failure, failStack). */
    void markDead(unsigned stack);

    /** Total healthy→quarantined transitions (accounting). */
    std::uint64_t quarantines() const { return quarantines_; }

    /** Total probation→healthy re-admissions (accounting). */
    std::uint64_t readmissions() const { return readmissions_; }

    /** Restore construction-time state (resetAccounting). */
    void reset();

  private:
    struct Slot
    {
        StackHealth state = StackHealth::Healthy;
        std::deque<bool> window;        //!< true = faulted
        unsigned faults = 0;            //!< faulted entries in window
        unsigned strikes = 0;
        std::uint64_t quarantinedAt = 0; //!< cmd of quarantine entry
        unsigned cleanCanaries = 0;      //!< streak while on probation
    };

    void quarantine(Slot &slot, std::uint64_t cmd);

    HealthConfig cfg_;
    std::vector<Slot> slots_;
    std::uint64_t quarantines_ = 0;
    std::uint64_t readmissions_ = 0;
};

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_HEALTH_HH
