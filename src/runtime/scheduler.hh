/**
 * @file
 * Plan-placement policies for the asynchronous command-queue engine.
 *
 * When a runtime drives more than one memory stack, every submitted
 * plan must be homed on one of them. The scheduler makes that choice:
 * `round_robin` spreads plans across stacks for throughput regardless
 * of where their operands live, while `locality` homes each plan on
 * the stack that owns its first output operand (the paper's Local
 * Memory Stack rule, Sec. 3.3) so no inter-stack link traffic is paid.
 */

#ifndef MEALIB_RUNTIME_SCHEDULER_HH
#define MEALIB_RUNTIME_SCHEDULER_HH

#include <string>
#include <vector>

namespace mealib::runtime {

/** Stack-selection policy for submitted plans. */
enum class SchedulerPolicy
{
    RoundRobin, //!< cycle through stacks, ignoring operand placement
    Locality,   //!< home each plan on its output operand's stack
};

/** Printable policy name ("round_robin" / "locality"). */
const char *name(SchedulerPolicy policy);

/** Parse a policy name; fatal() on anything unrecognized. */
SchedulerPolicy schedulerPolicy(const std::string &name);

/** The stack picker. One instance per runtime; stateful (round robin
 * keeps a cursor, and failed stacks are remembered) so reset()
 * restores a freshly constructed ledger. Degradation-aware: stacks
 * marked failed are never picked — locality reroutes an unhealthy home
 * to the next healthy stack, round robin skips failed slots — so new
 * submissions steer away from dead hardware (docs/FAULTS.md). */
class Scheduler
{
  public:
    Scheduler(SchedulerPolicy policy, unsigned numStacks);

    /** Stack the next plan should execute on, never a failed one.
     * @p homeStack is the stack owning the plan's first output operand.
     * Requires healthyCount() > 0 (the runtime falls back to the host
     * before asking an all-failed scheduler). */
    unsigned pick(unsigned homeStack);

    /** Mark @p stack permanently failed: pick() avoids it from now on. */
    void markFailed(unsigned stack);

    /** @return whether @p stack has been marked failed. */
    bool failed(unsigned stack) const;

    /** Stacks not marked failed. */
    unsigned healthyCount() const { return healthy_; }

    SchedulerPolicy policy() const { return policy_; }

    /** Restore construction-time state (used by resetAccounting),
     * including stack health: scripted failures replay from scratch. */
    void reset();

  private:
    SchedulerPolicy policy_;
    unsigned numStacks_;
    unsigned next_ = 0;
    unsigned healthy_;
    std::vector<bool> failed_;
};

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_SCHEDULER_HH
