/**
 * @file
 * Plan-placement policies for the asynchronous command-queue engine.
 *
 * When a runtime drives more than one memory stack, every submitted
 * plan must be homed on one of them. The scheduler makes that choice:
 * `round_robin` spreads plans across stacks for throughput regardless
 * of where their operands live, while `locality` homes each plan on
 * the stack that owns its first output operand (the paper's Local
 * Memory Stack rule, Sec. 3.3) so no inter-stack link traffic is paid.
 */

#ifndef MEALIB_RUNTIME_SCHEDULER_HH
#define MEALIB_RUNTIME_SCHEDULER_HH

#include <string>
#include <vector>

namespace mealib::runtime {

/** Stack-selection policy for submitted plans. */
enum class SchedulerPolicy
{
    RoundRobin, //!< cycle through stacks, ignoring operand placement
    Locality,   //!< home each plan on its output operand's stack
};

/** Printable policy name ("round_robin" / "locality"). */
const char *name(SchedulerPolicy policy);

/** Parse a policy name; fatal() on anything unrecognized. */
SchedulerPolicy schedulerPolicy(const std::string &name);

/** The stack picker. One instance per runtime; stateful (round robin
 * keeps a cursor, and failed stacks are remembered) so reset()
 * restores a freshly constructed ledger. Degradation-aware: stacks
 * marked failed are never picked — locality reroutes an unhealthy home
 * to the next healthy stack, round robin skips failed slots — so new
 * submissions steer away from dead hardware (docs/FAULTS.md).
 *
 * On top of the permanent failed bitmap the scheduler keeps a soft
 * availability mask driven by the stack health monitor: a quarantined
 * stack is alive but not picked while any available stack remains.
 * With every survivor quarantined at once, pick() falls back to the
 * full non-failed set so submissions never strand. */
class Scheduler
{
  public:
    Scheduler(SchedulerPolicy policy, unsigned numStacks);

    /** Stack the next plan should execute on, never a failed one.
     * @p homeStack is the stack owning the plan's first output operand.
     * Requires healthyCount() > 0 (the runtime falls back to the host
     * before asking an all-failed scheduler). */
    unsigned pick(unsigned homeStack);

    /** Mark @p stack permanently failed: pick() avoids it from now on. */
    void markFailed(unsigned stack);

    /** @return whether @p stack has been marked failed. */
    bool failed(unsigned stack) const;

    /** Stacks not marked failed. */
    unsigned healthyCount() const { return healthy_; }

    /** Soft availability (quarantine steering): an unavailable stack is
     * skipped by pick() while an available one exists. No effect on a
     * failed stack. */
    void setAvailable(unsigned stack, bool available);

    /** @return whether @p stack is currently available to pick(). */
    bool available(unsigned stack) const;

    /** Stacks neither failed nor quarantined (pick()'s preferred set). */
    unsigned selectableCount() const;

    SchedulerPolicy policy() const { return policy_; }

    /** Restore construction-time state (used by resetAccounting),
     * including stack health: scripted failures replay from scratch. */
    void reset();

  private:
    /** @return whether @p stack is in pick()'s preferred set. */
    bool preferred(unsigned stack) const;

    SchedulerPolicy policy_;
    unsigned numStacks_;
    unsigned next_ = 0;
    unsigned healthy_;
    std::vector<bool> failed_;
    std::vector<bool> unavailable_; //!< quarantined (soft, reversible)
};

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_SCHEDULER_HH
