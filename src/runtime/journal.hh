/**
 * @file
 * Command-granular checkpoint/replay journal (docs/FAULTS.md).
 *
 * A descriptor program is a sequence of expanded COMP iterations; the
 * paper's runtime retries or re-executes the *whole* program when an
 * attempt dies. For long rerunSafe programs that wastes most of the
 * work already done. The checkpoint layer snapshots the program's
 * written operand intervals every `intervalComps` expanded COMPs: the
 * snapshot write is priced against the stack's internal bandwidth and
 * the journal energy constant, and a committed snapshot lets a retry —
 * or a drain to a surviving stack after stack death — resume from the
 * last checkpoint instead of iteration zero.
 *
 * Snapshots are committed only after the attempt's end-to-end operand
 * verification passes (integrity.hh), so a silently corrupt attempt
 * never pollutes the journal: its snapshots are written (and priced)
 * but discarded, and replay restarts from the previous good position.
 *
 * The journal is keyed by global submission index and records the
 * DescriptorProgram position (expanded-COMP count and span fraction)
 * of every committed snapshot, so resumption points are deterministic
 * and inspectable by tests and the chaos harness.
 */

#ifndef MEALIB_RUNTIME_JOURNAL_HH
#define MEALIB_RUNTIME_JOURNAL_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.hh"

namespace mealib::runtime {

/** Checkpointing policy. Disabled by default (zero interval). */
struct CheckpointConfig
{
    /** Expanded COMP iterations between snapshots; 0 disables
     * checkpointing entirely. */
    unsigned intervalComps = 0;

    /** Snapshot write energy, joules per journaled byte (resolved from
     * the active machine profile by RuntimeConfig's constructor). */
    double journalJPerByte = 0.0;

    bool enabled() const { return intervalComps > 0; }

    /** InvalidArgument on negative or non-finite journal pricing. */
    Status validate() const;
};

/** One committed snapshot: where in the program, and what it cost. */
struct CheckpointRecord
{
    std::uint64_t command = 0; //!< global submission index
    unsigned stack = 0;        //!< stack the snapshot was written on
    std::uint64_t comps = 0;   //!< expanded COMPs covered
    double fraction = 0.0;     //!< span fraction covered, in [0, 1)
    std::uint64_t bytes = 0;   //!< operand bytes journaled
};

/** The committed-snapshot log, keyed by DescriptorProgram position. */
class ReplayJournal
{
  public:
    /** Append one committed snapshot. */
    void record(const CheckpointRecord &rec);

    /** Last committed span fraction of @p command at or before
     * @p fraction (0 when nothing usable is committed). This is the
     * position a drain resumes from when the stack dies @p fraction
     * of the way through the command's span. */
    double lastFractionAtOrBefore(std::uint64_t command,
                                  double fraction) const;

    /** Every committed snapshot, in commit order. */
    const std::vector<CheckpointRecord> &log() const { return log_; }

    /** Committed snapshots (accounting). */
    std::uint64_t taken() const { return log_.size(); }

    /** Drop everything (resetAccounting). */
    void reset();

  private:
    std::vector<CheckpointRecord> log_;
    /** Committed fractions per command, ascending. */
    std::map<std::uint64_t, std::vector<double>> byCommand_;
};

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_JOURNAL_HH
