/**
 * @file
 * The MEALib runtime (paper Sec. 3.3-3.5): shared memory management over
 * a unified physical address space, and the accelerator control routines
 * mealib_acc_plan / mealib_acc_execute / mealib_acc_destroy.
 *
 * MealibRuntime stands in for the device driver + runtime library pair:
 * the "driver" reserves a physically contiguous region split into a
 * command space (descriptors) and a data space (operands), and "maps" it
 * so the host touches it through virtual pointers (here: host pointers
 * into the functional arena) while accelerators use physical addresses.
 *
 * Invocation costs are accounted the way the paper measures them
 * (Sec. 5.5): cache flushing (wbinvd) before handing arrays to the
 * accelerators, descriptor copy into the command space, and the START
 * handshake.
 *
 * On top of the paper's blocking Listing-2 triple, the runtime provides
 * an asynchronous command-queue engine (docs/RUNTIME.md): accSubmit()
 * enqueues a plan on a per-stack command queue and returns an Event;
 * hazards inferred from descriptor operand intervals (RAW/WAR/WAW on
 * physical ranges) chain dependent plans while independent plans on
 * different stacks overlap, and overlap with host work submitted via
 * runOnHost(). accExecute() is a thin submit+wait wrapper, so the
 * serial cost ledger is identical to the blocking implementation.
 */

#ifndef MEALIB_RUNTIME_RUNTIME_HH
#define MEALIB_RUNTIME_RUNTIME_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "accel/descriptor.hh"
#include "accel/layer.hh"
#include "common/ledger.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "common/units.hh"
#include "dram/physmem.hh"
#include "dram/stack.hh"
#include "fault/fault.hh"
#include "fault/integrity.hh"
#include "host/cpu.hh"
#include "noc/mesh.hh"
#include "runtime/alloc.hh"
#include "runtime/event.hh"
#include "runtime/health.hh"
#include "runtime/journal.hh"
#include "runtime/queue.hh"
#include "runtime/residency.hh"
#include "runtime/scheduler.hh"

namespace mealib::hwmodel {
struct MachineProfile;
}

namespace mealib::runtime {

/**
 * Bind @p ledger as the calling thread's session ledger and return the
 * previous binding (null if none; null unbinds). While bound, every
 * cost the runtime posts to its aggregate ledger on this thread is
 * mirrored into @p ledger too — same sites, same order, same values —
 * so a session's ledger holds exactly its own commands' share of the
 * aggregate accounting. `mealib::Session::bind()` wraps this in an
 * RAII guard; unbound threads change nothing.
 */
EnergyLedger *bindSessionLedger(EnergyLedger *ledger);

/** The calling thread's bound session ledger (null if none). */
EnergyLedger *boundSessionLedger();

/**
 * Recovery policy for injected faults (docs/FAULTS.md): bounded retry
 * with exponential backoff for transient faults, then — if allowed —
 * transparent re-execution of the plan on the host.
 */
struct RetryPolicy
{
    /** Retries after the first failed attempt (0 = fail fast). */
    unsigned maxRetries = 3;
    /** Backoff before retry k: base * multiplier^k seconds. */
    double backoffBaseSeconds = 2.0e-6;
    double backoffMultiplier = 2.0;
    /** Re-run the plan on the host (minimkl naive-kernel cost model)
     * when the retry budget is exhausted or no stack survives. With
     * this off, exhausted commands terminate TIMED_OUT / FAILED. */
    bool hostFallback = true;
};

/** Construction parameters of the runtime. */
struct RuntimeConfig
{
    std::uint64_t backingBytes = 256_MiB; //!< functional arena size
    std::uint64_t commandBytes = 1_MiB;   //!< command space size
    unsigned numStacks = 1;               //!< memory stacks (Fig. 2)
    dram::DramParams dram;                //!< each accelerated stack
    host::CpuParams hostCpu;              //!< the host processor
    noc::MeshParams mesh;                 //!< accelerator-layer NoC
    bool functional = true;               //!< run kernels for real
    /** Inter-stack SerDes link energy (HMC-style high-speed links). */
    double linkJPerByte = 10.0_pJ;
    /** Outstanding commands each per-stack queue admits before a
     * submit stalls the host (the command-buffer size). */
    unsigned queueDepth = 8;
    /** Stack-placement policy for accSubmit(). */
    SchedulerPolicy scheduler = SchedulerPolicy::Locality;

    /** Seeded fault injection (disabled by default: all rates zero and
     * no scripted failure, so the ledger is bit-for-bit identical to a
     * fault-free build). */
    fault::FaultConfig fault;
    /** Recovery policy applied when injection is enabled. */
    RetryPolicy retry;
    /** Per-command watchdog on the simulated clock: a hung command is
     * declared dead after this long and handed to the retry policy. */
    double watchdogSeconds = 100.0e-6;

    /** End-to-end operand verification (off by default; pricing
     * resolved from the active machine profile). */
    fault::IntegrityConfig integrity;
    /** Command-granular checkpoint/replay (off by default). */
    CheckpointConfig checkpoint;
    /** Stack quarantine / re-admission policy (off by default). */
    HealthConfig health;

    /** Cross-command operand residency tracking (docs/RUNTIME.md): when
     * enabled, flushes shrink to host-dirtied intervals and integrity
     * verification skips intervals whose cached checksum is still
     * valid. Off by default (bit-for-bit identical ledger); the
     * constructor seeds it from MEALIB_RESIDENCY. */
    ResidencyConfig residency;

    /** Defaults from the process-wide active machine profile. */
    RuntimeConfig();

    /** Defaults from an explicit machine profile — the session path:
     * a session captures its profile once and never consults the
     * mutable active-machine global again. */
    explicit RuntimeConfig(const hwmodel::MachineProfile &machine);

    /** InvalidArgument with a descriptive message if the configuration
     * is inconsistent (zero-sized spaces, command space swallowing a
     * stack, no stacks, zero queue depth, bad fault rates or health
     * thresholds). The runtime constructor throws MealibError on a
     * non-ok validate(). */
    Status validate() const;
};

/** Opaque plan handle (the acc_plan of Listing 2). */
using AccPlanHandle = std::uint64_t;

/** Cumulative accounting for the Fig. 13/14 style breakdowns. */
struct RuntimeAccounting
{
    Cost host;        //!< host-executed (compute-bounded) work
    Cost accel;       //!< accelerator-executed work
    Cost invocation;  //!< flush + descriptor copy + config overheads
    /** Operand verification + checkpoint journaling (zero unless the
     * integrity/checkpoint layers are enabled). */
    Cost integrity;
    Breakdown timeByAccel;
    Breakdown energyByAccel;

    // --- overlap-aware view (async command-queue engine) --------------
    /** Critical path: when the latest of {host track, every stack's
     * queue} finishes on the simulated timeline. For purely blocking
     * accExecute() workloads this equals total().seconds. */
    double makespanSeconds = 0.0;
    /** Host-track time spent doing work (flush/handshake/runOnHost),
     * excluding time the host waited on events or full queues. */
    double hostBusySeconds = 0.0;
    /** Per-stack accelerator busy seconds, keyed "stack0", "stack1"... */
    Breakdown busyByStack;

    // --- degraded-mode view (fault injection, docs/FAULTS.md) ---------
    /** Host seconds spent re-executing plans that fell back. */
    double fallbackSeconds = 0.0;
    /** Failed attempts absorbed by retry (incl. drained commands). */
    std::uint64_t retryCount = 0;
    /** Commands that completed via host fallback. */
    std::uint64_t fallbackCount = 0;
    /** Watchdog expirations on hung commands. */
    std::uint64_t watchdogFires = 0;
    /** In-line corrected ECC events (latency-only). */
    std::uint64_t eccCorrected = 0;

    // --- integrity / checkpoint / health view (docs/FAULTS.md) --------
    /** Silent corruptions caught by end-to-end verification. */
    std::uint64_t silentDetected = 0;
    /** Silent corruptions that sailed through (verification off). */
    std::uint64_t silentUndetected = 0;
    /** Checkpoint snapshots committed to the replay journal. */
    std::uint64_t checkpointsTaken = 0;
    /** Commands that completed by resuming from a checkpoint. */
    std::uint64_t resumedFromCheckpoint = 0;
    /** Healthy-to-quarantined transitions of the health monitor. */
    std::uint64_t quarantines = 0;
    /** Probation-to-healthy re-admissions of the health monitor. */
    std::uint64_t readmissions = 0;

    // --- reuse view (residency / fusion, docs/RUNTIME.md) --------------
    /** Flush bytes skipped because the read set was clean-on-stack. */
    std::uint64_t flushBytesElided = 0;
    /** Verification bytes skipped on cached-checksum intervals
     * (host + stack passes). */
    std::uint64_t verifyBytesElided = 0;
    /** START handshakes saved by descriptor-program fusion. */
    std::uint64_t handshakesElided = 0;
    /** Fused multi-COMP programs submitted by the dispatch layer. */
    std::uint64_t fusedPrograms = 0;
    /** accPlan() calls served from the encoded-image memo. */
    std::uint64_t planImageReuses = 0;

    Cost
    total() const
    {
        return host + accel + invocation + integrity;
    }

    /** Wall-clock saved by host/accelerator and stack/stack overlap:
     * serial total minus the overlap-aware critical path. */
    double
    overlapSavedSeconds() const
    {
        return total().seconds - makespanSeconds;
    }
};

/**
 * The MEALib runtime instance: one host, N accelerated stacks.
 *
 * Thread-safe at the submit/queue/residency/health boundaries: every
 * mutating entry point (and every scalar state reader) serializes on
 * one internal mutex, so N sessions on N threads may share a runtime
 * (docs/SESSIONS.md). Reference-returning views — accounting(),
 * ledger(), residency(), faultModel(), journal(), healthMonitor(),
 * queue() — hand out unsynchronized state: read them only at
 * quiescence (no concurrent submissions). Lock order: a session's
 * dispatcher/backend locks are always taken *before* the runtime
 * mutex, and the runtime never calls back out, so the order is
 * acyclic.
 */
class MealibRuntime
{
  public:
    explicit MealibRuntime(const RuntimeConfig &cfg);

    // --- memory management runtime routines (Sec. 3.5) ----------------

    /** mealib_mem_alloc: physically contiguous data-space allocation on
     * stack 0. @return the host-visible (virtual) pointer. */
    void *memAlloc(std::uint64_t bytes);

    /**
     * mealib_mem_alloc with an explicit memory stack (paper Sec. 3.3/
     * 3.5: "the memory stack used for allocation can be explicitly
     * specified"). Data an accelerator processes should live on its
     * Local Memory Stack; operands left on Remote Memory Stacks cross
     * the inter-stack links and pay bandwidth/energy penalties.
     */
    void *memAllocOn(unsigned stack, std::uint64_t bytes);

    /** Stack that owns physical address @p paddr. */
    unsigned stackOf(Addr paddr) const;

    /** Number of configured memory stacks. */
    unsigned numStacks() const { return cfg_.numStacks; }

    /** mealib_mem_free. */
    void memFree(void *vptr);

    /** Virtual-to-physical translation (the runtime does this when
     * filling descriptor parameter blocks). */
    Addr physOf(const void *vptr) const;

    /**
     * Non-fatal physOf: true and *paddr filled when @p vptr lies in
     * the mapped arena, false otherwise (the dispatch backend uses
     * this to decline operands not in accelerator memory).
     */
    bool tryPhysOf(const void *vptr, Addr *paddr) const;

    /** Physical-to-virtual: host pointer for an accelerator address. */
    void *virtOf(Addr paddr);

    // --- accelerator control runtime routines (Listing 2) -------------

    /** mealib_acc_plan: build the descriptor in the command space. */
    AccPlanHandle accPlan(const accel::DescriptorProgram &prog);

    /** mealib_acc_execute: flush, write START, run, poll DONE.
     * Equivalent to accSubmit() on the plan's home stack followed by
     * Event::wait(). @return the cost of this invocation (also
     * accumulated). */
    accel::ExecStats accExecute(AccPlanHandle plan);

    /** mealib_acc_destroy. */
    void accDestroy(AccPlanHandle plan);

    // --- asynchronous command-queue engine -----------------------------

    /**
     * mealib_acc_submit: enqueue @p plan on the stack the configured
     * scheduler picks and return immediately with a completion Event.
     * The command starts once its stack's queue drains to it AND every
     * hazard against earlier in-flight commands (RAW/WAR/WAW overlap of
     * descriptor operand intervals) has resolved. The host track only
     * pays the flush + handshake (and stalls while the queue is full).
     */
    Event accSubmit(AccPlanHandle plan);

    /** accSubmit() with an explicit target stack. */
    Event accSubmitOn(AccPlanHandle plan, unsigned stack);

    /** Block the host track until every in-flight command is DONE. */
    void waitAll();

    /** Home stack of a plan: where its first output operand lives. */
    unsigned homeStackOf(AccPlanHandle plan) const;

    /** Simulated host-track clock, seconds since construction/reset. */
    double
    nowSeconds() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return hostSeconds_;
    }

    /** Commands submitted and not yet waited on. */
    std::size_t
    inflightCount() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return inflight_.size();
    }

    const CommandQueue &queue(unsigned stack) const;
    const Scheduler &scheduler() const { return *sched_; }

    // --- degradation & fault injection (docs/FAULTS.md) ---------------

    /**
     * Mark @p stack permanently failed. New submissions steer away from
     * it; its queued-but-unstarted commands (and the one it was running)
     * are drained to surviving stacks — or re-executed on the host when
     * none survive — with the cost charged to the degraded-mode ledger.
     */
    void failStack(unsigned stack);

    /** @return whether @p stack has been marked failed. */
    bool stackFailed(unsigned stack) const;

    /** Stacks not marked failed. */
    unsigned healthyStackCount() const;

    /**
     * Mark @p stack degraded: commands it executes occupy the timeline
     * @p slowdown times longer (>= 1). The serial cost ledger is
     * unchanged — degradation is visible in the overlap-aware view
     * (makespan, busyByStack). Reset by resetAccounting().
     */
    void degradeStack(unsigned stack, double slowdown);

    /** Current timeline slowdown factor of @p stack (1 = healthy). */
    double stackSlowdown(unsigned stack) const;

    /** The seeded fault injector (history log lives here). */
    const fault::FaultModel &faultModel() const { return faults_; }

    // --- integrity, checkpointing & stack health (docs/FAULTS.md) ------

    /** Lifecycle state of @p stack in the health monitor. */
    StackHealth stackHealth(unsigned stack) const;

    /** The quarantine/re-admission monitor (scores, strikes). */
    const StackHealthMonitor &healthMonitor() const { return health_; }

    /** The committed-checkpoint log. */
    const ReplayJournal &journal() const { return journal_; }

    /** Stacks neither failed nor quarantined: the set new submissions
     * are steered to. The dispatch layer divides its accelerator cost
     * estimates by selectable/total so offload decisions price in a
     * degraded substrate. */
    unsigned selectableStackCount() const;

    // --- host-side accounting ------------------------------------------

    /** Record compute-bounded work the host executed natively. The
     * host track advances, overlapping with in-flight commands. */
    Cost runOnHost(const host::KernelProfile &profile);

    /** Accumulated cost ledger. */
    const RuntimeAccounting &accounting() const { return acct_; }

    /**
     * Cross-layer energy ledger (docs/MODEL.md): posted at exactly the
     * points accounting() accumulates, so ledger().total() equals
     * accounting().total() identically; additionally attributes energy
     * to physical components (dram/logic/noc/link/fault/host) and
     * aggregates per-label events. External layers (the dispatcher,
     * the apps) may post their own entries.
     */
    EnergyLedger &ledger() { return ledger_; }
    const EnergyLedger &ledger() const { return ledger_; }

    /** Reset the cost ledger and the async timeline (queues, clocks,
     * hazard state, scheduler cursor) — not the memory state.
     * Outstanding Events become stale: waiting on them is a no-op. */
    void resetAccounting();

    // --- cross-command residency (docs/RUNTIME.md) ---------------------

    /**
     * Declare that the host wrote @p bytes starting at @p vptr. With
     * residency tracking on, the range loses its clean-on-stack and
     * verified status, so the next command touching it pays the full
     * flush/verify again. Required for correctness of the elision:
     * apps call this after every host-side store into mapped memory.
     * No-op (and free) when residency is disabled or @p vptr is not in
     * the mapped arena.
     */
    void noteHostWrite(const void *vptr, std::uint64_t bytes);

    /**
     * Record that the dispatch layer fused @p comps adjacent calls into
     * one descriptor program, saving comps-1 START handshakes. Only
     * bumps the reuse counters (the saved cost simply never accrues). */
    void noteFusion(std::uint64_t comps);

    /** The interval tracker (tests inspect clean coverage). */
    const ResidencyTracker &residency() const { return residency_; }

    const RuntimeConfig &config() const { return cfg_; }
    dram::PhysMem &mem() { return *mem_; }
    const host::CpuModel &hostModel() const { return host_; }
    accel::AcceleratorLayer &layer(unsigned stack = 0);
    dram::Stack &stack(unsigned stack = 0);
    ContigAllocator &dataAllocator() { return *dataAllocs_[0]; }

  private:
    friend class Event;

    struct Plan
    {
        accel::DescriptorProgram prog;
        Addr descAddr = 0;          //!< command-space location
        std::uint64_t descBytes = 0;
        std::uint64_t dirtyBytes = 0; //!< footprint to flush
        std::vector<AccessInterval> intervals; //!< hazard footprint

        // --- integrity & checkpoint footprint (docs/FAULTS.md) --------
        std::uint64_t expandedComps = 0; //!< loop-expanded COMP count
        bool rerunSafe = false;    //!< checkpointable (event.hh)
        std::uint64_t transferBytes = 0; //!< verified operand bytes
        std::uint64_t writeBytes = 0;    //!< journaled snapshot bytes

        // --- descriptor-image memo (accPlan, docs/RUNTIME.md) ---------
        std::uint64_t imageHash = 0; //!< programHash of prog
        bool imageCached = false;    //!< descAddr shared via images_
    };

    /** An in-flight command's hazard footprint on the timeline. */
    struct PendingAccess
    {
        AccessInterval interval;
        double finishSeconds;
        std::uint64_t owner = 0; //!< event id, for drain re-homing
    };

    /** The cross-session lock: serializes every mutating entry point
     * (submission, queues, residency, health, accounting) so N
     * sessions may share the runtime. Never held while calling out of
     * the runtime. */
    mutable std::mutex mu_;

    RuntimeConfig cfg_;
    std::unique_ptr<dram::PhysMem> mem_;
    std::vector<std::unique_ptr<dram::Stack>> stacks_;
    std::vector<std::unique_ptr<accel::AcceleratorLayer>> layers_;
    host::CpuModel host_;

    /** Remote-operand link cost for a program homed on @p home. */
    Cost remotePenalty(const accel::DescriptorProgram &prog,
                       unsigned home, double *remoteBytes) const;

    /** Home stack of a program: where its first output operand lives. */
    unsigned homeStackOf(const accel::DescriptorProgram &prog) const;

    // --- locked implementations (mu_ held by the public wrappers) ------

    Event accSubmitLocked(AccPlanHandle handle);
    Event accSubmitOnLocked(AccPlanHandle handle, unsigned stackIdx);
    void failStackLocked(unsigned stackIdx);
    const accel::ExecStats &
    eventWaitLocked(const std::shared_ptr<detail::EventState> &state);

    // --- session-ledger mirroring (docs/SESSIONS.md) -------------------

    /** Post to the aggregate ledger and mirror into the calling
     * thread's bound session ledger (if any). */
    void postLedger(const std::string &track, const Cost &c,
                    const std::string &label = "");
    void attributeLedger(const std::string &component, double joules);
    void addFlopsLedger(double flops);

    /** Advance the host track doing work (counts as busy time). */
    void hostWork(double seconds);

    /** Advance the host track to @p seconds if later (waiting). */
    void hostWaitUntil(double seconds);

    /** Fold the current timeline frontier into the makespan. */
    void updateMakespan();

    /** Event::wait() implementation. */
    const accel::ExecStats &
    eventWait(const std::shared_ptr<detail::EventState> &state);

    // --- fault handling (docs/FAULTS.md) -------------------------------

    /** Fire the scripted stack failure once its command index passes. */
    void applyScriptedFailure();

    /** Terminal FAILED event for an invalid submission; not enqueued. */
    Event submitError(Status status);

    /** Host-side re-execution profile of a plan whose accelerator run
     * produced @p es (the minimkl naive-kernel cost model). */
    host::KernelProfile fallbackProfile(const accel::ExecStats &es) const;

    /** Execute @p plan entirely on the host track (no healthy stack).
     * @p cmd is the global submission index, @p retries the attempts
     * already burned on an accelerator before falling back. */
    Event submitOnHost(Plan &plan, unsigned targetStack,
                       unsigned retries);

    /** Resolve the retry ladder of command @p cmd on @p stackIdx.
     * On success, returns the total stack occupancy; on exhaustion,
     * occupancy covers the failed attempts and @p outLastFault is set. */
    struct Attempts
    {
        bool success = true;
        unsigned retries = 0;
        double occupancySeconds = 0.0; //!< stack time incl. clean span
        Cost penalty;                  //!< extra over the clean cost
        fault::FaultKind lastFault = fault::FaultKind::None;
        Cost integrity;       //!< verify + journal cost (in occupancy)
        std::uint64_t checkpoints = 0; //!< snapshots written
        bool resumed = false; //!< some attempt started mid-span
        std::uint64_t silentDetected = 0;
        std::uint64_t silentUndetected = 0;
        /** Span fraction covered by a committed checkpoint when the
         * ladder ends (replay journal position on exhaustion). */
        double committedFraction = 0.0;
    };
    Attempts resolveAttempts(std::uint64_t cmd, unsigned stackIdx,
                             double spanSeconds, double accelJoules,
                             const Plan &plan,
                             std::uint64_t effVerifyBytes);

    /** Whether @p plan is checkpointed when running on the runtime's
     * current configuration. */
    bool checkpointed(const Plan &plan) const;

    /** Modeled cost of writing one checkpoint snapshot of @p plan. */
    Cost snapshotCost(const Plan &plan) const;

    /** Health-monitor bookkeeping for one resolved command: feed the
     * outcome, apply quarantine/re-admission to the scheduler, and
     * @return a stack to permanently fail (kNone if none). */
    unsigned recordHealth(unsigned stackIdx, std::uint64_t cmd,
                          bool faulted);

    /** One memoized descriptor image in the command space. */
    struct CachedImage
    {
        Addr descAddr = 0;
        std::uint64_t descBytes = 0;
        unsigned refs = 0;          //!< live plans sharing the image
        std::uint64_t lastUse = 0;  //!< for dead-entry LRU eviction
        accel::DescriptorProgram prog; //!< hash-collision guard
    };

    /** Free dead (refs == 0) memoized images; @p keep newest retained.
     * @return bytes returned to the command space. */
    std::uint64_t evictDeadImages(std::size_t keep);

    std::unique_ptr<ContigAllocator> cmdAlloc_;
    std::vector<std::unique_ptr<ContigAllocator>> dataAllocs_;
    std::map<AccPlanHandle, Plan> plans_;
    std::map<std::uint64_t, CachedImage> images_; //!< hash -> image
    std::uint64_t imageUseTick_ = 0;
    AccPlanHandle nextHandle_ = 1;
    RuntimeAccounting acct_;
    EnergyLedger ledger_;

    // --- async timeline state (reset by resetAccounting) ---------------
    std::unique_ptr<Scheduler> sched_;
    std::vector<CommandQueue> queues_;
    double hostSeconds_ = 0.0;
    std::vector<PendingAccess> pending_;
    std::vector<std::shared_ptr<detail::EventState>> inflight_;
    std::uint64_t nextEventId_ = 1;
    std::uint64_t epoch_ = 0; //!< bumped by resetAccounting

    // --- fault-injection state (reset by resetAccounting) --------------
    fault::FaultModel faults_;
    noc::Mesh mesh_; //!< CRC replay penalties on the SerDes/NoC links
    std::vector<double> slowdown_; //!< per-stack degradation factor
    std::uint64_t cmdIndex_ = 0;   //!< global submission counter

    // --- integrity/checkpoint/health state (reset by resetAccounting) --
    StackHealthMonitor health_;
    ReplayJournal journal_;

    // --- residency state (reset by resetAccounting) --------------------
    ResidencyTracker residency_;
};

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_RUNTIME_HH
