/**
 * @file
 * The MEALib runtime (paper Sec. 3.3-3.5): shared memory management over
 * a unified physical address space, and the accelerator control routines
 * mealib_acc_plan / mealib_acc_execute / mealib_acc_destroy.
 *
 * MealibRuntime stands in for the device driver + runtime library pair:
 * the "driver" reserves a physically contiguous region split into a
 * command space (descriptors) and a data space (operands), and "maps" it
 * so the host touches it through virtual pointers (here: host pointers
 * into the functional arena) while accelerators use physical addresses.
 *
 * Invocation costs are accounted the way the paper measures them
 * (Sec. 5.5): cache flushing (wbinvd) before handing arrays to the
 * accelerators, descriptor copy into the command space, and the START
 * handshake.
 */

#ifndef MEALIB_RUNTIME_RUNTIME_HH
#define MEALIB_RUNTIME_RUNTIME_HH

#include <cstdint>
#include <map>
#include <memory>

#include "accel/descriptor.hh"
#include "accel/layer.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "dram/physmem.hh"
#include "dram/stack.hh"
#include "host/cpu.hh"
#include "noc/mesh.hh"
#include "runtime/alloc.hh"

namespace mealib::runtime {

/** Construction parameters of the runtime. */
struct RuntimeConfig
{
    std::uint64_t backingBytes = 256_MiB; //!< functional arena size
    std::uint64_t commandBytes = 1_MiB;   //!< command space size
    unsigned numStacks = 1;               //!< memory stacks (Fig. 2)
    dram::DramParams dram;                //!< each accelerated stack
    host::CpuParams hostCpu;              //!< the host processor
    noc::MeshParams mesh;                 //!< accelerator-layer NoC
    bool functional = true;               //!< run kernels for real
    /** Inter-stack SerDes link energy (HMC-style high-speed links). */
    double linkJPerByte = 10.0_pJ;

    RuntimeConfig();
};

/** Opaque plan handle (the acc_plan of Listing 2). */
using AccPlanHandle = std::uint64_t;

/** Cumulative accounting for the Fig. 13/14 style breakdowns. */
struct RuntimeAccounting
{
    Cost host;        //!< host-executed (compute-bounded) work
    Cost accel;       //!< accelerator-executed work
    Cost invocation;  //!< flush + descriptor copy + config overheads
    Breakdown timeByAccel;
    Breakdown energyByAccel;

    Cost
    total() const
    {
        return host + accel + invocation;
    }
};

/** The MEALib runtime instance: one host, one accelerated stack. */
class MealibRuntime
{
  public:
    explicit MealibRuntime(const RuntimeConfig &cfg);

    // --- memory management runtime routines (Sec. 3.5) ----------------

    /** mealib_mem_alloc: physically contiguous data-space allocation on
     * stack 0. @return the host-visible (virtual) pointer. */
    void *memAlloc(std::uint64_t bytes);

    /**
     * mealib_mem_alloc with an explicit memory stack (paper Sec. 3.3/
     * 3.5: "the memory stack used for allocation can be explicitly
     * specified"). Data an accelerator processes should live on its
     * Local Memory Stack; operands left on Remote Memory Stacks cross
     * the inter-stack links and pay bandwidth/energy penalties.
     */
    void *memAllocOn(unsigned stack, std::uint64_t bytes);

    /** Stack that owns physical address @p paddr. */
    unsigned stackOf(Addr paddr) const;

    /** Number of configured memory stacks. */
    unsigned numStacks() const { return cfg_.numStacks; }

    /** mealib_mem_free. */
    void memFree(void *vptr);

    /** Virtual-to-physical translation (the runtime does this when
     * filling descriptor parameter blocks). */
    Addr physOf(const void *vptr) const;

    /** Physical-to-virtual: host pointer for an accelerator address. */
    void *virtOf(Addr paddr);

    // --- accelerator control runtime routines (Listing 2) -------------

    /** mealib_acc_plan: build the descriptor in the command space. */
    AccPlanHandle accPlan(const accel::DescriptorProgram &prog);

    /** mealib_acc_execute: flush, write START, run, poll DONE.
     * @return the cost of this invocation (also accumulated). */
    accel::ExecStats accExecute(AccPlanHandle plan);

    /** mealib_acc_destroy. */
    void accDestroy(AccPlanHandle plan);

    // --- host-side accounting ------------------------------------------

    /** Record compute-bounded work the host executed natively. */
    Cost runOnHost(const host::KernelProfile &profile);

    /** Accumulated cost ledger. */
    const RuntimeAccounting &accounting() const { return acct_; }

    /** Reset the cost ledger (not the memory state). */
    void resetAccounting() { acct_ = RuntimeAccounting{}; }

    dram::PhysMem &mem() { return *mem_; }
    const host::CpuModel &hostModel() const { return host_; }
    accel::AcceleratorLayer &layer() { return *layer_; }
    dram::Stack &stack() { return *stack_; }
    ContigAllocator &dataAllocator() { return *dataAllocs_[0]; }

  private:
    struct Plan
    {
        accel::DescriptorProgram prog;
        Addr descAddr = 0;          //!< command-space location
        std::uint64_t descBytes = 0;
        std::uint64_t dirtyBytes = 0; //!< footprint to flush
    };

    RuntimeConfig cfg_;
    std::unique_ptr<dram::PhysMem> mem_;
    std::unique_ptr<dram::Stack> stack_;
    std::unique_ptr<accel::AcceleratorLayer> layer_;
    host::CpuModel host_;
    /** Remote-operand link cost for a program homed on @p home. */
    Cost remotePenalty(const accel::DescriptorProgram &prog,
                       unsigned home, double *remoteBytes) const;

    /** Home stack of a program: where its first output operand lives. */
    unsigned homeStackOf(const accel::DescriptorProgram &prog) const;

    std::unique_ptr<ContigAllocator> cmdAlloc_;
    std::vector<std::unique_ptr<ContigAllocator>> dataAllocs_;
    std::map<AccPlanHandle, Plan> plans_;
    AccPlanHandle nextHandle_ = 1;
    RuntimeAccounting acct_;
};

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_RUNTIME_HH
