#include "runtime/event.hh"

#include "common/logging.hh"

namespace mealib::runtime {

namespace {

using accel::AccelKind;
using accel::Instr;
using accel::LoopSpec;
using accel::OpCall;
using accel::OperandRef;

/** One operand's role in a COMP: its ref, per-iteration footprint in
 * bytes, and whether the accelerator writes it. */
struct OperandSpan
{
    const OperandRef *op;
    std::uint64_t bytes;
    bool write;
};

/** Bytes a strided vector of @p n elements spans. */
std::uint64_t
strideSpan(std::uint64_t n, std::int64_t inc, std::uint64_t elem)
{
    if (n == 0)
        return 0;
    std::uint64_t mag = static_cast<std::uint64_t>(inc < 0 ? -inc : inc);
    return (1 + (n - 1) * mag) * elem;
}

/** Per-iteration operand footprints of @p c, mirroring the functional
 * executor's accesses (AcceleratorLayer::executeComp). */
std::vector<OperandSpan>
operandSpans(const OpCall &c)
{
    const std::uint64_t es = c.elemBytes();
    switch (c.kind) {
      case AccelKind::AXPY:
        return {{&c.in0, strideSpan(c.n, c.inc0, es), false},
                {&c.out, strideSpan(c.n, c.inc1, es), true}};
      case AccelKind::DOT:
        return {{&c.in0, strideSpan(c.n, c.inc0, es), false},
                {&c.in1, strideSpan(c.n, c.inc1, es), false},
                {&c.out, es, true}};
      case AccelKind::GEMV:
        return {{&c.in0, c.m * c.n * es, false},
                {&c.in1, strideSpan(c.n, c.inc0, es), false},
                {&c.out, c.m * es, true}};
      case AccelKind::SPMV:
        return {{&c.in0, (c.m + 1) * 8, false},
                {&c.in1, c.k * 4, false},
                {&c.in2, c.k * 4, false},
                {&c.in3, c.n * 4, false},
                {&c.out, c.m * 4, true}};
      case AccelKind::RESMP:
        return {{&c.in0, c.n * es, false}, {&c.out, c.m * es, true}};
      case AccelKind::FFT: {
        std::uint64_t pts =
            c.n * (c.k > 0 ? c.k : std::uint64_t{1}) * c.m;
        return {{&c.in0, pts * es, false}, {&c.out, pts * es, true}};
      }
      case AccelKind::RESHP:
        return {{&c.in0, c.m * c.n * es, false},
                {&c.out, c.m * c.n * es, true}};
      default:
        panic("operandSpans: bad kind");
    }
}

/** Interval of @p span expanded over @p loop's strides. */
AccessInterval
expand(const OperandSpan &span, const LoopSpec &loop)
{
    std::int64_t min_off = 0, max_off = 0;
    for (unsigned d = 0; d < accel::kMaxLoopDims; ++d) {
        std::int64_t reach =
            span.op->stride[d] *
            (static_cast<std::int64_t>(loop.dims[d]) - 1);
        if (reach > 0)
            max_off += reach;
        else
            min_off += reach;
    }
    AccessInterval iv;
    iv.lo = span.op->base + static_cast<Addr>(min_off);
    iv.hi = span.op->base + static_cast<Addr>(max_off) + span.bytes;
    iv.write = span.write;
    return iv;
}

} // namespace

std::vector<AccessInterval>
accessIntervals(const accel::DescriptorProgram &prog)
{
    std::vector<AccessInterval> out;
    LoopSpec active;
    std::uint32_t remaining = 0;
    for (const Instr &in : prog.instrs) {
        if (in.type == Instr::Type::Loop) {
            active = in.loop;
            remaining = in.bodyCount;
            continue;
        }
        if (in.type == Instr::Type::Comp) {
            const LoopSpec loop = remaining ? active : LoopSpec{};
            for (const OperandSpan &span : operandSpans(in.call))
                if (span.bytes > 0)
                    out.push_back(expand(span, loop));
        }
        if (remaining && --remaining == 0)
            active = LoopSpec{};
    }
    return out;
}

bool
rerunSafe(const accel::DescriptorProgram &prog)
{
    for (const Instr &in : prog.instrs) {
        if (in.type != Instr::Type::Comp)
            continue;
        const OpCall &c = in.call;
        // Accumulating forms read their own previous output: replaying
        // them doubles the accumulation.
        if ((c.kind == AccelKind::AXPY || c.kind == AccelKind::GEMV) &&
            c.beta != 0.0f)
            return false;
        // In-place updates: a write operand overlapping a read operand
        // destroys the input a replay would need.
        const std::vector<OperandSpan> spans = operandSpans(c);
        for (const OperandSpan &w : spans) {
            if (!w.write)
                continue;
            const AccessInterval wiv = expand(w, LoopSpec{});
            for (const OperandSpan &r : spans) {
                if (r.write)
                    continue;
                if (wiv.overlaps(expand(r, LoopSpec{})))
                    return false;
            }
        }
    }
    return true;
}

const char *
name(EventState state)
{
    switch (state) {
      case EventState::Pending:
        return "pending";
      case EventState::Done:
        return "done";
      case EventState::Retried:
        return "retried";
      case EventState::Resumed:
        return "resumed";
      case EventState::FellBack:
        return "fell_back";
      case EventState::TimedOut:
        return "timed_out";
      case EventState::Failed:
        return "failed";
      default:
        panic("name: bad event state");
    }
}

bool
completed(EventState state)
{
    return state == EventState::Done || state == EventState::Retried ||
           state == EventState::Resumed ||
           state == EventState::FellBack;
}

EventState
Event::state() const
{
    fatalIf(!valid(), "Event::state: invalid event");
    return state_->state;
}

const Status &
Event::status() const
{
    fatalIf(!valid(), "Event::status: invalid event");
    return state_->status;
}

unsigned
Event::retries() const
{
    fatalIf(!valid(), "Event::retries: invalid event");
    return state_->stats.retries;
}

unsigned
Event::stack() const
{
    fatalIf(!valid(), "Event::stack: invalid event");
    return state_->stack;
}

double
Event::startSeconds() const
{
    fatalIf(!valid(), "Event::startSeconds: invalid event");
    return state_->startSeconds;
}

double
Event::finishSeconds() const
{
    fatalIf(!valid(), "Event::finishSeconds: invalid event");
    return state_->finishSeconds;
}

const accel::ExecStats &
Event::stats() const
{
    fatalIf(!valid(), "Event::stats: invalid event");
    return state_->stats;
}

} // namespace mealib::runtime
