/**
 * @file
 * Cross-command operand residency (docs/RUNTIME.md).
 *
 * MEALib's efficiency comes from keeping library operands next to the
 * accelerators across a chain of commands. The residency tracker keeps,
 * per physical byte, two pieces of reuse state the invocation path can
 * exploit on the NEXT submission touching the same intervals:
 *
 *   flush-clean   the range is coherent between the host caches and the
 *                 memory-side view: it was flushed (or written by an
 *                 accelerator) and the host has not dirtied it since.
 *                 The pre-submit cache flush can skip these bytes.
 *   verify-clean  the range's cached operand checksum is still valid:
 *                 it was verified on a previous command and nothing has
 *                 written it since. End-to-end verification can skip
 *                 re-checksumming these bytes.
 *
 * Invalidation rules (strict — residency may only ever elide work that
 * is provably redundant):
 *   - a host write (hazard interval, app-side noteHostWrite) drops both
 *     states for the written range;
 *   - an accelerator write keeps the range flush-clean (the host cache
 *     holds no dirty line) but drops verify-clean unless the command
 *     itself was verified;
 *   - stack quarantine / death / checkpoint-restore drains drop every
 *     range on the affected stack;
 *   - a host-fallback execution drops the plan's written intervals;
 *   - memFree drops the freed range (a future owner starts cold).
 *
 * The tracker only shapes modeled time/energy: functional results are
 * identical whether it is on or off.
 */

#ifndef MEALIB_RUNTIME_RESIDENCY_HH
#define MEALIB_RUNTIME_RESIDENCY_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hh"
#include "runtime/event.hh"

namespace mealib::runtime {

/** Opt-in switch for the residency layer (off = bit-for-bit legacy). */
struct ResidencyConfig
{
    /** Track operand residency and elide redundant flush/verify work.
     * Defaults to the MEALIB_RESIDENCY environment variable. */
    bool enabled = false;
};

/**
 * A set of non-overlapping, coalesced half-open byte ranges [lo, hi).
 */
class IntervalSet
{
  public:
    /** Add [lo, hi), merging with overlapping/adjacent ranges. */
    void insert(Addr lo, Addr hi);

    /** Remove [lo, hi), splitting partially covered ranges. */
    void erase(Addr lo, Addr hi);

    /** Bytes of [lo, hi) currently in the set. */
    std::uint64_t coveredBytes(Addr lo, Addr hi) const;

    void clear() { ranges_.clear(); }
    bool empty() const { return ranges_.empty(); }
    std::size_t rangeCount() const { return ranges_.size(); }

  private:
    std::map<Addr, Addr> ranges_; //!< lo -> hi, disjoint, coalesced
};

/** Per-arena tracker of flush-clean / verify-clean operand ranges. */
class ResidencyTracker
{
  public:
    /**
     * A command completed on an accelerator: its whole footprint is
     * flush-clean (the host touched nothing since the pre-submit
     * flush), and — when @p verified — its checksums are cached, so
     * the footprint is verify-clean too. Unverified commands instead
     * drop verify-clean for their written intervals (the write made
     * any cached checksum stale).
     */
    void commit(const std::vector<AccessInterval> &intervals,
                bool verified);

    /** The host wrote [lo, hi): drop both states for the range. */
    void hostWrite(Addr lo, Addr hi);

    /** Drop both states for the written intervals of @p intervals
     * (host-fallback execution: the host produced the outputs). */
    void invalidateWrites(const std::vector<AccessInterval> &intervals);

    /** Drop both states for every interval (conservative: used when a
     * command is drained/replayed after a stack death). */
    void invalidateAll(const std::vector<AccessInterval> &intervals);

    /** Drop both states for the address range [lo, hi) (stack
     * quarantine/death, memFree). */
    void dropRange(Addr lo, Addr hi);

    /** Forget everything (resetAccounting). */
    void reset();

    /** Flush-clean bytes among the READ intervals of @p intervals —
     * the share of the input footprint the pre-submit flush can skip. */
    std::uint64_t
    flushCleanReadBytes(const std::vector<AccessInterval> &intervals)
        const;

    /** Total bytes of the READ intervals of @p intervals. */
    static std::uint64_t
    readBytes(const std::vector<AccessInterval> &intervals);

    /** Verify-clean bytes across ALL intervals of @p intervals — the
     * share of the operand footprint a verification pass can skip. */
    std::uint64_t
    verifyCleanBytes(const std::vector<AccessInterval> &intervals) const;

    const IntervalSet &flushClean() const { return flushClean_; }
    const IntervalSet &verifyClean() const { return verifyClean_; }

  private:
    IntervalSet flushClean_;
    IntervalSet verifyClean_;
};

/** MEALIB_RESIDENCY environment default (unset/"0"/"off" = false). */
bool residencyFromEnv();

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_RESIDENCY_HH
