#include "runtime/queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mealib::runtime {

CommandQueue::CommandQueue(unsigned depth) : depth_(depth)
{
    fatalIf(depth == 0, "command queue: depth must be at least 1");
}

double
CommandQueue::admitSeconds(double now) const
{
    if (inflight_.size() < depth_)
        return now;
    // The host must wait for enough retirements to free one slot;
    // finish times are non-decreasing, so the blocking command is the
    // one `depth` places from the tail.
    double unblock = inflight_[inflight_.size() - depth_].finish;
    return unblock > now ? unblock : now;
}

void
CommandQueue::push(double start, double finish)
{
    panicIf(finish < start, "command queue: negative occupancy");
    panicIf(!inflight_.empty() && finish < inflight_.back().finish,
            "command queue: out-of-order completion");
    inflight_.push_back({start, finish});
    if (finish > busyUntil_)
        busyUntil_ = finish;
    busySeconds_ += finish - start;
    submitted_++;
}

void
CommandQueue::retireUpTo(double now)
{
    while (!inflight_.empty() && inflight_.front().finish <= now)
        inflight_.pop_front();
}

std::size_t
CommandQueue::cancelFrom(double now)
{
    std::size_t cancelled = 0;
    while (!inflight_.empty() && inflight_.back().finish > now) {
        Slot &s = inflight_.back();
        ++cancelled;
        if (s.start >= now) {
            // Never started: remove its whole occupancy.
            busySeconds_ -= s.finish - s.start;
            inflight_.pop_back();
        } else {
            // Mid-flight when the stack died: it ends here.
            busySeconds_ -= s.finish - now;
            s.finish = now;
            break;
        }
    }
    busyUntil_ = inflight_.empty() ? std::min(busyUntil_, now)
                                   : inflight_.back().finish;
    return cancelled;
}

void
CommandQueue::reset()
{
    inflight_.clear();
    busyUntil_ = 0.0;
    busySeconds_ = 0.0;
    submitted_ = 0;
}

} // namespace mealib::runtime
