#include "runtime/queue.hh"

#include "common/logging.hh"

namespace mealib::runtime {

CommandQueue::CommandQueue(unsigned depth) : depth_(depth)
{
    fatalIf(depth == 0, "command queue: depth must be at least 1");
}

double
CommandQueue::admitSeconds(double now) const
{
    if (inflightFinish_.size() < depth_)
        return now;
    // The host must wait for enough retirements to free one slot;
    // finish times are non-decreasing, so the blocking command is the
    // one `depth` places from the tail.
    double unblock =
        inflightFinish_[inflightFinish_.size() - depth_];
    return unblock > now ? unblock : now;
}

void
CommandQueue::push(double start, double finish)
{
    panicIf(finish < start, "command queue: negative occupancy");
    panicIf(!inflightFinish_.empty() && finish < inflightFinish_.back(),
            "command queue: out-of-order completion");
    inflightFinish_.push_back(finish);
    if (finish > busyUntil_)
        busyUntil_ = finish;
    busySeconds_ += finish - start;
    submitted_++;
}

void
CommandQueue::retireUpTo(double now)
{
    while (!inflightFinish_.empty() && inflightFinish_.front() <= now)
        inflightFinish_.pop_front();
}

void
CommandQueue::reset()
{
    inflightFinish_.clear();
    busyUntil_ = 0.0;
    busySeconds_ = 0.0;
    submitted_ = 0;
}

} // namespace mealib::runtime
