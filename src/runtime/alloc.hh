/**
 * @file
 * First-fit allocator over a physically contiguous region.
 *
 * The paper's memory management runtime replaces malloc/free with
 * allocation in a reserved, physically contiguous space (accelerators
 * have no MMU, Sec. 3.3). This allocator manages that space: first-fit
 * with address-ordered free list and coalescing on free.
 */

#ifndef MEALIB_RUNTIME_ALLOC_HH
#define MEALIB_RUNTIME_ALLOC_HH

#include <cstdint>
#include <map>

#include "common/status.hh"
#include "common/units.hh"

namespace mealib::runtime {

/** First-fit contiguous allocator with coalescing. */
class ContigAllocator
{
  public:
    /**
     * @param base first address managed
     * @param size bytes managed
     * @param align allocation alignment (power of two)
     */
    ContigAllocator(Addr base, std::uint64_t size,
                    std::uint64_t align = 64);

    /**
     * Allocate @p bytes into *@p out. Exhaustion (no hole fits) is
     * ErrorCode::Exhausted — a recoverable condition an embedding
     * system must be able to observe and survive, like a failed ioctl
     * from the device driver; a zero-byte request is InvalidArgument.
     */
    Status tryAlloc(std::uint64_t bytes, Addr *out);

    /**
     * Free a block returned by a successful allocation. A bad or
     * already-freed address is InvalidArgument. When @p freedBytes is
     * non-null it receives the block size (including alignment
     * padding) on success.
     */
    Status tryFree(Addr addr, std::uint64_t *freedBytes = nullptr);

    /** tryAlloc() or throw MealibError. */
    Addr alloc(std::uint64_t bytes);

    /** tryFree() or throw MealibError. */
    void free(Addr addr);

    /** Bytes currently handed out (including alignment padding). */
    std::uint64_t bytesInUse() const { return inUse_; }

    /** Size of the largest free hole. */
    std::uint64_t largestFreeBlock() const;

    /** Number of live allocations. */
    std::size_t allocationCount() const { return allocated_.size(); }

    /** Size of the live allocation at @p addr; fatal() if unknown. */
    std::uint64_t sizeOf(Addr addr) const;

    Addr base() const { return base_; }
    std::uint64_t capacity() const { return size_; }

  private:
    Addr base_;
    std::uint64_t size_;
    std::uint64_t align_;
    std::uint64_t inUse_ = 0;
    std::map<Addr, std::uint64_t> freeList_;  //!< addr -> hole size
    std::map<Addr, std::uint64_t> allocated_; //!< addr -> block size
};

} // namespace mealib::runtime

#endif // MEALIB_RUNTIME_ALLOC_HH
