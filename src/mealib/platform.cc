#include "mealib/platform.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "dispatch/models.hh"
#include "hwmodel/profile.hh"
#include "noc/mesh.hh"

namespace mealib::eval {

using accel::AccelKind;
using accel::LoopSpec;
using accel::OpCall;

const char *
name(Platform p)
{
    switch (p) {
      case Platform::HaswellMkl:
        return "Haswell-MKL";
      case Platform::XeonPhiMkl:
        return "XeonPhi-MKL";
      case Platform::Psas:
        return "PSAS";
      case Platform::Msas:
        return "MSAS";
      case Platform::MeaLib:
        return "MEALib";
      default:
        panic("name: bad platform");
    }
}

Workload
table2Workload(AccelKind kind, double scale)
{
    fatalIf(scale <= 0.0 || scale > 1.0, "workload scale must be in "
            "(0, 1], got ", scale);
    auto sz = [&](double full) {
        return static_cast<std::uint64_t>(
            std::max(full * scale, 1024.0));
    };
    // Floor an (already-scaled) extent to a power of two, at least 256.
    auto pow2 = [](double want) {
        std::uint64_t p = 256;
        while (static_cast<double>(p) * 2.0 <= want)
            p *= 2;
        return p;
    };

    Workload w;
    w.call.kind = kind;
    switch (kind) {
      case AccelKind::AXPY:
        w.call.n = sz(256.0 * (1 << 20)); // 256M floats = 1 GiB
        w.desc = "256M-element saxpy (1 GiB)";
        break;
      case AccelKind::DOT:
        w.call.n = sz(256.0 * (1 << 20));
        w.desc = "256M-element sdot (1 GiB)";
        break;
      case AccelKind::GEMV: {
        // Square matrix whose footprint scales linearly with `scale`.
        auto d = static_cast<std::uint64_t>(16384.0 * std::sqrt(scale));
        d = std::max<std::uint64_t>(d, 256);
        w.call.m = d;
        w.call.n = d;
        w.desc = "16384x16384 sgemv (1 GiB)";
        break;
      }
      case AccelKind::SPMV:
        // UF rgg_n_2_20: 2^20 nodes, ~13.8M nonzeros (avg degree 13.1).
        w.call.m = sz(1048576.0);
        w.call.n = w.call.m;
        w.call.k = static_cast<std::uint64_t>(
            13.1 * static_cast<double>(w.call.m));
        w.desc = "rgg_n_2_20 spmv (13.8M nnz)";
        break;
      case AccelKind::RESMP:
        // "16384 blocks": resample 16384-sample blocks, upsampling 2x.
        w.call.n = sz(16384.0 * 16384.0);
        w.call.m = 2 * w.call.n;
        w.call.resampleKind = 2; // windowed sinc
        w.desc = "16384 blocks of 16384-sample sinc resampling";
        break;
      case AccelKind::FFT:
        w.call.k = pow2(8192.0 * std::sqrt(scale));
        w.call.n = w.call.k;
        w.call.complexData = true;
        w.desc = "8192x8192 complex 2D FFT (512 MiB)";
        break;
      case AccelKind::RESHP: {
        auto d = static_cast<std::uint64_t>(16384.0 * std::sqrt(scale));
        d = std::max<std::uint64_t>(d, 256);
        w.call.m = d;
        w.call.n = d;
        w.desc = "16384x16384 simatcopy transpose (1 GiB)";
        break;
      }
      default:
        panic("table2Workload: bad kind");
    }
    return w;
}

host::KernelProfile
hostProfile(Platform platform, const OpCall &call, const LoopSpec &loop)
{
    fatalIf(platform != Platform::HaswellMkl &&
                platform != Platform::XeonPhiMkl,
            "hostProfile: not a host platform");
    // The per-op efficiency tables moved to dispatch/models.cc so the
    // offload policies and the eval layer price hosts identically.
    return dispatch::hostKernelProfile(
        platform == Platform::HaswellMkl ? dispatch::HostKind::Haswell
                                         : dispatch::HostKind::XeonPhi,
        call, loop);
}

OpResult
evaluateOp(Platform platform, const Workload &w)
{
    OpResult r;
    double iters = static_cast<double>(w.loop.iterations());
    r.flops = w.call.flops() * iters;

    switch (platform) {
      // r.bytes is the operation's logical traffic on every platform so
      // the GB/s metric (used for RESHP) compares like with like; the
      // platform-specific bus traffic only shapes the time/energy.
      // Platform evaluation is a cross-machine comparison (Figs. 9/10
      // put Haswell and Phi side by side), so it pulls both registry
      // profiles explicitly rather than consulting the active machine.
      case Platform::HaswellMkl: {
        host::CpuModel cpu(hwmodel::profile("haswell4770k").cpu);
        host::KernelProfile p = hostProfile(platform, w.call, w.loop);
        r.cost = cpu.run(p);
        r.bytes = w.call.trafficBytes() * iters;
        return r;
      }
      case Platform::XeonPhiMkl: {
        host::CpuModel cpu(hwmodel::profile("xeonphi5110p").cpu);
        host::KernelProfile p = hostProfile(platform, w.call, w.loop);
        r.cost = cpu.run(p);
        r.bytes = w.call.trafficBytes() * iters;
        return r;
      }
      case Platform::Psas:
      case Platform::Msas:
      case Platform::MeaLib: {
        dram::DramParams d =
            platform == Platform::Psas   ? hwmodel::ddr3Params(2)
            : platform == Platform::Msas ? hwmodel::ddr3Params(8)
                                         : hwmodel::hmcStackParams();
        accel::AccelModel model(w.call.kind,
                                accel::defaultConfig(w.call.kind), d,
                                hwmodel::mealibMeshParams());
        accel::AccelEstimate e = model.estimate(w.call, w.loop);
        r.cost = e.total;
        r.bytes = w.call.trafficBytes() * iters;
        return r;
      }
      default:
        panic("evaluateOp: bad platform");
    }
}

Status
evaluateOpSharded(const Workload &w, runtime::MealibRuntime &rt,
                  OpResult *out)
{
    fatalIf(out == nullptr, "evaluateOpSharded: null result pointer");
    if (rt.layer().functional())
        return Status::error(
            ErrorCode::InvalidArgument,
            "evaluateOpSharded: needs a cost-only runtime "
            "(RuntimeConfig::functional = false); the synthetic operand "
            "placement would execute on unrelated arena bytes");
    const unsigned stacks = rt.numStacks();
    const std::uint32_t outer = w.loop.dims[0];
    const unsigned shards = std::min<unsigned>(
        stacks, outer > 0 ? outer : 1);

    OpResult r;
    double iters = static_cast<double>(w.loop.iterations());
    r.flops = w.call.flops() * iters;
    r.bytes = w.call.trafficBytes() * iters;

    // Synthetic per-stack operand placement: every shard's operands sit
    // inside its own stack's address range, spaced an eighth of the
    // stack span apart, so the locality scheduler homes each descriptor
    // with zero remote-link traffic.
    const std::uint64_t span =
        rt.config().backingBytes / rt.config().numStacks;
    const std::uint64_t slot = span / 8;

    const double makespan0 = rt.accounting().makespanSeconds;
    const Cost total0 = rt.accounting().total();

    std::vector<runtime::AccPlanHandle> handles;
    for (unsigned s = 0; s < shards; ++s) {
        accel::OpCall call = w.call;
        const std::uint64_t base =
            static_cast<std::uint64_t>(s) * span +
            (s == 0 ? rt.config().commandBytes : 0);
        call.in0.base = base;
        call.in1.base = base + slot;
        call.in2.base = base + 2 * slot;
        call.in3.base = base + 3 * slot;
        call.out.base = base + 4 * slot;

        accel::DescriptorProgram d;
        if (outer > 1) {
            LoopSpec loop = w.loop;
            loop.dims[0] = outer / shards +
                           (s < outer % shards ? 1 : 0);
            d.addLoop(loop, 2);
            d.addComp(call);
        } else {
            d.addComp(call);
        }
        d.addPassEnd();
        handles.push_back(rt.accPlan(d));
        rt.accSubmitOn(handles.back(), s);
    }
    rt.waitAll();

    r.cost.seconds = rt.accounting().makespanSeconds - makespan0;
    r.cost.joules = rt.accounting().total().joules - total0.joules;
    for (runtime::AccPlanHandle h : handles)
        rt.accDestroy(h);
    *out = r;
    return Status();
}

} // namespace mealib::eval
