#include "mealib/platform.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "noc/mesh.hh"

namespace mealib::eval {

using accel::AccelKind;
using accel::LoopSpec;
using accel::OpCall;

const char *
name(Platform p)
{
    switch (p) {
      case Platform::HaswellMkl:
        return "Haswell-MKL";
      case Platform::XeonPhiMkl:
        return "XeonPhi-MKL";
      case Platform::Psas:
        return "PSAS";
      case Platform::Msas:
        return "MSAS";
      case Platform::MeaLib:
        return "MEALib";
      default:
        panic("name: bad platform");
    }
}

Workload
table2Workload(AccelKind kind, double scale)
{
    fatalIf(scale <= 0.0 || scale > 1.0, "workload scale must be in "
            "(0, 1], got ", scale);
    auto sz = [&](double full) {
        return static_cast<std::uint64_t>(
            std::max(full * scale, 1024.0));
    };
    // Floor an (already-scaled) extent to a power of two, at least 256.
    auto pow2 = [](double want) {
        std::uint64_t p = 256;
        while (static_cast<double>(p) * 2.0 <= want)
            p *= 2;
        return p;
    };

    Workload w;
    w.call.kind = kind;
    switch (kind) {
      case AccelKind::AXPY:
        w.call.n = sz(256.0 * (1 << 20)); // 256M floats = 1 GiB
        w.desc = "256M-element saxpy (1 GiB)";
        break;
      case AccelKind::DOT:
        w.call.n = sz(256.0 * (1 << 20));
        w.desc = "256M-element sdot (1 GiB)";
        break;
      case AccelKind::GEMV: {
        // Square matrix whose footprint scales linearly with `scale`.
        auto d = static_cast<std::uint64_t>(16384.0 * std::sqrt(scale));
        d = std::max<std::uint64_t>(d, 256);
        w.call.m = d;
        w.call.n = d;
        w.desc = "16384x16384 sgemv (1 GiB)";
        break;
      }
      case AccelKind::SPMV:
        // UF rgg_n_2_20: 2^20 nodes, ~13.8M nonzeros (avg degree 13.1).
        w.call.m = sz(1048576.0);
        w.call.n = w.call.m;
        w.call.k = static_cast<std::uint64_t>(
            13.1 * static_cast<double>(w.call.m));
        w.desc = "rgg_n_2_20 spmv (13.8M nnz)";
        break;
      case AccelKind::RESMP:
        // "16384 blocks": resample 16384-sample blocks, upsampling 2x.
        w.call.n = sz(16384.0 * 16384.0);
        w.call.m = 2 * w.call.n;
        w.call.resampleKind = 2; // windowed sinc
        w.desc = "16384 blocks of 16384-sample sinc resampling";
        break;
      case AccelKind::FFT:
        w.call.k = pow2(8192.0 * std::sqrt(scale));
        w.call.n = w.call.k;
        w.call.complexData = true;
        w.desc = "8192x8192 complex 2D FFT (512 MiB)";
        break;
      case AccelKind::RESHP: {
        auto d = static_cast<std::uint64_t>(16384.0 * std::sqrt(scale));
        d = std::max<std::uint64_t>(d, 256);
        w.call.m = d;
        w.call.n = d;
        w.desc = "16384x16384 simatcopy transpose (1 GiB)";
        break;
      }
      default:
        panic("table2Workload: bad kind");
    }
    return w;
}

namespace {

/**
 * Per-operation host execution efficiencies. These substitute for the
 * paper's native measurement (we have no i7-4770K/RAPL); each factor is
 * justified below and the resulting Fig. 9/10 ratios are validated
 * against the paper's bands in EXPERIMENTS.md.
 */
struct HostOpProfile
{
    double trafficFactor; //!< host DRAM traffic vs. accelerator traffic
    double memEff;        //!< fraction of peak bandwidth sustained
    double simdEff;       //!< fraction of peak issue sustained
    double parallelFraction;
};

HostOpProfile
haswellProfile(AccelKind kind)
{
    switch (kind) {
      case AccelKind::AXPY:
        // Write-allocate turns 3 B/B into 4 B/B of bus traffic; STREAM
        // -like loops sustain ~60% of the 25.6 GB/s channel pair.
        return {4.0 / 3.0, 0.60, 0.9, 0.95};
      case AccelKind::DOT:
        // Pure reads, but the reduction and threading sync cost some
        // steady-state bandwidth.
        return {1.0, 0.50, 0.9, 0.90};
      case AccelKind::GEMV:
        return {1.05, 0.60, 0.9, 0.95};
      case AccelKind::SPMV:
        // rgg's vector mostly fits the LLC: traffic is ~the matrix
        // stream, but the gather-dependent loads cap efficiency.
        return {0.55, 0.35, 0.3, 0.90};
      case AccelKind::RESMP:
        // Windowed-sinc interpolation is compute-bound on the host:
        // short gather-heavy dot products vectorize poorly.
        return {1.2, 0.60, 0.30, 0.95};
      case AccelKind::FFT:
        // Large 2D FFT: multiple blocked passes plus transposes push
        // traffic to ~2x the accelerator's two-pass scheme.
        return {2.0, 0.50, 0.35, 0.90};
      case AccelKind::RESHP:
        // Strided writes use a fraction of each cache line; blocked MKL
        // recovers some locality but efficiency stays low, which is why
        // RESHP shows the paper's largest gain (88x).
        return {1.5, 0.20, 1.0, 0.90};
      default:
        panic("haswellProfile: bad kind");
    }
}

HostOpProfile
phiProfile(AccelKind kind)
{
    // The paper observes (Sec. 5.1) that Xeon Phi barely beats — and
    // often trails — Haswell on these data sets: per-op efficiencies on
    // the 320 GB/s card are poor (60 in-order cores need far more
    // parallel slack than these kernels expose). Factors calibrated to
    // the paper's observations: AXPY 2.23x over Haswell, RESHP 0.024x.
    switch (kind) {
      case AccelKind::AXPY:
        return {4.0 / 3.0, 0.11, 0.5, 0.98};
      case AccelKind::DOT:
        return {1.0, 0.075, 0.5, 0.95};
      case AccelKind::GEMV:
        return {1.05, 0.06, 0.5, 0.95};
      case AccelKind::SPMV:
        return {0.55, 0.022, 0.2, 0.90};
      case AccelKind::RESMP:
        return {1.2, 0.30, 0.012, 0.95};
      case AccelKind::FFT:
        return {2.0, 0.065, 0.2, 0.90};
      case AccelKind::RESHP:
        // In-place strided transpose is pathological on the ring-based
        // in-order card: the paper measures 2.4% of Haswell.
        return {1.5, 0.00045, 1.0, 0.90};
      default:
        panic("phiProfile: bad kind");
    }
}

} // namespace

host::KernelProfile
hostProfile(Platform platform, const OpCall &call, const LoopSpec &loop)
{
    fatalIf(platform != Platform::HaswellMkl &&
                platform != Platform::XeonPhiMkl,
            "hostProfile: not a host platform");
    HostOpProfile p = platform == Platform::HaswellMkl
                          ? haswellProfile(call.kind)
                          : phiProfile(call.kind);
    double iters = static_cast<double>(loop.iterations());

    host::KernelProfile k;
    k.name = accel::name(call.kind);
    k.flops = call.flops() * iters;
    // Reuse-aware traffic: loop dimensions with zero operand stride hit
    // the host's caches, symmetric with the accelerator-side modeling.
    double traffic =
        accel::loopedTrafficBytes(call, loop) * p.trafficFactor;
    k.bytesRead = traffic * 0.75;
    k.bytesWritten = traffic * 0.25;
    k.simdEff = p.simdEff;
    // Short vectors leave the SIMD pipeline mostly empty (ramp-up,
    // horizontal reductions): the 36-element STAP dots reach a fraction
    // of the streaming kernels' issue efficiency.
    if (call.n < 256)
        k.simdEff *= 0.4;
    k.memEff = p.memEff;
    k.parallelFraction = p.parallelFraction;
    // Library call dispatch + thread wakeup; heavier on the Phi.
    k.callOverheads =
        platform == Platform::XeonPhiMkl ? 100e-6 : 5e-6;
    return k;
}

OpResult
evaluateOp(Platform platform, const Workload &w)
{
    OpResult r;
    double iters = static_cast<double>(w.loop.iterations());
    r.flops = w.call.flops() * iters;

    switch (platform) {
      // r.bytes is the operation's logical traffic on every platform so
      // the GB/s metric (used for RESHP) compares like with like; the
      // platform-specific bus traffic only shapes the time/energy.
      case Platform::HaswellMkl: {
        host::CpuModel cpu(host::haswell4770k());
        host::KernelProfile p = hostProfile(platform, w.call, w.loop);
        r.cost = cpu.run(p);
        r.bytes = w.call.trafficBytes() * iters;
        return r;
      }
      case Platform::XeonPhiMkl: {
        host::CpuModel cpu(host::xeonPhi5110p());
        host::KernelProfile p = hostProfile(platform, w.call, w.loop);
        r.cost = cpu.run(p);
        r.bytes = w.call.trafficBytes() * iters;
        return r;
      }
      case Platform::Psas:
      case Platform::Msas:
      case Platform::MeaLib: {
        dram::DramParams d = platform == Platform::Psas ? dram::ddr3(2)
                             : platform == Platform::Msas
                                 ? dram::ddr3(8)
                                 : dram::hmcStack();
        accel::AccelModel model(w.call.kind,
                                accel::defaultConfig(w.call.kind), d,
                                noc::mealibMesh());
        accel::AccelEstimate e = model.estimate(w.call, w.loop);
        r.cost = e.total;
        r.bytes = w.call.trafficBytes() * iters;
        return r;
      }
      default:
        panic("evaluateOp: bad platform");
    }
}

OpResult
evaluateOpSharded(const Workload &w, runtime::MealibRuntime &rt)
{
    fatalIf(rt.layer().functional(),
            "evaluateOpSharded: needs a cost-only runtime "
            "(RuntimeConfig::functional = false)");
    const unsigned stacks = rt.numStacks();
    const std::uint32_t outer = w.loop.dims[0];
    const unsigned shards = std::min<unsigned>(
        stacks, outer > 0 ? outer : 1);

    OpResult r;
    double iters = static_cast<double>(w.loop.iterations());
    r.flops = w.call.flops() * iters;
    r.bytes = w.call.trafficBytes() * iters;

    // Synthetic per-stack operand placement: every shard's operands sit
    // inside its own stack's address range, spaced an eighth of the
    // stack span apart, so the locality scheduler homes each descriptor
    // with zero remote-link traffic.
    const std::uint64_t span =
        rt.config().backingBytes / rt.config().numStacks;
    const std::uint64_t slot = span / 8;

    const double makespan0 = rt.accounting().makespanSeconds;
    const Cost total0 = rt.accounting().total();

    std::vector<runtime::AccPlanHandle> handles;
    for (unsigned s = 0; s < shards; ++s) {
        accel::OpCall call = w.call;
        const std::uint64_t base =
            static_cast<std::uint64_t>(s) * span +
            (s == 0 ? rt.config().commandBytes : 0);
        call.in0.base = base;
        call.in1.base = base + slot;
        call.in2.base = base + 2 * slot;
        call.in3.base = base + 3 * slot;
        call.out.base = base + 4 * slot;

        accel::DescriptorProgram d;
        if (outer > 1) {
            LoopSpec loop = w.loop;
            loop.dims[0] = outer / shards +
                           (s < outer % shards ? 1 : 0);
            d.addLoop(loop, 2);
            d.addComp(call);
        } else {
            d.addComp(call);
        }
        d.addPassEnd();
        handles.push_back(rt.accPlan(d));
        rt.accSubmitOn(handles.back(), s);
    }
    rt.waitAll();

    r.cost.seconds = rt.accounting().makespanSeconds - makespan0;
    r.cost.joules = rt.accounting().total().joules - total0.joules;
    for (runtime::AccPlanHandle h : handles)
        rt.accDestroy(h);
    return r;
}

} // namespace mealib::eval
