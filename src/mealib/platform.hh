/**
 * @file
 * Platform comparison layer for the paper's evaluation (Tables 2/3,
 * Figs. 9/10): run the same Table-1 operation on the five platforms and
 * report time, energy, GFLOPS and GFLOPS/W.
 *
 * Host platforms (Haswell MKL, Xeon Phi MKL) go through the roofline
 * CPU model with per-operation efficiency profiles; accelerated
 * platforms (PSAS, MSAS, MEALib) go through the accelerator models with
 * the memory device of Table 3 swapped in.
 */

#ifndef MEALIB_MEALIB_PLATFORM_HH
#define MEALIB_MEALIB_PLATFORM_HH

#include <string>

#include "accel/model.hh"
#include "accel/ops.hh"
#include "common/status.hh"
#include "common/units.hh"
#include "host/cpu.hh"
#include "runtime/runtime.hh"

namespace mealib::eval {

/** The five platforms of Table 3. */
enum class Platform
{
    HaswellMkl, //!< Intel i7-4770K running MiniMKL (the baseline)
    XeonPhiMkl, //!< Xeon Phi 5110P running MiniMKL
    Psas,       //!< processor-side accelerators, host DDR3 (25.6 GB/s)
    Msas,       //!< 2D memory-side accelerators (102.4 GB/s)
    MeaLib,     //!< 3D memory-side accelerators (510 GB/s)
};

/** Printable platform name. */
const char *name(Platform p);

/** One evaluated operation on one platform. */
struct OpResult
{
    Cost cost;
    double flops = 0.0;
    double bytes = 0.0;

    double
    gflops() const
    {
        return cost.seconds > 0.0 ? flops / cost.seconds / 1e9 : 0.0;
    }

    /** GB/s, the metric for RESHP (paper footnote 3). */
    double
    gbps() const
    {
        return cost.seconds > 0.0 ? bytes / cost.seconds / 1e9 : 0.0;
    }

    /** Performance metric: GFLOPS, or GB/s for flop-free operations. */
    double
    perf() const
    {
        return flops > 0.0 ? gflops() : gbps();
    }

    /** Efficiency metric: perf per watt. */
    double
    perfPerWatt() const
    {
        double w = cost.watts();
        return w > 0.0 ? perf() / w : 0.0;
    }
};

/** A Table-2 workload: one op (optionally looped) plus a description. */
struct Workload
{
    accel::OpCall call;
    accel::LoopSpec loop;
    std::string desc;
};

/**
 * The Table 2 data set for @p kind, linearly scaled by @p scale
 * (scale = 1 reproduces the paper's sizes; benches default to a smaller
 * scale so every binary finishes in seconds — the models are analytic in
 * size so the ratios are stable).
 */
Workload table2Workload(accel::AccelKind kind, double scale = 1.0);

/** Evaluate one workload on one platform. */
OpResult evaluateOp(Platform platform, const Workload &workload);

/**
 * Evaluate a looped MEALib workload sharded across @p rt's memory
 * stacks: the outermost LOOP dimension is split into one descriptor per
 * stack, each with operands homed on its own stack, submitted through
 * the asynchronous command queues and waited together. The returned
 * seconds are the overlap-aware makespan of the fan-out (joules are the
 * sum — energy does not overlap away). Requires a cost-only runtime
 * (RuntimeConfig::functional = false): the Table-2 operand sizes exceed
 * the functional arena. Returns InvalidArgument (and leaves @p out
 * untouched) for a functional runtime instead of executing descriptors
 * over unrelated arena bytes.
 */
Status evaluateOpSharded(const Workload &workload,
                         runtime::MealibRuntime &rt, OpResult *out);

/**
 * Host-side execution profile of @p call on @p platform (HaswellMkl or
 * XeonPhiMkl). Exposed for tests and the Fig. 1 bench; the efficiency
 * factors encode the calibration discussed in EXPERIMENTS.md.
 */
host::KernelProfile hostProfile(Platform platform,
                                const accel::OpCall &call,
                                const accel::LoopSpec &loop);

} // namespace mealib::eval

#endif // MEALIB_MEALIB_PLATFORM_HH
