#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "hwmodel/profile.hh"

namespace mealib::noc {

// The 32 nm mesh constants live in the hardware-model registry
// (src/hwmodel/presets.cc); this factory remains as the module-local
// spelling.
MeshParams
mealibMesh()
{
    return hwmodel::mealibMeshParams();
}

Mesh::Mesh(const MeshParams &params) : params_(params)
{
    fatalIf(params_.width == 0 || params_.height == 0,
            "mesh dimensions must be nonzero");
    fatalIf(params_.clock <= 0.0, "mesh clock must be positive");
    fatalIf(params_.linkBytesPerCycle == 0, "flit width must be nonzero");
}

unsigned
Mesh::hops(unsigned a, unsigned b) const
{
    fatalIf(a >= numTiles() || b >= numTiles(), "tile index out of range");
    int ax = static_cast<int>(a % params_.width);
    int ay = static_cast<int>(a / params_.width);
    int bx = static_cast<int>(b % params_.width);
    int by = static_cast<int>(b / params_.width);
    return static_cast<unsigned>(std::abs(ax - bx) + std::abs(ay - by));
}

double
Mesh::transferSeconds(unsigned a, unsigned b, std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    unsigned h = hops(a, b);
    // Wormhole: head flit pays per-hop latency; body streams behind at
    // link bandwidth.
    double head = static_cast<double>(h) *
                  static_cast<double>(params_.hopCycles) / params_.clock;
    double body_cycles = static_cast<double>(
        (bytes + params_.linkBytesPerCycle - 1) /
        params_.linkBytesPerCycle);
    return head + body_cycles / params_.clock;
}

double
Mesh::transferJoules(unsigned nhops, std::uint64_t bytes) const
{
    return static_cast<double>(nhops) * static_cast<double>(bytes) *
           params_.energyPerByteHop;
}

Cost
Mesh::reduceToTile0(std::uint64_t bytesPerTile) const
{
    // Dimension-order reduction tree: log-depth in each dimension; model
    // as every tile sending its partial to tile 0 with transfers down a
    // binomial tree. Latency is the deepest path; energy is total traffic.
    Cost c;
    unsigned worst = 0;
    double joules = 0.0;
    for (unsigned t = 1; t < numTiles(); ++t) {
        unsigned h = hops(t, 0);
        worst = std::max(worst, h);
        joules += transferJoules(h, bytesPerTile);
    }
    // Tree depth ~ log2(tiles); each level forwards one payload.
    unsigned levels = 0;
    for (unsigned n = numTiles(); n > 1; n >>= 1)
        ++levels;
    double per_level =
        transferSeconds(0, params_.width > 1 ? 1 : 0, bytesPerTile);
    c.seconds = static_cast<double>(levels) * per_level +
                static_cast<double>(worst) *
                    static_cast<double>(params_.hopCycles) / params_.clock;
    c.joules = joules;
    return c;
}

Cost
Mesh::crcReplayCost(std::uint64_t packetBytes) const
{
    // NACK travels back across the mesh diameter, then the source
    // retransmits the packet over the same worst-case path.
    const unsigned diameter = (params_.width - 1) + (params_.height - 1);
    Cost c;
    c.seconds = static_cast<double>(diameter) *
                    static_cast<double>(params_.hopCycles) /
                    params_.clock +
                transferSeconds(0, numTiles() - 1, packetBytes);
    c.joules = 2.0 * transferJoules(diameter, packetBytes);
    return c;
}

double
Mesh::leakageW() const
{
    return params_.routerLeakageW * static_cast<double>(numTiles());
}

double
Mesh::areaMm2() const
{
    return params_.routerAreaMm2 * static_cast<double>(numTiles());
}

} // namespace mealib::noc
