/**
 * @file
 * 2D mesh network-on-chip model for the accelerator layer (paper Fig. 4:
 * one tile per vault, tiles connected in a mesh that is distinct from the
 * DRAM-logic-layer interconnect).
 *
 * The model is analytical: XY dimension-order routing gives deterministic
 * hop counts; per-hop latency and per-byte link energy turn traffic
 * summaries into time/energy; router/link constants at 32 nm provide the
 * Table 5 power/area rows.
 */

#ifndef MEALIB_NOC_MESH_HH
#define MEALIB_NOC_MESH_HH

#include <cstdint>

#include "common/units.hh"

namespace mealib::noc {

/** NoC design constants (32 nm, mesh of wormhole routers). */
struct MeshParams
{
    unsigned width = 0;   //!< tiles per row
    unsigned height = 0;  //!< tiles per column
    double clock = 0.0;   //!< router clock, Hz
    unsigned hopCycles = 3;          //!< router pipeline + link traversal
    std::uint64_t linkBytesPerCycle = 16; //!< flit width
    double energyPerByteHop = 0.0;   //!< dynamic energy per byte per hop
    double routerLeakageW = 0.0;     //!< static power per router
    double routerAreaMm2 = 0.0;      //!< area per router (incl. links)
};

/** Default MEALib accelerator-layer mesh: 32 tiles as 8x4. */
MeshParams mealibMesh();

/** Analytical mesh model. */
class Mesh
{
  public:
    explicit Mesh(const MeshParams &params);

    /** Manhattan hop count between tiles @p a and @p b (XY routing). */
    unsigned hops(unsigned a, unsigned b) const;

    /** Latency of moving @p bytes from tile @p a to tile @p b. */
    double transferSeconds(unsigned a, unsigned b,
                           std::uint64_t bytes) const;

    /** Dynamic energy of moving @p bytes over @p nhops hops. */
    double transferJoules(unsigned nhops, std::uint64_t bytes) const;

    /** Cost of an all-to-one reduction of @p bytesPerTile to tile 0. */
    Cost reduceToTile0(std::uint64_t bytesPerTile) const;

    /**
     * Cost of replaying one link packet after a CRC failure (fault
     * injection, docs/FAULTS.md): the NACK round trip across the mesh
     * diameter plus retransmission of @p packetBytes.
     */
    Cost crcReplayCost(std::uint64_t packetBytes) const;

    /** Total router leakage power of the mesh, watts. */
    double leakageW() const;

    /** Total NoC area (routers + links), mm^2. */
    double areaMm2() const;

    unsigned numTiles() const { return params_.width * params_.height; }
    const MeshParams &params() const { return params_; }

  private:
    MeshParams params_;
};

} // namespace mealib::noc

#endif // MEALIB_NOC_MESH_HH
