#include "session/session.hh"

#include "dispatch/policy.hh"

namespace mealib {

SessionBinding::SessionBinding(dispatch::Dispatcher *dispatcher,
                               EnergyLedger *ledger)
    : active_(true),
      prevDispatcher_(dispatch::bindCurrentDispatcher(dispatcher)),
      prevLedger_(runtime::bindSessionLedger(ledger))
{
}

SessionBinding::~SessionBinding()
{
    if (!active_)
        return;
    dispatch::bindCurrentDispatcher(prevDispatcher_);
    runtime::bindSessionLedger(prevLedger_);
}

SessionBinding::SessionBinding(SessionBinding &&other) noexcept
    : active_(other.active_), prevDispatcher_(other.prevDispatcher_),
      prevLedger_(other.prevLedger_)
{
    other.active_ = false;
}

Session::Session(runtime::MealibRuntime &rt, const SessionOptions &opts)
    : Session(rt, hwmodel::activeProfile(), opts)
{
}

Session::Session(runtime::MealibRuntime &rt,
                 const hwmodel::MachineProfile &machine,
                 const SessionOptions &opts)
    : rt_(rt), machine_(machine)
{
    // The profile is captured by reference into the cost model below;
    // pinning keeps setActiveMachine from repricing it underneath us.
    hwmodel::pinActiveMachine();
    init(opts);
}

void
Session::init(const SessionOptions &opts)
{
    auto policy = opts.policy.empty()
                      ? dispatch::policyFromEnv()
                      : dispatch::makePolicy(opts.policy);
    dispatcher_.setPolicy(std::move(policy)); // null resets to HostOnly
    dispatcher_.setCostModel(
        std::make_shared<dispatch::RooflineCostModel>(machine_));
    dispatcher_.attachLedger(&ledger_);
    if (opts.attachBackend) {
        const unsigned window =
            opts.fusionWindow > 0 ? opts.fusionWindow
                                  : dispatch::fusionWindowFromEnv();
        backend_ =
            std::make_unique<dispatch::RuntimeBackend>(rt_, window);
        dispatcher_.attachBackend(backend_.get());
    }
}

Session::~Session()
{
    // detachBackend syncs the fusion window; the flush's runtime posts
    // must land in this session's ledger even when the destructing
    // thread holds no binding.
    SessionBinding flushScope(&dispatcher_, &ledger_);
    dispatcher_.detachBackend();
    dispatcher_.detachLedger();
    backend_.reset();
    hwmodel::unpinActiveMachine();
}

SessionBinding
Session::bind()
{
    return SessionBinding(&dispatcher_, &ledger_);
}

void
Session::sync()
{
    SessionBinding flushScope(&dispatcher_, &ledger_);
    if (backend_)
        backend_->sync();
}

} // namespace mealib
