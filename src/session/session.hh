/**
 * @file
 * Re-entrant session contexts for multi-tenant MEALib
 * (docs/SESSIONS.md).
 *
 * A Session is the per-client view of the shared accelerator stack:
 * it bundles an immutable MachineProfile handle (captured at
 * construction, pinned against setActiveMachine for its lifetime), a
 * private Dispatcher with its own offload policy, cost model,
 * telemetry and fusion window, a reference to the shared — internally
 * locked — MealibRuntime, and a per-session EnergyLedger that receives
 * exactly this session's share of the runtime's aggregate accounting.
 *
 * Unmodified MKL-signature callers reach their session through
 * thread binding: Session::bind() returns an RAII guard that routes
 * the calling thread's cblas_/fftwf_/mkl_ calls (and dispatch::ops)
 * through this session's dispatcher and mirrors runtime cost posts
 * into this session's ledger. N threads bound to N sessions share one
 * runtime without racing on cost models, telemetry or ledgers; an
 * unbound thread keeps the legacy behaviour (Dispatcher::global(),
 * aggregate ledger only) bit for bit.
 */

#ifndef MEALIB_SESSION_SESSION_HH
#define MEALIB_SESSION_SESSION_HH

#include <memory>
#include <string>

#include "common/ledger.hh"
#include "dispatch/backend.hh"
#include "dispatch/dispatcher.hh"
#include "dispatch/models.hh"
#include "hwmodel/profile.hh"
#include "runtime/runtime.hh"

namespace mealib {

/** Construction knobs of a Session. */
struct SessionOptions
{
    /**
     * Offload policy name ("host", "accel", "crossover", "calibrated");
     * empty resolves MEALIB_OFFLOAD_POLICY exactly like the default
     * dispatcher. Unknown names fall back to host-only.
     */
    std::string policy;

    /** COMPs batched into one fused descriptor program by this
     * session's backend; 0 resolves MEALIB_FUSION_WINDOW. */
    unsigned fusionWindow = 0;

    /** Attach the session's RuntimeBackend to its dispatcher so accel
     * decisions execute on the shared runtime. Off leaves the
     * dispatcher backend-less (every accel decision falls back to the
     * host path — the legacy default-dispatcher shape). */
    bool attachBackend = true;
};

/**
 * RAII thread binding: while alive, the constructing thread's
 * MKL-compatible calls route through the session's dispatcher and the
 * runtime mirrors its cost posts into the session's ledger. Restores
 * the previous bindings on destruction (bindings nest). Move-only;
 * must be destroyed on the thread that created it.
 */
class SessionBinding
{
  public:
    SessionBinding(dispatch::Dispatcher *dispatcher,
                   EnergyLedger *ledger);
    ~SessionBinding();

    SessionBinding(SessionBinding &&other) noexcept;
    SessionBinding &operator=(SessionBinding &&) = delete;
    SessionBinding(const SessionBinding &) = delete;
    SessionBinding &operator=(const SessionBinding &) = delete;

  private:
    bool active_ = false;
    dispatch::Dispatcher *prevDispatcher_ = nullptr;
    EnergyLedger *prevLedger_ = nullptr;
};

/** One client's context over the shared MEALib stack. */
class Session
{
  public:
    /**
     * Open a session over @p rt. Captures the active machine profile
     * (and pins it: hwmodel::setActiveMachine refuses while the
     * session is live), builds the dispatcher from @p opts, and — with
     * opts.attachBackend — wires a RuntimeBackend plus the session
     * ledger into it. @p rt must outlive the session.
     */
    explicit Session(runtime::MealibRuntime &rt,
                     const SessionOptions &opts = SessionOptions{});

    /** Open a session with an explicit (registry) machine profile. */
    Session(runtime::MealibRuntime &rt,
            const hwmodel::MachineProfile &machine,
            const SessionOptions &opts);

    /** Flushes the fusion window and unpins the machine profile.
     * Every binding must be destroyed first. */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Bind the calling thread to this session (see SessionBinding).
     * One session may be bound on several threads at once — its
     * dispatcher, backend window and ledger are internally locked.
     */
    SessionBinding bind();

    /** The profile this session prices against (never changes). */
    const hwmodel::MachineProfile &machine() const { return machine_; }

    /** This session's private dispatcher. */
    dispatch::Dispatcher &dispatcher() { return dispatcher_; }

    /** The shared runtime this session submits to. */
    runtime::MealibRuntime &runtime() { return rt_; }

    /**
     * This session's cost ledger: every runtime post caused by a
     * thread bound to this session, plus the dispatcher's zero-cost
     * decision notes. ledger().total() is exactly this session's share
     * of the runtime's aggregate accounting total.
     */
    EnergyLedger &ledger() { return ledger_; }
    const EnergyLedger &ledger() const { return ledger_; }

    /** Materialize every fused call still buffered in the backend. */
    void sync();

  private:
    void init(const SessionOptions &opts);

    runtime::MealibRuntime &rt_;
    const hwmodel::MachineProfile &machine_;
    EnergyLedger ledger_;
    dispatch::Dispatcher dispatcher_;
    std::unique_ptr<dispatch::RuntimeBackend> backend_;
};

} // namespace mealib

#endif // MEALIB_SESSION_SESSION_HH
