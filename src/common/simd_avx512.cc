// AVX-512 instance of the generic virtual-vector backend. Compiled with
// -march=x86-64 -mavx512f -mavx512vl -mavx512dq -mavx512bw -O3
// -ffp-contract=off, and only when the compiler supports those flags
// (see src/common/CMakeLists.txt).
#define MEALIB_SIMD_NS avx512
#include "common/simd_backend.inc"
