/**
 * @file
 * gem5-style status reporting for the MEALib simulator.
 *
 * fatal() reports conditions caused by the caller (bad configuration,
 * invalid arguments) and panic() reports internal invariant violations.
 * Both throw (rather than exit) so that library users and tests can
 * recover; inform()/warn() print to stderr and continue.
 */

#ifndef MEALIB_COMMON_LOGGING_HH
#define MEALIB_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace mealib {

/** Error thrown by fatal(): the condition is the user's fault. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Error thrown by panic(): an internal MEALib invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort the current operation due to a user-caused condition. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Abort the current operation due to an internal bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/** Check a user-facing precondition; fatal() on failure. */
template <typename... Args>
void
fatalIf(bool cond, Args &&...args)
{
    if (cond)
        fatal(std::forward<Args>(args)...);
}

/** Check an internal invariant; panic() on failure. */
template <typename... Args>
void
panicIf(bool cond, Args &&...args)
{
    if (cond)
        panic(std::forward<Args>(args)...);
}

/** Print an informational message to stderr. */
void informStr(const std::string &msg);

/** Print a warning message to stderr. */
void warnStr(const std::string &msg);

/** Enable/disable inform() output (warnings always print). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

/** Streamed variant of informStr(). */
template <typename... Args>
void
inform(Args &&...args)
{
    informStr(detail::concat(std::forward<Args>(args)...));
}

/** Streamed variant of warnStr(). */
template <typename... Args>
void
warn(Args &&...args)
{
    warnStr(detail::concat(std::forward<Args>(args)...));
}

} // namespace mealib

#endif // MEALIB_COMMON_LOGGING_HH
