#include "common/cli.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace mealib {

Cli::Cli(int argc, const char *const *argv)
{
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) &&
                   std::string(argv[i + 1]).rfind("-", 0) != 0) {
            // `--key value` form: consume the next token as the value
            options_[body] = argv[++i];
        } else {
            options_[body] = "";
        }
    }
}

bool
Cli::has(const std::string &name) const
{
    return options_.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &def) const
{
    auto it = options_.find(name);
    return it == options_.end() ? def : it->second;
}

std::int64_t
Cli::getInt(const std::string &name, std::int64_t def) const
{
    auto it = options_.find(name);
    if (it == options_.end() || it->second.empty())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    fatalIf(end == nullptr || *end != '\0',
            "flag --", name, " expects an integer, got '", it->second, "'");
    return v;
}

double
Cli::getDouble(const std::string &name, double def) const
{
    auto it = options_.find(name);
    if (it == options_.end() || it->second.empty())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    fatalIf(end == nullptr || *end != '\0',
            "flag --", name, " expects a number, got '", it->second, "'");
    return v;
}

} // namespace mealib
