/**
 * @file
 * Minimal command-line flag parsing shared by the bench and example
 * binaries. Supports `--flag`, `--key=value` and `--key value` forms.
 */

#ifndef MEALIB_COMMON_CLI_HH
#define MEALIB_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mealib {

/** Parsed command line: flags, key/value options and positional args. */
class Cli
{
  public:
    Cli(int argc, const char *const *argv);

    /** @return true if `--name` was passed (with or without a value). */
    bool has(const std::string &name) const;

    /** @return the value of `--name`, or @p def if absent. */
    std::string get(const std::string &name, const std::string &def) const;

    /** @return the integer value of `--name`, or @p def if absent. */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;

    /** @return the double value of `--name`, or @p def if absent. */
    double getDouble(const std::string &name, double def) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace mealib

#endif // MEALIB_COMMON_CLI_HH
