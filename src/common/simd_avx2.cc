// AVX2 instance of the generic virtual-vector backend. Compiled with
// -march=x86-64 -mavx2 -O3 -ffp-contract=off (see src/common/CMakeLists.txt).
#define MEALIB_SIMD_NS avx2
#include "common/simd_backend.inc"
