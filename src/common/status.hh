/**
 * @file
 * Recoverable-error reporting for the MEALib runtime.
 *
 * fatal()/panic() (common/logging.hh) throw and are reserved for
 * conditions the caller cannot continue from: malformed descriptors,
 * broken internal invariants. Runtime paths that a production system
 * must survive — a bad stack index, a device that stopped answering, a
 * command that exhausted its retries — report a Status instead, so the
 * caller (or the runtime's own degradation machinery) can decide
 * whether to retry, fall back to the host, or surface the error.
 */

#ifndef MEALIB_COMMON_STATUS_HH
#define MEALIB_COMMON_STATUS_HH

#include <stdexcept>
#include <string>
#include <utility>

namespace mealib {

/** Machine-inspectable category of a recoverable error. */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument, //!< caller passed something out of range
    NotFound,        //!< unknown handle / missing resource
    Timeout,         //!< watchdog expired waiting on the device
    DeviceFailed,    //!< stack marked failed / permanent hardware fault
    Exhausted,       //!< retry budget spent without success
    Internal,        //!< unclassified runtime failure
};

/** Printable code name ("ok", "invalid_argument", ...). */
constexpr const char *
name(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::InvalidArgument:
        return "invalid_argument";
      case ErrorCode::NotFound:
        return "not_found";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::DeviceFailed:
        return "device_failed";
      case ErrorCode::Exhausted:
        return "exhausted";
      case ErrorCode::Internal:
        return "internal";
    }
    return "unknown";
}

class MealibError;

/** Value-type result of a recoverable runtime operation. */
class Status
{
  public:
    /** Default: success. */
    Status() = default;

    static Status
    error(ErrorCode code, std::string message)
    {
        Status s;
        s.code_ = code;
        s.message_ = std::move(message);
        return s;
    }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok" or "<code>: <message>". */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(name(code_)) + ": " + message_;
    }

    /** Throw MealibError if not ok (for callers preferring exceptions). */
    void orThrow() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/** Exception form of a non-ok Status (thrown by Status::orThrow). */
class MealibError : public std::runtime_error
{
  public:
    explicit MealibError(const Status &status)
        : std::runtime_error(status.toString()), code_(status.code())
    {
    }

    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

inline void
Status::orThrow() const
{
    if (!ok())
        throw MealibError(*this);
}

} // namespace mealib

#endif // MEALIB_COMMON_STATUS_HH
