/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All workload generators use this splitmix64/xoshiro-style generator so
 * that tests, benches and examples are bit-reproducible across platforms
 * (std::mt19937 distributions are not portable across standard libraries).
 */

#ifndef MEALIB_COMMON_RNG_HH
#define MEALIB_COMMON_RNG_HH

#include <cstdint>

namespace mealib {

/** Small, fast, deterministic PRNG (xorshift128+ with splitmix64 seeding). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 to expand the seed into two nonzero state words
        s0_ = splitmix(seed);
        s1_ = splitmix(seed);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return a uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /** @return a uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

  private:
    static std::uint64_t
    splitmix(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace mealib

#endif // MEALIB_COMMON_RNG_HH
