#include "common/logging.hh"

#include <cstdio>

namespace mealib {

namespace {
bool g_verbose = false;
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

void
informStr(const std::string &msg)
{
    if (g_verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warnStr(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace mealib
