#include "common/simd.hh"

#include <cstring>

#include "common/parallel.hh"

namespace mealib::simd {

#if defined(MEALIB_SIMD_X86_BACKENDS)
namespace sse4 {
const Kernels &table();
}
namespace avx2 {
const Kernels &table();
}
#if defined(MEALIB_HAVE_AVX512_BACKEND)
namespace avx512 {
const Kernels &table();
}
#endif
#endif

const char *name(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Sse4:
        return "sse4";
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Avx512:
        return "avx512";
    case SimdLevel::Auto:
        return "auto";
    }
    return "scalar";
}

bool parseLevel(const char *text, SimdLevel *out)
{
    if (text == nullptr || out == nullptr)
        return false;
    if (std::strcmp(text, "scalar") == 0)
        *out = SimdLevel::Scalar;
    else if (std::strcmp(text, "sse4") == 0
             || std::strcmp(text, "sse4.2") == 0)
        *out = SimdLevel::Sse4;
    else if (std::strcmp(text, "avx2") == 0)
        *out = SimdLevel::Avx2;
    else if (std::strcmp(text, "avx512") == 0)
        *out = SimdLevel::Avx512;
    else if (std::strcmp(text, "auto") == 0)
        *out = SimdLevel::Auto;
    else
        return false;
    return true;
}

SimdLevel detectedLevel()
{
    static const SimdLevel level = [] {
#if defined(MEALIB_SIMD_X86_BACKENDS)
#if defined(MEALIB_HAVE_AVX512_BACKEND)
        if (__builtin_cpu_supports("avx512f")
            && __builtin_cpu_supports("avx512vl")
            && __builtin_cpu_supports("avx512dq")
            && __builtin_cpu_supports("avx512bw"))
            return SimdLevel::Avx512;
#endif
        if (__builtin_cpu_supports("avx2"))
            return SimdLevel::Avx2;
        if (__builtin_cpu_supports("sse4.2"))
            return SimdLevel::Sse4;
#endif
        return SimdLevel::Scalar;
    }();
    return level;
}

SimdLevel resolveLevel(SimdLevel request)
{
    const SimdLevel best = detectedLevel();
    if (request == SimdLevel::Auto)
        return best;
    return static_cast<int>(request) <= static_cast<int>(best) ? request
                                                               : best;
}

SimdLevel activeLevel() { return resolveLevel(kernelTuning().simd); }

std::vector<SimdLevel> availableLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::Scalar};
    const int best = static_cast<int>(detectedLevel());
    for (int l = static_cast<int>(SimdLevel::Sse4); l <= best; ++l)
        levels.push_back(static_cast<SimdLevel>(l));
    return levels;
}

const Kernels *tableFor(SimdLevel level)
{
    switch (resolveLevel(level)) {
#if defined(MEALIB_SIMD_X86_BACKENDS)
    case SimdLevel::Sse4:
        return &sse4::table();
    case SimdLevel::Avx2:
        return &avx2::table();
#if defined(MEALIB_HAVE_AVX512_BACKEND)
    case SimdLevel::Avx512:
        return &avx512::table();
#endif
#endif
    default:
        return nullptr;
    }
}

const Kernels *active() { return tableFor(kernelTuning().simd); }

} // namespace mealib::simd
