/**
 * @file
 * Portable SIMD kernel layer with runtime ISA dispatch.
 *
 * The MiniMKL kernels are written against a *virtual* fixed-width
 * vector machine: 8-lane f32 vectors for maps, 8-lane f64 accumulators
 * for reductions, and 4-lane cfloat vectors for complex work. One
 * generic implementation (simd_backend.inc, plain compiler vector
 * extensions) is compiled once per ISA level — SSE4.2, AVX2 and
 * (compiler permitting) AVX-512 — each translation unit pinned to
 * `-march=x86-64 -m<isa> -O3 -ffp-contract=off`, and the best table the
 * CPU supports is selected at startup via cpuid.
 *
 * Determinism contract (see docs/KERNELS.md):
 *
 *  - `MEALIB_SIMD=scalar` bypasses the tables entirely: the kernel
 *    files keep their legacy loops inline, so scalar output is
 *    bit-for-bit identical to the pre-SIMD library under any build
 *    flags (the legacy pin).
 *  - Every vector level executes the *same* generic source with the
 *    same fixed 8-lane layout (element i lives in lane i mod 8) and
 *    the same fixed-order lane-combine trees, with FP contraction off,
 *    so sse4/avx2/avx512 produce bit-identical results to each other —
 *    for any thread count, since the deterministicReduce chunk tree is
 *    unchanged and lanes are re-seeded per chunk (the fixed-width pin).
 *
 * Selection: `MEALIB_SIMD=scalar|sse4|avx2|avx512|auto` (default auto)
 * is read into KernelTuning once at startup and can be overridden at
 * runtime via kernelTuning().simd; requests above what the CPU (or the
 * build) supports clamp down to the best available level.
 */

#ifndef MEALIB_COMMON_SIMD_HH
#define MEALIB_COMMON_SIMD_HH

#include <cstdint>
#include <vector>

namespace mealib::simd {

/** ISA levels of the virtual-vector backends, in capability order. */
enum class SimdLevel : int
{
    Scalar = 0, //!< legacy loops inline in the kernel files
    Sse4 = 1,   //!< 128-bit vectors (SSE4.2)
    Avx2 = 2,   //!< 256-bit vectors (AVX2)
    Avx512 = 3, //!< 512-bit vectors (AVX-512 F/VL/DQ)
    Auto = 4,   //!< resolve to the best level the CPU supports
};

/** Lower-case name used by MEALIB_SIMD, --simd and the bench JSON. */
const char *name(SimdLevel level);

/** Parse a MEALIB_SIMD-style string. @return false on junk. */
bool parseLevel(const char *text, SimdLevel *out);

/**
 * Best level both the CPU (cpuid) and the build support. Computed once
 * per process.
 */
SimdLevel detectedLevel();

/** Resolve a request: Auto -> detected, else min(request, detected). */
SimdLevel resolveLevel(SimdLevel request);

/** The level the kernels run at right now (kernelTuning().simd). */
SimdLevel activeLevel();

/** Scalar plus every vector level this process can actually run. */
std::vector<SimdLevel> availableLevels();

/**
 * One virtual-vector kernel table. All pointers are contiguous
 * (unit-stride) arrays; complex arguments are interleaved re/im float
 * pairs and `n` counts complex elements. Reduction kernels implement
 * the fixed 8-lane accumulator layout described above and are meant to
 * be called per deterministicReduce chunk.
 */
struct Kernels
{
    // --- f32 maps (bit-identical to the legacy scalar ops) -----------
    /** y[i] += a * x[i] */
    void (*saxpy)(std::int64_t n, float a, const float *x, float *y);
    /** y[i] = a * x[i] + b * y[i] */
    void (*saxpby)(std::int64_t n, float a, const float *x, float b,
                   float *y);
    /** x[i] *= a */
    void (*sscal)(std::int64_t n, float a, float *x);
    /** y[i] = x[i] */
    void (*scopy)(std::int64_t n, const float *x, float *y);
    /** y[i] = alpha * x[i] */
    void (*scopyScale)(std::int64_t n, float alpha, const float *x,
                       float *y);
    /** y[k] += (ar + i*ai) * x[k] over n interleaved complex elements */
    void (*caxpy)(std::int64_t n, float ar, float ai, const float *x,
                  float *y);

    // --- fixed-width reductions (8 f64 lanes, fixed combine tree) ----
    /** sum x[i] * y[i] in f64 */
    double (*sdot)(std::int64_t n, const float *x, const float *y);
    /** sum |x[i]| in f64 */
    double (*sasum)(std::int64_t n, const float *x);
    /** slassq-style partial: scale = max|x|, ssq = sum (x/scale)^2 */
    void (*slassq)(std::int64_t n, const float *x, double *scale,
                   double *ssq);
    /** lowest index of max |x[i]| (first-strictly-greater-wins) */
    std::int64_t (*isamax)(std::int64_t n, const float *x);
    /**
     * Complex dot over n interleaved elements: conj(x).y when @p conjx,
     * else x.y, accumulated in 4 complex f64 lanes.
     */
    void (*cdot)(std::int64_t n, const float *x, const float *y,
                 bool conjx, double *re, double *im);
    /** CSR row gather-dot: sum vals[k] * x[cols[k] - base] in f64 */
    double (*csrdot)(std::int64_t n, const float *vals,
                     const std::int32_t *cols, std::int32_t base,
                     const float *x);

    // --- structured kernels ------------------------------------------
    /**
     * FFT butterfly over s interleaved complex elements:
     * ya[q] = xa[q] + xb[q]; yb[q] = (xa[q] - xb[q]) * (wr + i*wi).
     * Same elementwise ops as the legacy loop (bit-identical).
     */
    void (*fftButterfly)(std::int64_t s, const float *xa, const float *xb,
                         float *ya, float *yb, float wr, float wi);
    /**
     * Transposing tile copy: b[j*ldb + i] = alpha * a[i*lda + j] for
     * i < rows, j < cols (8x8 in-register micro blocks, scalar edges;
     * bit-identical to the legacy elementwise loop).
     */
    void (*somatTile)(std::int64_t rows, std::int64_t cols, float alpha,
                      const float *a, std::int64_t lda, float *b,
                      std::int64_t ldb);
};

/** Table for @p level; nullptr for Scalar or an unavailable level. */
const Kernels *tableFor(SimdLevel level);

/**
 * The active table, or nullptr when running at the scalar level —
 * callers branch to their legacy inline loops on nullptr. Resolve once
 * per kernel entry, not per chunk.
 */
const Kernels *active();

} // namespace mealib::simd

#endif // MEALIB_COMMON_SIMD_HH
