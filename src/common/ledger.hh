/**
 * @file
 * Cross-layer energy/EDP ledger (docs/MODEL.md).
 *
 * The models produce Cost deltas in many places — host roofline runs,
 * accelerator executions, invocation overheads, fault recovery,
 * dispatch decisions. An EnergyLedger collects them per run into one
 * observable record: named cost *tracks* whose sum is the run total,
 * an energy-only *component* attribution (DRAM vs. logic vs. NoC vs.
 * link vs. host package), and aggregated per-label event statistics.
 * The runtime posts to its ledger at exactly the points it updates
 * RuntimeAccounting, so ledger.total() equals accounting().total()
 * identically; `mealib-run --energy-json` serializes the ledger.
 */

#ifndef MEALIB_COMMON_LEDGER_HH
#define MEALIB_COMMON_LEDGER_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/stats.hh"
#include "common/units.hh"

namespace mealib {

/**
 * Per-run cost ledger with track/component/event views.
 *
 * Internally synchronized: one ledger may be posted to from several
 * threads (a session's dispatcher notes decisions while the shared
 * runtime mirrors accounting updates), so every mutator and every
 * aggregate reader takes an internal mutex. The reference-returning
 * views (tracks()/events()/energyByComponent()) are *not* synchronized
 * — read them only when no other thread is posting.
 */
class EnergyLedger
{
  public:
    /** Aggregated statistics of one event label on one track. */
    struct EventStat
    {
        std::uint64_t count = 0;
        Cost cost;
    };

    EnergyLedger() = default;
    EnergyLedger(const EnergyLedger &other);
    EnergyLedger &operator=(const EnergyLedger &other);

    /**
     * Charge @p c to @p track ("host", "accel", "invocation"). The
     * optional @p label aggregates an event record ("track/label") so
     * the JSON shows what the track's total is made of.
     */
    void post(const std::string &track, const Cost &c,
              const std::string &label = "");

    /**
     * Attribute @p joules of already-posted energy to a physical
     * component ("dram", "logic", "noc", "link", "fault", "host",
     * "invocation"). A view of where posted energy went — attribution
     * never changes total().
     */
    void attribute(const std::string &component, double joules);

    /** Record a zero-cost event (e.g. a dispatch decision). */
    void note(const std::string &label);

    /** Record useful work for the GFLOPS/W summary metric. */
    void addFlops(double flops);

    /** Sum of every track: the run's end-to-end cost. */
    Cost total() const;

    /** One track's accumulated cost (zero if never posted). */
    Cost track(const std::string &name) const;

    const std::map<std::string, Cost> &tracks() const { return tracks_; }
    const Breakdown &energyByComponent() const { return components_; }
    const std::map<std::string, EventStat> &events() const
    {
        return events_;
    }

    double flops() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return flops_;
    }

    /** Energy-delay product of the run total (J*s). */
    double
    edp() const
    {
        return total().edp();
    }

    /** GFLOP/s per watt over the whole run (0 without work/energy). */
    double gflopsPerWatt() const;

    void reset();

    /**
     * Serialize to a JSON object: machine name, total
     * {seconds, joules, watts, edp}, gflops_per_watt, per-track costs,
     * energy_by_component, and the aggregated events.
     */
    std::string toJson(const std::string &machine = "") const;

  private:
    Cost totalLocked() const;

    mutable std::mutex mu_;
    std::map<std::string, Cost> tracks_;
    Breakdown components_;
    std::map<std::string, EventStat> events_;
    double flops_ = 0.0;
};

} // namespace mealib

#endif // MEALIB_COMMON_LEDGER_HH
