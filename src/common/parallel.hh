/**
 * @file
 * Host-side parallel execution engine for the MiniMKL kernels.
 *
 * Three pieces:
 *
 *  - ThreadPool: a lazily-created, process-wide pool of worker threads.
 *    Jobs are a fixed number of indexed tasks claimed with an atomic
 *    counter; the submitting thread participates, so a pool of W workers
 *    executes with W+1 threads. Nested submissions run inline (no
 *    deadlock, no oversubscription).
 *
 *  - parallelFor: static range partitioning of [begin, end) into at most
 *    KernelTuning::numThreads contiguous chunks of at least `grain`
 *    elements. Chunk boundaries depend only on the range, the grain and
 *    the configured thread count — never on scheduling — so element-wise
 *    maps are trivially deterministic.
 *
 *  - deterministicReduce: reductions (sdot, snrm2, sasum, ...) are
 *    partitioned into fixed-size chunks (KernelTuning::reduceChunk)
 *    whose count depends only on n, and the per-chunk partials are
 *    combined by a fixed-order pairwise tree. The result is therefore
 *    bit-identical regardless of thread count — including a thread count
 *    of one — and across repeated runs.
 *
 * KernelTuning carries the tuning knobs (thread count, parallel cutoff,
 * tile sizes); defaults come from the environment once at first use and
 * can be overridden programmatically (the parity tests sweep them).
 */

#ifndef MEALIB_COMMON_PARALLEL_HH
#define MEALIB_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/simd.hh"

namespace mealib {

/**
 * Tuning knobs for the parallel cache-blocked kernels. Defaults are
 * read from the environment on first use:
 *
 *   MEALIB_NUM_THREADS     worker threads used to partition loops
 *   MEALIB_PARALLEL_CUTOFF minimum elements of work before fanning out
 *   MEALIB_REDUCE_CHUNK    fixed chunk size for deterministic reductions
 *   MEALIB_TILE            transpose tile edge (elements)
 *   MEALIB_GEMM_BLOCK      level-3 blocking factor
 *   MEALIB_SIMD            scalar|sse4|avx2|avx512|auto kernel backend
 */
struct KernelTuning
{
    int numThreads = 1;
    std::int64_t parallelCutoff = 1 << 15;
    std::int64_t reduceChunk = 1 << 14;
    std::int64_t tile = 32;
    std::int64_t gemmBlock = 64;
    simd::SimdLevel simd = simd::SimdLevel::Auto;

    /** Build a tuning with defaults taken from the environment. */
    static KernelTuning fromEnv();

    /** Threads to use for @p work elements (1 below the cutoff). */
    int
    threadsFor(std::int64_t work) const
    {
        return work >= parallelCutoff ? (numThreads > 1 ? numThreads : 1)
                                      : 1;
    }
};

/** Process-wide mutable tuning instance (initialized from the env). */
KernelTuning &kernelTuning();

/**
 * Fixed pool of worker threads executing indexed task batches. Use via
 * parallelFor/deterministicReduce rather than directly.
 */
class ThreadPool
{
  public:
    /** The process-wide pool (created on first use). */
    static ThreadPool &instance();

    /** @return true when the calling thread is executing a pool task. */
    static bool inTask();

    /**
     * Grow the pool so that @p threads concurrent lanes (workers plus
     * the submitting thread) are available. Capped at kMaxWorkers.
     */
    void ensure(int threads);

    /** Spawned worker threads (excludes the submitting thread). */
    int workerCount() const;

    /**
     * Run fn(0) ... fn(tasks-1) across the pool and the calling thread;
     * blocks until every task has finished. Tasks must not overlap in
     * their writes. Exceptions thrown by tasks are rethrown (first one
     * wins). Nested calls from inside a task execute inline.
     */
    void run(int tasks, const std::function<void(int)> &fn);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    static constexpr int kMaxWorkers = 63;

  private:
    ThreadPool() = default;

    void workerLoop();

    mutable std::mutex m_;
    std::mutex batch_; //!< serializes run() batches from multiple threads
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;
    const std::function<void(int)> *job_ = nullptr;
    int jobTasks_ = 0;
    int next_ = 0;
    int remaining_ = 0;
    std::exception_ptr firstError_;
    bool stop_ = false;
};

/**
 * Apply body(chunkBegin, chunkEnd) over a static partition of
 * [begin, end) into at most @p threads contiguous chunks of at least
 * @p grain elements. threads <= 1 (or a single chunk) runs inline.
 */
void parallelFor(std::int64_t begin, std::int64_t end, int threads,
                 std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>
                     &body);

/**
 * Deterministic parallel reduction over [0, n). The range is cut into
 * fixed chunks of @p chunk elements; @p chunkFn(b, e) produces a
 * partial for one chunk (sequentially), and @p combine merges two
 * partials. Partials are merged by a fixed-order pairwise tree, so the
 * result depends only on n and @p chunk — not on the thread count.
 * Requires n > 0.
 */
template <typename Partial, typename ChunkFn, typename CombineFn>
Partial
deterministicReduce(std::int64_t n, std::int64_t chunk, int threads,
                    ChunkFn chunkFn, CombineFn combine)
{
    if (chunk < 1)
        chunk = 1;
    const std::int64_t nChunks = (n + chunk - 1) / chunk;
    if (nChunks == 1)
        return chunkFn(std::int64_t{0}, n);

    std::vector<Partial> parts(static_cast<std::size_t>(nChunks));
    parallelFor(0, nChunks, threads, 1,
                [&](std::int64_t cb, std::int64_t ce) {
                    for (std::int64_t c = cb; c < ce; ++c) {
                        std::int64_t b = c * chunk;
                        std::int64_t e = std::min(b + chunk, n);
                        parts[static_cast<std::size_t>(c)] = chunkFn(b, e);
                    }
                });

    // Fixed-order pairwise tree: (p0+p1), (p2+p3), ... then recurse.
    std::int64_t len = nChunks;
    while (len > 1) {
        std::int64_t half = len / 2;
        for (std::int64_t i = 0; i < half; ++i)
            parts[static_cast<std::size_t>(i)] =
                combine(parts[static_cast<std::size_t>(2 * i)],
                        parts[static_cast<std::size_t>(2 * i + 1)]);
        if (len & 1) {
            parts[static_cast<std::size_t>(half)] =
                parts[static_cast<std::size_t>(len - 1)];
            ++half;
        }
        len = half;
    }
    return parts[0];
}

} // namespace mealib

#endif // MEALIB_COMMON_PARALLEL_HH
