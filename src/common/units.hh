/**
 * @file
 * Unit helpers shared across the simulator.
 *
 * All models use SI base units internally: seconds, joules, watts, bytes,
 * hertz. These helpers exist to make parameter tables readable and to keep
 * unit conversions out of model code.
 */

#ifndef MEALIB_COMMON_UNITS_HH
#define MEALIB_COMMON_UNITS_HH

#include <cstdint>

namespace mealib {

/** Simulator cycle count. */
using Cycles = std::uint64_t;

/** Physical (simulated) memory address. */
using Addr = std::uint64_t;

// --- byte sizes -----------------------------------------------------------

constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

// --- frequencies ----------------------------------------------------------

constexpr double operator""_MHz(long double v)
{
    return static_cast<double>(v) * 1e6;
}

constexpr double operator""_GHz(long double v)
{
    return static_cast<double>(v) * 1e9;
}

// --- bandwidth ------------------------------------------------------------

/** Bandwidth literal in GB/s (decimal, as memory vendors quote it). */
constexpr double operator""_GBps(long double v)
{
    return static_cast<double>(v) * 1e9;
}

// --- time -----------------------------------------------------------------

constexpr double operator""_ns(long double v)
{
    return static_cast<double>(v) * 1e-9;
}

constexpr double operator""_us(long double v)
{
    return static_cast<double>(v) * 1e-6;
}

constexpr double operator""_ms(long double v)
{
    return static_cast<double>(v) * 1e-3;
}

// --- energy ---------------------------------------------------------------

constexpr double operator""_pJ(long double v)
{
    return static_cast<double>(v) * 1e-12;
}

constexpr double operator""_nJ(long double v)
{
    return static_cast<double>(v) * 1e-9;
}

constexpr double operator""_mW(long double v)
{
    return static_cast<double>(v) * 1e-3;
}

/**
 * A (time, energy) pair: the universal cost currency of the models.
 *
 * Costs compose either in sequence (operator+) or, for overlapping
 * activities, via max-of-times with summed energy (see overlap()).
 */
struct Cost
{
    double seconds = 0.0; //!< wall-clock time
    double joules = 0.0;  //!< energy consumed

    Cost &
    operator+=(const Cost &o)
    {
        seconds += o.seconds;
        joules += o.joules;
        return *this;
    }

    friend Cost
    operator+(Cost a, const Cost &b)
    {
        a += b;
        return a;
    }

    /** Average power over the interval (0 for zero-length intervals). */
    double
    watts() const
    {
        return seconds > 0.0 ? joules / seconds : 0.0;
    }

    /** Energy-delay product (J*s), the paper's efficiency metric. */
    double
    edp() const
    {
        return joules * seconds;
    }
};

/** Compose two overlapped activities: time is the max, energy adds. */
inline Cost
overlap(const Cost &a, const Cost &b)
{
    return {a.seconds > b.seconds ? a.seconds : b.seconds,
            a.joules + b.joules};
}

} // namespace mealib

#endif // MEALIB_COMMON_UNITS_HH
