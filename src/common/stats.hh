/**
 * @file
 * Lightweight statistics accumulators used by the simulators.
 */

#ifndef MEALIB_COMMON_STATS_HH
#define MEALIB_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace mealib {

/** Running scalar statistic: count / sum / min / max / mean / stddev. */
class ScalarStat
{
  public:
    void
    sample(double v)
    {
        count_ += 1;
        sum_ += v;
        sumSq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    double
    stddev() const
    {
        if (count_ < 2)
            return 0.0;
        double n = static_cast<double>(count_);
        double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    void
    reset()
    {
        *this = ScalarStat{};
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Named breakdown of a quantity into components (e.g. energy by
 * accelerator). Used by the Fig. 14 benches and the runtime accounting.
 */
class Breakdown
{
  public:
    void
    add(const std::string &key, double v)
    {
        parts_[key] += v;
    }

    double
    get(const std::string &key) const
    {
        auto it = parts_.find(key);
        return it == parts_.end() ? 0.0 : it->second;
    }

    double
    total() const
    {
        double t = 0.0;
        for (const auto &[k, v] : parts_)
            t += v;
        return t;
    }

    /** Fraction of the total attributed to @p key (0 if total is 0). */
    double
    fraction(const std::string &key) const
    {
        double t = total();
        return t > 0.0 ? get(key) / t : 0.0;
    }

    const std::map<std::string, double> &parts() const { return parts_; }

  private:
    std::map<std::string, double> parts_;
};

} // namespace mealib

#endif // MEALIB_COMMON_STATS_HH
