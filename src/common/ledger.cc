#include "common/ledger.hh"

#include <cstdio>
#include <sstream>

namespace mealib {

namespace {

/** Shortest round-trippable spelling of a double for JSON. */
std::string
jnum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
appendCost(std::ostringstream &os, const Cost &c)
{
    os << "{\"seconds\": " << jnum(c.seconds)
       << ", \"joules\": " << jnum(c.joules) << "}";
}

} // namespace

EnergyLedger::EnergyLedger(const EnergyLedger &other)
{
    std::lock_guard<std::mutex> lock(other.mu_);
    tracks_ = other.tracks_;
    components_ = other.components_;
    events_ = other.events_;
    flops_ = other.flops_;
}

EnergyLedger &
EnergyLedger::operator=(const EnergyLedger &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mu_, other.mu_);
    tracks_ = other.tracks_;
    components_ = other.components_;
    events_ = other.events_;
    flops_ = other.flops_;
    return *this;
}

void
EnergyLedger::post(const std::string &track, const Cost &c,
                   const std::string &label)
{
    std::lock_guard<std::mutex> lock(mu_);
    tracks_[track] += c;
    if (!label.empty()) {
        EventStat &ev = events_[track + "/" + label];
        ev.count++;
        ev.cost += c;
    }
}

void
EnergyLedger::attribute(const std::string &component, double joules)
{
    std::lock_guard<std::mutex> lock(mu_);
    components_.add(component, joules);
}

void
EnergyLedger::note(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_[label].count++;
}

void
EnergyLedger::addFlops(double flops)
{
    std::lock_guard<std::mutex> lock(mu_);
    flops_ += flops;
}

Cost
EnergyLedger::totalLocked() const
{
    Cost t;
    for (const auto &[name, c] : tracks_)
        t += c;
    return t;
}

Cost
EnergyLedger::total() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totalLocked();
}

Cost
EnergyLedger::track(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tracks_.find(name);
    return it == tracks_.end() ? Cost{} : it->second;
}

double
EnergyLedger::gflopsPerWatt() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Cost t = totalLocked();
    double w = t.watts();
    if (w <= 0.0 || t.seconds <= 0.0)
        return 0.0;
    return flops_ / t.seconds / 1e9 / w;
}

void
EnergyLedger::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    tracks_.clear();
    components_ = Breakdown{};
    events_.clear();
    flops_ = 0.0;
}

std::string
EnergyLedger::toJson(const std::string &machine) const
{
    std::lock_guard<std::mutex> lock(mu_);
    Cost t = totalLocked();
    std::ostringstream os;
    os << "{\n";
    os << "  \"machine\": \"" << machine << "\",\n";
    os << "  \"total\": {\"seconds\": " << jnum(t.seconds)
       << ", \"joules\": " << jnum(t.joules)
       << ", \"watts\": " << jnum(t.watts())
       << ", \"edp\": " << jnum(t.edp()) << "},\n";
    double gfw = (t.watts() > 0.0 && t.seconds > 0.0)
                     ? flops_ / t.seconds / 1e9 / t.watts()
                     : 0.0;
    os << "  \"gflops_per_watt\": " << jnum(gfw) << ",\n";

    os << "  \"tracks\": {";
    bool first = true;
    for (const auto &[name, c] : tracks_) {
        os << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
        appendCost(os, c);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"energy_by_component\": {";
    first = true;
    for (const auto &[name, j] : components_.parts()) {
        os << (first ? "\n" : ",\n") << "    \"" << name
           << "\": " << jnum(j);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"events\": {";
    first = true;
    for (const auto &[label, ev] : events_) {
        os << (first ? "\n" : ",\n") << "    \"" << label
           << "\": {\"count\": " << ev.count << ", \"cost\": ";
        appendCost(os, ev.cost);
        os << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n";
    os << "}\n";
    return os.str();
}

} // namespace mealib
