// SSE4.2 instance of the generic virtual-vector backend. Compiled with
// -march=x86-64 -msse4.2 -O3 -ffp-contract=off (see src/common/CMakeLists.txt).
#define MEALIB_SIMD_NS sse4
#include "common/simd_backend.inc"
