#include "common/parallel.hh"

#include <algorithm>
#include <cstdlib>

namespace mealib {

namespace {

thread_local bool tlInTask = false;

std::int64_t
envInt64(const char *name, std::int64_t fallback, std::int64_t lo,
         std::int64_t hi)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v)
        return fallback;
    return std::clamp<std::int64_t>(parsed, lo, hi);
}

} // namespace

KernelTuning
KernelTuning::fromEnv()
{
    KernelTuning t;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    t.numThreads = static_cast<int>(
        envInt64("MEALIB_NUM_THREADS", static_cast<std::int64_t>(hw), 1,
                 ThreadPool::kMaxWorkers + 1));
    t.parallelCutoff =
        envInt64("MEALIB_PARALLEL_CUTOFF", t.parallelCutoff, 1,
                 std::int64_t{1} << 40);
    t.reduceChunk = envInt64("MEALIB_REDUCE_CHUNK", t.reduceChunk, 1,
                             std::int64_t{1} << 30);
    t.tile = envInt64("MEALIB_TILE", t.tile, 4, 4096);
    t.gemmBlock = envInt64("MEALIB_GEMM_BLOCK", t.gemmBlock, 4, 4096);
    if (const char *s = std::getenv("MEALIB_SIMD"); s != nullptr && *s) {
        simd::SimdLevel level;
        if (simd::parseLevel(s, &level))
            t.simd = level;
    }
    return t;
}

KernelTuning &
kernelTuning()
{
    static KernelTuning tuning = KernelTuning::fromEnv();
    return tuning;
}

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

bool
ThreadPool::inTask()
{
    return tlInTask;
}

int
ThreadPool::workerCount() const
{
    std::lock_guard<std::mutex> lk(m_);
    return static_cast<int>(workers_.size());
}

void
ThreadPool::ensure(int threads)
{
    int want = std::min(threads - 1, kMaxWorkers);
    std::lock_guard<std::mutex> lk(m_);
    while (static_cast<int>(workers_.size()) < want)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        const std::function<void(int)> *job = nullptr;
        int t = 0;
        {
            std::unique_lock<std::mutex> lk(m_);
            wake_.wait(lk, [&] {
                return stop_ || (job_ != nullptr && next_ < jobTasks_);
            });
            if (stop_)
                return;
            // Claim under the lock: job_ is valid exactly while the
            // batch is open, so a claimed (job, t) pair can never be
            // stale.
            job = job_;
            t = next_++;
        }
        tlInTask = true;
        try {
            (*job)(t);
        } catch (...) {
            std::lock_guard<std::mutex> lk(m_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        tlInTask = false;
        bool last = false;
        {
            std::lock_guard<std::mutex> lk(m_);
            last = --remaining_ == 0;
        }
        if (last)
            done_.notify_all();
    }
}

void
ThreadPool::run(int tasks, const std::function<void(int)> &fn)
{
    if (tasks <= 0)
        return;
    // Inline when there is nothing to fan out to, or when called from
    // inside a task (nested parallelism runs sequentially).
    if (tasks == 1 || tlInTask || workerCount() == 0) {
        for (int t = 0; t < tasks; ++t)
            fn(t);
        return;
    }

    // One batch at a time: a second submitting thread queues up here.
    std::lock_guard<std::mutex> batchLk(batch_);
    {
        std::lock_guard<std::mutex> lk(m_);
        job_ = &fn;
        jobTasks_ = tasks;
        remaining_ = tasks;
        next_ = 0;
        firstError_ = nullptr;
    }
    wake_.notify_all();

    // The submitting thread participates.
    for (;;) {
        int t;
        {
            std::lock_guard<std::mutex> lk(m_);
            if (next_ >= jobTasks_)
                break;
            t = next_++;
        }
        tlInTask = true;
        try {
            fn(t);
        } catch (...) {
            std::lock_guard<std::mutex> lk(m_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        tlInTask = false;
        bool last = false;
        {
            std::lock_guard<std::mutex> lk(m_);
            last = --remaining_ == 0;
        }
        if (last)
            done_.notify_all();
    }

    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(m_);
        done_.wait(lk, [&] { return remaining_ == 0; });
        job_ = nullptr;
        jobTasks_ = 0;
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
parallelFor(std::int64_t begin, std::int64_t end, int threads,
            std::int64_t grain,
            const std::function<void(std::int64_t, std::int64_t)> &body)
{
    const std::int64_t range = end - begin;
    if (range <= 0)
        return;
    if (grain < 1)
        grain = 1;
    std::int64_t maxChunks = (range + grain - 1) / grain;
    int chunks = static_cast<int>(
        std::min<std::int64_t>(std::max(threads, 1), maxChunks));
    if (chunks <= 1 || ThreadPool::inTask()) {
        body(begin, end);
        return;
    }

    ThreadPool &pool = ThreadPool::instance();
    pool.ensure(chunks);

    // Static partition: chunk c covers an equal share, remainder spread
    // over the leading chunks.
    const std::int64_t base = range / chunks;
    const std::int64_t rem = range % chunks;
    pool.run(chunks, [&](int c) {
        std::int64_t b = begin + c * base + std::min<std::int64_t>(c, rem);
        std::int64_t e = b + base + (c < rem ? 1 : 0);
        if (b < e)
            body(b, e);
    });
}

} // namespace mealib
