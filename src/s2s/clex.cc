#include "s2s/clex.hh"

#include <cctype>

namespace mealib::s2s {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators we keep intact (longest first). */
const char *kPuncts[] = {
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
};

} // namespace

std::vector<CTok>
clex(const std::string &src)
{
    std::vector<CTok> out;
    std::size_t i = 0;
    const std::size_t n = src.size();
    unsigned line = 1;

    auto push = [&](CTokKind kind, std::size_t begin, std::size_t end) {
        CTok t;
        t.kind = kind;
        t.text = src.substr(begin, end - begin);
        t.begin = begin;
        t.end = end;
        t.line = line;
        out.push_back(std::move(t));
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            i = i + 2 <= n ? i + 2 : n;
            continue;
        }
        // Preprocessor line (with backslash continuations).
        if (c == '#') {
            std::size_t start = i;
            while (i < n && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                ++i;
            }
            push(CTokKind::Pragma, start, i);
            continue;
        }
        if (identStart(c)) {
            std::size_t start = i;
            while (i < n && identCont(src[i]))
                ++i;
            push(CTokKind::Ident, start, i);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t start = i;
            while (i < n && (identCont(src[i]) || src[i] == '.' ||
                             ((src[i] == '+' || src[i] == '-') && i > 0 &&
                              (src[i - 1] == 'e' || src[i - 1] == 'E'))))
                ++i;
            push(CTokKind::Number, start, i);
            continue;
        }
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t start = i;
            ++i;
            while (i < n && src[i] != quote) {
                if (src[i] == '\\')
                    ++i;
                if (i < n && src[i] == '\n')
                    ++line;
                ++i;
            }
            i = i < n ? i + 1 : n;
            push(quote == '"' ? CTokKind::String : CTokKind::Char, start,
                 i);
            continue;
        }
        // Punctuator: try the multi-char table first.
        bool matched = false;
        for (const char *p : kPuncts) {
            std::size_t len = std::char_traits<char>::length(p);
            if (src.compare(i, len, p) == 0) {
                push(CTokKind::Punct, i, i + len);
                i += len;
                matched = true;
                break;
            }
        }
        if (!matched) {
            push(CTokKind::Punct, i, i + 1);
            ++i;
        }
    }
    push(CTokKind::End, n, n);
    return out;
}

} // namespace mealib::s2s
