/**
 * @file
 * The MEALib source-to-source compiler (paper Sec. 3.4).
 *
 * Pass 1 identifies accelerable library calls and builds the TDL
 * description of the accelerator descriptor:
 *   - fftwf_plan_guru_dft / fftwf_execute pairs (rank 0 -> RESHP,
 *     rank >= 1 -> FFT), chaining consecutive executes whose buffers
 *     connect into a single PASS;
 *   - `#pragma omp parallel for` loop nests (up to 4 deep) whose body is
 *     one accelerable CBLAS call, compacted into one LOOP block;
 *   - bare calls to the Table 1 entry points (cblas_saxpy, cblas_sdot,
 *     cblas_sgemv, mkl_scsrgemv, dfsInterpolate1D, mkl_simatcopy,
 *     cblas_cdotc_sub, cblas_caxpy).
 *
 * Pass 2 rewrites malloc/free into the physically contiguous
 * mealib_mem_alloc/mealib_mem_free runtime routines.
 *
 * Values the compiler cannot resolve statically (buffer addresses, loop
 * bounds held in variables) are emitted as `$symbol` placeholders in the
 * parameter files; bindParams() substitutes them at run time, which is
 * what the generated mealib_acc_plan call does in a real deployment.
 */

#ifndef MEALIB_S2S_COMPILER_HH
#define MEALIB_S2S_COMPILER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mealib::s2s {

/** A note attached to the translation (unresolved value, skipped call). */
struct Diagnostic
{
    unsigned line = 0;
    std::string message;
};

/** Everything the compiler produces for one translation unit. */
struct TranslationResult
{
    std::string source; //!< transformed C source
    std::string tdl;    //!< TDL program covering all emitted plans
    std::map<std::string, std::string> paramFiles;
    std::vector<Diagnostic> notes;
    unsigned plansEmitted = 0;   //!< mealib_acc_plan sites inserted
    unsigned allocRewrites = 0;  //!< malloc/free substitutions
    std::uint64_t callsAbsorbed = 0; //!< library calls folded into plans
};

/** Translate one C source file. */
TranslationResult translate(const std::string &cSource);

/**
 * Substitute `$symbol` placeholders in a generated parameter file with
 * concrete values; fatal() if a placeholder has no binding.
 */
std::string bindParams(const std::string &paramText,
                       const std::map<std::string, std::uint64_t> &syms);

} // namespace mealib::s2s

#endif // MEALIB_S2S_COMPILER_HH
