/**
 * @file
 * Tokenizer for the C subset the source-to-source compiler understands.
 *
 * The compiler does not need a full C frontend: it identifies library
 * calls, OpenMP-annotated for-nests and allocation calls (paper
 * Sec. 3.4), all of which are recognizable at the token level. Comments
 * are skipped; preprocessor lines are kept as single tokens so that
 * `#pragma omp parallel for` annotations survive.
 */

#ifndef MEALIB_S2S_CLEX_HH
#define MEALIB_S2S_CLEX_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mealib::s2s {

/** Token categories for the C subset. */
enum class CTokKind
{
    Ident,    //!< identifiers and keywords
    Number,   //!< integer or floating literal (kept as text)
    String,   //!< "..." literal including quotes
    Char,     //!< '...' literal including quotes
    Punct,    //!< one operator/punctuator (possibly multi-char)
    Pragma,   //!< a full preprocessor line starting with '#'
    End,
};

/** One token plus its span in the original source. */
struct CTok
{
    CTokKind kind = CTokKind::End;
    std::string text;
    std::size_t begin = 0; //!< byte offset of first char
    std::size_t end = 0;   //!< one past last char
    unsigned line = 0;

    bool
    is(const char *t) const
    {
        return text == t;
    }
};

/** Tokenize C-like source. Never fails: unknown bytes become Punct. */
std::vector<CTok> clex(const std::string &source);

} // namespace mealib::s2s

#endif // MEALIB_S2S_CLEX_HH
